(** vfuzz: generator and session determinism, op/corpus serialization,
    ddmin shrinking, regression-corpus replay, and direct syscall
    witnesses for the hostile-argument fixes the fuzzer flushed out. *)

open Tharness

let op_strings ops = List.map Fuzz.Gen.op_to_string ops
let einval = -Core.Errno.einval
let esrch = -Core.Errno.esrch
let eisdir = -Core.Errno.eisdir

(* ---- generator ---- *)

let gen_deterministic () =
  let a = Fuzz.Gen.generate 0xdeadL in
  let b = Fuzz.Gen.generate 0xdeadL in
  check_int "same variant" a.Fuzz.Gen.sc_variant b.Fuzz.Gen.sc_variant;
  check_bool "same op list" true
    (op_strings a.Fuzz.Gen.sc_ops = op_strings b.Fuzz.Gen.sc_ops);
  let c = Fuzz.Gen.generate 0xbeefL in
  check_bool "different seed, different ops" true
    (op_strings a.Fuzz.Gen.sc_ops <> op_strings c.Fuzz.Gen.sc_ops)

let op_roundtrip () =
  List.iter
    (fun seed ->
      let scen = Fuzz.Gen.generate seed in
      check_bool "scenario has ops" true (scen.Fuzz.Gen.sc_ops <> []);
      List.iter
        (fun op ->
          let s = Fuzz.Gen.op_to_string op in
          match Fuzz.Gen.op_of_string s with
          | Some op' ->
              check_string ("round-trip " ^ s) s (Fuzz.Gen.op_to_string op')
          | None -> Alcotest.failf "op %S did not parse back" s)
        scen.Fuzz.Gen.sc_ops)
    [ 1L; 2L; 3L; 0x5eedL ];
  (* never generated, but both must survive the corpus text format: the
     shrinker fixture and the empty path (which names the fs root) *)
  check_bool "canary parses" true
    (Fuzz.Gen.op_of_string "canary" = Some Fuzz.Gen.Canary);
  check_bool "empty-path open parses" true
    (Fuzz.Gen.op_of_string "open  1" = Some (Fuzz.Gen.Open ("", 1)))

let corpus_roundtrip () =
  let scen = Fuzz.Gen.generate 0x77L in
  let entry = Fuzz.Corpus.entry_of_scenario ~name:"rt" scen in
  match Fuzz.Corpus.parse (Fuzz.Corpus.render_entry entry) with
  | Error e -> Alcotest.failf "render/parse: %s" e
  | Ok [ e ] ->
      let scen' = Fuzz.Corpus.scenario_of_entry e in
      check_bool "seed survives" true
        (Int64.equal scen'.Fuzz.Gen.sc_seed scen.Fuzz.Gen.sc_seed);
      check_int "variant survives" scen.Fuzz.Gen.sc_variant
        scen'.Fuzz.Gen.sc_variant;
      check_bool "ops survive" true
        (op_strings scen'.Fuzz.Gen.sc_ops = op_strings scen.Fuzz.Gen.sc_ops)
  | Ok l -> Alcotest.failf "expected one entry, got %d" (List.length l)

(* ---- sessions ---- *)

let session_deterministic () =
  let r1 = Fuzz.Session.run_seed 0xbeefL in
  let r2 = Fuzz.Session.run_seed 0xbeefL in
  check_string "same seed, same digest" r1.Fuzz.Session.r_digest
    r2.Fuzz.Session.r_digest;
  (match r1.Fuzz.Session.r_outcome with
  | Fuzz.Session.Pass -> ()
  | Fuzz.Session.Fail f ->
      Alcotest.failf "seed 0xbeef failed: %s" (Fuzz.Session.failure_to_string f));
  check_bool "session consumed virtual time" true
    (Int64.compare r1.Fuzz.Session.r_vtime_ns 0L > 0);
  let r3 = Fuzz.Session.run_seed 0xcafeL in
  check_bool "different seed, different digest" true
    (not (String.equal r1.Fuzz.Session.r_digest r3.Fuzz.Session.r_digest))

(* ---- shrinking ---- *)

let shrink_canary () =
  let scen = Benchlib.Fuzzbench.canary_scenario 0x51edL in
  let failure =
    match (Fuzz.Session.run scen).Fuzz.Session.r_outcome with
    | Fuzz.Session.Fail f -> f
    | Fuzz.Session.Pass -> Alcotest.fail "canary scenario passed"
  in
  check_bool "canary dies as a Crash" true
    (match failure with
    | Fuzz.Session.Crash _ -> true
    | Fuzz.Session.Violation _ | Fuzz.Session.Invariant _
    | Fuzz.Session.Wedge _ ->
        false);
  let shrink () =
    Fuzz.Shrink.minimize
      ~run:(fun ops ->
        (Fuzz.Session.run { scen with Fuzz.Gen.sc_ops = ops })
          .Fuzz.Session.r_outcome)
      ~failure scen
  in
  let s1, st1 = shrink () in
  let s2, st2 = shrink () in
  check_int "minimum is one op" 1 st1.Fuzz.Shrink.sh_ops_after;
  check_string "minimum is exactly the canary" "canary"
    (String.concat ";" (op_strings s1.Fuzz.Gen.sc_ops));
  (* shrinking is as deterministic as the sessions it replays *)
  check_int "same candidate count" st1.Fuzz.Shrink.sh_runs
    st2.Fuzz.Shrink.sh_runs;
  check_bool "same minimum" true
    (op_strings s1.Fuzz.Gen.sc_ops = op_strings s2.Fuzz.Gen.sc_ops);
  check_bool "shrink stayed within budget" true
    (st1.Fuzz.Shrink.sh_runs <= Fuzz.Shrink.default_budget)

(* ---- regression corpus ---- *)

(* dune runtest runs in the test stanza's directory; dune exec runs in
   the workspace root — accept either *)
let corpus_path () =
  if Sys.file_exists "fuzz_corpus.txt" then "fuzz_corpus.txt"
  else Filename.concat "test" "fuzz_corpus.txt"

let corpus_replay () =
  match Fuzz.Corpus.load (corpus_path ()) with
  | Error e -> Alcotest.failf "corpus load: %s" e
  | Ok entries ->
      check_bool "corpus is non-trivial" true (List.length entries >= 8);
      List.iter
        (fun e ->
          let scen = Fuzz.Corpus.scenario_of_entry e in
          match (Fuzz.Session.run scen).Fuzz.Session.r_outcome with
          | Fuzz.Session.Pass -> ()
          | Fuzz.Session.Fail f ->
              Alcotest.failf "corpus entry %s regressed: %s"
                e.Fuzz.Corpus.e_name
                (Fuzz.Session.failure_to_string f))
        entries

(* ---- syscall witnesses for the fixes the fuzzer found ----

   Each of these is the minimal direct form of a corpus entry: the
   corpus replays the whole hostile session, these pin the exact errno
   contract so a regression fails with a readable message. *)

let lseek_edges () =
  in_kernel (fun _ ->
      let fd = User.Usys.open_ "/t.dat" Core.Abi.(o_create lor o_rdwr) in
      check_bool "open" true (fd >= 0);
      check_int "write" 100 (User.Usys.write fd (Bytes.make 100 'x'));
      check_int "unknown whence" einval (User.Usys.lseek fd 0 7);
      check_int "negative whence" einval (User.Usys.lseek fd 0 (-1));
      check_int "negative resulting offset" einval
        (User.Usys.lseek fd (-4096) Core.Abi.seek_set);
      check_int "seek to end still works" 100
        (User.Usys.lseek fd 0 Core.Abi.seek_end))

let read_bounded () =
  in_kernel (fun _ ->
      let fd = User.Usys.open_ "/t.dat" Core.Abi.(o_create lor o_rdwr) in
      ignore (User.Usys.write fd (Bytes.make 100 'x'));
      ignore (User.Usys.lseek fd 0 Core.Abi.seek_set);
      (match User.Usys.read fd (1 lsl 30) with
      | Ok b ->
          check_bool "giant read bounded by file size" true
            (Bytes.length b <= 100)
      | Error e -> Alcotest.failf "giant read failed with errno %d" e);
      match User.Usys.read fd (-1) with
      | Ok _ -> Alcotest.fail "negative-length read succeeded"
      | Error e -> check_int "negative length" Core.Errno.einval e)

let procfs_eof_read () =
  in_kernel (fun _ ->
      let fd = User.Usys.open_ "/proc/uptime" Core.Abi.o_rdonly in
      check_bool "open /proc/uptime" true (fd >= 0);
      let pos = User.Usys.lseek fd 1_048_576 Core.Abi.seek_end in
      check_bool "seek far past end" true (pos > 0);
      match User.Usys.read fd 17 with
      | Ok b -> check_int "read past EOF is empty" 0 (Bytes.length b)
      | Error e -> Alcotest.failf "read past EOF errored with %d" e)

let dir_open_eisdir () =
  in_kernel (fun _ ->
      check_int "mkdir" 0 (User.Usys.mkdir "/td");
      check_int "O_WRONLY dir" eisdir (User.Usys.open_ "/td" Core.Abi.o_wronly);
      check_int "O_RDWR dir" eisdir (User.Usys.open_ "/td" Core.Abi.o_rdwr);
      check_int "empty path names the root dir" eisdir
        (User.Usys.open_ "" Core.Abi.o_wronly);
      let fd = User.Usys.open_ "/td" Core.Abi.o_rdonly in
      check_bool "read-only dir open still allowed" true (fd >= 0))

let sem_edges () =
  in_kernel (fun _ ->
      check_int "sem_open(-1)" einval (User.Usys.sem_open (-1));
      check_int "sem_open(-100)" einval (User.Usys.sem_open (-100));
      let id = User.Usys.sem_open 1 in
      check_bool "sem_open(1)" true (id >= 0);
      check_int "banked token consumed without blocking" 0
        (User.Usys.sem_wait id);
      check_int "post" 0 (User.Usys.sem_post id);
      check_int "wait" 0 (User.Usys.sem_wait id);
      check_int "close" 0 (User.Usys.sem_close id);
      check_int "wait after close" einval (User.Usys.sem_wait id);
      check_int "bogus id" einval (User.Usys.sem_wait 99))

let sem_close_wakes_waiter () =
  in_kernel (fun _ ->
      let id = User.Usys.sem_open 0 in
      check_bool "sem_open" true (id >= 0);
      let tid = User.Usys.clone (fun () -> User.Usys.sem_wait id) in
      check_bool "clone" true (tid > 0);
      (* let the thread block on the empty semaphore *)
      ignore (User.Usys.sleep 2);
      check_int "close with a waiter parked" 0 (User.Usys.sem_close id);
      (* the waiter rescans, finds the id dead and fails — it must not
         sleep forever on the orphaned channel *)
      check_int "waiter woken with EINVAL" einval (User.Usys.join tid))

let kill_edges () =
  in_kernel (fun _ ->
      check_int "kill(0)" einval (User.Usys.kill 0);
      check_int "kill(-1)" einval (User.Usys.kill (-1));
      check_int "kill(garbage pid)" esrch (User.Usys.kill 99999);
      let pid = User.Usys.fork (fun () -> 0) in
      check_bool "fork" true (pid > 0);
      (* child runs to exit and becomes a zombie *)
      ignore (User.Usys.sleep 2);
      check_int "kill(zombie)" esrch (User.Usys.kill pid);
      check_int "wait reaps it" pid (User.Usys.wait ());
      check_int "kill after reap" esrch (User.Usys.kill pid))

let self_kill_reapable () =
  in_kernel (fun _ ->
      let pid =
        User.Usys.fork (fun () ->
            ignore (User.Usys.kill (User.Usys.getpid ()));
            (* the killed flag lands at the next preemption point; this
               sleep must never complete *)
            ignore (User.Usys.sleep 1000);
            7)
      in
      check_bool "fork" true (pid > 0);
      check_int "self-killed child is reapable" pid (User.Usys.wait ()))

let suite_fuzz =
  ( "fuzz.engine",
    [
      quick "generator is seed-deterministic" gen_deterministic;
      quick "ops serialize and parse back" op_roundtrip;
      quick "corpus entries round-trip" corpus_roundtrip;
      slow "same seed, same session digest" session_deterministic;
      slow "canary shrinks to itself, deterministically" shrink_canary;
    ] )

let suite_regress =
  ( "fuzz.regressions",
    [
      slow "corpus replays clean" corpus_replay;
      quick "lseek rejects wild whence and negative offsets" lseek_edges;
      quick "read bounds hostile lengths" read_bounded;
      quick "procfs read past EOF is empty, not a crash" procfs_eof_read;
      quick "writable directory opens are EISDIR" dir_open_eisdir;
      quick "sem_open rejects negative values" sem_edges;
      quick "sem_close wakes parked waiters" sem_close_wakes_waiter;
      quick "kill edge cases" kill_edges;
      quick "self-kill terminates cleanly" self_kill_reapable;
    ] )
