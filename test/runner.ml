(* Aggregate test runner: `dune runtest`. *)

let () =
  Alcotest.run "vos"
    [
      Test_sim.suite;
      Test_par.suite;
      Test_hw.suite;
      Test_fs.suite_vpath;
      Test_fs.suite_blockdev;
      Test_fs.suite_xv6fs;
      Test_crash.suite_journal;
      Test_crash.suite_kernel;
      Test_fs.suite_fat32;
      Test_kernel.suite_sched;
      Test_kernel.suite_sched_classes;
      Test_kernel.suite_vm;
      Test_kernel.suite_ipc;
      Test_kernel.suite_files;
      Test_kernel.suite_io;
      Test_kernel.suite_devices;
      Test_kernel.suite_wm;
      Test_kernel.suite_debug;
      Test_kernel.suite_kcheck;
      Test_kperf.suite;
      Test_obs.suite;
      Test_user.suite_alloc;
      Test_user.suite_codecs;
      Test_user.suite_crypto;
      Test_user.suite_threads;
      Test_apps.suite_engines;
      Test_apps.suite_integration;
      Test_proto.suite;
      Test_ext.suite;
      Test_fuzz.suite_fuzz;
      Test_fuzz.suite_regress;
    ]
