(** Tests for the extension features and the deeper edge cases: USB mass
    storage, window movement, single-stepping, background shell jobs,
    buffer-cache behaviour, allocator/errno edges, and the ablation
    mechanisms. *)

open Tharness
open User

(* ---- USB mass storage (the §4.4 extensibility) ---- *)

let usb_stage () =
  Proto.Stage.boot ~prototype:5
    ~usb_files:
      [
        ("/photos/vacation.bmp", Proto.Assets.slide_bmp ());
        ("/notes/readme.txt", Bytes.of_string "hello from a usb stick");
      ]
    ()

let usb_stick_mounts () =
  let stage = usb_stage () in
  check_bool "device enumerated" true
    (Hw.Usb.msd_attached stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.usb);
  match
    Benchlib.Measure.run_task stage.Proto.Stage.kernel ~name:"usb-reader"
      (fun () ->
        match Usys.slurp "/usb/notes/readme.txt" with
        | Ok data ->
            if String.equal (Bytes.to_string data) "hello from a usb stick" then 0
            else 1
        | Error e -> e)
  with
  | Ok (0, _) -> ()
  | Ok (rc, _) -> Alcotest.failf "usb read failed: %d" rc
  | Error e -> Alcotest.fail e

let usb_stick_writable () =
  let stage = usb_stage () in
  match
    Benchlib.Measure.run_task stage.Proto.Stage.kernel ~name:"usb-writer"
      (fun () ->
        let fd = Usys.open_ "/usb/new.txt" (Core.Abi.o_create lor Core.Abi.o_rdwr) in
        if fd < 0 then -fd
        else begin
          ignore (Usys.write_str fd "persisted to the stick");
          ignore (Usys.lseek fd 0 Core.Abi.seek_set);
          match Usys.read fd 64 with
          | Ok b when String.equal (Bytes.to_string b) "persisted to the stick" ->
              ignore (Usys.close fd);
              0
          | Ok _ | Error _ -> 1
        end)
  with
  | Ok (0, _) -> ()
  | Ok (rc, _) -> Alcotest.failf "usb write failed: %d" rc
  | Error e -> Alcotest.fail e

let usb_and_sd_coexist () =
  let stage = usb_stage () in
  match
    Benchlib.Measure.run_task stage.Proto.Stage.kernel ~name:"both" (fun () ->
        (* both FAT mounts, plus the xv6 root, live side by side *)
        let sd = Usys.open_ "/d/music/track1.vogg" Core.Abi.o_rdonly in
        let usb = Usys.open_ "/usb/photos/vacation.bmp" Core.Abi.o_rdonly in
        let root = Usys.open_ "/scripts/demo.sh" Core.Abi.o_rdonly in
        if sd >= 0 && usb >= 0 && root >= 0 then 0 else 1)
  with
  | Ok (0, _) -> ()
  | Ok _ -> Alcotest.fail "a mount is missing"
  | Error e -> Alcotest.fail e

let usb_slower_than_ramdisk () =
  (* the stick pays USB bulk wire time; the xv6 root is memory-speed *)
  let stage = usb_stage () in
  let kernel = stage.Proto.Stage.kernel in
  Benchlib.Micro.prepare_file kernel ~path:"/usb/speed.bin" ~bytes:(128 * 1024);
  let usb_kbps =
    Benchlib.Micro.fs_throughput_kbps kernel ~path:"/usb/speed.bin"
      ~bytes:(128 * 1024) ~chunk:(32 * 1024) ~direction:`Read
  in
  check_in_range "usb ~bulk throughput" 200.0 2200.0 usb_kbps

let msd_bounds () =
  let b = Hw.Board.create () in
  Hw.Usb.attach_msd b.Hw.Board.usb (Bytes.make (512 * 8) '\000');
  ignore (check_err "read past end" (Hw.Usb.msd_read b.Hw.Board.usb ~lba:8 ~count:1));
  ignore (check_err "unattached"
      (let b2 = Hw.Board.create () in
       Hw.Usb.msd_read b2.Hw.Board.usb ~lba:0 ~count:1));
  let data, cost = check_ok "ok read" (Hw.Usb.msd_read b.Hw.Board.usb ~lba:0 ~count:8) in
  check_int "size" 4096 (Bytes.length data);
  check_bool "wire time charged" true (Int64.compare cost 1_000_000L > 0)

(* ---- window management extras ---- *)

let wm_move_window_with_keys () =
  let kernel = boot_kernel () in
  let board = kernel.Core.Kernel.board in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"win" (fun () ->
         match Gfx.windowed ~width:50 ~height:50 ~x:100 ~y:100 () with
         | Error e -> e
         | Ok gfx ->
             Gfx.present gfx;
             ignore (Usys.sleep 1_000_000);
             0));
  run_for kernel 1;
  let wm = Option.get kernel.Core.Kernel.wm in
  let s = Option.get (Core.Wm.surface wm (Option.get wm.Core.Wm.focus)) in
  check_int "starts at x=100" 100 s.Core.Wm.sx;
  (* ctrl+right moves the focused window 16 px *)
  Hw.Usb.key_down board.Hw.Board.usb ~modifiers:0x01 0x4f;
  run_for kernel 1;
  Hw.Usb.key_up board.Hw.Board.usb 0x4f;
  run_for kernel 1;
  check_int "moved right" 116 s.Core.Wm.sx;
  Hw.Usb.key_down board.Hw.Board.usb ~modifiers:0x01 0x51;
  run_for kernel 1;
  check_int "moved down" 116 s.Core.Wm.sy

let wm_overlap_zorder_pixels () =
  let kernel = boot_kernel () in
  let open_colored name color x =
    ignore
      (Core.Kernel.spawn_user kernel ~name (fun () ->
           match Gfx.windowed ~width:60 ~height:60 ~x ~y:50 () with
           | Error e -> e
           | Ok gfx ->
               Gfx.fill gfx color;
               Gfx.present gfx;
               ignore (Usys.sleep 1_000_000);
               0));
    run_for kernel 1
  in
  open_colored "below" 0xff0000 50;
  open_colored "above" 0x00ff00 80 (* overlaps columns 80..110 *);
  let fb = Option.get kernel.Core.Kernel.fb in
  check_int "overlap shows the top window" 0x00ff00
    (Hw.Framebuffer.display_pixel fb ~x:90 ~y:70);
  check_int "non-overlap shows the bottom one" 0xff0000
    (Hw.Framebuffer.display_pixel fb ~x:55 ~y:70)

(* ---- debug monitor: single-step ---- *)

let debugmon_single_step () =
  let kernel = boot_kernel () in
  let dm = kernel.Core.Kernel.debugmon in
  let frames_entered = ref 0 in
  let task =
    Core.Kernel.spawn_user kernel ~name:"stepped" (fun () ->
        for _ = 1 to 5 do
          Usys.in_frame "tick" (fun () -> incr frames_entered)
        done;
        0)
  in
  Core.Debugmon.step dm ~pid:task.Core.Task.pid ~count:3;
  run_for kernel 1;
  (* stopped at the first frame entry; resume twice more, consuming the
     remaining step budget *)
  check_int "stopped before body 1" 0 !frames_entered;
  Core.Debugmon.resume dm task.Core.Task.pid;
  run_for kernel 1;
  check_int "stopped before body 2" 1 !frames_entered;
  Core.Debugmon.resume dm task.Core.Task.pid;
  run_for kernel 1;
  check_int "stopped before body 3" 2 !frames_entered;
  Core.Debugmon.resume dm task.Core.Task.pid;
  run_for kernel 1;
  check_int "ran free afterwards" 5 !frames_entered;
  check_string "completed" "zombie" (Core.Task.state_name task)

(* ---- shell: background jobs and cd ---- *)

let shell_background_jobs () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  ignore (Proto.Stage.start stage "sh" [ "sh" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  (* a background donut keeps rendering while the shell prompts again *)
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "donut pixels 0 &\n";
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "echo still responsive\n";
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "job line printed" true (has "] donut &");
  check_bool "shell still responsive" true (has "still responsive");
  check_bool "donut runs in background" true
    (List.exists
       (fun t ->
         String.equal t.Core.Task.name "donut"
         && not (String.equal (Core.Task.state_name t) "zombie"))
       (Core.Sched.all_tasks kernel.Core.Kernel.sched))

let shell_cd_builtin () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  ignore (Proto.Stage.start stage "sh" [ "sh" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "cd /scripts; cat demo.sh\n";
  Proto.Stage.run_for stage (Sim.Engine.sec 3);
  let out = Proto.Stage.uart stage in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "relative cat after cd" true (has "demo script")

(* ---- slider with the high-res P5 PNG ---- *)

let slider_hires_png () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let task =
    Proto.Stage.start stage "slider" [ "slider"; "/d/slides"; "150"; "1" ]
  in
  Proto.Stage.run_for stage (Sim.Engine.sec 8);
  check_string "deck completed (incl. 640x480 PNG)" "zombie"
    (Core.Task.state_name task);
  (* /d/slides holds two files (the 640x480 PNG and a BMP): both shown *)
  check_bool "slides presented" true
    (Core.Sched.frames_presented stage.Proto.Stage.kernel.Core.Kernel.sched
       ~pid:task.Core.Task.pid
    >= 2)

(* ---- buffer cache behaviour ---- *)

let bufcache_hits_and_misses () =
  let board = Hw.Board.create () in
  let image = Bytes.make (64 * 512) '\000' in
  Bytes.blit_string "cached-data" 0 image 1024 11;
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:1 ~capacity:4 ()
  in
  let first = Core.Bufcache.bread bc 2 in
  check_string "content" "cached-data" (Bytes.sub_string first 0 11);
  check_int "one miss" 1 (Core.Bufcache.misses bc);
  ignore (Core.Bufcache.bread bc 2);
  check_int "then a hit" 1 (Core.Bufcache.hits bc);
  (* evict by touching more blocks than capacity *)
  List.iter (fun n -> ignore (Core.Bufcache.bread bc n)) [ 3; 4; 5; 6; 7 ];
  ignore (Core.Bufcache.bread bc 2);
  check_bool "block 2 was evicted (second miss)" true (Core.Bufcache.misses bc >= 7)

let bufcache_write_through () =
  let board = Hw.Board.create () in
  let image = Bytes.make (8 * 512) '\000' in
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:1 ()
  in
  let block = Bytes.make 512 'w' in
  Core.Bufcache.bwrite bc 3 block;
  check_bool "device updated immediately" true
    (Bytes.get image (3 * 512) = 'w')

(* ---- errno mapping ---- *)

let errno_mapping () =
  check_int "not found" Core.Errno.enoent (Core.Errno.of_fs_error "fat32: not found: x");
  check_int "exists" Core.Errno.eexist (Core.Errno.of_fs_error "xv6fs: exists: /a");
  check_int "not a dir" Core.Errno.enotdir (Core.Errno.of_fs_error "fat32: not a directory: f");
  check_int "is a dir" Core.Errno.eisdir (Core.Errno.of_fs_error "fat32: is a directory: d");
  check_int "too large" Core.Errno.efbig (Core.Errno.of_fs_error "xv6fs: file too large");
  check_int "enospc" Core.Errno.enospc (Core.Errno.of_fs_error "xv6fs: out of data blocks");
  check_int "not empty" Core.Errno.enotempty (Core.Errno.of_fs_error "fat32: directory not empty");
  check_int "fallback" Core.Errno.einval (Core.Errno.of_fs_error "weird");
  check_string "name table" "ENOENT" (Core.Errno.name Core.Errno.enoent)

(* ---- uncached framebuffer costs more (the ablation's mechanism) ---- *)

let uncached_fb_costs_more () =
  let kernel = boot_kernel () in
  let fb = Option.get kernel.Core.Kernel.fb in
  let frame mapping =
    Hw.Framebuffer.set_mapping fb mapping;
    match
      Benchlib.Measure.run_task kernel ~name:"painter" (fun () ->
          let env = Uenv.create () in
          env.Uenv.e_fb <- Some fb;
          match Gfx.direct env with
          | Error e -> e
          | Ok gfx ->
              Gfx.fill gfx 0x112233;
              Gfx.present gfx;
              0)
    with
    | Ok (_, ns) -> Sim.Engine.to_ms ns
    | Error e -> Alcotest.fail e
  in
  let cached = frame Hw.Framebuffer.Cached in
  let uncached = frame Hw.Framebuffer.Uncached in
  check_bool "uncached at least 2x slower" true (uncached > 2.0 *. cached)

(* ---- xv6fs dirent slot reuse ---- *)

let xv6_dirent_slot_reuse () =
  let img = Fs.Xv6fs.mkfs ~total_blocks:1024 ~ninodes:32 () in
  let t = Result.get_ok (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  ignore (check_ok "a" (Fs.Xv6fs.create t "/a" Fs.Xv6fs.Reg));
  ignore (check_ok "b" (Fs.Xv6fs.create t "/b" Fs.Xv6fs.Reg));
  let root = Fs.Xv6fs.root t in
  let size_before = (Fs.Xv6fs.stat_of t root).Fs.Xv6fs.st_size in
  ignore (check_ok "rm a" (Fs.Xv6fs.unlink t "/a"));
  ignore (check_ok "c reuses the slot" (Fs.Xv6fs.create t "/c" Fs.Xv6fs.Reg));
  check_int "directory did not grow" size_before
    (Fs.Xv6fs.stat_of t root).Fs.Xv6fs.st_size

(* ---- kbd ring overflow drops oldest ---- *)

let kbd_ring_overflow () =
  let kernel = boot_kernel () in
  let board = kernel.Core.Kernel.board in
  (* no reader: flood more than the 64-entry ring via GPIO edges *)
  for _ = 1 to 40 do
    Hw.Gpio.press board.Hw.Board.gpio Hw.Gpio.A;
    Hw.Gpio.release board.Hw.Board.gpio Hw.Gpio.A
  done;
  run_for kernel 1;
  let kbd = kernel.Core.Kernel.kbd in
  check_int "ring capped at 64" 64 (Core.Kbd.pending kbd);
  check_bool "drops counted" true (Core.Kbd.dropped kbd >= 16)

(* ---- sleep precision and uptime ---- *)

let sleep_precision () =
  let durations = [ 1; 7; 33; 250 ] in
  in_kernel (fun _ ->
      List.iter
        (fun ms ->
          let t0 = Usys.uptime_ms () in
          ignore (Usys.sleep ms);
          let waited = Usys.uptime_ms () - t0 in
          if waited < ms || waited > ms + 3 then
            Alcotest.failf "sleep %d drifted to %d" ms waited)
        durations)

(* ---- final property sweep ---- *)

let mv1_roundtrip_prop =
  qcheck ~count:15 "mv1 encode/decode any 16x16 frame stays in range"
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 1)) in
      let width = 16 and height = 16 in
      let frame =
        {
          Mv1.y_plane = Array.init (width * height) (fun _ -> Sim.Rng.int rng 256);
          u_plane = Array.init (width / 2 * (height / 2)) (fun _ -> Sim.Rng.int rng 256);
          v_plane = Array.init (width / 2 * (height / 2)) (fun _ -> Sim.Rng.int rng 256);
        }
      in
      let back =
        Mv1.decode_frame ~width ~height ~quality:Mv1.quality
          (Mv1.encode_frame ~width ~height ~quality:Mv1.quality frame)
      in
      Array.for_all (fun v -> v >= 0 && v <= 255) back.Mv1.y_plane
      && Array.for_all (fun v -> v >= 0 && v <= 255) back.Mv1.u_plane)

let adpcm_stays_in_int16 =
  qcheck ~count:25 "adpcm decode of arbitrary nibbles stays in int16"
    QCheck.(pair small_nat (int_range 1 2000))
    (fun (seed, n) ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 3)) in
      let data = Bytes.init ((n + 1) / 2) (fun _ -> Char.chr (Sim.Rng.int rng 256)) in
      let out = Adpcm.decode data ~samples:n in
      Array.for_all (fun s -> s >= -32768 && s <= 32767) out)

let vpath_join_prop =
  qcheck "join with a relative path extends the directory"
    QCheck.(pair (string_of_size (Gen.int_bound 20)) (string_of_size (Gen.int_bound 20)))
    (fun (dir, name) ->
      let clean s = String.map (fun c -> if c = '/' then '_' else c) s in
      let name = clean name in
      if String.length name = 0 || String.equal name "." || String.equal name ".."
      then true
      else begin
        let joined = Fs.Vpath.join ("/" ^ clean dir) name in
        String.equal (Fs.Vpath.basename joined) name
      end)

let sched_many_sleepers_all_wake =
  qcheck ~count:5 "N sleepers with random delays all wake exactly once"
    QCheck.(int_range 2 20)
    (fun n ->
      let kernel = boot_kernel () in
      let woke = Array.make n 0 in
      for i = 0 to n - 1 do
        ignore
          (Core.Kernel.spawn_user kernel
             ~name:(Printf.sprintf "sleeper%d" i)
             (fun () ->
               ignore (Usys.sleep (10 + (i * 13 mod 200)));
               woke.(i) <- woke.(i) + 1;
               0))
      done;
      run_for kernel 2;
      Array.for_all (fun w -> w = 1) woke)

let fat_lfn_prop =
  qcheck ~count:20 "fat32 stores and restores arbitrary long names"
    QCheck.(string_gen_of_size (Gen.int_range 1 60) (Gen.char_range 'a' 'z'))
    (fun name ->
      let dev, _ = Fs.Blockdev.ramdisk ~name:"sd" ~sectors:8192 in
      let io = Fs.Fat32.io_of_blockdev dev in
      Fs.Fat32.mkfs io ~total_sectors:8192 ();
      let t = Result.get_ok (Fs.Fat32.mount io) in
      match Fs.Fat32.create t ("/" ^ name) with
      | Error _ -> false
      | Ok () -> (
          match Fs.Fat32.readdir t "/" with
          | Ok [ (stored, _) ] -> String.equal (String.lowercase_ascii stored) name
          | Ok _ | Error _ -> false))

let suite =
  ( "extensions",
    [
      quick "usb stick mounts under /usb" usb_stick_mounts;
      quick "usb stick is writable" usb_stick_writable;
      quick "usb + sd + root coexist" usb_and_sd_coexist;
      slow "usb throughput is bulk-limited" usb_slower_than_ramdisk;
      quick "msd bounds" msd_bounds;
      quick "wm: move window with ctrl+arrows" wm_move_window_with_keys;
      quick "wm: overlap obeys z-order" wm_overlap_zorder_pixels;
      quick "debugmon single-step" debugmon_single_step;
      slow "shell background jobs (&)" shell_background_jobs;
      slow "shell cd builtin" shell_cd_builtin;
      slow "slider handles the hires PNG" slider_hires_png;
      quick "bufcache hits/misses/LRU" bufcache_hits_and_misses;
      quick "bufcache write-through" bufcache_write_through;
      quick "errno mapping" errno_mapping;
      quick "uncached fb costs more" uncached_fb_costs_more;
      quick "xv6fs dirent slot reuse" xv6_dirent_slot_reuse;
      quick "kbd ring overflow drops" kbd_ring_overflow;
      quick "sleep precision" sleep_precision;
      mv1_roundtrip_prop;
      adpcm_stays_in_int16;
      vpath_join_prop;
      sched_many_sleepers_all_wake;
      fat_lfn_prop;
    ] )
