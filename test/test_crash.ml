(* Crash consistency: the write-ahead journal, the power-cut harness and
   the fsck checker — plus the two kernel-level contracts (fsync's
   ordered barrier, clean shutdown leaving nothing to replay). *)

open Tharness

(* little-endian helpers matching the on-disk format *)
let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let bb = Fs.Xv6fs.block_bytes
let sb_field img off = get32 img (bb + off)
let logstart img = sb_field img 24
let datastart img = sb_field img 20
let bmapstart img = sb_field img 16

(* FNV-1a over a header block with the checksum field zeroed — the same
   function the journal uses, reimplemented so the test is an independent
   witness of the on-disk format *)
let log_cksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    let c = if i >= 12 && i < 16 then 0 else Bytes.get_uint8 b i in
    h := (!h lxor c) * 0x01000193 land 0xffffffff
  done;
  !h land 0x7fffffff

let log_magic = 0x564f4c47

(* Stamp a commit record for [blocks] into the image's log header;
   [good_cksum:false] simulates a record torn mid-write. *)
let stamp_header img ~good_cksum ~seq ~blocks =
  let h = Bytes.make bb '\000' in
  put32 h 0 log_magic;
  put32 h 4 seq;
  put32 h 8 (List.length blocks);
  List.iteri (fun i bno -> put32 h (16 + (4 * i)) bno) blocks;
  let ck = log_cksum h in
  put32 h 12 (if good_cksum then ck else ck lxor 1);
  Bytes.blit h 0 img (logstart img * bb) bb

let mount_image img =
  check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img))

let check_fsck name fs =
  let r = Fs.Xv6fs.fsck fs in
  if not r.Fs.Xv6fs.fsck_clean then
    Alcotest.failf "%s: fsck: %s" name
      (String.concat "; " r.Fs.Xv6fs.fsck_errors)

(* ---- the journal format ---- *)

let journaled_mount_is_clean () =
  let img = Fs.Xv6fs.mkfs ~nlog:32 ~total_blocks:512 ~ninodes:16 () in
  let t = mount_image img in
  check_bool "journaled" true (Fs.Xv6fs.journaled t);
  check_int "nothing to replay" 0 (Fs.Xv6fs.log_replayed t);
  check_int "no commits yet" 0 (Fs.Xv6fs.log_commits t);
  check_fsck "fresh image" t;
  (* and the journal-free format is untouched by the feature *)
  let legacy = Fs.Xv6fs.mkfs ~total_blocks:512 ~ninodes:16 () in
  check_bool "legacy not journaled" false (Fs.Xv6fs.journaled (mount_image legacy))

let replay_installs_committed_tx () =
  let img = Fs.Xv6fs.mkfs ~nlog:8 ~total_blocks:256 ~ninodes:8 () in
  (* a committed-but-uninstalled transaction: one log slot destined for a
     free data block the crash interrupted on its way home *)
  let dest = datastart img + 10 in
  let payload = Bytes.make bb 'J' in
  Bytes.blit payload 0 img ((logstart img + 1) * bb) bb;
  stamp_header img ~good_cksum:true ~seq:3 ~blocks:[ dest ];
  let t = mount_image img in
  check_int "replayed one block" 1 (Fs.Xv6fs.log_replayed t);
  check_bool "slot installed home" true
    (Bytes.equal payload (Bytes.sub img (dest * bb) bb));
  (* the record is cleared: a second mount replays nothing *)
  check_int "idempotent" 0 (Fs.Xv6fs.log_replayed (mount_image img));
  check_fsck "after replay" t

let torn_commit_record_is_ignored () =
  let img = Fs.Xv6fs.mkfs ~nlog:8 ~total_blocks:256 ~ninodes:8 () in
  let dest = datastart img + 10 in
  let before = Bytes.sub img (dest * bb) bb in
  Bytes.blit (Bytes.make bb 'J') 0 img ((logstart img + 1) * bb) bb;
  stamp_header img ~good_cksum:false ~seq:3 ~blocks:[ dest ];
  let t = mount_image img in
  check_int "bad checksum means no commit" 0 (Fs.Xv6fs.log_replayed t);
  check_bool "home block untouched" true
    (Bytes.equal before (Bytes.sub img (dest * bb) bb));
  check_fsck "old state intact" t

(* ---- write-ahead: pinning defers home blocks until commit ---- *)

let pinning_defers_until_commit () =
  let board = Hw.Board.create ~sd_mib:1 () in
  let base = Fs.Xv6fs.mkfs ~nlog:32 ~total_blocks:512 ~ninodes:16 () in
  let image = Bytes.copy base in
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:2 ~capacity:64 ~writeback:true ()
  in
  let fs = check_ok "mount" (Fs.Xv6fs.mount (Core.Bufcache.xv6_io bc)) in
  let f = check_ok "create" (Fs.Xv6fs.create fs "/p" Fs.Xv6fs.Reg) in
  let data = Bytes.make 3000 'p' in
  ignore (check_ok "write" (Fs.Xv6fs.writei fs f ~off:0 ~data));
  check_bool "tx open" true (Fs.Xv6fs.log_pending fs > 0);
  check_bool "home blocks pinned" true (Core.Bufcache.pinned_blocks bc > 0);
  (* the medium still holds the pre-transaction state *)
  let snap = mount_image (Bytes.copy image) in
  check_fsck "media consistent pre-commit" snap;
  ignore (check_err "file not durable yet" (Fs.Xv6fs.lookup snap "/p"));
  (* commit + barrier: everything lands, pins drop *)
  check_bool "commit wrote blocks" true (Fs.Xv6fs.commit fs > 0);
  Core.Bufcache.barrier bc;
  check_int "no pins after commit" 0 (Core.Bufcache.pinned_blocks bc);
  let snap2 = mount_image (Bytes.copy image) in
  check_int "clean commit leaves no replay" 0 (Fs.Xv6fs.log_replayed snap2);
  let f2 = check_ok "durable" (Fs.Xv6fs.lookup snap2 "/p") in
  check_bool "content durable" true
    (Bytes.equal data (check_ok "read" (Fs.Xv6fs.readi snap2 f2 ~off:0 ~len:3000)));
  check_fsck "media consistent post-commit" snap2

(* ---- exhaustive power-cut sweep ----

   A short workload through the cache; then one trial per media sector a
   clean run writes, cutting the rail there (tearing multi-sector block
   writes in half) and requiring every remount to be fsck-clean. *)

let sweep_base () = Fs.Xv6fs.mkfs ~nlog:32 ~total_blocks:512 ~ninodes:16 ()

let sweep_once ~base ~cut =
  let board = Hw.Board.create ~sd_mib:1 () in
  (match cut with
  | Some sectors -> Hw.Power.cut_after_media_writes board.Hw.Board.supply ~sectors
  | None -> ());
  let image = Bytes.copy base in
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:2 ~capacity:32 ~writeback:true ()
  in
  let fs = check_ok "mount" (Fs.Xv6fs.mount (Core.Bufcache.xv6_io bc)) in
  let sync () =
    ignore (Fs.Xv6fs.commit fs);
    Core.Bufcache.barrier bc
  in
  let f = check_ok "create /a" (Fs.Xv6fs.create fs "/a" Fs.Xv6fs.Reg) in
  ignore (check_ok "w1" (Fs.Xv6fs.writei fs f ~off:0 ~data:(Bytes.make 3000 'a')));
  sync ();
  Fs.Xv6fs.truncate fs f;
  ignore (check_ok "w2" (Fs.Xv6fs.writei fs f ~off:0 ~data:(Bytes.make 5000 'b')));
  ignore (check_ok "create /b" (Fs.Xv6fs.create fs "/b" Fs.Xv6fs.Reg));
  sync ();
  (board, image)

let exhaustive_cut_sweep () =
  let base = sweep_base () in
  let board, _ = sweep_once ~base ~cut:None in
  let total = Hw.Power.media_writes board.Hw.Board.supply in
  check_bool "clean run hits the medium" true (total > 0);
  let replays = ref 0 in
  for cut = 1 to total do
    let board, image = sweep_once ~base ~cut:(Some cut) in
    Hw.Power.revive board.Hw.Board.supply;
    let bc =
      Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
        ~block_sectors:2 ()
    in
    match Fs.Xv6fs.mount (Core.Bufcache.xv6_io bc) with
    | Error e -> Alcotest.failf "cut %d/%d: remount: %s" cut total e
    | Ok fs ->
        if Fs.Xv6fs.log_replayed fs > 0 then incr replays;
        let r = Fs.Xv6fs.fsck fs in
        if not r.Fs.Xv6fs.fsck_clean then
          Alcotest.failf "cut %d/%d: fsck: %s" cut total
            (String.concat "; " r.Fs.Xv6fs.fsck_errors)
  done;
  check_bool "some cuts landed inside a commit" true (!replays > 0)

(* ---- the randomized harness is deterministic ---- *)

let crashbench_deterministic () =
  let a = Benchlib.Crashbench.run ~seed:99L ~trials:150 () in
  let b = Benchlib.Crashbench.run ~seed:99L ~trials:150 () in
  check_int "no fsck failures" 0 a.Benchlib.Crashbench.s_fsck_failures;
  check_int "no invariant failures" 0 a.Benchlib.Crashbench.s_invariant_failures;
  check_string "same seed, same run hash" a.Benchlib.Crashbench.s_run_hash
    b.Benchlib.Crashbench.s_run_hash;
  check_bool "replays observed" true (a.Benchlib.Crashbench.s_replayed_trials > 0)

(* ---- fsck detects what the journal cannot prevent ---- *)

let fsck_flags_bitmap_corruption () =
  let img = Fs.Xv6fs.mkfs ~nlog:8 ~total_blocks:256 ~ninodes:8 () in
  (* the root directory's data block is in use; clear its bitmap bit *)
  let blk = datastart img in
  let off = (bmapstart img * bb) + (blk mod (bb * 8) / 8) in
  let bit = blk mod 8 in
  Bytes.set_uint8 img off (Bytes.get_uint8 img off land lnot (1 lsl bit));
  let r = Fs.Xv6fs.fsck (mount_image img) in
  check_bool "in-use block marked free is flagged" false r.Fs.Xv6fs.fsck_clean

let fsck_flags_leaked_block () =
  let img = Fs.Xv6fs.mkfs ~nlog:8 ~total_blocks:256 ~ninodes:8 () in
  (* mark a block no file references as allocated *)
  let blk = datastart img + 20 in
  let off = (bmapstart img * bb) + (blk mod (bb * 8) / 8) in
  let bit = blk mod 8 in
  Bytes.set_uint8 img off (Bytes.get_uint8 img off lor (1 lsl bit));
  let r = Fs.Xv6fs.fsck (mount_image img) in
  check_bool "leaked block is flagged" false r.Fs.Xv6fs.fsck_clean

let suite_journal =
  ( "fs.journal",
    [
      quick "journaled image mounts clean" journaled_mount_is_clean;
      quick "replay installs a committed tx" replay_installs_committed_tx;
      quick "torn commit record is ignored" torn_commit_record_is_ignored;
      quick "pinning defers home writes until commit" pinning_defers_until_commit;
      quick "exhaustive power-cut sweep stays fsck-clean" exhaustive_cut_sweep;
      slow "crash harness is deterministic" crashbench_deterministic;
      quick "fsck flags bitmap corruption" fsck_flags_bitmap_corruption;
      quick "fsck flags leaked blocks" fsck_flags_leaked_block;
    ] )

(* ---- kernel-level contracts ---- *)

let journal_config =
  {
    test_config with
    Core.Kconfig.journal = true;
    writeback = true;
    flush_interval_ms = 50;
  }

(* fsync on the journaled rootfs commits the open transaction and drops
   every pin; the ack means the data is on the medium. *)
let fsync_commits_rootfs () =
  in_kernel ~config:journal_config (fun kernel ->
      let fd =
        User.Usys.open_ "/f.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr)
      in
      check_bool "open" true (fd >= 0);
      check_int "write" 6000 (User.Usys.write fd (Bytes.make 6000 'x'));
      let rootfs = kernel.Core.Kernel.rootfs in
      let c0 = Fs.Xv6fs.log_commits rootfs in
      check_int "fsync" 0 (User.Usys.fsync fd);
      check_bool "fsync committed" true (Fs.Xv6fs.log_commits rootfs > c0);
      check_int "no open tx after fsync" 0 (Fs.Xv6fs.log_pending rootfs);
      check_int "no pins after fsync" 0
        (Core.Bufcache.pinned_blocks kernel.Core.Kernel.root_bc);
      ignore (User.Usys.close fd))

(* fsync's barrier drains the whole device queue: a write queued before
   the fsync cannot be reordered past the ack. Regression for the
   ordering audit — the FAT32 cache sits on the real SD queue. *)
let fsync_barriers_device_queue () =
  in_kernel ~config:{ test_config with Core.Kconfig.writeback = true }
    (fun kernel ->
      let sd = kernel.Core.Kernel.board.Hw.Board.sd in
      let fd =
        User.Usys.open_ "/d/f.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr)
      in
      check_bool "open" true (fd >= 0);
      check_int "write" 4096 (User.Usys.write fd (Bytes.make 4096 'q'));
      (* an unrelated write sits in the device queue ahead of the fsync *)
      check_ok "backlog"
        (Hw.Sd.enqueue_write sd ~lba:(Hw.Sd.sectors sd - 1)
           ~data:(Bytes.make Hw.Sd.sector_bytes 'z'));
      check_bool "queue non-empty" true (Hw.Sd.queued sd > 0);
      let b0 = Hw.Sd.barrier_count sd in
      check_int "fsync" 0 (User.Usys.fsync fd);
      check_int "queue drained through the barrier" 0 (Hw.Sd.queued sd);
      check_bool "a barrier was issued" true (Hw.Sd.barrier_count sd > b0);
      ignore (User.Usys.close fd))

(* clean shutdown checkpoints the journal: remounting the medium replays
   nothing and the data is all there *)
let clean_shutdown_replays_nothing () =
  let kernel = boot_kernel ~config:journal_config () in
  (match
     Benchlib.Measure.run_task kernel ~name:"writer" (fun () ->
         let fd =
           User.Usys.open_ "/s.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr)
         in
         check_int "write" 9000 (User.Usys.write fd (Bytes.make 9000 's'));
         ignore (User.Usys.close fd))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Core.Kernel.shutdown kernel;
  let image =
    match Core.Bufcache.backing_image kernel.Core.Kernel.root_bc with
    | Some i -> Bytes.copy i
    | None -> Alcotest.fail "rootfs cache is not RAM-backed"
  in
  let t = mount_image image in
  check_bool "journaled" true (Fs.Xv6fs.journaled t);
  check_int "nothing to replay after clean shutdown" 0 (Fs.Xv6fs.log_replayed t);
  check_fsck "clean shutdown" t;
  let f = check_ok "file durable" (Fs.Xv6fs.lookup t "/s.dat") in
  check_bool "content durable" true
    (Bytes.equal (Bytes.make 9000 's')
       (check_ok "read" (Fs.Xv6fs.readi t f ~off:0 ~len:9000)))

(* a power cut mid-run leaves a medium every remount accepts *)
let kernel_power_cut_is_recoverable () =
  let kernel = boot_kernel ~config:journal_config () in
  let supply = kernel.Core.Kernel.board.Hw.Board.supply in
  (match
     Benchlib.Measure.run_task kernel ~name:"writer" (fun () ->
         let fd =
           User.Usys.open_ "/c.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr)
         in
         check_int "write" 4096 (User.Usys.write fd (Bytes.make 4096 'c'));
         check_int "fsync" 0 (User.Usys.fsync fd);
         (* the rail dies 37 sectors into whatever comes next *)
         Hw.Power.cut_after_media_writes supply ~sectors:37;
         ignore (User.Usys.write fd (Bytes.make 8192 'd'));
         ignore (User.Usys.fsync fd))
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_bool "the cut fired" false (Hw.Power.alive supply);
  let image =
    match Core.Bufcache.backing_image kernel.Core.Kernel.root_bc with
    | Some i -> Bytes.copy i
    | None -> Alcotest.fail "rootfs cache is not RAM-backed"
  in
  let t = mount_image image in
  check_fsck "post-cut medium" t;
  (* the acked pre-cut write is never lost *)
  let f = check_ok "file survives" (Fs.Xv6fs.lookup t "/c.dat") in
  let size = (Fs.Xv6fs.stat_of t f).Fs.Xv6fs.st_size in
  check_bool "at least the acked bytes" true (size >= 4096);
  let b = check_ok "read" (Fs.Xv6fs.readi t f ~off:0 ~len:4096) in
  check_bool "acked prefix intact" true (Bytes.equal b (Bytes.make 4096 'c'))

let suite_kernel =
  ( "kernel.crash",
    [
      quick "fsync commits the rootfs journal" fsync_commits_rootfs;
      quick "fsync drains the device queue through a barrier"
        fsync_barriers_device_queue;
      quick "clean shutdown leaves nothing to replay"
        clean_shutdown_replays_nothing;
      quick "power cut mid-run is recoverable" kernel_power_cut_is_recoverable;
    ] )
