(** Tests for the host-parallel engine stack: tombstone cancellation,
    the (time, seq) firing contract under arbitrary interleavings, the
    fiber coroutine layer, parallel events ([schedule_par] / the
    [Usys.offload] syscall), and the headline property — the virtual
    trace of a full kernel workload is byte-identical whatever
    [sim_domains] says. *)

open Tharness

(* ---- cancel: the miscount regression ----

   The seed engine kept cancelled ids in a hashtable and decremented the
   pending count unconditionally, so cancelling a fired (or already
   cancelled) id skewed [pending] negative. The tombstone engine only
   drops the count when a live event is actually killed. *)

let cancel_fired_id_is_noop () =
  let e = Sim.Engine.create () in
  let id = Sim.Engine.schedule_at e 10L (fun () -> ()) in
  ignore (Sim.Engine.schedule_at e 20L (fun () -> ()));
  check_int "two pending" 2 (Sim.Engine.pending e);
  ignore (Sim.Engine.step e);
  check_int "one left after fire" 1 (Sim.Engine.pending e);
  Sim.Engine.cancel e id;
  check_int "cancelling a fired id changes nothing" 1 (Sim.Engine.pending e);
  Sim.Engine.run e ();
  check_int "drained" 0 (Sim.Engine.pending e);
  Sim.Engine.cancel e id;
  check_int "still zero" 0 (Sim.Engine.pending e)

let cancel_twice_counts_once () =
  let e = Sim.Engine.create () in
  let fired = ref 0 in
  let a = Sim.Engine.schedule_at e 10L (fun () -> incr fired) in
  ignore (Sim.Engine.schedule_at e 20L (fun () -> incr fired));
  ignore (Sim.Engine.schedule_at e 30L (fun () -> incr fired));
  Sim.Engine.cancel e a;
  check_int "one cancelled" 2 (Sim.Engine.pending e);
  Sim.Engine.cancel e a;
  Sim.Engine.cancel e a;
  check_int "double cancel counts once" 2 (Sim.Engine.pending e);
  Sim.Engine.run e ();
  check_int "survivors fired" 2 !fired;
  check_int "empty" 0 (Sim.Engine.pending e)

(* ---- the firing contract, property-tested ----

   Any interleaving of schedule_at / schedule_par / cancel / step must
   fire exactly the non-cancelled events, in (time, seq) order, with
   [pending] correct at every phase boundary. Run at 1 domain and at 4:
   the parallel batching path must not change observable order. *)

let firing_contract domains =
  qcheck ~count:60
    (Printf.sprintf "fires in (time,seq) order, %d domain%s" domains
       (if domains > 1 then "s" else ""))
    QCheck.(
      pair
        (list_of_size
           (Gen.int_range 1 30)
           (triple (int_bound 100) bool bool))
        (list_of_size
           (Gen.int_range 0 30)
           (triple (int_bound 100) bool bool)))
    (fun (batch1, batch2) ->
      let e = Sim.Engine.create () in
      Sim.Engine.set_domains e domains;
      let log = ref [] in
      let seq = ref 0 in
      let model = ref [] in
      (* (time, seq, cancelled) *)
      let ids = ref [] in
      let add_batch batch =
        List.iter
          (fun (off, par, cancelled) ->
            let time = Int64.add (Sim.Engine.now e) (Int64.of_int off) in
            let s = !seq in
            incr seq;
            let id =
              if par then
                Sim.Engine.schedule_par e time ~affinity:(s mod 4)
                  (fun () ->
                    let v = s in
                    fun () -> log := v :: !log)
              else Sim.Engine.schedule_at e time (fun () -> log := s :: !log)
            in
            if cancelled then Sim.Engine.cancel e id;
            ids := id :: !ids;
            model := (time, s, cancelled) :: !model)
          batch
      in
      let live () =
        List.length (List.filter (fun (_, _, c) -> not c) !model)
      in
      add_batch batch1;
      let ok1 = Sim.Engine.pending e = live () in
      (* interleave: fire half of what is pending, then schedule more *)
      let steps = Sim.Engine.pending e / 2 in
      for _ = 1 to steps do
        ignore (Sim.Engine.step e)
      done;
      let ok2 = Sim.Engine.pending e = live () - steps in
      add_batch batch2;
      (* re-cancelling everything already cancelled or fired must not
         move the count *)
      let before = Sim.Engine.pending e in
      List.iter
        (fun ((_, s, c), id) ->
          if c || List.mem s !log then Sim.Engine.cancel e id)
        (List.combine (List.rev !model) (List.rev !ids));
      let ok3 = Sim.Engine.pending e = before in
      Sim.Engine.run e ();
      let expected =
        !model
        |> List.filter (fun (_, _, c) -> not c)
        |> List.sort (fun (t1, s1, _) (t2, s2, _) ->
               match Int64.compare t1 t2 with 0 -> compare s1 s2 | c -> c)
        |> List.map (fun (_, s, _) -> s)
      in
      ok1 && ok2 && ok3
      && List.rev !log = expected
      && Sim.Engine.pending e = 0)

(* ---- fibers ---- *)

let fiber_runs_inline_to_first_suspension () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let h =
    Sim.Fiber.run e (fun () ->
        log := "start" :: !log;
        Sim.Fiber.sleep 100L;
        log := "after-sleep" :: !log)
  in
  check_bool "body ran inline" true (!log = [ "start" ]);
  check_bool "not finished while parked" false (Sim.Fiber.finished h);
  ignore (Sim.Engine.schedule_at e 50L (fun () -> log := "mid" :: !log));
  Sim.Engine.run e ();
  check_string "events interleave with the sleep" "start,mid,after-sleep"
    (String.concat "," (List.rev !log));
  check_bool "finished" true (Sim.Fiber.finished h)

let fiber_loop_matches_closure_chain () =
  (* A fiberised periodic loop must allocate the same (time, seq) events
     as the self-rescheduling closure chain it replaces. *)
  let run_trace make =
    let e = Sim.Engine.create () in
    let log = ref [] in
    make e (fun () -> log := Sim.Engine.now e :: !log);
    Sim.Engine.run e ~until:1000L ();
    List.rev !log
  in
  let chain =
    run_trace (fun e tick ->
        let rec loop () =
          tick ();
          ignore (Sim.Engine.schedule_after e 100L loop)
        in
        ignore (Sim.Engine.schedule_after e 100L loop))
  in
  let fiber =
    run_trace (fun e tick ->
        ignore
          (Sim.Fiber.spawn e ~after:100L (fun () ->
               while true do
                 tick ();
                 Sim.Fiber.sleep 100L
               done)))
  in
  check_bool "identical tick instants" true (chain = fiber)

let fiber_yield_is_fifo () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let body name () =
    for i = 1 to 2 do
      log := Printf.sprintf "%s%d" name i :: !log;
      Sim.Fiber.yield ()
    done
  in
  ignore (Sim.Fiber.spawn e (body "a"));
  ignore (Sim.Fiber.spawn e (body "b"));
  Sim.Engine.run e ();
  check_string "round-robin at one instant" "a1,b1,a2,b2"
    (String.concat "," (List.rev !log))

let fiber_ivar_fifo_wakeup () =
  let e = Sim.Engine.create () in
  let iv = Sim.Fiber.Ivar.create e in
  let log = ref [] in
  let waiter name () =
    let v = Sim.Fiber.await iv in
    log := Printf.sprintf "%s=%d" name v :: !log
  in
  ignore (Sim.Fiber.spawn e (waiter "a"));
  ignore (Sim.Fiber.spawn e (waiter "b"));
  Sim.Engine.run e ();
  check_bool "nobody woke yet" true (!log = []);
  check_bool "empty" false (Sim.Fiber.Ivar.is_full iv);
  Sim.Fiber.Ivar.fill iv 7;
  Sim.Engine.run e ();
  check_string "waiters wake in await order" "a=7,b=7"
    (String.concat "," (List.rev !log));
  check_bool "full" true (Sim.Fiber.Ivar.is_full iv);
  Alcotest.check_raises "second fill rejected"
    (Invalid_argument "Fiber.Ivar.fill: already filled") (fun () ->
      Sim.Fiber.Ivar.fill iv 8);
  (* awaiting a full ivar returns immediately *)
  ignore (Sim.Fiber.spawn e (waiter "late"));
  Sim.Engine.run e ();
  check_bool "late waiter sees the value" true
    (List.hd !log = "late=7")

let fiber_cancel_parked () =
  let e = Sim.Engine.create () in
  let ticks = ref 0 in
  let h =
    Sim.Fiber.spawn e (fun () ->
        while true do
          incr ticks;
          Sim.Fiber.sleep 100L
        done)
  in
  Sim.Engine.run e ~until:250L ();
  check_int "ran until cancel" 3 !ticks;
  Sim.Fiber.cancel e h;
  check_bool "finished after cancel" true (Sim.Fiber.finished h);
  check_int "wakeup tombstoned" 0 (Sim.Engine.pending e);
  Sim.Engine.run e ~until:1000L ();
  check_int "never ticked again" 3 !ticks;
  Sim.Fiber.cancel e h (* no-op on finished fibers *)

let fiber_cancel_awaiting () =
  let e = Sim.Engine.create () in
  let iv = Sim.Fiber.Ivar.create e in
  let reached = ref false in
  let h =
    Sim.Fiber.spawn e (fun () ->
        ignore (Sim.Fiber.await iv);
        reached := true)
  in
  Sim.Engine.run e ();
  Sim.Fiber.cancel e h;
  Sim.Fiber.Ivar.fill iv 1;
  Sim.Engine.run e ();
  check_bool "cancelled waiter never resumed" false !reached;
  check_bool "died at resume point" true (Sim.Fiber.finished h)

(* ---- parallel events ---- *)

let par_commit_order_and_stats () =
  let e = Sim.Engine.create () in
  Sim.Engine.set_domains e 4;
  let log = ref [] in
  for i = 0 to 7 do
    ignore
      (Sim.Engine.schedule_par e
         (Int64.of_int (100 + (10 * i)))
         ~affinity:(i mod 2)
         (fun () ->
           let v = i * i in
           fun () -> log := v :: !log))
  done;
  Sim.Engine.run e ();
  check_bool "commits in schedule order" true
    (List.rev !log = [ 0; 1; 4; 9; 16; 25; 36; 49 ]);
  let batches, computes = Sim.Engine.par_stats e in
  check_int "one conservative-lookahead batch" 1 batches;
  check_int "all computes in it" 8 computes

let par_sequential_inline () =
  let e = Sim.Engine.create () in
  let cell = ref 0 in
  ignore
    (Sim.Engine.schedule_par e 50L ~affinity:0 (fun () ->
         let v = 42 in
         fun () -> cell := v));
  Sim.Engine.run e ();
  check_int "compute ran inline at fire" 42 !cell;
  let batches, _ = Sim.Engine.par_stats e in
  check_int "no batch at one domain" 0 batches

let par_cancelled_never_computes () =
  let e = Sim.Engine.create () in
  Sim.Engine.set_domains e 2;
  let computed = ref false in
  (* a live Par to trigger the batch sweep... *)
  ignore
    (Sim.Engine.schedule_par e 10L ~affinity:0 (fun () -> fun () -> ()));
  (* ...and a cancelled one the sweep must skip *)
  let id =
    Sim.Engine.schedule_par e 20L ~affinity:1 (fun () ->
        computed := true;
        fun () -> ())
  in
  Sim.Engine.cancel e id;
  Sim.Engine.run e ();
  check_bool "tombstoned compute never ran" false !computed

let offload_returns_value () =
  let r =
    in_kernel (fun _ ->
        User.Usys.offload 10_000 (fun () -> List.init 5 (fun i -> i * i)))
  in
  check_bool "offloaded compute's value reaches the thread" true
    (r = [ 0; 1; 4; 9; 16 ])

let offload_charges_virtual_time () =
  let (), t1 = in_kernel_timed (fun _ -> User.Usys.burn 500_000) in
  let (), t2 =
    in_kernel_timed (fun _ -> ignore (User.Usys.offload 500_000 (fun () -> 0)))
  in
  (* offload bills the same cycle cost as a burn of equal length *)
  check_bool "offload and burn cost the same virtual time" true (t1 = t2)

(* ---- steal-half under real contention ----

   The vrace-adjacent dynamic check: hammer Spmc_queue.steal_half and
   Dpool.run from as many domains as the host recommends and prove no
   item is lost or executed twice. The static analyzer shows the types
   are domain-safe; this shows the implementation is. *)

let contention_domains =
  max 1 (min 4 (Domain.recommended_domain_count () - 1))

let spmc_no_lost_or_dup_items () =
  qcheck ~count:15 "steal-half loses and duplicates nothing"
    QCheck.(int_range 1 400)
    (fun n ->
      let victim = Sim.Spmc_queue.create () in
      for i = 0 to n - 1 do
        Sim.Spmc_queue.push victim i
      done;
      let total = Atomic.make 0 in
      let thief () =
        let own = Sim.Spmc_queue.create () in
        let got = ref [] in
        while Atomic.get total < n do
          ignore (Sim.Spmc_queue.steal_half victim ~into:own);
          let continue = ref true in
          while !continue do
            match Sim.Spmc_queue.pop own with
            | Some v ->
                got := v :: !got;
                Atomic.incr total
            | None -> continue := false
          done;
          Domain.cpu_relax ()
        done;
        !got
      in
      let thieves =
        List.init contention_domains (fun _ -> Domain.spawn thief)
      in
      (* the owner pops its own queue concurrently with the steals *)
      let owner_got = ref [] in
      while Atomic.get total < n do
        match Sim.Spmc_queue.pop victim with
        | Some v ->
            owner_got := v :: !owner_got;
            Atomic.incr total
        | None -> Domain.cpu_relax ()
      done;
      let stolen = List.concat_map Domain.join thieves in
      let seen = List.sort compare (!owner_got @ stolen) in
      seen = List.init n (fun i -> i))

let dpool_runs_each_task_exactly_once () =
  qcheck ~count:15 "dpool batch runs every task exactly once"
    QCheck.(int_range 1 300)
    (fun n ->
      let pool = Sim.Dpool.global () in
      Sim.Dpool.ensure_workers pool contention_domains;
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Sim.Dpool.run pool
        (Array.init n (fun i () -> Atomic.incr hits.(i)));
      Array.for_all (fun h -> Atomic.get h = 1) hits)

(* ---- the determinism ladder ----

   Boot the same miner workload at sim_domains ∈ {1, 2, 4}; the merged
   ktrace machine dumps must be byte-identical — parallel batching may
   only change wall-clock time, never virtual history. *)

let trace_md5 stage =
  let sched = stage.Proto.Stage.kernel.Core.Kernel.sched in
  let entries = Core.Ktrace.dump sched.Core.Sched.trace in
  Digest.to_hex
    (Digest.string
       (String.concat "\n" (List.map Core.Ktrace.machine_line entries)))

let miner_trace ~domains =
  let stage =
    Proto.Stage.boot ~prototype:5
      ~config_tweak:(fun c ->
        {
          c with
          Core.Kconfig.trace_per_core_rings = true;
          sim_domains = domains;
        })
      ()
  in
  ignore
    (Proto.Stage.start stage "blockchain" [ "blockchain"; "4"; "34"; "99" ]);
  Proto.Stage.run_for stage (Sim.Engine.ms 400);
  trace_md5 stage

let determinism_across_domains () =
  let d1 = miner_trace ~domains:1 in
  let d2 = miner_trace ~domains:2 in
  let d4 = miner_trace ~domains:4 in
  check_string "2 domains replay the sequential trace" d1 d2;
  check_string "4 domains replay the sequential trace" d1 d4

let suite =
  ( "par",
    [
      quick "cancel of fired id is a no-op" cancel_fired_id_is_noop;
      quick "double cancel counts once" cancel_twice_counts_once;
      firing_contract 1;
      firing_contract 4;
      quick "fiber runs inline to first suspension"
        fiber_runs_inline_to_first_suspension;
      quick "fiber loop matches closure chain" fiber_loop_matches_closure_chain;
      quick "fiber yield is fifo" fiber_yield_is_fifo;
      quick "ivar wakes waiters fifo" fiber_ivar_fifo_wakeup;
      quick "cancel parked fiber" fiber_cancel_parked;
      quick "cancel awaiting fiber" fiber_cancel_awaiting;
      quick "par commits in order across domains" par_commit_order_and_stats;
      quick "par computes inline at one domain" par_sequential_inline;
      quick "cancelled par never computes" par_cancelled_never_computes;
      quick "offload returns the computed value" offload_returns_value;
      quick "offload charges burn-equivalent time" offload_charges_virtual_time;
      spmc_no_lost_or_dup_items ();
      dpool_runs_each_task_exactly_once ();
      slow "same seed, same trace at 1/2/4 domains" determinism_across_domains;
    ] )
