(** Shared fixtures for the kernel-level tests: boot small kernels, run
    user closures to completion, drive the clock. *)

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)

(* Every test kernel runs with the runtime sanitizer armed: lockdep,
   deadlock scans and refcount audits ride along for free (kcheck
   charges zero virtual cycles, so timing-sensitive expectations are
   untouched). *)
let test_config = { Core.Kconfig.full with kcheck = true }

(* A ready-to-use prototype-5 kernel with no programs. *)
let boot_kernel ?(config = test_config) ?(platform = Hw.Board.pi3)
    ?(seed = 7L) () =
  Core.Kernel.boot
    {
      Core.Kernel.default_spec with
      sp_platform = platform;
      sp_config = config;
      sp_seed = seed;
      sp_fb = Some (640, 480);
    }

(* Run a user closure to completion on a fresh kernel; returns its value. *)
let in_kernel ?config ?platform f =
  let kernel = boot_kernel ?config ?platform () in
  match Benchlib.Measure.run_task kernel ~name:"test" (fun () -> f kernel) with
  | Ok (v, _elapsed) -> v
  | Error e -> Alcotest.fail e

(* Run a user closure and also return the virtual time it took (ns). *)
let in_kernel_timed ?config f =
  let kernel = boot_kernel ?config () in
  match Benchlib.Measure.run_task kernel ~name:"test" (fun () -> f kernel) with
  | Ok (v, elapsed) -> (v, elapsed)
  | Error e -> Alcotest.fail e

let run_for kernel s = Core.Kernel.run_for kernel (Sim.Engine.sec s)

(* Assertions *)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let check_close ?(eps = 1e-6) name expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %g, got %g" name expected actual

let check_in_range name lo hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: %g outside [%g, %g]" name actual lo hi

let check_ok name = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected error: %s" name e

let check_err name = function
  | Ok _ -> Alcotest.failf "%s: expected an error" name
  | Error e -> e
