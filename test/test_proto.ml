(** Tests for the inverse-engineering framework: the feature matrix
    (Table 1) as a theorem, prototype staging across all five stages, the
    asset generators, and the SLoC analysis behind Figure 7. *)

open Tharness

let matrix_validates () =
  let violations = Proto.Matrix.validate () in
  List.iter (fun v -> print_endline (Proto.Matrix.describe_violation v)) violations;
  check_int "no violations" 0 (List.length violations)

let matrix_monotone_growth () =
  for k = 2 to 5 do
    let prev = Proto.Matrix.features_of_prototype (k - 1) in
    let cur = Proto.Matrix.features_of_prototype k in
    check_bool
      (Printf.sprintf "P%d superset of P%d" k (k - 1))
      true
      (List.for_all (fun f -> List.mem f cur) prev);
    check_bool (Printf.sprintf "P%d strictly grows" k) true
      (List.length cur > List.length prev)
  done

let matrix_closure_sound () =
  (* closing a set must contain the set and be a fixpoint *)
  let base = [ Proto.Feature.Window_manager ] in
  let closed = Proto.Feature.close base in
  check_bool "contains base" true (List.mem Proto.Feature.Window_manager closed);
  check_bool "pulled in multicore" true (List.mem Proto.Feature.Multicore closed);
  check_bool "pulled in interrupts" true (List.mem Proto.Feature.Interrupts closed);
  check_bool "fixpoint" true
    (List.length (Proto.Feature.close closed) = List.length closed)

let config_matches_matrix () =
  (* Feature.of_config (the Kconfig -> Table-1 bridge) must agree with
     the hand-written prototype columns for every stage: the config
     record and the matrix can't drift apart. *)
  for k = 1 to 5 do
    let from_config = Proto.Feature.of_config (Core.Kconfig.prototype k) in
    let from_matrix = Proto.Matrix.features_of_prototype k in
    let show fs = String.concat ", " (List.map Proto.Feature.name fs) in
    let missing = List.filter (fun f -> not (List.mem f from_config)) from_matrix in
    let extra = List.filter (fun f -> not (List.mem f from_matrix)) from_config in
    if missing <> [] || extra <> [] then
      Alcotest.failf "P%d: config bridge disagrees (missing: %s) (extra: %s)" k
        (show missing) (show extra)
  done

let matrix_renders () =
  let text = Proto.Matrix.render () in
  check_bool "mentions DOOM" true
    (let rec has i =
       i + 4 <= String.length text
       && (String.equal (String.sub text i 4) "DOOM" || has (i + 1))
     in
     has 0);
  check_bool "five columns" true (String.length text > 500)

let prototype1_donut_on_bare_metal () =
  let stage = Proto.Stage.boot ~prototype:1 () in
  ignore (Proto.Stage.kernel_donut stage ~pace:`Busy_wait ~frames:10 ~speed:0.07);
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  (* pixels appeared on the framebuffer *)
  let fb = Option.get stage.Proto.Stage.kernel.Core.Kernel.fb in
  let lit = ref 0 in
  for y = 0 to Hw.Framebuffer.height fb - 1 do
    for x = 0 to Hw.Framebuffer.width fb - 1 do
      if Hw.Framebuffer.display_pixel fb ~x ~y <> 0 then incr lit
    done
  done;
  check_bool "donut pixels visible" true (!lit > 200)

let prototype2_concurrent_donuts () =
  let stage = Proto.Stage.boot ~prototype:2 () in
  let d1 = Proto.Stage.kernel_donut stage ~pace:(`Sleep 20) ~frames:30 ~speed:0.07 in
  let d2 = Proto.Stage.kernel_donut stage ~pace:(`Sleep 40) ~frames:30 ~speed:0.11 in
  Proto.Stage.run_for stage (Sim.Engine.sec 3);
  (* both ran to completion concurrently under the P2 scheduler *)
  check_string "donut 1 done" "zombie" (Core.Task.state_name d1);
  check_string "donut 2 done" "zombie" (Core.Task.state_name d2)

let prototype3_mario_noinput () =
  let stage = Proto.Stage.boot ~prototype:3 () in
  let task = Proto.Stage.start stage "mario" [ "mario"; "noinput"; "0" ] in
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  check_bool "frames rendered under P3" true
    (Core.Sched.frames_presented stage.Proto.Stage.kernel.Core.Kernel.sched
       ~pid:task.Core.Task.pid
    > 50)

let prototype4_files_and_sound () =
  let stage = Proto.Stage.boot ~prototype:4 () in
  (* P4 has xv6fs + devfs but no FAT *)
  let kernel = stage.Proto.Stage.kernel in
  match
    Benchlib.Measure.run_task kernel ~name:"p4" (fun () ->
        let fd = User.Usys.open_ "/roms/mario.nes" Core.Abi.o_rdonly in
        if fd < 0 then 1
        else begin
          ignore (User.Usys.close fd);
          (* FAT path must be absent *)
          if User.Usys.open_ "/d/anything" Core.Abi.o_rdonly >= 0 then 2
          else begin
            let sb = User.Usys.open_ "/dev/sb" Core.Abi.o_wronly in
            if sb < 0 then 3
            else begin
              ignore (User.Usys.write sb (Bytes.make 2048 'q'));
              ignore (User.Usys.close sb);
              0
            end
          end
        end)
  with
  | Ok (0, _) -> ()
  | Ok (rc, _) -> Alcotest.failf "P4 scenario failed at step %d" rc
  | Error e -> Alcotest.fail e

let prototype5_full_desktop () =
  let stage = Proto.Stage.boot ~prototype:5 () in
  check_bool "wm present" true (stage.Proto.Stage.kernel.Core.Kernel.wm <> None);
  check_bool "audio present" true (stage.Proto.Stage.kernel.Core.Kernel.audio <> None);
  (* fat mounted with media *)
  match
    Benchlib.Measure.run_task stage.Proto.Stage.kernel ~name:"p5" (fun () ->
        let fd = User.Usys.open_ "/d/videos/clip480.mv1" Core.Abi.o_rdonly in
        if fd < 0 then 1
        else begin
          ignore (User.Usys.close fd);
          0
        end)
  with
  | Ok (0, _) -> ()
  | Ok _ -> Alcotest.fail "FAT media missing at P5"
  | Error e -> Alcotest.fail e

let assets_decode () =
  let bmp = check_ok "bmp" (User.Bmp.decode (Proto.Assets.slide_bmp ())) in
  check_int "bmp width" 320 bmp.User.Bmp.width;
  let png = check_ok "pngl" (User.Pnglite.decode (Proto.Assets.slide_pngl ())) in
  check_int "png height" 240 png.User.Pnglite.height;
  let gif = check_ok "gifl" (User.Giflite.decode (Proto.Assets.slide_gifl ())) in
  check_int "gif frames" 6 (Array.length gif.User.Giflite.frames);
  let clip = check_ok "mv1" (User.Mv1.unpack (Proto.Assets.clip_480p ())) in
  check_int "clip width" 640 clip.User.Mv1.width;
  let rate, n, _ = check_ok "vogg" (User.Adpcm.unpack (Proto.Assets.track_vogg ())) in
  check_int "rate" 44100 rate;
  check_bool "8s of audio" true (n = 8 * 44100)

let sloc_analysis () =
  let report = Proto.Sloc.analyze () in
  check_bool "no missing files" true (report.Proto.Sloc.missing = []);
  (* cumulative growth, like Figure 7 *)
  let kernel_totals = report.Proto.Sloc.kernel_totals in
  let rec monotone = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  check_bool "kernel SLoC grows by stage" true (monotone kernel_totals);
  check_bool "apps SLoC grows by stage" true (monotone report.Proto.Sloc.app_totals);
  let p1 = List.assoc 1 kernel_totals and p5 = List.assoc 5 kernel_totals in
  check_bool "P1 kernel is small" true (p1 < p5 / 2);
  check_bool "P5 kernel is thousands of lines" true (p5 > 4000)

let survey_is_deterministic () =
  let a = Benchlib.Survey.run ~seed:48L () in
  let b = Benchlib.Survey.run ~seed:48L () in
  check_bool "same seed same survey" true
    (List.for_all2
       (fun x y -> x.Benchlib.Survey.counts = y.Benchlib.Survey.counts)
       a b);
  (* distribution shape: strong agreement everywhere, N preserved *)
  List.iter
    (fun s ->
      check_int "48 respondents" 48 (Array.fold_left ( + ) 0 s.Benchlib.Survey.counts);
      check_bool "majority agrees" true (s.Benchlib.Survey.agree_pct > 60.0))
    a

let osmodel_shapes () =
  (* the cross-OS model must preserve the paper's comparative claims *)
  let fork_linux =
    Benchlib.Osmodel.latency_us Benchlib.Osmodel.linux ~bench:`Fork ~ours_us:500.0
      ~fork_pages:530
  in
  check_bool "our fork slower than lazy linux" true (fork_linux < 500.0);
  let md5_xv6 =
    Benchlib.Osmodel.latency_us Benchlib.Osmodel.xv6 ~bench:`Compute ~ours_us:100.0
      ~fork_pages:0
  in
  check_bool "musl slower on compute" true (md5_xv6 > 100.0);
  let doom_linux =
    Benchlib.Osmodel.fps Benchlib.Osmodel.linux ~ours_fps:62.0 ~applogic_share:0.8
      ~newlib_factor:1.0 ~window_px:(640 * 480)
  in
  check_in_range "linux DOOM roughly half ours" 25.0 45.0 doom_linux

let suite =
  ( "proto",
    [
      quick "feature matrix validates (Table 1)" matrix_validates;
      quick "prototypes grow monotonically" matrix_monotone_growth;
      quick "feature closure is sound" matrix_closure_sound;
      quick "Kconfig bridge agrees with Table 1" config_matches_matrix;
      quick "matrix renders" matrix_renders;
      slow "P1: baremetal donut" prototype1_donut_on_bare_metal;
      slow "P2: concurrent donuts" prototype2_concurrent_donuts;
      slow "P3: mario without input" prototype3_mario_noinput;
      slow "P4: files and sound, no FAT" prototype4_files_and_sound;
      slow "P5: full desktop" prototype5_full_desktop;
      quick "synthetic assets decode" assets_decode;
      quick "sloc analysis (Figure 7)" sloc_analysis;
      quick "survey model deterministic (Figure 13)" survey_is_deterministic;
      quick "os model preserves paper shapes" osmodel_shapes;
    ] )
