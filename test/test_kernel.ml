(** Kernel tests: scheduler and tasks, virtual memory, IPC and
    synchronization, the file layer, device files, the window manager and
    the debugging machinery. Most tests boot a real Prototype-5 kernel and
    run user closures through the full syscall path. *)

open Tharness
open User

(* ---- scheduler and tasks ---- *)

let sched_getpid_cost () =
  let (), elapsed =
    in_kernel_timed (fun _ ->
        for _ = 1 to 100 do
          ignore (Usys.getpid ())
        done)
  in
  let per_call = Sim.Engine.to_us elapsed /. 100.0 in
  (* Figure 8's ~3 us *)
  check_in_range "getpid ~3us" 2.0 4.5 per_call

let sched_sleep_advances_time () =
  let (), elapsed = in_kernel_timed (fun _ -> ignore (Usys.sleep 50)) in
  check_in_range "sleep 50ms" 49.0 55.0 (Sim.Engine.to_ms elapsed)

let sched_fork_wait_exit () =
  in_kernel (fun _ ->
      let child = Usys.fork (fun () -> 42) in
      check_bool "child pid positive" true (child > 0);
      let reaped = Usys.wait () in
      check_int "reaped the child" child reaped;
      check_int "no more children" (-Core.Errno.echild) (Usys.wait ()))

let sched_fork_returns_child_pid_to_parent () =
  in_kernel (fun _ ->
      let me = Usys.getpid () in
      let seen = ref 0 in
      let child = Usys.fork (fun () -> seen := Usys.getpid (); 0) in
      ignore (Usys.wait ());
      check_bool "child saw its own pid" true (!seen = child && !seen <> me))

let sched_many_children () =
  in_kernel (fun _ ->
      let n = 12 in
      let counter = ref 0 in
      let pids = List.init n (fun _ -> Usys.fork (fun () -> incr counter; 0)) in
      check_bool "all forked" true (List.for_all (fun p -> p > 0) pids);
      for _ = 1 to n do
        ignore (Usys.wait ())
      done;
      check_int "all children ran" n !counter)

let sched_preemption_interleaves () =
  (* two CPU-bound tasks on one core must make comparable progress *)
  let config = { Core.Kconfig.full with Core.Kconfig.multicore = false } in
  let kernel = boot_kernel ~config () in
  let progress = [| 0; 0 |] in
  let spin slot () =
    for _ = 1 to 200 do
      Usys.burn 1_000_000 (* 1 ms *);
      progress.(slot) <- progress.(slot) + 1
    done;
    0
  in
  ignore (Core.Kernel.spawn_user kernel ~name:"spin0" (spin 0));
  ignore (Core.Kernel.spawn_user kernel ~name:"spin1" (spin 1));
  Core.Kernel.run_for kernel (Sim.Engine.ms 100);
  check_bool "both ran" true (progress.(0) > 10 && progress.(1) > 10);
  let ratio = float_of_int progress.(0) /. float_of_int (max 1 progress.(1)) in
  check_in_range "fair within 2x" 0.5 2.0 ratio

let sched_multicore_parallelism () =
  (* 4 cpu-bound tasks on 4 cores: wall time ~= single task time *)
  let kernel = boot_kernel () in
  let done_count = ref 0 in
  for i = 1 to 4 do
    ignore
      (Core.Kernel.spawn_user kernel ~name:(Printf.sprintf "w%d" i) (fun () ->
           Usys.burn 100_000_000 (* 100 ms of work *);
           incr done_count;
           0))
  done;
  let t0 = Core.Kernel.now kernel in
  Core.Kernel.run_for kernel (Sim.Engine.ms 150);
  check_int "all finished" 4 !done_count;
  ignore t0;
  (* each core should have run ~100ms busy *)
  for c = 0 to 3 do
    let busy = Sim.Engine.to_ms (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c) in
    check_in_range (Printf.sprintf "core %d busy" c) 90.0 140.0 busy
  done

let sched_kill_running () =
  let kernel = boot_kernel () in
  let task =
    Core.Kernel.spawn_user kernel ~name:"victim" (fun () ->
        let rec forever () =
          Usys.burn 1_000_000;
          forever ()
        in
        forever ())
  in
  run_for kernel 1;
  check_bool "running" true (Core.Task.state_name task <> "zombie");
  ignore
    (Core.Kernel.spawn_user kernel ~name:"killer" (fun () ->
         ignore (Usys.kill task.Core.Task.pid);
         0));
  run_for kernel 1;
  check_string "killed" "zombie" (Core.Task.state_name task)

let sched_kill_blocked () =
  let kernel = boot_kernel () in
  let task =
    Core.Kernel.spawn_user kernel ~name:"sleeper" (fun () ->
        ignore (Usys.sleep 1_000_000);
        0)
  in
  run_for kernel 1;
  ignore
    (Core.Kernel.spawn_user kernel ~name:"killer" (fun () ->
         ignore (Usys.kill task.Core.Task.pid);
         0));
  run_for kernel 1;
  check_string "blocked task killed" "zombie" (Core.Task.state_name task)

let sched_exec_replaces_image () =
  let kernel =
    Core.Kernel.boot
      {
        Core.Kernel.default_spec with
        sp_programs =
          [
            {
              Core.Kernel.prog_name = "child";
              prog_size = 8192;
              prog_main = (fun argv -> Usys.print (String.concat "," argv); 7);
            };
          ];
      }
  in
  (match
     Benchlib.Measure.run_task kernel ~name:"execer" (fun () ->
         let pid = Usys.fork (fun () -> Usys.exec "/child" [ "child"; "x" ]) in
         ignore pid;
         ignore (Usys.wait ());
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_bool "child printed argv" true
    (let out = Core.Kernel.uart_output kernel in
     String.length out >= 7
     &&
     let rec has i =
       i + 7 <= String.length out
       && (String.equal (String.sub out i 7) "child,x" || has (i + 1))
     in
     has 0)

let sched_exec_missing_program () =
  in_kernel (fun _ ->
      check_int "ENOENT" (-Core.Errno.enoent) (Usys.exec "/nothere" [ "x" ]))

let sched_uptime_monotone () =
  in_kernel (fun _ ->
      let a = Usys.uptime_ms () in
      ignore (Usys.sleep 10);
      let b = Usys.uptime_ms () in
      check_bool "uptime advanced" true (b >= a + 10))

(* ENOSYS gating: prototype 3 has no files, prototype 4 no threads *)
let sched_feature_gating () =
  let p3 = Core.Kconfig.prototype 3 in
  in_kernel ~config:p3 (fun _ ->
      check_int "open is ENOSYS at P3" (-Core.Errno.enosys)
        (Usys.open_ "/x" Core.Abi.o_rdonly);
      check_int "clone is ENOSYS at P3" (-Core.Errno.enosys)
        (Usys.clone (fun () -> 0));
      (* but write to fd 1 works, hardwired to UART (par 4.3) *)
      check_bool "write works" true (Usys.write_str 1 "p3" > 0));
  let p4 = Core.Kconfig.prototype 4 in
  in_kernel ~config:p4 (fun _ ->
      check_int "clone is ENOSYS at P4" (-Core.Errno.enosys)
        (Usys.clone (fun () -> 0));
      check_int "sem is ENOSYS at P4" (-Core.Errno.enosys) (Usys.sem_open 1))

let suite_sched =
  ( "kernel.sched",
    [
      quick "getpid cost ~3us" sched_getpid_cost;
      quick "sleep advances virtual time" sched_sleep_advances_time;
      quick "fork/wait/exit" sched_fork_wait_exit;
      quick "fork pid visibility" sched_fork_returns_child_pid_to_parent;
      quick "many children" sched_many_children;
      quick "preemption interleaves" sched_preemption_interleaves;
      quick "multicore parallelism" sched_multicore_parallelism;
      quick "kill running task" sched_kill_running;
      quick "kill blocked task" sched_kill_blocked;
      quick "exec replaces image" sched_exec_replaces_image;
      quick "exec missing program" sched_exec_missing_program;
      quick "uptime monotone" sched_uptime_monotone;
      quick "prototype feature gating (ENOSYS)" sched_feature_gating;
    ] )

(* ---- virtual memory ---- *)

let vm_sbrk_grows_and_shrinks () =
  in_kernel (fun kernel ->
      let used0 = Core.Kalloc.used_pages kernel.Core.Kernel.kalloc in
      let brk0 = Usys.sbrk 0 in
      let addr = Usys.sbrk 65536 in
      check_int "sbrk returns old break" brk0 addr;
      check_bool "pages allocated" true
        (Core.Kalloc.used_pages kernel.Core.Kernel.kalloc >= used0 + 16);
      ignore (Usys.sbrk (-65536));
      check_int "back to start" brk0 (Usys.sbrk 0))

let vm_fork_copies_pages () =
  in_kernel (fun kernel ->
      ignore (Usys.sbrk (40 * 4096));
      let used_before = Core.Kalloc.used_pages kernel.Core.Kernel.kalloc in
      let child = Usys.fork (fun () -> ignore (Usys.sleep 1_000_000); 0) in
      let used_after = Core.Kalloc.used_pages kernel.Core.Kernel.kalloc in
      check_bool "eager copy >= 40 pages" true (used_after - used_before >= 40);
      ignore (Usys.kill child);
      ignore (Usys.wait ()))

let vm_exit_frees_memory () =
  let kernel = boot_kernel () in
  let used0 = Core.Kalloc.used_pages kernel.Core.Kernel.kalloc in
  (match
     Benchlib.Measure.run_task kernel ~name:"hog" (fun () ->
         ignore (Usys.sbrk (100 * 4096));
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  run_for kernel 1;
  (* reap: spawn a waiter? the hog was parentless; memory must already be
     freed at exit *)
  check_in_range "memory returned"
    (float_of_int (used0 - 4))
    (float_of_int (used0 + 4))
    (float_of_int (Core.Kalloc.used_pages kernel.Core.Kernel.kalloc))

let vm_stack_faults () =
  let kalloc = Core.Kalloc.create ~dram_bytes:(64 * 1024 * 1024) ~kernel_reserved_bytes:0 in
  let vm = Result.get_ok (Core.Vm.create kalloc ~code_pages:4) in
  check_int "starts with 1 stack page" 1 vm.Core.Vm.stack_pages;
  (match Core.Vm.fault_stack vm ~addr:0xff0000 with
  | `Grown -> ()
  | _ -> Alcotest.fail "expected growth");
  check_int "grew" 2 vm.Core.Vm.stack_pages;
  (* repeated faults at the same address must kill (par 4.3) *)
  let rec hammer n =
    if n > 10 then Alcotest.fail "never killed"
    else
      match Core.Vm.fault_stack vm ~addr:0xdead with
      | `Kill_repeated_fault -> ()
      | `Grown | `Kill_stack_overflow | `Kill_oom -> hammer (n + 1)
  in
  hammer 0

let vm_clone_shares_space () =
  let kalloc = Core.Kalloc.create ~dram_bytes:(64 * 1024 * 1024) ~kernel_reserved_bytes:0 in
  let vm = Result.get_ok (Core.Vm.create kalloc ~code_pages:4) in
  let used_before = Core.Kalloc.used_pages kalloc in
  let shared = Core.Vm.share vm in
  check_int "no pages copied" used_before (Core.Kalloc.used_pages kalloc);
  check_int "refcount 2" 2 (Core.Vm.refcount shared);
  Core.Vm.destroy shared;
  check_bool "still alive" true (Core.Kalloc.used_pages kalloc = used_before);
  Core.Vm.destroy vm;
  check_int "all freed" 0 (Core.Kalloc.used_pages kalloc)

let vm_mmap_identity () =
  let kalloc = Core.Kalloc.create ~dram_bytes:(64 * 1024 * 1024) ~kernel_reserved_bytes:0 in
  let vm = Result.get_ok (Core.Vm.create kalloc ~code_pages:1) in
  let m = Core.Vm.add_mapping vm ~name:"fb" ~bytes:(640 * 480 * 4) ~cached:true in
  check_int "identity-mapped at the bus address" Core.Vm.fb_bus_address
    m.Core.Vm.map_base;
  check_bool "find works" true (Core.Vm.find_mapping vm ~name:"fb" <> None)

let kalloc_exhaustion_and_double_free () =
  let k = Core.Kalloc.create ~dram_bytes:(16 * 4096) ~kernel_reserved_bytes:0 in
  let frames = List.init 16 (fun _ -> Core.Kalloc.alloc_page k ~owner:"t") in
  check_bool "all allocated" true (List.for_all Option.is_some frames);
  check_bool "exhausted" true (Core.Kalloc.alloc_page k ~owner:"t" = None);
  let f = Option.get (List.hd frames) in
  Core.Kalloc.free_page k f;
  Alcotest.check_raises "double free detected"
    (Core.Kpanic.Panic (Printf.sprintf "kalloc: double free of frame %d" f))
    (fun () -> Core.Kalloc.free_page k f)

let suite_vm =
  ( "kernel.vm",
    [
      quick "sbrk grows and shrinks" vm_sbrk_grows_and_shrinks;
      quick "fork copies pages eagerly" vm_fork_copies_pages;
      quick "exit frees memory" vm_exit_frees_memory;
      quick "demand-paged stack + repeated-fault kill" vm_stack_faults;
      quick "clone shares the address space" vm_clone_shares_space;
      quick "fb mmap is identity-mapped" vm_mmap_identity;
      quick "kalloc exhaustion and double free" kalloc_exhaustion_and_double_free;
    ] )

(* ---- pipes, semaphores, threads ---- *)

let pipe_roundtrip () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      check_int "write" 5 (Usys.write w (Bytes.of_string "hello"));
      let back = Result.get_ok (Usys.read r 5) in
      check_string "read" "hello" (Bytes.to_string back))

let pipe_blocks_until_data () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      let child =
        Usys.fork (fun () ->
            ignore (Usys.sleep 20);
            ignore (Usys.write w (Bytes.of_string "late"));
            0)
      in
      let t0 = Usys.uptime_ms () in
      let back = Result.get_ok (Usys.read r 4) in
      let waited = Usys.uptime_ms () - t0 in
      check_string "data arrives" "late" (Bytes.to_string back);
      check_bool "reader blocked ~20ms" true (waited >= 18);
      ignore child;
      ignore (Usys.wait ()))

let pipe_eof_on_writer_close () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      ignore (Usys.write w (Bytes.of_string "x"));
      ignore (Usys.close w);
      check_string "drain" "x" (Bytes.to_string (Result.get_ok (Usys.read r 10)));
      check_int "EOF" 0 (Bytes.length (Result.get_ok (Usys.read r 10))))

let pipe_write_blocks_when_full () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      (* fill beyond the 512-byte xv6 buffer; needs a concurrent reader *)
      let reader =
        Usys.fork (fun () ->
            let total = ref 0 in
            while !total < 2048 do
              match Usys.read r 256 with
              | Ok b when Bytes.length b > 0 -> total := !total + Bytes.length b
              | Ok _ | Error _ -> total := 4096
            done;
            0)
      in
      check_int "large write completes" 2048 (Usys.write w (Bytes.make 2048 'z'));
      ignore reader;
      ignore (Usys.wait ()))

let pipe_fork_shares_ends () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      let child = Usys.fork (fun () -> Usys.write w (Bytes.of_string "from child")) in
      let back = Result.get_ok (Usys.read r 10) in
      check_string "ipc" "from child" (Bytes.to_string back);
      ignore child;
      ignore (Usys.wait ()))

(* ---- the POSIX pipe fixes, poll(2) and the rebuilt fast path ---- *)

let pipe_epipe_without_readers () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      check_int "close read end" 0 (Usys.close r);
      check_int "write is EPIPE" (-Core.Errno.epipe)
        (Usys.write w (Bytes.of_string "nobody")))

let pipe_partial_write_when_readers_vanish () =
  let n = ref 0 in
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      let child =
        Usys.fork (fun () ->
            ignore (Usys.sleep 10);
            ignore (Usys.read r 512);
            ignore (Usys.close r);
            0)
      in
      ignore (Usys.close r);
      (* 2048 > the 512-byte buffer, so the write blocks mid-transfer; the
         reader drains once and closes, and the write must report the
         bytes already sent — before the fix it returned -EINVAL *)
      n := Usys.write w (Bytes.make 2048 'p');
      ignore child;
      ignore (Usys.wait ()));
  check_bool "partial count, not an error" true (!n > 0 && !n < 2048)

let kbd_short_read_einval () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/dev/events" Core.Abi.o_rdonly in
      check_bool "open /dev/events" true (fd >= 0);
      (* a buffer shorter than one 8-byte event used to overrun; now it is
         rejected outright *)
      (match Usys.read fd 4 with
      | Error e -> check_int "EINVAL" Core.Errno.einval e
      | Ok _ -> Alcotest.fail "short event read succeeded");
      check_int "close" 0 (Usys.close fd))

let pipe_nonblock_read_eagain () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe2 Core.Abi.o_nonblock) in
      (match Usys.read r 8 with
      | Error e -> check_int "EAGAIN when empty" Core.Errno.eagain e
      | Ok _ -> Alcotest.fail "empty nonblocking read succeeded");
      ignore (Usys.write w (Bytes.of_string "data"));
      check_string "readable once data arrives" "data"
        (Bytes.to_string (Result.get_ok (Usys.read r 8)));
      (* an overfull nonblocking write takes the partial and returns *)
      check_int "partial nonblocking write" 512
        (Usys.write w (Bytes.make 600 'f')))

let sem_refs_across_fork_and_exit () =
  in_kernel (fun _ ->
      let sem = Usys.sem_open 0 in
      check_bool "opened" true (sem > 0);
      let child =
        Usys.fork (fun () ->
            (* fork gave the child its own reference: closing it and
               exiting must not free the parent's semaphore *)
            ignore (Usys.sem_post sem);
            ignore (Usys.sem_close sem);
            0)
      in
      ignore (Usys.wait ());
      check_int "parent's ref survives the child" 0 (Usys.sem_wait sem);
      ignore child;
      (* but a semaphore whose only holder exits is released *)
      let id = ref (-1) in
      ignore (Usys.fork (fun () -> id := Usys.sem_open 0; 0));
      ignore (Usys.wait ());
      check_int "orphaned sem is gone" (-Core.Errno.einval)
        (Usys.sem_post !id))

let poll_pipe_multiplex () =
  in_kernel (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      check_int "bad fd" (-Core.Errno.ebadf) (Usys.poll [ 99 ] ~timeout_ms:0);
      check_int "probe empty" 0 (Usys.poll [ r ] ~timeout_ms:0);
      ignore (Usys.write w (Bytes.of_string "x"));
      check_int "read end ready" 1 (Usys.poll [ r ] ~timeout_ms:0);
      check_int "both ends ready" 3 (Usys.poll [ r; w ] ~timeout_ms:0);
      ignore (Usys.read r 1);
      (* a blocking poll parks until a producer makes the fd ready *)
      let child =
        Usys.fork (fun () ->
            ignore (Usys.sleep 20);
            Usys.write w (Bytes.of_string "y"))
      in
      let t0 = Usys.uptime_ms () in
      check_int "woken ready" 1 (Usys.poll [ r ] ~timeout_ms:(-1));
      check_bool "blocked until the write" true (Usys.uptime_ms () - t0 >= 18);
      ignore child;
      ignore (Usys.wait ()))

let poll_timeout_expires () =
  in_kernel (fun _ ->
      let r, _w = Result.get_ok (Usys.pipe ()) in
      let t0 = Usys.uptime_ms () in
      check_int "timed out empty-handed" 0 (Usys.poll [ r ] ~timeout_ms:25);
      check_in_range "~25ms" 24.0 35.0 (float_of_int (Usys.uptime_ms () - t0)))

let proc_ipc_reports_edge_stats () =
  let edge_cfg =
    {
      Core.Kconfig.full with
      Core.Kconfig.pipe_ring = true;
      pipe_wake_edge = true;
    }
  in
  in_kernel ~config:edge_cfg (fun _ ->
      let r, w = Result.get_ok (Usys.pipe ()) in
      ignore (Usys.write w (Bytes.of_string "abc")); (* empty->non-empty *)
      ignore (Usys.read r 3); (* pipe was not full: wakeup suppressed *)
      let text = Bytes.to_string (Result.get_ok (Usys.slurp "/proc/ipc")) in
      let field key =
        let lines = String.split_on_char '\n' text in
        match
          List.find_opt (fun l -> String.starts_with ~prefix:key l) lines
        with
        | None -> Alcotest.failf "missing %s in /proc/ipc" key
        | Some l -> (
            match List.rev (String.split_on_char ' ' (String.trim l)) with
            | v :: _ -> v
            | [] -> "")
      in
      check_string "ring impl" "ring" (field "pipe_impl");
      check_string "edge mode" "edge" (field "wake_mode");
      check_bool "a wakeup was issued" true
        (int_of_string (field "wakeups_issued") >= 1);
      check_bool "a wakeup was suppressed" true
        (int_of_string (field "wakeups_suppressed") >= 1);
      check_bool "writes counted" true
        (int_of_string (field "pipe_writes") >= 1))

(* The fast path must be a pure performance change: the byte stream a
   ring pipe delivers — including across the wrap boundary — is identical
   to the xv6 pipe's. *)
let ring_pipe_matches_xv6_data () =
  let stream config =
    in_kernel ~config (fun _ ->
        let r, w = Result.get_ok (Usys.pipe ()) in
        let buf = Buffer.create 1024 in
        (* 10 x 100 bytes through a 256-byte ring: wraps repeatedly *)
        for i = 0 to 9 do
          let chunk =
            Bytes.init 100 (fun j -> Char.chr (((i * 31) + (j * 7)) land 0xff))
          in
          ignore (Usys.write w chunk);
          Buffer.add_bytes buf (Result.get_ok (Usys.read r 100))
        done;
        Buffer.contents buf)
  in
  let ring_cfg =
    {
      Core.Kconfig.full with
      Core.Kconfig.pipe_ring = true;
      pipe_buffer_bytes = 256;
      pipe_wake_edge = true;
    }
  in
  let a = stream Core.Kconfig.full in
  let b = stream ring_cfg in
  check_int "same length" (String.length a) (String.length b);
  check_bool "identical byte stream" true (String.equal a b)

let sem_mutual_exclusion () =
  in_kernel (fun _ ->
      let m = Uthread.Mutex.create () in
      let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
      let worker () =
        for _ = 1 to 20 do
          Uthread.Mutex.with_lock m (fun () ->
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              Usys.burn 20_000;
              incr total;
              decr inside)
        done;
        0
      in
      let tids = List.init 4 (fun _ -> Uthread.spawn worker) in
      List.iter (fun tid -> ignore (Uthread.join tid)) tids;
      check_int "critical section exclusive" 1 !max_inside;
      check_int "all iterations" 80 !total)

let sem_condvar_signal () =
  in_kernel (fun _ ->
      let m = Uthread.Mutex.create () in
      let cv = Uthread.Cond.create () in
      let ready = ref false and observed = ref false in
      let waiter =
        Uthread.spawn (fun () ->
            Uthread.Mutex.lock m;
            while not !ready do
              Uthread.Cond.wait cv m
            done;
            observed := true;
            Uthread.Mutex.unlock m;
            0)
      in
      ignore (Usys.sleep 10);
      Uthread.Mutex.lock m;
      ready := true;
      Uthread.Cond.signal cv;
      Uthread.Mutex.unlock m;
      ignore (Uthread.join waiter);
      check_bool "condvar woke the waiter" true !observed)

let clone_shares_memory () =
  in_kernel (fun _ ->
      let shared = ref 0 in
      let tid = Usys.clone (fun () -> shared := 41; 0) in
      ignore (Usys.join tid);
      check_int "thread wrote shared state" 41 !shared)

let join_returns_exit_code () =
  in_kernel (fun _ ->
      let tid = Usys.clone (fun () -> 123) in
      check_int "join code" 123 (Usys.join tid))

let semaphore_counting () =
  in_kernel (fun _ ->
      let sem = Usys.sem_open 2 in
      check_int "wait 1" 0 (Usys.sem_wait sem);
      check_int "wait 2" 0 (Usys.sem_wait sem);
      (* third waiter must block until a post *)
      let done_ = ref false in
      let tid = Usys.clone (fun () -> ignore (Usys.sem_wait sem); done_ := true; 0) in
      ignore (Usys.sleep 5);
      check_bool "blocked" false !done_;
      ignore (Usys.sem_post sem);
      ignore (Usys.join tid);
      check_bool "released" true !done_;
      check_int "close" 0 (Usys.sem_close sem))

let ipc_latency_in_range () =
  let kernel = boot_kernel () in
  let us = Benchlib.Micro.ipc_us ~iters:500 kernel in
  (* the paper's ~21 us one-way *)
  check_in_range "one-way pipe latency" 14.0 28.0 us

let suite_ipc =
  ( "kernel.ipc",
    [
      quick "pipe roundtrip" pipe_roundtrip;
      quick "pipe blocks until data" pipe_blocks_until_data;
      quick "pipe EOF on writer close" pipe_eof_on_writer_close;
      quick "pipe write blocks when full" pipe_write_blocks_when_full;
      quick "pipe ends shared across fork" pipe_fork_shares_ends;
      quick "mutex mutual exclusion" sem_mutual_exclusion;
      quick "condvar signal" sem_condvar_signal;
      quick "clone shares memory" clone_shares_memory;
      quick "join returns exit code" join_returns_exit_code;
      quick "semaphore counting" semaphore_counting;
      quick "pipe IPC latency ~21us" ipc_latency_in_range;
      quick "write without readers is EPIPE" pipe_epipe_without_readers;
      quick "blocked write returns partial when readers vanish"
        pipe_partial_write_when_readers_vanish;
      quick "short /dev/events read is EINVAL" kbd_short_read_einval;
      quick "O_NONBLOCK pipe EAGAIN and partial write" pipe_nonblock_read_eagain;
      quick "semaphore refs across fork and exit" sem_refs_across_fork_and_exit;
      quick "poll multiplexes pipe fds" poll_pipe_multiplex;
      quick "poll timeout expires" poll_timeout_expires;
      quick "/proc/ipc reports edge wakeup counts" proc_ipc_reports_edge_stats;
      quick "ring pipe bytes identical to xv6 pipe" ring_pipe_matches_xv6_data;
    ] )

(* ---- file syscalls through the VFS ---- *)

let files_create_write_read () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/notes.txt" (Core.Abi.o_create lor Core.Abi.o_rdwr) in
      check_bool "fd valid" true (fd >= 0);
      check_int "write" 9 (Usys.write_str fd "vos rules");
      check_int "seek home" 0 (Usys.lseek fd 0 Core.Abi.seek_set);
      check_string "read back" "vos rules"
        (Bytes.to_string (Result.get_ok (Usys.read fd 64)));
      check_int "close" 0 (Usys.close fd))

let files_fat_mount_routing () =
  in_kernel (fun _ ->
      (* same code path, two filesystems by prefix (par 4.5) *)
      let fd1 = Usys.open_ "/root-file" (Core.Abi.o_create lor Core.Abi.o_wronly) in
      let fd2 = Usys.open_ "/d/fat-file" (Core.Abi.o_create lor Core.Abi.o_wronly) in
      check_bool "both open" true (fd1 >= 0 && fd2 >= 0);
      ignore (Usys.write_str fd1 "xv6 side");
      ignore (Usys.write_str fd2 "fat side");
      ignore (Usys.close fd1);
      ignore (Usys.close fd2);
      let st1 = Result.get_ok (Usys.fstat (Usys.open_ "/root-file" Core.Abi.o_rdonly)) in
      let st2 = Result.get_ok (Usys.fstat (Usys.open_ "/d/fat-file" Core.Abi.o_rdonly)) in
      check_int "xv6 size" 8 st1.Core.Abi.stat_size;
      check_int "fat size" 8 st2.Core.Abi.stat_size)

let files_lseek_whence () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/s.txt" (Core.Abi.o_create lor Core.Abi.o_rdwr) in
      ignore (Usys.write_str fd "0123456789");
      check_int "seek_set" 3 (Usys.lseek fd 3 Core.Abi.seek_set);
      check_int "seek_cur" 5 (Usys.lseek fd 2 Core.Abi.seek_cur);
      check_int "seek_end" 10 (Usys.lseek fd 0 Core.Abi.seek_end);
      check_int "bad seek" (-Core.Errno.einval) (Usys.lseek fd (-99) Core.Abi.seek_set);
      ignore (Usys.close fd))

let files_dup_shares_offset () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/dup.txt" (Core.Abi.o_create lor Core.Abi.o_rdwr) in
      ignore (Usys.write_str fd "abcdef");
      ignore (Usys.lseek fd 0 Core.Abi.seek_set);
      let fd2 = Usys.dup fd in
      ignore (Result.get_ok (Usys.read fd 2)) (* advance through fd *);
      check_string "dup sees the shared offset" "cd"
        (Bytes.to_string (Result.get_ok (Usys.read fd2 2)));
      ignore (Usys.close fd);
      (* fd2 still valid after closing fd *)
      check_bool "still readable" true (Result.is_ok (Usys.read fd2 1));
      ignore (Usys.close fd2))

let files_mkdir_unlink_chdir () =
  in_kernel (fun _ ->
      check_int "mkdir" 0 (Usys.mkdir "/work");
      check_int "chdir" 0 (Usys.chdir "/work");
      let fd = Usys.open_ "relative.txt" (Core.Abi.o_create lor Core.Abi.o_wronly) in
      check_bool "relative create" true (fd >= 0);
      ignore (Usys.close fd);
      check_int "visible absolutely" 0
        (let fd = Usys.open_ "/work/relative.txt" Core.Abi.o_rdonly in
         if fd >= 0 then Usys.close fd else fd);
      check_int "unlink" 0 (Usys.unlink "/work/relative.txt");
      check_int "chdir back" 0 (Usys.chdir "/");
      check_int "rmdir" 0 (Usys.unlink "/work");
      check_int "chdir to missing" (-Core.Errno.enoent) (Usys.chdir "/nowhere"))

let files_errors () =
  in_kernel (fun _ ->
      check_int "open missing" (-Core.Errno.enoent) (Usys.open_ "/missing" Core.Abi.o_rdonly);
      check_int "close bad fd" (-Core.Errno.ebadf) (Usys.close 17);
      check_bool "read bad fd" true (Usys.read 17 10 = Error Core.Errno.ebadf);
      check_int "write bad fd" (-Core.Errno.ebadf) (Usys.write 17 (Bytes.of_string "x"));
      (* wrong-direction access *)
      let fd = Usys.open_ "/wr.txt" (Core.Abi.o_create lor Core.Abi.o_wronly) in
      check_bool "read on write-only" true (Usys.read fd 1 = Error Core.Errno.ebadf);
      ignore (Usys.close fd))

let files_trunc_flag () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/t.txt" (Core.Abi.o_create lor Core.Abi.o_wronly) in
      ignore (Usys.write_str fd "long content here");
      ignore (Usys.close fd);
      let fd = Usys.open_ "/t.txt" (Core.Abi.o_trunc lor Core.Abi.o_wronly) in
      ignore (Usys.close fd);
      let st = Result.get_ok (Usys.fstat (Usys.open_ "/t.txt" Core.Abi.o_rdonly)) in
      check_int "truncated" 0 st.Core.Abi.stat_size)

let files_directory_listing () =
  in_kernel (fun _ ->
      ignore (Usys.mkdir "/listing");
      ignore (Usys.close (Usys.open_ "/listing/a" (Core.Abi.o_create lor Core.Abi.o_wronly)));
      ignore (Usys.close (Usys.open_ "/listing/b" (Core.Abi.o_create lor Core.Abi.o_wronly)));
      let fd = Usys.open_ "/listing" Core.Abi.o_rdonly in
      let text = Bytes.to_string (Result.get_ok (Usys.read fd 4096)) in
      ignore (Usys.close fd);
      check_bool "lists a and b" true
        (String.split_on_char '\n' text |> fun lines ->
         List.mem "a" lines && List.mem "b" lines))

let files_fd_exhaustion () =
  in_kernel (fun _ ->
      let opened = ref [] in
      let rec open_all () =
        let fd = Usys.open_ "/dev/null" Core.Abi.o_rdwr in
        if fd >= 0 then begin
          opened := fd :: !opened;
          open_all ()
        end
        else fd
      in
      check_int "EMFILE when table is full" (-Core.Errno.emfile) (open_all ());
      List.iter (fun fd -> ignore (Usys.close fd)) !opened)

let files_range_bypass_ablation () =
  (* par 5.2: range reads bypassing the cache are 2-3x faster *)
  let measure config =
    let kernel = boot_kernel ~config () in
    Benchlib.Micro.prepare_file kernel ~path:"/d/big.bin" ~bytes:(512 * 1024);
    Benchlib.Micro.fs_throughput_kbps kernel ~path:"/d/big.bin"
      ~bytes:(512 * 1024) ~chunk:(128 * 1024) ~direction:`Read
  in
  let fast = measure Core.Kconfig.full in
  let slow =
    measure { Core.Kconfig.full with Core.Kconfig.range_io_bypass = false }
  in
  check_in_range "bypass speedup 2-3.5x" 2.0 3.5 (fast /. slow)

let suite_files =
  ( "kernel.files",
    [
      quick "create write read" files_create_write_read;
      quick "fat mount routing (/d)" files_fat_mount_routing;
      quick "lseek whence" files_lseek_whence;
      quick "dup shares offset" files_dup_shares_offset;
      quick "mkdir unlink chdir" files_mkdir_unlink_chdir;
      quick "error returns" files_errors;
      quick "O_TRUNC" files_trunc_flag;
      quick "directory listing" files_directory_listing;
      quick "fd exhaustion" files_fd_exhaustion;
      slow "range IO bypass ablation (par 5.2)" files_range_bypass_ablation;
    ] )

(* ---- device files ---- *)

let dev_null () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/dev/null" Core.Abi.o_rdwr in
      check_int "write sinks" 5 (Usys.write_str fd "12345");
      check_int "read EOF" 0 (Bytes.length (Result.get_ok (Usys.read fd 10)));
      ignore (Usys.close fd))

let dev_fb_mmap_and_cacheflush () =
  let kernel = boot_kernel () in
  (match
     Benchlib.Measure.run_task kernel ~name:"render" (fun () ->
         let fd = Usys.open_ "/dev/fb" Core.Abi.o_rdwr in
         let _addr, w, h = Result.get_ok (Usys.mmap fd) in
         check_int "width" 640 w;
         check_int "height" 480 h;
         ignore (Usys.close fd);
         (* direct rendering: write the hw fb (the mmap'd view), then the
            paper's cache lesson: nothing shows until cacheflush *)
         let fb = Option.get kernel.Core.Kernel.fb in
         Hw.Framebuffer.write_pixel fb ~x:10 ~y:10 0xabcdef;
         check_int "stale before flush" 0 (Hw.Framebuffer.display_pixel fb ~x:10 ~y:10);
         let flushed_rows = Usys.cacheflush () in
         check_bool "rows flushed" true (flushed_rows >= 1);
         check_int "visible after flush" 0xabcdef
           (Hw.Framebuffer.display_pixel fb ~x:10 ~y:10);
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e)

let dev_events_blocking_and_nonblocking () =
  let kernel = boot_kernel () in
  let board = kernel.Core.Kernel.board in
  let got = ref None in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"reader" (fun () ->
         let fd = Usys.open_ "/dev/events" Core.Abi.o_rdonly in
         (match Usys.read fd Core.Kbd.event_bytes with
         | Ok b when Bytes.length b >= Core.Kbd.event_bytes ->
             got := Some (Core.Kbd.decode b ~off:0)
         | Ok _ | Error _ -> ());
         0));
  run_for kernel 1;
  check_bool "reader blocked with no keys" true (!got = None);
  Hw.Usb.key_down board.Hw.Board.usb 0x04;
  run_for kernel 1;
  (match !got with
  | Some ev ->
      check_int "code" 0x04 ev.Core.Kbd.ev_code;
      check_bool "pressed" true ev.Core.Kbd.ev_pressed
  | None -> Alcotest.fail "event not delivered");
  (* non-blocking read returns EAGAIN when empty *)
  match
    Benchlib.Measure.run_task kernel ~name:"poller" (fun () ->
        let fd = Usys.open_ "/dev/events" (Core.Abi.o_rdonly lor Core.Abi.o_nonblock) in
        match Usys.read fd 64 with
        | Error e -> e
        | Ok _ -> 0)
  with
  | Ok (e, _) -> check_int "EAGAIN" Core.Errno.eagain e
  | Error e -> Alcotest.fail e

let dev_gpio_buttons_as_events () =
  let kernel = boot_kernel () in
  let board = kernel.Core.Kernel.board in
  let got = ref [] in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"reader" (fun () ->
         let fd = Usys.open_ "/dev/events" Core.Abi.o_rdonly in
         (match Usys.read fd 64 with
         | Ok b -> got := Uevents.decode_bytes b
         | Error _ -> ());
         0));
  run_for kernel 1;
  Hw.Gpio.press board.Hw.Board.gpio Hw.Gpio.Start;
  run_for kernel 1;
  check_bool "Start maps to Enter" true
    (List.exists (fun e -> e.Uevents.key = Uevents.Enter && e.Uevents.pressed) !got)

let dev_audio_pipeline () =
  let kernel = boot_kernel () in
  (match
     Benchlib.Measure.run_task kernel ~name:"player" (fun () ->
         let fd = Usys.open_ "/dev/sb" Core.Abi.o_wronly in
         (* one second of a ramp *)
         let n = 44100 in
         let buf = Bytes.create (2 * n) in
         for i = 0 to n - 1 do
           let v = i land 0x7fff in
           Bytes.set_uint8 buf (2 * i) (v land 0xff);
           Bytes.set_uint8 buf ((2 * i) + 1) ((v lsr 8) land 0xff)
         done;
         ignore (Usys.write fd buf);
         ignore (Usys.close fd);
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  run_for kernel 2;
  let pwm = kernel.Core.Kernel.board.Hw.Board.pwm in
  check_bool "samples reached the PWM" true (Hw.Pwm_audio.samples_played pwm > 20_000);
  (* once streaming, the pipeline must not glitch *)
  let out = Hw.Pwm_audio.recent_output pwm in
  check_bool "waveform nonzero" true (Array.exists (fun s -> s > 1000) out)

let dev_procfs_contents () =
  in_kernel (fun _ ->
      let slurp path = Bytes.to_string (Result.get_ok (Usys.slurp path)) in
      check_bool "meminfo has MemTotal" true
        (String.length (slurp "/proc/meminfo") > 0
        && String.sub (slurp "/proc/meminfo") 0 8 = "MemTotal");
      check_bool "cpuinfo mentions 4 cores" true
        (let text = slurp "/proc/cpuinfo" in
         let count = ref 0 in
         String.iter (fun _ -> ()) text;
         List.iter
           (fun line ->
             if String.length line >= 9 && String.sub line 0 9 = "processor" then incr count)
           (String.split_on_char '\n' text);
         !count = 4);
      check_bool "tasks lists this pid" true
        (let text = slurp "/proc/tasks" in
         let pid = string_of_int (Usys.getpid ()) in
         List.exists
           (fun line ->
             match String.index_opt line '\t' with
             | Some i -> String.equal (String.sub line 0 i) pid
             | None -> false)
           (String.split_on_char '\n' text));
      check_bool "procfs is read-only" true
        (let fd = Usys.open_ "/proc/meminfo" Core.Abi.o_rdwr in
         let r = Usys.write_str fd "hack" in
         ignore (Usys.close fd);
         r = -Core.Errno.erofs))

let dev_console_roundtrip () =
  let kernel = boot_kernel () in
  Hw.Uart.inject_string kernel.Core.Kernel.board.Hw.Board.uart "hi\n";
  match
    Benchlib.Measure.run_task kernel ~name:"tty" (fun () ->
        let fd = Usys.open_ "/dev/console" Core.Abi.o_rdwr in
        let b = Result.get_ok (Usys.read fd 16) in
        ignore (Usys.write fd b);
        ignore (Usys.close fd);
        0)
  with
  | Ok _ ->
      check_bool "echoed" true
        (let out = Core.Kernel.uart_output kernel in
         String.length out >= 3)
  | Error e -> Alcotest.fail e

let suite_devices =
  ( "kernel.devices",
    [
      quick "/dev/null" dev_null;
      quick "fb mmap + cacheflush lesson" dev_fb_mmap_and_cacheflush;
      quick "/dev/events blocking + nonblocking" dev_events_blocking_and_nonblocking;
      quick "GPIO buttons as events" dev_gpio_buttons_as_events;
      quick "audio producer-consumer pipeline" dev_audio_pipeline;
      quick "procfs contents" dev_procfs_contents;
      quick "console roundtrip" dev_console_roundtrip;
    ] )

(* ---- window manager ---- *)

let wm_of kernel = Option.get kernel.Core.Kernel.wm

let open_window kernel ~name ~w ~h ~x ~y ?(alpha = 255) () =
  Core.Kernel.spawn_user kernel ~name (fun () ->
      match Gfx.windowed ~width:w ~height:h ~x ~y ~alpha () with
      | Error e -> e
      | Ok gfx ->
          Gfx.fill gfx 0x123456;
          Gfx.present gfx;
          (* stay alive so the surface persists *)
          ignore (Usys.sleep 1_000_000);
          Gfx.close gfx;
          0)

let wm_creates_and_composites () =
  let kernel = boot_kernel () in
  ignore (open_window kernel ~name:"app1" ~w:64 ~h:48 ~x:10 ~y:10 ());
  run_for kernel 1;
  let wm = wm_of kernel in
  check_int "one surface" 1 (Core.Wm.surface_count wm);
  check_bool "composited" true (Core.Wm.composites wm >= 1);
  (* the window's pixels landed on the screen *)
  let fb = Option.get kernel.Core.Kernel.fb in
  check_int "pixel on screen" 0x123456 (Hw.Framebuffer.display_pixel fb ~x:20 ~y:20)

let wm_dirty_skip () =
  let kernel = boot_kernel () in
  ignore (open_window kernel ~name:"app1" ~w:64 ~h:48 ~x:10 ~y:10 ());
  run_for kernel 1;
  let wm = wm_of kernel in
  let composites_then = Core.Wm.composites wm in
  run_for kernel 2 (* nothing redraws *);
  check_int "no recomposition without dirt" composites_then (Core.Wm.composites wm);
  check_bool "rounds were skipped" true (Core.Wm.skipped_rounds wm > 50)

let wm_zorder_and_focus () =
  let kernel = boot_kernel () in
  ignore (open_window kernel ~name:"below" ~w:100 ~h:100 ~x:0 ~y:0 ());
  run_for kernel 1;
  ignore (open_window kernel ~name:"above" ~w:100 ~h:100 ~x:0 ~y:0 ());
  run_for kernel 1;
  let wm = wm_of kernel in
  check_int "two windows" 2 (Core.Wm.surface_count wm);
  (* latest window takes focus; ctrl+tab rotates *)
  let focus0 = Option.get wm.Core.Wm.focus in
  Core.Wm.rotate_focus wm;
  let focus1 = Option.get wm.Core.Wm.focus in
  check_bool "focus rotated" true (focus0 <> focus1);
  Core.Wm.rotate_focus wm;
  check_int "full cycle" focus0 (Option.get wm.Core.Wm.focus)

let wm_alpha_blend () =
  check_int "opaque replaces" 0x0000ff (Core.Wm.blend 0xff0000 0x0000ff 255);
  check_int "zero alpha keeps" 0xff0000 (Core.Wm.blend 0xff0000 0x0000ff 0);
  let half = Core.Wm.blend 0x000000 0xfffffe 128 in
  let r = (half lsr 16) land 0xff in
  check_in_range "half blend" 125.0 130.0 (float_of_int r)

let wm_key_routing () =
  let kernel = boot_kernel () in
  let board = kernel.Core.Kernel.board in
  let got = ref [] in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"focused" (fun () ->
         match Gfx.windowed ~width:32 ~height:32 ~x:0 ~y:0 () with
         | Error e -> e
         | Ok gfx ->
             Gfx.present gfx;
             let fd = Usys.open_ "/dev/event1" Core.Abi.o_rdonly in
             (match Usys.read fd 64 with
             | Ok b -> got := Uevents.decode_bytes b
             | Error _ -> ());
             ignore (Usys.close fd);
             Gfx.close gfx;
             0));
  run_for kernel 1;
  Hw.Usb.key_down board.Hw.Board.usb 0x2c (* space *);
  run_for kernel 1;
  check_bool "focused window received the key" true
    (List.exists (fun e -> e.Uevents.key = Uevents.Space) !got)

let wm_surface_removed_on_exit () =
  let kernel = boot_kernel () in
  let task =
    Core.Kernel.spawn_user kernel ~name:"brief" (fun () ->
        match Gfx.windowed ~width:16 ~height:16 ~x:0 ~y:0 () with
        | Error e -> e
        | Ok gfx ->
            Gfx.present gfx;
            0 (* exit immediately; the kernel must clean the surface *))
  in
  ignore task;
  run_for kernel 1;
  check_int "surface cleaned up" 0 (Core.Wm.surface_count (wm_of kernel))

let suite_wm =
  ( "kernel.wm",
    [
      quick "creates and composites" wm_creates_and_composites;
      quick "dirty-region skip" wm_dirty_skip;
      quick "z-order and focus rotation" wm_zorder_and_focus;
      quick "alpha blending math" wm_alpha_blend;
      quick "key routing to focus" wm_key_routing;
      quick "surface removed on exit" wm_surface_removed_on_exit;
    ] )

(* ---- debugging machinery ---- *)

let trace_records_syscalls () =
  let kernel = boot_kernel () in
  (match
     Benchlib.Measure.run_task kernel ~name:"traced" (fun () ->
         ignore (Usys.getpid ());
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let events = Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace in
  check_bool "getpid enter traced" true
    (List.exists
       (fun e ->
         match e.Core.Ktrace.ev with
         | Core.Ktrace.Syscall_enter (_, "getpid") -> true
         | _ -> false)
       events);
  check_bool "timestamps nondecreasing" true
    (let rec mono prev = function
       | [] -> true
       | e :: rest ->
           Int64.compare prev e.Core.Ktrace.ts_ns <= 0 && mono e.Core.Ktrace.ts_ns rest
     in
     mono Int64.min_int events)

let debugmon_breakpoint_stops_and_resumes () =
  let kernel = boot_kernel () in
  let dm = kernel.Core.Kernel.debugmon in
  Core.Debugmon.set_breakpoint dm "hot_function";
  let reached = ref false in
  let task =
    Core.Kernel.spawn_user kernel ~name:"debuggee" (fun () ->
        Usys.in_frame "hot_function" (fun () -> reached := true);
        0)
  in
  run_for kernel 1;
  check_bool "stopped before the body ran" false !reached;
  check_bool "listed as stopped" true
    (List.mem task.Core.Task.pid (Core.Debugmon.stopped_tasks dm));
  let report = Core.Debugmon.inspect dm task.Core.Task.pid in
  check_bool "inspect shows the frame" true
    (let rec has i =
       i + 12 <= String.length report
       && (String.equal (String.sub report i 12) "hot_function" || has (i + 1))
     in
     has 0);
  Core.Debugmon.resume dm task.Core.Task.pid;
  run_for kernel 1;
  check_bool "resumed and completed" true !reached;
  check_int "breakpoint hits" 1 (Core.Debugmon.hits dm)

let debugmon_syscall_watchpoint () =
  let kernel = boot_kernel () in
  let dm = kernel.Core.Kernel.debugmon in
  Core.Debugmon.watch_syscall dm "mkdir";
  let finished = ref false in
  let task =
    Core.Kernel.spawn_user kernel ~name:"watched" (fun () ->
        ignore (Usys.mkdir "/stopme");
        finished := true;
        0)
  in
  run_for kernel 1;
  check_bool "stopped at the syscall" false !finished;
  Core.Debugmon.unwatch_syscall dm "mkdir";
  Core.Debugmon.resume dm task.Core.Task.pid;
  run_for kernel 1;
  check_bool "completed after resume" true !finished

let unwinder_shadow_stack () =
  let kernel = boot_kernel () in
  let captured = ref [] in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"deep" (fun () ->
         Usys.in_frame "main" (fun () ->
             Usys.in_frame "render" (fun () ->
                 Usys.in_frame "blit" (fun () ->
                     captured :=
                       (Core.Sched.all_tasks kernel.Core.Kernel.sched
                       |> List.filter_map (fun t ->
                              if t.Core.Task.name = "deep" then
                                Some t.Core.Task.shadow_stack
                              else None)
                       |> List.concat))));
         0));
  run_for kernel 1;
  check_bool "innermost first" true (!captured = [ "blit"; "render"; "main" ])

let panic_button_dumps () =
  let kernel = boot_kernel () in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"busy" (fun () ->
         Usys.in_frame "spin_loop" (fun () ->
             for _ = 1 to 1000 do
               Usys.burn 1_000_000
             done);
         0));
  run_for kernel 1;
  Hw.Gpio.press_panic_button kernel.Core.Kernel.board.Hw.Board.gpio;
  Core.Kernel.run_for kernel (Sim.Engine.ms 10);
  let out = Core.Kernel.uart_output kernel in
  let has needle =
    let n = String.length needle and m = String.length out in
    let rec at i = i + n <= m && (String.equal (String.sub out i n) needle || at (i + 1)) in
    at 0
  in
  check_bool "dump header" true (has "PANIC BUTTON");
  check_bool "core states listed" true (has "core 0:");
  check_bool "busy task's frame appears" true (has "spin_loop");
  check_int "one dump" 1 (Core.Panic.dumps kernel.Core.Kernel.panic)

let velf_roundtrip () =
  let velf = { Core.Velf.prog_name = "doom"; code_bytes = 5000; data_bytes = 1000 } in
  let image = Core.Velf.build velf in
  let back = check_ok "parse" (Core.Velf.parse image) in
  check_string "name" "doom" back.Core.Velf.prog_name;
  check_int "code" 5000 back.Core.Velf.code_bytes;
  ignore (check_err "garbage rejected" (Core.Velf.parse (Bytes.make 64 'j')));
  ignore (check_err "truncated rejected" (Core.Velf.parse (Bytes.sub image 0 8)))

let spinlock_discipline () =
  let l = Core.Spinlock.create "test" in
  Core.Spinlock.acquire l ~core:0 ~now_ns:0L;
  check_bool "held" true (Core.Spinlock.holding l ~core:0);
  Alcotest.check_raises "recursive acquisition rejected"
    (Core.Kpanic.Panic "spinlock test: core 0 acquiring while core 0 holds")
    (fun () -> Core.Spinlock.acquire l ~core:0 ~now_ns:1L);
  Core.Spinlock.release l ~core:0 ~now_ns:10L;
  check_bool "held time" true (Core.Spinlock.total_held_ns l = 10L);
  Alcotest.check_raises "release when free rejected"
    (Core.Kpanic.Panic "spinlock test: release when free") (fun () ->
      Core.Spinlock.release l ~core:0 ~now_ns:11L)

let boot_time_is_paper_shaped () =
  let boot = Benchlib.Micro.boot_time ~seed:5L () in
  check_in_range "boot to shell ~6s" 5.3 6.7 boot.Benchlib.Micro.to_shell_s

let suite_debug =
  ( "kernel.debug",
    [
      quick "ktrace records syscalls" trace_records_syscalls;
      quick "debugmon breakpoint stop/resume" debugmon_breakpoint_stops_and_resumes;
      quick "debugmon syscall watchpoint" debugmon_syscall_watchpoint;
      quick "unwinder shadow stack" unwinder_shadow_stack;
      quick "panic button dumps all cores" panic_button_dumps;
      quick "velf roundtrip" velf_roundtrip;
      quick "spinlock discipline" spinlock_discipline;
      slow "boot time ~6s (fig 8)" boot_time_is_paper_shaped;
    ] )

(* ---- the write-back block I/O path ---- *)

(* A Card-backed cache over a fresh board, no kernel: the unit fixture
   for LRU/dirty behaviour. With no syscall context, cycle/IO charges are
   dropped, so these tests see pure cache mechanics. *)
let fresh_bc ?(capacity = 4) ?(writeback = false) ?(readahead = 0)
    ?(coalesce = true) () =
  let board = Hw.Board.create ~seed:3L () in
  let bc =
    Core.Bufcache.create ~board
      ~backing:(Core.Bufcache.Card (board.Hw.Board.sd, 0))
      ~block_sectors:1 ~capacity ~writeback ~readahead ~coalesce ()
  in
  (board, bc)

let io_lru_eviction_order () =
  let _, bc = fresh_bc ~capacity:4 () in
  (* non-adjacent blocks so the streaming detector never engages *)
  List.iter (fun n -> ignore (Core.Bufcache.bread bc n)) [ 10; 20; 30; 40 ];
  check_int "four misses" 4 (Core.Bufcache.misses bc);
  ignore (Core.Bufcache.bread bc 10);
  check_int "refreshing 10 is a hit" 1 (Core.Bufcache.hits bc);
  (* 20 is now LRU; inserting 50 must evict exactly it *)
  ignore (Core.Bufcache.bread bc 50);
  List.iter (fun n -> ignore (Core.Bufcache.bread bc n)) [ 30; 40; 10; 50 ];
  check_int "survivors all hit" 5 (Core.Bufcache.hits bc);
  ignore (Core.Bufcache.bread bc 20);
  check_int "20 was the victim" 6 (Core.Bufcache.misses bc)

let io_dirty_flush_on_evict () =
  let board, bc = fresh_bc ~capacity:2 ~writeback:true () in
  let block = Bytes.make Fs.Blockdev.sector_bytes 'd' in
  Core.Bufcache.bwrite bc 5 block;
  check_int "deferred, not on device" 0 (Hw.Sd.write_count board.Hw.Board.sd);
  check_int "one dirty block" 1 (Core.Bufcache.dirty_blocks bc);
  (* fill the cache past capacity: the dirty victim must reach the card *)
  ignore (Core.Bufcache.bread bc 7);
  ignore (Core.Bufcache.bread bc 9);
  check_int "evicted write hit the device" 1 (Core.Bufcache.evict_writes bc);
  check_int "no dirty blocks left" 0 (Core.Bufcache.dirty_blocks bc);
  let back, _ =
    Result.get_ok (Hw.Sd.read board.Hw.Board.sd ~lba:5 ~count:1)
  in
  check_bool "device has the data" true (Bytes.get back 0 = 'd')

let io_flush_batches_adjacent_blocks () =
  let board, bc = fresh_bc ~capacity:8 ~writeback:true ~coalesce:true () in
  let blk c = Bytes.make Fs.Blockdev.sector_bytes c in
  List.iter
    (fun (n, c) -> Core.Bufcache.bwrite bc n (blk c))
    [ (12, 'c'); (10, 'a'); (11, 'b'); (30, 'z') ];
  check_int "all deferred" 0 (Hw.Sd.write_count board.Hw.Board.sd);
  let batches = Core.Bufcache.flush bc in
  check_int "adjacent run is one command" 2 batches;
  check_int "device saw two commands" 2 (Hw.Sd.write_count board.Hw.Board.sd);
  check_int "four blocks flushed" 4 (Core.Bufcache.flushed_blocks bc);
  check_int "clean after flush" 0 (Core.Bufcache.dirty_blocks bc);
  let back, _ =
    Result.get_ok (Hw.Sd.read board.Hw.Board.sd ~lba:10 ~count:3)
  in
  check_bool "sorted run landed in order" true
    (Bytes.get back 0 = 'a'
    && Bytes.get back Fs.Blockdev.sector_bytes = 'b'
    && Bytes.get back (2 * Fs.Blockdev.sector_bytes) = 'c');
  (* a second flush with nothing dirty is free *)
  check_int "idempotent" 0 (Core.Bufcache.flush bc)

let io_readahead_serves_streaming_reads () =
  let board, bc = fresh_bc ~capacity:16 ~readahead:8 () in
  let reads0 = Hw.Sd.read_count board.Hw.Board.sd in
  (* a cold sequential scan: first miss is single, the second engages the
     detector and prefetches a batch *)
  for n = 0 to 15 do
    ignore (Core.Bufcache.bread bc n)
  done;
  check_bool "prefetch batched device commands" true
    (Hw.Sd.read_count board.Hw.Board.sd - reads0 <= 4);
  check_bool "read-ahead blocks counted" true (Core.Bufcache.prefetched bc >= 7);
  check_bool "most reads were hits" true (Core.Bufcache.hits bc >= 12)

let io_writeback_range_coherence () =
  let _, bc = fresh_bc ~capacity:16 ~writeback:true ~readahead:8 () in
  let data = Bytes.make (2 * Fs.Blockdev.sector_bytes) 'r' in
  (* absorbed as dirty blocks, not written through *)
  Core.Bufcache.write_range bc ~lba:4 data;
  check_int "range absorbed dirty" 2 (Core.Bufcache.dirty_blocks bc);
  (* the bypass read path must see the dirty data, not the stale device *)
  let direct = Core.Bufcache.read_range_direct bc ~lba:3 ~count:4 in
  check_bool "overlay serves dirty sectors" true
    (Bytes.get direct Fs.Blockdev.sector_bytes = 'r'
    && Bytes.get direct (2 * Fs.Blockdev.sector_bytes) = 'r'
    && Bytes.get direct 0 = '\000');
  (* a streaming prefetch sweeping over the dirty block must not clobber
     it with stale device contents *)
  for n = 0 to 7 do
    ignore (Core.Bufcache.bread bc n)
  done;
  check_bool "prefetch kept dirty data" true
    (Bytes.get (Core.Bufcache.bread bc 4) 0 = 'r')

let writeback_config =
  {
    Core.Kconfig.full with
    Core.Kconfig.writeback = true;
    readahead_blocks = 32;
    (* no daemon: the test controls exactly when flushes happen *)
    flush_interval_ms = 0;
  }

let io_fsync_flushes_dirty () =
  in_kernel ~config:writeback_config (fun kernel ->
      let bc = Option.get kernel.Core.Kernel.fat_bc in
      let fd =
        Usys.open_ "/d/sync.dat" (Core.Abi.o_create lor Core.Abi.o_wronly)
      in
      check_bool "open" true (fd >= 0);
      check_int "write" 4096 (Usys.write fd (Bytes.make 4096 's'));
      check_bool "writes deferred" true (Core.Bufcache.dirty_blocks bc > 0);
      check_int "fsync ok" 0 (Usys.fsync fd);
      check_int "fsync drained the cache" 0 (Core.Bufcache.dirty_blocks bc);
      check_bool "flush was batched" true
        (Core.Bufcache.flushed_blocks bc > Core.Bufcache.flush_batches bc);
      ignore (Usys.close fd);
      check_int "fsync on a bad fd" (-Core.Errno.ebadf) (Usys.fsync 99))

let io_flush_daemon_drains () =
  let config = { writeback_config with Core.Kconfig.flush_interval_ms = 8 } in
  let kernel = boot_kernel ~config () in
  (match
     Benchlib.Measure.run_task kernel ~name:"dirty" (fun () ->
         let fd =
           Usys.open_ "/d/daemon.dat" (Core.Abi.o_create lor Core.Abi.o_wronly)
         in
         ignore (Usys.write fd (Bytes.make 4096 'q'));
         ignore (Usys.close fd);
         0)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* no fsync, no eviction pressure: only the daemon can clean the cache *)
  Core.Kernel.run_for kernel (Sim.Engine.ms 50);
  let bc = Option.get kernel.Core.Kernel.fat_bc in
  check_int "daemon flushed everything" 0 (Core.Bufcache.dirty_blocks bc);
  check_bool "daemon used batches" true (Core.Bufcache.flush_batches bc > 0);
  Core.Kernel.shutdown kernel;
  check_int "shutdown leaves nothing dirty" 0 (Core.Bufcache.dirty_blocks bc)

let io_writeback_determinism () =
  let workload kernel =
    Benchlib.Micro.prepare_file kernel ~path:"/d/det.dat" ~bytes:(64 * 1024);
    ignore
      (Benchlib.Micro.fs_throughput_kbps kernel ~path:"/d/det.dat"
         ~bytes:(64 * 1024) ~chunk:4096 ~direction:`Read);
    Core.Kernel.shutdown kernel;
    Core.Kernel.now kernel
  in
  let config = { writeback_config with Core.Kconfig.flush_interval_ms = 8 } in
  let t1 = workload (boot_kernel ~config ~seed:11L ()) in
  let t2 = workload (boot_kernel ~config ~seed:11L ()) in
  check_bool "same seed, same virtual time" true (Int64.equal t1 t2)

let io_iobench_smoke () =
  let rows = Benchlib.Iobench.run () in
  let last = List.nth rows (List.length rows - 1) in
  check_bool "fast path mostly hits" true
    (last.Benchlib.Iobench.hits > last.Benchlib.Iobench.misses);
  check_bool "coalescing merged requests" true
    (last.Benchlib.Iobench.sd_merged > 0);
  check_in_range "throughput is sane"
    100.0 10_000.0 last.Benchlib.Iobench.seq_kbps;
  (* the acceptance floors, with a little head-room below the measured
     2.7x / ~100x so timing-model tweaks don't flake the suite *)
  check_bool "seq read speedup >= 1.8x" true
    (Benchlib.Iobench.seq_speedup rows >= 1.8);
  check_bool "random write latency speedup >= 1.5x" true
    (Benchlib.Iobench.randw_speedup rows >= 1.5)

let suite_io =
  ( "kernel.io",
    [
      quick "LRU eviction order" io_lru_eviction_order;
      quick "dirty flush on evict" io_dirty_flush_on_evict;
      quick "flush batches adjacent blocks" io_flush_batches_adjacent_blocks;
      quick "read-ahead serves streaming reads" io_readahead_serves_streaming_reads;
      quick "write-back range coherence" io_writeback_range_coherence;
      quick "fsync flushes dirty blocks" io_fsync_flushes_dirty;
      quick "flush daemon drains dirty set" io_flush_daemon_drains;
      slow "write-back determinism" io_writeback_determinism;
      slow "iobench smoke (BENCH_io ladder)" io_iobench_smoke;
    ] )

(* ---- the scheduler rebuild: classes, affinity, IPIs, balancing ---- *)

(* Config helpers for the scheduler-knob tests. *)
let sched_cfg ?(policy = Core.Kconfig.Sched_rr)
    ?(wake = Core.Kconfig.Wake_direct) ?(affinity = false) ?(lb_ms = 0) () =
  {
    Core.Kconfig.full with
    Core.Kconfig.sched_policy = policy;
    wake_model = wake;
    wake_affinity = affinity;
    load_balance_ms = lb_ms;
  }

let total_migrations kernel cores =
  let n = ref 0 in
  for c = 0 to cores - 1 do
    n := !n + (Core.Sched.stats kernel.Core.Kernel.sched c).Core.Sched.migrations
  done;
  !n

let total_steals kernel cores =
  let n = ref 0 in
  for c = 0 to cores - 1 do
    n := !n + (Core.Sched.stats kernel.Core.Kernel.sched c).Core.Sched.steals
  done;
  !n

(* An idle core steals a queued task that last ran elsewhere: the steal
   counter ticks, the migration counter ticks, and Sched_migrate lands in
   the trace. Two cores, arranged so that when the hopper wakes both cores
   are busy with equal queues (so placement keeps it on its home core 0),
   and then core 1 drains and goes idle before core 0 gets to it. *)
let sc_steal_migrates () =
  let kernel =
    boot_kernel ~platform:(Benchlib.Scale.platform_with_cores 2) ()
  in
  (* hopper: runs 1 ms on core 0, sleeps, wakes to a busy home core *)
  let hopper =
    Core.Kernel.spawn_user kernel ~name:"hopper" (fun () ->
        Usys.burn 1_000_000;
        ignore (Usys.sleep 5);
        Usys.burn 30_000_000;
        0)
  in
  (* filler1: takes core 1 until t=7ms *)
  ignore
    (Core.Kernel.spawn_user kernel ~name:"filler1" (fun () ->
         Usys.burn 7_000_000;
         0));
  (* blocker: queued behind hopper on core 0, occupies it 1..13 ms so the
     hopper's 6 ms wakeup finds its home core busy *)
  ignore
    (Core.Kernel.spawn_user kernel ~name:"blocker" (fun () ->
         Usys.burn 12_000_000;
         0));
  (* filler2: queued on core 1 so its queue is as deep as core 0's when
     the hopper wakes (placement keeps the hopper home); exits at ~8 ms
     leaving core 1 idle with the hopper still queued on core 0 *)
  ignore
    (Core.Kernel.spawn_user kernel ~name:"filler2" (fun () ->
         Usys.burn 1_000_000;
         0));
  run_for kernel 1;
  check_string "hopper finished" "zombie" (Core.Task.state_name hopper);
  check_bool "a steal happened" true (total_steals kernel 2 >= 1);
  check_bool "the steal migrated the hopper" true
    (total_migrations kernel 2 >= 1);
  let migrated_in_trace =
    List.exists
      (fun e ->
        match e.Core.Ktrace.ev with
        | Core.Ktrace.Sched_migrate (pid, _, _) -> pid = hopper.Core.Task.pid
        | _ -> false)
      (Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace)
  in
  check_bool "Sched_migrate in trace" true migrated_in_trace

(* Ctx_switch used to record from-pid 0 unconditionally; now it names the
   pid the core last ran. *)
let sc_ctx_switch_from_pid () =
  let config = { Core.Kconfig.full with Core.Kconfig.multicore = false } in
  let kernel = boot_kernel ~config () in
  let a =
    Core.Kernel.spawn_user kernel ~name:"first" (fun () ->
        Usys.burn 2_000_000;
        0)
  in
  let b =
    Core.Kernel.spawn_user kernel ~name:"second" (fun () ->
        Usys.burn 2_000_000;
        0)
  in
  run_for kernel 1;
  let saw_handover =
    List.exists
      (fun e ->
        match e.Core.Ktrace.ev with
        | Core.Ktrace.Ctx_switch (f, t) ->
            f = a.Core.Task.pid && t = b.Core.Task.pid
        | _ -> false)
      (Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace)
  in
  check_bool "ctx_switch records the real from-pid" true saw_handover

(* MLFQ round-robins CPU hogs within a core just like RR does. *)
let sc_mlfq_fair_spinners () =
  let config =
    {
      (sched_cfg ~policy:Core.Kconfig.Sched_mlfq ()) with
      Core.Kconfig.multicore = false;
    }
  in
  let kernel = boot_kernel ~config () in
  let progress = [| 0; 0 |] in
  let spin slot () =
    for _ = 1 to 200 do
      Usys.burn 1_000_000;
      progress.(slot) <- progress.(slot) + 1
    done;
    0
  in
  ignore (Core.Kernel.spawn_user kernel ~name:"mspin0" (spin 0));
  ignore (Core.Kernel.spawn_user kernel ~name:"mspin1" (spin 1));
  Core.Kernel.run_for kernel (Sim.Engine.ms 100);
  check_bool "both ran" true (progress.(0) > 10 && progress.(1) > 10);
  let ratio = float_of_int progress.(0) /. float_of_int (max 1 progress.(1)) in
  check_in_range "fair within 2x" 0.5 2.0 ratio

(* Mean wakeup-to-run delay of a sleeper loop, from the kernel's own
   run-delay accounting, with a spinner per core keeping every core busy. *)
let sleeper_delay_us ~wake kernel_cores =
  let kernel =
    boot_kernel
      ~config:(sched_cfg ~wake ())
      ~platform:(Benchlib.Scale.platform_with_cores kernel_cores)
      ()
  in
  (* one spinner, leaving one core idle: the wakeup is remote either way,
     and what differs is how the idle core learns about it *)
  for i = 0 to kernel_cores - 2 do
    ignore
      (Core.Kernel.spawn_user kernel
         ~name:(Printf.sprintf "busy%d" i)
         (fun () ->
           while true do
             Usys.burn 1_000_000
           done;
           0))
  done;
  let iters = ref 0 in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"sleeper" (fun () ->
         while true do
           ignore (Usys.sleep 3);
           (* drift the wake phase against the tick grid *)
           Usys.burn (50_000 + (37_000 * (!iters mod 5)));
           incr iters
         done;
         0));
  Core.Kernel.run_for kernel (Sim.Engine.ms 400);
  (* the sleeper is the dominant source of wakeups; spinner dispatches
     happen once at boot and on quantum round-robin, which records no
     delay once queues drain *)
  let total = ref 0L and count = ref 0 in
  for c = 0 to kernel_cores - 1 do
    let s = Core.Sched.stats kernel.Core.Kernel.sched c in
    total := Int64.add !total s.Core.Sched.delay_total_ns;
    count := !count + s.Core.Sched.delay_count
  done;
  check_bool "sleeper iterated" true (!iters > 50);
  Int64.to_float !total /. float_of_int (max 1 !count) /. 1e3

(* A reschedule IPI reaches an idle-or-preemptible core in microseconds;
   tick polling waits for the next 1 ms tick. *)
let sc_ipi_beats_tick () =
  let tick_us = sleeper_delay_us ~wake:Core.Kconfig.Wake_tick 2 in
  let ipi_us = sleeper_delay_us ~wake:Core.Kconfig.Wake_ipi 2 in
  check_bool
    (Printf.sprintf "ipi (%.1f us) at least 5x faster than tick (%.1f us)"
       ipi_us tick_us)
    true
    (ipi_us > 0.0 && tick_us /. ipi_us >= 5.0)

(* Wake affinity keeps hot sleepers on their home cores. One spinner per
   core keeps every core busy, so a sleeper's wakeup always scores a
   near-tie across cores: without affinity it lands on the shortest
   (lowest-index) queue and drifts; with affinity the home core wins the
   near-tie and it stays put. *)
let affinity_migrations ~affinity () =
  let kernel = boot_kernel ~config:(sched_cfg ~affinity ()) () in
  let kernel_cores = 4 in
  for i = 0 to kernel_cores - 1 do
    ignore
      (Core.Kernel.spawn_user kernel
         ~name:(Printf.sprintf "spin%d" i)
         (fun () ->
           while true do
             Usys.burn 1_000_000
           done;
           0))
  done;
  for i = 0 to 3 do
    ignore
      (Core.Kernel.spawn_user kernel
         ~name:(Printf.sprintf "hot%d" i)
         (fun () ->
           let iters = ref 0 in
           while true do
             ignore (Usys.sleep 2);
             Usys.burn (1_000_000 + (137_000 * ((i + !iters) mod 5)));
             incr iters
           done;
           0))
  done;
  Core.Kernel.run_for kernel (Sim.Engine.ms 500);
  total_migrations kernel kernel_cores

let sc_affinity_keeps_tasks_home () =
  let drifting = affinity_migrations ~affinity:false () in
  let pinned = affinity_migrations ~affinity:true () in
  check_bool
    (Printf.sprintf "affinity reduces migrations (%d -> %d)" drifting pinned)
    true
    (drifting >= 10 && pinned * 2 <= drifting)

(* force_kill pulls a blocked task out of exactly its own wait channel:
   a second task blocked on the same semaphore survives and still wakes. *)
let sc_kill_one_of_two_blocked () =
  let kernel = boot_kernel () in
  let woke = ref false in
  let sem = ref (-1) in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"semowner" (fun () ->
         sem := Usys.sem_open 0;
         (* stay alive: a semaphore's refs drop with its holder's exit *)
         ignore (Usys.sleep 10_000);
         0));
  run_for kernel 1;
  let t1 =
    Core.Kernel.spawn_user kernel ~name:"waiter1" (fun () ->
        ignore (Usys.sem_wait !sem);
        0)
  in
  let t2 =
    Core.Kernel.spawn_user kernel ~name:"waiter2" (fun () ->
        ignore (Usys.sem_wait !sem);
        woke := true;
        0)
  in
  run_for kernel 1;
  check_bool "both blocked" true
    (Core.Task.state_name t1 <> "zombie" && Core.Task.state_name t2 <> "zombie");
  ignore
    (Core.Kernel.spawn_user kernel ~name:"killer" (fun () ->
         ignore (Usys.kill t1.Core.Task.pid);
         0));
  run_for kernel 1;
  check_string "waiter1 killed" "zombie" (Core.Task.state_name t1);
  check_bool "waiter2 still blocked" true (not !woke);
  ignore
    (Core.Kernel.spawn_user kernel ~name:"poster" (fun () ->
         ignore (Usys.sem_post !sem);
         0));
  run_for kernel 1;
  check_bool "waiter2 woke after post" true !woke;
  check_string "waiter2 exited" "zombie" (Core.Task.state_name t2)

(* Under the IPI wake model, killing a task that is mid-burn on a remote
   core takes effect at IPI latency, not at the end of the burn. *)
let sc_kill_remote_via_ipi () =
  let kernel = boot_kernel ~config:(sched_cfg ~wake:Core.Kconfig.Wake_ipi ()) () in
  let victim =
    Core.Kernel.spawn_user kernel ~name:"burner" (fun () ->
        Usys.burn 400_000_000 (* 400 ms in one burn *);
        0)
  in
  Core.Kernel.run_for kernel (Sim.Engine.ms 5);
  ignore
    (Core.Kernel.spawn_user kernel ~name:"killer" (fun () ->
         ignore (Usys.kill victim.Core.Task.pid);
         0));
  Core.Kernel.run_for kernel (Sim.Engine.ms 5);
  (* without the IPI the victim would still be burning for ~390 ms *)
  check_string "victim died at IPI latency" "zombie"
    (Core.Task.state_name victim)

(* The full new stack (MLFQ + IPI + affinity + balancing) stays
   deterministic: two identically-seeded runs agree exactly. *)
let sc_mlfq_determinism () =
  let run () =
    let config =
      sched_cfg ~policy:Core.Kconfig.Sched_mlfq ~wake:Core.Kconfig.Wake_ipi
        ~affinity:true ~lb_ms:8 ()
    in
    let kernel = boot_kernel ~config () in
    for i = 0 to 2 do
      ignore
        (Core.Kernel.spawn_user kernel
           ~name:(Printf.sprintf "dspin%d" i)
           (fun () ->
             ignore (Usys.nice 5);
             while true do
               Usys.burn 2_000_000
             done;
             0))
    done;
    for i = 0 to 2 do
      ignore
        (Core.Kernel.spawn_user kernel
           ~name:(Printf.sprintf "dsleep%d" i)
           (fun () ->
             ignore (Usys.nice (-5));
             let iters = ref 0 in
             while true do
               ignore (Usys.sleep 3);
               Usys.burn (200_000 + (91_000 * ((i + !iters) mod 4)));
               incr iters
             done;
             0))
    done;
    Core.Kernel.run_for kernel (Sim.Engine.ms 300);
    let fingerprint c =
      Printf.sprintf "c%d:%Ld/%d/%d/%d" c
        (Core.Sched.core_busy_ns kernel.Core.Kernel.sched c)
        (Core.Sched.core_switches kernel.Core.Kernel.sched c)
        (Core.Sched.stats kernel.Core.Kernel.sched c).Core.Sched.migrations
        (Core.Sched.stats kernel.Core.Kernel.sched c).Core.Sched.ipis_recv
    in
    (* fingerprint tasks by name, not pid: the pid counter is global
       across kernels in the same process *)
    String.concat " " (List.init 4 fingerprint)
    ^ " "
    ^ String.concat " "
        (List.map
           (fun t ->
             Printf.sprintf "%s:%Ld" t.Core.Task.name t.Core.Task.cpu_ns)
           (Core.Sched.all_tasks kernel.Core.Kernel.sched))
  in
  check_string "same seed, same schedule" (run ()) (run ())

(* /proc/sched renders the per-core counters. *)
let sc_procfs_sched () =
  in_kernel (fun _ ->
      let fd = Usys.open_ "/proc/sched" Core.Abi.o_rdonly in
      check_bool "opened /proc/sched" true (fd >= 0);
      let buf = Buffer.create 512 in
      let rec slurp () =
        match Usys.read fd 512 with
        | Ok b when Bytes.length b > 0 ->
            Buffer.add_bytes buf b;
            slurp ()
        | Ok _ | Error _ -> ()
      in
      slurp ();
      ignore (Usys.close fd);
      let text = Buffer.contents buf in
      let has needle =
        let n = String.length needle and l = String.length text in
        let rec go i = i + n <= l && (String.equal (String.sub text i n) needle || go (i + 1)) in
        go 0
      in
      check_bool "names the policy" true (has "policy");
      check_bool "lists core 3" true (has "core\t\t: 3");
      check_bool "has switch counters" true (has "switches"))

(* nice clamps and round-trips. *)
let sc_nice_clamps () =
  in_kernel (fun _ ->
      check_int "nice 5" 5 (Usys.nice 5);
      check_int "clamped high" 19 (Usys.nice 99);
      check_int "clamped low" (-20) (Usys.nice (-99)))

let sc_schedbench_smoke () =
  let rows = Benchlib.Schedbench.run () in
  (* the acceptance floors, with head-room below the measured ~200x / ~3.2x
     so timing-model tweaks don't flake the suite *)
  check_bool "ipi wakeup >= 5x faster than tick polling" true
    (Benchlib.Schedbench.wakeup_improvement rows >= 5.0);
  check_bool "multicore batch speedup >= 3x" true
    (Benchlib.Schedbench.multicore_speedup rows >= 3.0)

let suite_sched_classes =
  ( "kernel.sched_classes",
    [
      quick "steal migrates a queued task" sc_steal_migrates;
      quick "ctx_switch names the real from-pid" sc_ctx_switch_from_pid;
      quick "mlfq round-robins spinners" sc_mlfq_fair_spinners;
      quick "ipi wakeup beats tick polling 5x" sc_ipi_beats_tick;
      quick "wake affinity keeps tasks home" sc_affinity_keeps_tasks_home;
      quick "kill one of two blocked tasks" sc_kill_one_of_two_blocked;
      quick "kill mid-burn via reschedule ipi" sc_kill_remote_via_ipi;
      quick "mlfq+ipi+balance deterministic" sc_mlfq_determinism;
      quick "/proc/sched renders stats" sc_procfs_sched;
      quick "nice clamps to [-20,19]" sc_nice_clamps;
      slow "schedbench smoke (BENCH_sched ladder)" sc_schedbench_smoke;
    ] )

(* ---- kcheck: the runtime sanitizer vs injected failures ---- *)

let kc_contains hay needle =
  let n = String.length needle and l = String.length hay in
  let rec go i =
    i + n <= l && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0

(* ABBA: establish the order A -> B, then acquire B -> A. lockdep must
   refuse the second order with the cycle, before any deadlock exists. *)
let kc_lock_order_inversion () =
  let kc = Core.Kcheck.create () in
  let a = Core.Spinlock.create ~kcheck:kc "A" in
  let b = Core.Spinlock.create ~kcheck:kc "B" in
  Core.Spinlock.acquire a ~core:0 ~now_ns:0L;
  Core.Spinlock.acquire b ~core:0 ~now_ns:1L;
  Core.Spinlock.release b ~core:0 ~now_ns:2L;
  Core.Spinlock.release a ~core:0 ~now_ns:3L;
  Core.Spinlock.acquire b ~core:0 ~now_ns:4L;
  match Core.Spinlock.acquire a ~core:0 ~now_ns:5L with
  | () -> Alcotest.fail "ABBA inversion not detected"
  | exception Core.Kpanic.Panic msg ->
      check_bool "names the lock-order rule" true (kc_contains msg "lock-order");
      check_bool "names both locks" true
        (kc_contains msg "A" && kc_contains msg "B")

(* Blocking while a spinlock is held (or under an irq guard) is the
   sleep-in-atomic class. *)
let kc_sleep_in_atomic () =
  let kc = Core.Kcheck.create () in
  let l = Core.Spinlock.create ~kcheck:kc "L" in
  Core.Spinlock.acquire l ~core:0 ~now_ns:0L;
  match Core.Kcheck.task_blocked kc ~pid:7 ~chan:"sem:1" ~core:0 with
  | () -> Alcotest.fail "sleep-in-atomic not detected"
  | exception Core.Kpanic.Panic msg ->
      check_bool "names the rule" true (kc_contains msg "sleep-in-atomic")

(* Two tasks joining each other: once the second blocks, every member of
   the exit:A/exit:B cycle is Blocked and kcheck must panic with it. *)
let kc_wait_cycle_detected () =
  let kernel = boot_kernel () in
  let a_pid = ref 0 and b_pid = ref 0 in
  let ta =
    Core.Kernel.spawn_kernel kernel ~name:"join-a" (fun () ->
        ignore (Usys.sleep 1);
        Usys.join !b_pid)
  in
  let tb =
    Core.Kernel.spawn_kernel kernel ~name:"join-b" (fun () ->
        ignore (Usys.sleep 2);
        Usys.join !a_pid)
  in
  a_pid := ta.Core.Task.pid;
  b_pid := tb.Core.Task.pid;
  match run_for kernel 1 with
  | () -> Alcotest.fail "wait-for cycle not detected"
  | exception Core.Kpanic.Panic msg ->
      check_bool "names the wait-cycle rule" true (kc_contains msg "wait-cycle");
      check_bool "cycle lists both tasks" true
        (kc_contains msg (Printf.sprintf "task %d" !a_pid)
        && kc_contains msg (Printf.sprintf "task %d" !b_pid))

(* A pipe-end refcount bumped with no file record backing it — PR 3's
   dup/fork bug class, injected deliberately. The audit at the next fork
   boundary must re-derive the counts and refuse. *)
let kc_pipe_leak_detected () =
  let kernel = boot_kernel () in
  let leaker () =
    match Usys.pipe () with
    | Error _ -> 1
    | Ok (r, _w) ->
        let pid = Usys.getpid () in
        (match Core.Fd.get kernel.Core.Kernel.fdt ~pid ~fd:r with
        | Some file -> (
            match file.Core.Fd.kind with
            | Core.Fd.K_pipe_read p ->
                p.Core.Pipe.readers <- p.Core.Pipe.readers + 1
            | Core.Fd.K_pipe_write _ | Core.Fd.K_dev _ | Core.Fd.K_xv6 _
            | Core.Fd.K_fat _ -> ())
        | None -> ());
        ignore (Usys.fork (fun () -> 0));
        0
  in
  ignore (Core.Kernel.spawn_kernel kernel ~name:"leaker" leaker);
  match run_for kernel 1 with
  | () -> Alcotest.fail "pipe-end leak not detected"
  | exception Core.Kpanic.Panic msg ->
      check_bool "names the refcount rule" true (kc_contains msg "refcount");
      check_bool "blames the pipe reader count" true (kc_contains msg "readers")

(* The clean-run surfaces: /proc/locks lists the ptable lock discipline,
   /proc/kcheck reports counters and zero violations. *)
let kc_proc_files () =
  in_kernel (fun _ ->
      let slurp path =
        match Usys.slurp path with
        | Ok b -> Bytes.to_string b
        | Error e -> Alcotest.failf "slurp %s: errno %d" path e
      in
      let locks = slurp "/proc/locks" in
      check_bool "ptable lock registered" true (kc_contains locks "ptable");
      check_bool "acquisition column" true (kc_contains locks "acquisitions");
      let report = slurp "/proc/kcheck" in
      check_bool "audits counted" true (kc_contains report "audits");
      check_bool "deadlock scans counted" true
        (kc_contains report "deadlock_scans");
      check_bool "no violations on a clean run" true
        (kc_contains report "violations\t: 0"))

let suite_kcheck =
  ( "kernel.kcheck",
    [
      quick "lockdep catches ABBA inversion" kc_lock_order_inversion;
      quick "sleep-in-atomic detected" kc_sleep_in_atomic;
      quick "two-task join cycle panics" kc_wait_cycle_detected;
      quick "leaked pipe end fails the audit" kc_pipe_leak_detected;
      quick "/proc/locks and /proc/kcheck render" kc_proc_files;
    ] )
