(** kperf tests: the shared log-linear histogram (exact bucket
    boundaries plus qcheck invariants), the per-core trace rings and
    their consuming readers, the machine format, span pairing over a
    real launcher session, and the /proc surfaces (metrics, profile,
    the ktrace trace-pipe and ktrace_ctl). *)

open Tharness

module Hist = Core.Kperf.Hist

let contains s sub =
  let nl = String.length sub and l = String.length s in
  let rec at i = i + nl <= l && (String.equal (String.sub s i nl) sub || at (i + 1)) in
  at 0

let count_sub s sub =
  let nl = String.length sub and l = String.length s in
  let rec go i acc =
    if i + nl > l then acc
    else if String.equal (String.sub s i nl) sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* Every kernel in this file boots with the full observability stack
   armed: per-core rings, the 100 Hz profiler and /proc/metrics. *)
let armed config =
  {
    config with
    Core.Kconfig.trace_per_core_rings = true;
    profile_hz = 100;
    metrics = true;
  }

(* ---- histogram: exact bucket boundaries ---- *)

let hist_bucket_boundaries () =
  (* bucket 0 is [0, 100) ns; after that lower bounds interleave
     100*2^k and 150*2^k *)
  check_int "0 -> bucket 0" 0 (Hist.bucket_of_ns 0);
  check_int "99 -> bucket 0" 0 (Hist.bucket_of_ns 99);
  check_int "100 -> bucket 1" 1 (Hist.bucket_of_ns 100);
  check_int "149 -> bucket 1" 1 (Hist.bucket_of_ns 149);
  check_int "150 -> bucket 2" 2 (Hist.bucket_of_ns 150);
  check_int "199 -> bucket 2" 2 (Hist.bucket_of_ns 199);
  check_int "200 -> bucket 3" 3 (Hist.bucket_of_ns 200);
  check_int "299 -> bucket 3" 3 (Hist.bucket_of_ns 299);
  check_int "300 -> bucket 4" 4 (Hist.bucket_of_ns 300);
  check_int "1000 and 1023 share a bucket" (Hist.bucket_of_ns 1_000)
    (Hist.bucket_of_ns 1_023);
  (* every interior lower bound maps to its own bucket, and one ns less
     maps to the bucket before *)
  for i = 1 to Hist.buckets - 2 do
    let lo = Hist.lower_bound_ns i in
    check_int (Printf.sprintf "lower bound of bucket %d" i) i
      (Hist.bucket_of_ns lo);
    check_int (Printf.sprintf "just below bucket %d" i) (i - 1)
      (Hist.bucket_of_ns (lo - 1))
  done;
  check_int "beyond the ladder -> overflow bucket" (Hist.buckets - 1)
    (Hist.bucket_of_ns 1_000_000_000_000)

let hist_render_empty () =
  let h = Hist.create () in
  check_string "empty histogram renders" "no samples" (Hist.render_line h);
  check_int "empty count" 0 (Hist.count h)

(* Regression: every quantile of an empty histogram is 0, never the
   Int64.max_int min-sentinel leaking through the clamp path. Callers
   (vprobe renders, the benches) rely on 0 as "no samples yet". *)
let hist_empty_percentile_zero () =
  let h = Hist.create () in
  List.iter
    (fun q ->
      check_close (Printf.sprintf "empty p%g is 0" (q *. 100.)) 0.0
        (Hist.percentile_ns h q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  check_close "empty percentile_us is 0 too" 0.0 (Hist.percentile_us h 0.99);
  check_close "empty mean is 0" 0.0 (Hist.mean_ns h);
  (* one sample flips every quantile to that sample's bucket, so the
     empty-case 0 cannot be confused with a real reading *)
  Hist.record h 5_000L;
  check_bool "non-empty p50 leaves 0" true (Hist.percentile_ns h 0.5 > 0.0)

(* ---- histogram: qcheck invariants ---- *)

let gen_samples =
  QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 1_000_000_000))

let hist_of_list l =
  let h = Hist.create () in
  List.iter (fun v -> Hist.record h (Int64.of_int v)) l;
  h

let hist_percentile_order =
  qcheck ~count:200 "histogram max >= p99 >= p50 >= min" gen_samples
    (fun l ->
      let h = hist_of_list l in
      let p50 = Hist.percentile_ns h 0.50 in
      let p99 = Hist.percentile_ns h 0.99 in
      let mn = Int64.to_float (Hist.min_ns h) in
      let mx = Int64.to_float (Hist.max_ns h) in
      mn <= p50 && p50 <= p99 && p99 <= mx && Hist.count h = List.length l)

let hist_merge_is_concat =
  qcheck ~count:200 "merge of two histograms = histogram of concatenation"
    QCheck.(pair gen_samples gen_samples)
    (fun (a, b) ->
      let merged = Hist.merge (hist_of_list a) (hist_of_list b) in
      let concat = hist_of_list (a @ b) in
      Hist.count merged = Hist.count concat
      && Int64.equal (Hist.sum_ns merged) (Hist.sum_ns concat)
      && Int64.equal (Hist.min_ns merged) (Hist.min_ns concat)
      && Int64.equal (Hist.max_ns merged) (Hist.max_ns concat)
      && Hist.percentile_ns merged 0.50 = Hist.percentile_ns concat 0.50
      && Hist.percentile_ns merged 0.99 = Hist.percentile_ns concat 0.99)

(* ---- trace rings and readers ---- *)

let entry_key e = (e.Core.Ktrace.ts_ns, e.Core.Ktrace.seq)

let is_sorted entries =
  let rec go = function
    | a :: (b :: _ as rest) -> compare (entry_key a) (entry_key b) <= 0 && go rest
    | [ _ ] | [] -> true
  in
  go entries

let trace_per_core_merge_sorted () =
  let tr = Core.Ktrace.create ~capacity:4096 ~per_core:true ~cores:4 () in
  for i = 0 to 99 do
    Core.Ktrace.emit tr
      ~ts_ns:(Int64.of_int (i * 10))
      ~core:(i mod 4) (Core.Ktrace.Sched_wakeup i)
  done;
  let d = Core.Ktrace.dump tr in
  check_int "all events kept" 100 (List.length d);
  check_bool "merged dump is (ts, seq)-sorted" true (is_sorted d)

let trace_ring_wraps () =
  (* tiny ring: only the newest [capacity] entries survive *)
  let tr = Core.Ktrace.create ~capacity:1024 () in
  for i = 0 to 1999 do
    Core.Ktrace.emit tr ~ts_ns:(Int64.of_int i) ~core:0
      (Core.Ktrace.Sched_wakeup i)
  done;
  let d = Core.Ktrace.dump tr in
  check_int "ring keeps capacity entries" 1024 (List.length d);
  (match d with
  | first :: _ ->
      check_int "oldest surviving entry is the wrap point" (2000 - 1024)
        (Int64.to_int first.Core.Ktrace.ts_ns)
  | [] -> Alcotest.fail "empty dump");
  check_int "written counts every emit" 2000 (Core.Ktrace.written tr)

let trace_reader_consumes () =
  let tr = Core.Ktrace.create ~capacity:1024 () in
  Core.Ktrace.emit tr ~ts_ns:1L ~core:0 Core.Ktrace.Kbd_report;
  let r = Core.Ktrace.new_reader tr in
  check_int "reader starts at the present: backlog invisible" 0
    (List.length (Core.Ktrace.read_reader r ~max:10));
  Core.Ktrace.emit tr ~ts_ns:2L ~core:0 Core.Ktrace.Wm_composite;
  Core.Ktrace.emit tr ~ts_ns:3L ~core:0 (Core.Ktrace.Sched_wakeup 7);
  check_bool "reader sees pending data" true (Core.Ktrace.reader_ready r);
  check_int "reads both new events" 2
    (List.length (Core.Ktrace.read_reader r ~max:10));
  check_int "consuming: second read is empty" 0
    (List.length (Core.Ktrace.read_reader r ~max:10));
  check_bool "drained reader not ready" false (Core.Ktrace.reader_ready r)

let trace_reader_lost_on_overwrite () =
  let tr = Core.Ktrace.create ~capacity:1024 () in
  let r = Core.Ktrace.new_reader tr in
  for i = 0 to 1499 do
    Core.Ktrace.emit tr ~ts_ns:(Int64.of_int i) ~core:0
      (Core.Ktrace.Sched_wakeup i)
  done;
  let got = ref 0 in
  let rec drain () =
    match Core.Ktrace.read_reader r ~max:256 with
    | [] -> ()
    | es ->
        got := !got + List.length es;
        drain ()
  in
  drain ();
  check_int "reader got what survived" 1024 !got;
  check_int "overwritten entries counted as lost" (1500 - 1024)
    (Core.Ktrace.reader_lost r)

let trace_filter_classes () =
  let tr = Core.Ktrace.create ~capacity:1024 () in
  (match Core.Ktrace.filter_of_string "syscall,irq" with
  | Some mask -> Core.Ktrace.set_filter tr mask
  | None -> Alcotest.fail "filter_of_string rejected valid classes");
  Core.Ktrace.emit tr ~ts_ns:1L ~core:0
    (Core.Ktrace.Syscall_enter (1, "read"));
  Core.Ktrace.emit tr ~ts_ns:2L ~core:0 (Core.Ktrace.Sched_wakeup 1);
  Core.Ktrace.emit tr ~ts_ns:3L ~core:0 (Core.Ktrace.Irq_enter "sd-card");
  check_int "sched event filtered out" 2 (List.length (Core.Ktrace.dump tr));
  check_bool "bad class name rejected" true
    (Core.Ktrace.filter_of_string "syscall,bogus" = None);
  check_bool "\"all\" parses to the full mask" true
    (Core.Ktrace.filter_of_string "all" = Some Core.Ktrace.filter_all)

(* ---- machine format round-trip ---- *)

let machine_roundtrip () =
  let entries =
    List.mapi
      (fun i ev ->
        { Core.Ktrace.ts_ns = Int64.of_int (i * 7); seq = i; core = i mod 4; ev })
      [
        Core.Ktrace.Syscall_enter (3, "open");
        Core.Ktrace.Syscall_exit (3, "open");
        Core.Ktrace.Ctx_switch (1, 2);
        Core.Ktrace.Irq_enter "usb hc";
        Core.Ktrace.Irq_exit "usb hc";
        Core.Ktrace.Sched_wakeup 5;
        Core.Ktrace.Sched_migrate (5, 0, 3);
        Core.Ktrace.Ipi_send 2;
        Core.Ktrace.Ipi_recv 2;
        Core.Ktrace.Kbd_report;
        Core.Ktrace.Event_delivered 4;
        Core.Ktrace.Poll_return (4, 1);
        Core.Ktrace.Frame_present 4;
        Core.Ktrace.Wm_composite;
        Core.Ktrace.Lock_acquire ("ptable", 1);
        Core.Ktrace.Lock_release ("ptable", 1);
        Core.Ktrace.Sem_block (6, 9);
        Core.Ktrace.Sem_wake (6, 9);
        Core.Ktrace.Custom "hello world";
        Core.Ktrace.Span_begin (11, 3, "sd:read with spaces");
        Core.Ktrace.Span_end 11;
      ]
  in
  List.iter
    (fun e ->
      let line = Core.Ktrace.machine_line e in
      match Core.Ktrace.parse_machine_line line with
      | Some e' -> check_bool ("round-trips: " ^ line) true (e = e')
      | None -> Alcotest.failf "failed to parse %s" line)
    entries;
  check_bool "malformed line rejected" true
    (Core.Ktrace.parse_machine_line "12 x 0 sys_enter 1 read" = None);
  check_bool "unknown tag rejected" true
    (Core.Ktrace.parse_machine_line "12 0 0 teleport 1" = None)

(* ---- span pairing over a real launcher session ---- *)

let span_pairing_full_run () =
  let stage = Proto.Stage.boot ~prototype:5 ~config_tweak:armed () in
  let kernel = stage.Proto.Stage.kernel in
  let board = kernel.Core.Kernel.board in
  ignore (Proto.Stage.start stage "launcher" [ "launcher"; "200" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 1);
  Hw.Usb.key_down board.Hw.Board.usb 0x51;
  Proto.Stage.run_for stage (Sim.Engine.ms 60);
  Hw.Usb.key_up board.Hw.Board.usb 0x51;
  Proto.Stage.run_for stage (Sim.Engine.ms 500);
  let events = Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace in
  let spans, open_begins = Core.Ktrace.pair_spans events in
  check_bool "a real session produces thousands of spans" true
    (List.length spans > 1000);
  (* every span id begins exactly once; every end matches a begin *)
  let seen = Hashtbl.create 1024 in
  let dup = ref 0 and end_without_begin = ref 0 in
  List.iter
    (fun e ->
      match e.Core.Ktrace.ev with
      | Core.Ktrace.Span_begin (id, _, _) ->
          if Hashtbl.mem seen id then incr dup else Hashtbl.add seen id true
      | Core.Ktrace.Span_end id ->
          if not (Hashtbl.mem seen id) then incr end_without_begin
      | _ -> ())
    events;
  check_int "no duplicate span begins" 0 !dup;
  check_int "no span end without a begin" 0 !end_without_begin;
  List.iter
    (fun sp ->
      if Int64.compare sp.Core.Ktrace.sp_end_ns sp.Core.Ktrace.sp_begin_ns < 0
      then Alcotest.failf "span %d ends before it begins" sp.Core.Ktrace.sp_id)
    spans;
  (* unmatched begins are rare: tasks blocked mid-syscall at dump time *)
  check_bool "open spans stay bounded" true (List.length open_begins <= 32)

(* ---- /proc surfaces ---- *)

let metrics_exposes_histograms () =
  let text =
    in_kernel ~config:(armed test_config) (fun _ ->
        (* generate latency in several subsystems: pipes, poll, sleep *)
        (match User.Usys.pipe () with
        | Ok (r, w) ->
            ignore (User.Usys.write w (Bytes.make 32 'x'));
            ignore (User.Usys.read r 32);
            ignore (User.Usys.poll [ r ] ~timeout_ms:0);
            ignore (User.Usys.close r);
            ignore (User.Usys.close w)
        | Error _ -> ());
        ignore (User.Usys.sleep 5);
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/metrics")))
  in
  check_bool "at least 5 histograms exported" true
    (count_sub text " histogram" >= 5);
  check_bool "cumulative buckets with le labels" true
    (count_sub text "_bucket{" > 0 && count_sub text "le=\"+Inf\"" >= 5);
  check_bool "counters exported too" true (count_sub text " counter" >= 3);
  List.iter
    (fun name ->
      if not (contains text name) then Alcotest.failf "missing metric %s" name)
    [
      "vos_syscall_service_ns";
      "vos_sched_run_delay_ns";
      "vos_pipe_read_wait_ns";
      "vos_poll_wait_ns";
      "vos_sd_request_ns";
      "vos_ctx_switches_total";
      "vos_trace_events_total";
    ]

(* ---- Prometheus exposition validity, parser-level ----

   Not substring spot-checks: an actual line parser for the text
   exposition format. Every line must be empty, a # HELP / # TYPE
   comment, or a syntactically valid sample
   [name[{label="escaped",...}] value]; metadata must be unique per
   family and precede that family's samples; histogram families must
   ship the full _bucket/_sum/_count shape. *)

exception Bad_exposition of string

let expo_name_char strict_label c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | ':' -> not strict_label
  | _ -> false

let expo_valid_name ?(label = false) s =
  String.length s > 0
  && (match s.[0] with '0' .. '9' -> false | _ -> true)
  && String.for_all (expo_name_char label) s

(* Parse one sample line; returns the metric name or raises. *)
let expo_parse_sample line =
  let l = String.length line in
  let fail fmt = Printf.ksprintf (fun m -> raise (Bad_exposition m)) fmt in
  let i = ref 0 in
  while !i < l && expo_name_char false line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (expo_valid_name name) then fail "bad metric name in %S" line;
  (if !i < l && Char.equal line.[!i] '{' then begin
     incr i;
     let parsing = ref true in
     while !parsing do
       let s = !i in
       while !i < l && expo_name_char true line.[!i] do incr i done;
       if not (expo_valid_name ~label:true (String.sub line s (!i - s))) then
         fail "bad label name in %S" line;
       if !i >= l || not (Char.equal line.[!i] '=') then
         fail "label without '=' in %S" line;
       incr i;
       if !i >= l || not (Char.equal line.[!i] '"') then
         fail "unquoted label value in %S" line;
       incr i;
       while !i < l && not (Char.equal line.[!i] '"') do
         if Char.equal line.[!i] '\\' then
           if
             !i + 1 < l
             && (match line.[!i + 1] with '\\' | '"' | 'n' -> true | _ -> false)
           then i := !i + 2
           else fail "bad escape in label value of %S" line
         else incr i
       done;
       if !i >= l then fail "unterminated label value in %S" line;
       incr i;
       if !i < l && Char.equal line.[!i] ',' then incr i
       else if !i < l && Char.equal line.[!i] '}' then begin
         incr i;
         parsing := false
       end
       else fail "label block not ',' or '}' terminated in %S" line
     done
   end);
  if !i >= l || not (Char.equal line.[!i] ' ') then
    fail "no space before value in %S" line;
  let v = String.sub line (!i + 1) (l - !i - 1) in
  (match v with
  | "+Inf" | "-Inf" | "NaN" -> ()
  | _ -> (
      match float_of_string_opt v with
      | Some _ -> ()
      | None -> fail "non-numeric value %S in %S" v line));
  name

(* The family a sample belongs to: histogram series strip their
   _bucket/_sum/_count suffix iff that base family is declared. *)
let expo_family declared name =
  let strip suf =
    let n = String.length name and s = String.length suf in
    if n > s && String.equal (String.sub name (n - s) s) suf then
      let base = String.sub name 0 (n - s) in
      if Hashtbl.mem declared base then Some base else None
    else None
  in
  match strip "_bucket" with
  | Some b -> b
  | None -> (
      match strip "_sum" with
      | Some b -> b
      | None -> ( match strip "_count" with Some b -> b | None -> name))

let metrics_exposition_wellformed () =
  let text =
    in_kernel ~config:(armed test_config) (fun _ ->
        (* a vprobe series adds labels built from arbitrary spec text,
           the worst case for label-value escaping *)
        let fd = User.Usys.open_ "/proc/vprobe_ctl" Core.Abi.o_wronly in
        ignore
          (User.Usys.write fd
             (Bytes.of_string "probe syscall:getpid / pid>=1 / count\n"));
        ignore (User.Usys.close fd);
        (match User.Usys.pipe () with
        | Ok (r, w) ->
            ignore (User.Usys.write w (Bytes.make 32 'x'));
            ignore (User.Usys.read r 32);
            ignore (User.Usys.close r);
            ignore (User.Usys.close w)
        | Error _ -> ());
        ignore (User.Usys.sleep 5);
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/metrics")))
  in
  let declared_type = Hashtbl.create 32 in
  let declared_help = Hashtbl.create 32 in
  let sampled = Hashtbl.create 64 in
  let meta_of line =
    (* "# HELP <name> <text>" / "# TYPE <name> <type>" *)
    match String.split_on_char ' ' line with
    | "#" :: kind :: name :: rest -> (kind, name, String.concat " " rest)
    | _ -> raise (Bad_exposition ("malformed comment " ^ line))
  in
  (try
     List.iter
       (fun line ->
         if String.equal line "" then ()
         else if String.length line > 0 && Char.equal line.[0] '#' then begin
           let kind, name, rest = meta_of line in
           if not (expo_valid_name name) then
             raise (Bad_exposition ("metadata for bad name " ^ line));
           match kind with
           | "HELP" ->
               if Hashtbl.mem declared_help name then
                 raise (Bad_exposition ("duplicate HELP for " ^ name));
               Hashtbl.replace declared_help name ()
           | "TYPE" ->
               (match rest with
               | "counter" | "gauge" | "histogram" | "summary" | "untyped" ->
                   ()
               | t -> raise (Bad_exposition ("unknown TYPE " ^ t)));
               if Hashtbl.mem declared_type name then
                 raise (Bad_exposition ("duplicate TYPE for " ^ name));
               if Hashtbl.mem sampled name then
                 raise
                   (Bad_exposition ("TYPE after samples of " ^ name));
               Hashtbl.replace declared_type name rest
           | k -> raise (Bad_exposition ("unknown comment kind " ^ k))
         end
         else begin
           let name = expo_parse_sample line in
           Hashtbl.replace sampled (expo_family declared_type name) ()
         end)
       (String.split_on_char '\n' text)
   with Bad_exposition m -> Alcotest.fail m);
  (* every declared family produced samples, and histogram families
     shipped the full shape *)
  Hashtbl.iter
    (fun name ty ->
      if not (Hashtbl.mem sampled name) then
        Alcotest.failf "family %s declared but never sampled" name;
      if String.equal ty "histogram" then
        List.iter
          (fun suf ->
            if not (contains text (name ^ suf)) then
              Alcotest.failf "histogram %s missing %s series" name suf)
          [ "_bucket{"; "_sum"; "_count" ])
    declared_type;
  check_bool "at least one histogram family checked" true
    (Hashtbl.fold (fun _ ty n -> n || String.equal ty "histogram")
       declared_type false);
  check_bool "the vprobe label block parsed" true
    (contains text "vos_vprobe_fired_total{probe=")

let metrics_gated_by_knob () =
  (* test_config leaves metrics off: the page must not exist *)
  in_kernel (fun _ ->
      match User.Usys.slurp "/proc/metrics" with
      | Ok _ -> Alcotest.fail "/proc/metrics should not render when off"
      | Error _ -> ())

let profile_attributes_samples () =
  let text =
    in_kernel ~config:(armed test_config) (fun _ ->
        (* ~100 ms of user burn at 100 Hz -> a hard floor of samples *)
        for _ = 1 to 50 do
          User.Usys.burn 2_000_000
        done;
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/profile")))
  in
  check_bool "profiler header shows the rate" true
    (contains text "profile_hz\t: 100");
  check_bool "attribution table present" true (contains text "CORE");
  check_bool "profiler took samples" true
    (not (contains text "samples\t\t: 0\n"))

let profile_disabled_renders () =
  let text =
    in_kernel (fun _ ->
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/profile")))
  in
  check_bool "profile page reports disabled at profile_hz = 0" true
    (contains text "disabled")

let trace_pipe_streams () =
  in_kernel ~config:(armed test_config) (fun _ ->
      let fd =
        User.Usys.open_ "/proc/ktrace"
          (Core.Abi.o_rdonly lor Core.Abi.o_nonblock)
      in
      check_bool "trace-pipe opens" true (fd >= 0);
      (* a fresh trace-pipe starts at the present: nothing to read yet *)
      (match User.Usys.read fd 4096 with
      | Error e -> check_int "empty pipe yields EAGAIN" Core.Errno.eagain e
      | Ok _ -> Alcotest.fail "fresh trace-pipe should be empty");
      (* our own syscalls emit events; the next read streams them *)
      ignore (User.Usys.sleep 2);
      (match User.Usys.read fd 8192 with
      | Ok b ->
          check_bool "streamed events are formatted lines" true
            (Bytes.length b > 0 && contains (Bytes.to_string b) "sys_enter")
      | Error e -> Alcotest.failf "trace-pipe read failed: errno %d" e);
      (* disable the tracer so the pipe can actually run dry (each read
         is itself a syscall and would otherwise emit more events) *)
      let cfd = User.Usys.open_ "/proc/ktrace_ctl" Core.Abi.o_wronly in
      ignore (User.Usys.write cfd (Bytes.of_string "enable=0\n"));
      ignore (User.Usys.close cfd);
      let rec drain budget =
        if budget = 0 then Alcotest.fail "trace-pipe never drained"
        else
          match User.Usys.read fd 65536 with
          | Ok _ -> drain (budget - 1)
          | Error e ->
              check_int "drained pipe yields EAGAIN" Core.Errno.eagain e
      in
      drain 1000;
      ignore (User.Usys.close fd))

let trace_pipe_blocks_then_wakes () =
  let kernel = boot_kernel ~config:(armed test_config) () in
  let got = ref 0 in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"tracer" (fun () ->
         let fd = User.Usys.open_ "/proc/ktrace" Core.Abi.o_rdonly in
         (* blocking read: parks on the poll channel until the tracer's
            deferred on_data wakeup fires for freshly emitted events *)
         (match User.Usys.read fd 4096 with
         | Ok b -> got := Bytes.length b
         | Error _ -> ());
         ignore (User.Usys.close fd);
         0));
  ignore
    (Core.Kernel.spawn_user kernel ~name:"noise" (fun () ->
         ignore (User.Usys.sleep 3);
         ignore (User.Usys.getpid ());
         0));
  run_for kernel 1;
  check_bool "blocked trace-pipe reader woke with data" true (!got > 0)

let ktrace_ctl_controls () =
  let kernel = boot_kernel ~config:(armed test_config) () in
  let tr = kernel.Core.Kernel.sched.Core.Sched.trace in
  match
    Benchlib.Measure.run_task kernel ~name:"ctl" (fun () ->
        let wr line =
          let fd = User.Usys.open_ "/proc/ktrace_ctl" Core.Abi.o_wronly in
          let r = User.Usys.write fd (Bytes.of_string line) in
          ignore (User.Usys.close fd);
          r
        in
        let ctl () =
          Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/ktrace_ctl"))
        in
        check_bool "tracer starts enabled" true
          (contains (ctl ()) "enable\t\t: 1");
        check_bool "disable accepted" true (wr "enable=0\n" > 0);
        check_bool "ctl mirrors disabled" true
          (contains (ctl ()) "enable\t\t: 0");
        let before = Core.Ktrace.written tr in
        ignore (User.Usys.getpid ());
        check_int "no events emitted while disabled" before
          (Core.Ktrace.written tr);
        check_bool "re-enable + filter + rel clock in one write" true
          (wr "enable=1\nfilter=syscall,span\nclock=rel\n" > 0);
        let state = ctl () in
        check_bool "ctl mirrors the class filter" true
          (contains state "filter\t\t: syscall,span");
        check_bool "ctl mirrors the rebased clock" true
          (contains state "clock\t\t: rel");
        let before = Core.Ktrace.written tr in
        ignore (User.Usys.getpid ());
        check_bool "filtered tracer emits again" true
          (Core.Ktrace.written tr > before);
        check_int "unknown key rejected" (-Core.Errno.einval) (wr "bogus=1\n");
        check_int "bad filter rejected" (-Core.Errno.einval)
          (wr "filter=nope\n");
        check_int "empty write rejected" (-Core.Errno.einval) (wr "\n");
        check_bool "filter=all restores everything" true
          (wr "filter=all\n" > 0);
        check_bool "ctl mirrors the restored filter" true
          (contains (ctl ()) "filter\t\t: all");
        0)
  with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let suite =
  ( "kperf",
    [
      quick "histogram bucket boundaries are exact" hist_bucket_boundaries;
      quick "empty histogram renders" hist_render_empty;
      quick "empty histogram quantiles are all 0" hist_empty_percentile_zero;
      hist_percentile_order;
      hist_merge_is_concat;
      quick "per-core rings merge (ts, seq)-sorted" trace_per_core_merge_sorted;
      quick "ring wraps, keeps newest, counts written" trace_ring_wraps;
      quick "trace reader consumes incrementally" trace_reader_consumes;
      quick "trace reader counts overwritten entries"
        trace_reader_lost_on_overwrite;
      quick "event-class filter" trace_filter_classes;
      quick "machine format round-trips every event" machine_roundtrip;
      slow "span pairing over a launcher session" span_pairing_full_run;
      slow "/proc/metrics exposes the kernel histograms"
        metrics_exposes_histograms;
      quick "/proc/metrics gated by the knob" metrics_gated_by_knob;
      slow "/proc/metrics is valid Prometheus exposition"
        metrics_exposition_wellformed;
      slow "/proc/profile attributes samples" profile_attributes_samples;
      quick "/proc/profile reports disabled when off" profile_disabled_renders;
      slow "/proc/ktrace streams and drains to EAGAIN" trace_pipe_streams;
      slow "blocked /proc/ktrace reader wakes on data"
        trace_pipe_blocks_then_wakes;
      slow "/proc/ktrace_ctl drives enable, filter and clock"
        ktrace_ctl_controls;
    ] )
