(** Tests for the discrete-event substrate: heap, engine, rng, stats. *)

open Tharness

(* ---- heap ---- *)

let heap_pop_order () =
  let h = Sim.Heap.create () in
  Sim.Heap.push h ~time:30L ~seq:0 "c";
  Sim.Heap.push h ~time:10L ~seq:1 "a";
  Sim.Heap.push h ~time:20L ~seq:2 "b";
  let pop () =
    match Sim.Heap.pop h with Some (_, _, v) -> v | None -> "!"
  in
  check_string "first" "a" (pop ());
  check_string "second" "b" (pop ());
  check_string "third" "c" (pop ());
  check_bool "empty" true (Sim.Heap.is_empty h)

let heap_fifo_at_same_time () =
  let h = Sim.Heap.create () in
  for i = 0 to 9 do
    Sim.Heap.push h ~time:5L ~seq:i i
  done;
  for i = 0 to 9 do
    match Sim.Heap.pop h with
    | Some (_, _, v) -> check_int (Printf.sprintf "fifo %d" i) i v
    | None -> Alcotest.fail "heap empty early"
  done

let heap_peek_non_destructive () =
  let h = Sim.Heap.create () in
  check_bool "empty peek" true (Sim.Heap.peek h = None);
  Sim.Heap.push h ~time:30L ~seq:0 "c";
  Sim.Heap.push h ~time:10L ~seq:1 "a";
  (match Sim.Heap.peek h with
  | Some (t, _, v) ->
      check_string "peek sees min" "a" v;
      check_bool "peek time" true (t = 10L)
  | None -> Alcotest.fail "peek on non-empty heap");
  check_int "peek does not remove" 2 (Sim.Heap.size h);
  (match Sim.Heap.pop h with
  | Some (_, _, v) -> check_string "pop agrees with peek" "a" v
  | None -> Alcotest.fail "pop after peek");
  check_int "pop removes" 1 (Sim.Heap.size h)

let heap_sorted_prop =
  qcheck "heap pops in nondecreasing time order"
    QCheck.(list (int_bound 10_000))
    (fun times ->
      let h = Sim.Heap.create () in
      List.iteri
        (fun i t -> Sim.Heap.push h ~time:(Int64.of_int t) ~seq:i t)
        times;
      let rec drain prev =
        match Sim.Heap.pop h with
        | None -> true
        | Some (t, _, _) -> Int64.compare prev t <= 0 && drain t
      in
      drain Int64.min_int)

let heap_size_tracks =
  qcheck "heap size equals pushes minus pops"
    QCheck.(pair (int_bound 200) (int_bound 200))
    (fun (pushes, pops) ->
      let h = Sim.Heap.create () in
      for i = 1 to pushes do
        Sim.Heap.push h ~time:(Int64.of_int i) ~seq:i i
      done;
      for _ = 1 to pops do
        ignore (Sim.Heap.pop h)
      done;
      Sim.Heap.size h = max 0 (pushes - pops))

(* ---- engine ---- *)

let engine_fires_in_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore (Sim.Engine.schedule_at e 100L (fun () -> log := "b" :: !log));
  ignore (Sim.Engine.schedule_at e 50L (fun () -> log := "a" :: !log));
  ignore (Sim.Engine.schedule_at e 150L (fun () -> log := "c" :: !log));
  Sim.Engine.run e ();
  check_string "order" "a,b,c" (String.concat "," (List.rev !log));
  check_bool "clock at last event" true (Sim.Engine.now e = 150L)

let engine_cancel () =
  let e = Sim.Engine.create () in
  let fired = ref false in
  let id = Sim.Engine.schedule_at e 10L (fun () -> fired := true) in
  Sim.Engine.cancel e id;
  Sim.Engine.run e ();
  check_bool "cancelled event did not fire" false !fired;
  check_int "pending is zero" 0 (Sim.Engine.pending e)

let engine_run_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Sim.Engine.schedule_at e (Int64.of_int (i * 100)) (fun () -> incr count))
  done;
  Sim.Engine.run e ~until:550L ();
  check_int "five fired" 5 !count;
  check_bool "clock clamped" true (Sim.Engine.now e = 550L);
  Sim.Engine.run e ();
  check_int "rest fired" 10 !count

let engine_no_past_scheduling () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at e 100L (fun () -> ()));
  Sim.Engine.run e ();
  Alcotest.check_raises "past scheduling rejected"
    (Invalid_argument "Engine.schedule_at: time is in the past") (fun () ->
      ignore (Sim.Engine.schedule_at e 50L (fun () -> ())))

let engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  ignore
    (Sim.Engine.schedule_at e 10L (fun () ->
         log := 10 :: !log;
         ignore (Sim.Engine.schedule_after e 5L (fun () -> log := 15 :: !log))));
  Sim.Engine.run e ();
  check_string "nested order" "10,15"
    (String.concat "," (List.map string_of_int (List.rev !log)))

let engine_advance_guard () =
  let e = Sim.Engine.create () in
  ignore (Sim.Engine.schedule_at e 100L (fun () -> ()));
  Alcotest.check_raises "advance cannot skip events"
    (Invalid_argument "Engine.advance_to: would skip a pending event")
    (fun () -> Sim.Engine.advance_to e 200L);
  Sim.Engine.advance_to e 50L;
  check_bool "partial advance ok" true (Sim.Engine.now e = 50L)

let engine_time_units () =
  check_bool "us" true (Sim.Engine.us 3 = 3_000L);
  check_bool "ms" true (Sim.Engine.ms 3 = 3_000_000L);
  check_bool "sec" true (Sim.Engine.sec 3 = 3_000_000_000L);
  check_close "to_us" 1.5 (Sim.Engine.to_us 1_500L);
  check_close "to_sec" 2.5 (Sim.Engine.to_sec 2_500_000_000L)

(* ---- rng ---- *)

let rng_deterministic () =
  let a = Sim.Rng.create 99L and b = Sim.Rng.create 99L in
  for _ = 1 to 100 do
    check_bool "same stream" true (Sim.Rng.next a = Sim.Rng.next b)
  done

let rng_split_independent () =
  let a = Sim.Rng.create 99L in
  let c = Sim.Rng.split a in
  check_bool "split differs from parent" true (Sim.Rng.next a <> Sim.Rng.next c)

let rng_int_bounds =
  qcheck "Rng.int stays in bounds"
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Sim.Rng.create seed in
      let v = Sim.Rng.int rng bound in
      v >= 0 && v < bound)

let rng_float_distribution () =
  let rng = Sim.Rng.create 5L in
  let n = 10_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Sim.Rng.float rng 1.0
  done;
  check_in_range "uniform mean" 0.47 0.53 (!sum /. float_of_int n)

let rng_gaussian_moments () =
  let rng = Sim.Rng.create 11L in
  let n = 20_000 in
  let stats = Sim.Stats.create () in
  for _ = 1 to n do
    Sim.Stats.add stats (Sim.Rng.gaussian rng ~mu:10.0 ~sigma:2.0)
  done;
  check_in_range "gaussian mean" 9.9 10.1 (Sim.Stats.mean stats);
  check_in_range "gaussian sd" 1.9 2.1 (Sim.Stats.stddev stats)

(* ---- stats ---- *)

let stats_basic () =
  let s = Sim.Stats.create () in
  List.iter (Sim.Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  check_close "mean" 2.5 (Sim.Stats.mean s);
  check_close "min" 1.0 (Sim.Stats.min_value s);
  check_close "max" 4.0 (Sim.Stats.max_value s);
  check_close "total" 10.0 (Sim.Stats.total s);
  check_int "count" 4 (Sim.Stats.count s);
  check_close ~eps:1e-9 "stddev"
    (sqrt (5.0 /. 3.0))
    (Sim.Stats.stddev s)

let stats_percentile () =
  let s = Sim.Stats.create () in
  for i = 1 to 100 do
    Sim.Stats.add s (float_of_int i)
  done;
  check_close "p50" 50.0 (Sim.Stats.percentile s 50.0);
  check_close "p99" 99.0 (Sim.Stats.percentile s 99.0);
  check_close "p100" 100.0 (Sim.Stats.percentile s 100.0)

let stats_merge () =
  let a = Sim.Stats.create () and b = Sim.Stats.create () in
  List.iter (Sim.Stats.add a) [ 1.0; 2.0 ];
  List.iter (Sim.Stats.add b) [ 3.0; 4.0 ];
  let m = Sim.Stats.merge a b in
  check_int "merged count" 4 (Sim.Stats.count m);
  check_close "merged mean" 2.5 (Sim.Stats.mean m)

let stats_mean_matches_list =
  qcheck "stats mean equals arithmetic mean"
    QCheck.(list_of_size (Gen.int_range 1 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let s = Sim.Stats.create () in
      List.iter (Sim.Stats.add s) xs;
      let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Sim.Stats.mean s -. mean) < 1e-6 *. (1.0 +. Float.abs mean))

let suite =
  ( "sim",
    [
      quick "heap pop order" heap_pop_order;
      quick "heap fifo ties" heap_fifo_at_same_time;
      quick "heap peek non-destructive" heap_peek_non_destructive;
      heap_sorted_prop;
      heap_size_tracks;
      quick "engine fires in order" engine_fires_in_order;
      quick "engine cancel" engine_cancel;
      quick "engine run until" engine_run_until;
      quick "engine rejects past" engine_no_past_scheduling;
      quick "engine nested scheduling" engine_nested_scheduling;
      quick "engine advance guard" engine_advance_guard;
      quick "engine time units" engine_time_units;
      quick "rng deterministic" rng_deterministic;
      quick "rng split" rng_split_independent;
      rng_int_bounds;
      quick "rng uniform mean" rng_float_distribution;
      quick "rng gaussian moments" rng_gaussian_moments;
      quick "stats basics" stats_basic;
      quick "stats percentiles" stats_percentile;
      quick "stats merge" stats_merge;
      stats_mean_matches_list;
    ] )
