(** Tests for the filesystem layer: paths, block devices, MBR, xv6fs and
    FAT32 — including the invariants the paper leans on (the ~270 KB xv6fs
    file limit, FAT32 range reads). *)

open Tharness

(* ---- vpath ---- *)

let vpath_normalize () =
  check_string "slashes" "/a/b/c" (Fs.Vpath.normalize "/a//b/./c");
  check_string "dotdot" "/a/c" (Fs.Vpath.normalize "/a/b/../c");
  check_string "root dotdot" "/" (Fs.Vpath.normalize "/../..");
  check_string "trailing" "/a" (Fs.Vpath.normalize "/a/");
  check_string "empty" "/" (Fs.Vpath.normalize "")

let vpath_parts () =
  check_string "basename" "c" (Fs.Vpath.basename "/a/b/c");
  check_string "basename root" "/" (Fs.Vpath.basename "/");
  check_string "dirname" "/a/b" (Fs.Vpath.dirname "/a/b/c");
  check_string "dirname of top" "/" (Fs.Vpath.dirname "/a");
  check_string "join rel" "/a/b" (Fs.Vpath.join "/a" "b");
  check_string "join abs wins" "/x" (Fs.Vpath.join "/a" "/x")

let vpath_prefix () =
  check_bool "prefix" true (Fs.Vpath.is_prefix ~prefix:"/d" "/d/x");
  check_bool "not string prefix" false (Fs.Vpath.is_prefix ~prefix:"/d" "/dx");
  check_bool "strip" true
    (Fs.Vpath.strip_prefix ~prefix:"/d" "/d/x/y" = Some "/x/y");
  check_bool "strip self" true (Fs.Vpath.strip_prefix ~prefix:"/d" "/d" = Some "/");
  check_bool "strip mismatch" true (Fs.Vpath.strip_prefix ~prefix:"/d" "/e" = None)

let vpath_normalize_idempotent =
  qcheck "normalize is idempotent" QCheck.(string_of_size (Gen.int_bound 40))
    (fun s ->
      let once = Fs.Vpath.normalize s in
      String.equal once (Fs.Vpath.normalize once))

let suite_vpath =
  ( "fs.vpath",
    [
      quick "normalize" vpath_normalize;
      quick "parts" vpath_parts;
      quick "prefix ops" vpath_prefix;
      vpath_normalize_idempotent;
    ] )

(* ---- blockdev + mbr ---- *)

let blockdev_bounds () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"t" ~sectors:16 in
  ignore (check_ok "in range" (dev.Fs.Blockdev.read_sectors ~lba:15 ~count:1));
  ignore (check_err "past end" (dev.Fs.Blockdev.read_sectors ~lba:15 ~count:2));
  ignore (check_err "unaligned" (dev.Fs.Blockdev.write_sectors ~lba:0 ~data:(Bytes.make 100 'x')))

let blockdev_sub_window () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"t" ~sectors:16 in
  let sub = Fs.Blockdev.sub dev ~name:"p" ~first_lba:8 ~sectors:8 in
  let data = Bytes.make 512 'q' in
  ignore (check_ok "sub write" (sub.Fs.Blockdev.write_sectors ~lba:0 ~data));
  let back = check_ok "parent read" (dev.Fs.Blockdev.read_sectors ~lba:8 ~count:1) in
  check_bool "window maps" true (Bytes.equal back data)

let mbr_roundtrip () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"t" ~sectors:64 in
  let parts =
    [|
      { Fs.Mbr.part_type = Fs.Mbr.native_type; first_lba = 2048; sectors = 8192 };
      { Fs.Mbr.part_type = Fs.Mbr.fat32_lba_type; first_lba = 10240; sectors = 4096 };
    |]
  in
  ignore (check_ok "write" (Fs.Mbr.write dev parts));
  let back = check_ok "read" (Fs.Mbr.read dev) in
  check_int "type 1" Fs.Mbr.native_type back.(0).Fs.Mbr.part_type;
  check_int "lba 2" 10240 back.(1).Fs.Mbr.first_lba;
  check_int "empty slot" 0 back.(3).Fs.Mbr.part_type

let mbr_bad_signature () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"t" ~sectors:4 in
  ignore (check_err "no signature" (Fs.Mbr.read dev))

let suite_blockdev =
  ( "fs.blockdev",
    [
      quick "bounds" blockdev_bounds;
      quick "sub window" blockdev_sub_window;
      quick "mbr roundtrip" mbr_roundtrip;
      quick "mbr bad signature" mbr_bad_signature;
    ] )

(* ---- xv6fs ---- *)

let mkfs_mounted () =
  let img = Fs.Xv6fs.mkfs ~total_blocks:1024 ~ninodes:64 () in
  let t = check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  (img, t)

let xv6_create_read_write () =
  let _, t = mkfs_mounted () in
  let f = check_ok "create" (Fs.Xv6fs.create t "/f" Fs.Xv6fs.Reg) in
  let data = Bytes.of_string "hello xv6fs" in
  check_int "written" (Bytes.length data)
    (check_ok "write" (Fs.Xv6fs.writei t f ~off:0 ~data));
  let back = check_ok "read" (Fs.Xv6fs.readi t f ~off:0 ~len:100) in
  check_bool "roundtrip" true (Bytes.equal back data);
  let st = Fs.Xv6fs.stat_of t f in
  check_int "size" (Bytes.length data) st.Fs.Xv6fs.st_size;
  check_int "nlink" 1 st.Fs.Xv6fs.st_nlink

let xv6_offsets_and_sparse () =
  let _, t = mkfs_mounted () in
  let f = check_ok "create" (Fs.Xv6fs.create t "/sparse" Fs.Xv6fs.Reg) in
  ignore (check_ok "far write" (Fs.Xv6fs.writei t f ~off:5000 ~data:(Bytes.of_string "end")));
  let hole = check_ok "hole reads zero" (Fs.Xv6fs.readi t f ~off:100 ~len:10) in
  check_bool "zeros" true (Bytes.for_all (fun c -> c = '\000') hole);
  let tail = check_ok "tail" (Fs.Xv6fs.readi t f ~off:5000 ~len:3) in
  check_string "tail content" "end" (Bytes.to_string tail)

let xv6_max_file_size () =
  let img = Fs.Xv6fs.mkfs ~total_blocks:2048 ~ninodes:32 () in
  let t = check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  let f = check_ok "create" (Fs.Xv6fs.create t "/big" Fs.Xv6fs.Reg) in
  check_int "274432 bytes exactly" Fs.Xv6fs.max_file_bytes
    (check_ok "max write"
       (Fs.Xv6fs.writei t f ~off:0 ~data:(Bytes.make Fs.Xv6fs.max_file_bytes 'x')));
  ignore
    (check_err "one more byte fails"
       (Fs.Xv6fs.writei t f ~off:Fs.Xv6fs.max_file_bytes ~data:(Bytes.of_string "y")));
  (* the paper's number: ~268 KB *)
  check_int "268 KB limit" (268 * 1024) Fs.Xv6fs.max_file_bytes

let xv6_directories () =
  let _, t = mkfs_mounted () in
  ignore (check_ok "mkdir" (Fs.Xv6fs.create t "/d" Fs.Xv6fs.Dir));
  ignore (check_ok "nested" (Fs.Xv6fs.create t "/d/e" Fs.Xv6fs.Dir));
  ignore (check_ok "file in nested" (Fs.Xv6fs.create t "/d/e/f" Fs.Xv6fs.Reg));
  let node = check_ok "lookup deep" (Fs.Xv6fs.lookup t "/d/e/f") in
  check_bool "inum positive" true (Fs.Xv6fs.inum node > 0);
  let listing = check_ok "readdir" (Fs.Xv6fs.readdir t (check_ok "lookup d" (Fs.Xv6fs.lookup t "/d"))) in
  check_bool "contains e" true (List.exists (fun (n, _) -> n = "e") listing);
  ignore (check_err "duplicate create" (Fs.Xv6fs.create t "/d" Fs.Xv6fs.Dir));
  ignore (check_err "lookup missing" (Fs.Xv6fs.lookup t "/nope"))

let xv6_unlink_and_block_reuse () =
  let _, t = mkfs_mounted () in
  let free0 = Fs.Xv6fs.free_data_blocks t in
  let f = check_ok "create" (Fs.Xv6fs.create t "/tmp" Fs.Xv6fs.Reg) in
  ignore (check_ok "fill" (Fs.Xv6fs.writei t f ~off:0 ~data:(Bytes.make 50_000 'x')));
  check_bool "blocks consumed" true (Fs.Xv6fs.free_data_blocks t < free0);
  ignore (check_ok "unlink" (Fs.Xv6fs.unlink t "/tmp"));
  check_int "all blocks returned" free0 (Fs.Xv6fs.free_data_blocks t);
  ignore (check_err "gone" (Fs.Xv6fs.lookup t "/tmp"))

let xv6_unlink_rules () =
  let _, t = mkfs_mounted () in
  ignore (check_ok "mkdir" (Fs.Xv6fs.create t "/d" Fs.Xv6fs.Dir));
  ignore (check_ok "child" (Fs.Xv6fs.create t "/d/x" Fs.Xv6fs.Reg));
  ignore (check_err "non-empty dir" (Fs.Xv6fs.unlink t "/d"));
  ignore (check_ok "unlink child" (Fs.Xv6fs.unlink t "/d/x"));
  ignore (check_ok "now empty" (Fs.Xv6fs.unlink t "/d"));
  ignore (check_err "cannot unlink root" (Fs.Xv6fs.unlink t "/"))

let xv6_persistence_across_mounts () =
  let img, t = mkfs_mounted () in
  let f = check_ok "create" (Fs.Xv6fs.create t "/persist" Fs.Xv6fs.Reg) in
  ignore (check_ok "write" (Fs.Xv6fs.writei t f ~off:0 ~data:(Bytes.of_string "durable")));
  (* remount from the same image: a fresh instance must see the data *)
  let t2 = check_ok "remount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  let node = check_ok "lookup" (Fs.Xv6fs.lookup t2 "/persist") in
  let back = check_ok "read" (Fs.Xv6fs.readi t2 node ~off:0 ~len:100) in
  check_string "content survives" "durable" (Bytes.to_string back)

let xv6_dev_nodes () =
  let _, t = mkfs_mounted () in
  let node = check_ok "mknod" (Fs.Xv6fs.create t "/console" Fs.Xv6fs.Dev) in
  Fs.Xv6fs.set_dev t node ~major:1 ~minor:2;
  check_bool "dev numbers" true (Fs.Xv6fs.dev_of t node = (1, 2))

let xv6_out_of_inodes () =
  (* ninodes = 4: inode 0 reserved, 1 is the root -> two free inodes *)
  let img = Fs.Xv6fs.mkfs ~total_blocks:512 ~ninodes:4 () in
  let t = check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  ignore (check_ok "1" (Fs.Xv6fs.create t "/a" Fs.Xv6fs.Reg));
  ignore (check_ok "2" (Fs.Xv6fs.create t "/b" Fs.Xv6fs.Reg));
  ignore (check_err "exhausted" (Fs.Xv6fs.create t "/c" Fs.Xv6fs.Reg))

let xv6_random_roundtrip =
  qcheck ~count:30 "xv6fs random chunked writes read back"
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_bound 40_000) (int_bound 3_000)))
    (fun chunks ->
      let img = Fs.Xv6fs.mkfs ~total_blocks:2048 ~ninodes:16 () in
      let t = Result.get_ok (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
      let f = Result.get_ok (Fs.Xv6fs.create t "/r" Fs.Xv6fs.Reg) in
      let shadow = Bytes.make Fs.Xv6fs.max_file_bytes '\000' in
      let max_end = ref 0 in
      let ok =
        List.for_all
          (fun (off, len) ->
            let len = min len (Fs.Xv6fs.max_file_bytes - off) in
            if len <= 0 then true
            else begin
              let data = Bytes.init len (fun i -> Char.chr ((off + i) land 0xff)) in
              Bytes.blit data 0 shadow off len;
              max_end := max !max_end (off + len);
              match Fs.Xv6fs.writei t f ~off ~data with
              | Ok n -> n = len
              | Error _ -> false
            end)
          chunks
      in
      ok
      &&
      match Fs.Xv6fs.readi t f ~off:0 ~len:!max_end with
      | Ok back -> Bytes.equal back (Bytes.sub shadow 0 !max_end)
      | Error _ -> false)

(* ---- the extent (doubly-indirect) layout ---- *)

let ext_mounted ?(total_blocks = 2200) () =
  let img = Fs.Xv6fs.mkfs ~ext:true ~total_blocks ~ninodes:16 () in
  (img, check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)))

let xv6_ext_cap () =
  let _, t = ext_mounted () in
  check_int "ext cap" ((11 + 256 + (256 * 256)) * 1024) Fs.Xv6fs.max_file_bytes_ext;
  check_int "instance cap" Fs.Xv6fs.max_file_bytes_ext (Fs.Xv6fs.max_bytes t);
  (* the legacy constant the paper leans on is untouched *)
  check_int "legacy cap" (268 * 1024) Fs.Xv6fs.max_file_bytes

(* write/read/truncate/unlink across the old ~270 KB boundary: a 1.5 MB
   file needs the doubly-indirect tree *)
let xv6_ext_large_file () =
  let img = Fs.Xv6fs.mkfs ~ext:true ~total_blocks:2200 ~ninodes:16 () in
  let t = check_ok "mount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  let free0 = Fs.Xv6fs.free_data_blocks t in
  let f = check_ok "create" (Fs.Xv6fs.create t "/big" Fs.Xv6fs.Reg) in
  let size = 3 * 1024 * 1024 / 2 in
  let data = Bytes.init size (fun i -> Char.chr ((i * 13) land 0xff)) in
  check_int "1.5 MB written" size
    (check_ok "write past the old cap" (Fs.Xv6fs.writei t f ~off:0 ~data));
  check_bool "beyond legacy cap" true (size > Fs.Xv6fs.max_file_bytes);
  let back = check_ok "read all" (Fs.Xv6fs.readi t f ~off:0 ~len:size) in
  check_bool "roundtrip" true (Bytes.equal back data);
  (* interior reads straddling the single/double indirect boundary *)
  List.iter
    (fun off ->
      let b = check_ok "interior" (Fs.Xv6fs.readi t f ~off ~len:2048) in
      check_bool
        (Printf.sprintf "interior %d" off)
        true
        (Bytes.equal b (Bytes.sub data off 2048)))
    [ 0; 10 * 1024; (11 + 256) * 1024 - 1024; 1_000_000 ];
  (* a remount sees the same bytes *)
  let t2 = check_ok "remount" (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
  let f2 = check_ok "lookup" (Fs.Xv6fs.lookup t2 "/big") in
  check_int "size survives" size (Fs.Xv6fs.stat_of t2 f2).Fs.Xv6fs.st_size;
  (* truncate returns every block, including the indirect tree *)
  Fs.Xv6fs.truncate t f;
  check_int "truncate frees all" free0 (Fs.Xv6fs.free_data_blocks t);
  ignore (check_ok "rewrite" (Fs.Xv6fs.writei t f ~off:0 ~data:(Bytes.make 500_000 'z')));
  ignore (check_ok "unlink" (Fs.Xv6fs.unlink t "/big"));
  check_int "unlink frees all" free0 (Fs.Xv6fs.free_data_blocks t);
  let r = Fs.Xv6fs.fsck t in
  check_bool "fsck clean after churn" true r.Fs.Xv6fs.fsck_clean

let xv6_ext_cap_enforced () =
  (* a sparse write just under the cap lands; at the cap it errors *)
  let _, t = ext_mounted () in
  let f = check_ok "create" (Fs.Xv6fs.create t "/edge" Fs.Xv6fs.Reg) in
  ignore
    (check_ok "last byte"
       (Fs.Xv6fs.writei t f ~off:(Fs.Xv6fs.max_file_bytes_ext - 1)
          ~data:(Bytes.of_string "x")));
  ignore
    (check_err "one past the cap"
       (Fs.Xv6fs.writei t f ~off:Fs.Xv6fs.max_file_bytes_ext
          ~data:(Bytes.of_string "y")))

(* random write/truncate sequences vs an in-memory model, on the extent
   layout, crossing the legacy boundary *)
let xv6_ext_random_model =
  qcheck ~count:20 "ext random write/truncate vs model"
    QCheck.(
      list_of_size (Gen.int_range 1 10)
        (pair (int_bound 400_000) (int_bound 30_000)))
    (fun ops ->
      let img = Fs.Xv6fs.mkfs ~ext:true ~total_blocks:2048 ~ninodes:8 () in
      let t = Result.get_ok (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image img)) in
      let f = Result.get_ok (Fs.Xv6fs.create t "/m" Fs.Xv6fs.Reg) in
      let cap = 450_000 in
      let shadow = Bytes.make cap '\000' in
      let size = ref 0 in
      let ok =
        List.for_all
          (fun (off, len) ->
            if len = 0 then begin
              (* zero-length op doubles as a truncate probe *)
              Fs.Xv6fs.truncate t f;
              Bytes.fill shadow 0 cap '\000';
              size := 0;
              true
            end
            else begin
              let len = min len (cap - off) in
              if len <= 0 then true
              else begin
                let data =
                  Bytes.init len (fun i -> Char.chr ((off + (i * 3)) land 0xff))
                in
                Bytes.blit data 0 shadow off len;
                size := max !size (off + len);
                match Fs.Xv6fs.writei t f ~off ~data with
                | Ok n -> n = len
                | Error _ -> false
              end
            end)
          ops
      in
      ok
      && (match Fs.Xv6fs.readi t f ~off:0 ~len:!size with
         | Ok back -> Bytes.equal back (Bytes.sub shadow 0 !size)
         | Error _ -> false)
      && (Fs.Xv6fs.fsck t).Fs.Xv6fs.fsck_clean)

let suite_xv6fs =
  ( "fs.xv6fs",
    [
      quick "create read write" xv6_create_read_write;
      quick "offsets and sparse files" xv6_offsets_and_sparse;
      quick "max file size is the paper's 268KB" xv6_max_file_size;
      quick "directories" xv6_directories;
      quick "unlink frees blocks" xv6_unlink_and_block_reuse;
      quick "unlink rules" xv6_unlink_rules;
      quick "persistence across mounts" xv6_persistence_across_mounts;
      quick "device nodes" xv6_dev_nodes;
      quick "out of inodes" xv6_out_of_inodes;
      xv6_random_roundtrip;
      quick "ext: caps" xv6_ext_cap;
      quick "ext: 1.5MB write/read/truncate/unlink" xv6_ext_large_file;
      quick "ext: cap enforced" xv6_ext_cap_enforced;
      xv6_ext_random_model;
    ] )

(* ---- fat32 ---- *)

let fat_fresh ?(sectors = 65536) () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"sd" ~sectors in
  let io = Fs.Fat32.io_of_blockdev dev in
  Fs.Fat32.mkfs io ~total_sectors:sectors ();
  check_ok "mount" (Fs.Fat32.mount io)

let fat_create_write_read () =
  let t = fat_fresh () in
  ignore (check_ok "create" (Fs.Fat32.create t "/file.txt"));
  let data = Bytes.of_string "fat32 payload" in
  check_int "written" (Bytes.length data)
    (check_ok "write" (Fs.Fat32.write_file t "/file.txt" ~off:0 ~data));
  let back = check_ok "read" (Fs.Fat32.read_file t "/file.txt" ~off:0 ~len:100) in
  check_bool "roundtrip" true (Bytes.equal back data);
  let st = check_ok "stat" (Fs.Fat32.stat t "/file.txt") in
  check_int "size" (Bytes.length data) st.Fs.Fat32.st_size;
  check_bool "not dir" false st.Fs.Fat32.st_dir

let fat_long_names () =
  let t = fat_fresh () in
  let name = "/A Quite Long File Name With Spaces.document" in
  ignore (check_ok "create lfn" (Fs.Fat32.create t name));
  ignore (check_ok "stat exact" (Fs.Fat32.stat t name));
  (* case-insensitive match, like FAT *)
  ignore
    (check_ok "stat case-insensitive"
       (Fs.Fat32.stat t "/a quite long file name with spaces.DOCUMENT"));
  let listing = check_ok "readdir" (Fs.Fat32.readdir t "/") in
  check_bool "long name restored" true
    (List.exists
       (fun (n, _) -> String.equal n "A Quite Long File Name With Spaces.document")
       listing)

let fat_short_name_collisions () =
  let t = fat_fresh () in
  (* both map to LONGFI~1.TXT-ish short names; tails must disambiguate *)
  ignore (check_ok "first" (Fs.Fat32.create t "/longfilename-one.txt"));
  ignore (check_ok "second" (Fs.Fat32.create t "/longfilename-two.txt"));
  ignore (check_ok "stat 1" (Fs.Fat32.stat t "/longfilename-one.txt"));
  ignore (check_ok "stat 2" (Fs.Fat32.stat t "/longfilename-two.txt"));
  check_int "two entries" 2 (List.length (check_ok "ls" (Fs.Fat32.readdir t "/")))

let fat_subdirectories () =
  let t = fat_fresh () in
  ignore (check_ok "mkdir" (Fs.Fat32.mkdir t "/music"));
  ignore (check_ok "nested" (Fs.Fat32.mkdir t "/music/rock"));
  ignore (check_ok "create deep" (Fs.Fat32.create t "/music/rock/song.vogg"));
  ignore
    (check_ok "write deep"
       (Fs.Fat32.write_file t "/music/rock/song.vogg" ~off:0
          ~data:(Bytes.make 10_000 'n')));
  let st = check_ok "stat dir" (Fs.Fat32.stat t "/music") in
  check_bool "is dir" true st.Fs.Fat32.st_dir;
  ignore (check_err "unlink non-empty" (Fs.Fat32.unlink t "/music"));
  ignore (check_err "not a dir" (Fs.Fat32.readdir t "/music/rock/song.vogg"))

let fat_big_file_and_offsets () =
  let t = fat_fresh () in
  ignore (check_ok "create" (Fs.Fat32.create t "/big.bin"));
  let data = Bytes.init 300_000 (fun i -> Char.chr ((i * 7) land 0xff)) in
  ignore (check_ok "write" (Fs.Fat32.write_file t "/big.bin" ~off:0 ~data));
  (* random interior reads *)
  List.iter
    (fun (off, len) ->
      let back = check_ok "interior read" (Fs.Fat32.read_file t "/big.bin" ~off ~len) in
      check_bool
        (Printf.sprintf "interior %d+%d" off len)
        true
        (Bytes.equal back (Bytes.sub data off len)))
    [ (0, 512); (4095, 2); (123_456, 10_000); (299_000, 1_000) ];
  (* short read at EOF *)
  let tail = check_ok "eof read" (Fs.Fat32.read_file t "/big.bin" ~off:299_999 ~len:100) in
  check_int "short read" 1 (Bytes.length tail)

let fat_overwrite_and_extend () =
  let t = fat_fresh () in
  ignore (check_ok "create" (Fs.Fat32.create t "/f"));
  ignore (check_ok "write" (Fs.Fat32.write_file t "/f" ~off:0 ~data:(Bytes.of_string "aaaa")));
  ignore (check_ok "patch" (Fs.Fat32.write_file t "/f" ~off:2 ~data:(Bytes.of_string "XX")));
  ignore (check_ok "extend" (Fs.Fat32.write_file t "/f" ~off:4 ~data:(Bytes.of_string "bb")));
  let back = check_ok "read" (Fs.Fat32.read_file t "/f" ~off:0 ~len:10) in
  check_string "merged" "aaXXbb" (Bytes.to_string back)

let fat_truncate_and_cluster_reuse () =
  let t = fat_fresh () in
  let free0 = Fs.Fat32.free_clusters t in
  ignore (check_ok "create" (Fs.Fat32.create t "/t"));
  ignore (check_ok "fill" (Fs.Fat32.write_file t "/t" ~off:0 ~data:(Bytes.make 100_000 'x')));
  check_bool "clusters consumed" true (Fs.Fat32.free_clusters t < free0);
  ignore (check_ok "truncate" (Fs.Fat32.truncate t "/t"));
  check_int "clusters freed" free0 (Fs.Fat32.free_clusters t);
  check_int "size zero" 0 (check_ok "stat" (Fs.Fat32.stat t "/t")).Fs.Fat32.st_size

let fat_unlink () =
  let t = fat_fresh () in
  let free0 = Fs.Fat32.free_clusters t in
  ignore (check_ok "create" (Fs.Fat32.create t "/gone.txt"));
  ignore (check_ok "fill" (Fs.Fat32.write_file t "/gone.txt" ~off:0 ~data:(Bytes.make 9_000 'x')));
  ignore (check_ok "unlink" (Fs.Fat32.unlink t "/gone.txt"));
  ignore (check_err "stat gone" (Fs.Fat32.stat t "/gone.txt"));
  check_int "space reclaimed" free0 (Fs.Fat32.free_clusters t);
  (* the name is reusable *)
  ignore (check_ok "recreate" (Fs.Fat32.create t "/gone.txt"))

let fat_many_files_extend_directory () =
  let t = fat_fresh () in
  (* enough LFN entries to spill the root directory past one cluster *)
  for i = 1 to 120 do
    ignore
      (check_ok "create many"
         (Fs.Fat32.create t (Printf.sprintf "/a fairly long name number %03d.txt" i)))
  done;
  check_int "all listed" 120 (List.length (check_ok "ls" (Fs.Fat32.readdir t "/")))

let fat_persistence_across_mounts () =
  let dev, _ = Fs.Blockdev.ramdisk ~name:"sd" ~sectors:65536 in
  let io = Fs.Fat32.io_of_blockdev dev in
  Fs.Fat32.mkfs io ~total_sectors:65536 ();
  let t = check_ok "mount" (Fs.Fat32.mount io) in
  ignore (check_ok "create" (Fs.Fat32.create t "/keep.dat"));
  ignore (check_ok "write" (Fs.Fat32.write_file t "/keep.dat" ~off:0 ~data:(Bytes.of_string "persist")));
  let t2 = check_ok "remount" (Fs.Fat32.mount io) in
  let back = check_ok "read" (Fs.Fat32.read_file t2 "/keep.dat" ~off:0 ~len:10) in
  check_string "content" "persist" (Bytes.to_string back)

let fat_random_roundtrip =
  qcheck ~count:25 "fat32 random file contents roundtrip"
    QCheck.(pair small_nat (int_range 1 120_000))
    (fun (seed, size) ->
      let t = fat_fresh () in
      let rng = Sim.Rng.create (Int64.of_int (seed + 1)) in
      let data = Bytes.init size (fun _ -> Char.chr (Sim.Rng.int rng 256)) in
      (match Fs.Fat32.create t "/r.bin" with Ok () -> () | Error e -> failwith e);
      match Fs.Fat32.write_file t "/r.bin" ~off:0 ~data with
      | Error _ -> false
      | Ok _ -> (
          match Fs.Fat32.read_file t "/r.bin" ~off:0 ~len:size with
          | Ok back -> Bytes.equal back data
          | Error _ -> false))

let suite_fat32 =
  ( "fs.fat32",
    [
      quick "create write read" fat_create_write_read;
      quick "long file names" fat_long_names;
      quick "short-name collisions" fat_short_name_collisions;
      quick "subdirectories" fat_subdirectories;
      quick "big file and offsets" fat_big_file_and_offsets;
      quick "overwrite and extend" fat_overwrite_and_extend;
      quick "truncate reuses clusters" fat_truncate_and_cluster_reuse;
      quick "unlink" fat_unlink;
      quick "directory growth" fat_many_files_extend_directory;
      quick "persistence across mounts" fat_persistence_across_mounts;
      fat_random_roundtrip;
    ] )
