(** Tests for the hardware models. *)

open Tharness

let fresh () = Hw.Board.create ~seed:3L ()

(* ---- interrupt controller ---- *)

let intc_delivers () =
  let b = fresh () in
  let got = ref [] in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:0 (fun line ->
      got := Hw.Irq.describe line :: !got);
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Uart_rx;
  check_string "delivered" "uart-rx" (List.hd !got)

let intc_mask_pends () =
  let b = fresh () in
  let got = ref 0 in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:0 (fun _ -> incr got);
  Hw.Intc.mask b.Hw.Board.intc ~core:0;
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Uart_rx;
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Uart_rx (* coalesces *);
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Sd_card;
  check_int "nothing while masked" 0 !got;
  check_int "two distinct pending" 2 (Hw.Intc.pending_count b.Hw.Board.intc ~core:0);
  Hw.Intc.unmask b.Hw.Board.intc ~core:0;
  check_int "delivered on unmask" 2 !got

let intc_mask_nests () =
  let b = fresh () in
  let got = ref 0 in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:0 (fun _ -> incr got);
  Hw.Intc.mask b.Hw.Board.intc ~core:0;
  Hw.Intc.mask b.Hw.Board.intc ~core:0;
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Uart_rx;
  Hw.Intc.unmask b.Hw.Board.intc ~core:0;
  check_int "still masked after one pop" 0 !got;
  Hw.Intc.unmask b.Hw.Board.intc ~core:0;
  check_int "delivered at depth zero" 1 !got

let intc_fiq_bypasses_mask_round_robin () =
  let b = fresh () in
  let per_core = Array.make 4 0 in
  for c = 0 to 3 do
    Hw.Intc.set_handler b.Hw.Board.intc ~core:c (fun line ->
        if Hw.Irq.equal line Hw.Irq.Fiq_button then
          per_core.(c) <- per_core.(c) + 1)
  done;
  (* mask every core: FIQ must still land *)
  for c = 0 to 3 do
    Hw.Intc.mask b.Hw.Board.intc ~core:c
  done;
  for _ = 1 to 8 do
    Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Fiq_button
  done;
  Array.iteri
    (fun c n -> check_int (Printf.sprintf "core %d got 2 FIQs" c) 2 n)
    per_core

let intc_routing () =
  let b = fresh () in
  let landed = ref (-1) in
  for c = 0 to 3 do
    Hw.Intc.set_handler b.Hw.Board.intc ~core:c (fun _ -> landed := c)
  done;
  Hw.Intc.route b.Hw.Board.intc Hw.Irq.Sd_card ~core:2;
  Hw.Intc.raise_line b.Hw.Board.intc Hw.Irq.Sd_card;
  check_int "routed to core 2" 2 !landed

(* ---- timers ---- *)

let timer_core_oneshot () =
  let b = fresh () in
  let fired = ref [] in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:1 (fun line ->
      fired := Hw.Irq.describe line :: !fired);
  Hw.Timer.arm_core_timer b.Hw.Board.timer ~core:1 ~delta_ns:1000L;
  Sim.Engine.run b.Hw.Board.engine ();
  check_string "core1 timer" "core1-timer" (List.hd !fired);
  check_bool "disarmed after fire" false
    (Hw.Timer.core_timer_armed b.Hw.Board.timer ~core:1)

let timer_rearm_replaces () =
  let b = fresh () in
  let count = ref 0 in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:0 (fun _ -> incr count);
  Hw.Timer.arm_core_timer b.Hw.Board.timer ~core:0 ~delta_ns:1000L;
  Hw.Timer.arm_core_timer b.Hw.Board.timer ~core:0 ~delta_ns:2000L;
  Sim.Engine.run b.Hw.Board.engine ();
  check_int "only one shot" 1 !count;
  check_bool "fired at rearmed time" true (Sim.Engine.now b.Hw.Board.engine = 2000L)

let timer_counter () =
  let b = fresh () in
  ignore (Sim.Engine.schedule_at b.Hw.Board.engine 5_000_000L (fun () -> ()));
  Sim.Engine.run b.Hw.Board.engine ();
  check_bool "counter in us" true (Hw.Timer.counter_us b.Hw.Board.timer = 5_000L)

(* ---- uart ---- *)

let uart_capture_and_cost () =
  let b = fresh () in
  let cost = Hw.Uart.transmit b.Hw.Board.uart 'h' in
  ignore (Hw.Uart.transmit b.Hw.Board.uart 'i');
  check_string "log" "hi" (Hw.Uart.output b.Hw.Board.uart);
  (* 10 bits at 115200 baud: ~86.8 us *)
  check_in_range "wire time us" 85.0 88.0 (Sim.Engine.to_us cost)

let uart_rx_irq () =
  let b = fresh () in
  let got = ref false in
  Hw.Intc.set_handler b.Hw.Board.intc ~core:0 (fun line ->
      if Hw.Irq.equal line Hw.Irq.Uart_rx then got := true);
  Hw.Uart.inject_string b.Hw.Board.uart "ab";
  check_bool "irq raised" true !got;
  check_int "fifo depth" 2 (Hw.Uart.rx_available b.Hw.Board.uart);
  check_bool "read a" true (Hw.Uart.read_char b.Hw.Board.uart = Some 'a');
  check_bool "read b" true (Hw.Uart.read_char b.Hw.Board.uart = Some 'b');
  check_bool "empty" true (Hw.Uart.read_char b.Hw.Board.uart = None)

(* ---- mailbox + framebuffer ---- *)

let mailbox_fb_allocation () =
  let b = fresh () in
  let results, _cost =
    check_ok "mailbox call"
      (Hw.Mailbox.call b.Hw.Board.mailbox
         [
           Hw.Mailbox.Set_physical_size (320, 240);
           Hw.Mailbox.Set_depth 32;
           Hw.Mailbox.Allocate_buffer;
           Hw.Mailbox.Get_pitch;
         ])
  in
  (match results with
  | [ Hw.Mailbox.Size_set (320, 240); Hw.Mailbox.Depth_set 32;
      Hw.Mailbox.Buffer fb; Hw.Mailbox.Pitch pitch ] ->
      check_int "width" 320 (Hw.Framebuffer.width fb);
      check_int "pitch" (320 * 4) pitch
  | _ -> Alcotest.fail "unexpected tag results");
  ignore (check_err "allocate before size on fresh box"
      (let fresh_mb = Hw.Mailbox.create b.Hw.Board.engine in
       Hw.Mailbox.call fresh_mb [ Hw.Mailbox.Allocate_buffer ]))

let fb_cache_experience () =
  (* The §4.3 lesson: cached writes are invisible until flushed; eviction
     makes artifacts fade gradually. *)
  let fb = Hw.Framebuffer.create ~width:16 ~height:16 in
  Hw.Framebuffer.set_mapping fb Hw.Framebuffer.Cached;
  Hw.Framebuffer.write_pixel fb ~x:3 ~y:5 0xff0000;
  check_int "display stale before flush" 0
    (Hw.Framebuffer.display_pixel fb ~x:3 ~y:5);
  check_int "one stale row" 1 (Hw.Framebuffer.stale_rows fb);
  Hw.Framebuffer.flush fb;
  check_int "visible after flush" 0xff0000
    (Hw.Framebuffer.display_pixel fb ~x:3 ~y:5);
  check_int "no stale rows" 0 (Hw.Framebuffer.stale_rows fb)

let fb_uncached_writes_through () =
  let fb = Hw.Framebuffer.create ~width:8 ~height:8 in
  Hw.Framebuffer.set_mapping fb Hw.Framebuffer.Uncached;
  Hw.Framebuffer.write_pixel fb ~x:1 ~y:1 0x00ff00;
  check_int "immediately visible" 0x00ff00
    (Hw.Framebuffer.display_pixel fb ~x:1 ~y:1)

let fb_eviction_fades () =
  let fb = Hw.Framebuffer.create ~width:8 ~height:64 in
  for y = 0 to 63 do
    Hw.Framebuffer.write_pixel fb ~x:0 ~y 0xffffff
  done;
  check_int "all stale" 64 (Hw.Framebuffer.stale_rows fb);
  let rng = Sim.Rng.create 1L in
  Hw.Framebuffer.evict_some fb rng ~fraction:0.5;
  let remaining = Hw.Framebuffer.stale_rows fb in
  check_bool "some evicted" true (remaining < 64);
  check_bool "not all evicted" true (remaining > 0)

let fb_out_of_bounds_ignored () =
  let fb = Hw.Framebuffer.create ~width:4 ~height:4 in
  Hw.Framebuffer.write_pixel fb ~x:99 ~y:99 0xff;
  Hw.Framebuffer.write_pixel fb ~x:(-1) ~y:0 0xff;
  check_int "read oob is 0" 0 (Hw.Framebuffer.read_pixel fb ~x:99 ~y:0)

let fb_ppm_and_ascii () =
  let fb = Hw.Framebuffer.create ~width:2 ~height:2 in
  Hw.Framebuffer.set_mapping fb Hw.Framebuffer.Uncached;
  Hw.Framebuffer.write_pixel fb ~x:0 ~y:0 0xffffff;
  let ppm = Hw.Framebuffer.to_ppm fb in
  check_bool "ppm header" true (String.length ppm > 11 && String.sub ppm 0 2 = "P6");
  let art = Hw.Framebuffer.to_ascii fb ~cols:2 ~rows:2 in
  check_bool "bright pixel is dense glyph" true (art.[0] = '@')

(* ---- gpio ---- *)

let gpio_edges () =
  let b = fresh () in
  Hw.Gpio.press b.Hw.Board.gpio Hw.Gpio.A;
  Hw.Gpio.press b.Hw.Board.gpio Hw.Gpio.A (* no double edge while held *);
  Hw.Gpio.release b.Hw.Board.gpio Hw.Gpio.A;
  let edges = Hw.Gpio.take_edges b.Hw.Board.gpio in
  check_int "two edges" 2 (List.length edges);
  check_bool "press then release" true
    (match edges with
    | [ (Hw.Gpio.A, true); (Hw.Gpio.A, false) ] -> true
    | _ -> false);
  check_int "latch cleared" 0 (List.length (Hw.Gpio.take_edges b.Hw.Board.gpio))

(* ---- dma + pwm ---- *)

let dma_completes_and_latches () =
  let b = fresh () in
  let done_ = ref false in
  Hw.Dma.start b.Hw.Board.dma ~channel:1 ~bytes_len:4096 ~on_complete:(fun () ->
      done_ := true);
  check_bool "busy during" true (Hw.Dma.busy b.Hw.Board.dma ~channel:1);
  Sim.Engine.run b.Hw.Board.engine ();
  check_bool "completed" true !done_;
  check_bool "latched" true (Hw.Dma.done_latched b.Hw.Board.dma ~channel:1);
  Hw.Dma.ack b.Hw.Board.dma ~channel:1;
  check_bool "acked" false (Hw.Dma.done_latched b.Hw.Board.dma ~channel:1)

let dma_busy_rejects () =
  let b = fresh () in
  Hw.Dma.start b.Hw.Board.dma ~channel:0 ~bytes_len:64 ~on_complete:(fun () -> ());
  Alcotest.check_raises "channel busy"
    (Invalid_argument "Dma.start: channel busy") (fun () ->
      Hw.Dma.start b.Hw.Board.dma ~channel:0 ~bytes_len:64 ~on_complete:(fun () -> ()))

let pwm_underruns_when_starved () =
  let b = fresh () in
  let pwm = b.Hw.Board.pwm in
  Hw.Pwm_audio.start pwm;
  (* half a second with no samples: pure underruns *)
  Sim.Engine.run b.Hw.Board.engine ~until:(Sim.Engine.ms 500) ();
  check_bool "underruns counted" true (Hw.Pwm_audio.underruns pwm > 10);
  check_bool "silence emitted" true (Hw.Pwm_audio.samples_played pwm > 0)

let pwm_plays_pushed_samples () =
  let b = fresh () in
  let pwm = b.Hw.Board.pwm in
  let samples = Array.init 4096 (fun i -> i mod 100) in
  let accepted = Hw.Pwm_audio.push_samples pwm samples in
  check_int "all accepted" 4096 accepted;
  Hw.Pwm_audio.start pwm;
  Sim.Engine.run b.Hw.Board.engine ~until:(Sim.Engine.ms 60) ();
  let out = Hw.Pwm_audio.recent_output pwm in
  check_bool "played prefix matches" true
    (Array.length out >= 1000 && Array.sub out 0 1000 = Array.sub samples 0 1000)

let pwm_fifo_capacity () =
  let b = fresh () in
  let pwm = b.Hw.Board.pwm in
  let accepted = Hw.Pwm_audio.push_samples pwm (Array.make 100_000 1) in
  check_int "clipped to capacity" Hw.Pwm_audio.fifo_capacity accepted;
  check_int "no space left" 0 (Hw.Pwm_audio.fifo_space pwm)

(* ---- sd ---- *)

let sd_roundtrip () =
  let b = fresh () in
  let sd = b.Hw.Board.sd in
  let data = Bytes.make 1024 'z' in
  ignore (check_ok "write" (Hw.Sd.write sd ~lba:10 ~data));
  let back, _ = check_ok "read" (Hw.Sd.read sd ~lba:10 ~count:2) in
  check_bool "data matches" true (Bytes.equal back data)

let sd_range_amortizes_command () =
  let single = Hw.Sd.cost_ns ~count:1 in
  let range8 = Hw.Sd.cost_ns ~count:8 in
  (* 8 single-block commands must cost much more than one 8-block range *)
  check_bool "range wins" true
    (Int64.compare range8 (Int64.mul 8L single) < 0);
  let ratio = Int64.to_float (Int64.mul 8L single) /. Int64.to_float range8 in
  check_in_range "amortization factor" 2.0 3.5 ratio

let sd_bounds () =
  let b = fresh () in
  ignore (check_err "read past end" (Hw.Sd.read b.Hw.Board.sd ~lba:max_int ~count:1));
  ignore (check_err "unaligned write"
      (Hw.Sd.write b.Hw.Board.sd ~lba:0 ~data:(Bytes.make 100 'x')))

let sector c = Bytes.make Hw.Sd.sector_bytes c

let sd_queue_coalesces_adjacent () =
  let b = fresh () in
  let sd = b.Hw.Board.sd in
  (* three adjacent sectors enqueued out of order, plus one loner: the
     elevator sweep must issue exactly two commands *)
  ignore (check_ok "q12" (Hw.Sd.enqueue_write sd ~lba:12 ~data:(sector 'c')));
  ignore (check_ok "q10" (Hw.Sd.enqueue_write sd ~lba:10 ~data:(sector 'a')));
  ignore (check_ok "q20" (Hw.Sd.enqueue_write sd ~lba:20 ~data:(sector 'z')));
  ignore (check_ok "q11" (Hw.Sd.enqueue_write sd ~lba:11 ~data:(sector 'b')));
  check_int "queued" 4 (Hw.Sd.queued sd);
  let writes0 = Hw.Sd.write_count sd in
  let cost, commands = check_ok "flush" (Hw.Sd.flush_queue sd) in
  check_int "two commands" 2 commands;
  check_int "device saw two writes" 2 (Hw.Sd.write_count sd - writes0);
  check_int "two requests absorbed" 2 (Hw.Sd.merged_count sd);
  check_int "queue drained" 0 (Hw.Sd.queued sd);
  (* one 3-sector command + one single: cheaper than four singles *)
  check_bool "cost is coalesced" true
    (Int64.equal cost
       (Int64.add (Hw.Sd.cost_ns ~count:3) (Hw.Sd.cost_ns ~count:1)));
  let back, _ = check_ok "readback" (Hw.Sd.read sd ~lba:10 ~count:3) in
  check_string "elevator ordered data" "abc"
    (Printf.sprintf "%c%c%c" (Bytes.get back 0)
       (Bytes.get back Hw.Sd.sector_bytes)
       (Bytes.get back (2 * Hw.Sd.sector_bytes)))

let sd_queue_without_coalescing () =
  let b = fresh () in
  let sd = b.Hw.Board.sd in
  List.iter
    (fun lba ->
      ignore (check_ok "q" (Hw.Sd.enqueue_write sd ~lba ~data:(sector 'x'))))
    [ 5; 6; 7 ];
  let cost, commands = check_ok "flush" (Hw.Sd.flush_queue ~coalesce:false sd) in
  check_int "one command per request" 3 commands;
  check_int "nothing merged" 0 (Hw.Sd.merged_count sd);
  check_bool "three single-sector costs" true
    (Int64.equal cost (Int64.mul 3L (Hw.Sd.cost_ns ~count:1)))

let sd_queue_last_write_wins () =
  let b = fresh () in
  let sd = b.Hw.Board.sd in
  ignore (check_ok "first" (Hw.Sd.enqueue_write sd ~lba:9 ~data:(sector 'o')));
  ignore (check_ok "second" (Hw.Sd.enqueue_write sd ~lba:9 ~data:(sector 'n')));
  ignore (check_ok "flush" (Hw.Sd.flush_queue sd));
  let back, _ = check_ok "readback" (Hw.Sd.read sd ~lba:9 ~count:1) in
  check_bool "later write landed last" true (Bytes.get back 0 = 'n');
  ignore (check_err "queue bounds" (Hw.Sd.enqueue_write sd ~lba:(-1) ~data:(sector 'x')))

(* ---- usb ---- *)

let usb_reports_after_init () =
  let b = fresh () in
  Hw.Usb.power_on b.Hw.Board.usb;
  check_bool "not ready immediately" false (Hw.Usb.ready b.Hw.Board.usb);
  Hw.Usb.key_down b.Hw.Board.usb 0x04;
  Sim.Engine.run b.Hw.Board.engine
    ~until:(Int64.add Hw.Usb.init_cost_ns 20_000_000L)
    ();
  check_bool "ready after init" true (Hw.Usb.ready b.Hw.Board.usb);
  let reports = Hw.Usb.take_reports b.Hw.Board.usb in
  check_bool "press reported" true
    (List.exists (fun r -> List.mem 0x04 r.Hw.Usb.keys) reports)

let usb_frame_quantization () =
  let b = fresh () in
  Hw.Usb.power_on b.Hw.Board.usb;
  Sim.Engine.run b.Hw.Board.engine ~until:(Int64.add Hw.Usb.init_cost_ns 10_000_000L) ();
  ignore (Hw.Usb.take_reports b.Hw.Board.usb);
  Hw.Usb.key_down b.Hw.Board.usb 0x05;
  (* within the same 8 ms frame nothing is latched yet *)
  check_int "nothing before next frame" 0 (Hw.Usb.reports_pending b.Hw.Board.usb);
  Sim.Engine.run b.Hw.Board.engine
    ~until:(Int64.add (Sim.Engine.now b.Hw.Board.engine) 9_000_000L)
    ();
  check_bool "latched at frame boundary" true
    (Hw.Usb.reports_pending b.Hw.Board.usb >= 1)

let usb_release_and_modifiers () =
  let b = fresh () in
  Hw.Usb.power_on b.Hw.Board.usb;
  Sim.Engine.run b.Hw.Board.engine ~until:(Int64.add Hw.Usb.init_cost_ns 10_000_000L) ();
  Hw.Usb.key_down b.Hw.Board.usb ~modifiers:0x01 0x2b;
  Sim.Engine.run b.Hw.Board.engine ~until:(Int64.add (Sim.Engine.now b.Hw.Board.engine) 10_000_000L) ();
  Hw.Usb.key_up b.Hw.Board.usb 0x2b;
  Sim.Engine.run b.Hw.Board.engine ~until:(Int64.add (Sim.Engine.now b.Hw.Board.engine) 10_000_000L) ();
  match Hw.Usb.take_reports b.Hw.Board.usb with
  | [ down; up ] ->
      check_int "ctrl modifier" 0x01 down.Hw.Usb.modifiers;
      check_bool "key held" true (List.mem 0x2b down.Hw.Usb.keys);
      check_bool "key released" true (not (List.mem 0x2b up.Hw.Usb.keys))
  | reports -> Alcotest.failf "expected 2 reports, got %d" (List.length reports)

(* ---- power ---- *)

let power_endpoints () =
  let p = Hw.Power.pi3_game_hat in
  let idle = Hw.Power.total_power p ~busy_cores:0.0 ~io_fraction:0.0 ~hat:true in
  check_in_range "idle ~3W" 2.8 3.3 idle;
  let load = Hw.Power.total_power p ~busy_cores:1.8 ~io_fraction:0.1 ~hat:true in
  check_in_range "load ~4-5W" 3.8 5.5 load;
  check_in_range "idle battery ~3.7h" 3.3 4.0
    (Hw.Power.battery_hours p ~watts:idle)

let power_monotone =
  qcheck "power increases with load"
    QCheck.(pair (float_range 0.0 4.0) (float_range 0.0 4.0))
    (fun (a, b) ->
      let p = Hw.Power.pi3_game_hat in
      let lo = Float.min a b and hi = Float.max a b in
      Hw.Power.total_power p ~busy_cores:lo ~io_fraction:0.0 ~hat:true
      <= Hw.Power.total_power p ~busy_cores:hi ~io_fraction:0.0 ~hat:true)

let suite =
  ( "hw",
    [
      quick "intc delivers" intc_delivers;
      quick "intc mask pends" intc_mask_pends;
      quick "intc mask nests" intc_mask_nests;
      quick "intc FIQ bypasses mask, round robin" intc_fiq_bypasses_mask_round_robin;
      quick "intc routing" intc_routing;
      quick "timer core oneshot" timer_core_oneshot;
      quick "timer rearm replaces" timer_rearm_replaces;
      quick "timer counter" timer_counter;
      quick "uart capture and cost" uart_capture_and_cost;
      quick "uart rx irq" uart_rx_irq;
      quick "mailbox fb allocation" mailbox_fb_allocation;
      quick "fb cache experience (par 4.3)" fb_cache_experience;
      quick "fb uncached writes through" fb_uncached_writes_through;
      quick "fb eviction fades" fb_eviction_fades;
      quick "fb out of bounds ignored" fb_out_of_bounds_ignored;
      quick "fb ppm and ascii" fb_ppm_and_ascii;
      quick "gpio edges" gpio_edges;
      quick "dma completes and latches" dma_completes_and_latches;
      quick "dma busy rejects" dma_busy_rejects;
      quick "pwm underruns when starved" pwm_underruns_when_starved;
      quick "pwm plays pushed samples" pwm_plays_pushed_samples;
      quick "pwm fifo capacity" pwm_fifo_capacity;
      quick "sd roundtrip" sd_roundtrip;
      quick "sd range amortizes command" sd_range_amortizes_command;
      quick "sd bounds" sd_bounds;
      quick "sd queue coalesces adjacent" sd_queue_coalesces_adjacent;
      quick "sd queue without coalescing" sd_queue_without_coalescing;
      quick "sd queue last write wins" sd_queue_last_write_wins;
      quick "usb reports after init" usb_reports_after_init;
      quick "usb frame quantization" usb_frame_quantization;
      quick "usb release and modifiers" usb_release_and_modifiers;
      quick "power endpoints" power_endpoints;
      power_monotone;
    ] )
