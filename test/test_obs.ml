(** Observability-layer tests: the vprobe spec parser and its error
    surface, attach/fire/predicate/keying semantics, ctl_write's
    all-or-nothing contract, the /proc/vprobe + /proc/vprobe_ctl +
    /proc/delays surfaces and their Kconfig gating, the dstate double
    gate, delay-bucket conservation, and the panic flight recorder. *)

open Tharness
module Vp = Core.Vprobe

let contains s sub =
  let nl = String.length sub and l = String.length s in
  let rec at i = i + nl <= l && (String.equal (String.sub s i nl) sub || at (i + 1)) in
  at 0

let check_contains name sub s =
  if not (contains s sub) then
    Alcotest.failf "%s: %S not found in:\n%s" name sub s

(* ---- the point registry ---- *)

let point_table_shape () =
  check_int "two syscall families plus the static catalog"
    ((2 * Core.Abi.syscall_count) + 12)
    Vp.point_count;
  (* names round-trip through the id table for every registered point *)
  for pt = 0 to Vp.point_count - 1 do
    match Vp.point_id (Vp.point_name pt) with
    | Some id -> check_int (Printf.sprintf "round-trip point %d" pt) pt id
    | None -> Alcotest.failf "point %s lost its id" (Vp.point_name pt)
  done;
  check_bool "sysenter and sysexit are distinct points" true
    (Vp.point_id "sysenter:read" <> Vp.point_id "syscall:read");
  check_bool "sched:wakeup maps to its constant" true
    (Vp.point_id "sched:wakeup" = Some Vp.pt_sched_wakeup);
  check_bool "unknown names have no id" true (Vp.point_id "nope:nope" = None)

(* ---- the spec parser ---- *)

let parser_accepts_grammar () =
  let vp = Vp.create () in
  List.iter
    (fun spec ->
      match Vp.attach vp spec with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "spec %S rejected: %s" spec e)
    [
      "probe sched:wakeup";
      "probe syscall:read / pid==2 / hist(latency_us)";
      "probe sysenter:write / fd!=1 && arg0>0";
      "probe pipe:read / * / sum(arg0) by(pid)";
      "probe journal:commit / core>=0 / count by(core)";
      "  probe bufcache:hit / errno<=0  ";
    ]

let parser_rejects_garbage () =
  let vp = Vp.create () in
  List.iter
    (fun spec ->
      match Vp.attach vp spec with
      | Ok _ -> Alcotest.failf "spec %S should not parse" spec
      | Error _ -> ())
    [
      "trace sched:wakeup";
      "probe nope:nope";
      "probe sched:wakeup / pid=2";
      "probe sched:wakeup / weight==2";
      "probe sched:wakeup / * / avg(arg0)";
      "probe sched:wakeup / * / count by(fd)";
      "probe sched:wakeup / * / count / extra";
      "probe sched:wakeup / * / hist(bogus)";
    ];
  check_int "failed parses attach nothing" 0 (List.length vp.Vp.all);
  check_bool "and arm nothing" false (Vp.armed vp Vp.pt_sched_wakeup)

(* ---- fire semantics ---- *)

let fire_respects_predicates_and_keys () =
  let vp = Vp.create () in
  let id =
    check_ok "attach"
      (Vp.attach vp "probe sched:wakeup / pid==3 && core<2 / count by(core)")
  in
  check_bool "point armed after attach" true (Vp.armed vp Vp.pt_sched_wakeup);
  check_bool "static probes leave the trap-path flag down" false
    (Vp.syscall_armed vp);
  let fire ~pid ~core =
    Vp.fire vp Vp.pt_sched_wakeup
      { Vp.no_args with Vp.a_pid = pid; Vp.a_core = core }
  in
  fire ~pid:3 ~core:0;
  fire ~pid:3 ~core:0;
  fire ~pid:3 ~core:1;
  fire ~pid:4 ~core:0;
  (* pid miss *)
  fire ~pid:3 ~core:2;
  (* core miss *)
  let probe = List.hd vp.Vp.all in
  check_int "only predicate-passing events count" 3 probe.Vp.pr_fired;
  let text = Vp.render vp in
  check_contains "per-core cell for core 0" "count[0]\t: 2" text;
  check_contains "per-core cell for core 1" "count[1]\t: 1" text;
  check_contains "the filter renders" "pid == 3 && core < 2" text;
  check_bool "detach by id" true (Vp.detach vp id);
  check_bool "detach disarms the point" false (Vp.armed vp Vp.pt_sched_wakeup);
  check_bool "second detach is a no-op" false (Vp.detach vp id)

let sum_and_hist_units () =
  let vp = Vp.create () in
  ignore (check_ok "sum" (Vp.attach vp "probe sd:complete / * / sum(latency_us)"));
  ignore
    (check_ok "hist" (Vp.attach vp "probe sd:complete / * / hist(latency_ns)"));
  let fire ns =
    Vp.fire vp Vp.pt_sd_complete
      { Vp.no_args with Vp.a_latency_ns = Int64.of_int ns }
  in
  fire 2_500;
  fire 1_999;
  let text = Vp.render vp in
  (* 2500 ns + 1999 ns = 2 us + 1 us in microsecond units *)
  check_contains "sum scales to the requested unit" "sum(latency_us)\t: 3  (n=2)"
    text;
  check_contains "histogram renders with its sample count" "hist(latency_ns)"
    text;
  check_contains "both samples recorded" "n=2" text

let syscall_armed_tracks_trap_points () =
  let vp = Vp.create () in
  check_bool "fresh registry: trap flag down" false (Vp.syscall_armed vp);
  let id = check_ok "attach" (Vp.attach vp "probe sysenter:read") in
  check_bool "sysenter probe raises the trap flag" true (Vp.syscall_armed vp);
  check_bool "detach" true (Vp.detach vp id);
  check_bool "flag drops with the last trap probe" false (Vp.syscall_armed vp);
  ignore (check_ok "exit side" (Vp.attach vp "probe syscall:write"));
  check_bool "sysexit probes raise it too" true (Vp.syscall_armed vp);
  Vp.clear vp;
  check_bool "clear drops everything" false (Vp.syscall_armed vp)

(* ---- ctl_write: all-or-nothing ---- *)

let ctl_write_all_or_nothing () =
  let vp = Vp.create () in
  (match Vp.ctl_write vp "probe sched:wakeup\nprobe nope:nope\n" with
  | Ok () -> Alcotest.fail "a bad line must reject the whole write"
  | Error _ -> ());
  check_int "nothing attached from the rejected write" 0
    (List.length vp.Vp.all);
  check_ok "good multi-line write"
    (Vp.ctl_write vp "probe sched:wakeup\n\nprobe pipe:read / * / sum(arg0)\n");
  check_int "both probes attached" 2 (List.length vp.Vp.all);
  check_ok "detach by ctl" (Vp.ctl_write vp "detach 1\n");
  check_int "one probe left" 1 (List.length vp.Vp.all);
  (match Vp.ctl_write vp "detach banana\n" with
  | Ok () -> Alcotest.fail "detach wants an integer"
  | Error _ -> ());
  check_ok "clear by ctl" (Vp.ctl_write vp "clear\n");
  check_int "registry empty after clear" 0 (List.length vp.Vp.all)

(* ---- /proc surfaces ---- *)

let proc_vprobe_roundtrip () =
  in_kernel (fun _ ->
      let wr line =
        let fd = User.Usys.open_ "/proc/vprobe_ctl" Core.Abi.o_wronly in
        let r = User.Usys.write fd (Bytes.of_string line) in
        ignore (User.Usys.close fd);
        r
      in
      check_bool "ctl write accepted" true
        (wr "probe syscall:getpid / * / count\n" > 0);
      for _ = 1 to 25 do
        ignore (User.Usys.getpid ())
      done;
      let text =
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/vprobe"))
      in
      check_contains "attached probe listed" "probe syscall:getpid" text;
      check_contains "aggregate shows the getpid storm" "count\t: 25" text;
      check_int "bad spec comes back EINVAL" (-Core.Errno.einval)
        (wr "probe nope:nope\n");
      let delays =
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/delays"))
      in
      check_contains "delay table header" "LIFETIME" delays;
      check_contains "our task has a row" "test" delays)

let metrics_fold_in () =
  let text =
    in_kernel
      ~config:{ test_config with Core.Kconfig.metrics = true }
      (fun _ ->
        let fd = User.Usys.open_ "/proc/vprobe_ctl" Core.Abi.o_wronly in
        ignore
          (User.Usys.write fd (Bytes.of_string "probe syscall:getpid\n"));
        ignore (User.Usys.close fd);
        for _ = 1 to 10 do
          ignore (User.Usys.getpid ())
        done;
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/metrics")))
  in
  check_contains "vprobe series" "vos_vprobe_fired_total{probe=" text;
  check_contains "journal counter exported" "vos_journal_commits_total" text;
  check_contains "dpool steals exported" "vos_dpool_steals_total" text;
  check_contains "dpool parks exported" "vos_dpool_parks_total" text;
  check_contains "kcheck violations exported" "vos_kcheck_violations_total"
    text

let knob_gating () =
  in_kernel
    ~config:{ test_config with Core.Kconfig.vprobe = false }
    (fun _ ->
      (match User.Usys.slurp "/proc/vprobe" with
      | Ok _ -> Alcotest.fail "/proc/vprobe must not render when off"
      | Error _ -> ());
      check_bool "/proc/vprobe_ctl gone too" true
        (User.Usys.open_ "/proc/vprobe_ctl" Core.Abi.o_wronly < 0));
  let text =
    in_kernel
      ~config:{ test_config with Core.Kconfig.delayacct = false }
      (fun _ ->
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/delays")))
  in
  check_contains "delays page self-describes when off" "disabled" text

(* ---- delay accounting ---- *)

let delay_conservation () =
  in_kernel (fun kernel ->
      (* move through several states: run, sleep, block on a pipe *)
      (match User.Usys.pipe () with
      | Ok (r, w) ->
          let child =
            User.Usys.fork (fun () ->
                ignore (User.Usys.sleep 2);
                ignore (User.Usys.write w (Bytes.make 8 'x'));
                0)
          in
          ignore (User.Usys.read r 8);
          ignore (User.Usys.kill child);
          ignore (User.Usys.wait ());
          ignore (User.Usys.close r);
          ignore (User.Usys.close w)
      | Error _ -> ());
      ignore (User.Usys.sleep 3);
      User.Usys.burn 1_000_000;
      let rows = Core.Sched.delay_rows kernel.Core.Kernel.sched in
      check_bool "at least our task is live" true (List.length rows >= 1);
      List.iter
        (fun r ->
          let sum =
            List.fold_left Int64.add 0L
              [
                r.Core.Sched.dr_oncpu;
                r.Core.Sched.dr_runnable;
                r.Core.Sched.dr_sleep;
                r.Core.Sched.dr_blk_io;
                r.Core.Sched.dr_blk_lock;
                r.Core.Sched.dr_blk_pipe;
              ]
          in
          if not (Int64.equal sum r.Core.Sched.dr_lifetime) then
            Alcotest.failf "pid %d: buckets sum to %Ld but lifetime is %Ld"
              r.Core.Sched.dr_pid sum r.Core.Sched.dr_lifetime)
        rows;
      let me =
        List.find (fun r -> String.equal r.Core.Sched.dr_name "test") rows
      in
      check_bool "the burn shows up oncpu" true
        (Int64.compare me.Core.Sched.dr_oncpu 0L > 0);
      check_bool "the sleep shows up" true
        (Int64.compare me.Core.Sched.dr_sleep 0L > 0);
      check_bool "the pipe wait is classified blocked-pipe" true
        (Int64.compare me.Core.Sched.dr_blk_pipe 0L > 0))

let dstate_double_gate () =
  in_kernel (fun kernel ->
      let tr = kernel.Core.Kernel.sched.Core.Sched.trace in
      let count_dstate () =
        List.length
          (List.filter
             (fun (e : Core.Ktrace.entry) ->
               match e.Core.Ktrace.ev with
               | Core.Ktrace.Task_state _ | Core.Ktrace.Runq_depth _ -> true
               | _ -> false)
             (Core.Ktrace.dump tr))
      in
      ignore (User.Usys.sleep 2);
      check_int "dstate events stay off by default" 0 (count_dstate ());
      let fd = User.Usys.open_ "/proc/ktrace_ctl" Core.Abi.o_wronly in
      check_bool "dstate toggle accepted" true
        (User.Usys.write fd (Bytes.of_string "dstate=1\n") > 0);
      ignore (User.Usys.close fd);
      let ctl =
        Bytes.to_string (Result.get_ok (User.Usys.slurp "/proc/ktrace_ctl"))
      in
      check_contains "ctl mirrors the toggle" "dstate\t\t: 1" ctl;
      ignore (User.Usys.sleep 2);
      ignore (User.Usys.getpid ());
      check_bool "transitions now emit Task_state/Runq_depth" true
        (count_dstate () > 0))

(* ---- the flight recorder ---- *)

let flight_recorder_fires () =
  let kernel = boot_kernel () in
  run_for kernel 1;
  (try Core.Kpanic.panicf "obs test: deliberate panic" with
  | Core.Kpanic.Panic _ -> ());
  let out = Core.Kernel.uart_output kernel in
  check_contains "banner" "=== FLIGHT RECORDER" out;
  check_contains "the panic message is first" "panic: obs test: deliberate panic"
    out;
  check_contains "trace tail present" "trace tail" out;
  check_contains "vprobe aggregates dumped" "vprobe aggregates:" out;
  check_contains "delay table dumped" "delay accounting:" out;
  check_contains "closing banner" "=== END FLIGHT RECORD ===" out;
  Core.Kpanic.clear_on_panic ()

let flight_recorder_gated () =
  let kernel =
    boot_kernel
      ~config:{ test_config with Core.Kconfig.flight_recorder_events = 0 }
      ()
  in
  run_for kernel 1;
  (try Core.Kpanic.panicf "obs test: silent panic" with
  | Core.Kpanic.Panic _ -> ());
  let out = Core.Kernel.uart_output kernel in
  check_bool "no recorder output when disabled" false
    (contains out "=== FLIGHT RECORDER")

let suite =
  ( "obs",
    [
      quick "probe point table shape and round-trip" point_table_shape;
      quick "spec parser accepts the grammar" parser_accepts_grammar;
      quick "spec parser rejects garbage" parser_rejects_garbage;
      quick "fire honours predicates and by-keys"
        fire_respects_predicates_and_keys;
      quick "sum/hist key units" sum_and_hist_units;
      quick "trap-path flag tracks syscall probes"
        syscall_armed_tracks_trap_points;
      quick "ctl_write is all-or-nothing" ctl_write_all_or_nothing;
      slow "/proc/vprobe + vprobe_ctl round-trip" proc_vprobe_roundtrip;
      slow "/proc/metrics folds in vprobe and subsystem counters"
        metrics_fold_in;
      slow "knob gating for vprobe and delayacct" knob_gating;
      slow "delay buckets conserve lifetime exactly" delay_conservation;
      slow "dstate events are double-gated" dstate_double_gate;
      slow "panic flight recorder dumps to the UART" flight_recorder_fires;
      slow "flight recorder silent when disabled" flight_recorder_gated;
    ] )
