(* vos_fsck — development-machine tool: check an xv6fs image for
   consistency, replaying its journal first if it has one (exactly what
   the kernel does at mount). Exit status 0 = clean, 1 = corrupt,
   2 = not mountable.

     vos_fsck image.img
*)

let read_image path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  Bytes.of_string data

let write_image path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let () =
  match Sys.argv with
  | [| _; path |] -> (
      let image = read_image path in
      match Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image image) with
      | Error e ->
          Printf.eprintf "vos_fsck: %s: %s\n" path e;
          exit 2
      | Ok fs ->
          let replayed = Fs.Xv6fs.log_replayed fs in
          if replayed > 0 then begin
            (* mounting installed a committed transaction; persist it *)
            Printf.printf "journal: replayed %d blocks\n" replayed;
            write_image path image
          end;
          let r = Fs.Xv6fs.fsck fs in
          List.iter print_endline r.Fs.Xv6fs.fsck_errors;
          Printf.printf "%s: %s — %d dirs, %d files, %d blocks in use%s\n" path
            (if r.Fs.Xv6fs.fsck_clean then "clean" else "CORRUPT")
            r.Fs.Xv6fs.fsck_dirs r.Fs.Xv6fs.fsck_files
            r.Fs.Xv6fs.fsck_data_blocks
            (if Fs.Xv6fs.journaled fs then " (journaled)" else "");
          exit (if r.Fs.Xv6fs.fsck_clean then 0 else 1))
  | _ ->
      prerr_endline "usage: vos_fsck image.img";
      exit 1
