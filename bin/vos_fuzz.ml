(* vos_fuzz — deterministic scenario fuzzing for the simulated OS.

     vos_fuzz --seed 0x2a                 one session, verbose
     vos_fuzz --sessions 1000             campaign (VOS_FUZZ_BUDGET overrides)
     vos_fuzz --corpus test/fuzz_corpus.txt   replay the regression corpus

   Every session is a pure function of its seed: the same seed boots the
   same kernel-config variant, generates the same op list and produces a
   byte-identical trace digest. On a failure the op list is delta-
   debugged down to a minimal repro and written out as a corpus-format
   entry plus the machine-readable ktrace of the failing run. *)

open Cmdliner

let derive_seeds base n =
  let rng = Sim.Rng.create base in
  List.init n (fun _ -> Sim.Rng.next rng)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let dump_failure ~out ~name scen result failure =
  if not (Sys.file_exists out) then Sys.mkdir out 0o755;
  let entry = Fuzz.Corpus.entry_of_scenario ~name scen in
  let txt =
    Printf.sprintf "# %s\n# config variant %d (%s)\n%s"
      (Fuzz.Session.failure_to_string failure)
      scen.Fuzz.Gen.sc_variant
      Fuzz.Session.variant_names.(scen.Fuzz.Gen.sc_variant
                                  mod Array.length Fuzz.Session.variant_names)
      (Fuzz.Corpus.render_entry entry)
  in
  let base = Filename.concat out name in
  write_file (base ^ ".txt") txt;
  let oc = open_out (base ^ ".ktrace") in
  Core.Ktrace.write_machine oc result.Fuzz.Session.r_trace;
  close_out oc;
  Printf.printf "  wrote %s.txt and %s.ktrace\n%!" base base

(* Run one scenario; on failure shrink it and dump artifacts. Returns
   true when the session passed. *)
let run_and_report ~out ~shrink_budget scen =
  let result = Fuzz.Session.run scen in
  match result.Fuzz.Session.r_outcome with
  | Fuzz.Session.Pass -> true
  | Fuzz.Session.Fail failure ->
      Printf.printf "seed 0x%Lx (variant %d): %s\n%!" scen.Fuzz.Gen.sc_seed
        scen.Fuzz.Gen.sc_variant
        (Fuzz.Session.failure_to_string failure);
      let shrunk, stats =
        Fuzz.Shrink.minimize ~budget:shrink_budget
          ~run:(fun ops ->
            (Fuzz.Session.run { scen with Fuzz.Gen.sc_ops = ops })
              .Fuzz.Session.r_outcome)
          ~failure scen
      in
      Printf.printf "  shrunk %d ops -> %d in %d runs\n%!"
        stats.Fuzz.Shrink.sh_ops_before stats.Fuzz.Shrink.sh_ops_after
        stats.Fuzz.Shrink.sh_runs;
      let final = Fuzz.Session.run shrunk in
      let name = Printf.sprintf "FUZZ_failure_seed%Lx" scen.Fuzz.Gen.sc_seed in
      (match final.Fuzz.Session.r_outcome with
      | Fuzz.Session.Fail f -> dump_failure ~out ~name shrunk final f
      | Fuzz.Session.Pass ->
          (* shrinking is deterministic, so the minimum must still fail;
             if it doesn't, dump the unshrunk scenario instead *)
          dump_failure ~out ~name scen result failure);
      false

let run_seed_mode ~out ~ops ~faults ~shrink_budget seed =
  let scen = Fuzz.Gen.generate ~ops ~faults seed in
  let result = Fuzz.Session.run scen in
  Printf.printf "seed 0x%Lx: variant %d (%s), %d ops, digest %s\n%!" seed
    scen.Fuzz.Gen.sc_variant
    Fuzz.Session.variant_names.(scen.Fuzz.Gen.sc_variant)
    (List.length scen.Fuzz.Gen.sc_ops)
    result.Fuzz.Session.r_digest;
  match result.Fuzz.Session.r_outcome with
  | Fuzz.Session.Pass ->
      Printf.printf "pass (%.1f virtual ms)\n"
        (Int64.to_float result.Fuzz.Session.r_vtime_ns /. 1e6);
      0
  | Fuzz.Session.Fail _ ->
      ignore (run_and_report ~out ~shrink_budget scen);
      1

let run_campaign ~out ~ops ~faults ~shrink_budget ~base_seed sessions =
  let seeds = derive_seeds base_seed sessions in
  let failures = ref 0 in
  List.iteri
    (fun i seed ->
      let scen = Fuzz.Gen.generate ~ops ~faults seed in
      if not (run_and_report ~out ~shrink_budget scen) then incr failures;
      if (i + 1) mod 100 = 0 then
        Printf.printf "%d/%d sessions, %d failures\n%!" (i + 1) sessions
          !failures)
    seeds;
  Printf.printf "campaign: %d sessions from base seed 0x%Lx, %d failures\n%!"
    sessions base_seed !failures;
  if !failures > 0 then 1 else 0

let run_corpus ~out ~shrink_budget path =
  match Fuzz.Corpus.load path with
  | Error e ->
      Printf.eprintf "corpus: %s\n" e;
      2
  | Ok entries ->
      let failures = ref 0 in
      List.iter
        (fun entry ->
          let scen = Fuzz.Corpus.scenario_of_entry entry in
          let result = Fuzz.Session.run scen in
          match result.Fuzz.Session.r_outcome with
          | Fuzz.Session.Pass ->
              Printf.printf "corpus %-28s pass  %s\n%!" entry.Fuzz.Corpus.e_name
                result.Fuzz.Session.r_digest
          | Fuzz.Session.Fail f ->
              incr failures;
              Printf.printf "corpus %-28s FAIL  %s\n%!" entry.Fuzz.Corpus.e_name
                (Fuzz.Session.failure_to_string f);
              ignore (run_and_report ~out ~shrink_budget scen))
        entries;
      Printf.printf "corpus: %d entries, %d failures\n%!" (List.length entries)
        !failures;
      if !failures > 0 then 1 else 0

let cmd =
  let seed_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "seed" ] ~doc:"run the single session for this seed")
  in
  let sessions_arg =
    Arg.(
      value & opt int 0
      & info [ "sessions" ]
          ~doc:"campaign of N sessions (VOS_FUZZ_BUDGET overrides)")
  in
  let base_seed_arg =
    Arg.(
      value & opt string "0x5eed" & info [ "base-seed" ] ~doc:"campaign base seed")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~doc:"replay a regression corpus file")
  in
  let ops_arg =
    Arg.(value & opt int 0 & info [ "ops" ] ~doc:"ops per session (0 = knob default)")
  in
  let no_faults_arg =
    Arg.(value & flag & info [ "no-faults" ] ~doc:"disable device fault injection")
  in
  let out_arg =
    Arg.(value & opt string "." & info [ "out" ] ~doc:"artifact output directory")
  in
  let shrink_budget_arg =
    Arg.(
      value
      & opt int Fuzz.Shrink.default_budget
      & info [ "shrink-budget" ] ~doc:"max candidate runs while shrinking")
  in
  let main seed sessions base_seed corpus ops no_faults out shrink_budget =
    let ops = if ops > 0 then ops else Fuzz.Session.default_ops () in
    let faults = (not no_faults) && Fuzz.Session.default_faults () in
    let parse_seed s =
      match Int64.of_string_opt s with
      | Some v -> v
      | None ->
          Printf.eprintf "bad seed: %s\n" s;
          Stdlib.exit 2
    in
    let code =
      match (seed, corpus) with
      | Some s, _ -> run_seed_mode ~out ~ops ~faults ~shrink_budget (parse_seed s)
      | None, Some path -> run_corpus ~out ~shrink_budget path
      | None, None ->
          let sessions =
            match Sys.getenv_opt "VOS_FUZZ_BUDGET" with
            | Some v -> ( match int_of_string_opt v with Some n -> n | None -> sessions)
            | None -> sessions
          in
          if sessions <= 0 then begin
            Printf.eprintf
              "nothing to do: pass --seed, --sessions or --corpus\n";
            2
          end
          else
            run_campaign ~out ~ops ~faults ~shrink_budget
              ~base_seed:(parse_seed base_seed) sessions
    in
    Stdlib.exit code
  in
  Cmd.v
    (Cmd.info "vos_fuzz" ~doc:"deterministic scenario fuzzing for VOS")
    Term.(
      const main $ seed_arg $ sessions_arg $ base_seed_arg $ corpus_arg
      $ ops_arg $ no_faults_arg $ out_arg $ shrink_budget_arg)

let () = Stdlib.exit (Cmd.eval cmd)
