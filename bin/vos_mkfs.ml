(* vos_mkfs — development-machine tool: build xv6fs or FAT32 images from a
   host directory tree, like the paper's build scripts that pack the
   ramdisk and SD partition.

     vos_mkfs xv6 out.img dir/
     vos_mkfs fat32 out.img dir/ [size_mib]
*)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  Bytes.of_string data

(* (relative path, contents) for every regular file under [root] *)
let walk root =
  let rec go rel acc =
    let full = Filename.concat root rel in
    if Sys.is_directory full then
      Array.fold_left
        (fun acc name -> go (if rel = "" then name else Filename.concat rel name) acc)
        acc (Sys.readdir full)
    else ("/" ^ String.map (fun c -> if c = '\\' then '/' else c) rel, read_file full) :: acc
  in
  List.rev (go "" [])

let write_image path bytes =
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc

let build_xv6 out dir =
  let files = walk dir in
  let content = List.fold_left (fun a (_, d) -> a + Bytes.length d) 0 files in
  let total_blocks = max 512 ((content * 3 / 2 / Fs.Xv6fs.block_bytes) + 256) in
  let image = Fs.Xv6fs.mkfs ~total_blocks ~ninodes:(max 64 (List.length files * 2)) () in
  let fs = Result.get_ok (Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image image)) in
  List.iter
    (fun (path, data) ->
      (* create parents *)
      let rec mkdirs built = function
        | [] -> ()
        | comp :: rest ->
            let next = built ^ "/" ^ comp in
            (match Fs.Xv6fs.lookup fs next with
            | Ok _ -> ()
            | Error _ -> ignore (Result.get_ok (Fs.Xv6fs.create fs next Fs.Xv6fs.Dir)));
            mkdirs next rest
      in
      mkdirs "" (Fs.Vpath.split (Fs.Vpath.dirname path));
      let node = Result.get_ok (Fs.Xv6fs.create fs path Fs.Xv6fs.Reg) in
      ignore (Result.get_ok (Fs.Xv6fs.writei fs node ~off:0 ~data)))
    files;
  write_image out image;
  Printf.printf "xv6fs image: %d files, %d blocks -> %s\n" (List.length files)
    total_blocks out

let build_fat out dir size_mib =
  let sectors = size_mib * 2048 in
  let dev, image = Fs.Blockdev.ramdisk ~name:"img" ~sectors in
  let io = Fs.Fat32.io_of_blockdev dev in
  Fs.Fat32.mkfs io ~total_sectors:sectors ();
  let fat = Result.get_ok (Fs.Fat32.mount io) in
  let files = walk dir in
  List.iter
    (fun (path, data) ->
      let rec mkdirs built = function
        | [] -> ()
        | comp :: rest ->
            let next = built ^ "/" ^ comp in
            (match Fs.Fat32.stat fat next with
            | Ok _ -> ()
            | Error _ -> ignore (Result.get_ok (Fs.Fat32.mkdir fat next)));
            mkdirs next rest
      in
      mkdirs "" (Fs.Vpath.split (Fs.Vpath.dirname path));
      (match Fs.Fat32.create fat path with
      | Ok () -> ()
      | Error e -> failwith e);
      ignore (Result.get_ok (Fs.Fat32.write_file fat path ~off:0 ~data)))
    files;
  write_image out image;
  Printf.printf "FAT32 image: %d files, %d MiB -> %s\n" (List.length files)
    size_mib out

let () =
  match Sys.argv with
  | [| _; "xv6"; out; dir |] -> build_xv6 out dir
  | [| _; "fat32"; out; dir |] -> build_fat out dir 32
  | [| _; "fat32"; out; dir; size |] -> build_fat out dir (int_of_string size)
  | _ ->
      prerr_endline "usage: vos_mkfs (xv6|fat32) out.img dir [size_mib]";
      exit 1
