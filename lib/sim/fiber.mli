(** Effect-based coroutines over {!Engine}.

    A fiber turns a self-rescheduling chain of heap closures into
    straight-line code: it performs {!sleep} / {!yield} / {!await} and is
    suspended into a one-shot continuation resumed by an engine event.
    Each suspension costs exactly one engine event with the same delay the
    closure chain would have scheduled, so fiberising a service loop keeps
    the (time, seq) trace byte-identical.

    Fibers run on the simulation thread only; they are about structure,
    not host parallelism (that is {!Engine.schedule_par}). *)

type _ Effect.t +=
  | Yield : unit Effect.t  (** reschedule at the current instant *)
  | Sleep : int64 -> unit Effect.t  (** park for a virtual duration *)
  | Schedule : (unit -> unit) -> unit Effect.t  (** start a sibling fiber *)

exception Cancelled
(** Raised inside a fiber that is resumed after {!cancel}. *)

type handle

(** Write-once cell for fiber rendezvous. *)
module Ivar : sig
  type 'a t

  val create : Engine.t -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Set the value and wake every awaiting fiber via zero-delay engine
      events, FIFO. Raises [Invalid_argument] if already filled. *)

  val peek : 'a t -> 'a option
  val is_full : 'a t -> bool
end

type _ Effect.t += Await : 'a Ivar.t -> 'a Effect.t

val run : Engine.t -> (unit -> unit) -> handle
(** Start a fiber inline: the body runs now, up to its first suspension.
    Equivalent to calling the body directly in closure-chain style. *)

val spawn : Engine.t -> ?after:int64 -> (unit -> unit) -> handle
(** Start a fiber via an engine event [after] ns from now (default 0). *)

val cancel : Engine.t -> handle -> unit
(** Cooperatively cancel: a parked fiber's wakeup event is tombstoned and
    the fiber never resumes; a fiber awaiting an ivar dies with
    {!Cancelled} if the ivar is ever filled. No-op on finished fibers. *)

val finished : handle -> bool

(** Inside a fiber: *)

val yield : unit -> unit
val sleep : int64 -> unit
val schedule : (unit -> unit) -> unit
val await : 'a Ivar.t -> 'a
