(** Work-stealing pool of worker domains for parallel event batches.

    Workers are spawned once and parked between batches; {!run} submits a
    closed batch of tasks, participates in the work-stealing drain, and
    returns when every task has executed. Tasks must not submit further
    tasks, and the pool must be driven from one thread at a time (the
    simulation thread). *)

type t

val create : unit -> t

val size : t -> int
(** Number of spawned worker domains (excludes the submitting thread). *)

val ensure_workers : t -> int -> unit
(** Grow the pool to at least [n] worker domains. Never shrinks. *)

val run : t -> (unit -> unit) array -> unit
(** Execute every task and return once all have finished. With zero
    workers the tasks run inline on the caller. If a task raises, the
    first exception is re-raised here after the batch completes. *)

val global : unit -> t
(** The process-wide pool shared by every engine. *)

val steals : t -> int
(** Successful steal-half transfers since creation (any thread). *)

val parks : t -> int
(** Times a worker exhausted its spin budget and parked on the condition
    variable. *)
