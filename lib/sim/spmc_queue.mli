(** Single-producer / multi-consumer work queue used by {!Dpool}.

    One queue per pool worker: the batch submitter distributes tasks into
    them, owners pop, and idle workers [steal_half] from busy siblings. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Take the oldest task, or [None] when empty. *)

val length : 'a t -> int

val steal_half : 'a t -> into:'a t -> int
(** [steal_half victim ~into:thief] moves half (rounded up) of the
    victim's tasks into the thief's queue and returns the count moved. *)
