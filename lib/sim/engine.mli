(** The discrete-event simulation core.

    The engine owns the virtual clock (nanoseconds) and an event queue.
    Everything in the machine model — timer interrupts, DMA completions, SD
    transfers, scheduler decisions — is an event: a callback that fires at a
    virtual instant. Running the engine pops events in time order and
    invokes them; callbacks may schedule further events.

    Nothing in the simulation reads wall-clock time; the virtual clock is the
    only notion of time, which makes every experiment reproducible. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : unit -> t
(** A fresh engine with the clock at 0 and an empty queue. *)

val now : t -> int64
(** Current virtual time in nanoseconds. *)

val schedule_at : t -> int64 -> (unit -> unit) -> event_id
(** [schedule_at t time f] fires [f] when the clock reaches [time]. [time]
    must not be in the past. Events at equal instants fire in scheduling
    order. *)

val schedule_after : t -> int64 -> (unit -> unit) -> event_id
(** [schedule_after t delta f] fires [f] [delta] nanoseconds from now. *)

val cancel : t -> event_id -> unit
(** Cancel a pending event. Cancelling an already-fired or already-cancelled
    event is a no-op: the [pending] count only drops when a live event is
    actually tombstoned. *)

val pending : t -> int
(** Number of live (non-cancelled) events in the queue. *)

(** {1 Host-parallel execution}

    Events scheduled with {!schedule_par} carry a pure [compute] — a
    function only of values captured at scheduling time, forbidden from
    touching simulation state — which returns a [commit] closure that
    applies the result. With [set_domains] > 1, whenever such an event
    surfaces the engine batches every pending compute in the heap, groups
    them by [affinity] (same tag ⇒ same domain), and runs the groups
    across a work-stealing domain pool. Commits always fire on the
    simulation thread in (time, seq) order, so the virtual-time trace is
    identical to the sequential engine. *)

val set_domains : t -> int -> unit
(** Number of domains for parallel event batches, clamped to ≥ 1. The
    default 1 runs computes inline at fire time — bit-for-bit the
    sequential engine. Values > 1 lazily spawn [n - 1] pool workers. *)

val domains : t -> int

val schedule_par : t -> int64 -> affinity:int -> (unit -> unit -> unit) -> event_id
(** [schedule_par t time ~affinity compute] schedules a parallelizable
    event: [compute ()] may run on any domain any time between scheduling
    and [time]; the closure it returns runs on the simulation thread when
    the clock reaches [time], in scheduling order among equal instants. *)

val events_fired : t -> int
(** Total events fired since [create] — the numerator for events/sec. *)

val par_stats : t -> int * int
(** [(batches, computes)]: parallel batches dispatched and total computes
    executed inside them. [computes / batches] is the mean batch width. *)

val step : t -> bool
(** Fire the next event. Returns [false] if the queue was empty. *)

val run : t -> ?until:int64 -> ?max_events:int -> unit -> unit
(** Fire events until the queue is empty, the clock would pass [until], or
    [max_events] have fired. When stopping at [until], the clock is advanced
    exactly to [until]. *)

val advance_to : t -> int64 -> unit
(** Force the clock forward to [time] without firing events; used by device
    models for intra-event latency accounting. Raises [Invalid_argument] if
    [time] is in the past or would skip over a pending event. *)

(** {1 Time unit helpers} *)

val ns : int -> int64
val us : int -> int64
val ms : int -> int64
val sec : int -> int64
val to_us : int64 -> float
val to_ms : int64 -> float
val to_sec : int64 -> float
