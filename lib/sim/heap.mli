(** Binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties so that events scheduled for the same
    instant fire in insertion order, which keeps the whole simulation
    deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:int64 -> seq:int -> 'a -> unit

val pop : 'a t -> (int64 * int * 'a) option
(** Remove and return the minimum element. *)

val peek_time : 'a t -> int64 option
(** Key of the minimum element without removing it. *)

val peek : 'a t -> (int64 * int * 'a) option
(** The minimum element without removing it — O(1), no sifting. *)

val iter : 'a t -> (int64 -> int -> 'a -> unit) -> unit
(** Visit every element in arbitrary (heap-internal) order. The callback
    must not push or pop. *)
