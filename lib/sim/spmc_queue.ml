(* Single-producer / multi-consumer work queue for the domain pool.

   Each pool worker owns one of these: the batch submitter pushes its share
   of tasks, the owner pops from it, and idle siblings steal half of what
   is left. A mutex per queue is plenty here — queues hold a handful of
   coarse tasks per batch (each worth tens of microseconds of host work),
   so contention is measured in nanoseconds against task bodies measured in
   microseconds. The steal-half policy matches the classic work-stealing
   deques: one steal amortises over k/2 tasks instead of ping-ponging a
   single task between thieves. *)

type 'a t = { lock : Mutex.t; q : 'a Queue.t }

let create () = { lock = Mutex.create (); q = Queue.create () }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let push t x = with_lock t (fun () -> Queue.add x t.q)

let pop t = with_lock t (fun () -> Queue.take_opt t.q)

let length t = with_lock t (fun () -> Queue.length t.q)

(* Move half (rounded up) of [victim]'s tasks into [thief]. Locks are taken
   one at a time — victim first, then thief — so there is no ordering cycle
   with a concurrent steal in the other direction. Returns how many tasks
   moved. *)
let steal_half victim ~into:thief =
  let stolen =
    with_lock victim (fun () ->
        let n = Queue.length victim.q in
        let k = (n + 1) / 2 in
        let acc = ref [] in
        for _ = 1 to k do
          acc := Queue.take victim.q :: !acc
        done;
        List.rev !acc)
  in
  (match stolen with
  | [] -> ()
  | _ -> with_lock thief (fun () -> List.iter (fun x -> Queue.add x thief.q) stolen));
  List.length stolen
