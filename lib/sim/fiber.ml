(* Effect-based coroutines over the engine.

   A fiber is ordinary OCaml code run under a deep effect handler; where
   it used to be a chain of one-shot heap closures rescheduling
   themselves, it is now straight-line code that performs [Sleep] /
   [Yield] / [Await] and is suspended into a single-shot continuation.
   Every suspension maps to exactly one engine event with the same delay
   the closure chain would have used, so converting a service loop to a
   fiber does not perturb (time, seq) allocation — traces stay
   byte-identical.

   Cancellation is cooperative: [cancel] tombstones the suspension's
   engine event when the fiber is parked, or lets the fiber die with
   [Cancelled] at its next resume point when it is awaiting an ivar. A
   continuation dropped by cancellation is never discontinued (its
   resources are reclaimed by the GC along with the handle). *)

type _ Effect.t +=
  | Yield : unit Effect.t
  | Sleep : int64 -> unit Effect.t
  | Schedule : (unit -> unit) -> unit Effect.t

exception Cancelled

type handle = {
  mutable pending : Engine.event_id option; (* parked suspension's event *)
  mutable cancelled : bool;
  mutable finished : bool;
}

module Ivar = struct
  type 'a state = Empty of ('a -> unit) list (* waiters, newest first *) | Full of 'a

  type 'a t = { engine : Engine.t; mutable state : 'a state }

  let create engine = { engine; state = Empty [] }

  let peek iv = match iv.state with Full v -> Some v | Empty _ -> None

  let is_full iv = peek iv <> None

  (* Waiters wake through zero-delay engine events in FIFO order, so a
     fill interleaves with other same-instant events deterministically. *)
  let fill iv v =
    match iv.state with
    | Full _ -> invalid_arg "Fiber.Ivar.fill: already filled"
    | Empty waiters ->
        iv.state <- Full v;
        List.iter
          (fun resume ->
            ignore (Engine.schedule_after iv.engine 0L (fun () -> resume v)))
          (List.rev waiters)

  let add_waiter iv resume =
    match iv.state with
    | Full _ -> invalid_arg "Fiber.Ivar.add_waiter: already filled"
    | Empty waiters -> iv.state <- Empty (resume :: waiters)
end

type _ Effect.t += Await : 'a Ivar.t -> 'a Effect.t

let yield () = Effect.perform Yield
let sleep delta = Effect.perform (Sleep delta)
let schedule body = Effect.perform (Schedule body)
let await iv = Effect.perform (Await iv)

open Effect.Deep

let make_handle () = { pending = None; cancelled = false; finished = false }

let rec exec engine h body =
  match_with body ()
    {
      retc = (fun () -> h.finished <- true);
      exnc =
        (fun e ->
          h.finished <- true;
          match e with Cancelled -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some (fun (k : (a, unit) continuation) -> park engine h 0L k)
          | Sleep delta ->
              Some (fun (k : (a, unit) continuation) -> park engine h delta k)
          | Schedule child ->
              Some
                (fun (k : (a, unit) continuation) ->
                  ignore (spawn engine child);
                  continue k ())
          | Await iv ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match Ivar.peek iv with
                  | Some v -> continue k v
                  | None ->
                      Ivar.add_waiter iv (fun v ->
                          if h.cancelled then discontinue k Cancelled
                          else continue k v))
          | _ -> None);
    }

and park : Engine.t -> handle -> int64 -> (unit, unit) continuation -> unit =
 fun engine h delta k ->
  h.pending <-
    Some
      (Engine.schedule_after engine delta (fun () ->
           h.pending <- None;
           if h.cancelled then discontinue k Cancelled else continue k ()))

and spawn ?(after = 0L) engine body =
  let h = make_handle () in
  h.pending <-
    Some
      (Engine.schedule_after engine after (fun () ->
           h.pending <- None;
           if not h.cancelled then exec engine h body));
  h

let run engine body =
  let h = make_handle () in
  exec engine h body;
  h

let spawn engine ?after body =
  match after with
  | Some after -> spawn ~after engine body
  | None -> spawn engine body

let cancel engine h =
  if not (h.finished || h.cancelled) then begin
    h.cancelled <- true;
    match h.pending with
    | Some id ->
        (* Parked: kill the wakeup event and drop the continuation. *)
        Engine.cancel engine id;
        h.pending <- None;
        h.finished <- true
    | None ->
        (* Running, or awaiting an ivar: dies at its next resume point. *)
        ()
  end

let finished h = h.finished
