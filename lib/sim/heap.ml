type 'a entry = { time : int64; seq : int; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0
let size t = t.len

let less a b = if Int64.equal a.time b.time then a.seq < b.seq else Int64.compare a.time b.time < 0

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && less t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && less t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq payload =
  let entry = { time; seq; payload } in
  if t.len = Array.length t.data then begin
    let capacity = max 16 (2 * t.len) in
    let bigger = Array.make capacity entry in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.data.(0).time

let peek t =
  if t.len = 0 then None
  else
    let top = t.data.(0) in
    Some (top.time, top.seq, top.payload)

let iter t f =
  for i = 0 to t.len - 1 do
    let e = t.data.(i) in
    f e.time e.seq e.payload
  done
