(* The event heap holds two kinds of payload:

   - [Fn f]: an ordinary callback, the historical API. Fires on the
     simulation thread when the clock reaches it.

   - [Par p]: a parallelizable event, split into a pure [compute] (a
     function only of values captured at scheduling time — it must not
     read or write simulation state) and the [commit] closure it returns,
     which applies the result to simulation state. Computes may run on any
     domain and in any order; commits fire on the simulation thread in
     canonical (time, seq) heap order, so the virtual-time trace is
     bit-identical whatever [set_domains] says.

   When the engine pops a Par whose compute has not run and more than one
   domain is configured, it sweeps the heap for every other pending Par
   still awaiting its compute (conservative lookahead: those events are
   already scheduled, and computes are pure over schedule-time captures,
   so running them early cannot change their results), groups them by
   affinity tag so one simulated core or device stays on one domain, and
   runs the groups across the work-stealing pool behind a barrier.

   Cancellation is a tombstone bit carried in the heap payload: the
   [event_id] handed back by [schedule_at] *is* the payload record, so
   [cancel] is an O(1) field write and the pop path tests one mutable
   field instead of probing a hash table. Dead entries are discarded
   lazily when they surface at the heap top. *)

type kind = Fn of (unit -> unit) | Par of par

(* One atomic cell per Par, not two mutable fields: the compute→commit
   transition is written by whichever pool domain ran the compute and read
   by the simulation thread at fire time, and a single location can never
   expose the torn "compute cleared, commit not yet stored" state (vrace
   R102 flags the mutable-field version). *)
and par_state =
  | Pending of (unit -> unit -> unit)  (** compute not yet run *)
  | Ready of (unit -> unit)  (** commit awaiting its (time, seq) slot *)
  | Done

and par = { par_affinity : int; par_state : par_state Atomic.t }

and ev = { kind : kind; mutable dead : bool; mutable fired : bool }

type event_id = ev

type t = {
  mutable clock : int64;
  heap : ev Heap.t;
  mutable next_seq : int;
  mutable live : int;
  mutable domains : int;
  mutable events_fired : int;
  mutable par_batches : int;
  mutable par_computed : int;
}

let create () =
  {
    clock = 0L;
    heap = Heap.create ();
    next_seq = 0;
    live = 0;
    domains = 1;
    events_fired = 0;
    par_batches = 0;
    par_computed = 0;
  }

let now t = t.clock

let set_domains t n =
  let n = max 1 n in
  t.domains <- n;
  if n > 1 then Dpool.ensure_workers (Dpool.global ()) (n - 1)

let domains t = t.domains

let push t time ev =
  if Int64.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.heap ~time ~seq ev;
  t.live <- t.live + 1;
  ev

let schedule_at t time f = push t time { kind = Fn f; dead = false; fired = false }

let schedule_after t delta f = schedule_at t (Int64.add t.clock delta) f

let schedule_par t time ~affinity compute =
  push t time
    {
      kind =
        Par { par_affinity = affinity; par_state = Atomic.make (Pending compute) };
      dead = false;
      fired = false;
    }

let cancel t ev =
  if not (ev.fired || ev.dead) then begin
    ev.dead <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

(* Pop the next live event, discarding tombstoned ones. *)
let rec pop_live t =
  match Heap.pop t.heap with
  | None -> None
  | Some (time, _, ev) ->
      if ev.dead then pop_live t
      else begin
        ev.fired <- true;
        t.live <- t.live - 1;
        Some (time, ev)
      end

(* Run every pending compute across the domain pool, grouped by affinity.
   [first] is the Par that just surfaced at the heap top (already popped,
   so the sweep below no longer sees it). *)
let precompute_batch t first =
  let groups : (int, par list ref) Hashtbl.t = Hashtbl.create 8 in
  let count = ref 0 in
  let add p =
    incr count;
    match Hashtbl.find_opt groups p.par_affinity with
    | Some l -> l := p :: !l
    | None -> Hashtbl.add groups p.par_affinity (ref [ p ])
  in
  add first;
  Heap.iter t.heap (fun _ _ ev ->
      if not ev.dead then
        match ev.kind with
        | Par p when (match Atomic.get p.par_state with
                     | Pending _ -> true
                     | Ready _ | Done -> false) ->
            add p
        | Par _ | Fn _ -> ());
  let tasks =
    Hashtbl.fold
      (fun _ group acc ->
        let ps = !group in
        (fun () ->
          List.iter
            (fun p ->
              match Atomic.get p.par_state with
              | Pending compute -> Atomic.set p.par_state (Ready (compute ()))
              | Ready _ | Done -> ())
            ps)
        [@vrace.worker]
        :: acc)
      groups []
  in
  t.par_batches <- t.par_batches + 1;
  t.par_computed <- t.par_computed + !count;
  Dpool.run (Dpool.global ()) (Array.of_list tasks)

let fire t ev =
  t.events_fired <- t.events_fired + 1;
  match ev.kind with
  | Fn f -> f ()
  | Par p -> (
      (match Atomic.get p.par_state with
      | Pending compute ->
          if t.domains > 1 then precompute_batch t p
          else Atomic.set p.par_state (Ready (compute ()))
      | Ready _ | Done -> ());
      match Atomic.get p.par_state with
      | Ready commit ->
          Atomic.set p.par_state Done;
          commit ()
      | Pending _ | Done -> invalid_arg "Engine: parallel event fired twice")

let step t =
  match pop_live t with
  | None -> false
  | Some (time, ev) ->
      t.clock <- time;
      fire t ev;
      true

(* O(1) peek at the next live event's time. Dead entries at the top are
   popped and discarded; a live top is only inspected, never reinserted —
   so [run]'s peek+step cycle costs exactly one heap pop per fired
   event. *)
let rec peek_live_time t =
  match Heap.peek t.heap with
  | None -> None
  | Some (time, _, ev) ->
      if ev.dead then begin
        ignore (Heap.pop t.heap);
        peek_live_time t
      end
      else Some time

let run t ?until ?(max_events = max_int) () =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match peek_live_time t with
    | None -> continue := false
    | Some time -> (
        match until with
        | Some limit when Int64.compare time limit > 0 ->
            t.clock <- limit;
            continue := false
        | Some _ | None ->
            ignore (step t);
            incr fired)
  done;
  match until with
  | Some limit when !continue = false && Int64.compare t.clock limit < 0 ->
      if peek_live_time t = None then t.clock <- limit
  | Some _ | None -> ()

let advance_to t time =
  if Int64.compare time t.clock < 0 then
    invalid_arg "Engine.advance_to: time is in the past";
  (match peek_live_time t with
  | Some next when Int64.compare next time < 0 ->
      invalid_arg "Engine.advance_to: would skip a pending event"
  | Some _ | None -> ());
  t.clock <- time

let events_fired t = t.events_fired

let par_stats t = (t.par_batches, t.par_computed)

let ns x = Int64.of_int x
let us x = Int64.mul (Int64.of_int x) 1_000L
let ms x = Int64.mul (Int64.of_int x) 1_000_000L
let sec x = Int64.mul (Int64.of_int x) 1_000_000_000L
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9
