type event_id = int

type t = {
  mutable clock : int64;
  heap : (int * (unit -> unit)) Heap.t;
  cancelled : (int, unit) Hashtbl.t;
  mutable next_id : int;
  mutable live : int;
}

let create () =
  {
    clock = 0L;
    heap = Heap.create ();
    cancelled = Hashtbl.create 64;
    next_id = 0;
    live = 0;
  }

let now t = t.clock

let schedule_at t time f =
  if Int64.compare time t.clock < 0 then
    invalid_arg "Engine.schedule_at: time is in the past";
  let id = t.next_id in
  t.next_id <- id + 1;
  Heap.push t.heap ~time ~seq:id (id, f);
  t.live <- t.live + 1;
  id

let schedule_after t delta f = schedule_at t (Int64.add t.clock delta) f

let cancel t id =
  if not (Hashtbl.mem t.cancelled id) then begin
    Hashtbl.replace t.cancelled id ();
    t.live <- t.live - 1
  end

let pending t = max 0 t.live

(* Pop the next non-cancelled event, discarding cancelled ones. *)
let rec pop_live t =
  match Heap.pop t.heap with
  | None -> None
  | Some (time, _, (id, f)) ->
      if Hashtbl.mem t.cancelled id then begin
        Hashtbl.remove t.cancelled id;
        pop_live t
      end
      else begin
        t.live <- t.live - 1;
        Some (time, f)
      end

let step t =
  match pop_live t with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      f ();
      true

(* O(1) peek at the next live event's time. Cancelled entries at the top
   are popped and discarded; a live top is only inspected, never
   reinserted — so [run]'s peek+step cycle costs exactly one heap pop per
   fired event. *)
let rec peek_live_time t =
  match Heap.peek t.heap with
  | None -> None
  | Some (time, _, (id, _)) ->
      if Hashtbl.mem t.cancelled id then begin
        ignore (Heap.pop t.heap);
        Hashtbl.remove t.cancelled id;
        peek_live_time t
      end
      else Some time

let run t ?until ?(max_events = max_int) () =
  let fired = ref 0 in
  let continue = ref true in
  while !continue && !fired < max_events do
    match peek_live_time t with
    | None -> continue := false
    | Some time -> (
        match until with
        | Some limit when Int64.compare time limit > 0 ->
            t.clock <- limit;
            continue := false
        | Some _ | None ->
            ignore (step t);
            incr fired)
  done;
  match until with
  | Some limit when !continue = false && Int64.compare t.clock limit < 0 ->
      if peek_live_time t = None then t.clock <- limit
  | Some _ | None -> ()

let advance_to t time =
  if Int64.compare time t.clock < 0 then
    invalid_arg "Engine.advance_to: time is in the past";
  (match peek_live_time t with
  | Some next when Int64.compare next time < 0 ->
      invalid_arg "Engine.advance_to: would skip a pending event"
  | Some _ | None -> ());
  t.clock <- time

let ns x = Int64.of_int x
let us x = Int64.mul (Int64.of_int x) 1_000L
let ms x = Int64.mul (Int64.of_int x) 1_000_000L
let sec x = Int64.mul (Int64.of_int x) 1_000_000_000L
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_sec t = Int64.to_float t /. 1e9
