(* Work-stealing domain pool for the engine's parallel event batches.

   The pool is a set of long-lived worker domains. A batch submission
   distributes tasks round-robin across the workers' queues (plus the
   submitter's own), bumps an epoch counter and broadcasts; workers drain
   their queue, then steal half of a busy sibling's, then spin briefly on
   the epoch with [Domain.cpu_relax] before parking on the condition
   variable. The spin window matters: engine batches arrive sub-millisecond
   apart during a parallel phase, and a worker that parks between every
   batch pays a futex wake that can dwarf a ~100 µs compute. The submitter
   participates in the drain and spins until the atomic remaining-task
   counter hits zero, which doubles as the release/acquire edge making the
   tasks' writes visible to the simulation thread.

   Within a batch no task may enqueue further tasks — the engine only ever
   submits closed batches of pure computes — so a worker that finds every
   queue empty can back off without missing work.

   Spawning the first worker also raises the minor-heap floor: with > 1
   domain alive every minor collection is a stop-the-world rendezvous
   across all of them, and the default ~256k-word minor heap makes an
   allocation-heavy simulation pay thousands of such barriers per second
   (measured ~3x on the sequential phases). A few-MB minor heap buys the
   barriers back without touching virtual time. *)

type task = unit -> unit

type worker = { wq : task Spmc_queue.t }

type t = {
  workers : worker array Atomic.t;
      (* read by every worker while stealing; grown only between batches,
         but a worker parked through several [ensure_workers] calls wakes
         with no happens-before edge to the plain write a mutable field
         would give it (vrace R102) *)
  own : task Spmc_queue.t; (* submitter's share of the current batch *)
  remaining : int Atomic.t;
  epoch : int Atomic.t; (* bumped per batch; workers spin then park on it *)
  steals : int Atomic.t; (* successful steal_half transfers, any thread *)
  parks : int Atomic.t; (* times a worker gave up spinning and parked *)
  mutable failure : exn option; [@locked_by "lock"]
      (* first task exception, re-raised by [run] *)
  lock : Mutex.t;
  cond : Condition.t;
}

(* ~10^5 cpu_relax hints ≈ a few hundred µs: long enough to stay awake
   between consecutive engine batches, short enough to park promptly when
   a parallel phase ends. Spinning only pays when every worker can have
   its own CPU; on an oversubscribed host a spinning worker steals the
   timeslice from the domain doing real work, so park immediately. *)
let spin_budget n_workers =
  if Domain.recommended_domain_count () > n_workers then 100_000 else 0

let min_minor_heap_words = 2 * 1024 * 1024

let create () =
  {
    workers = Atomic.make [||];
    own = Spmc_queue.create ();
    remaining = Atomic.make 0;
    epoch = Atomic.make 0;
    steals = Atomic.make 0;
    parks = Atomic.make 0;
    failure = None;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let size t = Array.length (Atomic.get t.workers)

let exec t task =
  (try task ()
   with e ->
     Mutex.lock t.lock;
     if t.failure = None then t.failure <- Some e;
     Mutex.unlock t.lock);
  ignore (Atomic.fetch_and_add t.remaining (-1))

(* Steal half of the first non-empty queue into [into]. The submitter's
   queue is scanned first, then the workers'. *)
let try_steal t ~into =
  let stole =
    if into != t.own && Spmc_queue.steal_half t.own ~into > 0 then true
    else begin
      let stole = ref false in
      let workers = Atomic.get t.workers in
      let n = Array.length workers in
      let i = ref 0 in
      while (not !stole) && !i < n do
        let victim = workers.(!i).wq in
        if victim != into && Spmc_queue.steal_half victim ~into > 0 then
          stole := true;
        incr i
      done;
      !stole
    end
  in
  if stole then Atomic.incr t.steals;
  stole

let rec drain t q =
  match Spmc_queue.pop q with
  | Some task ->
      exec t task;
      drain t q
  | None -> if try_steal t ~into:q then drain t q

let rec worker_loop t w last_epoch =
  (* Spin on the epoch first; park only if no batch arrives in time. *)
  let budget = spin_budget (Array.length (Atomic.get t.workers)) in
  let spins = ref 0 in
  while Atomic.get t.epoch = last_epoch && !spins < budget do
    Domain.cpu_relax ();
    incr spins
  done;
  if Atomic.get t.epoch = last_epoch then begin
    Atomic.incr t.parks;
    Mutex.lock t.lock;
    while Atomic.get t.epoch = last_epoch do
      Condition.wait t.cond t.lock
    done;
    Mutex.unlock t.lock
  end;
  let epoch = Atomic.get t.epoch in
  drain t w.wq;
  worker_loop t w epoch

let ensure_workers t n =
  let have = Array.length (Atomic.get t.workers) in
  if n > have then begin
    let gc = Gc.get () in
    if gc.Gc.minor_heap_size < min_minor_heap_words then
      Gc.set { gc with Gc.minor_heap_size = min_minor_heap_words };
    let fresh =
      Array.init (n - have) (fun _ -> { wq = Spmc_queue.create () })
    in
    Atomic.set t.workers (Array.append (Atomic.get t.workers) fresh);
    let epoch = Atomic.get t.epoch in
    Array.iter
      (fun w -> ignore (Domain.spawn (fun () -> worker_loop t w epoch)))
      fresh
  end

let run t tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    (* With no workers — or no CPU for them to run on — execute inline:
       on a single-CPU host every wake is a futile context switch, and
       the batch semantics (all tasks done on return) hold either way. *)
    if size t = 0 || Domain.recommended_domain_count () <= 1 then
      Array.iter (fun task -> task ()) tasks
    else begin
      Mutex.lock t.lock;
      t.failure <- None;
      Mutex.unlock t.lock;
      Atomic.set t.remaining n;
      let workers = Atomic.get t.workers in
      let slots = Array.length workers + 1 in
      Array.iteri
        (fun i task ->
          let slot = i mod slots in
          if slot = 0 then Spmc_queue.push t.own task
          else Spmc_queue.push workers.(slot - 1).wq task)
        tasks;
      Atomic.incr t.epoch;
      Mutex.lock t.lock;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      drain t t.own;
      while Atomic.get t.remaining > 0 do
        if not (try_steal t ~into:t.own) then Domain.cpu_relax ()
        else drain t t.own
      done;
      Mutex.lock t.lock;
      let failed = t.failure in
      t.failure <- None;
      Mutex.unlock t.lock;
      match failed with Some e -> raise e | None -> ()
    end
  end

(* One pool per process, shared by every engine. Batches are submitted one
   at a time from the simulation thread, so engines never contend. *)
let global_pool = lazy (create ())

let global () = Lazy.force global_pool

let steals t = Atomic.get t.steals
let parks t = Atomic.get t.parks
