(** The xv6-style filesystem ("xv6fs"), VOS's root filesystem on ramdisk.

    Faithful to the original layout with two opt-in extensions beyond the
    paper's baseline (which excludes crash consistency, §5.4):

    - a {e write-ahead journal}: an on-disk log area (header + data
      slots) between the bitmap and the data area. Mutating operations
      run inside transactions; the absorbed home blocks stay pinned in
      the buffer cache until {!commit} copies them to the log, writes a
      checksummed commit record, installs them home, and clears the
      record — each phase separated by an ordered-write barrier.
      {!mount} replays any committed-but-uninstalled transaction, so a
      power cut at any instant leaves either the old or the new state.
    - an {e extent (doubly-indirect) block map}: 11 direct + 1 single +
      1 double indirect, lifting the ~270 KB file cap to ~64 MB.

    Both are format flags chosen at {!mkfs}; at the defaults (no log, no
    extents) images are byte-identical to the paper's layout.

    Disk layout in 1 KB blocks:
    [ 0: boot | 1: superblock | inodes | free bitmap | (log) | data... ]

    All block IO goes through an {!io} record; the kernel supplies an
    implementation backed by its buffer cache (charging simulated time),
    tests supply a raw in-memory one. *)

val block_bytes : int
(** 1024. *)

val ndirect : int
val nindirect : int

val max_file_bytes : int
(** Legacy-layout cap: [(ndirect + nindirect) * block_bytes] = 274432. *)

val max_file_bytes_ext : int
(** Extent-layout cap: [(11 + 256 + 256*256) * block_bytes] ≈ 64 MB. *)

val max_name : int
(** Direntry name capacity: 14 bytes. *)

type io = {
  bread : int -> Bytes.t;  (** read fs block [n]; must return 1 KB *)
  bwrite : int -> Bytes.t -> unit;
  bsync : unit -> unit;
      (** ordered-write barrier: every [bwrite] issued before [bsync]
          must be on the medium before any issued after it returns *)
  bpin : int -> pin:bool -> unit;
      (** pin/unpin block [n] in the cache: a pinned dirty block must
          not be written to the medium (journal write-ahead rule) *)
}

val io_of_image : Bytes.t -> io
(** Zero-cost accessor over a raw image (for mkfs and tests); [bsync]
    and [bpin] are no-ops — the image itself is the medium. *)

type ftype = Dir | Reg | Dev

type stat = { st_inum : int; st_type : ftype; st_nlink : int; st_size : int }

type t
(** A mounted filesystem instance. *)

type inode
(** An in-core inode handle. *)

(** {1 Formatting and mounting} *)

val mkfs :
  ?nlog:int -> ?ext:bool -> total_blocks:int -> ninodes:int -> unit -> Bytes.t
(** Create a fresh image with an empty root directory. [nlog] > 0
    reserves a journal area of one header block plus [nlog] data slots;
    [ext] selects the doubly-indirect block map. The defaults produce an
    image byte-identical to the journal-free layout. *)

val mount : ?journal_max_tx:int -> io -> (t, string) result
(** Validate the superblock and return a handle. If the image has a
    journal, replay any committed transaction first (see {!log_replayed})
    and cap open transactions at [journal_max_tx] blocks (clamped to the
    on-disk log size). *)

val free_data_blocks : t -> int
(** Unallocated data blocks, from the bitmap (for /proc and tests). *)

val max_bytes : t -> int
(** File-size cap of this instance's layout ({!max_file_bytes} or
    {!max_file_bytes_ext}). *)

(** {1 The journal} *)

val journaled : t -> bool

val commit : t -> int
(** Group-commit the open transaction: log, commit record, install,
    clear — four barrier-separated phases. Returns the number of blocks
    committed; 0 when the transaction is empty, the image has no
    journal, or an operation is mid-flight (the buffer-cache flush
    daemon calls this opportunistically, so it refuses rather than
    committing a half-finished operation). *)

val set_on_commit : t -> (int -> unit) -> unit
(** Install an observability hook fired after every successful journal
    commit with the number of blocks written. Host-side bookkeeping only
    (vprobe's journal:commit point); charges no virtual cycles. *)

val log_commits : t -> int
(** Transactions committed since mount. *)

val log_replayed : t -> int
(** Blocks installed by recovery at mount (0 after a clean shutdown). *)

val log_absorbed : t -> int
(** Writes absorbed into an already-queued block (write absorption). *)

val log_pending : t -> int
(** Blocks in the open, not-yet-committed transaction. *)

(** {1 Inodes and paths} *)

val root : t -> inode
val lookup : t -> string -> (inode, string) result
(** Resolve an absolute path. *)

val stat_of : t -> inode -> stat
val inum : inode -> int

(** {1 Files} *)

val create : t -> string -> ftype -> (inode, string) result
(** Create a file/dir/device node; parent must exist; fails if the name
    exists. Directories get "." and ".." entries. *)

val readi : t -> inode -> off:int -> len:int -> (Bytes.t, string) result
(** Read up to [len] bytes at [off]; short reads at EOF. *)

val writei : t -> inode -> off:int -> data:Bytes.t -> (int, string) result
(** Write at [off], growing the file as needed; fails with "file too large"
    past {!max_bytes}. Returns bytes written. On a journaled instance a
    large write is chunked into several transactions, each leaving a
    consistent prefix of the write (size advances with the data). *)

val truncate : t -> inode -> unit
(** Free all data blocks and set the size to 0. *)

val unlink : t -> string -> (unit, string) result
(** Remove a directory entry; frees the inode when the link count drops to
    zero. Refuses non-empty directories. *)

val readdir : t -> inode -> ((string * int) list, string) result
(** Entries of a directory (name, inum), excluding "." and "..". *)

val set_dev : t -> inode -> major:int -> minor:int -> unit
(** Stamp device numbers on a [Dev] inode. *)

val dev_of : t -> inode -> int * int

(** {1 fsck} *)

type fsck_report = {
  fsck_clean : bool;
  fsck_errors : string list;  (** findings, capped at 64 *)
  fsck_files : int;
  fsck_dirs : int;
  fsck_data_blocks : int;  (** data + indirect blocks in use *)
}

val fsck : t -> fsck_report
(** Read-only full-image consistency check: superblock geometry, the
    directory tree from the root, block maps vs. file sizes, double
    allocation, bitmap agreement in both directions, link counts and
    orphans. Corruption becomes a finding, never an exception. *)
