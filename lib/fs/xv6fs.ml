let block_bytes = 1024
let ndirect = 12
let nindirect = block_bytes / 4
let max_file_blocks = ndirect + nindirect
let max_file_bytes = max_file_blocks * block_bytes

(* The extent layout steals one direct slot for a doubly-indirect tree:
   11 direct + 1 single + 1 double, lifting the cap from ~270 KB to
   ~64 MB with the same 64-byte on-disk inode. *)
let ndirect_ext = ndirect - 1
let max_file_blocks_ext = ndirect_ext + nindirect + (nindirect * nindirect)
let max_file_bytes_ext = max_file_blocks_ext * block_bytes
let max_name = 14
let magic = 0x10203040
let inode_bytes = 64
let inodes_per_block = block_bytes / inode_bytes
let dirent_bytes = 16

(* The journal's commit record: one header block naming the destination
   of every log slot. [log_magic] + a checksum make a torn header write
   detectable — an unreadable header IS the "not committed" state. *)
let log_magic = 0x564f4c47
let log_hdr_max = (block_bytes - 16) / 4

type io = {
  bread : int -> Bytes.t;
  bwrite : int -> Bytes.t -> unit;
  bsync : unit -> unit;
  bpin : int -> pin:bool -> unit;
}

let io_of_image image =
  let nblocks = Bytes.length image / block_bytes in
  let bread n =
    if n < 0 || n >= nblocks then invalid_arg "xv6fs: block out of range";
    Bytes.sub image (n * block_bytes) block_bytes
  in
  let bwrite n data =
    if n < 0 || n >= nblocks then invalid_arg "xv6fs: block out of range";
    assert (Bytes.length data = block_bytes);
    Bytes.blit data 0 image (n * block_bytes) block_bytes
  in
  (* a raw image is "the medium" itself: writes are instantly durable and
     in order, so the barrier and pin hooks have nothing to do *)
  { bread; bwrite; bsync = (fun () -> ()); bpin = (fun _ ~pin:_ -> ()) }

type ftype = Dir | Reg | Dev

type stat = { st_inum : int; st_type : ftype; st_nlink : int; st_size : int }

type superblock = {
  sb_size : int;  (* total blocks *)
  sb_ninodes : int;
  sb_inodestart : int;
  sb_bmapstart : int;
  sb_datastart : int;
  sb_logstart : int;  (* journal header block; 0 = no journal *)
  sb_nlog : int;  (* journal data slots after the header *)
  sb_ext : bool;  (* extent (doubly-indirect) block map layout *)
}

type inode = {
  i_num : int;
  mutable i_type : ftype option;  (* None = free *)
  mutable i_major : int;
  mutable i_minor : int;
  mutable i_nlink : int;
  mutable i_size : int;
  i_addrs : int array;  (* ndirect + 1 entries *)
}

(* An open journal: [l_queue] is the current transaction's absorbed home
   blocks (newest first), pinned in the buffer cache until commit. *)
type log = {
  l_start : int;
  l_size : int;
  l_max_tx : int;
  l_replayed : int;  (* blocks installed by replay at mount *)
  mutable l_seq : int;
  mutable l_queue : int list;
  mutable l_n : int;
  mutable l_depth : int;  (* begin_op nesting *)
  mutable l_commits : int;
  mutable l_absorbed : int;  (* writes absorbed into an already-queued block *)
}

type t = {
  io : io;
  sb : superblock;
  cache : (int, inode) Hashtbl.t;
  ext : bool;
  log : log option;
  mutable on_commit : (int -> unit) option;
      (** observability hook, called with the block count after each
          group commit actually reaches the medium; the kernel wires it
          to vprobe's journal:commit point. Must not touch the fs *)
}

(* ---- little-endian accessors ---- *)

let get32 b off =
  Bytes.get_uint8 b off
  lor (Bytes.get_uint8 b (off + 1) lsl 8)
  lor (Bytes.get_uint8 b (off + 2) lsl 16)
  lor (Bytes.get_uint8 b (off + 3) lsl 24)

let put32 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 3) ((v lsr 24) land 0xff)

let get16 b off = Bytes.get_uint8 b off lor (Bytes.get_uint8 b (off + 1) lsl 8)

let put16 b off v =
  Bytes.set_uint8 b off (v land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 8) land 0xff)

(* ---- superblock ---- *)

let layout ?(nlog = 0) ~total_blocks ~ninodes () =
  let ninodeblocks = (ninodes + inodes_per_block - 1) / inodes_per_block in
  let nbitmap = ((total_blocks / 8) + block_bytes - 1) / block_bytes in
  let inodestart = 2 in
  let bmapstart = inodestart + ninodeblocks in
  let logstart = if nlog > 0 then bmapstart + nbitmap else 0 in
  let datastart = bmapstart + nbitmap + if nlog > 0 then nlog + 1 else 0 in
  {
    sb_size = total_blocks;
    sb_ninodes = ninodes;
    sb_inodestart = inodestart;
    sb_bmapstart = bmapstart;
    sb_datastart = datastart;
    sb_logstart = logstart;
    sb_nlog = nlog;
    sb_ext = false;
  }

let write_superblock io sb =
  let b = Bytes.make block_bytes '\000' in
  put32 b 0 magic;
  put32 b 4 sb.sb_size;
  put32 b 8 sb.sb_ninodes;
  put32 b 12 sb.sb_inodestart;
  put32 b 16 sb.sb_bmapstart;
  put32 b 20 sb.sb_datastart;
  (* zero on legacy images, so old images read back unchanged *)
  put32 b 24 sb.sb_logstart;
  put32 b 28 sb.sb_nlog;
  put32 b 32 (if sb.sb_ext then 1 else 0);
  io.bwrite 1 b

let read_superblock io =
  let b = io.bread 1 in
  if get32 b 0 <> magic then Error "xv6fs: bad magic"
  else
    Ok
      {
        sb_size = get32 b 4;
        sb_ninodes = get32 b 8;
        sb_inodestart = get32 b 12;
        sb_bmapstart = get32 b 16;
        sb_datastart = get32 b 20;
        sb_logstart = get32 b 24;
        sb_nlog = get32 b 28;
        sb_ext = get32 b 32 = 1;
      }

(* ---- journal header ---- *)

(* 32-bit FNV-1a over the header block with the checksum field zeroed:
   a commit record torn mid-write (the header spans two sectors) fails
   the check and reads as "no commit". *)
let log_cksum b =
  let h = ref 0x811c9dc5 in
  for i = 0 to Bytes.length b - 1 do
    let c = if i >= 12 && i < 16 then 0 else Bytes.get_uint8 b i in
    h := (!h lxor c) * 0x01000193 land 0xffffffff
  done;
  !h land 0x7fffffff

let write_log_header io ~logstart ~seq ~blocks =
  let b = Bytes.make block_bytes '\000' in
  put32 b 0 log_magic;
  put32 b 4 seq;
  put32 b 8 (List.length blocks);
  List.iteri (fun i bno -> put32 b (16 + (4 * i)) bno) blocks;
  put32 b 12 (log_cksum b);
  io.bwrite logstart b

let read_log_header io ~logstart =
  let b = io.bread logstart in
  if get32 b 0 <> log_magic then None
  else
    let seq = get32 b 4 and n = get32 b 8 and ck = get32 b 12 in
    if n < 0 || n > log_hdr_max then None
    else if log_cksum b <> ck then None
    else Some (seq, n, List.init n (fun i -> get32 b (16 + (4 * i))))

(* Recover at mount: a valid header with n > 0 is a committed transaction
   that did not finish installing — copy every log slot to its home block
   and clear the record. A missing/torn header means the crash happened
   before the commit point: the home blocks were never touched, so the
   old state is intact and there is nothing to do. Returns (installed
   blocks, last seq). *)
let replay_log io sb =
  if sb.sb_nlog = 0 then (0, 0)
  else
    match read_log_header io ~logstart:sb.sb_logstart with
    | Some (seq, n, blocks) when n > 0 ->
        let valid =
          List.for_all
            (fun bno -> bno >= 0 && bno < sb.sb_size && bno <> sb.sb_logstart)
            blocks
        in
        if not valid then begin
          (* unreachable under an intact checksum; refuse to install *)
          write_log_header io ~logstart:sb.sb_logstart ~seq ~blocks:[];
          io.bsync ();
          (0, seq)
        end
        else begin
          List.iteri
            (fun i bno -> io.bwrite bno (io.bread (sb.sb_logstart + 1 + i)))
            blocks;
          io.bsync ();
          write_log_header io ~logstart:sb.sb_logstart ~seq ~blocks:[];
          io.bsync ();
          (n, seq)
        end
    | Some (seq, _, _) -> (0, seq)
    | None ->
        write_log_header io ~logstart:sb.sb_logstart ~seq:0 ~blocks:[];
        io.bsync ();
        (0, 0)

(* ---- transactions ---- *)

(* Worst-case blocks a single mutation step can add between watermark
   checks (data block + bitmap + two indirect levels + inode + dir
   block, with slack). [writei] re-checks per block, so a transaction
   can overshoot the soft cap by at most this much — the journal area
   itself is sized well above l_max_tx. *)
let op_headroom = 24

let soft_cap l = max 1 (l.l_max_tx - op_headroom)

let begin_op t =
  match t.log with Some l -> l.l_depth <- l.l_depth + 1 | None -> ()

(* Group commit: absorb the open transaction into the on-disk log, make
   it the committed state with one header write, then install the home
   blocks and clear the record. Every phase is separated by an
   ordered-write barrier — the commit point is the header reaching the
   medium, nothing earlier and nothing reorderable later. *)
let commit t =
  match t.log with
  | None -> 0
  | Some l ->
      if l.l_depth > 0 || l.l_n = 0 then 0
      else begin
        let blocks = List.rev l.l_queue in
        (* 1: copy the cached (pinned) home blocks into the log slots *)
        List.iteri
          (fun i bno -> t.io.bwrite (l.l_start + 1 + i) (t.io.bread bno))
          blocks;
        t.io.bsync ();
        (* 2: the commit record — after this barrier the tx is durable *)
        l.l_seq <- l.l_seq + 1;
        write_log_header t.io ~logstart:l.l_start ~seq:l.l_seq ~blocks;
        t.io.bsync ();
        (* 3: install — release the pins so the cache may write home *)
        List.iter (fun bno -> t.io.bpin bno ~pin:false) blocks;
        t.io.bsync ();
        (* 4: clear the record so replay after a later crash is a no-op *)
        write_log_header t.io ~logstart:l.l_start ~seq:l.l_seq ~blocks:[];
        t.io.bsync ();
        let n = l.l_n in
        l.l_queue <- [];
        l.l_n <- 0;
        l.l_commits <- l.l_commits + 1;
        (match t.on_commit with Some f -> f n | None -> ());
        n
      end

let end_op t =
  match t.log with
  | None -> ()
  | Some l ->
      l.l_depth <- l.l_depth - 1;
      if l.l_depth = 0 && l.l_n >= soft_cap l then ignore (commit t)

let with_op t f =
  begin_op t;
  match f () with
  | v ->
      end_op t;
      v
  | exception e ->
      end_op t;
      raise e

(* Commit mid-[writei] when the transaction nears the log's capacity.
   Only the outermost op may breathe — the filesystem is consistent at
   every per-block step of a chunked write because the inode size is
   advanced alongside the data (see [writei]). *)
let log_breathe t =
  match t.log with
  | Some l when l.l_depth = 1 && l.l_n >= soft_cap l ->
      l.l_depth <- 0;
      ignore (commit t);
      l.l_depth <- 1
  | Some _ | None -> ()

(* Every metadata/data write inside a transaction goes through here: the
   block is pinned (before the write, so no flush can sneak the
   uncommitted version out) and queued once; repeat writes absorb. *)
let dwrite t blockno data =
  (match t.log with
  | Some l when l.l_depth > 0 ->
      if List.mem blockno l.l_queue then l.l_absorbed <- l.l_absorbed + 1
      else begin
        t.io.bpin blockno ~pin:true;
        l.l_queue <- blockno :: l.l_queue;
        l.l_n <- l.l_n + 1
      end
  | Some _ | None -> ());
  t.io.bwrite blockno data

(* ---- on-disk inodes ---- *)

let itype_code = function
  | None -> 0
  | Some Dir -> 1
  | Some Reg -> 2
  | Some Dev -> 3

let itype_of_code = function
  | 0 -> None
  | 1 -> Some Dir
  | 2 -> Some Reg
  | 3 -> Some Dev
  | c -> invalid_arg (Printf.sprintf "xv6fs: bad inode type %d" c)

let inode_block sb inum = sb.sb_inodestart + (inum / inodes_per_block)
let inode_offset inum = inum mod inodes_per_block * inode_bytes

let read_dinode t inum =
  let b = t.io.bread (inode_block t.sb inum) in
  let off = inode_offset inum in
  let node =
    {
      i_num = inum;
      i_type = itype_of_code (get16 b off);
      i_major = get16 b (off + 2);
      i_minor = get16 b (off + 4);
      i_nlink = get16 b (off + 6);
      i_size = get32 b (off + 8);
      i_addrs = Array.make (ndirect + 1) 0;
    }
  in
  for i = 0 to ndirect do
    node.i_addrs.(i) <- get32 b (off + 12 + (4 * i))
  done;
  node

let write_dinode t node =
  let blockno = inode_block t.sb node.i_num in
  let b = t.io.bread blockno in
  let off = inode_offset node.i_num in
  put16 b off (itype_code node.i_type);
  put16 b (off + 2) node.i_major;
  put16 b (off + 4) node.i_minor;
  put16 b (off + 6) node.i_nlink;
  put32 b (off + 8) node.i_size;
  for i = 0 to ndirect do
    put32 b (off + 12 + (4 * i)) node.i_addrs.(i)
  done;
  dwrite t blockno b

let iget t inum =
  match Hashtbl.find_opt t.cache inum with
  | Some node -> node
  | None ->
      let node = read_dinode t inum in
      Hashtbl.replace t.cache inum node;
      node

let ialloc t ftype =
  let rec scan inum =
    if inum >= t.sb.sb_ninodes then Error "xv6fs: out of inodes"
    else begin
      let node = iget t inum in
      if node.i_type = None then begin
        node.i_type <- Some ftype;
        node.i_major <- 0;
        node.i_minor <- 0;
        node.i_nlink <- 0;
        node.i_size <- 0;
        Array.fill node.i_addrs 0 (ndirect + 1) 0;
        write_dinode t node;
        Ok node
      end
      else scan (inum + 1)
    end
  in
  scan 1 (* inode 0 is reserved, 1 is the root *)

(* ---- block bitmap ---- *)

let balloc t =
  let rec scan_block bi =
    let base = bi * block_bytes * 8 in
    if base >= t.sb.sb_size then Error "xv6fs: out of data blocks"
    else begin
      let blockno = t.sb.sb_bmapstart + bi in
      let b = t.io.bread blockno in
      let found = ref None in
      (try
         for bit = 0 to (block_bytes * 8) - 1 do
           let blk = base + bit in
           if blk >= t.sb.sb_datastart && blk < t.sb.sb_size then begin
             let byte = Bytes.get_uint8 b (bit / 8) in
             if byte land (1 lsl (bit mod 8)) = 0 then begin
               Bytes.set_uint8 b (bit / 8) (byte lor (1 lsl (bit mod 8)));
               found := Some blk;
               raise Exit
             end
           end
         done
       with Exit -> ());
      match !found with
      | Some blk ->
          dwrite t blockno b;
          dwrite t blk (Bytes.make block_bytes '\000');
          Ok blk
      | None -> scan_block (bi + 1)
    end
  in
  scan_block 0

let bfree t blk =
  assert (blk >= t.sb.sb_datastart && blk < t.sb.sb_size);
  let blockno = t.sb.sb_bmapstart + (blk / (block_bytes * 8)) in
  let bit = blk mod (block_bytes * 8) in
  let b = t.io.bread blockno in
  let byte = Bytes.get_uint8 b (bit / 8) in
  assert (byte land (1 lsl (bit mod 8)) <> 0);
  Bytes.set_uint8 b (bit / 8) (byte land lnot (1 lsl (bit mod 8)));
  dwrite t blockno b

let free_data_blocks t =
  let free = ref 0 in
  for blk = t.sb.sb_datastart to t.sb.sb_size - 1 do
    let blockno = t.sb.sb_bmapstart + (blk / (block_bytes * 8)) in
    let bit = blk mod (block_bytes * 8) in
    let b = t.io.bread blockno in
    if Bytes.get_uint8 b (bit / 8) land (1 lsl (bit mod 8)) = 0 then incr free
  done;
  !free

(* ---- block mapping ---- *)

let max_blocks_of t = if t.ext then max_file_blocks_ext else max_file_blocks
let max_bytes t = max_blocks_of t * block_bytes

(* A stored address must land in the data area — an fs corrupted by an
   unjournaled crash can hold torn garbage here, and following it would
   read/write outside the image. *)
let valid_addr t blk = blk >= t.sb.sb_datastart && blk < t.sb.sb_size

(* slot [i] of the inode's address array, allocating on demand *)
let addr_slot t node i ~alloc =
  if node.i_addrs.(i) <> 0 then
    if valid_addr t node.i_addrs.(i) then Ok node.i_addrs.(i)
    else Error "xv6fs: bad block address"
  else if not alloc then Error "xv6fs: hole"
  else
    match balloc t with
    | Ok blk ->
        node.i_addrs.(i) <- blk;
        write_dinode t node;
        Ok blk
    | Error e -> Error e

(* entry [idx] of indirect block [ind], allocating on demand *)
let ind_lookup t ind idx ~alloc =
  let b = t.io.bread ind in
  let blk = get32 b (4 * idx) in
  if blk <> 0 then
    if valid_addr t blk then Ok blk else Error "xv6fs: bad block address"
  else if not alloc then Error "xv6fs: hole"
  else
    match balloc t with
    | Ok fresh ->
        put32 b (4 * idx) fresh;
        dwrite t ind b;
        Ok fresh
    | Error e -> Error e

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* Map file block [n] of [node] to a disk block, allocating if [alloc]. *)
let bmap t node n ~alloc =
  if n < 0 || n >= max_blocks_of t then Error "xv6fs: file too large"
  else if not t.ext then
    (* the paper's layout: 12 direct + 1 singly-indirect *)
    if n < ndirect then addr_slot t node n ~alloc
    else
      let* ind = addr_slot t node ndirect ~alloc in
      ind_lookup t ind (n - ndirect) ~alloc
  else if n < ndirect_ext then addr_slot t node n ~alloc
  else if n < ndirect_ext + nindirect then
    let* ind = addr_slot t node ndirect_ext ~alloc in
    ind_lookup t ind (n - ndirect_ext) ~alloc
  else begin
    let m = n - ndirect_ext - nindirect in
    let* d1 = addr_slot t node (ndirect_ext + 1) ~alloc in
    let* d2 = ind_lookup t d1 (m / nindirect) ~alloc in
    ind_lookup t d2 (m mod nindirect) ~alloc
  end

(* free the whole tree under indirect block [ind], then [ind] itself *)
let rec free_indirect t ind ~depth =
  let b = t.io.bread ind in
  for idx = 0 to nindirect - 1 do
    let blk = get32 b (4 * idx) in
    if blk <> 0 then
      if depth > 1 then free_indirect t blk ~depth:(depth - 1) else bfree t blk
  done;
  bfree t ind

let truncate_raw t node =
  let ndir = if t.ext then ndirect_ext else ndirect in
  for i = 0 to ndir - 1 do
    if node.i_addrs.(i) <> 0 then begin
      bfree t node.i_addrs.(i);
      node.i_addrs.(i) <- 0
    end
  done;
  if node.i_addrs.(ndir) <> 0 then begin
    free_indirect t node.i_addrs.(ndir) ~depth:1;
    node.i_addrs.(ndir) <- 0
  end;
  if t.ext && node.i_addrs.(ndir + 1) <> 0 then begin
    free_indirect t node.i_addrs.(ndir + 1) ~depth:2;
    node.i_addrs.(ndir + 1) <- 0
  end;
  node.i_size <- 0;
  write_dinode t node

let truncate t node = with_op t (fun () -> truncate_raw t node)

(* ---- file read/write ---- *)

let readi t node ~off ~len =
  match node.i_type with
  | None -> Error "xv6fs: read of free inode"
  | Some _ ->
      if off < 0 || len < 0 then Error "xv6fs: bad read range"
      else begin
        let len = min len (max 0 (node.i_size - off)) in
        let out = Bytes.create len in
        let copied = ref 0 in
        let err = ref None in
        while !copied < len && !err = None do
          let pos = off + !copied in
          let bn = pos / block_bytes in
          (match bmap t node bn ~alloc:false with
          | Ok blk ->
              let b = t.io.bread blk in
              let boff = pos mod block_bytes in
              let n = min (len - !copied) (block_bytes - boff) in
              Bytes.blit b boff out !copied n;
              copied := !copied + n
          | Error "xv6fs: hole" ->
              (* sparse region reads as zeros *)
              let boff = pos mod block_bytes in
              let n = min (len - !copied) (block_bytes - boff) in
              Bytes.fill out !copied n '\000';
              copied := !copied + n
          | Error e -> err := Some e)
        done;
        match !err with Some e -> Error e | None -> Ok out
      end

let writei t node ~off ~data =
  match node.i_type with
  | None -> Error "xv6fs: write to free inode"
  | Some _ ->
      let len = Bytes.length data in
      if off < 0 then Error "xv6fs: bad write offset"
      else if off + len > max_bytes t then Error "xv6fs: file too large"
      else
        with_op t (fun () ->
            let written = ref 0 in
            let err = ref None in
            while !written < len && !err = None do
              let pos = off + !written in
              let bn = pos / block_bytes in
              match bmap t node bn ~alloc:true with
              | Ok blk ->
                  let b = t.io.bread blk in
                  let boff = pos mod block_bytes in
                  let n = min (len - !written) (block_bytes - boff) in
                  Bytes.blit data !written b boff n;
                  dwrite t blk b;
                  written := !written + n;
                  if t.log <> None then begin
                    (* keep the inode's size in step with the data so
                       every chunk commit is a consistent filesystem,
                       then let a near-full transaction commit *)
                    if off + !written > node.i_size then begin
                      node.i_size <- off + !written;
                      write_dinode t node
                    end;
                    log_breathe t
                  end
              | Error e -> err := Some e
            done;
            match !err with
            | Some e -> Error e
            | None ->
                if off + len > node.i_size then begin
                  node.i_size <- off + len;
                  write_dinode t node
                end;
                Ok len)

(* ---- directories ---- *)

let dirent_count node = node.i_size / dirent_bytes

let read_dirent t node idx =
  match readi t node ~off:(idx * dirent_bytes) ~len:dirent_bytes with
  | Error e -> Error e
  | Ok b when Bytes.length b < dirent_bytes ->
      (* a corrupt directory size can leave a short tail; fsck must see
         a finding, not an exception *)
      Error "xv6fs: short dirent"
  | Ok b ->
      let inum = get16 b 0 in
      if inum >= t.sb.sb_ninodes then
        (* an on-disk inum outside the inode table means the directory
           block is trash; surfacing it as data keeps a corrupt image
           from walking iget off the end of the device *)
        Error "xv6fs: corrupt dirent (inum out of range)"
      else begin
      let raw = Bytes.sub_string b 2 max_name in
      let name =
        match String.index_opt raw '\000' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      Ok (name, inum)
      end

let write_dirent t node idx name inum =
  let b = Bytes.make dirent_bytes '\000' in
  put16 b 0 inum;
  String.iteri
    (fun i c -> if i < max_name then Bytes.set b (2 + i) c)
    name;
  match writei t node ~off:(idx * dirent_bytes) ~data:b with
  | Ok _ -> Ok ()
  | Error e -> Error e

let dirlookup t dir name =
  match dir.i_type with
  | Some Dir ->
      let n = dirent_count dir in
      let rec scan idx =
        if idx >= n then Error ("xv6fs: no such entry: " ^ name)
        else
          match read_dirent t dir idx with
          | Error e -> Error e
          | Ok (ename, einum) ->
              if einum <> 0 && String.equal ename name then Ok (iget t einum, idx)
              else scan (idx + 1)
      in
      scan 0
  | Some Reg | Some Dev | None -> Error "xv6fs: not a directory"

let dirlink t dir name inum =
  if String.length name = 0 || String.length name > max_name then
    Error "xv6fs: bad name length"
  else
    match dirlookup t dir name with
    | Ok _ -> Error ("xv6fs: exists: " ^ name)
    | Error _ ->
        (* reuse a freed slot if any, else append *)
        let n = dirent_count dir in
        let rec find_free idx =
          if idx >= n then n
          else
            match read_dirent t dir idx with
            | Ok (_, 0) -> idx
            | Ok _ | Error _ -> find_free (idx + 1)
        in
        write_dirent t dir (find_free 0) name inum

(* ---- paths ---- *)

let root t = iget t 1

let lookup t path =
  let rec walk node = function
    | [] -> Ok node
    | name :: rest -> (
        match dirlookup t node name with
        | Ok (child, _) -> walk child rest
        | Error e -> Error e)
  in
  walk (root t) (Vpath.split path)

let stat_of _t node =
  {
    st_inum = node.i_num;
    st_type = (match node.i_type with Some ty -> ty | None -> Reg);
    st_nlink = node.i_nlink;
    st_size = node.i_size;
  }

let inum node = node.i_num

let create t path ftype =
  let dir_path = Vpath.dirname path and name = Vpath.basename path in
  if String.equal name "/" then Error "xv6fs: cannot create root"
  else
    match lookup t dir_path with
    | Error e -> Error e
    | Ok parent -> (
        match dirlookup t parent name with
        | Ok _ -> Error ("xv6fs: exists: " ^ path)
        | Error _ ->
            with_op t (fun () ->
                match ialloc t ftype with
                | Error e -> Error e
                | Ok node -> (
                    node.i_nlink <- 1;
                    write_dinode t node;
                    let link_children () =
                      match ftype with
                      | Dir -> (
                          match dirlink t node "." node.i_num with
                          | Error e -> Error e
                          | Ok () -> (
                              match dirlink t node ".." parent.i_num with
                              | Error e -> Error e
                              | Ok () ->
                                  parent.i_nlink <- parent.i_nlink + 1;
                                  write_dinode t parent;
                                  Ok ()))
                      | Reg | Dev -> Ok ()
                    in
                    match link_children () with
                    | Error e -> Error e
                    | Ok () -> (
                        match dirlink t parent name node.i_num with
                        | Error e -> Error e
                        | Ok () -> Ok node))))

let readdir t dir =
  match dir.i_type with
  | Some Dir ->
      let n = dirent_count dir in
      let rec scan idx acc =
        if idx >= n then Ok (List.rev acc)
        else
          match read_dirent t dir idx with
          | Error e -> Error e
          | Ok (_, 0) -> scan (idx + 1) acc
          | Ok (name, inum) ->
              if String.equal name "." || String.equal name ".." then
                scan (idx + 1) acc
              else scan (idx + 1) ((name, inum) :: acc)
      in
      scan 0 []
  | Some Reg | Some Dev | None -> Error "xv6fs: not a directory"

let dir_is_empty t dir =
  match readdir t dir with Ok [] -> true | Ok _ | Error _ -> false

let unlink t path =
  let dir_path = Vpath.dirname path and name = Vpath.basename path in
  if String.equal name "/" || String.equal name "." || String.equal name ".."
  then Error "xv6fs: cannot unlink"
  else
    match lookup t dir_path with
    | Error e -> Error e
    | Ok parent -> (
        match dirlookup t parent name with
        | Error e -> Error e
        | Ok (node, idx) ->
            if node.i_type = Some Dir && not (dir_is_empty t node) then
              Error "xv6fs: directory not empty"
            else
              with_op t (fun () ->
                  match write_dirent t parent idx "" 0 with
                  | Error e -> Error e
                  | Ok () ->
                      if node.i_type = Some Dir then begin
                        parent.i_nlink <- parent.i_nlink - 1;
                        write_dinode t parent
                      end;
                      node.i_nlink <- node.i_nlink - 1;
                      if node.i_nlink <= 0 then begin
                        truncate_raw t node;
                        node.i_type <- None;
                        Hashtbl.remove t.cache node.i_num
                      end;
                      write_dinode t node;
                      Ok ()))

let set_dev t node ~major ~minor =
  with_op t (fun () ->
      node.i_major <- major;
      node.i_minor <- minor;
      write_dinode t node)

let dev_of _t node = (node.i_major, node.i_minor)

(* ---- journal introspection ---- *)

let journaled t = t.log <> None
let set_on_commit t f = t.on_commit <- Some f
let log_commits t = match t.log with Some l -> l.l_commits | None -> 0
let log_replayed t = match t.log with Some l -> l.l_replayed | None -> 0
let log_absorbed t = match t.log with Some l -> l.l_absorbed | None -> 0
let log_pending t = match t.log with Some l -> l.l_n | None -> 0

(* ---- mkfs / mount ---- *)

let mount ?(journal_max_tx = 64) io =
  match read_superblock io with
  | Error e -> Error e
  | Ok sb ->
      let replayed, seq = replay_log io sb in
      let log =
        if sb.sb_nlog = 0 then None
        else
          Some
            {
              l_start = sb.sb_logstart;
              l_size = sb.sb_nlog;
              l_max_tx = min sb.sb_nlog (min log_hdr_max (max 8 journal_max_tx));
              l_replayed = replayed;
              l_seq = seq;
              l_queue = [];
              l_n = 0;
              l_depth = 0;
              l_commits = 0;
              l_absorbed = 0;
            }
      in
      Ok
        {
          io;
          sb;
          cache = Hashtbl.create 64;
          ext = sb.sb_ext;
          log;
          on_commit = None;
        }

let mkfs ?(nlog = 0) ?(ext = false) ~total_blocks ~ninodes () =
  let image = Bytes.make (total_blocks * block_bytes) '\000' in
  let io = io_of_image image in
  let sb = { (layout ~nlog ~total_blocks ~ninodes ()) with sb_ext = ext } in
  write_superblock io sb;
  if nlog > 0 then write_log_header io ~logstart:sb.sb_logstart ~seq:0 ~blocks:[];
  (* formatting writes straight through — the image only becomes a
     crash-consistency domain once it is mounted *)
  let t =
    { io; sb; cache = Hashtbl.create 64; ext; log = None; on_commit = None }
  in
  (* mark meta blocks (boot, superblock, inodes, bitmap, log) used *)
  for blk = 0 to sb.sb_datastart - 1 do
    let blockno = sb.sb_bmapstart + (blk / (block_bytes * 8)) in
    let bit = blk mod (block_bytes * 8) in
    let b = io.bread blockno in
    Bytes.set_uint8 b (bit / 8)
      (Bytes.get_uint8 b (bit / 8) lor (1 lsl (bit mod 8)));
    io.bwrite blockno b
  done;
  (* root directory: inode 1 *)
  (match ialloc t Dir with
  | Ok node ->
      assert (node.i_num = 1);
      node.i_nlink <- 1;
      write_dinode t node;
      (match dirlink t node "." 1 with Ok () -> () | Error e -> invalid_arg e);
      (match dirlink t node ".." 1 with Ok () -> () | Error e -> invalid_arg e)
  | Error e -> invalid_arg e);
  image

(* ---- fsck ---- *)

type fsck_report = {
  fsck_clean : bool;
  fsck_errors : string list;
  fsck_files : int;
  fsck_dirs : int;
  fsck_data_blocks : int;
}

(* Tolerant on-disk inode read for fsck: corruption becomes a finding,
   never an exception. *)
let fsck_dinode t inum =
  let b = t.io.bread (inode_block t.sb inum) in
  let off = inode_offset inum in
  let code = get16 b off in
  if code > 3 then Error (Printf.sprintf "inode %d: bad type code %d" inum code)
  else
    Ok
      {
        i_num = inum;
        i_type =
          (match code with
          | 0 -> None
          | 1 -> Some Dir
          | 2 -> Some Reg
          | _ -> Some Dev);
        i_major = get16 b (off + 2);
        i_minor = get16 b (off + 4);
        i_nlink = get16 b (off + 6);
        i_size = get32 b (off + 8);
        i_addrs = Array.init (ndirect + 1) (fun i -> get32 b (off + 12 + (4 * i)));
      }

let bitmap_bit t blk =
  let blockno = t.sb.sb_bmapstart + (blk / (block_bytes * 8)) in
  let bit = blk mod (block_bytes * 8) in
  let b = t.io.bread blockno in
  Bytes.get_uint8 b (bit / 8) land (1 lsl (bit mod 8)) <> 0

(* Full-image consistency check: superblock geometry, the directory tree
   from the root, per-inode block maps vs. size, double allocation, the
   free bitmap in both directions, link counts and orphans. Read-only;
   all findings are reported, none thrown. *)
let fsck t =
  let sb = t.sb in
  let nerr = ref 0 in
  let errors = ref [] in
  let err fmt =
    Printf.ksprintf
      (fun s ->
        incr nerr;
        if !nerr <= 64 then errors := s :: !errors
        else if !nerr = 65 then errors := "... (more errors suppressed)" :: !errors)
      fmt
  in
  let ninodeblocks = (sb.sb_ninodes + inodes_per_block - 1) / inodes_per_block in
  if
    sb.sb_inodestart <> 2
    || sb.sb_bmapstart < sb.sb_inodestart + ninodeblocks
    || sb.sb_datastart < sb.sb_bmapstart
    || sb.sb_datastart > sb.sb_size
    || (sb.sb_nlog > 0
       && (sb.sb_logstart < sb.sb_bmapstart || sb.sb_logstart + sb.sb_nlog >= sb.sb_datastart))
  then err "superblock: inconsistent geometry";
  let n_inodes = max 1 sb.sb_ninodes in
  let refs = Array.make n_inodes 0 in
  let visited = Array.make n_inodes false in
  let block_owner = Hashtbl.create 256 in
  let files = ref 0 and dirs = ref 0 in
  let claim inum what bno =
    if bno < sb.sb_datastart || bno >= sb.sb_size then
      err "inode %d: %s block %d outside the data area" inum what bno
    else
      match Hashtbl.find_opt block_owner bno with
      | Some owner -> err "block %d claimed by inode %d and inode %d" bno owner inum
      | None -> Hashtbl.replace block_owner bno inum
  in
  (* walk the block map of [node], claiming data + indirect blocks and
     checking data blocks stay under the file size *)
  let check_blocks node =
    let inum = node.i_num in
    let max_index = (node.i_size + block_bytes - 1) / block_bytes in
    let data index bno =
      if bno <> 0 then begin
        claim inum "data" bno;
        if index >= max_index then
          err "inode %d: block mapped at index %d beyond size %d" inum index
            node.i_size
      end
    in
    let indirect_ok bno =
      bno <> 0 && bno >= sb.sb_datastart && bno < sb.sb_size
    in
    let scan_single base ind =
      claim inum "indirect" ind;
      if indirect_ok ind then begin
        let b = t.io.bread ind in
        for idx = 0 to nindirect - 1 do
          data (base + idx) (get32 b (4 * idx))
        done
      end
    in
    if not t.ext then begin
      for i = 0 to ndirect - 1 do
        data i node.i_addrs.(i)
      done;
      if node.i_addrs.(ndirect) <> 0 then
        scan_single ndirect node.i_addrs.(ndirect)
    end
    else begin
      for i = 0 to ndirect_ext - 1 do
        data i node.i_addrs.(i)
      done;
      if node.i_addrs.(ndirect_ext) <> 0 then
        scan_single ndirect_ext node.i_addrs.(ndirect_ext);
      let d1 = node.i_addrs.(ndirect_ext + 1) in
      if d1 <> 0 then begin
        claim inum "double-indirect" d1;
        if indirect_ok d1 then begin
          let b = t.io.bread d1 in
          for l1 = 0 to nindirect - 1 do
            let ind = get32 b (4 * l1) in
            if ind <> 0 then
              scan_single (ndirect_ext + nindirect + (l1 * nindirect)) ind
          done
        end
      end
    end
  in
  (* recursive tree walk from the root *)
  let rec walk_dir dir ~parent =
    let n =
      if dir.i_size < 0 || dir.i_size > max_bytes t then begin
        err "dir inode %d: implausible size %d" dir.i_num dir.i_size;
        0
      end
      else dirent_count dir
    in
    for idx = 0 to n - 1 do
      match read_dirent t dir idx with
      | Error e -> err "inode %d: unreadable dirent %d: %s" dir.i_num idx e
      | Ok (_, 0) -> ()
      | Ok (name, einum) ->
          if einum < 1 || einum >= sb.sb_ninodes then
            err "dir inode %d: entry %S points at bad inode %d" dir.i_num name
              einum
          else begin
            refs.(einum) <- refs.(einum) + 1;
            if String.equal name "." then begin
              if einum <> dir.i_num then
                err "dir inode %d: \".\" points at %d" dir.i_num einum
            end
            else if String.equal name ".." then begin
              if einum <> parent then
                err "dir inode %d: \"..\" points at %d, parent is %d" dir.i_num
                  einum parent
            end
            else
              match fsck_dinode t einum with
              | Error e -> err "%s (via %S in inode %d)" e name dir.i_num
              | Ok child -> (
                  match child.i_type with
                  | None ->
                      err "dir inode %d: entry %S points at free inode %d"
                        dir.i_num name einum
                  | Some Dir ->
                      if visited.(einum) then
                        err "dir inode %d reachable twice (via %S)" einum name
                      else begin
                        visited.(einum) <- true;
                        incr dirs;
                        check_blocks child;
                        walk_dir child ~parent:dir.i_num
                      end
                  | Some Reg | Some Dev ->
                      if not visited.(einum) then begin
                        visited.(einum) <- true;
                        incr files;
                        check_blocks child
                      end)
          end
    done
  in
  (match fsck_dinode t 1 with
  | Error e -> err "root: %s" e
  | Ok root_node -> (
      match root_node.i_type with
      | Some Dir ->
          visited.(1) <- true;
          incr dirs;
          check_blocks root_node;
          walk_dir root_node ~parent:1
      | Some _ | None -> err "root inode is not a directory"));
  (* unreachable / free inodes and link counts *)
  (match fsck_dinode t 0 with
  | Ok n0 when n0.i_type <> None -> err "reserved inode 0 is in use"
  | Ok _ | Error _ -> ());
  for inum = 1 to sb.sb_ninodes - 1 do
    match fsck_dinode t inum with
    | Error e -> if not visited.(inum) then err "%s" e
    | Ok node -> (
        match node.i_type with
        | None ->
            if refs.(inum) > 0 then
              err "free inode %d referenced by %d dirents" inum refs.(inum)
        | Some ty ->
            if not visited.(inum) then
              err "inode %d allocated but unreachable (orphan)" inum
            else
              let expected =
                match ty with Dir -> refs.(inum) - 1 | Reg | Dev -> refs.(inum)
              in
              if node.i_nlink <> expected then
                err "inode %d: nlink %d, expected %d" inum node.i_nlink expected)
  done;
  (* the bitmap, in both directions *)
  for blk = 0 to sb.sb_size - 1 do
    let used = bitmap_bit t blk in
    if blk < sb.sb_datastart then begin
      if not used then err "meta block %d free in bitmap" blk
    end
    else
      match (used, Hashtbl.mem block_owner blk) with
      | true, false -> err "block %d marked used but unreachable (leak)" blk
      | false, true -> err "block %d in use but free in bitmap" blk
      | true, true | false, false -> ()
  done;
  {
    fsck_clean = !nerr = 0;
    fsck_errors = List.rev !errors;
    fsck_files = !files;
    fsck_dirs = !dirs;
    fsck_data_blocks = Hashtbl.length block_owner;
  }
