(** vfuzz op grammar and the seed-driven scenario generator.

    A scenario is a short session script: app launches, syscall traffic
    (deliberately mixing well-formed and hostile arguments), keyboard
    monkeying and device-level fault injection. Everything is drawn from
    one {!Sim.Rng} stream, so a seed *is* the scenario — regenerating
    from the same seed yields the identical op list, which is what makes
    shrinking and corpus replay deterministic.

    Ops carry only ints and strings so they serialize to one text line
    each ({!op_to_string} / {!op_of_string}); shrunk repros and the
    regression corpus are plain text a human can read and edit. *)

(* File descriptors (and semaphore ids) in an op are either a [Slot] —
   an index into the session's list of successfully returned ids,
   resolved modulo the list length at execution time — or a [Raw]
   integer passed through verbatim. Slots keep generated programs
   mostly well-formed even after the shrinker deletes the open that
   produced a descriptor; raws are the hostile path. *)
type fdref = Slot of int | Raw of int

type op =
  (* processes *)
  | App of string  (** fork one of the sample apps *)
  | Fork of int  (** fork a child that burns [n] cycles and exits *)
  | WaitAny
  | KillChild of int  (** kill the [k mod n]-th live child we forked *)
  | KillPid of int  (** kill a raw pid — 0, negative, init, garbage *)
  | KillSelf
  (* files *)
  | Open of string * int
  | Close of fdref
  | Read of fdref * int
  | Write of fdref * int
  | Lseek of fdref * int * int  (** offset, whence — both possibly wild *)
  | Dup of fdref
  | Fstat of fdref
  | Fsync of fdref
  | Mkdirp of string
  | Unlink of string
  | Pipe
  | Poll of int  (** poll up to three tracked fds with this timeout *)
  (* semaphores *)
  | SemOpen of int
  | SemPost of fdref
  | SemWait of fdref
  | SemClose of fdref
  (* time, scheduling, memory *)
  | Sleep of int
  | Nice of int
  | Sbrk of int
  | Burn of int
  (* input devices *)
  | KeyDown of int  (** HID usage code *)
  | KeyUp of int
  | GpioTap of int  (** press+release button [b mod 10] *)
  (* device faults *)
  | SdFault of int  (** arm [n] transient SD read faults *)
  | UsbUnplug
  | UsbReplug
  | IrqStorm of int  (** burst of spurious Usb_hc/Gpio_bank interrupts *)
  | PowerBlip of int  (** cut the supply, revive after [ms] *)
  (* never generated: panics when executed; fixture for shrinker tests *)
  | Canary

(* ---- serialization ---- *)

let fdref_to_string = function
  | Slot k -> Printf.sprintf "s%d" k
  | Raw n -> Printf.sprintf "r%d" n

let fdref_of_string s =
  if String.length s < 2 then None
  else
    match (s.[0], int_of_string_opt (String.sub s 1 (String.length s - 1))) with
    | 's', Some k -> Some (Slot k)
    | 'r', Some n -> Some (Raw n)
    | _, _ -> None

let op_to_string = function
  | App a -> "app " ^ a
  | Fork n -> Printf.sprintf "fork %d" n
  | WaitAny -> "wait"
  | KillChild k -> Printf.sprintf "killchild %d" k
  | KillPid p -> Printf.sprintf "killpid %d" p
  | KillSelf -> "killself"
  | Open (p, f) -> Printf.sprintf "open %s %d" p f
  | Close r -> "close " ^ fdref_to_string r
  | Read (r, n) -> Printf.sprintf "read %s %d" (fdref_to_string r) n
  | Write (r, n) -> Printf.sprintf "write %s %d" (fdref_to_string r) n
  | Lseek (r, off, w) ->
      Printf.sprintf "lseek %s %d %d" (fdref_to_string r) off w
  | Dup r -> "dup " ^ fdref_to_string r
  | Fstat r -> "fstat " ^ fdref_to_string r
  | Fsync r -> "fsync " ^ fdref_to_string r
  | Mkdirp p -> "mkdir " ^ p
  | Unlink p -> "unlink " ^ p
  | Pipe -> "pipe"
  | Poll t -> Printf.sprintf "poll %d" t
  | SemOpen v -> Printf.sprintf "semopen %d" v
  | SemPost r -> "sempost " ^ fdref_to_string r
  | SemWait r -> "semwait " ^ fdref_to_string r
  | SemClose r -> "semclose " ^ fdref_to_string r
  | Sleep n -> Printf.sprintf "sleep %d" n
  | Nice n -> Printf.sprintf "nice %d" n
  | Sbrk n -> Printf.sprintf "sbrk %d" n
  | Burn n -> Printf.sprintf "burn %d" n
  | KeyDown u -> Printf.sprintf "keydown %d" u
  | KeyUp u -> Printf.sprintf "keyup %d" u
  | GpioTap b -> Printf.sprintf "gpiotap %d" b
  | SdFault n -> Printf.sprintf "sdfault %d" n
  | UsbUnplug -> "usbunplug"
  | UsbReplug -> "usbreplug"
  | IrqStorm n -> Printf.sprintf "irqstorm %d" n
  | PowerBlip ms -> Printf.sprintf "powerblip %d" ms
  | Canary -> "canary"

let op_of_string line =
  let int_ = int_of_string_opt in
  match String.split_on_char ' ' (String.trim line) with
  | [ "app"; a ] -> Some (App a)
  | [ "fork"; n ] -> Option.map (fun n -> Fork n) (int_ n)
  | [ "wait" ] -> Some WaitAny
  | [ "killchild"; k ] -> Option.map (fun k -> KillChild k) (int_ k)
  | [ "killpid"; p ] -> Option.map (fun p -> KillPid p) (int_ p)
  | [ "killself" ] -> Some KillSelf
  | [ "open"; p; f ] -> Option.map (fun f -> Open (p, f)) (int_ f)
  | [ "close"; r ] -> Option.map (fun r -> Close r) (fdref_of_string r)
  | [ "read"; r; n ] -> (
      match (fdref_of_string r, int_ n) with
      | Some r, Some n -> Some (Read (r, n))
      | _, _ -> None)
  | [ "write"; r; n ] -> (
      match (fdref_of_string r, int_ n) with
      | Some r, Some n -> Some (Write (r, n))
      | _, _ -> None)
  | [ "lseek"; r; off; w ] -> (
      match (fdref_of_string r, int_ off, int_ w) with
      | Some r, Some off, Some w -> Some (Lseek (r, off, w))
      | _, _, _ -> None)
  | [ "dup"; r ] -> Option.map (fun r -> Dup r) (fdref_of_string r)
  | [ "fstat"; r ] -> Option.map (fun r -> Fstat r) (fdref_of_string r)
  | [ "fsync"; r ] -> Option.map (fun r -> Fsync r) (fdref_of_string r)
  | [ "mkdir"; p ] -> Some (Mkdirp p)
  | [ "unlink"; p ] -> Some (Unlink p)
  | [ "pipe" ] -> Some Pipe
  | [ "poll"; t ] -> Option.map (fun t -> Poll t) (int_ t)
  | [ "semopen"; v ] -> Option.map (fun v -> SemOpen v) (int_ v)
  | [ "sempost"; r ] -> Option.map (fun r -> SemPost r) (fdref_of_string r)
  | [ "semwait"; r ] -> Option.map (fun r -> SemWait r) (fdref_of_string r)
  | [ "semclose"; r ] -> Option.map (fun r -> SemClose r) (fdref_of_string r)
  | [ "sleep"; n ] -> Option.map (fun n -> Sleep n) (int_ n)
  | [ "nice"; n ] -> Option.map (fun n -> Nice n) (int_ n)
  | [ "sbrk"; n ] -> Option.map (fun n -> Sbrk n) (int_ n)
  | [ "burn"; n ] -> Option.map (fun n -> Burn n) (int_ n)
  | [ "keydown"; u ] -> Option.map (fun u -> KeyDown u) (int_ u)
  | [ "keyup"; u ] -> Option.map (fun u -> KeyUp u) (int_ u)
  | [ "gpiotap"; b ] -> Option.map (fun b -> GpioTap b) (int_ b)
  | [ "sdfault"; n ] -> Option.map (fun n -> SdFault n) (int_ n)
  | [ "usbunplug" ] -> Some UsbUnplug
  | [ "usbreplug" ] -> Some UsbReplug
  | [ "irqstorm"; n ] -> Option.map (fun n -> IrqStorm n) (int_ n)
  | [ "powerblip"; ms ] -> Option.map (fun ms -> PowerBlip ms) (int_ ms)
  | [ "canary" ] -> Some Canary
  | _ -> None

(* ---- scenario ---- *)

type scenario = {
  sc_seed : int64;
  sc_variant : int;  (** kernel-config variant, see {!Session.config_of_variant} *)
  sc_ops : op list;
}

(* ---- argument pools ---- *)

(* Paths the boot spec guarantees exist, plus devices, procfs and a few
   that don't resolve. *)
let read_paths =
  [|
    "/f0"; "/f1"; "/dir0/n0"; "/dir0"; "/d/FAT0.TXT"; "/dev/null";
    "/dev/events"; "/proc/uptime"; "/proc/tasks"; "/proc/meminfo";
    "/nosuch"; "/dir0/nosuch"; "/d/NOSUCH.TXT"; ""; "/../../etc";
  |]

let create_paths = [| "/f0"; "/f1"; "/new0"; "/new1"; "/dir0/n1" |]
let mkdir_paths = [| "/dir1"; "/dir2"; "/dir0"; "/f0"; "/dir1/sub" |]
let unlink_paths = [| "/f1"; "/new0"; "/new1"; "/nosuch"; "/dir0" |]

let open_flag_pool =
  [|
    Core.Abi.o_rdonly;
    Core.Abi.o_rdwr;
    Core.Abi.o_wronly;
    Core.Abi.o_create lor Core.Abi.o_rdwr;
    Core.Abi.o_create lor Core.Abi.o_wronly lor Core.Abi.o_trunc;
  |]

(* Hostile length menu: negatives, zero, ordinary sizes, multi-GB. *)
let read_lens =
  [| -1; -4096; min_int / 2; 0; 1; 17; 512; 4096; 65536; 1 lsl 30; max_int |]

let write_lens = [| 0; 1; 17; 512; 4096 |]
let seek_offsets = [| -1_000_000; -1; 0; 1; 511; 4096; 1 lsl 20; max_int / 2 |]
let whences = [| 0; 1; 2; 0; 1; 2; 3; -1; 7; 99 |]
let raw_fds = [| -1; 3; 7; 30; 31; 32; 100; 1 lsl 20 |]
let raw_pids = [| 0; -1; -100; 1; 2; 99; 99999 |]
let raw_sems = [| -1; 0; 99; 4096 |]
let sem_values = [| -1; -100; 0; 1; 3 |]
let sleep_ms = [| 0; 1; 2; 5 |]
let nices = [| -30; -1; 0; 5; 50 |]
(* sbrk menu stops at 16 MB of real growth: bigger grants are legal but
   make every later fork pay megabytes of page copies, which busts the
   session's virtual-time budget and reads as a false Wedge. The 1 GB
   entry probes the ENOMEM path, which fails fast. *)
let sbrks = [| -4096; 0; 4096; 65536; 1 lsl 24; 1 lsl 30 |]
let burns = [| 1_000; 5_000; 20_000; 100_000 |]
let usages = [| 0x04; 0x05; 0x28; 0x2c; 0x4f; 0x52 |]
let poll_timeouts = [| 0; 1; 5 |]

let app_names = [| "hello"; "ls"; "cat"; "wc"; "echo"; "grep"; "ps"; "uptime" |]

let pick rng a = a.(Sim.Rng.int rng (Array.length a))

(* ---- generation ---- *)

(* The generator keeps a model of the session the executor will run:
   how many fd slots exist (an upper bound — Slot resolves modulo the
   live list), which keys are held, and the exact value of every
   semaphore slot. The sem model is exact because the driver task is
   the only sem user, which lets us emit [SemWait (Slot i)] only when
   slot [i] provably has a token — a blocking wait would wedge the
   session and drown real deadlock signals in noise. Hostile waits go
   through [Raw] ids, which fail fast with EINVAL. *)
let gen_ops rng ~ops ~faults =
  let out = ref [] in
  let emit op = out := op :: !out in
  let fd_slots = ref 0 in
  let sem_vals = ref ([] : int list) in
  let held = ref ([] : int list) in
  let children = ref 0 in
  let fdref () =
    if !fd_slots > 0 && Sim.Rng.bool rng 0.75 then
      Slot (Sim.Rng.int rng !fd_slots)
    else Raw (pick rng raw_fds)
  in
  let semref_any () =
    if !sem_vals <> [] && Sim.Rng.bool rng 0.7 then
      Slot (Sim.Rng.int rng (List.length !sem_vals))
    else Raw (pick rng raw_sems)
  in
  for _ = 1 to ops do
    let roll = Sim.Rng.int rng 100 in
    (* device hostility occupies the top of the table; with faults
       disabled those rolls degrade to plain CPU burn *)
    let roll = if (not faults) && roll >= 86 then 72 else roll in
    if roll < 8 then begin
      let creating = Sim.Rng.bool rng 0.4 in
      let path, flags =
        if creating then (pick rng create_paths, pick rng open_flag_pool)
        else (pick rng read_paths, pick rng open_flag_pool)
      in
      (* device and procfs files must never block the driver: force
         O_NONBLOCK so a read of an empty /dev/events returns EAGAIN *)
      let flags =
        if String.length path >= 5 && String.sub path 0 5 = "/dev/" then
          flags lor Core.Abi.o_nonblock
        else flags
      in
      emit (Open (path, flags));
      incr fd_slots
    end
    else if roll < 14 then emit (Read (fdref (), pick rng read_lens))
    else if roll < 20 then emit (Write (fdref (), pick rng write_lens))
    else if roll < 25 then
      emit (Lseek (fdref (), pick rng seek_offsets, pick rng whences))
    else if roll < 28 then emit (Close (fdref ()))
    else if roll < 30 then begin
      emit (Dup (fdref ()));
      incr fd_slots
    end
    else if roll < 32 then emit (Fstat (fdref ()))
    else if roll < 34 then emit (Fsync (fdref ()))
    else if roll < 36 then emit (Mkdirp (pick rng mkdir_paths))
    else if roll < 38 then emit (Unlink (pick rng unlink_paths))
    else if roll < 40 then begin
      emit Pipe;
      fd_slots := !fd_slots + 2
    end
    else if roll < 42 then emit (Poll (pick rng poll_timeouts))
    else if roll < 45 then begin
      let v = pick rng sem_values in
      emit (SemOpen v);
      if v >= 0 then sem_vals := !sem_vals @ [ v ]
    end
    else if roll < 47 then begin
      let r = semref_any () in
      (match r with
      | Slot k ->
          sem_vals :=
            List.mapi
              (fun i v ->
                if i = k mod List.length !sem_vals then v + 1 else v)
              !sem_vals
      | Raw _ -> ());
      emit (SemPost r)
    end
    else if roll < 49 then begin
      (* a Slot wait is only emitted against a sem with a banked token *)
      let armed =
        List.filteri (fun _ v -> v > 0) !sem_vals
        |> List.length
      in
      if armed > 0 && Sim.Rng.bool rng 0.7 then begin
        let idx =
          let want = Sim.Rng.int rng armed in
          let n = ref (-1) and found = ref 0 in
          List.iteri
            (fun i v ->
              if v > 0 then begin
                if !n < 0 && !found = want then n := i;
                incr found
              end)
            !sem_vals;
          max 0 !n
        in
        sem_vals := List.mapi (fun i v -> if i = idx then v - 1 else v) !sem_vals;
        emit (SemWait (Slot idx))
      end
      else emit (SemWait (Raw (pick rng raw_sems)))
    end
    else if roll < 51 then begin
      let r = semref_any () in
      (match r with
      | Slot k ->
          let n = List.length !sem_vals in
          sem_vals := List.filteri (fun i _ -> i <> k mod n) !sem_vals
      | Raw _ -> ());
      emit (SemClose r)
    end
    else if roll < 56 then begin
      emit (App (pick rng app_names));
      incr children
    end
    else if roll < 59 then begin
      emit (Fork (pick rng burns));
      incr children
    end
    else if roll < 61 then emit WaitAny
    else if roll < 63 then
      if !children > 0 then emit (KillChild (Sim.Rng.int rng !children))
      else emit (KillPid (pick rng raw_pids))
    else if roll < 65 then emit (KillPid (pick rng raw_pids))
    else if roll < 68 then emit (Sleep (pick rng sleep_ms))
    else if roll < 70 then emit (Nice (pick rng nices))
    else if roll < 72 then emit (Sbrk (pick rng sbrks))
    else if roll < 76 then emit (Burn (pick rng burns))
    else if roll < 81 then begin
      let u = pick rng usages in
      emit (KeyDown u);
      if not (List.mem u !held) then held := !held @ [ u ]
    end
    else if roll < 84 then begin
      match !held with
      | [] ->
          let u = pick rng usages in
          emit (KeyDown u);
          held := !held @ [ u ]
      | hs ->
          let u = List.nth hs (Sim.Rng.int rng (List.length hs)) in
          held := List.filter (fun x -> x <> u) hs;
          emit (KeyUp u)
    end
    else if roll < 86 then emit (GpioTap (Sim.Rng.int rng 10))
    else if roll < 90 then emit (SdFault (1 + Sim.Rng.int rng 3))
    else if roll < 92 then begin
      emit UsbUnplug;
      held := []
    end
    else if roll < 94 then emit UsbReplug
    else if roll < 98 then emit (IrqStorm (4 + Sim.Rng.int rng 16))
    else emit (PowerBlip (1 + Sim.Rng.int rng 10))
  done;
  (* leave the keyboard quiet, then sometimes go out via self-kill so
     the exit-under-fire path gets coverage too *)
  List.iter (fun u -> emit (KeyUp u)) !held;
  if Sim.Rng.bool rng 0.08 then emit KillSelf;
  List.rev !out

let variant_count = 6

(* [generate seed] is the whole story: variant and op list both come
   from the one splitmix stream, so the seed fully determines the
   session. *)
let generate ?(ops = 48) ?(faults = true) seed =
  let rng = Sim.Rng.create seed in
  let variant = Sim.Rng.int rng variant_count in
  let sc_ops = gen_ops rng ~ops ~faults in
  { sc_seed = seed; sc_variant = variant; sc_ops }
