(** The in-tree regression corpus: a plain-text list of scenarios that
    once found (or nearly found) a bug. [dune runtest] replays every
    entry and expects a clean pass — reintroducing one of the fixed
    bugs makes its entry fail again with an Invariant/Crash outcome.

    Format (line-oriented; [#] comments and blank lines ignored):

    {v
    entry lseek-wild-whence
    seed 0x1234
    variant 0
    op open /f0 0
    op lseek s0 0 7
    end
    v}

    [seed] is required. [variant] and [op] lines are optional: an entry
    with no [op] lines regenerates the whole scenario from the seed
    (and [ops]/[faults] override the generator's defaults), which is
    how campaign-found seeds are archived; entries with explicit ops
    pin a hand-shrunk trace independent of generator evolution. *)

type entry = {
  e_name : string;
  e_seed : int64;
  e_variant : int option;
  e_ops : Gen.op list option;  (** [None] = regenerate from seed *)
  e_gen_ops : int option;  (** generator op count, for seed entries *)
  e_faults : bool option;
}

let scenario_of_entry entry =
  match entry.e_ops with
  | Some ops ->
      {
        Gen.sc_seed = entry.e_seed;
        sc_variant = Option.value entry.e_variant ~default:0;
        sc_ops = ops;
      }
  | None ->
      let ops = Option.value entry.e_gen_ops ~default:(Session.default_ops ()) in
      let faults =
        Option.value entry.e_faults ~default:(Session.default_faults ())
      in
      let scen = Gen.generate ~ops ~faults entry.e_seed in
      (* an explicit variant line overrides the seed-derived one *)
      (match entry.e_variant with
      | Some v -> { scen with Gen.sc_variant = v }
      | None -> scen)

let render_entry entry =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "entry %s\n" entry.e_name);
  Buffer.add_string b (Printf.sprintf "seed 0x%Lx\n" entry.e_seed);
  (match entry.e_variant with
  | Some v -> Buffer.add_string b (Printf.sprintf "variant %d\n" v)
  | None -> ());
  (match entry.e_gen_ops with
  | Some n -> Buffer.add_string b (Printf.sprintf "ops %d\n" n)
  | None -> ());
  (match entry.e_faults with
  | Some f -> Buffer.add_string b (Printf.sprintf "faults %b\n" f)
  | None -> ());
  (match entry.e_ops with
  | Some ops ->
      List.iter
        (fun op -> Buffer.add_string b ("op " ^ Gen.op_to_string op ^ "\n"))
        ops
  | None -> ());
  Buffer.add_string b "end\n";
  Buffer.contents b

let entry_of_scenario ~name scen =
  {
    e_name = name;
    e_seed = scen.Gen.sc_seed;
    e_variant = Some scen.Gen.sc_variant;
    e_ops = Some scen.Gen.sc_ops;
    e_gen_ops = None;
    e_faults = None;
  }

(* ---- parsing ---- *)

let parse_lines lines =
  let entries = ref [] in
  let cur = ref None in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let finish () =
    match !cur with
    | None -> Ok ()
    | Some (name, seed, variant, gen_ops, faults, ops) -> (
        match seed with
        | None -> Error (Printf.sprintf "entry %s: missing seed" name)
        | Some seed ->
            let e_ops = match ops with [] -> None | l -> Some (List.rev l) in
            entries :=
              {
                e_name = name;
                e_seed = seed;
                e_variant = variant;
                e_ops;
                e_gen_ops = gen_ops;
                e_faults = faults;
              }
              :: !entries;
            cur := None;
            Ok ())
  in
  let rec go lineno = function
    | [] -> (
        match !cur with
        | None -> Ok (List.rev !entries)
        | Some (name, _, _, _, _, _) ->
            Error (Printf.sprintf "entry %s: missing end" name))
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) rest
        else
          let kv =
            match String.index_opt line ' ' with
            | None -> (line, "")
            | Some i ->
                ( String.sub line 0 i,
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) )
          in
          match (kv, !cur) with
          | ("entry", name), None ->
              cur := Some (name, None, None, None, None, []);
              go (lineno + 1) rest
          | ("entry", _), Some (prev, _, _, _, _, _) ->
              err lineno (Printf.sprintf "entry inside entry %s" prev)
          | (_, _), None -> err lineno "directive outside entry"
          | ("seed", v), Some (n, _, var, go_, f, ops) -> (
              match Int64.of_string_opt v with
              | Some s ->
                  cur := Some (n, Some s, var, go_, f, ops);
                  go (lineno + 1) rest
              | None -> err lineno ("bad seed: " ^ v))
          | ("variant", v), Some (n, s, _, go_, f, ops) -> (
              match int_of_string_opt v with
              | Some var ->
                  cur := Some (n, s, Some var, go_, f, ops);
                  go (lineno + 1) rest
              | None -> err lineno ("bad variant: " ^ v))
          | ("ops", v), Some (n, s, var, _, f, ops) -> (
              match int_of_string_opt v with
              | Some g ->
                  cur := Some (n, s, var, Some g, f, ops);
                  go (lineno + 1) rest
              | None -> err lineno ("bad ops: " ^ v))
          | ("faults", v), Some (n, s, var, go_, _, ops) -> (
              match bool_of_string_opt v with
              | Some f ->
                  cur := Some (n, s, var, go_, Some f, ops);
                  go (lineno + 1) rest
              | None -> err lineno ("bad faults: " ^ v))
          | ("op", v), Some (n, s, var, go_, f, ops) -> (
              match Gen.op_of_string v with
              | Some op ->
                  cur := Some (n, s, var, go_, f, op :: ops);
                  go (lineno + 1) rest
              | None -> err lineno ("bad op: " ^ v))
          | ("end", _), Some _ -> (
              match finish () with
              | Ok () -> go (lineno + 1) rest
              | Error e -> Error e)
          | (k, _), Some _ -> err lineno ("unknown directive: " ^ k))
  in
  go 1 lines

let parse text = parse_lines (String.split_on_char '\n' text)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      parse text
