(** Delta-debugging shrinker for failing scenarios.

    Classic ddmin over the op list: try deleting chunks (halving the
    chunk size down to single ops) and keep any deletion under which the
    session still fails {e with the same failure kind}. The seed and
    config variant are pinned — only the op list shrinks — so the
    minimized scenario replays on the exact kernel that broke.

    Matching on failure *kind* rather than message matters: deleting a
    [SemPost] can turn a Crash repro into a session that merely wedges,
    and accepting that deletion would shrink toward a different bug.

    Every candidate is a full kernel boot, so the run budget is capped;
    determinism makes the budget safe (the same scenario always shrinks
    through the same candidate sequence to the same minimum). *)

type stats = {
  sh_runs : int;  (** candidate sessions executed *)
  sh_ops_before : int;
  sh_ops_after : int;
}

let default_budget = 200

(* [minimize ~run ~failure scen] returns the shrunk scenario plus stats.
   [run] executes a candidate op list (typically [fun ops ->
   (Session.run { scen with sc_ops = ops }).r_outcome]). *)
let minimize ?(budget = default_budget) ~run ~failure scen =
  let runs = ref 0 in
  let still_fails ops =
    if !runs >= budget then false
    else begin
      incr runs;
      match run ops with
      | Session.Fail f -> Session.same_kind f failure
      | Session.Pass -> false
    end
  in
  let remove l start len =
    List.filteri (fun i _ -> i < start || i >= start + len) l
  in
  (* one left-to-right pass at a fixed chunk size; restarts the scan at
     the same position after a successful deletion *)
  let rec scan ops start size =
    if start >= List.length ops then ops
    else begin
      let candidate = remove ops start size in
      if still_fails candidate then scan candidate start size
      else scan ops (start + size) size
    end
  in
  let rec passes ops size =
    if size < 1 then ops
    else begin
      let ops = scan ops 0 size in
      passes ops (size / 2)
    end
  in
  let ops0 = scen.Gen.sc_ops in
  let n = List.length ops0 in
  let minimal = passes ops0 (max 1 (n / 2)) in
  ( { scen with Gen.sc_ops = minimal },
    { sh_runs = !runs; sh_ops_before = n; sh_ops_after = List.length minimal }
  )
