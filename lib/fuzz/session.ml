(** vfuzz session executor and oracle.

    [run] boots a fresh kernel from the scenario's seed and config
    variant, spawns one "monkey" user task that executes the op list,
    and watches for the four ways a session can go wrong:

    - {b Crash}: the kernel died with [Kpanic.Panic] (or the host model
      threw) outside of a sanitizer report;
    - {b Violation}: kcheck recorded a rule violation (lockdep cycle,
      deadlock scan, refcount audit) — these also surface as panics,
      but are classified separately because they point at the sanitizer
      finding, not the panic site;
    - {b Invariant}: a syscall returned something the spec forbids —
      an undefined errno, success where EINVAL is mandatory, a read
      longer than requested. Checked inline by the monkey itself;
    - {b Wedge}: the monkey neither finished nor died within the
      session's virtual-time budget ([fuzz_session_ms]) — the fuzzer's
      deadlock oracle.

    A passing run produces a digest over the ktrace, the UART output
    and the outcome tag. Same seed ⇒ byte-identical digest; the
    determinism test holds the fuzzer to that. *)

open Core

type failure =
  | Crash of string
  | Violation of string
  | Invariant of string
  | Wedge of string

type outcome = Pass | Fail of failure

type result = {
  r_outcome : outcome;
  r_digest : string;  (** hex digest of trace + uart + outcome *)
  r_trace : Ktrace.entry list;  (** for ktrace dumps of failing runs *)
  r_uart : string;
  r_vtime_ns : int64;  (** virtual time consumed by the session *)
}

let failure_to_string = function
  | Crash m -> "crash: " ^ m
  | Violation m -> "violation: " ^ m
  | Invariant m -> "invariant: " ^ m
  | Wedge m -> "wedge: " ^ m

(* Shrink predicate granularity: two failures are "the same bug" for
   ddmin purposes when they are the same kind. Comparing messages would
   be too strict (a shrunk trace panics with a shorter suffix); kinds
   keep e.g. a Wedge candidate from satisfying a Crash predicate. *)
let same_kind a b =
  match (a, b) with
  | Crash _, Crash _ -> true
  | Violation _, Violation _ -> true
  | Invariant _, Invariant _ -> true
  | Wedge _, Wedge _ -> true
  | Crash _, _ | Violation _, _ | Invariant _, _ | Wedge _, _ -> false

(* ---- campaign defaults, read off the stock config (the fuzz_* knobs) ---- *)

let default_ops () = Kconfig.full.Kconfig.fuzz_ops
let default_faults () = Kconfig.full.Kconfig.fuzz_faults

(* ---- kernel config variants ----

   Each scenario boots one of these; the variant index comes from the
   seed. The base is the full kernel with kcheck armed — fuzzing
   without the sanitizer would only catch the loudest class of bug. *)

let variant_names =
  [| "stock"; "writeback"; "journal"; "mlfq-ipi"; "ring-pipe"; "observability" |]

let config_of_variant v =
  let base = { Kconfig.full with Kconfig.kcheck = true } in
  match v mod Array.length variant_names with
  | 1 ->
      {
        base with
        Kconfig.writeback = true;
        readahead_blocks = 4;
        sd_coalescing = true;
      }
  | 2 -> { base with Kconfig.journal = true; writeback = true }
  | 3 ->
      {
        base with
        Kconfig.sched_policy = Kconfig.Sched_mlfq;
        wake_model = Kconfig.Wake_ipi;
        wake_affinity = true;
        load_balance_ms = 4;
      }
  | 4 ->
      {
        base with
        Kconfig.pipe_ring = true;
        pipe_buffer_bytes = 1024;
        pipe_wake_edge = true;
      }
  | 5 ->
      {
        base with
        Kconfig.trace_per_core_rings = true;
        profile_hz = 250;
        metrics = true;
      }
  | _ -> base

(* ---- boot spec ---- *)

let file_payload n =
  Bytes.init n (fun i -> Char.chr (0x20 + ((i * 7) land 0x5f)))

let spec_of_scenario scen =
  let config = config_of_variant scen.Gen.sc_variant in
  {
    Kernel.default_spec with
    Kernel.sp_config = config;
    sp_seed = scen.Gen.sc_seed;
    sp_fb = Some (320, 240);
    sp_sd_mib = 16;
    sp_files =
      [
        ("/f0", file_payload 1024);
        ("/f1", file_payload 100);
        ("/dir0/n0", file_payload 64);
      ];
    sp_fat_files = [ ("/FAT0.TXT", file_payload 256) ];
  }

(* ---- op execution (runs inside the monkey user task) ---- *)

let gpio_buttons =
  [|
    Hw.Gpio.Up; Hw.Gpio.Down; Hw.Gpio.Left; Hw.Gpio.Right; Hw.Gpio.A;
    Hw.Gpio.B; Hw.Gpio.X; Hw.Gpio.Y; Hw.Gpio.Start; Hw.Gpio.Select;
  |]

let app_entry env name =
  match name with
  | "hello" -> Some ([ "hello"; "fuzz" ], Apps.Hello.main env)
  | "ls" -> Some ([ "ls"; "/" ], Apps.Utils.ls_main env)
  | "cat" -> Some ([ "cat"; "/f0" ], Apps.Utils.cat_main env)
  | "wc" -> Some ([ "wc"; "/f1" ], Apps.Utils.wc_main env)
  | "echo" -> Some ([ "echo"; "vfuzz" ], Apps.Utils.echo_main env)
  | "grep" -> Some ([ "grep"; "a"; "/f0" ], Apps.Utils.grep_main env)
  | "ps" -> Some ([ "ps" ], Apps.Utils.ps_main env)
  | "uptime" -> Some ([ "uptime" ], Apps.Utils.uptime_main env)
  | _ -> None

type monkey_state = {
  mutable fds : int list;  (** successfully returned fds, oldest first *)
  mutable sems : int list;
  mutable kids : int list;
  mutable breaches : string list;  (** inline invariant failures *)
}

let breach st fmt =
  Printf.ksprintf (fun s -> st.breaches <- s :: st.breaches) fmt

(* Any syscall return below -Errno.max is outside the errno table —
   nothing in the kernel is allowed to produce it. *)
let errno_floor = -64

let sane st what ret =
  if ret < errno_floor then
    breach st "%s returned undefined errno %d" what ret

(* A Slot over an empty descriptor list degrades to a closed-range fd,
   not to the raw index: indices 0–2 are the console, and a read there
   would block the driver forever (a false Wedge). *)
let resolve_fd st = function
  | Gen.Slot k -> (
      match st.fds with
      | [] -> 100 + k
      | l -> List.nth l (k mod List.length l))
  | Gen.Raw n -> n

let resolve_sem st = function
  | Gen.Slot k -> (
      match st.sems with [] -> -1 | l -> List.nth l (k mod List.length l))
  | Gen.Raw n -> n

let exec_op board env st op =
  let engine = board.Hw.Board.engine in
  match op with
  | Gen.App name -> (
      match app_entry env name with
      | None -> ()
      | Some (argv, main) ->
          let pid = User.Usys.fork (fun () -> main argv) in
          if pid > 0 then st.kids <- st.kids @ [ pid ])
  | Gen.Fork cycles ->
      let pid =
        User.Usys.fork (fun () ->
            User.Usys.burn cycles;
            0)
      in
      if pid > 0 then st.kids <- st.kids @ [ pid ]
  | Gen.WaitAny -> sane st "wait" (User.Usys.wait ())
  | Gen.KillChild k -> (
      match st.kids with
      | [] -> ()
      | l -> sane st "kill(child)" (User.Usys.kill (List.nth l (k mod List.length l))))
  | Gen.KillPid pid ->
      let ret = User.Usys.kill pid in
      sane st "kill" ret;
      if pid <= 0 && ret <> -Errno.einval then
        breach st "kill(%d) returned %d, want -EINVAL" pid ret
  | Gen.KillSelf -> ignore (User.Usys.kill (User.Usys.getpid ()))
  | Gen.Open (path, flags) ->
      let fd = User.Usys.open_ path flags in
      sane st "open" fd;
      if fd >= 0 then st.fds <- st.fds @ [ fd ]
  | Gen.Close r ->
      let fd = resolve_fd st r in
      sane st "close" (User.Usys.close fd);
      st.fds <- List.filter (fun f -> f <> fd) st.fds
  | Gen.Read (r, len) -> (
      let fd = resolve_fd st r in
      match User.Usys.read fd len with
      | Ok b ->
          if len < 0 then breach st "read(len=%d) succeeded" len
          else if Bytes.length b > len then
            breach st "read returned %d bytes > requested %d" (Bytes.length b)
              len
      | Error e ->
          if e < 0 || e > -errno_floor then
            breach st "read failed with undefined errno %d" e)
  | Gen.Write (r, len) ->
      let fd = resolve_fd st r in
      sane st "write" (User.Usys.write fd (Bytes.make len 'w'))
  | Gen.Lseek (r, off, whence) ->
      let fd = resolve_fd st r in
      let ret = User.Usys.lseek fd off whence in
      sane st "lseek" ret;
      if whence <> Abi.seek_set && whence <> Abi.seek_cur
         && whence <> Abi.seek_end && ret >= 0
      then breach st "lseek accepted whence %d (returned %d)" whence ret
  | Gen.Dup r ->
      let fd = User.Usys.dup (resolve_fd st r) in
      sane st "dup" fd;
      if fd >= 0 then st.fds <- st.fds @ [ fd ]
  | Gen.Fstat r -> (
      match User.Usys.fstat (resolve_fd st r) with
      | Ok _ -> ()
      | Error e ->
          if e < 0 || e > -errno_floor then
            breach st "fstat failed with undefined errno %d" e)
  | Gen.Fsync r -> sane st "fsync" (User.Usys.fsync (resolve_fd st r))
  | Gen.Mkdirp path -> sane st "mkdir" (User.Usys.mkdir path)
  | Gen.Unlink path -> sane st "unlink" (User.Usys.unlink path)
  | Gen.Pipe -> (
      match User.Usys.pipe2 Abi.o_nonblock with
      | Ok (r, w) -> st.fds <- st.fds @ [ r; w ]
      | Error e ->
          if e < 0 || e > -errno_floor then
            breach st "pipe failed with undefined errno %d" e)
  | Gen.Poll timeout_ms ->
      let fds =
        match st.fds with a :: b :: c :: _ -> [ a; b; c ] | l -> l
      in
      sane st "poll" (User.Usys.poll fds ~timeout_ms)
  | Gen.SemOpen v ->
      let ret = User.Usys.sem_open v in
      sane st "sem_open" ret;
      if v < 0 && ret <> -Errno.einval then
        breach st "sem_open(%d) returned %d, want -EINVAL" v ret;
      if ret >= 0 then st.sems <- st.sems @ [ ret ]
  | Gen.SemPost r -> sane st "sem_post" (User.Usys.sem_post (resolve_sem st r))
  | Gen.SemWait r -> sane st "sem_wait" (User.Usys.sem_wait (resolve_sem st r))
  | Gen.SemClose r ->
      let id = resolve_sem st r in
      sane st "sem_close" (User.Usys.sem_close id);
      st.sems <- List.filter (fun s -> s <> id) st.sems
  | Gen.Sleep ms -> sane st "sleep" (User.Usys.sleep ms)
  | Gen.Nice n -> sane st "nice" (User.Usys.nice n)
  | Gen.Sbrk n -> ignore (User.Usys.sbrk n)
  | Gen.Burn cycles -> User.Usys.burn cycles
  (* Device-side injections are engine work, not syscalls: defer them
     to a zero-delay engine event so interrupt delivery happens from
     the engine loop, exactly as hardware would interject, and not from
     inside this task's fiber. The burn below each op gives the engine
     a chance to run the event promptly. *)
  | Gen.KeyDown usage ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Hw.Usb.key_down board.Hw.Board.usb usage))
  | Gen.KeyUp usage ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Hw.Usb.key_up board.Hw.Board.usb usage))
  | Gen.GpioTap b ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             let btn = gpio_buttons.(b mod Array.length gpio_buttons) in
             Hw.Gpio.press board.Hw.Board.gpio btn;
             Hw.Gpio.release board.Hw.Board.gpio btn))
  | Gen.SdFault n ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             let sd = board.Hw.Board.sd in
             (* never arm more faults than a bounded-retry driver can
                absorb: stacking bursts past the retry budget would
                turn every such session into a designed-in panic *)
             let room = 3 - Hw.Sd.pending_read_faults sd in
             if room > 0 then
               Hw.Sd.inject_read_faults sd ~count:(min n room)))
  | Gen.UsbUnplug ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Hw.Usb.unplug board.Hw.Board.usb))
  | Gen.UsbReplug ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Hw.Usb.replug board.Hw.Board.usb))
  | Gen.IrqStorm n ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             for i = 1 to n do
               Hw.Intc.raise_line board.Hw.Board.intc
                 (if i land 1 = 0 then Hw.Irq.Gpio_bank else Hw.Irq.Usb_hc)
             done))
  | Gen.PowerBlip ms ->
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Hw.Power.cut board.Hw.Board.supply));
      ignore
        (Sim.Engine.schedule_after engine (Sim.Engine.ms ms) (fun () ->
             Hw.Power.revive board.Hw.Board.supply))
  | Gen.Canary ->
      (* raised from engine context, not user context: an exception in
         user code is absorbed by the task's uncaught-exception handler
         (exit -2), but a panic inside the event loop is a kernel death
         — which is what the shrinker fixture needs to simulate *)
      ignore
        (Sim.Engine.schedule_after engine 0L (fun () ->
             Kpanic.panicf "vfuzz: canary op executed"));
      User.Usys.burn 500

(* ---- session driver ---- *)

let trace_text entries =
  String.concat "\n" (List.map Ktrace.machine_line entries)

let run scen =
  let spec = spec_of_scenario scen in
  let cfg = spec.Kernel.sp_config in
  let kernel_ref = ref None in
  let st = { fds = []; sems = []; kids = []; breaches = [] } in
  let finished = ref false in
  let wedged = ref false in
  let crash = ref None in
  (try
     let kernel = Kernel.boot spec in
     kernel_ref := Some kernel;
     let board = kernel.Kernel.board in
     let env = User.Uenv.create () in
     env.User.Uenv.e_fb <- kernel.Kernel.fb;
     env.User.Uenv.e_simd <- cfg.Kconfig.simd_pixel_ops;
     let ops = scen.Gen.sc_ops in
     let monkey () =
       List.iter
         (fun op ->
           exec_op board env st op;
           (* let deferred device events and preemption land between ops *)
           User.Usys.burn 500)
         ops;
       finished := true;
       0
     in
     let task = Kernel.spawn_user kernel ~name:"monkey" monkey in
     let deadline =
       Int64.add (Kernel.now kernel)
         (Sim.Engine.ms cfg.Kconfig.fuzz_session_ms)
     in
     let monkey_dead () = String.equal (Task.state_name task) "zombie" in
     while
       (not !finished)
       && (not (monkey_dead ()))
       && Int64.compare (Kernel.now kernel) deadline < 0
     do
       Kernel.run_for kernel (Sim.Engine.ms 1)
     done;
     if (not !finished) && not (monkey_dead ()) then wedged := true
     else begin
       (* a monkey that died mid-script of an uncaught exception (exit
          -2) means a kernel API leaked an exception into user code
          instead of an errno — dying by kill(2) is exit -1 and fine *)
       if
         (not !finished)
         && monkey_dead ()
         && task.Task.exit_code = -2
       then crash := Some "monkey task died of an uncaught exception";
       (* drain: let forked children and deferred device events settle,
          then run the sanitizer's registered audits over the corpse *)
       Kernel.run_for kernel (Sim.Engine.ms 20);
       Sched.kcheck_audit kernel.Kernel.sched ~reason:"fuzz:post";
       Kernel.shutdown kernel
     end
   with
  | Kpanic.Panic msg -> crash := Some msg
  | Stack_overflow -> crash := Some "host stack overflow"
  | Invalid_argument msg -> crash := Some ("host invalid_arg: " ^ msg)
  | Failure msg -> crash := Some ("host failure: " ^ msg));
  let violations =
    match !kernel_ref with
    | Some k -> (
        match k.Kernel.kcheck with
        | Some kc ->
            List.map
              (fun v ->
                Printf.sprintf "%s: %s" v.Kcheck.rule v.Kcheck.detail)
              (List.rev kc.Kcheck.violations)
        | None -> [])
    | None -> []
  in
  let outcome =
    match (!crash, violations, !wedged, List.rev st.breaches) with
    | _, (_ :: _ as vs), _, _ -> Fail (Violation (String.concat "; " vs))
    | Some msg, [], _, _ -> Fail (Crash msg)
    | None, [], true, _ -> Fail (Wedge "driver never finished within budget")
    | None, [], false, (_ :: _ as bs) ->
        Fail (Invariant (String.concat "; " bs))
    | None, [], false, [] -> Pass
  in
  let trace, uart, vtime =
    match !kernel_ref with
    | Some k ->
        ( Ktrace.dump k.Kernel.sched.Sched.trace,
          Kernel.uart_output k,
          Kernel.now k )
    | None -> ([], "", 0L)
  in
  let tag =
    match outcome with Pass -> "pass" | Fail f -> failure_to_string f
  in
  let digest =
    Digest.to_hex (Digest.string (trace_text trace ^ "\n" ^ uart ^ "\n" ^ tag))
  in
  {
    r_outcome = outcome;
    r_digest = digest;
    r_trace = trace;
    r_uart = uart;
    r_vtime_ns = vtime;
  }

(* Run a scenario regenerated from a bare seed with the stock knobs. *)
let run_seed ?ops ?faults seed =
  let ops = match ops with Some n -> n | None -> default_ops () in
  let faults = match faults with Some b -> b | None -> default_faults () in
  run (Gen.generate ~ops ~faults seed)
