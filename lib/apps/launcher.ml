(** launcher — the GUI frontend (§3): an animated background with a menu
    of installed programs; Enter forks and execs the selection, arrows
    move the cursor. *)


open User

let entries =
  [
    ("donut", [ "donut"; "pixels"; "300" ]);
    ("mario", [ "mario"; "sdl"; "600" ]);
    ("doom", [ "doom"; "600" ]);
    ("music", [ "music" ]);
    ("video", [ "video" ]);
    ("slider", [ "slider" ]);
    ("sysmon", [ "sysmon"; "30" ]);
    ("blockchain", [ "blockchain"; "4"; "12"; "2" ]);
    ("sh", [ "sh" ]);
  ]

(* argv: launcher [iterations] *)
let main env argv =
  Usys.in_frame "launcher_main" (fun () ->
      let iters = match argv with _ :: n :: _ -> int_of_string n | _ -> 0 in
      match Minisdl.init env (Minisdl.Window { w = 300; h = 260; x = 20; y = 100; alpha = 255 }) with
      | Error e -> e
      | Ok sdl ->
          let gfx = Minisdl.surface sdl in
          let cursor = ref 0 in
          let tick = ref 0 in
          let running = ref true in
          while !running && (iters = 0 || !tick < iters) do
            incr tick;
            (* animated background: drifting diagonal color bands *)
            for y = 0 to gfx.Gfx.height - 1 do
              for x = 0 to gfx.Gfx.width - 1 do
                let v = (x + y + (!tick * 3)) mod 96 in
                Gfx.put gfx ~x ~y (Gfx.rgb (16 + v / 4) (20 + v / 3) (48 + v / 2))
              done
            done;
            Gfx.text gfx ~x:12 ~y:8 ~color:0xffffff "VOS LAUNCHER";
            List.iteri
              (fun i (name, _) ->
                let y = 32 + (i * 22) in
                if i = !cursor then
                  Gfx.fill_rect gfx ~x:8 ~y:(y - 4) ~w:(gfx.Gfx.width - 16) ~h:18
                    (Gfx.rgb 60 80 160);
                Gfx.text gfx ~x:16 ~y ~color:0xffffff name)
              entries;
            Minisdl.present sdl;
            List.iter
              (fun ev ->
                if ev.Uevents.pressed then
                  match ev.Uevents.key with
                  | Uevents.Up -> cursor := (max 0 (!cursor - 1))
                  | Uevents.Down ->
                      cursor := min (List.length entries - 1) (!cursor + 1)
                  | Uevents.Enter ->
                      let name, argv = List.nth entries !cursor in
                      let pid =
                        Usys.fork (fun () ->
                            let rc = Usys.exec ("/" ^ name) argv in
                            (* exec only returns on failure *)
                            rc)
                      in
                      Usys.printf "[launcher] started %s as pid %d\n" name pid
                  | Uevents.Escape -> running := false
                  | Uevents.Left | Uevents.Right | Uevents.Tab | Uevents.Space
                  | Uevents.Char _ | Uevents.Other _ ->
                      ())
              (Minisdl.wait_events sdl ~timeout_ms:33)
          done;
          Minisdl.quit sdl;
          0)
