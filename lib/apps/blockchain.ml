(** blockchain — the multithreaded proof-of-work miner (§3), the paper's
    multi-threaded scalability workload (Figure 10). Worker threads
    (clone/CLONE_VM) partition the nonce space and double-SHA-256 block
    headers against a leading-zero-bits difficulty target; a mutex guards
    the shared chain. Hash throughput scales with cores. *)


open User

type block = {
  index : int;
  prev_hash : string;
  nonce : int;
  hash : string;
}

let header ~index ~prev_hash ~nonce =
  Bytes.of_string (Printf.sprintf "%d|%s|%d" index prev_hash nonce)

let pow_hash data =
  (* bitcoin-style double SHA-256 *)
  let first, b1 = Sha256.digest_with_blocks data in
  let second, b2 = Sha256.digest_with_blocks first in
  (second, (b1 + b2) * Sha256.cycles_per_block)

let digits n = if n = 0 then 1 else
  let rec go n acc = if n = 0 then acc else go (n / 10) (acc + 1) in
  go n 0

(* Virtual cost of double-hashing [header ~index ~prev_hash ~nonce]
   without building the header: the first round covers
   digits(index) + "|" + prev_hash + "|" + digits(nonce) bytes, the
   second the 32-byte digest. Must agree with [pow_hash]'s count. *)
let hash_cycles ~index ~prev_len ~nonce =
  let len = digits index + 1 + prev_len + 1 + digits nonce in
  (Sha256.blocks_of_length len + Sha256.blocks_of_length 32)
  * Sha256.cycles_per_block

(* argv: blockchain [threads] [difficulty_bits] [blocks] *)
let main _env argv =
  Usys.in_frame "blockchain_main" (fun () ->
      let nthreads = match argv with _ :: t :: _ -> int_of_string t | _ -> 4 in
      let difficulty =
        match argv with _ :: _ :: d :: _ -> int_of_string d | _ -> 16
      in
      let target_blocks =
        match argv with _ :: _ :: _ :: b :: _ -> int_of_string b | _ -> 3
      in
      let chain = ref [ { index = 0; prev_hash = "genesis"; nonce = 0; hash = "genesis" } ] in
      let chain_lock = Uthread.Mutex.create () in
      let total_hashes = ref 0 in
      let stop = ref false in
      let worker wid () =
        let hashes = ref 0 in
        while not !stop do
          (* snapshot the tip under the lock *)
          let tip = Uthread.Mutex.with_lock chain_lock (fun () -> List.hd !chain) in
          let index = tip.index + 1 in
          (* partitioned nonce space per worker *)
          let nonce = ref (wid * 10_000_000) in
          let found = ref None in
          let batch = 64 in
          while !found = None && not !stop do
            (* One offload per batch: the virtual cost is the precomputed
               sum of the 64 double-hashes; the hashing itself is a pure
               function of (index, tip hash, nonce range) and runs
               host-side — in parallel with the other miners' batches
               when sim_domains > 1. Scanning nonces in ascending order
               keeps the winner identical to the per-hash loop this
               replaces. *)
            let n0 = !nonce in
            let prev_hash = tip.hash in
            let prev_len = String.length prev_hash in
            let cycles = ref 0 in
            for n = n0 to n0 + batch - 1 do
              cycles := !cycles + hash_cycles ~index ~prev_len ~nonce:n
            done;
            let best =
              Usys.offload !cycles (fun () ->
                  let best = ref None in
                  for n = n0 to n0 + batch - 1 do
                    let digest, _ = pow_hash (header ~index ~prev_hash ~nonce:n) in
                    if
                      !best = None
                      && Sha256.leading_zero_bits digest >= difficulty
                    then best := Some (n, Sha256.hex digest)
                  done;
                  !best)
            in
            hashes := !hashes + batch;
            nonce := n0 + batch;
            (match best with Some _ -> found := best | None -> ());
            (* give the tip a chance to have moved *)
            let current =
              Uthread.Mutex.with_lock chain_lock (fun () -> List.hd !chain)
            in
            (* someone else extended the chain: abandon this height *)
            if current.index >= index then found := Some (-1, "")
          done;
          match !found with
          | Some (n, hex) when n >= 0 ->
              Uthread.Mutex.with_lock chain_lock (fun () ->
                  let tip' = List.hd !chain in
                  if tip'.index = tip.index then begin
                    chain :=
                      { index; prev_hash = tip.hash; nonce = n; hash = hex }
                      :: !chain;
                    Usys.printf "[miner %d] block %d nonce=%d hash=%s\n" wid
                      index n (String.sub hex 0 16);
                    if index >= target_blocks then stop := true
                  end)
          | Some _ | None -> ()
        done;
        Uthread.Mutex.with_lock chain_lock (fun () ->
            total_hashes := !total_hashes + !hashes);
        0
      in
      let t0 = Usys.uptime_ms () in
      let tids = List.init nthreads (fun wid -> Uthread.spawn (worker wid)) in
      List.iter (fun tid -> ignore (Uthread.join tid)) tids;
      let dt_ms = max 1 (Usys.uptime_ms () - t0) in
      Usys.printf "mined %d blocks, %d hashes, %.1f kH/s\n"
        (List.hd !chain).index !total_hashes
        (float_of_int !total_hashes /. float_of_int dt_ms);
      0)
