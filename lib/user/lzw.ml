(** LZW with variable-width codes — the GIF compression scheme, used by
    the slider's GIF-lite decoder. Both directions are implemented: the
    encoder mirrors what GIF authoring tools emit (code widths growing
    from [min_code_size]+1 up to 12 bits, clear and end codes), the
    decoder is the standard table-rebuilding loop. *)

let cycles_per_byte = 9

exception Corrupt of string

let max_bits = 12

(* ---- encode ---- *)

let encode ~min_code_size data =
  assert (min_code_size >= 2 && min_code_size <= 8);
  let clear_code = 1 lsl min_code_size in
  let end_code = clear_code + 1 in
  let out = Buffer.create (Bytes.length data) in
  let bitbuf = ref 0 and bitcnt = ref 0 in
  let code_size = ref (min_code_size + 1) in
  let emit code =
    bitbuf := !bitbuf lor (code lsl !bitcnt);
    bitcnt := !bitcnt + !code_size;
    while !bitcnt >= 8 do
      Buffer.add_char out (Char.chr (!bitbuf land 0xff));
      bitbuf := !bitbuf lsr 8;
      bitcnt := !bitcnt - 8
    done
  in
  let table = Hashtbl.create 4096 in
  let next_code = ref (end_code + 1) in
  let reset_table () =
    Hashtbl.clear table;
    next_code := end_code + 1;
    code_size := min_code_size + 1
  in
  reset_table ();
  emit clear_code;
  let n = Bytes.length data in
  if n > 0 then begin
    let prefix = ref [ Bytes.get_uint8 data 0 ] in
    let code_of seq =
      match seq with
      | [ single ] -> Some single
      | _ -> Hashtbl.find_opt table seq
    in
    (* The width check rides each emit and runs *before* the pending
       table insert. At that instant the decoder (whose insert for this
       code also hasn't happened yet) counts exactly as many entries, so
       the two sides widen for the same code — including the clear/end
       codes, which follow an emit with no insert of their own. Checking
       after the insert instead desynced the end code's width whenever
       the final data code landed on a power-of-two boundary. *)
    let emit_prefix seq =
      emit (Option.get (code_of seq));
      if !next_code >= 1 lsl !code_size && !code_size < max_bits then
        incr code_size
    in
    for i = 1 to n - 1 do
      let c = Bytes.get_uint8 data i in
      let candidate = !prefix @ [ c ] in
      match code_of candidate with
      | Some _ -> prefix := candidate
      | None ->
          emit_prefix !prefix;
          if !next_code < 1 lsl max_bits then begin
            Hashtbl.replace table candidate !next_code;
            incr next_code
          end
          else begin
            emit clear_code;
            reset_table ()
          end;
          prefix := [ c ]
    done;
    emit_prefix !prefix
  end;
  emit end_code;
  if !bitcnt > 0 then Buffer.add_char out (Char.chr (!bitbuf land 0xff));
  Buffer.to_bytes out

(* ---- decode ---- *)

let decode ~min_code_size data =
  let clear_code = 1 lsl min_code_size in
  let end_code = clear_code + 1 in
  let out = Buffer.create (Bytes.length data * 3) in
  let pos = ref 0 and bitbuf = ref 0 and bitcnt = ref 0 in
  let code_size = ref (min_code_size + 1) in
  let read_code () =
    while !bitcnt < !code_size do
      if !pos >= Bytes.length data then raise (Corrupt "lzw: eof");
      bitbuf := !bitbuf lor (Bytes.get_uint8 data !pos lsl !bitcnt);
      bitcnt := !bitcnt + 8;
      incr pos
    done;
    let code = !bitbuf land ((1 lsl !code_size) - 1) in
    bitbuf := !bitbuf lsr !code_size;
    bitcnt := !bitcnt - !code_size;
    code
  in
  (* table: code -> byte list *)
  let table = Array.make (1 lsl max_bits) None in
  let next_code = ref (end_code + 1) in
  let reset_table () =
    Array.fill table 0 (Array.length table) None;
    for i = 0 to clear_code - 1 do
      table.(i) <- Some [ i ]
    done;
    next_code := end_code + 1;
    code_size := min_code_size + 1
  in
  reset_table ();
  let prev = ref None in
  let stop = ref false in
  while not !stop do
    let code = read_code () in
    if code = end_code then stop := true
    else if code = clear_code then begin
      reset_table ();
      prev := None
    end
    else begin
      let entry =
        match table.(code) with
        | Some seq -> seq
        | None -> (
            (* the KwKwK case *)
            match !prev with
            | Some p when code = !next_code -> p @ [ List.hd p ]
            | Some _ | None -> raise (Corrupt "lzw: bad code"))
      in
      List.iter (fun b -> Buffer.add_char out (Char.chr b)) entry;
      (match !prev with
      | Some p when !next_code < 1 lsl max_bits ->
          table.(!next_code) <- Some (p @ [ List.hd entry ]);
          incr next_code;
          (* post-insert here lines up with the encoder's pre-insert
             check: the decoder's insert for code k happens one code
             later than the encoder's, so both see the same table size
             when deciding the width of code k+1 *)
          if !next_code >= 1 lsl !code_size && !code_size < max_bits then
            incr code_size
      | Some _ | None -> ());
      prev := Some entry
    end
  done;
  Buffer.to_bytes out
