(** User-space syscall stubs — the moral equivalent of the usys.S
    trampolines: one thin wrapper per syscall, returning C-style negative
    errnos. *)

open Core

let sys call = Effect.perform (Abi.Sys call)

let as_int = function
  | Abi.R_int n -> n
  | Abi.R_bytes b -> Bytes.length b
  | Abi.R_pair _ | Abi.R_stat _ | Abi.R_mmap _ -> -Errno.einval

(* ---- tasks & time ---- *)

let fork child = as_int (sys (Abi.Fork child))
let exec path argv = as_int (sys (Abi.Exec (path, argv)))
let exit code : 'a = ignore (sys (Abi.Exit code)); assert false
let wait () = as_int (sys Abi.Wait)
let kill pid = as_int (sys (Abi.Kill pid))
let getpid () = as_int (sys Abi.Getpid)
let sleep ms = as_int (sys (Abi.Sleep ms))
let uptime_ms () = as_int (sys Abi.Uptime)
let nice n = as_int (sys (Abi.Nice n))
let sbrk bytes = as_int (sys (Abi.Sbrk bytes))
let cacheflush () = as_int (sys Abi.Cacheflush)

(* ---- files ---- *)

let open_ path flags = as_int (sys (Abi.Open (path, flags)))
let close fd = as_int (sys (Abi.Close fd))

let read fd len =
  match sys (Abi.Read (fd, len)) with
  | Abi.R_bytes b -> Ok b
  | Abi.R_int n -> Error (-n)
  | Abi.R_pair _ | Abi.R_stat _ | Abi.R_mmap _ -> Error Errno.einval

let write fd data = as_int (sys (Abi.Write (fd, data)))
let write_str fd s = write fd (Bytes.of_string s)
let lseek fd off whence = as_int (sys (Abi.Lseek (fd, off, whence)))
let dup fd = as_int (sys (Abi.Dup fd))

let pipe2 flags =
  match sys (Abi.Pipe flags) with
  | Abi.R_pair (r, w) -> Ok (r, w)
  | Abi.R_int n -> Error (-n)
  | Abi.R_bytes _ | Abi.R_stat _ | Abi.R_mmap _ -> Error Errno.einval

let pipe () = pipe2 0

let fstat fd =
  match sys (Abi.Fstat fd) with
  | Abi.R_stat st -> Ok st
  | Abi.R_int n -> Error (-n)
  | Abi.R_bytes _ | Abi.R_pair _ | Abi.R_mmap _ -> Error Errno.einval

let fsync fd = as_int (sys (Abi.Fsync fd))

(* poll(2): block until one of [fds] is ready (or the timeout lapses).
   Returns a bitmask, bit i for fds.(i); 0 = timed out, negative = errno.
   [timeout_ms] < 0 waits forever, 0 probes without blocking. *)
let poll fds ~timeout_ms = as_int (sys (Abi.Poll (fds, timeout_ms)))
let mkdir path = as_int (sys (Abi.Mkdir path))
let unlink path = as_int (sys (Abi.Unlink path))
let chdir path = as_int (sys (Abi.Chdir path))

let mmap fd =
  match sys (Abi.Mmap fd) with
  | Abi.R_mmap (addr, w, h) -> Ok (addr, w, h)
  | Abi.R_int n -> Error (-n)
  | Abi.R_bytes _ | Abi.R_pair _ | Abi.R_stat _ -> Error Errno.einval

(* ---- threading & sync ---- *)

let clone body = as_int (sys (Abi.Clone body))
let join tid = as_int (sys (Abi.Join tid))
let sem_open value = as_int (sys (Abi.Sem_open value))
let sem_post id = as_int (sys (Abi.Sem_post id))
let sem_wait id = as_int (sys (Abi.Sem_wait id))
let sem_close id = as_int (sys (Abi.Sem_close id))

(* ---- CPU work accounting and the unwinder's shadow frames ---- *)

let burn cycles = Effect.perform (Abi.Burn cycles)

(* Burn [cycles] while the host computes [fn] — pure w.r.t. kernel and
   simulation state — possibly in parallel with other cores' offloads. *)
let offload cycles fn = Effect.perform (Abi.Offload (cycles, fn))

let enter_frame label = Effect.perform (Abi.Frame_mark label)

let exit_frame () = Effect.perform (Abi.Frame_mark "")

let in_frame label f =
  enter_frame label;
  let finally () = exit_frame () in
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

(* ---- console convenience ---- *)

let print s = ignore (write_str 1 s)
let printf fmt = Printf.ksprintf print fmt

(* Read a full file into bytes (repeated read(2)). *)
let slurp path =
  let fd = open_ path Abi.o_rdonly in
  if fd < 0 then Error (-fd)
  else begin
    let buf = Buffer.create 4096 in
    let rec go () =
      match read fd 65536 with
      | Ok b when Bytes.length b = 0 ->
          ignore (close fd);
          Ok (Buffer.to_bytes buf)
      | Ok b ->
          Buffer.add_bytes buf b;
          go ()
      | Error e ->
          ignore (close fd);
          Error e
    in
    go ()
  end
