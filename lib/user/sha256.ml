(** SHA-256 (FIPS 180-4) — the blockchain miner's proof-of-work hash.
    A real implementation over int32 words, verified against the standard
    test vectors in the test suite. *)

let cycles_per_block = 2_600 (* one 64-byte compression on the A53 *)

let k =
  [| 0x428a2f98l; 0x71374491l; 0xb5c0fbcfl; 0xe9b5dba5l; 0x3956c25bl;
     0x59f111f1l; 0x923f82a4l; 0xab1c5ed5l; 0xd807aa98l; 0x12835b01l;
     0x243185bel; 0x550c7dc3l; 0x72be5d74l; 0x80deb1fel; 0x9bdc06a7l;
     0xc19bf174l; 0xe49b69c1l; 0xefbe4786l; 0x0fc19dc6l; 0x240ca1ccl;
     0x2de92c6fl; 0x4a7484aal; 0x5cb0a9dcl; 0x76f988dal; 0x983e5152l;
     0xa831c66dl; 0xb00327c8l; 0xbf597fc7l; 0xc6e00bf3l; 0xd5a79147l;
     0x06ca6351l; 0x14292967l; 0x27b70a85l; 0x2e1b2138l; 0x4d2c6dfcl;
     0x53380d13l; 0x650a7354l; 0x766a0abbl; 0x81c2c92el; 0x92722c85l;
     0xa2bfe8a1l; 0xa81a664bl; 0xc24b8b70l; 0xc76c51a3l; 0xd192e819l;
     0xd6990624l; 0xf40e3585l; 0x106aa070l; 0x19a4c116l; 0x1e376c08l;
     0x2748774cl; 0x34b0bcb5l; 0x391c0cb3l; 0x4ed8aa4al; 0x5b9cca4fl;
     0x682e6ff3l; 0x748f82eel; 0x78a5636fl; 0x84c87814l; 0x8cc70208l;
     0x90befffal; 0xa4506cebl; 0xbef9a3f7l; 0xc67178f2l |]

let rotr x n = Int32.logor (Int32.shift_right_logical x n) (Int32.shift_left x (32 - n))
let ( ^^ ) = Int32.logxor
let ( &&& ) = Int32.logand
let ( +% ) = Int32.add

let compress state block_off data =
  let w = Array.make 64 0l in
  for i = 0 to 15 do
    let off = block_off + (4 * i) in
    w.(i) <-
      Int32.logor
        (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data off)) 24)
        (Int32.logor
           (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data (off + 1))) 16)
           (Int32.logor
              (Int32.shift_left (Int32.of_int (Bytes.get_uint8 data (off + 2))) 8)
              (Int32.of_int (Bytes.get_uint8 data (off + 3)))))
  done;
  for i = 16 to 63 do
    let s0 = rotr w.(i - 15) 7 ^^ rotr w.(i - 15) 18 ^^ Int32.shift_right_logical w.(i - 15) 3 in
    let s1 = rotr w.(i - 2) 17 ^^ rotr w.(i - 2) 19 ^^ Int32.shift_right_logical w.(i - 2) 10 in
    w.(i) <- w.(i - 16) +% s0 +% w.(i - 7) +% s1
  done;
  let a = ref state.(0) and b = ref state.(1) and c = ref state.(2) in
  let d = ref state.(3) and e = ref state.(4) and f = ref state.(5) in
  let g = ref state.(6) and h = ref state.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 ^^ rotr !e 11 ^^ rotr !e 25 in
    let ch = (!e &&& !f) ^^ (Int32.lognot !e &&& !g) in
    let temp1 = !h +% s1 +% ch +% k.(i) +% w.(i) in
    let s0 = rotr !a 2 ^^ rotr !a 13 ^^ rotr !a 22 in
    let maj = (!a &&& !b) ^^ (!a &&& !c) ^^ (!b &&& !c) in
    let temp2 = s0 +% maj in
    h := !g;
    g := !f;
    f := !e;
    e := !d +% temp1;
    d := !c;
    c := !b;
    b := !a;
    a := temp1 +% temp2
  done;
  state.(0) <- state.(0) +% !a;
  state.(1) <- state.(1) +% !b;
  state.(2) <- state.(2) +% !c;
  state.(3) <- state.(3) +% !d;
  state.(4) <- state.(4) +% !e;
  state.(5) <- state.(5) +% !f;
  state.(6) <- state.(6) +% !g;
  state.(7) <- state.(7) +% !h

(* Returns (digest, blocks processed) so callers can charge cycles. *)
let digest_with_blocks input =
  let state =
    [| 0x6a09e667l; 0xbb67ae85l; 0x3c6ef372l; 0xa54ff53al; 0x510e527fl;
       0x9b05688cl; 0x1f83d9abl; 0x5be0cd19l |]
  in
  let len = Bytes.length input in
  let total = ((len + 8) / 64 + 1) * 64 in
  let padded = Bytes.make total '\000' in
  Bytes.blit input 0 padded 0 len;
  Bytes.set_uint8 padded len 0x80;
  let bitlen = len * 8 in
  for i = 0 to 7 do
    Bytes.set_uint8 padded (total - 1 - i) ((bitlen lsr (8 * i)) land 0xff)
  done;
  let nblocks = total / 64 in
  for b = 0 to nblocks - 1 do
    compress state (b * 64) padded
  done;
  let out = Bytes.create 32 in
  Array.iteri
    (fun i word ->
      for j = 0 to 3 do
        Bytes.set_uint8 out ((4 * i) + j)
          (Int32.to_int (Int32.shift_right_logical word (8 * (3 - j))) land 0xff)
      done)
    state;
  (out, nblocks)

let digest input = fst (digest_with_blocks input)

(* Compression blocks for a message of [len] bytes — the cost model of
   [digest_with_blocks] without hashing anything, so callers can price
   work before (or without) doing it. *)
let blocks_of_length len = ((len + 8) / 64) + 1

let hex digest =
  String.concat ""
    (List.init (Bytes.length digest) (fun i ->
         Printf.sprintf "%02x" (Bytes.get_uint8 digest i)))

(* Count leading zero bits, the miner's difficulty test. *)
let leading_zero_bits digest =
  let rec go i acc =
    if i >= Bytes.length digest then acc
    else begin
      let byte = Bytes.get_uint8 digest i in
      if byte = 0 then go (i + 1) (acc + 8)
      else begin
        let rec bits b n = if b land 0x80 <> 0 then n else bits (b lsl 1) (n + 1) in
        acc + bits byte 0
      end
    end
  in
  go 0 0
