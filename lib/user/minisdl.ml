(** miniSDL — the trimmed-down SDL the paper ports for Prototype 5 apps:
    a surface to draw on, an event queue, and the SDL audio model (a
    dedicated thread pulls samples from a callback and streams them to the
    device, §4.5 "Threading for SDL audio"). *)

type video_mode =
  | Fullscreen  (** direct rendering to /dev/fb *)
  | Window of { w : int; h : int; x : int; y : int; alpha : int }

type t = {
  gfx : Gfx.t;
  ev_fd : int;
  mutable audio_tid : int option;
  mutable audio_stop : bool;
  env : Uenv.t;
}

let init env mode =
  let open Core in
  match mode with
  | Fullscreen -> (
      match Gfx.direct env with
      | Error e -> Error e
      | Ok gfx ->
          let fd = Usys.open_ "/dev/events" (Abi.o_rdonly lor Abi.o_nonblock) in
          if fd < 0 then Error (-fd)
          else Ok { gfx; ev_fd = fd; audio_tid = None; audio_stop = false; env })
  | Window { w; h; x; y; alpha } -> (
      match Gfx.windowed ~width:w ~height:h ~x ~y ~alpha () with
      | Error e -> Error e
      | Ok gfx ->
          (* WM-routed events for this window *)
          let fd = Usys.open_ "/dev/event1" (Abi.o_rdonly lor Abi.o_nonblock) in
          if fd < 0 then Error (-fd)
          else Ok { gfx; ev_fd = fd; audio_tid = None; audio_stop = false; env })

let surface t = t.gfx
let present t = Gfx.present t.gfx

let poll_events t = Uevents.poll_events t.ev_fd

let delay ms = ignore (Usys.sleep ms)

(* Block in poll(2) until an input event arrives or [timeout_ms] lapses,
   then drain the queue. On kernels without poll (xv6 config) degrade to
   the sleep-then-spin loop so callers keep their frame pacing. *)
let wait_events t ~timeout_ms =
  let r = Usys.poll [ t.ev_fd ] ~timeout_ms in
  if r > 0 then Uevents.read_events t.ev_fd
  else if r = 0 then []
  else begin
    delay (max 1 timeout_ms);
    Uevents.poll_events t.ev_fd
  end

(* SDL-style audio: [callback n] returns the next [n] samples; a dedicated
   thread keeps the device fed, running concurrently with the decoder. *)
let audio_chunk = 2048

let open_audio t callback =
  let body () =
    let fd = Usys.open_ "/dev/sb" Core.Abi.o_wronly in
    if fd < 0 then -fd
    else begin
      let buf = Bytes.create (audio_chunk * 2) in
      while not t.audio_stop do
        let samples = callback audio_chunk in
        let n = min audio_chunk (Array.length samples) in
        for i = 0 to n - 1 do
          let v = samples.(i) land 0xffff in
          Bytes.set_uint8 buf (2 * i) (v land 0xff);
          Bytes.set_uint8 buf ((2 * i) + 1) ((v lsr 8) land 0xff)
        done;
        if n > 0 then ignore (Usys.write fd (Bytes.sub buf 0 (2 * n)))
        else ignore (Usys.sleep 10)
      done;
      ignore (Usys.close fd);
      0
    end
  in
  let tid = Usys.clone body in
  if tid > 0 then t.audio_tid <- Some tid;
  tid

let close_audio t =
  t.audio_stop <- true;
  match t.audio_tid with
  | Some tid ->
      ignore (Usys.join tid);
      t.audio_tid <- None
  | None -> ()

let quit t =
  close_audio t;
  ignore (Usys.close t.ev_fd);
  Gfx.close t.gfx
