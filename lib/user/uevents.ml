(** Input-event decoding and polling for apps.

    Events come from /dev/events (raw keyboard queue) or /dev/event1
    (WM-routed to the focused window) in the 8-byte wire format of
    {!Core.Kbd}. Key codes are HID usages; this module names the ones the
    apps use. *)

type key =
  | Up
  | Down
  | Left
  | Right
  | Enter
  | Escape
  | Tab
  | Space
  | Char of char
  | Other of int

let key_of_usage u =
  match u with
  | 0x52 -> Up
  | 0x51 -> Down
  | 0x50 -> Left
  | 0x4f -> Right
  | 0x28 -> Enter
  | 0x29 -> Escape
  | 0x2b -> Tab
  | 0x2c -> Space
  | u when u >= 0x04 && u <= 0x1d -> Char (Char.chr (Char.code 'a' + u - 4))
  | u when u >= 0x1e && u <= 0x26 -> Char (Char.chr (Char.code '1' + u - 0x1e))
  | 0x27 -> Char '0'
  | u -> Other u

type event = { key : key; pressed : bool; ctrl : bool; ts_ns : int64 }

let decode_bytes data =
  let n = Bytes.length data / Core.Kbd.event_bytes in
  List.init n (fun i ->
      let raw = Core.Kbd.decode data ~off:(i * Core.Kbd.event_bytes) in
      {
        key = key_of_usage raw.Core.Kbd.ev_code;
        pressed = raw.Core.Kbd.ev_pressed;
        ctrl = raw.Core.Kbd.ev_modifiers land 0x01 <> 0;
        ts_ns = raw.Core.Kbd.ev_ts_ns;
      })

(* Blocking read of at least one event. *)
let read_events fd =
  match Usys.read fd 256 with
  | Ok data -> decode_bytes data
  | Error _ -> []

(* Non-blocking poll (requires the fd opened with O_NONBLOCK). *)
let poll_events fd =
  match Usys.read fd 256 with
  | Ok data -> decode_bytes data
  | Error e when e = Core.Errno.eagain -> []
  | Error _ -> []

(* poll(2)-based wait: sleep until an event is pending (or the timeout
   lapses), then drain — the spin-free alternative to [poll_events] for
   event loops once the kernel has the poll syscall. *)
let wait_events fd ~timeout_ms =
  let r = Usys.poll [ fd ] ~timeout_ms in
  if r <= 0 then [] else read_events fd
