(** obsbench — the observability stack measuring its own cost and
    checking its own contract, in [BENCH_obs.json]:

    - {b what does a detached probe point cost the host?} Every fire
      site guards on {!Core.Vprobe.armed} (one array read); part 1 times
      ~10M guard evaluations, detached and attached, in host ns/site.
      The acceptance bar is single-digit ns while detached.

    - {b does arming move any virtual number?} Part 2 runs an identical
      syscall/pipe/file workload in two kernels — one with vprobe,
      delay accounting and the flight recorder all off, one fully armed
      with a probe ladder attached — and compares the final virtual
      clock and an MD5 of the formatted trace. The armed run must be
      byte-identical to stock: observability charges zero cycles.

    - {b does delay accounting conserve time?} For every live task in
      the armed kernel the six delay buckets (oncpu, runnable, sleep,
      blocked-io, blocked-lock, blocked-pipe) must sum to its lifetime;
      part 3 reports the max absolute error across tasks, which rounding
      bounds at zero. *)

(* ---- part 1: host cost per probe site ---- *)

let guard_iters = 10_000_000
let fire_iters = 1_000_000

(* The detached fast path as every fire site spells it: one [armed]
   check, nothing else. [Sys.opaque_identity] keeps flambda from
   hoisting the load out of the loop. *)
let detached_ns_per_site () =
  let vp = Core.Vprobe.create () in
  let hits = ref 0 in
  let t0 = Sys.time () in
  for _ = 1 to guard_iters do
    if Core.Vprobe.armed (Sys.opaque_identity vp) Core.Vprobe.pt_sched_wakeup
    then incr hits
  done;
  assert (!hits = 0);
  (Sys.time () -. t0) *. 1e9 /. float_of_int guard_iters

(* Attached cost: a histogram aggregation with a predicate, the
   expensive end of the ladder. *)
let attached_ns_per_fire () =
  let vp = Core.Vprobe.create () in
  (match Core.Vprobe.attach vp "probe sched:wakeup / pid>=0 / hist(latency_ns)"
   with
  | Ok _ -> ()
  | Error e -> invalid_arg e);
  let args i =
    {
      Core.Vprobe.no_args with
      Core.Vprobe.a_pid = i land 7;
      Core.Vprobe.a_latency_ns = Int64.of_int (i land 0xffff);
    }
  in
  let t0 = Sys.time () in
  for i = 1 to fire_iters do
    if Core.Vprobe.armed vp Core.Vprobe.pt_sched_wakeup then
      Core.Vprobe.fire vp Core.Vprobe.pt_sched_wakeup (args i)
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int fire_iters

(* ---- part 2: armed-vs-stock byte identity ---- *)

(* The ladder exercises both syscall families, a keyed count, a sum and
   a latency histogram — every aggregation kind the grammar offers. *)
let ladder =
  [
    "probe syscall:read / pid>=1 / hist(latency_us)";
    "probe sysenter:write";
    "probe sched:wakeup / * / count by(core)";
    "probe pipe:write / * / sum(arg0)";
    "probe bufcache:miss / * / count";
    "probe journal:commit / * / sum(arg0)";
  ]

(* Both kernels journal (full ships journal-free to keep the stock image
   byte-identical to the paper's) so the fsync in the workload drives the
   journal:commit point; only the three observability knobs differ. *)
let armed_config = { Core.Kconfig.full with Core.Kconfig.journal = true }

let stock_config =
  {
    armed_config with
    Core.Kconfig.vprobe = false;
    delayacct = false;
    flight_recorder_events = 0;
  }

(* Syscall soup: pipes, files, fsync (journal commits), enough fork/wait
   to move the scheduler. Identical in both kernels. *)
let workload () =
  (match (User.Usys.pipe (), User.Usys.pipe ()) with
  | Ok (r1, w1), Ok (r2, w2) ->
      let msg = Bytes.make 64 'o' in
      let child =
        User.Usys.fork (fun () ->
            let live = ref true in
            while !live do
              match User.Usys.read r1 64 with
              | Ok b when Bytes.length b > 0 -> ignore (User.Usys.write w2 b)
              | Ok _ | Error _ -> live := false
            done;
            0)
      in
      for _ = 1 to 300 do
        ignore (User.Usys.write w1 msg);
        ignore (User.Usys.read r2 64)
      done;
      ignore (User.Usys.close w1);
      ignore (User.Usys.close r1);
      ignore (User.Usys.kill child);
      ignore (User.Usys.wait ())
  | _ -> ());
  (match User.Usys.open_ "/obs.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr) with
  | fd when fd >= 0 ->
      let blk = Bytes.make 2048 'x' in
      for _ = 1 to 50 do
        ignore (User.Usys.write fd blk)
      done;
      ignore (User.Usys.fsync fd);
      ignore (User.Usys.lseek fd 0 0);
      for _ = 1 to 50 do
        ignore (User.Usys.read fd 2048)
      done;
      ignore (User.Usys.close fd)
  | _ -> ());
  for _ = 1 to 200 do
    ignore (User.Usys.getpid ())
  done;
  0

type run_sig = {
  rs_end_ns : int64;  (** virtual clock when the workload finished *)
  rs_trace_md5 : string;
  rs_kernel : Core.Kernel.t;
}

let run_one ~config ~arm =
  let kernel = Micro.fresh_kernel ~config () in
  if arm then begin
    let vp = kernel.Core.Kernel.sched.Core.Sched.vprobe in
    List.iter
      (fun spec ->
        match Core.Vprobe.attach vp spec with
        | Ok _ -> ()
        | Error e -> invalid_arg ("obsbench: " ^ e))
      ladder
  end;
  (match Measure.run_task kernel ~name:"obs-workload" workload with
  | Ok _ -> ()
  | Error e -> invalid_arg ("obsbench: " ^ e));
  let events =
    Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace
  in
  let text =
    String.concat "\n" (List.map Core.Ktrace.format_entry events)
  in
  {
    rs_end_ns = Core.Kernel.now kernel;
    rs_trace_md5 = Digest.to_hex (Digest.string text);
    rs_kernel = kernel;
  }

(* ---- part 3: delay conservation ---- *)

let delay_max_err_ns kernel =
  let rows = Core.Sched.delay_rows kernel.Core.Kernel.sched in
  List.fold_left
    (fun acc r ->
      let sum =
        List.fold_left Int64.add 0L
          [
            r.Core.Sched.dr_oncpu;
            r.Core.Sched.dr_runnable;
            r.Core.Sched.dr_sleep;
            r.Core.Sched.dr_blk_io;
            r.Core.Sched.dr_blk_lock;
            r.Core.Sched.dr_blk_pipe;
          ]
      in
      let err = Int64.abs (Int64.sub sum r.Core.Sched.dr_lifetime) in
      if Int64.compare err acc > 0 then err else acc)
    0L rows

type result = {
  r_detached_ns : float;
  r_attached_ns : float;
  r_identical : bool;
  r_stock_end_ns : int64;
  r_armed_end_ns : int64;
  r_stock_md5 : string;
  r_armed_md5 : string;
  r_probes_fired : (string * int) list;  (** ladder spec -> fire count *)
  r_delay_max_err_ns : int64;
  r_delay_tasks : int;
}

let run () =
  let detached = detached_ns_per_site () in
  let attached = attached_ns_per_fire () in
  let stock = run_one ~config:stock_config ~arm:false in
  let armed = run_one ~config:armed_config ~arm:true in
  let fired =
    let vp = armed.rs_kernel.Core.Kernel.sched.Core.Sched.vprobe in
    List.rev_map
      (fun p -> (p.Core.Vprobe.pr_text, p.Core.Vprobe.pr_fired))
      vp.Core.Vprobe.all
  in
  {
    r_detached_ns = detached;
    r_attached_ns = attached;
    r_identical =
      Int64.equal stock.rs_end_ns armed.rs_end_ns
      && String.equal stock.rs_trace_md5 armed.rs_trace_md5;
    r_stock_end_ns = stock.rs_end_ns;
    r_armed_end_ns = armed.rs_end_ns;
    r_stock_md5 = stock.rs_trace_md5;
    r_armed_md5 = armed.rs_trace_md5;
    r_probes_fired = fired;
    r_delay_max_err_ns = delay_max_err_ns armed.rs_kernel;
    r_delay_tasks =
      List.length (Core.Sched.delay_rows armed.rs_kernel.Core.Kernel.sched);
  }

(* ---- reporting ---- *)

let render r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "  probe site cost: %.2f ns detached (%d sites), %.1f ns \
        attached hist+pred (%d fires)\n"
       r.r_detached_ns guard_iters r.r_attached_ns fire_iters);
  Buffer.add_string b
    (Printf.sprintf
       "  armed vs stock: %s (end %Ld vs %Ld ns, trace %s vs %s)\n"
       (if r.r_identical then "byte-identical" else "DIVERGED")
       r.r_armed_end_ns r.r_stock_end_ns
       (String.sub r.r_armed_md5 0 8)
       (String.sub r.r_stock_md5 0 8));
  Buffer.add_string b "  ladder fire counts:\n";
  List.iter
    (fun (spec, n) ->
      Buffer.add_string b (Printf.sprintf "    %-52s %8d\n" spec n))
    r.r_probes_fired;
  Buffer.add_string b
    (Printf.sprintf
       "  delay accounting: max |sum(buckets) - lifetime| = %Ld ns over \
        %d tasks\n"
       r.r_delay_max_err_ns r.r_delay_tasks);
  Buffer.contents b

let json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"benchmark\": \"obsbench\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"detached_ns_per_site\": %.3f,\n  \"attached_ns_per_fire\": \
        %.1f,\n"
       r.r_detached_ns r.r_attached_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"armed_identical\": %b,\n  \"stock_end_ns\": %Ld,\n\
       \  \"armed_end_ns\": %Ld,\n  \"stock_trace_md5\": %S,\n\
       \  \"armed_trace_md5\": %S,\n"
       r.r_identical r.r_stock_end_ns r.r_armed_end_ns r.r_stock_md5
       r.r_armed_md5);
  Buffer.add_string b "  \"probes_fired\": [\n";
  let n = List.length r.r_probes_fired in
  List.iteri
    (fun i (spec, c) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"spec\": %S, \"fired\": %d}%s\n" spec c
           (if i = n - 1 then "" else ",")))
    r.r_probes_fired;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"delay_max_err_ns\": %Ld,\n  \"delay_tasks\": %d\n}\n"
       r.r_delay_max_err_ns r.r_delay_tasks);
  Buffer.contents b

let write_json r path =
  let oc = open_out path in
  output_string oc (json r);
  close_out oc

let clean r = r.r_identical && Int64.equal r.r_delay_max_err_ns 0L
