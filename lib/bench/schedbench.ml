(** The scheduler ablation ladder: a mixed interactive/batch load stepped
    from a single-core round-robin kernel to per-core queues, wake
    affinity, reschedule IPIs and the MLFQ class with load balancing.

    The workload is identical in every row: three batch spinners that burn
    2 ms slices back to back, and three interactive tasks that sleep 5 ms,
    run ~0.3 ms and sleep again (the burn length cycles through seven
    deterministic steps so the wake phase drifts against the 1 ms tick
    grid — a constant burn would lock to it and every tick-polled wakeup
    would measure the same latency). Each row boots its own
    kernel; the knobs flow through {!Core.Kconfig} exactly as a rebuilt
    kernel would.

    Two summary numbers gate the ladder: wakeup-to-run latency of the
    interactive tasks (mined from Sched_wakeup -> Ctx_switch pairs in the
    kernel's own trace), comparing tick-polled WFI against reschedule
    IPIs; and the batch throughput speedup of the full four-core
    configuration over the single-core baseline. Results go to stdout as
    a table and to [BENCH_sched.json] for the driver. *)

type config_row = {
  rc_name : string;
  rc_cores : int;
  rc_policy : Core.Kconfig.sched_policy;
  rc_wake : Core.Kconfig.wake_model;
  rc_affinity : bool;
  rc_lb_ms : int;
}

(* The ladder. Row 1 is the paper's Prototype 4 shape (one core, RR,
   wakeups free). "per-core-queues" models WFI honestly — an idle core
   notices queued work only at its next tick — which is the baseline the
   IPI row is measured against. *)
let ladder =
  [
    {
      rc_name = "single-core-rr";
      rc_cores = 1;
      rc_policy = Core.Kconfig.Sched_rr;
      rc_wake = Core.Kconfig.Wake_direct;
      rc_affinity = false;
      rc_lb_ms = 0;
    };
    {
      rc_name = "per-core-queues";
      rc_cores = 4;
      rc_policy = Core.Kconfig.Sched_rr;
      rc_wake = Core.Kconfig.Wake_tick;
      rc_affinity = false;
      rc_lb_ms = 0;
    };
    {
      rc_name = "+affinity";
      rc_cores = 4;
      rc_policy = Core.Kconfig.Sched_rr;
      rc_wake = Core.Kconfig.Wake_tick;
      rc_affinity = true;
      rc_lb_ms = 0;
    };
    {
      rc_name = "+ipi-wakeup";
      rc_cores = 4;
      rc_policy = Core.Kconfig.Sched_rr;
      rc_wake = Core.Kconfig.Wake_ipi;
      rc_affinity = true;
      rc_lb_ms = 0;
    };
    {
      rc_name = "+mlfq+balance";
      rc_cores = 4;
      rc_policy = Core.Kconfig.Sched_mlfq;
      rc_wake = Core.Kconfig.Wake_ipi;
      rc_affinity = true;
      rc_lb_ms = 16;
    };
  ]

let kconfig_of row =
  {
    Core.Kconfig.full with
    Core.Kconfig.multicore = row.rc_cores > 1;
    sched_policy = row.rc_policy;
    wake_model = row.rc_wake;
    wake_affinity = row.rc_affinity;
    load_balance_ms = row.rc_lb_ms;
    (* the sanitizer rides along: zero virtual cycles, so every number
       below is identical with it off — and the bench doubles as a
       lockdep/deadlock soak test *)
    kcheck = true;
    (* kperf rides along too, under the same zero-cycle contract *)
    trace_per_core_rings = true;
    profile_hz = 100;
    metrics = true;
  }

(* ---- workload ---- *)

let n_batch = 3
let n_interactive = 3
let batch_burn_cycles = 2_000_000 (* 2 ms at 1 GHz *)
let inter_sleep_ms = 5
let inter_burn_cycles = 300_000 (* 0.3 ms: enough to drift the phase *)
let warmup_ns = Sim.Engine.ms 500
let measure_ns = Sim.Engine.sec 2

(* Batch tasks declare themselves greedy and interactive tasks meek in
   every row — under RR the nice value is ignored, so the workload stays
   byte-identical across rows. *)
let spawn_workload kernel =
  let batch_iters = Array.make n_batch 0 in
  let inter_iters = Array.make n_interactive 0 in
  let batch_pids =
    Array.init n_batch (fun i ->
        (Core.Kernel.spawn_user kernel
           ~name:(Printf.sprintf "sb-batch%d" i)
           (fun () ->
             ignore (User.Usys.nice 5);
             while true do
               User.Usys.burn batch_burn_cycles;
               batch_iters.(i) <- batch_iters.(i) + 1
             done;
             0))
          .Core.Task.pid)
  in
  let inter_pids =
    Array.init n_interactive (fun i ->
        (Core.Kernel.spawn_user kernel
           ~name:(Printf.sprintf "sb-inter%d" i)
           (fun () ->
             ignore (User.Usys.nice (-5));
             while true do
               ignore (User.Usys.sleep inter_sleep_ms);
               let jitter = (i + (3 * inter_iters.(i))) mod 7 in
               User.Usys.burn (inter_burn_cycles + (89_000 * jitter));
               inter_iters.(i) <- inter_iters.(i) + 1
             done;
             0))
          .Core.Task.pid)
  in
  (batch_iters, inter_iters, batch_pids, inter_pids)

(* ---- trace mining: wakeup-to-run latency of the interactive tasks ---- *)

(* A wakeup's latency ends at the Ctx_switch that dispatches the woken
   pid. Unmatched wakeups (still queued when the window closes) drop.
   Samples land in a shared log-linear histogram (the same
   {!Core.Kperf.Hist} the kernel's own latency metrics use) instead of a
   private sorted-array percentile. *)
let wakeup_hist trace ~pids ~from_ns ~until_ns =
  let interesting = Array.to_list pids in
  let pending : (int, int64) Hashtbl.t = Hashtbl.create 8 in
  let h = Core.Kperf.Hist.create () in
  List.iter
    (fun e ->
      if
        Int64.compare e.Core.Ktrace.ts_ns from_ns >= 0
        && Int64.compare e.Core.Ktrace.ts_ns until_ns <= 0
      then begin
        (match Evsel.sched_wakeup e.Core.Ktrace.ev with
        | Some pid when List.mem pid interesting ->
            Hashtbl.replace pending pid e.Core.Ktrace.ts_ns
        | Some _ | None -> ());
        match Evsel.ctx_switch e.Core.Ktrace.ev with
        | Some (_, pid) -> (
            match Hashtbl.find_opt pending pid with
            | Some woke ->
                Hashtbl.remove pending pid;
                Core.Kperf.Hist.record h (Int64.sub e.Core.Ktrace.ts_ns woke)
            | None -> ())
        | None -> ()
      end)
    (Core.Ktrace.dump trace);
  h

(* ---- per-configuration run ---- *)

type row = {
  r_config : config_row;
  batch_per_s : float;  (** batch iterations/s, all spinners *)
  inter_per_s : float;
  wake_samples : int;
  wake_p50_us : float;
  wake_p95_us : float;
  wake_p99_us : float;
  run_delay_avg_us : float;  (** all dispatches, from the kernel's stats *)
  migrations : int;
  steals : int;
  balance_moves : int;
  ipis : int;
}

type stat_snap = {
  sn_migrations : int;
  sn_steals : int;
  sn_balance : int;
  sn_ipis : int;
  sn_delay_count : int;
  sn_delay_total : int64;
}

let snap_stats kernel cores =
  let acc =
    ref
      {
        sn_migrations = 0;
        sn_steals = 0;
        sn_balance = 0;
        sn_ipis = 0;
        sn_delay_count = 0;
        sn_delay_total = 0L;
      }
  in
  for c = 0 to cores - 1 do
    let s = Core.Sched.stats kernel.Core.Kernel.sched c in
    acc :=
      {
        sn_migrations = !acc.sn_migrations + s.Core.Sched.migrations;
        sn_steals = !acc.sn_steals + s.Core.Sched.steals;
        sn_balance = !acc.sn_balance + s.Core.Sched.balance_moves;
        sn_ipis = !acc.sn_ipis + s.Core.Sched.ipis_recv;
        sn_delay_count = !acc.sn_delay_count + s.Core.Sched.delay_count;
        sn_delay_total = Int64.add !acc.sn_delay_total s.Core.Sched.delay_total_ns;
      }
  done;
  !acc

let run_config rc =
  let kernel =
    Micro.fresh_kernel
      ~platform:(Scale.platform_with_cores rc.rc_cores)
      ~config:(kconfig_of rc) ()
  in
  let batch_iters, inter_iters, _, inter_pids = spawn_workload kernel in
  Core.Kernel.run_for kernel warmup_ns;
  let from_ns = Core.Kernel.now kernel in
  let batch0 = Array.fold_left ( + ) 0 batch_iters in
  let inter0 = Array.fold_left ( + ) 0 inter_iters in
  let snap0 = snap_stats kernel rc.rc_cores in
  Core.Kernel.run_for kernel measure_ns;
  let until_ns = Core.Kernel.now kernel in
  let snap1 = snap_stats kernel rc.rc_cores in
  let lat =
    wakeup_hist kernel.Core.Kernel.sched.Core.Sched.trace ~pids:inter_pids
      ~from_ns ~until_ns
  in
  let secs = Sim.Engine.to_sec (Int64.sub until_ns from_ns) in
  let delay_count = snap1.sn_delay_count - snap0.sn_delay_count in
  let delay_total = Int64.sub snap1.sn_delay_total snap0.sn_delay_total in
  {
    r_config = rc;
    batch_per_s =
      float_of_int (Array.fold_left ( + ) 0 batch_iters - batch0) /. secs;
    inter_per_s =
      float_of_int (Array.fold_left ( + ) 0 inter_iters - inter0) /. secs;
    wake_samples = Core.Kperf.Hist.count lat;
    wake_p50_us = Core.Kperf.Hist.percentile_us lat 0.50;
    wake_p95_us = Core.Kperf.Hist.percentile_us lat 0.95;
    wake_p99_us = Core.Kperf.Hist.percentile_us lat 0.99;
    run_delay_avg_us =
      (if delay_count = 0 then 0.0
       else Int64.to_float delay_total /. float_of_int delay_count /. 1e3);
    migrations = snap1.sn_migrations - snap0.sn_migrations;
    steals = snap1.sn_steals - snap0.sn_steals;
    balance_moves = snap1.sn_balance - snap0.sn_balance;
    ipis = snap1.sn_ipis - snap0.sn_ipis;
  }

let run () = List.map run_config ladder

(* ---- reporting ---- *)

let find rows name =
  List.find (fun r -> String.equal r.r_config.rc_name name) rows

(* Tick-polled WFI vs reschedule IPI, otherwise-identical configs. *)
let wakeup_improvement rows =
  (find rows "+affinity").wake_p50_us /. (find rows "+ipi-wakeup").wake_p50_us

let multicore_speedup rows =
  (find rows "+mlfq+balance").batch_per_s /. (find rows "single-core-rr").batch_per_s

let render rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "  %-16s %8s %8s %9s %9s %9s %9s %6s %6s %5s %5s\n"
       "config" "batch/s" "inter/s" "wake p50" "p95 (us)" "p99 (us)"
       "delay avg" "migr" "steal" "bal" "ipi");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-16s %8.1f %8.1f %9.1f %9.1f %9.1f %9.1f %6d %6d %5d %5d\n"
           r.r_config.rc_name r.batch_per_s r.inter_per_s r.wake_p50_us
           r.wake_p95_us r.wake_p99_us r.run_delay_avg_us r.migrations
           r.steals r.balance_moves r.ipis))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "  remote wakeup p50, tick-polling vs IPI: %.1fx lower; multicore \
        batch speedup: %.2fx\n"
       (wakeup_improvement rows) (multicore_speedup rows));
  Buffer.contents b

let json rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"benchmark\": \"schedbench\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"batch_tasks\": %d,\n  \"interactive_tasks\": %d,\n\
       \  \"batch_burn_cycles\": %d,\n  \"interactive_sleep_ms\": %d,\n\
       \  \"interactive_burn_cycles\": %d,\n  \"measure_s\": %.1f,\n"
       n_batch n_interactive batch_burn_cycles inter_sleep_ms
       inter_burn_cycles
       (Sim.Engine.to_sec measure_ns));
  Buffer.add_string b "  \"configs\": [\n";
  List.iteri
    (fun i r ->
      let c = r.r_config in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"cores\": %d, \"policy\": %S, \"wake_model\": \
            %S, \"wake_affinity\": %b, \"load_balance_ms\": %d, \
            \"batch_iters_per_s\": %.2f, \"interactive_iters_per_s\": %.2f, \
            \"wakeup_samples\": %d, \"wakeup_p50_us\": %.2f, \
            \"wakeup_p95_us\": %.2f, \"wakeup_p99_us\": %.2f, \
            \"run_delay_avg_us\": %.2f, \"migrations\": %d, \"steals\": %d, \
            \"balance_moves\": %d, \"ipis\": %d}%s\n"
           c.rc_name c.rc_cores
           (match c.rc_policy with
           | Core.Kconfig.Sched_rr -> "rr"
           | Core.Kconfig.Sched_mlfq -> "mlfq")
           (match c.rc_wake with
           | Core.Kconfig.Wake_direct -> "direct"
           | Core.Kconfig.Wake_tick -> "tick"
           | Core.Kconfig.Wake_ipi -> "ipi")
           c.rc_affinity c.rc_lb_ms r.batch_per_s r.inter_per_s r.wake_samples
           r.wake_p50_us r.wake_p95_us r.wake_p99_us r.run_delay_avg_us
           r.migrations r.steals r.balance_moves r.ipis
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"remote_wakeup_improvement\": %.3f,\n\
       \  \"multicore_speedup\": %.3f\n"
       (wakeup_improvement rows) (multicore_speedup rows));
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_json rows file =
  let oc = open_out file in
  output_string oc (json rows);
  close_out oc
