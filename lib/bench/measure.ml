(** Measurement plumbing shared by every experiment.

    All quantities come out of the simulation: latencies are virtual-time
    deltas around syscall loops, FPS counts Frame_present trace events
    inside a window that excludes warm-up (the paper uses a 20 s warm-up;
    we scale it down with the documented measurement windows), and
    throughput is bytes over virtual seconds. *)

type fps_sample = { fps : float; frames : int; window_s : float }

(* Drive the engine until [stop] returns true or the virtual clock passes
   [deadline]. *)
let drive kernel ~deadline ~stop =
  let engine = kernel.Core.Kernel.board.Hw.Board.engine in
  let continue_ = ref true in
  while
    !continue_
    && (not (stop ()))
    && Int64.compare (Sim.Engine.now engine) deadline < 0
  do
    if not (Sim.Engine.step engine) then continue_ := false
  done

(* Run [f] as a user task to completion; returns its result and the
   virtual time it took. *)
let run_task kernel ?(timeout = Sim.Engine.sec 300) ~name f =
  let result = ref None in
  let t0 = Core.Kernel.now kernel in
  ignore
    (Core.Kernel.spawn_user kernel ~name (fun () ->
         let r = f () in
         result := Some r;
         0));
  drive kernel
    ~deadline:(Int64.add t0 timeout)
    ~stop:(fun () -> !result <> None);
  match !result with
  | Some r -> Ok (r, Int64.sub (Core.Kernel.now kernel) t0)
  | None -> Error "measure: task did not complete before the deadline"

(* FPS of [pid]'s frame presentations within [from, until]. *)
let fps_between kernel ~pid ~from_ns ~until_ns =
  let frames =
    List.length
      (List.filter
         (fun e ->
           Evsel.frame_present e.Core.Ktrace.ev = Some pid
           && Int64.compare e.Core.Ktrace.ts_ns from_ns >= 0
           && Int64.compare e.Core.Ktrace.ts_ns until_ns <= 0)
         (Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace))
  in
  let window_s = Sim.Engine.to_sec (Int64.sub until_ns from_ns) in
  { fps = float_of_int frames /. window_s; frames; window_s }

(* FPS from the scheduler's persistent per-pid frame counters, immune to
   trace-ring wraparound. *)
let fps_by_counter kernel ~pid ~frames0 ~from_ns ~until_ns =
  let frames =
    Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid - frames0
  in
  let window_s = Sim.Engine.to_sec (Int64.sub until_ns from_ns) in
  { fps = float_of_int frames /. window_s; frames; window_s }

(* Spawn an app from a stage, warm it up, measure FPS over [measure_s]. *)
let app_fps stage ~prog ~argv ~warmup_s ~measure_s =
  let kernel = stage.Proto.Stage.kernel in
  let task = Proto.Stage.start stage prog argv in
  let pid = task.Core.Task.pid in
  Proto.Stage.run_for stage (Sim.Engine.ms (int_of_float (warmup_s *. 1000.))) ;
  let from_ns = Core.Kernel.now kernel in
  let frames0 = Core.Sched.frames_presented kernel.Core.Kernel.sched ~pid in
  Proto.Stage.run_for stage (Sim.Engine.ms (int_of_float (measure_s *. 1000.)));
  let until_ns = Core.Kernel.now kernel in
  fps_by_counter kernel ~pid ~frames0 ~from_ns ~until_ns

(* Mean and stddev over repeated runs with distinct seeds. *)
let repeat ~runs f =
  let stats = Sim.Stats.create () in
  for i = 1 to runs do
    Sim.Stats.add stats (f ~seed:(Int64.of_int (41 + i)))
  done;
  (Sim.Stats.mean stats, Sim.Stats.stddev stats)
