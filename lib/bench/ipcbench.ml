(** The IPC ablation ladder: the xv6 pipe the paper measures stepped up to
    the rebuilt fast path — power-of-two ring buffers with [Bytes.blit]
    bulk copies, edge-triggered wakeups, and the poll(2) syscall.

    Two workloads run against every configuration, each in its own
    freshly booted kernel so the counters stay clean:

    - {b pipe ping-pong}: two processes bounce a 64-byte message over a
      pipe pair; per-round-trip virtual times give p50/p99 and
      round-trips/s. The "+poll" row additionally calls poll(2) before
      each reply read, showing what the multiplexing costs on the fast
      path.
    - {b keyboard→app}: a GPIO input source fires an event every 10 µs
      (a saturating stress stream, not a humane typist) into /dev/events
      while an app consumes them. Without poll the app runs the paper's
      idiom — O_NONBLOCK reads with a 1 ms sleep on EAGAIN — and the
      64-entry driver ring drops events while it sleeps; with poll it
      blocks until events are pending and loses none.

    Results go to stdout as a table and to [BENCH_ipc.json]. The "xv6"
    row is the seed's pipe, bit-identical charge sequence included. *)

type config_row = {
  ic_name : string;
  ic_ring : bool;
  ic_edge : bool;
  ic_poll : bool;  (** app-side: use poll(2) instead of spin/sleep *)
  ic_buf : int;
}

let ladder =
  [
    { ic_name = "xv6"; ic_ring = false; ic_edge = false; ic_poll = false; ic_buf = 512 };
    { ic_name = "+ring-blit"; ic_ring = true; ic_edge = false; ic_poll = false; ic_buf = 4096 };
    { ic_name = "+edge-wake"; ic_ring = true; ic_edge = true; ic_poll = false; ic_buf = 4096 };
    { ic_name = "+poll"; ic_ring = true; ic_edge = true; ic_poll = true; ic_buf = 4096 };
  ]

let kconfig_of row =
  {
    Core.Kconfig.full with
    Core.Kconfig.pipe_ring = row.ic_ring;
    pipe_wake_edge = row.ic_edge;
    pipe_buffer_bytes = row.ic_buf;
    (* zero-cycle sanitizer on: the pingpong/events workloads double as
       a refcount/deadlock soak without moving a single number *)
    kcheck = true;
    (* kperf armed throughout for the same reason: per-core trace rings,
       a 100 Hz sampling profiler and /proc/metrics cost zero virtual
       cycles, so every number below must match an unarmed run *)
    trace_per_core_rings = true;
    profile_hz = 100;
    metrics = true;
  }

let ipc_stats kernel = kernel.Core.Kernel.vfs.Core.Vfs.ipc.Core.Pipe.stats

(* ---- workload A: pipe ping-pong ---- *)

let msg_bytes = 64
let warmup_roundtrips = 200
let measured_roundtrips = 1500

type pingpong = {
  pp_p50_us : float;
  pp_p99_us : float;
  pp_per_s : float;
  pp_wakeups_issued : int;
  pp_wakeups_suppressed : int;
}

let run_pingpong rc =
  let kernel = Micro.fresh_kernel ~config:(kconfig_of rc) () in
  (* round-trip latencies go into the shared log-linear histogram rather
     than a private sorted-sample percentile *)
  let hist = Core.Kperf.Hist.create () in
  let total_ns = ref 0L in
  let msg = Bytes.make msg_bytes 'm' in
  (match
     Measure.run_task kernel ~name:"ipc-pingpong" (fun () ->
         match (User.Usys.pipe (), User.Usys.pipe ()) with
         | Ok (r1, w1), Ok (r2, w2) ->
             let child =
               User.Usys.fork (fun () ->
                   let live = ref true in
                   while !live do
                     match User.Usys.read r1 msg_bytes with
                     | Ok b when Bytes.length b > 0 ->
                         ignore (User.Usys.write w2 b)
                     | Ok _ | Error _ -> live := false
                   done;
                   0)
             in
             let roundtrip () =
               ignore (User.Usys.write w1 msg);
               if rc.ic_poll then
                 ignore (User.Usys.poll [ r2 ] ~timeout_ms:(-1));
               let got = ref 0 in
               while !got < msg_bytes do
                 match User.Usys.read r2 (msg_bytes - !got) with
                 | Ok b when Bytes.length b > 0 -> got := !got + Bytes.length b
                 | Ok _ | Error _ -> got := msg_bytes
               done
             in
             for _ = 1 to warmup_roundtrips do
               roundtrip ()
             done;
             let t_start = Core.Kernel.now kernel in
             for _ = 1 to measured_roundtrips do
               let t0 = Core.Kernel.now kernel in
               roundtrip ();
               Core.Kperf.Hist.record hist
                 (Int64.sub (Core.Kernel.now kernel) t0)
             done;
             total_ns := Int64.sub (Core.Kernel.now kernel) t_start;
             ignore (User.Usys.kill child);
             ignore (User.Usys.wait ());
             0
         | _ -> 1)
   with
  | Ok _ -> ()
  | Error e -> invalid_arg ("ipcbench: " ^ e));
  let stats = ipc_stats kernel in
  {
    pp_p50_us = Core.Kperf.Hist.percentile_us hist 0.50;
    pp_p99_us = Core.Kperf.Hist.percentile_us hist 0.99;
    pp_per_s =
      float_of_int measured_roundtrips /. Sim.Engine.to_sec !total_ns;
    pp_wakeups_issued = stats.Core.Ipcstats.wakeups_issued;
    pp_wakeups_suppressed = stats.Core.Ipcstats.wakeups_suppressed;
  }

(* ---- workload B: keyboard -> app event stream ---- *)

let inject_period_ns = 10_000L (* one event every 10 us: 100k events/s *)
let events_warmup_ns = Sim.Engine.ms 200
let events_measure_ns = Sim.Engine.sec 1

type events = { ev_per_s : float; ev_delivered : int; ev_dropped : int }

let run_events rc =
  let kernel = Micro.fresh_kernel ~config:(kconfig_of rc) () in
  let gpio = kernel.Core.Kernel.board.Hw.Board.gpio in
  let engine = kernel.Core.Kernel.board.Hw.Board.engine in
  (* the event source: alternate press/release of one button forever *)
  let stop = ref false in
  let rec inject down () =
    if not !stop then begin
      (if down then Hw.Gpio.press gpio Hw.Gpio.A
       else Hw.Gpio.release gpio Hw.Gpio.A);
      ignore (Sim.Engine.schedule_after engine inject_period_ns (inject (not down)))
    end
  in
  ignore (Sim.Engine.schedule_after engine inject_period_ns (inject true));
  let consumed = ref 0 in
  ignore
    (Core.Kernel.spawn_user kernel ~name:"ipc-events" (fun () ->
         let fd =
           User.Usys.open_ "/dev/events"
             (Core.Abi.o_rdonly lor Core.Abi.o_nonblock)
         in
         if fd < 0 then -fd
         else begin
           while true do
             if rc.ic_poll then begin
               (* poll: sleep until events are pending, then drain *)
               ignore (User.Usys.poll [ fd ] ~timeout_ms:(-1));
               match User.Usys.read fd 64 with
               | Ok b -> consumed := !consumed + (Bytes.length b / 8)
               | Error _ -> ()
             end
             else begin
               (* the pre-poll idiom: spin O_NONBLOCK, sleep on EAGAIN *)
               match User.Usys.read fd 64 with
               | Ok b -> consumed := !consumed + (Bytes.length b / 8)
               | Error _ -> ignore (User.Usys.sleep 1)
             end
           done;
           0
         end));
  Core.Kernel.run_for kernel events_warmup_ns;
  let c0 = !consumed in
  let d0 = Core.Kbd.dropped kernel.Core.Kernel.kbd in
  let t0 = Core.Kernel.now kernel in
  Core.Kernel.run_for kernel events_measure_ns;
  stop := true;
  let delivered = !consumed - c0 in
  let dropped = Core.Kbd.dropped kernel.Core.Kernel.kbd - d0 in
  let secs = Sim.Engine.to_sec (Int64.sub (Core.Kernel.now kernel) t0) in
  {
    ev_per_s = float_of_int delivered /. secs;
    ev_delivered = delivered;
    ev_dropped = dropped;
  }

(* ---- per-configuration run ---- *)

type row = { r_config : config_row; r_pp : pingpong; r_ev : events }

let run () =
  List.map
    (fun rc -> { r_config = rc; r_pp = run_pingpong rc; r_ev = run_events rc })
    ladder

(* ---- reporting ---- *)

let find rows name =
  List.find (fun r -> String.equal r.r_config.ic_name name) rows

let roundtrip_improvement rows =
  (find rows "xv6").r_pp.pp_p50_us /. (find rows "+poll").r_pp.pp_p50_us

let events_improvement rows =
  (find rows "+poll").r_ev.ev_per_s /. (find rows "xv6").r_ev.ev_per_s

let render rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "  %-12s %8s %8s %9s %9s %8s %8s %9s %8s\n" "config"
       "rt p50" "rt p99" "rtrips/s" "wake iss" "wake sup" "events/s"
       "delivered" "dropped");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-12s %8.1f %8.1f %9.0f %9d %8d %8.0f %9d %8d\n"
           r.r_config.ic_name r.r_pp.pp_p50_us r.r_pp.pp_p99_us
           r.r_pp.pp_per_s r.r_pp.pp_wakeups_issued
           r.r_pp.pp_wakeups_suppressed r.r_ev.ev_per_s r.r_ev.ev_delivered
           r.r_ev.ev_dropped))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "  pipe round-trip p50, xv6 vs full fast path: %.2fx lower; \
        keyboard events/s: %.2fx higher\n"
       (roundtrip_improvement rows) (events_improvement rows));
  Buffer.contents b

let json rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"benchmark\": \"ipcbench\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"message_bytes\": %d,\n  \"measured_roundtrips\": %d,\n\
       \  \"event_period_us\": %.1f,\n  \"event_measure_s\": %.1f,\n"
       msg_bytes measured_roundtrips
       (Int64.to_float inject_period_ns /. 1e3)
       (Sim.Engine.to_sec events_measure_ns));
  Buffer.add_string b "  \"configs\": [\n";
  List.iteri
    (fun i r ->
      let c = r.r_config in
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"pipe_ring\": %b, \"pipe_wake_edge\": %b, \
            \"uses_poll\": %b, \"pipe_buffer_bytes\": %d, \
            \"roundtrip_p50_us\": %.2f, \"roundtrip_p99_us\": %.2f, \
            \"roundtrips_per_s\": %.1f, \"wakeups_issued\": %d, \
            \"wakeups_suppressed\": %d, \"events_per_s\": %.1f, \
            \"events_delivered\": %d, \"events_dropped\": %d}%s\n"
           c.ic_name c.ic_ring c.ic_edge c.ic_poll c.ic_buf r.r_pp.pp_p50_us
           r.r_pp.pp_p99_us r.r_pp.pp_per_s r.r_pp.pp_wakeups_issued
           r.r_pp.pp_wakeups_suppressed r.r_ev.ev_per_s r.r_ev.ev_delivered
           r.r_ev.ev_dropped
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"roundtrip_p50_improvement\": %.3f,\n\
       \  \"events_per_s_improvement\": %.3f\n"
       (roundtrip_improvement rows) (events_improvement rows));
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_json rows file =
  let oc = open_out file in
  output_string oc (json rows);
  close_out oc
