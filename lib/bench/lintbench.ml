(** lintbench — what does static checking cost on this codebase?

    Both analyzers run in-process over the real tree: vlint parses the
    surface syntax of lib/ bin/ tools/ktrace2perfetto, vrace loads the
    [.cmt] typed ASTs of the four simulated-OS libraries. The point of
    the numbers is CI budgeting — the analyzers gate every test run, so
    their wall cost has to stay in the noise next to the 40-second test
    suite — plus a regression guard on coverage: the file counts are
    deterministic, and a clean tree must report zero findings and zero
    stale allowlist entries. *)

type side = {
  l_files : int;
  l_findings : int;
  l_stale : int;
  l_wall_s : float;
}

type t = { l_vlint : side; l_vrace : side }

(* The bench can run from the workspace root (dune exec) or from inside
   _build/default; resolve whichever spelling of a path exists. *)
let resolve candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  let vlint_res, vlint_wall =
    timed (fun () ->
        Vlint_core.run
          ~allow_path:(resolve [ "tools/vlint/allow.txt" ])
          ~design_path:(resolve [ "DESIGN.md" ])
          ~dirs:[ "lib"; "bin"; "tools/ktrace2perfetto" ]
          ())
  in
  (* vrace reads compiled artifacts: from the workspace root they live
     under _build/default, from inside the build tree in place *)
  let cmt_root d = resolve [ "_build/default/" ^ d; d ] in
  let vrace_res, vrace_wall =
    timed (fun () ->
        Vrace_core.run
          ~allow_path:(resolve [ "tools/vrace/allow.txt" ])
          ~roots:
            (List.map cmt_root
               [ "lib/core"; "lib/sim"; "lib/user"; "lib/apps" ])
          ())
  in
  {
    l_vlint =
      {
        l_files = vlint_res.Vlint_core.res_files;
        l_findings = vlint_res.Vlint_core.res_findings;
        l_stale = vlint_res.Vlint_core.res_stale;
        l_wall_s = vlint_wall;
      };
    l_vrace =
      {
        l_files = vrace_res.Vrace_core.res_files;
        l_findings = vrace_res.Vrace_core.res_findings;
        l_stale = vrace_res.Vrace_core.res_stale;
        l_wall_s = vrace_wall;
      };
  }

let clean t =
  t.l_vlint.l_findings = 0
  && t.l_vlint.l_stale = 0
  && t.l_vrace.l_findings = 0
  && t.l_vrace.l_stale = 0

let render t =
  let line name s unit_ =
    Printf.sprintf "  %-6s %4d %s, %d findings, %d stale allows, %.3fs wall\n"
      name s.l_files unit_ s.l_findings s.l_stale s.l_wall_s
  in
  line "vlint" t.l_vlint "source files"
  ^ line "vrace" t.l_vrace "typed units"
  ^ if clean t then "  clean tree\n" else "  NOT CLEAN\n"

let json t =
  let side name s unit_ =
    Printf.sprintf
      "  \"%s\": {\n\
      \    \"%s\": %d,\n\
      \    \"findings\": %d,\n\
      \    \"stale_allows\": %d,\n\
      \    \"wall_s\": %.3f\n\
      \  }"
      name unit_ s.l_files s.l_findings s.l_stale s.l_wall_s
  in
  Printf.sprintf "{\n  \"benchmark\": \"lintbench\",\n%s,\n%s\n}\n"
    (side "vlint" t.l_vlint "source_files")
    (side "vrace" t.l_vrace "typed_units")

let write_json t file =
  let oc = open_out file in
  output_string oc (json t);
  close_out oc
