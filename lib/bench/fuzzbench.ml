(** fuzzbench — throughput and determinism numbers for the scenario
    fuzzer itself.

    Three questions, one seeded run:

    - {b throughput}: full boot→monkey→shutdown sessions per host
      second — this prices the CI budget (how many hostile sessions a
      bounded job can afford);
    - {b cleanliness}: every session in the sweep is expected to pass —
      a failure here is a real finding and fails the bench;
    - {b shrink cost}: a synthetic crash (the [Canary] op spliced into
      the middle of an otherwise ordinary scenario) is delta-debugged
      down; the candidate-run count and the final op count are reported
      and stable, since shrinking is as deterministic as the sessions
      it replays.

    [f_run_hash] digests every session's trace digest in order, so two
    hosts running the same seed must print the same hash — the
    fuzzer-level analogue of the engine's determinism checks. *)

type summary = {
  f_seed : int64;
  f_sessions : int;
  f_ops : int;  (** generated ops across the sweep *)
  f_failures : int;
  f_wall_s : float;
  f_sessions_per_s : float;
  f_shrink_runs : int;  (** candidate sessions ddmin executed *)
  f_shrink_ops_before : int;
  f_shrink_ops_after : int;  (** ops surviving the shrink (expect 1: the canary) *)
  f_run_hash : string;
}

let default_sessions = 100
let default_seed = 0xf00dL

let sessions_from_env () =
  match Sys.getenv_opt "VOS_FUZZ_SESSIONS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> default_sessions)
  | None -> default_sessions

(* Splice the canary into the middle of a generated scenario: the
   shrinker has to strip both flanks to isolate it. *)
let canary_scenario seed =
  let scen = Fuzz.Gen.generate ~faults:false seed in
  let ops = scen.Fuzz.Gen.sc_ops in
  let n = List.length ops in
  let before = List.filteri (fun i _ -> i < n / 2) ops in
  let after = List.filteri (fun i _ -> i >= n / 2) ops in
  { scen with Fuzz.Gen.sc_ops = before @ [ Fuzz.Gen.Canary ] @ after }

let run ?seed ?sessions () =
  let seed = match seed with Some s -> s | None -> default_seed in
  let sessions =
    match sessions with Some n -> n | None -> sessions_from_env ()
  in
  let rng = Sim.Rng.create seed in
  let digests = Buffer.create (sessions * 36) in
  let failures = ref 0 in
  let ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to sessions do
    let scen = Fuzz.Gen.generate (Sim.Rng.next rng) in
    ops := !ops + List.length scen.Fuzz.Gen.sc_ops;
    let r = Fuzz.Session.run scen in
    (match r.Fuzz.Session.r_outcome with
    | Fuzz.Session.Pass -> ()
    | Fuzz.Session.Fail f ->
        incr failures;
        Printf.printf "  FAIL seed 0x%Lx: %s\n%!" scen.Fuzz.Gen.sc_seed
          (Fuzz.Session.failure_to_string f));
    Buffer.add_string digests r.Fuzz.Session.r_digest;
    Buffer.add_char digests '\n'
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (* shrink-cost probe: plant a canary, measure the ddmin bill *)
  let scen = canary_scenario (Int64.logxor seed 0xca4a11L) in
  let failure =
    match (Fuzz.Session.run scen).Fuzz.Session.r_outcome with
    | Fuzz.Session.Fail f -> f
    | Fuzz.Session.Pass -> Fuzz.Session.Crash "canary did not fire"
  in
  let _, stats =
    Fuzz.Shrink.minimize
      ~run:(fun ops ->
        (Fuzz.Session.run { scen with Fuzz.Gen.sc_ops = ops })
          .Fuzz.Session.r_outcome)
      ~failure scen
  in
  {
    f_seed = seed;
    f_sessions = sessions;
    f_ops = !ops;
    f_failures = !failures;
    f_wall_s = wall;
    f_sessions_per_s = (if wall > 0. then float_of_int sessions /. wall else 0.);
    f_shrink_runs = stats.Fuzz.Shrink.sh_runs;
    f_shrink_ops_before = stats.Fuzz.Shrink.sh_ops_before;
    f_shrink_ops_after = stats.Fuzz.Shrink.sh_ops_after;
    f_run_hash = Digest.to_hex (Digest.string (Buffer.contents digests));
  }

let render s =
  Printf.sprintf
    "  seed %Ld: %d sessions, %d ops, %d failures\n\
    \  %.1f sessions/s (%.1fs wall)\n\
    \  canary shrink: %d -> %d ops in %d candidate runs\n\
    \  run hash %s\n"
    s.f_seed s.f_sessions s.f_ops s.f_failures s.f_sessions_per_s s.f_wall_s
    s.f_shrink_ops_before s.f_shrink_ops_after s.f_shrink_runs s.f_run_hash

let json s =
  Printf.sprintf
    "{\n\
    \  \"benchmark\": \"fuzzbench\",\n\
    \  \"seed\": %Ld,\n\
    \  \"sessions\": %d,\n\
    \  \"ops\": %d,\n\
    \  \"failures\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"sessions_per_s\": %.1f,\n\
    \  \"shrink_runs\": %d,\n\
    \  \"shrink_ops_before\": %d,\n\
    \  \"shrink_ops_after\": %d,\n\
    \  \"run_hash\": %S\n\
     }\n"
    s.f_seed s.f_sessions s.f_ops s.f_failures s.f_wall_s s.f_sessions_per_s
    s.f_shrink_runs s.f_shrink_ops_before s.f_shrink_ops_after s.f_run_hash

let write_json s file =
  let oc = open_out file in
  output_string oc (json s);
  close_out oc
