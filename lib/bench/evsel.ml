(** Trace-event selectors for the bench miners.

    The miners (latency, measure, schedbench, tracebench) walk the Ktrace
    ring looking for a handful of event kinds. Matching with a wildcard
    at each site would hide new event variants from audit (vlint R004),
    so every selector here spells the ignored constructors out, once —
    adding a [Ktrace.event] constructor fails this file's build until it
    is classified below. *)

open Core.Ktrace

let frame_present = function
  | Frame_present pid -> Some pid
  | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ | Irq_enter _
  | Irq_exit _ | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _
  | Kbd_report | Event_delivered _ | Poll_return _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None

let syscall_enter = function
  | Syscall_enter (pid, _) -> Some pid
  | Syscall_exit _ | Ctx_switch _ | Irq_enter _ | Irq_exit _
  | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _ | Kbd_report
  | Event_delivered _ | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None

let syscall_exit = function
  | Syscall_exit (pid, _) -> Some pid
  | Syscall_enter _ | Ctx_switch _ | Irq_enter _ | Irq_exit _
  | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _ | Kbd_report
  | Event_delivered _ | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None

let sched_wakeup = function
  | Sched_wakeup pid -> Some pid
  | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ | Irq_enter _
  | Irq_exit _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _ | Kbd_report
  | Event_delivered _ | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None

let ctx_switch = function
  | Ctx_switch (from_pid, to_pid) -> Some (from_pid, to_pid)
  | Syscall_enter _ | Syscall_exit _ | Irq_enter _ | Irq_exit _
  | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _ | Kbd_report
  | Event_delivered _ | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None

let kbd_report = function
  | Kbd_report -> true
  | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ | Irq_enter _
  | Irq_exit _ | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _
  | Event_delivered _ | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      false

let event_delivered = function
  | Event_delivered pid -> Some pid
  | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ | Irq_enter _
  | Irq_exit _ | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _
  | Kbd_report | Poll_return _ | Frame_present _ | Wm_composite
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ | Custom _
  | Span_begin _ | Span_end _ | Task_state _ | Runq_depth _ ->
      None
