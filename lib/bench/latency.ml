(** Figure 11: latency breakdowns.

    (a) Rendering: for each benchmark app, per-frame time split into
    kernel (measured from the trace: syscall enter→exit spans between
    frame presentations) and user time, with the user share divided into
    app logic vs library per the app's profile — matching the paper's
    K/U/L legend.

    (b) Input: a USB key press is injected while the app runs capped at
    60 FPS; the trace gives the driver timestamp (kbd_report), the
    delivery to the app (event_delivered) and the next frame presented
    after delivery. driver→delivery covers the kernel path plus the OS
    indirection (pipe for mario-proc, WM routing for mario-sdl);
    delivery→frame is the app's polling interval. *)

type render_breakdown = {
  rb_app : string;
  frame_ms : float;
  kernel_ms : float;
  app_ms : float;
  lib_ms : float;
}

type input_breakdown = {
  ib_app : string;
  total_ms : float;
  deliver_ms : float;
      (** driver -> first app-side read: kernel queues plus, for polling
          readers, the poll wait; near-zero for mario-proc's blocked
          reader process *)
  respond_ms : float;
      (** read -> next frame presented: any pipe/WM indirection plus the
          frame render *)
}

(* lib share of user time per app (decode/conversion/minisdl vs game
   logic), from the apps' own cost structure *)
let lib_share = function
  | "DOOM" -> 0.18
  | "video (480p)" | "video (720p)" -> 0.45
  | "mario-noinput" -> 0.10
  | "mario-proc" -> 0.12
  | "mario-sdl" -> 0.30
  | _ -> 0.2

let events_of kernel = Core.Ktrace.dump kernel.Core.Kernel.sched.Core.Sched.trace

(* Sum syscall-span time for [pid] between [from_ns] and [until_ns]. *)
let kernel_time_ns kernel ~pid ~from_ns ~until_ns =
  let total = ref 0L in
  let entered = ref None in
  List.iter
    (fun e ->
      if
        Int64.compare e.Core.Ktrace.ts_ns from_ns >= 0
        && Int64.compare e.Core.Ktrace.ts_ns until_ns <= 0
      then begin
        if Evsel.syscall_enter e.Core.Ktrace.ev = Some pid then
          entered := Some e.Core.Ktrace.ts_ns
        else if Evsel.syscall_exit e.Core.Ktrace.ev = Some pid then
          match !entered with
          | Some t0 ->
              total := Int64.add !total (Int64.sub e.Core.Ktrace.ts_ns t0);
              entered := None
          | None -> ()
      end)
    (events_of kernel);
  !total

let render_breakdown_for case =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  let task =
    Proto.Stage.start stage case.Appbench.prog case.Appbench.argv
  in
  let pid = task.Core.Task.pid in
  Proto.Stage.run_for stage
    (Sim.Engine.ms (int_of_float (case.Appbench.warmup_s *. 1000.)));
  let from_ns = Core.Kernel.now kernel in
  Proto.Stage.run_for stage (Sim.Engine.sec 4);
  let until_ns = Core.Kernel.now kernel in
  let fps = (Measure.fps_between kernel ~pid ~from_ns ~until_ns).Measure.fps in
  let frame_ms = if fps > 0.0 then 1000.0 /. fps else 0.0 in
  let kernel_total = kernel_time_ns kernel ~pid ~from_ns ~until_ns in
  let frames = fps *. Sim.Engine.to_sec (Int64.sub until_ns from_ns) in
  let kernel_ms =
    if frames > 0.0 then Sim.Engine.to_ms kernel_total /. frames else 0.0
  in
  let user_ms = Float.max 0.0 (frame_ms -. kernel_ms) in
  let lshare = lib_share case.Appbench.case_name in
  {
    rb_app = case.Appbench.case_name;
    frame_ms;
    kernel_ms;
    app_ms = user_ms *. (1.0 -. lshare);
    lib_ms = user_ms *. lshare;
  }

let render_all () = List.map render_breakdown_for Appbench.cases

(* ---- input latency ---- *)

let input_case ~prog ~argv ~name =
  let stage = Proto.Stage.boot ~prototype:5 () in
  let kernel = stage.Proto.Stage.kernel in
  let board = kernel.Core.Kernel.board in
  ignore (Proto.Stage.start stage prog argv);
  Proto.Stage.run_for stage (Sim.Engine.sec 5) (* past app asset loading *);
  (* inject 25 key taps, 120 ms apart *)
  let presses = 25 in
  for _ = 1 to presses do
    Hw.Usb.key_down board.Hw.Board.usb 0x4f (* right arrow *);
    Proto.Stage.run_for stage (Sim.Engine.ms 60);
    Hw.Usb.key_up board.Hw.Board.usb 0x4f;
    Proto.Stage.run_for stage (Sim.Engine.ms 60)
  done;
  (* mine the trace: for each kbd_report, find the next delivery and the
     next frame after that *)
  let events = events_of kernel in
  let deliver_stats = Sim.Stats.create () in
  let frame_stats = Sim.Stats.create () in
  let rec scan = function
    | [] -> ()
    | e :: rest ->
        if not (Evsel.kbd_report e.Core.Ktrace.ev) then scan rest
        else begin
          let delivery =
            List.find_opt
              (fun e2 -> Evsel.event_delivered e2.Core.Ktrace.ev <> None)
              rest
          in
          (match delivery with
          | Some d ->
              Sim.Stats.add deliver_stats
                (Sim.Engine.to_ms (Int64.sub d.Core.Ktrace.ts_ns e.Core.Ktrace.ts_ns));
              let frame =
                List.find_opt
                  (fun e2 ->
                    Evsel.frame_present e2.Core.Ktrace.ev <> None
                    && Int64.compare e2.Core.Ktrace.ts_ns d.Core.Ktrace.ts_ns > 0)
                  rest
              in
              (match frame with
              | Some f ->
                  Sim.Stats.add frame_stats
                    (Sim.Engine.to_ms (Int64.sub f.Core.Ktrace.ts_ns d.Core.Ktrace.ts_ns))
              | None -> ())
          | None -> ());
          scan rest
        end
  in
  scan events;
  let deliver = Sim.Stats.mean deliver_stats in
  let respond = Sim.Stats.mean frame_stats in
  {
    ib_app = name;
    total_ms = deliver +. respond;
    deliver_ms = deliver;
    respond_ms = respond;
  }

let input_all () =
  [
    input_case ~prog:"doom" ~argv:[ "doom"; "0"; "60" ] ~name:"DOOM";
    input_case ~prog:"mario" ~argv:[ "mario"; "proc"; "0"; "16" ] ~name:"mario-proc";
    input_case ~prog:"mario" ~argv:[ "mario"; "sdl"; "0"; "16" ] ~name:"mario-sdl";
  ]

let render (renders, inputs) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "(a) rendering latency per frame (ms):\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %8s %8s %8s %8s\n" "app" "total" "K" "U" "L");
  List.iter
    (fun rb ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %8.2f %8.2f %8.2f %8.2f\n" rb.rb_app
           rb.frame_ms rb.kernel_ms rb.app_ms rb.lib_ms))
    renders;
  Buffer.add_string buf "(b) input latency, 60 FPS cap (ms):\n";
  Buffer.add_string buf
    (Printf.sprintf "  %-14s %8s %10s %10s\n" "app" "total" "deliver"
       "respond");
  List.iter
    (fun ib ->
      Buffer.add_string buf
        (Printf.sprintf "  %-14s %8.2f %10.2f %10.2f\n" ib.ib_app ib.total_ms
           ib.deliver_ms ib.respond_ms))
    inputs;
  Buffer.contents buf
