(** The block I/O ablation ladder: sequential read, random 4 KB write and
    a mixed workload on the FAT32 partition, stepping from the seed's
    write-through cache to the full write-back + read-ahead + coalescing
    fast path.

    The ladder keeps the paper's §5.2 row (the range bypass) so the old
    comparison stays reproducible, and measures what the new path buys on
    top of it. Each configuration boots its own kernel — the knob flows
    through {!Core.Kconfig} exactly as a rebuilt kernel would, never as a
    special case in the workload. Results go to stdout as a table and to
    [BENCH_io.json] for the driver. *)

type config_row = {
  cf_name : string;
  cf_writeback : bool;
  cf_readahead : int;
  cf_coalesce : bool;
  cf_bypass : bool;
}

(* The ladder. "write-through" is the pre-§5.2 cache (every range through
   the single-block path): the seed baseline the acceptance ratios are
   against. "+range-bypass" is the seed's shipping default. The last three
   rows are this PR's path; they route ranges through the cache again
   because read-ahead supersedes the bypass (one command per 32 sectors
   instead of one per range, and it also serves the single-block reads the
   bypass never helped). *)
let ladder =
  [
    {
      cf_name = "write-through";
      cf_writeback = false;
      cf_readahead = 0;
      cf_coalesce = false;
      cf_bypass = false;
    };
    {
      cf_name = "+range-bypass (5.2)";
      cf_writeback = false;
      cf_readahead = 0;
      cf_coalesce = false;
      cf_bypass = true;
    };
    {
      cf_name = "+write-back";
      cf_writeback = true;
      cf_readahead = 0;
      cf_coalesce = false;
      cf_bypass = false;
    };
    {
      cf_name = "+read-ahead";
      cf_writeback = true;
      cf_readahead = 32;
      cf_coalesce = false;
      cf_bypass = false;
    };
    {
      cf_name = "+coalescing (full)";
      cf_writeback = true;
      cf_readahead = 32;
      cf_coalesce = true;
      cf_bypass = false;
    };
  ]

let kconfig_of row =
  {
    Core.Kconfig.full with
    Core.Kconfig.writeback = row.cf_writeback;
    readahead_blocks = row.cf_readahead;
    sd_coalescing = row.cf_coalesce;
    range_io_bypass = row.cf_bypass;
    (* kperf armed: tracing, the sampling profiler and /proc/metrics
       charge zero virtual cycles, so the I/O numbers must be
       byte-identical to an unarmed run *)
    trace_per_core_rings = true;
    profile_hz = 100;
    metrics = true;
  }

(* ---- workloads ---- *)

let file_bytes = 256 * 1024
let chunk = 4096
let rand_writes = 64
let path = "/d/io.dat"

(* Random 4 KB overwrites at cluster-aligned offsets; reports the mean
   per-operation latency in ms. Under write-through each op pays the
   device's polled range write; under write-back it marks blocks dirty
   and the daemon pays the device later. *)
let rand_write_ms kernel ~seed ~iters =
  let rng = Sim.Rng.create seed in
  let clusters = file_bytes / chunk in
  let data = Bytes.make chunk 'w' in
  match
    Measure.run_task kernel ~name:"iobench-randwrite" (fun () ->
        let fd = User.Usys.open_ path Core.Abi.o_rdwr in
        assert (fd >= 0);
        for _ = 1 to iters do
          let c = Sim.Rng.int rng clusters in
          ignore (User.Usys.lseek fd (c * chunk) Core.Abi.seek_set);
          let n = User.Usys.write fd data in
          assert (n = chunk)
        done;
        ignore (User.Usys.close fd);
        0)
  with
  | Ok (_, ns) -> Sim.Engine.to_ms ns /. float_of_int iters
  | Error e -> invalid_arg e

(* Alternating sequential reads and overwrites across the whole file;
   reports aggregate KB/s. *)
let mixed_kbps kernel =
  let data = Bytes.make chunk 'm' in
  let chunks = file_bytes / chunk in
  match
    Measure.run_task kernel ~name:"iobench-mixed" (fun () ->
        let fd = User.Usys.open_ path Core.Abi.o_rdwr in
        assert (fd >= 0);
        for i = 0 to chunks - 1 do
          if i mod 2 = 0 then (
            match User.Usys.read fd chunk with
            | Ok b -> assert (Bytes.length b = chunk)
            | Error _ -> assert false)
          else begin
            ignore (User.Usys.lseek fd (i * chunk) Core.Abi.seek_set);
            let n = User.Usys.write fd data in
            assert (n = chunk)
          end
        done;
        ignore (User.Usys.close fd);
        0)
  with
  | Ok (_, ns) -> float_of_int file_bytes /. 1024.0 /. Sim.Engine.to_sec ns
  | Error e -> invalid_arg e

(* ---- per-configuration run ---- *)

type row = {
  r_config : config_row;
  seq_kbps : float;
  randw_ms : float;
  mixed_kbps : float;
  hits : int;
  misses : int;
  prefetched : int;
  flush_batches : int;
  flushed_blocks : int;
  sd_merged : int;
}

let run_config row =
  let kernel = Micro.fresh_kernel ~config:(kconfig_of row) () in
  Micro.prepare_file kernel ~path ~bytes:file_bytes;
  let seq_kbps =
    Micro.fs_throughput_kbps kernel ~path ~bytes:file_bytes ~chunk
      ~direction:`Read
  in
  let randw_ms = rand_write_ms kernel ~seed:11L ~iters:rand_writes in
  let mixed = mixed_kbps kernel in
  (* everything dirty reaches the card before we read the stats *)
  Core.Kernel.shutdown kernel;
  let bc = Option.get kernel.Core.Kernel.fat_bc in
  {
    r_config = row;
    seq_kbps;
    randw_ms;
    mixed_kbps = mixed;
    hits = Core.Bufcache.hits bc;
    misses = Core.Bufcache.misses bc;
    prefetched = Core.Bufcache.prefetched bc;
    flush_batches = Core.Bufcache.flush_batches bc;
    flushed_blocks = Core.Bufcache.flushed_blocks bc;
    sd_merged = Hw.Sd.merged_count kernel.Core.Kernel.board.Hw.Board.sd;
  }

let run () = List.map run_config ladder

(* ---- the journal ladder ----

   Same fsync-heavy workload on the xv6 rootfs with the write-ahead
   journal off (the paper's filesystem) and on: 64 x 4 KB appends with an
   fsync every 8 writes. Reports throughput plus what the journal did. *)

type journal_row = {
  j_name : string;
  j_journal : bool;
  j_kbps : float;
  j_commits : int;
  j_replayed : int;
  j_barriers : int;
}

let journal_writes = 64
let journal_fsync_every = 8

let run_journal_config ~journal =
  let config =
    {
      Core.Kconfig.full with
      Core.Kconfig.journal;
      writeback = journal;
      trace_per_core_rings = true;
      profile_hz = 100;
      metrics = true;
    }
  in
  let kernel = Micro.fresh_kernel ~config () in
  let data = Bytes.make chunk 'j' in
  let kbps =
    match
      Measure.run_task kernel ~name:"iobench-journal" (fun () ->
          let fd =
            User.Usys.open_ "/j.dat" (Core.Abi.o_create lor Core.Abi.o_rdwr)
          in
          assert (fd >= 0);
          for i = 1 to journal_writes do
            let n = User.Usys.write fd data in
            assert (n = chunk);
            if i mod journal_fsync_every = 0 then
              assert (User.Usys.fsync fd = 0)
          done;
          ignore (User.Usys.close fd);
          0)
    with
    | Ok (_, ns) ->
        float_of_int (journal_writes * chunk) /. 1024.0 /. Sim.Engine.to_sec ns
    | Error e -> invalid_arg e
  in
  let rootfs = kernel.Core.Kernel.rootfs in
  let commits = Fs.Xv6fs.log_commits rootfs in
  let replayed = Fs.Xv6fs.log_replayed rootfs in
  let barriers = Core.Bufcache.barrier_count kernel.Core.Kernel.root_bc in
  Core.Kernel.shutdown kernel;
  {
    j_name = (if journal then "journal" else "no-journal");
    j_journal = journal;
    j_kbps = kbps;
    j_commits = commits;
    j_replayed = replayed;
    j_barriers = barriers;
  }

let run_journal () =
  [ run_journal_config ~journal:false; run_journal_config ~journal:true ]

(* ---- reporting ---- *)

let baseline rows = List.hd rows
let final rows = List.nth rows (List.length rows - 1)

let seq_speedup rows = (final rows).seq_kbps /. (baseline rows).seq_kbps
let randw_speedup rows = (baseline rows).randw_ms /. (final rows).randw_ms

let render_journal jrows =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "  %-22s %10s %8s %9s %9s\n" "rootfs config" "KB/s"
       "commits" "replayed" "barriers");
  List.iter
    (fun j ->
      Buffer.add_string b
        (Printf.sprintf "  %-22s %10.0f %8d %9d %9d\n" j.j_name j.j_kbps
           j.j_commits j.j_replayed j.j_barriers))
    jrows;
  Buffer.contents b

let render rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "  %-22s %10s %12s %10s %7s %7s %6s %7s %7s %7s\n" "config"
       "seq KB/s" "randw ms/op" "mix KB/s" "hits" "misses" "pref" "batches"
       "blocks" "merged");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-22s %10.0f %12.3f %10.0f %7d %7d %6d %7d %7d %7d\n"
           r.r_config.cf_name r.seq_kbps r.randw_ms r.mixed_kbps r.hits r.misses
           r.prefetched r.flush_batches r.flushed_blocks r.sd_merged))
    rows;
  Buffer.add_string b
    (Printf.sprintf
       "  full vs write-through: %.2fx sequential read, %.2fx random-write latency\n"
       (seq_speedup rows) (randw_speedup rows));
  Buffer.contents b

let json ?(journal = []) rows =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"benchmark\": \"iobench\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"file_bytes\": %d,\n  \"chunk_bytes\": %d,\n  \"rand_writes\": %d,\n"
       file_bytes chunk rand_writes);
  Buffer.add_string b "  \"configs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"name\": %S, \"writeback\": %b, \"readahead_blocks\": %d, \
            \"sd_coalescing\": %b, \"range_io_bypass\": %b, \
            \"seq_read_kbps\": %.1f, \"rand_write_ms_per_op\": %.4f, \
            \"mixed_kbps\": %.1f, \"cache_hits\": %d, \"cache_misses\": %d, \
            \"prefetched_blocks\": %d, \"flush_batches\": %d, \
            \"flushed_blocks\": %d, \"sd_merged_requests\": %d}%s\n"
           r.r_config.cf_name r.r_config.cf_writeback r.r_config.cf_readahead
           r.r_config.cf_coalesce r.r_config.cf_bypass r.seq_kbps r.randw_ms
           r.mixed_kbps r.hits r.misses r.prefetched r.flush_batches
           r.flushed_blocks r.sd_merged
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string b "  ],\n";
  if journal <> [] then begin
    Buffer.add_string b "  \"journal_configs\": [\n";
    List.iteri
      (fun i j ->
        Buffer.add_string b
          (Printf.sprintf
             "    {\"name\": %S, \"journal\": %b, \"fsync_kbps\": %.1f, \
              \"commits\": %d, \"replayed\": %d, \"barriers\": %d}%s\n"
             j.j_name j.j_journal j.j_kbps j.j_commits j.j_replayed j.j_barriers
             (if i = List.length journal - 1 then "" else ",")))
      journal;
    Buffer.add_string b "  ],\n"
  end;
  Buffer.add_string b
    (Printf.sprintf
       "  \"seq_read_speedup_vs_writethrough\": %.3f,\n\
       \  \"rand_write_latency_speedup_vs_writethrough\": %.3f\n"
       (seq_speedup rows) (randw_speedup rows));
  Buffer.add_string b "}\n";
  Buffer.contents b

let write_json ?journal rows file =
  let oc = open_out file in
  output_string oc (json ?journal rows);
  close_out oc
