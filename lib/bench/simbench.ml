(** simbench — the host-parallel simulation engine benchmarking itself.

    Two questions, answered in [BENCH_sim.json]:

    - {b what does the sequential hot path cost?} Part 1 times the
      engine's pop+fire cycle — plain, and with half the events
      cancelled — against the pre-tombstone numbers measured on the seed
      engine, whose [cancel] kept a hashtable probed on every pop.

    - {b what does [sim_domains] buy?} Part 2 runs three heavyweight
      scenarios (the miner farm saturating four simulated cores with
      offloaded SHA-256 batches, a launcher desktop session under key
      presses, and schedbench's multicore batch spinners) at
      [sim_domains] ∈ {1, 2, 4}. Each run's per-event host cost is
      sampled slice by slice into a {!Core.Kperf.Hist}; the report gives
      events/sec, mean batch width, and wall-clock speedup against the
      sequential row. Every row also hashes its merged ktrace machine
      dump — the hashes must agree across the ladder, the bench's
      restatement of the determinism proof in [test/test_par.ml].

    The miner is the row that parallelizes: each 64-nonce batch is one
    {!Sim.Engine.schedule_par} compute (~100 µs of host double-SHA-256),
    and with four cores mining there are four such computes in flight at
    any instant, one per affinity tag. The desktop and schedbatch rows
    schedule no Par events at all; they are the honest ≈1.0x floor
    showing the pool costs nothing when there is nothing to steal. *)

(* ---- part 1: sequential pop cost ---- *)

(* Measured on the seed engine (hashtable cancellation) by the same
   window loop below, same host class; kept as the comparison point. *)
let seed_plain_pop_ns = 672.7
let seed_cancelled_pop_ns = 1052.9

let pop_window = 4096
let pop_windows = 100

let pop_cost ~cancel_half =
  let hist = Core.Kperf.Hist.create () in
  for _ = 1 to pop_windows do
    let e = Sim.Engine.create () in
    let sink = ref 0 in
    let ids =
      Array.init pop_window (fun i ->
          Sim.Engine.schedule_at e (Int64.of_int (i + 1)) (fun () -> incr sink))
    in
    if cancel_half then
      Array.iteri (fun i id -> if i land 1 = 0 then Sim.Engine.cancel e id) ids;
    let t0 = Unix.gettimeofday () in
    Sim.Engine.run e ();
    let dt = Unix.gettimeofday () -. t0 in
    let fired = if cancel_half then pop_window / 2 else pop_window in
    Core.Kperf.Hist.record hist
      (Int64.of_float (dt *. 1e9 /. float_of_int fired))
  done;
  hist

(* ---- part 2: heavyweight scenarios across the domains ladder ---- *)

let domains_ladder = [ 1; 2; 4 ]
let slices = 40

type scenario = {
  sc_name : string;
  sc_setup : domains:int -> Proto.Stage.t;  (** boot + start the workload *)
  sc_tick : Proto.Stage.t -> int -> unit;  (** input injection per slice *)
  sc_virtual : int64;  (** total virtual run, divided into [slices] *)
}

let no_tick _ _ = ()

let boot_traced ~domains =
  Proto.Stage.boot ~prototype:5
    ~config_tweak:(fun c ->
      {
        c with
        Core.Kconfig.trace_per_core_rings = true;
        sim_domains = domains;
      })
    ()

(* Four miner threads, difficulty 34: no block is ever found inside the
   window, so all four cores hash flat out for the whole run — the same
   never-finishing setup scale.ml uses for Figure 10's throughput. *)
let miner =
  {
    sc_name = "miner";
    sc_setup =
      (fun ~domains ->
        let stage = boot_traced ~domains in
        ignore
          (Proto.Stage.start stage "blockchain"
             [ "blockchain"; "4"; "34"; "99" ]);
        stage);
    sc_tick = no_tick;
    sc_virtual = Sim.Engine.ms 1200;
  }

(* The desktop session: launcher with a key press every fourth slice —
   interrupt-driven and host-light, so the expected speedup is ≈ 1. *)
let desktop =
  {
    sc_name = "desktop";
    sc_setup =
      (fun ~domains ->
        let stage = boot_traced ~domains in
        ignore (Proto.Stage.start stage "launcher" [ "launcher"; "600" ]);
        stage);
    sc_tick =
      (fun stage i ->
        let usb =
          stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.usb
        in
        if i mod 4 = 0 then Hw.Usb.key_down usb 0x51 (* down arrow *)
        else if i mod 4 = 2 then Hw.Usb.key_up usb 0x51);
    sc_virtual = Sim.Engine.sec 2;
  }

(* schedbench's multicore batch: greedy spinners burning pure virtual
   cycles on every core — lots of events, zero Par computes. *)
let schedbatch =
  {
    sc_name = "schedbatch";
    sc_setup =
      (fun ~domains ->
        let stage = boot_traced ~domains in
        let kernel = stage.Proto.Stage.kernel in
        for i = 0 to 5 do
          ignore
            (Core.Kernel.spawn_user kernel
               ~name:(Printf.sprintf "simb-batch%d" i)
               (fun () ->
                 while true do
                   User.Usys.burn 2_000_000
                 done;
                 0))
        done;
        stage);
    sc_tick = no_tick;
    sc_virtual = Sim.Engine.sec 2;
  }

let scenarios = [ miner; desktop; schedbatch ]

type row = {
  r_scenario : string;
  r_domains : int;
  r_wall_s : float;
  r_events : int;
  r_event_ns_mean : float;  (** per-event host cost, Hist mean *)
  r_event_ns_p90 : float;
  r_events_per_s : float;
  r_batches : int;
  r_computes : int;
  r_speedup : float;  (** sequential row wall / this wall *)
  r_trace_md5 : string;
  r_deterministic : bool;  (** trace hash equals the sequential row's *)
}

let trace_dump stage =
  let sched = stage.Proto.Stage.kernel.Core.Kernel.sched in
  let entries = Core.Ktrace.dump sched.Core.Sched.trace in
  String.concat "\n" (List.map Core.Ktrace.machine_line entries)

let run_row sc domains =
  let t0 = Unix.gettimeofday () in
  let stage = sc.sc_setup ~domains in
  let engine =
    stage.Proto.Stage.kernel.Core.Kernel.board.Hw.Board.engine
  in
  let hist = Core.Kperf.Hist.create () in
  let slice = Int64.div sc.sc_virtual (Int64.of_int slices) in
  for i = 0 to slices - 1 do
    sc.sc_tick stage i;
    let e0 = Sim.Engine.events_fired engine in
    let s0 = Unix.gettimeofday () in
    Proto.Stage.run_for stage slice;
    let ds = Unix.gettimeofday () -. s0 in
    let de = Sim.Engine.events_fired engine - e0 in
    if de > 0 then
      Core.Kperf.Hist.record hist
        (Int64.of_float (ds *. 1e9 /. float_of_int de))
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let batches, computes = Sim.Engine.par_stats engine in
  let mean = Core.Kperf.Hist.mean_ns hist in
  {
    r_scenario = sc.sc_name;
    r_domains = domains;
    r_wall_s = wall;
    r_events = Sim.Engine.events_fired engine;
    r_event_ns_mean = mean;
    r_event_ns_p90 = Core.Kperf.Hist.percentile_ns hist 90.0;
    r_events_per_s = (if mean > 0.0 then 1e9 /. mean else 0.0);
    r_batches = batches;
    r_computes = computes;
    r_speedup = 1.0 (* filled in against the sequential row *);
    r_trace_md5 = Digest.to_hex (Digest.string (trace_dump stage));
    r_deterministic = true (* ditto *);
  }

let run_scenario sc =
  let rows = List.map (run_row sc) domains_ladder in
  match rows with
  | base :: _ ->
      List.map
        (fun r ->
          {
            r with
            r_speedup = base.r_wall_s /. r.r_wall_s;
            r_deterministic = String.equal r.r_trace_md5 base.r_trace_md5;
          })
        rows
  | [] -> []

type result = {
  pop_plain : Core.Kperf.Hist.t;
  pop_cancelled : Core.Kperf.Hist.t;
  rows : row list;
}

let run () =
  {
    pop_plain = pop_cost ~cancel_half:false;
    pop_cancelled = pop_cost ~cancel_half:true;
    rows = List.concat_map run_scenario scenarios;
  }

(* ---- reporting ---- *)

(* Speedup only materializes when the host can actually run the worker
   domains; record the CPU count next to the numbers so a 1-CPU reading
   is not mistaken for a machinery failure. *)
let host_cpus () = Domain.recommended_domain_count ()

let render r =
  let b = Buffer.create 2048 in
  let plain = Core.Kperf.Hist.mean_ns r.pop_plain in
  let cance = Core.Kperf.Hist.mean_ns r.pop_cancelled in
  Buffer.add_string b
    (Printf.sprintf "  host CPUs available to domains: %d%s\n" (host_cpus ())
       (if host_cpus () > 1 then ""
        else " (single-CPU host: parallel rows measure overhead, not speedup)"));
  Buffer.add_string b
    (Printf.sprintf
       "  pop+fire cost (%d x %d events): plain %.0f ns/event (seed \
        hashtable: %.0f), 50%%-cancelled %.0f ns/event (seed: %.0f)\n"
       pop_windows pop_window plain seed_plain_pop_ns cance
       seed_cancelled_pop_ns);
  Buffer.add_string b
    (Printf.sprintf "  %-10s %7s %9s %10s %11s %8s %9s %8s %5s\n" "scenario"
       "domains" "wall_s" "events" "events/s" "batches" "computes" "speedup"
       "det");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-10s %7d %9.2f %10d %11.0f %8d %9d %7.2fx %5s\n" r.r_scenario
           r.r_domains r.r_wall_s r.r_events r.r_events_per_s r.r_batches
           r.r_computes r.r_speedup
           (if r.r_deterministic then "ok" else "FAIL")))
    r.rows;
  Buffer.contents b

let json r =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"host_cpus\": %d,\n  \"parallel_effective\": %b,\n" (host_cpus ())
       (host_cpus () > 1));
  Buffer.add_string b
    (Printf.sprintf
       "  \"pop_cost\": {\n\
       \    \"window_events\": %d,\n\
       \    \"windows\": %d,\n\
       \    \"seed_plain_ns\": %.1f,\n\
       \    \"seed_cancelled_ns\": %.1f,\n\
       \    \"tombstone_plain_ns\": %.1f,\n\
       \    \"tombstone_cancelled_ns\": %.1f,\n\
       \    \"plain_hist\": \"%s\",\n\
       \    \"cancelled_hist\": \"%s\"\n\
       \  },\n"
       pop_window pop_windows seed_plain_pop_ns seed_cancelled_pop_ns
       (Core.Kperf.Hist.mean_ns r.pop_plain)
       (Core.Kperf.Hist.mean_ns r.pop_cancelled)
       (String.escaped (Core.Kperf.Hist.render_line r.pop_plain))
       (String.escaped (Core.Kperf.Hist.render_line r.pop_cancelled)));
  Buffer.add_string b "  \"scenarios\": [\n";
  let n = List.length r.rows in
  List.iteri
    (fun i row ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"scenario\": \"%s\", \"domains\": %d, \"wall_s\": %.3f, \
            \"events\": %d, \"event_ns_mean\": %.1f, \"event_ns_p90\": \
            %.1f, \"events_per_s\": %.0f, \"par_batches\": %d, \
            \"par_computes\": %d, \"speedup\": %.3f, \"trace_md5\": \
            \"%s\", \"deterministic\": %b}%s\n"
           row.r_scenario row.r_domains row.r_wall_s row.r_events
           row.r_event_ns_mean row.r_event_ns_p90 row.r_events_per_s
           row.r_batches row.r_computes row.r_speedup row.r_trace_md5
           row.r_deterministic
           (if i = n - 1 then "" else ",")))
    r.rows;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let write_json r file =
  let oc = open_out file in
  output_string oc (json r);
  close_out oc
