(** The power-cut crash-injection harness.

    One seeded workload runs against a journaled xv6fs image through the
    buffer cache; a dry run counts every sector the medium absorbs. Each
    trial then replays the identical workload but schedules a power cut
    after a randomized number of media sectors — including mid-block, so
    torn writes happen — revives the rail, remounts (replaying the
    journal), and checks:

    - fsck is clean: the journal never exposes a half-applied transaction;
    - every file's content is a state the workload actually passed
      through, no earlier than the last acknowledged sync — i.e. no
      acked-fsync data is lost and no frankenstein states appear.

    Everything is derived from one seed ({!Core.Kconfig.t.crash_inject_seed}
    by default), so a run is reproducible byte for byte: {!summary.s_run_hash}
    digests every trial's outcome. *)

let nfiles = 6
let nops = 120
let max_write_bytes = 12 * 1024

(* Per-file model: the timeline of content states the workload has
   produced (oldest first), as hex digests; [gone] marks non-existence.
   [fm_acked] indexes the last state known durable (a sync completed
   while power was still up). A post-crash file must match some state at
   or after [fm_acked]. Chunked writes append every block-boundary
   prefix, because a group commit may land mid-[writei]. *)
type fmodel = {
  fm_path : string;
  mutable fm_exists : bool;
  mutable fm_ver : int;
  mutable fm_timeline : string list;
  mutable fm_acked : int;
}

let gone = "-"
let hex_of_bytes b = Digest.to_hex (Digest.bytes b)
let digest_empty = Digest.to_hex (Digest.string "")

let fresh_files () =
  let path i = if i < 4 then Printf.sprintf "/f%d" i else Printf.sprintf "/sub/f%d" i in
  Array.init nfiles (fun i ->
      {
        fm_path = path i;
        fm_exists = false;
        fm_ver = 0;
        fm_timeline = [ gone ];
        fm_acked = 0;
      })

let push f state = f.fm_timeline <- f.fm_timeline @ [ state ]

(* deterministic content for (file, version): no RNG draws per byte *)
let content ~fi ~ver ~len =
  Bytes.init len (fun i -> Char.chr (((fi * 37) + (ver * 11) + i) land 0xff))

(* ---- the workload ----

   Identical op sequence for the dry run and every trial (one RNG seeded
   the same way); a trial just stops once the rail is dead. *)

let run_workload fs bc supply files rng =
  let sync () =
    ignore (Fs.Xv6fs.commit fs);
    Core.Bufcache.barrier bc;
    if Hw.Power.alive supply then
      Array.iter (fun f -> f.fm_acked <- List.length f.fm_timeline - 1) files
  in
  let node_of f =
    match Fs.Xv6fs.lookup fs f.fm_path with
    | Ok node -> node
    | Error e -> invalid_arg ("crashbench: " ^ f.fm_path ^ ": " ^ e)
  in
  (match Fs.Xv6fs.create fs "/sub" Fs.Xv6fs.Dir with
  | Ok _ -> ()
  | Error e -> invalid_arg ("crashbench: mkdir /sub: " ^ e));
  (try
     for _op = 1 to nops do
       if not (Hw.Power.alive supply) then raise Exit;
       let fi = Sim.Rng.int rng nfiles in
       let f = files.(fi) in
       let k = Sim.Rng.int rng 100 in
       let len = 512 + Sim.Rng.int rng max_write_bytes in
       if k < 55 then begin
         (* whole-file rewrite: create if needed, truncate, write *)
         if not f.fm_exists then begin
           (match Fs.Xv6fs.create fs f.fm_path Fs.Xv6fs.Reg with
           | Ok _ -> ()
           | Error e -> invalid_arg ("crashbench: create: " ^ e));
           f.fm_exists <- true;
           push f digest_empty
         end;
         let node = node_of f in
         Fs.Xv6fs.truncate fs node;
         push f digest_empty;
         f.fm_ver <- f.fm_ver + 1;
         let data = content ~fi ~ver:f.fm_ver ~len in
         (* a group commit can land at any block boundary inside writei,
            so every whole-block prefix is an observable durable state *)
         let blocks = len / Fs.Xv6fs.block_bytes in
         for j = 1 to blocks do
           push f (hex_of_bytes (Bytes.sub data 0 (j * Fs.Xv6fs.block_bytes)))
         done;
         if len mod Fs.Xv6fs.block_bytes <> 0 then push f (hex_of_bytes data);
         match Fs.Xv6fs.writei fs node ~off:0 ~data with
         | Ok n when n = len -> ()
         | Ok _ | Error _ -> invalid_arg "crashbench: short write"
       end
       else if k < 70 then begin
         if f.fm_exists then begin
           Fs.Xv6fs.truncate fs (node_of f);
           push f digest_empty
         end
       end
       else if k < 80 then begin
         if f.fm_exists then begin
           (match Fs.Xv6fs.unlink fs f.fm_path with
           | Ok () -> ()
           | Error e -> invalid_arg ("crashbench: unlink: " ^ e));
           f.fm_exists <- false;
           push f gone
         end
       end
       else sync ()
     done;
     sync ()
   with Exit -> ())

(* ---- verification after the cut ---- *)

let suffix_from l i =
  let rec drop n = function
    | l when n <= 0 -> l
    | [] -> []
    | _ :: tl -> drop (n - 1) tl
  in
  drop i l

(* Remount through a fresh (cold) cache — the crashed kernel's RAM is
   gone — replaying the journal, then fsck + per-file content check.
   Returns (blocks replayed, findings). *)
let verify board image files =
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:2 ()
  in
  match Fs.Xv6fs.mount (Core.Bufcache.xv6_io bc) with
  | Error e -> (0, [ "remount failed: " ^ e ], [])
  | Ok fs ->
      let findings = ref [] in
      let report = Fs.Xv6fs.fsck fs in
      if not report.Fs.Xv6fs.fsck_clean then
        findings :=
          List.map (fun e -> "fsck: " ^ e) report.Fs.Xv6fs.fsck_errors
          @ !findings;
      let states =
        Array.to_list files
        |> List.map (fun f ->
               let observed =
                 match Fs.Xv6fs.lookup fs f.fm_path with
                 | Error _ -> gone
                 | Ok node -> (
                     let size = (Fs.Xv6fs.stat_of fs node).Fs.Xv6fs.st_size in
                     if size < 0 || size > Fs.Xv6fs.max_file_bytes_ext then
                       "unreadable: implausible size"
                     else
                       match Fs.Xv6fs.readi fs node ~off:0 ~len:size with
                       | Ok b -> hex_of_bytes b
                       | Error e -> "unreadable: " ^ e)
               in
               let allowed = suffix_from f.fm_timeline f.fm_acked in
               if not (List.mem observed allowed) then
                 findings :=
                   Printf.sprintf
                     "%s: state %s not reachable from last ack (ack index %d \
                      of %d states)"
                     f.fm_path observed f.fm_acked
                     (List.length f.fm_timeline)
                   :: !findings;
               (f.fm_path, observed))
      in
      (Fs.Xv6fs.log_replayed fs, List.rev !findings, states)

(* ---- trials ---- *)

let mkfs_base () =
  Fs.Xv6fs.mkfs ~nlog:120 ~ext:true ~total_blocks:2048 ~ninodes:128 ()

(* One run of the workload over a fresh copy of [base]; [cut_after]
   schedules the power cut that many media sectors in (None = dry run).
   Returns (board, image, files, fs commits). *)
let run_once ~seed ~base ~cut_after =
  let board = Hw.Board.create ~sd_mib:1 () in
  let supply = board.Hw.Board.supply in
  (match cut_after with
  | Some sectors -> Hw.Power.cut_after_media_writes supply ~sectors
  | None -> ());
  let image = Bytes.copy base in
  let bc =
    Core.Bufcache.create ~board ~backing:(Core.Bufcache.Ram image)
      ~block_sectors:2 ~capacity:64 ~writeback:true ()
  in
  let fs =
    match Fs.Xv6fs.mount (Core.Bufcache.xv6_io bc) with
    | Ok fs -> fs
    | Error e -> invalid_arg ("crashbench: mount: " ^ e)
  in
  let files = fresh_files () in
  run_workload fs bc supply files (Sim.Rng.create seed);
  (board, image, files, Fs.Xv6fs.log_commits fs)

type summary = {
  s_seed : int64;
  s_trials : int;
  s_media_sectors : int;  (** cut-point space (sectors written by a clean run) *)
  s_commits : int;  (** journal commits across all trials *)
  s_replayed_trials : int;  (** trials whose remount installed a committed tx *)
  s_replayed_blocks : int;
  s_fsck_failures : int;
  s_invariant_failures : int;
  s_run_hash : string;  (** digest of every trial's outcome, for determinism *)
}

let default_trials = 1000
let failure_dump = "BENCH_crash_failure.txt"

let trials_from_env () =
  match Sys.getenv_opt "VOS_CRASH_TRIALS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | Some _ | None -> default_trials)
  | None -> default_trials

let default_seed () =
  Int64.of_int Core.Kconfig.full.Core.Kconfig.crash_inject_seed

let run ?seed ?trials () =
  let seed = match seed with Some s -> s | None -> default_seed () in
  let trials = match trials with Some t -> t | None -> trials_from_env () in
  let base = mkfs_base () in
  (* dry run: learn how many sectors a clean run puts on the medium *)
  let board, _, _, _ = run_once ~seed ~base ~cut_after:None in
  let total = Hw.Power.media_writes board.Hw.Board.supply in
  assert (total > 0);
  let cut_rng = Sim.Rng.create (Int64.logxor seed 0x9e3779b97f4a7c15L) in
  let records = Buffer.create (trials * 64) in
  let commits = ref 0 in
  let replayed_trials = ref 0 and replayed_blocks = ref 0 in
  let fsck_failures = ref 0 and invariant_failures = ref 0 in
  let dumps = ref [] in
  for trial = 1 to trials do
    let cut = 1 + Sim.Rng.int cut_rng total in
    let board, image, files, c = run_once ~seed ~base ~cut_after:(Some cut) in
    Hw.Power.revive board.Hw.Board.supply;
    let replayed, findings, states = verify board image files in
    commits := !commits + c;
    if replayed > 0 then begin
      incr replayed_trials;
      replayed_blocks := !replayed_blocks + replayed
    end;
    let fsck_bad = List.exists (fun f -> String.length f >= 4 && String.sub f 0 4 = "fsck") findings in
    let inv_bad = List.exists (fun f -> not (String.length f >= 4 && String.sub f 0 4 = "fsck")) findings in
    if fsck_bad then incr fsck_failures;
    if inv_bad then incr invariant_failures;
    if findings <> [] then
      dumps :=
        Printf.sprintf "trial %d (cut after %d sectors):\n%s" trial cut
          (String.concat "\n" (List.map (fun f -> "  " ^ f) findings))
        :: !dumps;
    Buffer.add_string records
      (Printf.sprintf "trial=%d cut=%d replayed=%d commits=%d %s\n" trial cut
         replayed c
         (String.concat " " (List.map (fun (p, s) -> p ^ "=" ^ s) states)))
  done;
  if !dumps <> [] then begin
    let oc = open_out failure_dump in
    output_string oc (String.concat "\n" (List.rev !dumps));
    close_out oc
  end;
  {
    s_seed = seed;
    s_trials = trials;
    s_media_sectors = total;
    s_commits = !commits;
    s_replayed_trials = !replayed_trials;
    s_replayed_blocks = !replayed_blocks;
    s_fsck_failures = !fsck_failures;
    s_invariant_failures = !invariant_failures;
    s_run_hash = Digest.to_hex (Digest.string (Buffer.contents records));
  }

(* ---- reporting ---- *)

let render s =
  Printf.sprintf
    "  seed %Ld: %d power cuts over %d media sectors\n\
    \  journal commits %d; %d remounts replayed (%d blocks installed)\n\
    \  fsck failures %d, invariant failures %d\n\
    \  run hash %s%s\n"
    s.s_seed s.s_trials s.s_media_sectors s.s_commits s.s_replayed_trials
    s.s_replayed_blocks s.s_fsck_failures s.s_invariant_failures s.s_run_hash
    (if s.s_fsck_failures + s.s_invariant_failures > 0 then
       "\n  FAILURES dumped to " ^ failure_dump
     else "")

let json s =
  Printf.sprintf
    "{\n\
    \  \"benchmark\": \"crashbench\",\n\
    \  \"seed\": %Ld,\n\
    \  \"trials\": %d,\n\
    \  \"media_sectors\": %d,\n\
    \  \"journal_commits\": %d,\n\
    \  \"replayed_trials\": %d,\n\
    \  \"replayed_blocks\": %d,\n\
    \  \"fsck_failures\": %d,\n\
    \  \"invariant_failures\": %d,\n\
    \  \"run_hash\": %S\n\
     }\n"
    s.s_seed s.s_trials s.s_media_sectors s.s_commits s.s_replayed_trials
    s.s_replayed_blocks s.s_fsck_failures s.s_invariant_failures s.s_run_hash

let write_json s file =
  let oc = open_out file in
  output_string oc (json s);
  close_out oc
