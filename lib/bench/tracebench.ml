(** tracebench — the observability stack benchmarking itself.

    Two questions, answered in [BENCH_trace.json]:

    - {b what does tracing cost the host?} The simulated kernel charges
      zero virtual cycles for instrumentation (the BENCH byte-identity
      contract), but each [Ktrace.emit] is real OCaml work on the host.
      Part 1 times ~1M emits against a single shared ring and against
      per-core rings.

    - {b what does the trace buy?} Part 2 boots a fully armed Prototype
      5 (per-core rings, 100 Hz profiler, /proc/metrics, kcheck), runs
      the launcher under injected USB key presses, and mines the trace
      for a Figure-11-style input breakdown — keypress ([Kbd_report]) →
      delivery to the app ([Event_delivered]) → next frame
      ([Frame_present]) — plus per-operation span totals from the
      paired [Span_begin]/[Span_end] stream.

    The captured session is also written in ktrace machine format
    ([BENCH_trace.ktrace]) so [tools/ktrace2perfetto] can be smoked
    against a real trace in CI. *)

(* ---- part 1: host-side emit cost ---- *)

let emits = 1_000_000

let emit_cost_ns ~per_core =
  let tr = Core.Ktrace.create ~capacity:65536 ~per_core ~cores:4 () in
  let t0 = Sys.time () in
  for i = 0 to emits - 1 do
    Core.Ktrace.emit tr ~ts_ns:(Int64.of_int i) ~core:(i land 3)
      Core.Ktrace.Kbd_report
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int emits

(* ---- part 2: armed launcher session ---- *)

let presses = 10

type breakdown = {
  bd_samples : int;  (** key presses that reached the app *)
  bd_deliver_ms : float;  (** kbd_report -> event_delivered, mean *)
  bd_respond_ms : float;  (** event_delivered -> next frame_present, mean *)
}

type span_op = { so_name : string; so_count : int; so_total_ms : float }

type session = {
  s_events : int;  (** trace entries captured *)
  s_spans_matched : int;
  s_spans_open : int;  (** begins with no end: blocked syscalls etc. *)
  s_breakdown : breakdown;
  s_span_ops : span_op list;  (** per-operation totals, busiest first *)
  s_syscall_hist : string;  (** the kernel's own service-time histogram *)
  s_profile : string;  (** /proc/profile's attribution table *)
  s_trace : Core.Ktrace.entry list;  (** raw, for the machine dump *)
}

(* The same scan latency.ml uses: each kbd_report pairs with the next
   delivery, that delivery with the next frame after it. *)
let mine_breakdown events =
  let deliver = Sim.Stats.create () in
  let respond = Sim.Stats.create () in
  let rec scan = function
    | [] -> ()
    | e :: rest ->
        if not (Evsel.kbd_report e.Core.Ktrace.ev) then scan rest
        else begin
          let delivery =
            List.find_opt
              (fun e2 -> Evsel.event_delivered e2.Core.Ktrace.ev <> None)
              rest
          in
          (match delivery with
          | Some d ->
              Sim.Stats.add deliver
                (Sim.Engine.to_ms
                   (Int64.sub d.Core.Ktrace.ts_ns e.Core.Ktrace.ts_ns));
              (match
                 List.find_opt
                   (fun e2 ->
                     Evsel.frame_present e2.Core.Ktrace.ev <> None
                     && Int64.compare e2.Core.Ktrace.ts_ns
                          d.Core.Ktrace.ts_ns
                        > 0)
                   rest
               with
              | Some f ->
                  Sim.Stats.add respond
                    (Sim.Engine.to_ms
                       (Int64.sub f.Core.Ktrace.ts_ns d.Core.Ktrace.ts_ns))
              | None -> ())
          | None -> ());
          scan rest
        end
  in
  scan events;
  {
    bd_samples = Sim.Stats.count deliver;
    bd_deliver_ms = Sim.Stats.mean deliver;
    bd_respond_ms = Sim.Stats.mean respond;
  }

let span_totals spans =
  let tbl : (string, int * int64) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun sp ->
      let d =
        Int64.sub sp.Core.Ktrace.sp_end_ns sp.Core.Ktrace.sp_begin_ns
      in
      let c, t =
        match Hashtbl.find_opt tbl sp.Core.Ktrace.sp_name with
        | Some v -> v
        | None -> (0, 0L)
      in
      Hashtbl.replace tbl sp.Core.Ktrace.sp_name (c + 1, Int64.add t d))
    spans;
  Hashtbl.fold
    (fun name (c, t) acc ->
      { so_name = name; so_count = c; so_total_ms = Sim.Engine.to_ms t }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare b.so_total_ms a.so_total_ms)

let run_session () =
  let stage =
    Proto.Stage.boot ~prototype:5
      ~config_tweak:(fun c ->
        {
          c with
          Core.Kconfig.trace_per_core_rings = true;
          profile_hz = 100;
          metrics = true;
          kcheck = true;
        })
      ()
  in
  let kernel = stage.Proto.Stage.kernel in
  let board = kernel.Core.Kernel.board in
  ignore (Proto.Stage.start stage "launcher" [ "launcher"; "600" ]);
  Proto.Stage.run_for stage (Sim.Engine.sec 2);
  for _ = 1 to presses do
    Hw.Usb.key_down board.Hw.Board.usb 0x51 (* down arrow *);
    Proto.Stage.run_for stage (Sim.Engine.ms 60);
    Hw.Usb.key_up board.Hw.Board.usb 0x51;
    Proto.Stage.run_for stage (Sim.Engine.ms 60)
  done;
  let sched = kernel.Core.Kernel.sched in
  let events = Core.Ktrace.dump sched.Core.Sched.trace in
  let spans, open_spans = Core.Ktrace.pair_spans events in
  {
    s_events = List.length events;
    s_spans_matched = List.length spans;
    s_spans_open = List.length open_spans;
    s_breakdown = mine_breakdown events;
    s_span_ops = span_totals spans;
    s_syscall_hist = Core.Kperf.Hist.render_line sched.Core.Sched.h_syscall;
    s_profile = Core.Kperf.render_profile sched.Core.Sched.kperf;
    s_trace = events;
  }

type result = {
  emit_single_ns : float;
  emit_per_core_ns : float;
  session : session;
}

let run () =
  {
    emit_single_ns = emit_cost_ns ~per_core:false;
    emit_per_core_ns = emit_cost_ns ~per_core:true;
    session = run_session ();
  }

(* ---- reporting ---- *)

let render r =
  let s = r.session in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "  host emit cost: %.0f ns/event (single ring), %.0f ns/event \
        (per-core rings), %d emits each\n"
       r.emit_single_ns r.emit_per_core_ns emits);
  Buffer.add_string b
    (Printf.sprintf
       "  launcher session: %d trace events, %d spans matched, %d left \
        open\n"
       s.s_events s.s_spans_matched s.s_spans_open);
  Buffer.add_string b
    (Printf.sprintf
       "  input breakdown over %d keypresses: deliver %.2f ms, respond \
        %.2f ms, total %.2f ms\n"
       s.s_breakdown.bd_samples s.s_breakdown.bd_deliver_ms
       s.s_breakdown.bd_respond_ms
       (s.s_breakdown.bd_deliver_ms +. s.s_breakdown.bd_respond_ms));
  Buffer.add_string b
    (Printf.sprintf "  syscall service: %s\n" s.s_syscall_hist);
  Buffer.add_string b "  busiest span operations:\n";
  List.iteri
    (fun i op ->
      if i < 8 then
        Buffer.add_string b
          (Printf.sprintf "    %-16s %7d spans %9.2f ms total\n" op.so_name
             op.so_count op.so_total_ms))
    s.s_span_ops;
  Buffer.add_string b s.s_profile;
  Buffer.contents b

let json r =
  let s = r.session in
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"benchmark\": \"tracebench\",\n";
  Buffer.add_string b
    (Printf.sprintf
       "  \"emits\": %d,\n  \"emit_cost_ns_single\": %.1f,\n\
       \  \"emit_cost_ns_per_core\": %.1f,\n"
       emits r.emit_single_ns r.emit_per_core_ns);
  Buffer.add_string b
    (Printf.sprintf
       "  \"session\": {\"trace_events\": %d, \"spans_matched\": %d, \
        \"spans_open\": %d,\n\
       \    \"keypresses\": %d, \"deliver_ms\": %.3f, \"respond_ms\": \
        %.3f, \"total_ms\": %.3f},\n"
       s.s_events s.s_spans_matched s.s_spans_open s.s_breakdown.bd_samples
       s.s_breakdown.bd_deliver_ms s.s_breakdown.bd_respond_ms
       (s.s_breakdown.bd_deliver_ms +. s.s_breakdown.bd_respond_ms));
  Buffer.add_string b "  \"span_ops\": [\n";
  let n = List.length s.s_span_ops in
  List.iteri
    (fun i op ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"op\": %S, \"count\": %d, \"total_ms\": %.3f}%s\n"
           op.so_name op.so_count op.so_total_ms
           (if i = n - 1 then "" else ",")))
    s.s_span_ops;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b
    (Printf.sprintf "  \"syscall_service\": %S\n}\n" s.s_syscall_hist);
  Buffer.contents b

let write_json r path =
  let oc = open_out path in
  output_string oc (json r);
  close_out oc

let write_trace r path =
  let oc = open_out path in
  Core.Ktrace.write_machine oc r.session.s_trace;
  close_out oc
