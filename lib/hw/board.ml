type platform = {
  plat_name : string;
  cpu_hz : int;
  num_cores : int;
  io_scale : float;
  firmware_boot_ns : int64;
}

let pi3 =
  {
    plat_name = "pi3";
    cpu_hz = 1_000_000_000;
    num_cores = 4;
    io_scale = 1.0;
    (* GPU firmware stages (bootcode.bin, start.elf) plus reading the
       kernel image off the card dominate the paper's 6 s boot. *)
    firmware_boot_ns = 4_700_000_000L;
  }

let qemu_wsl =
  {
    plat_name = "qemu-wsl";
    cpu_hz = 1_500_000_000;
    num_cores = 4;
    io_scale = 0.02;
    firmware_boot_ns = 150_000_000L;
  }

let qemu_vm =
  {
    plat_name = "qemu-vm";
    cpu_hz = 1_380_000_000;
    num_cores = 4;
    io_scale = 0.02;
    firmware_boot_ns = 150_000_000L;
  }

type t = {
  platform : platform;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  intc : Intc.t;
  timer : Timer.t;
  uart : Uart.t;
  mailbox : Mailbox.t;
  gpio : Gpio.t;
  dma : Dma.t;
  pwm : Pwm_audio.t;
  sd : Sd.t;
  usb : Usb.t;
  supply : Power.supply;
}

let create ?(platform = pi3) ?(seed = 42L) ?(sd_mib = 64) () =
  let engine = Sim.Engine.create () in
  let supply = Power.supply () in
  let intc = Intc.create ~cores:platform.num_cores in
  let timer = Timer.create engine intc ~cores:platform.num_cores in
  let uart = Uart.create engine intc ~baud:115200 in
  let mailbox = Mailbox.create engine in
  let gpio = Gpio.create engine intc in
  let dma = Dma.create engine intc ~channels:4 in
  let pwm = Pwm_audio.create engine ~rate:44100 in
  let sd = Sd.create engine ~size_mib:sd_mib in
  Sd.set_supply sd supply;
  let usb = Usb.create engine intc in
  {
    platform;
    engine;
    rng = Sim.Rng.create seed;
    intc;
    timer;
    uart;
    mailbox;
    gpio;
    dma;
    pwm;
    sd;
    usb;
    supply;
  }

let cycles_to_ns t cycles =
  assert (cycles >= 0);
  Int64.div
    (Int64.mul (Int64.of_int cycles) 1_000_000_000L)
    (Int64.of_int t.platform.cpu_hz)

let io_ns t cost =
  let scaled = Int64.to_float cost *. t.platform.io_scale in
  Int64.of_float (Float.max 1.0 scaled)

let now t = Sim.Engine.now t.engine
