(** Interrupt lines of the simulated SoC.

    Line numbering loosely follows the BCM2836 local/global split: per-core
    generic-timer lines are private, everything else is a shared peripheral
    line. The kernel routes shared lines to a core (core 0 in VOS, per the
    paper) and the panic FIQ round-robin across cores. *)

type line =
  | Core_timer of int  (** per-core ARM generic timer, core id *)
  | Ipi of int
      (** software-generated inter-processor interrupt, target core id —
          the BCM2836 local mailbox registers: any core writes the target's
          mailbox and the target takes an interrupt *)
  | Sys_timer  (** SoC-level system timer *)
  | Uart_rx
  | Usb_hc  (** USB host controller *)
  | Dma_channel of int
  | Gpio_bank
  | Sd_card
  | Fiq_button  (** the panic button; delivered as FIQ *)

val equal : line -> line -> bool

val describe : line -> string
(** Human-readable name, used by trace dumps. *)
