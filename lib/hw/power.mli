(** Power and battery model (Figure 12 substitute for the USB power meter).

    Device power is decomposed the way the paper's figure is: the Pi3 board
    (idle floor plus per-core active power) and the Game HAT expansion
    (display backlight, audio amplifier, power IC). Battery life is the
    pack's energy divided by average power, for the HAT-compatible 18650
    cell (3000 mAh at 3.7 V). *)

type profile = {
  board_idle_w : float;  (** Pi3 at idle (WFI loop), peripherals clocked *)
  core_active_w : float;  (** additional draw per fully-busy core *)
  io_active_w : float;  (** additional draw under sustained IO (SD/USB) *)
  hat_w : float;  (** Game HAT: display + amplifier + power IC *)
  battery_wh : float;
}

val pi3_game_hat : profile
(** Calibrated to the paper: ~3 W at shell prompt, ~4 W under game load,
    3.7 h / 2.6 h battery life respectively. *)

val board_power : profile -> busy_cores:float -> io_fraction:float -> float
(** Pi3-board draw given the time-averaged number of busy cores
    (0.0–4.0) and the fraction of time spent in device IO. *)

val total_power : profile -> busy_cores:float -> io_fraction:float -> hat:bool -> float

val battery_hours : profile -> watts:float -> float

(** {1 The supply rail: power-cut injection}

    A [supply] models the board's power rail as storage devices see it.
    While the rail is up every sector a device writes reaches the medium;
    a power cut kills the rail, and every write issued at or after the
    cut is dropped on the floor — the medium freezes at whatever prefix
    of sectors it had absorbed. Cuts can be scheduled at a virtual time
    (an engine event) or after an exact number of media sector writes,
    which gives the crash-injection harness sector-granular, perfectly
    deterministic cut points — including cuts that tear a multi-sector
    block write in half. With no cut scheduled the supply is free:
    every budget query grants in full and device behaviour is
    bit-identical to a build without it. *)

type supply

val supply : unit -> supply
(** A fresh, healthy rail: unlimited budget, no cut scheduled. *)

val alive : supply -> bool

val cut : supply -> unit
(** Kill the rail now. Idempotent. *)

val cut_at : supply -> Sim.Engine.t -> ns:int64 -> unit
(** Schedule {!cut} at absolute virtual time [ns]. *)

val cut_after_media_writes : supply -> sectors:int -> unit
(** Kill the rail after exactly [sectors] more media sectors have been
    granted; the write that crosses the budget is torn at the boundary.
    [sectors = 0] cuts immediately. *)

val media_budget : supply -> sectors:int -> int
(** [media_budget s ~sectors] asks the rail to power a [sectors]-long
    write and returns how many leading sectors actually reach the
    medium (the rest are dropped and counted). Devices call this on
    every media write; an exhausted budget triggers the cut. *)

val revive : supply -> unit
(** Bring the rail back up with no budget (the harness's "reboot"). The
    medium keeps whatever it had at the cut. *)

val media_writes : supply -> int
(** Total sectors granted to media over the supply's lifetime. *)

val dropped_sectors : supply -> int
(** Sectors refused because the rail was down or the budget ran out. *)

val cuts : supply -> int
