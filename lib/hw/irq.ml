type line =
  | Core_timer of int
  | Ipi of int
  | Sys_timer
  | Uart_rx
  | Usb_hc
  | Dma_channel of int
  | Gpio_bank
  | Sd_card
  | Fiq_button

let equal a b =
  match (a, b) with
  | Core_timer x, Core_timer y -> x = y
  | Ipi x, Ipi y -> x = y
  | Sys_timer, Sys_timer -> true
  | Uart_rx, Uart_rx -> true
  | Usb_hc, Usb_hc -> true
  | Dma_channel x, Dma_channel y -> x = y
  | Gpio_bank, Gpio_bank -> true
  | Sd_card, Sd_card -> true
  | Fiq_button, Fiq_button -> true
  | ( ( Core_timer _ | Ipi _ | Sys_timer | Uart_rx | Usb_hc | Dma_channel _
      | Gpio_bank | Sd_card | Fiq_button ),
      _ ) ->
      false

let describe = function
  | Core_timer c -> Printf.sprintf "core%d-timer" c
  | Ipi c -> Printf.sprintf "core%d-ipi" c
  | Sys_timer -> "sys-timer"
  | Uart_rx -> "uart-rx"
  | Usb_hc -> "usb-hc"
  | Dma_channel c -> Printf.sprintf "dma%d" c
  | Gpio_bank -> "gpio"
  | Sd_card -> "sd"
  | Fiq_button -> "fiq-button"
