type handler = Irq.line -> unit

type core_state = {
  mutable handler : handler option;
  mutable mask_depth : int;
  mutable pending : Irq.line list;  (* newest first; coalesced *)
}

type t = {
  cores : core_state array;
  routes : (Irq.line * int) list ref;
  mutable fiq_next : int;  (* round-robin cursor for FIQ delivery *)
}

let create ~cores =
  let state () = { handler = None; mask_depth = 0; pending = [] } in
  let t =
    {
      cores = Array.init cores (fun _ -> state ());
      routes = ref [];
      fiq_next = 0;
    }
  in
  for c = 0 to cores - 1 do
    t.routes := (Irq.Core_timer c, c) :: !(t.routes)
  done;
  t

let route t line ~core =
  (match line with
  | Irq.Core_timer _ -> invalid_arg "Intc.route: per-core timer lines are fixed"
  | Irq.Ipi _ -> invalid_arg "Intc.route: IPI mailboxes are per-core"
  | Irq.Sys_timer | Irq.Uart_rx | Irq.Usb_hc | Irq.Dma_channel _
  | Irq.Gpio_bank | Irq.Sd_card | Irq.Fiq_button ->
      ());
  if core < 0 || core >= Array.length t.cores then
    invalid_arg "Intc.route: bad core";
  t.routes := (line, core) :: List.filter (fun (l, _) -> not (Irq.equal l line)) !(t.routes)

let set_handler t ~core h = t.cores.(core).handler <- Some h

let target_core t line =
  match List.find_opt (fun (l, _) -> Irq.equal l line) !(t.routes) with
  | Some (_, core) -> core
  | None -> 0

let deliver state line =
  match state.handler with
  | Some h -> h line
  | None ->
      (* No kernel yet: leave pending so early boot doesn't lose edges. *)
      if not (List.exists (Irq.equal line) state.pending) then
        state.pending <- line :: state.pending

let drain state =
  let lines = List.rev state.pending in
  state.pending <- [];
  List.iter (deliver state) lines

let mask t ~core = t.cores.(core).mask_depth <- t.cores.(core).mask_depth + 1

let unmask t ~core =
  let state = t.cores.(core) in
  if state.mask_depth <= 0 then invalid_arg "Intc.unmask: not masked";
  state.mask_depth <- state.mask_depth - 1;
  if state.mask_depth = 0 then drain state

let masked t ~core = t.cores.(core).mask_depth > 0

let raise_line t line =
  match line with
  | Irq.Fiq_button ->
      (* FIQ bypasses the IRQ mask and rotates across cores. *)
      let core = t.fiq_next in
      t.fiq_next <- (t.fiq_next + 1) mod Array.length t.cores;
      deliver t.cores.(core) line
  | Irq.Ipi core ->
      (* The mailbox write targets exactly one core; delivery respects the
         target's IRQ mask like any other interrupt (multiple raises of a
         pending mailbox coalesce — it is one level-triggered bit). *)
      if core < 0 || core >= Array.length t.cores then
        invalid_arg "Intc.raise_line: bad IPI target";
      let state = t.cores.(core) in
      if state.mask_depth > 0 || state.handler = None then begin
        if not (List.exists (Irq.equal line) state.pending) then
          state.pending <- line :: state.pending
      end
      else deliver state line
  | Irq.Core_timer _ | Irq.Sys_timer | Irq.Uart_rx | Irq.Usb_hc
  | Irq.Dma_channel _ | Irq.Gpio_bank | Irq.Sd_card ->
      let core = target_core t line in
      let state = t.cores.(core) in
      if state.mask_depth > 0 || state.handler = None then begin
        if not (List.exists (Irq.equal line) state.pending) then
          state.pending <- line :: state.pending
      end
      else deliver state line

(* Software-generated interrupt: one core kicks another. This is the
   device-register face of the reschedule-IPI path — the scheduler models
   the mailbox-write-to-vector latency before calling this. *)
let send_ipi t ~target = raise_line t (Irq.Ipi target)

let pending_count t ~core = List.length t.cores.(core).pending
