(** USB host controller with a HID boot-protocol keyboard.

    Stands in for the ported USPi stack (§4.4). The behavioural contract
    VOS relies on is kept: controller power-up and device enumeration take
    real time (the dominant share of the paper's 6-second boot), and once
    enumerated the keyboard's interrupt endpoint is polled every 8 ms USB
    frame. When the key state changed since the last poll, an 8-byte boot
    report (modifier byte + up to 6 key usages) is latched and
    [Irq.Usb_hc] raised — so key events are inherently asynchronous and
    quantized to frame boundaries, which the input-latency breakdown of
    Figure 11 inherits.

    Test harnesses inject keys with [key_down]/[key_up] using HID usage
    codes (e.g. 0x04 = 'a', 0x28 = Enter, 0x4f–0x52 = arrows). *)

type report = { modifiers : int; keys : int list }
(** One boot-protocol input report; [keys] are the currently-held usage
    codes (at most 6). *)

type t

val create : Sim.Engine.t -> Intc.t -> t

val init_cost_ns : int64
(** Controller reset + port power + enumeration; ~1.1 s, as on real Pi3. *)

val power_on : t -> unit
(** Begin controller initialization; after [init_cost_ns] the keyboard is
    enumerated and frame polling starts. *)

val ready : t -> bool

val unplug : t -> unit
(** Surprise-remove the keyboard function: polling stops, held keys and
    latched reports are dropped. The mass-storage function is modeled as
    a separate port and is unaffected. Fault injection for the fuzz
    harness. *)

val replug : t -> unit
(** Re-attach after {!unplug}; enumeration pays {!init_cost_ns} again
    before {!ready} flips back. *)

val frame_interval_ns : int64
(** The 8 ms interrupt-endpoint service interval. *)

val key_down : t -> ?modifiers:int -> int -> unit
(** Device-side: press the key with the given usage code. *)

val key_up : t -> int -> unit

val take_reports : t -> report list
(** Kernel-side: drain latched reports in arrival order. *)

val reports_pending : t -> int

(** {1 Mass-storage class (the extensibility §4.4 credits the USB stack
    with: "ethernet adapters and mass storage, in the future")} *)

val attach_msd : t -> Bytes.t -> unit
(** Plug a bulk-only mass-storage device backed by [image] (a whole
    number of 512-byte sectors) into the root hub; enumerated together
    with the keyboard at [power_on]. *)

val msd_attached : t -> bool

val msd_sectors : t -> int

val msd_read : t -> lba:int -> count:int -> (Bytes.t * int64, string) result
(** Bulk-in transfer of [count] sectors; returns data plus the wire time
    (SCSI command + full-speed bulk throughput). *)

val msd_write : t -> lba:int -> data:Bytes.t -> (int64, string) result
