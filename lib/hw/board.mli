(** The assembled machine: a Raspberry Pi 3 (or a QEMU profile of it).

    One [Board.t] owns the simulation engine and every device. The kernel
    receives a board at boot and drives it; tests construct boards directly.

    Platform profiles reproduce the paper's three test platforms (Table 2):
    real Pi3 silicon, and QEMU on a modern x86 host under WSL2 or VMware —
    where the CPU is emulated faster than 1 GHz A53 and device access skips
    real wire time. *)

type platform = {
  plat_name : string;
  cpu_hz : int;  (** effective per-core clock *)
  num_cores : int;
  io_scale : float;  (** multiplier on device wire/poll costs; <1 on QEMU *)
  firmware_boot_ns : int64;  (** power-on firmware + kernel-image load *)
}

val pi3 : platform
val qemu_wsl : platform
val qemu_vm : platform

type t = {
  platform : platform;
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  intc : Intc.t;
  timer : Timer.t;
  uart : Uart.t;
  mailbox : Mailbox.t;
  gpio : Gpio.t;
  dma : Dma.t;
  pwm : Pwm_audio.t;
  sd : Sd.t;
  usb : Usb.t;
  supply : Power.supply;
      (** the power rail storage devices draw from; the crash-injection
          harness schedules cuts on it *)
}

val create : ?platform:platform -> ?seed:int64 -> ?sd_mib:int -> unit -> t

val cycles_to_ns : t -> int -> int64
(** Convert a cycle count on this platform's cores to nanoseconds. *)

val io_ns : t -> int64 -> int64
(** Scale a device cost by the platform's IO profile. *)

val now : t -> int64
(** The board's clock (engine time), ns since power-on. *)
