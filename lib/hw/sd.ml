let sector_bytes = 512

(* Polling-driver cost model, calibrated to the paper's Figure 8: a
   single-block polled transfer sustains ~300 KB/s; an 8+ block range
   amortizes the command overhead for a 2-3x win. *)
let cmd_overhead_ns = 1_100_000L
let per_sector_ns = 600_000L
let init_cost_ns = 180_000_000L (* card identify + switch to high speed *)

type pending = { p_lba : int; p_data : Bytes.t }

type t = {
  image : Bytes.t;
  mutable reads : int;
  mutable writes : int;
  mutable queue : pending list;  (** pending writes, most recent first *)
  mutable merged : int;  (** requests absorbed into a neighbour's command *)
  mutable psu : Power.supply option;
      (** when set, every media write asks the rail for a sector budget;
          a power cut drops (or tears) the write *)
  mutable barriers : int;
  mutable read_faults : int;
      (** pending injected transient read faults: each one makes the next
          read command fail with a CRC-style error, then clears *)
  mutable faulted_reads : int;
}

let create _engine ~size_mib =
  assert (size_mib > 0);
  {
    image = Bytes.make (size_mib * 1024 * 1024) '\000';
    reads = 0;
    writes = 0;
    queue = [];
    merged = 0;
    psu = None;
    barriers = 0;
    read_faults = 0;
    faulted_reads = 0;
  }

let set_supply t supply = t.psu <- Some supply

(* Transient read-fault injection (the fuzz harness's device hostility):
   the next [count] read commands fail the way a marginal card fails — a
   CRC error on the wire, data intact on the medium — so a driver that
   retries sees the original bytes on the next attempt. *)
let inject_read_faults t ~count = t.read_faults <- t.read_faults + max 0 count
let pending_read_faults t = t.read_faults
let faulted_read_count t = t.faulted_reads

let sectors t = Bytes.length t.image / sector_bytes

let cost_ns ~count =
  Int64.add cmd_overhead_ns (Int64.mul (Int64.of_int count) per_sector_ns)

let read t ~lba ~count =
  if count <= 0 then Error "sd: zero-length read"
  else if lba < 0 || lba > sectors t - count then Error "sd: read out of range"
  else if t.read_faults > 0 then begin
    (* the command was issued and paid for, the reply failed its CRC *)
    t.reads <- t.reads + 1;
    t.read_faults <- t.read_faults - 1;
    t.faulted_reads <- t.faulted_reads + 1;
    Error "sd: transient read fault (CRC)"
  end
  else begin
    t.reads <- t.reads + 1;
    let data = Bytes.sub t.image (lba * sector_bytes) (count * sector_bytes) in
    Ok (data, cost_ns ~count)
  end

let write t ~lba ~data =
  let len = Bytes.length data in
  if len = 0 || len mod sector_bytes <> 0 then
    Error "sd: write must be whole sectors"
  else begin
    let count = len / sector_bytes in
    if lba < 0 || lba > sectors t - count then Error "sd: write out of range"
    else begin
      t.writes <- t.writes + 1;
      (* The rail decides how many leading sectors the medium absorbs: all
         of them while power is up, a torn prefix at the cut, none after.
         The command itself still "completes" — a dying card does not
         report the loss, which is exactly the hazard the journal's
         commit barrier exists for. *)
      let granted =
        match t.psu with
        | None -> count
        | Some s -> Power.media_budget s ~sectors:count
      in
      if granted > 0 then
        Bytes.blit data 0 t.image (lba * sector_bytes) (granted * sector_bytes);
      Ok (cost_ns ~count)
    end
  end

(* ---- request queue ----

   Pending writes accumulate here (the buffer cache's flush path feeds
   it one block at a time) and are issued by [flush_queue] in a single
   ascending-LBA elevator sweep, with adjacent transfers coalesced into
   one command — so a batch of contiguous dirty blocks pays the command
   overhead once, exactly like the range operations above. *)

let enqueue_write t ~lba ~data =
  let len = Bytes.length data in
  if len = 0 || len mod sector_bytes <> 0 then
    Error "sd: write must be whole sectors"
  else begin
    let count = len / sector_bytes in
    if lba < 0 || lba > sectors t - count then Error "sd: write out of range"
    else begin
      t.queue <- { p_lba = lba; p_data = Bytes.copy data } :: t.queue;
      Ok ()
    end
  end

let queued t = List.length t.queue

let flush_queue ?(coalesce = true) t =
  (* elevator order: one ascending sweep; stable so same-LBA requests
     keep submission order (the later write lands last) *)
  let reqs =
    List.stable_sort (fun a b -> compare a.p_lba b.p_lba) (List.rev t.queue)
  in
  t.queue <- [];
  let sectors_of r = Bytes.length r.p_data / sector_bytes in
  (* group exactly-adjacent requests into single commands *)
  let runs =
    if not coalesce then List.rev_map (fun r -> [ r ]) reqs |> List.rev
    else
      List.fold_left
        (fun acc r ->
          match acc with
          | (last :: _ as run) :: rest
            when last.p_lba + sectors_of last = r.p_lba ->
              t.merged <- t.merged + 1;
              (r :: run) :: rest
          | _ -> [ r ] :: acc)
        [] reqs
      |> List.rev_map List.rev
  in
  let rec issue cost commands = function
    | [] -> Ok (cost, commands)
    | run :: rest -> (
        let run_lba = (List.hd run).p_lba in
        let total = List.fold_left (fun a r -> a + sectors_of r) 0 run in
        let data = Bytes.create (total * sector_bytes) in
        ignore
          (List.fold_left
             (fun off r ->
               Bytes.blit r.p_data 0 data off (Bytes.length r.p_data);
               off + Bytes.length r.p_data)
             0 run);
        match write t ~lba:run_lba ~data with
        | Ok c -> issue (Int64.add cost c) (commands + 1) rest
        | Error e -> Error e)
  in
  issue 0L 0 runs

let merged_count t = t.merged

(* Ordered-write barrier: everything queued before the barrier is on the
   medium when it returns, and nothing issued after it can be reordered
   ahead by the elevator (the queue is empty). An empty queue costs
   nothing, so a barrier on an already-synced card is free. *)
let barrier ?(coalesce = true) t =
  t.barriers <- t.barriers + 1;
  if t.queue = [] then Ok (0L, 0) else flush_queue ~coalesce t

let barrier_count t = t.barriers

let load t ~lba data =
  Bytes.blit data 0 t.image (lba * sector_bytes) (Bytes.length data)

let read_count t = t.reads
let write_count t = t.writes
