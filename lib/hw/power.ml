type profile = {
  board_idle_w : float;
  core_active_w : float;
  io_active_w : float;
  hat_w : float;
  battery_wh : float;
}

let pi3_game_hat =
  {
    board_idle_w = 1.88;
    core_active_w = 1.10;
    io_active_w = 0.30;
    hat_w = 1.15;
    battery_wh = 3.0 *. 3.7 (* one 18650: 3000 mAh at 3.7 V *);
  }

let board_power p ~busy_cores ~io_fraction =
  assert (busy_cores >= 0.0 && io_fraction >= 0.0);
  p.board_idle_w
  +. (p.core_active_w *. busy_cores)
  +. (p.io_active_w *. min 1.0 io_fraction)

let total_power p ~busy_cores ~io_fraction ~hat =
  board_power p ~busy_cores ~io_fraction +. if hat then p.hat_w else 0.0

let battery_hours p ~watts =
  assert (watts > 0.0);
  p.battery_wh /. watts

(* ---- the supply rail: power-cut injection ---- *)

type supply = {
  mutable alive : bool;
  mutable sector_budget : int option;
      (* media sectors the rail will still power; [None] = unlimited *)
  mutable media_sectors : int;
  mutable dropped_sectors : int;
  mutable cuts : int;
}

let supply () =
  {
    alive = true;
    sector_budget = None;
    media_sectors = 0;
    dropped_sectors = 0;
    cuts = 0;
  }

let alive s = s.alive

let cut s =
  if s.alive then begin
    s.alive <- false;
    s.sector_budget <- Some 0;
    s.cuts <- s.cuts + 1
  end

let cut_at s engine ~ns = ignore (Sim.Engine.schedule_at engine ns (fun () -> cut s))

let cut_after_media_writes s ~sectors =
  assert (sectors >= 0);
  if sectors = 0 then cut s else s.sector_budget <- Some sectors

let media_budget s ~sectors =
  if sectors <= 0 then 0
  else if not s.alive then begin
    s.dropped_sectors <- s.dropped_sectors + sectors;
    0
  end
  else
    match s.sector_budget with
    | None ->
        s.media_sectors <- s.media_sectors + sectors;
        sectors
    | Some budget ->
        let granted = min budget sectors in
        s.sector_budget <- Some (budget - granted);
        s.media_sectors <- s.media_sectors + granted;
        s.dropped_sectors <- s.dropped_sectors + (sectors - granted);
        if budget - granted = 0 then cut s;
        granted

let revive s =
  s.alive <- true;
  s.sector_budget <- None

let media_writes s = s.media_sectors
let dropped_sectors s = s.dropped_sectors
let cuts s = s.cuts
