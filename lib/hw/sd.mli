(** SD card controller and card.

    Mirrors the paper's deliberately simple driver contract (§4.5): the
    driver initializes the card, then issues synchronous single-block or
    block-range reads/writes, polling for completion — no DMA. The model
    therefore returns a polling cost with each operation; range operations
    pay the command overhead once, which is exactly why the paper's
    buffer-cache bypass wins 2–3x on multi-block FAT32 access.

    Sectors are 512 bytes. The card image lives in memory; [load] lets boot
    tooling stamp filesystem images onto it. *)

type t

val sector_bytes : int

val create : Sim.Engine.t -> size_mib:int -> t

val sectors : t -> int

val init_cost_ns : int64
(** Card identification + clock-up sequence at power-on. *)

val read : t -> lba:int -> count:int -> (Bytes.t * int64, string) result
(** [read t ~lba ~count] returns [count * 512] bytes and the polling cost.
    Fails on out-of-range access. *)

val write : t -> lba:int -> data:Bytes.t -> (int64, string) result
(** Write [data] (a whole number of sectors) starting at [lba]; returns the
    polling cost. *)

(** {1 Request queue}

    Pending writes queued by the kernel's write-back flush path. The queue
    is drained in a single ascending-LBA elevator sweep; with [coalesce]
    (the default) exactly-adjacent transfers merge into one command, so a
    run of contiguous blocks pays [cmd_overhead_ns] once. *)

val enqueue_write : t -> lba:int -> data:Bytes.t -> (unit, string) result
(** Queue a whole-sector write without issuing it. Bounds-checked now;
    no cost until [flush_queue]. *)

val queued : t -> int
(** Number of pending queued requests. *)

val flush_queue : ?coalesce:bool -> t -> (int64 * int, string) result
(** Issue all queued writes in elevator order; returns the total polling
    cost and the number of device commands actually issued. *)

val merged_count : t -> int
(** Cumulative requests absorbed into a neighbour's command. *)

val barrier : ?coalesce:bool -> t -> (int64 * int, string) result
(** Ordered-write barrier: drain the request queue so every write issued
    before the barrier is on the medium before any issued after it. Free
    (zero cost, zero commands) when the queue is already empty. Returns
    (cost, commands) like {!flush_queue}. *)

val barrier_count : t -> int
(** Barriers issued (host-side bookkeeping; charges nothing). *)

val inject_read_faults : t -> count:int -> unit
(** Arm [count] transient read faults: each of the next [count] read
    commands fails with a CRC-style error (the data on the medium is
    untouched, so a retrying driver succeeds once the burst is spent).
    The fuzz harness's stand-in for a marginal card or connector. *)

val pending_read_faults : t -> int
(** Armed faults not yet consumed. *)

val faulted_read_count : t -> int
(** Cumulative read commands that failed due to injected faults. *)

val set_supply : t -> Power.supply -> unit
(** Attach the board's power rail: every media write is budgeted through
    {!Power.media_budget}, so a scheduled power cut drops — or tears at a
    sector boundary — writes that race the cut. *)

val load : t -> lba:int -> Bytes.t -> unit
(** Stamp raw bytes onto the card with no cost (development-machine side,
    like dd-ing an image before inserting the card). *)

val read_count : t -> int
(** Number of read commands issued (not sectors). *)

val write_count : t -> int

val cost_ns : count:int -> int64
(** Cost model: one command overhead plus per-sector wire time. *)
