(** Interrupt controller.

    Devices raise lines; the controller delivers each line to the core the
    kernel routed it to, by invoking the handler that core's kernel
    registered. A raised line on a core whose interrupts are masked stays
    pending and is delivered when the core unmasks.

    The FIQ line ([Irq.Fiq_button]) ignores the IRQ mask — mirroring the
    paper's panic-button design, which must fire even when the kernel is
    deadlocked with IRQs off — and is delivered round-robin across cores. *)

type t

type handler = Irq.line -> unit
(** Invoked in "interrupt context": synchronously, on behalf of the target
    core, when a routed line fires. *)

val create : cores:int -> t

val route : t -> Irq.line -> core:int -> unit
(** Direct [line] to [core]. Per-core timer lines are routed to their own
    core automatically at creation; re-routing them raises
    [Invalid_argument]. *)

val set_handler : t -> core:int -> handler -> unit
(** Install the kernel's interrupt entry point for [core]. *)

val mask : t -> core:int -> unit
(** Disable IRQ delivery to [core] (DAIF.I set). Nestable; each [mask]
    needs a matching [unmask]. *)

val unmask : t -> core:int -> unit
(** Re-enable IRQ delivery; pending lines are delivered immediately. *)

val masked : t -> core:int -> bool

val raise_line : t -> Irq.line -> unit
(** Device-side: assert [line]. Delivered now if the target core is
    unmasked and a handler is installed; otherwise left pending (multiple
    raises of a pending line coalesce, like a level-triggered controller). *)

val send_ipi : t -> target:int -> unit
(** Software-generated interrupt: write core [target]'s local mailbox, so
    that core takes an [Irq.Ipi] interrupt. Equivalent to
    [raise_line t (Irq.Ipi target)]; masked or handler-less targets keep it
    pending like any level-triggered line. *)

val pending_count : t -> core:int -> int
(** Number of distinct lines pending on [core]; for tests and panic dumps. *)
