type report = { modifiers : int; keys : int list }

type t = {
  engine : Sim.Engine.t;
  intc : Intc.t;
  mutable ready : bool;
  mutable powered : bool;
  mutable modifiers : int;
  mutable held : int list;  (* usage codes, oldest first, max 6 *)
  mutable dirty : bool;
  mutable latched : report list;  (* newest first *)
  mutable msd : Bytes.t option;  (* mass-storage backing image *)
  mutable gen : int;  (* plug generation; stale poll fibers exit *)
}

let init_cost_ns = 1_100_000_000L
let frame_interval_ns = 8_000_000L

let create engine intc =
  {
    engine;
    intc;
    ready = false;
    powered = false;
    modifiers = 0;
    held = [];
    dirty = false;
    latched = [];
    msd = None;
    gen = 0;
  }

(* The host-controller frame service loop, as a fiber: latch a report and
   raise the interrupt when keys changed, then park for one 8 ms frame.
   One engine event per frame, exactly like the closure chain it
   replaces. *)
let poll_loop t gen () =
  while t.ready && t.gen = gen do
    if t.dirty then begin
      t.dirty <- false;
      t.latched <- { modifiers = t.modifiers; keys = t.held } :: t.latched;
      Intc.raise_line t.intc Irq.Usb_hc
    end;
    Sim.Fiber.sleep frame_interval_ns
  done

let power_on t =
  if not t.powered then begin
    t.powered <- true;
    let gen = t.gen in
    ignore
      (Sim.Engine.schedule_after t.engine init_cost_ns (fun () ->
           if t.powered && t.gen = gen then begin
             t.ready <- true;
             ignore (Sim.Fiber.run t.engine (poll_loop t gen))
           end))
  end

let ready t = t.ready

(* Surprise removal of the keyboard function: the port drops, the frame
   service loop stops, and any half-latched state is gone. The model
   treats the mass-storage function as a separate port, so a mounted
   /usb volume survives a keyboard unplug (losing it mid-session would
   turn every fuzz run into a bufcache panic, which is a different
   experiment). [replug] re-enumerates from scratch and pays the full
   [init_cost_ns] again, exactly like a fresh [power_on]. *)
let unplug t =
  if t.powered || t.ready then begin
    t.gen <- t.gen + 1;
    t.ready <- false;
    t.powered <- false;
    t.modifiers <- 0;
    t.held <- [];
    t.dirty <- false;
    t.latched <- []
  end

let replug t = power_on t

let key_down t ?modifiers usage =
  (match modifiers with Some m -> t.modifiers <- m | None -> ());
  if not (List.mem usage t.held) then begin
    t.held <- t.held @ [ usage ];
    if List.length t.held > 6 then t.held <- List.tl t.held;
    t.dirty <- true
  end

let key_up t usage =
  if List.mem usage t.held then begin
    t.held <- List.filter (fun u -> u <> usage) t.held;
    if t.held = [] then t.modifiers <- 0;
    t.dirty <- true
  end

(* ---- mass storage: bulk-only transport over full-speed USB ---- *)

let sector_bytes = 512
let msd_cmd_ns = 400_000L (* CBW + CSW round trip *)
let msd_bytes_per_sec = 2_000_000L (* the simple stack's bulk throughput *)

let attach_msd t image =
  if Bytes.length image mod sector_bytes <> 0 then
    invalid_arg "usb: msd image not sector-aligned";
  t.msd <- Some image

let msd_attached t = t.msd <> None

let msd_sectors t =
  match t.msd with Some img -> Bytes.length img / sector_bytes | None -> 0

let msd_cost ~count =
  Int64.add msd_cmd_ns
    (Int64.div
       (Int64.mul (Int64.of_int (count * sector_bytes)) 1_000_000_000L)
       msd_bytes_per_sec)

let msd_read t ~lba ~count =
  match t.msd with
  | None -> Error "usb: no mass-storage device"
  | Some img ->
      let total = Bytes.length img / sector_bytes in
      if count <= 0 || lba < 0 || lba > total - count then
        Error "usb: msd read out of range"
      else
        Ok
          ( Bytes.sub img (lba * sector_bytes) (count * sector_bytes),
            msd_cost ~count )

let msd_write t ~lba ~data =
  match t.msd with
  | None -> Error "usb: no mass-storage device"
  | Some img ->
      let len = Bytes.length data in
      if len = 0 || len mod sector_bytes <> 0 then
        Error "usb: msd write not sector-aligned"
      else begin
        let count = len / sector_bytes in
        let total = Bytes.length img / sector_bytes in
        if lba < 0 || lba > total - count then Error "usb: msd write out of range"
        else begin
          Bytes.blit data 0 img (lba * sector_bytes) len;
          Ok (msd_cost ~count)
        end
      end

let take_reports t =
  let reports = List.rev t.latched in
  t.latched <- [];
  reports

let reports_pending t = List.length t.latched
