(** The kernel's one sanctioned way to die.

    Kernel paths must return [Errno] values to userspace; conditions that
    cannot be surfaced that way (corrupted invariants, impossible states,
    boot-time misconfiguration) raise {!Panic} through this module instead
    of [invalid_arg]/[failwith] — vlint's no-raise rule bans those
    elsewhere in [lib/core], so every kernel death funnels through here
    and is greppable, catchable and testable as one exception type. *)

exception Panic of string

(* The flight recorder's attachment point: the kernel installs a dump
   hook at boot ({!Panic.flight_record}) and every death that funnels
   through [panicf] fires it before raising. The hook must never turn a
   panic into a different failure, so anything it raises is swallowed. *)
let on_panic : (string -> unit) option ref = ref None
let set_on_panic f = on_panic := Some f
let clear_on_panic () = on_panic := None

let panicf fmt =
  Printf.ksprintf
    (fun msg ->
      (match !on_panic with
      | Some f -> ( try f msg with _ -> ())
      | None -> ());
      raise (Panic msg))
    fmt
