(** The kernel's one sanctioned way to die.

    Kernel paths must return [Errno] values to userspace; conditions that
    cannot be surfaced that way (corrupted invariants, impossible states,
    boot-time misconfiguration) raise {!Panic} through this module instead
    of [invalid_arg]/[failwith] — vlint's no-raise rule bans those
    elsewhere in [lib/core], so every kernel death funnels through here
    and is greppable, catchable and testable as one exception type. *)

exception Panic of string

let panicf fmt = Printf.ksprintf (fun msg -> raise (Panic msg)) fmt
