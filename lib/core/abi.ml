(** The user/kernel ABI: VOS's syscalls and the trap mechanism.

    In the real VOS, user code at EL0 executes [svc #0] and the kernel
    resumes it after the trap. Here the trap boundary is an OCaml effect:
    user code [perform]s {!Sys}, the kernel captures the one-shot
    continuation, runs the syscall path (charging simulated time), and
    resumes — or parks — the continuation. {!Burn} is how user code accounts
    for its own CPU work (every pixel pushed, hash computed, or sample
    decoded costs cycles), and is also the kernel's preemption point.

    The paper's 28 syscalls, in its three categories (§3), plus [fsync] —
    added alongside the write-back buffer cache, since deferred writes
    make durability an explicit request — [nice], added with the MLFQ
    scheduling class so a task can declare its own weight — and [poll]
    (number 31), added with the IPC rebuild so event-driven apps can
    multiplex pipes, /dev/events and the console instead of spinning on
    O_NONBLOCK reads:
    - tasks & time: fork exec exit wait kill getpid sleep uptime nice sbrk
      cacheflush
    - files: open close read write lseek dup pipe fstat mkdir unlink chdir
      mmap fsync poll
    - threading & sync: clone join sem_open sem_post sem_wait sem_close

    One concession to the host language: [fork] and [clone] carry the
    child's body as a closure, because OCaml's one-shot continuations cannot
    be duplicated the way a page table can. The kernel still performs (and
    charges for) the full address-space copy; only the "return twice"
    idiom is replaced by an explicit child entry point. *)

(* open() flags, numerically compatible with xv6's fcntl.h *)
let o_rdonly = 0x000
let o_wronly = 0x001
let o_rdwr = 0x002
let o_create = 0x200
let o_trunc = 0x400
let o_nonblock = 0x800

(* lseek whence *)
let seek_set = 0
let seek_cur = 1
let seek_end = 2

type ftype_tag = T_dir | T_file | T_dev

type stat = {
  stat_type : ftype_tag;
  stat_size : int;
  stat_nlink : int;
  stat_ino : int;
}

(** What a syscall returns to userspace. Plain integers cover most calls
    (negative = -errno, as in the C ABI); the data-bearing calls have their
    own arms rather than copying through user pointers. *)
type ret =
  | R_int of int
  | R_bytes of Bytes.t  (** read *)
  | R_pair of int * int  (** pipe *)
  | R_stat of stat  (** fstat *)
  | R_mmap of int * int * int  (** mmap: address, width, height *)

type syscall =
  (* tasks & time *)
  | Fork of (unit -> int)  (** child body; see note above *)
  | Exec of string * string list
  | Exit of int
  | Wait
  | Kill of int
  | Getpid
  | Sleep of int  (** milliseconds *)
  | Uptime
  | Nice of int  (** adjust own scheduling weight, -20..19; returns it *)
  | Sbrk of int  (** bytes, may be negative *)
  | Cacheflush  (** clean the framebuffer range (§4.3) *)
  (* files *)
  | Open of string * int
  | Close of int
  | Read of int * int  (** fd, length *)
  | Write of int * Bytes.t
  | Lseek of int * int * int  (** fd, offset, whence *)
  | Dup of int
  | Pipe of int  (** flags: O_NONBLOCK applies to both ends *)
  | Fstat of int
  | Mkdir of string
  | Unlink of string
  | Chdir of string
  | Mmap of int  (** fd; only /dev/fb supports it *)
  | Fsync of int  (** fd; flush the backing cache's dirty blocks *)
  | Poll of int list * int
      (** fds, timeout in ms (negative = forever, 0 = just probe);
          returns a readiness bitmask, bit i set when the i-th fd would
          not block (data/EOF on read ends, space on pipe write ends) *)
  (* threading & sync *)
  | Clone of (unit -> int)  (** CLONE_VM thread body *)
  | Join of int
  | Sem_open of int  (** initial value; returns sem id *)
  | Sem_post of int
  | Sem_wait of int
  | Sem_close of int

let syscall_count = 31

let syscall_name = function
  | Fork _ -> "fork"
  | Exec _ -> "exec"
  | Exit _ -> "exit"
  | Wait -> "wait"
  | Kill _ -> "kill"
  | Getpid -> "getpid"
  | Sleep _ -> "sleep"
  | Uptime -> "uptime"
  | Nice _ -> "nice"
  | Sbrk _ -> "sbrk"
  | Cacheflush -> "cacheflush"
  | Open _ -> "open"
  | Close _ -> "close"
  | Read _ -> "read"
  | Write _ -> "write"
  | Lseek _ -> "lseek"
  | Dup _ -> "dup"
  | Pipe _ -> "pipe"
  | Fstat _ -> "fstat"
  | Mkdir _ -> "mkdir"
  | Unlink _ -> "unlink"
  | Chdir _ -> "chdir"
  | Mmap _ -> "mmap"
  | Fsync _ -> "fsync"
  | Poll _ -> "poll"
  | Clone _ -> "clone"
  | Join _ -> "join"
  | Sem_open _ -> "sem_open"
  | Sem_post _ -> "sem_post"
  | Sem_wait _ -> "sem_wait"
  | Sem_close _ -> "sem_close"

(* Stable dense numbering for the syscall ctors, in declaration order.
   Vprobe keys its per-syscall probe points off these indices; keep
   [syscall_names] aligned with [syscall_index] (a mismatch shows up as
   a probe firing under the wrong name in /proc/vprobe). *)
let syscall_names =
  [
    "fork"; "exec"; "exit"; "wait"; "kill"; "getpid"; "sleep"; "uptime";
    "nice"; "sbrk"; "cacheflush"; "open"; "close"; "read"; "write";
    "lseek"; "dup"; "pipe"; "fstat"; "mkdir"; "unlink"; "chdir"; "mmap";
    "fsync"; "poll"; "clone"; "join"; "sem_open"; "sem_post"; "sem_wait";
    "sem_close";
  ]

let syscall_index = function
  | Fork _ -> 0
  | Exec _ -> 1
  | Exit _ -> 2
  | Wait -> 3
  | Kill _ -> 4
  | Getpid -> 5
  | Sleep _ -> 6
  | Uptime -> 7
  | Nice _ -> 8
  | Sbrk _ -> 9
  | Cacheflush -> 10
  | Open _ -> 11
  | Close _ -> 12
  | Read _ -> 13
  | Write _ -> 14
  | Lseek _ -> 15
  | Dup _ -> 16
  | Pipe _ -> 17
  | Fstat _ -> 18
  | Mkdir _ -> 19
  | Unlink _ -> 20
  | Chdir _ -> 21
  | Mmap _ -> 22
  | Fsync _ -> 23
  | Poll _ -> 24
  | Clone _ -> 25
  | Join _ -> 26
  | Sem_open _ -> 27
  | Sem_post _ -> 28
  | Sem_wait _ -> 29
  | Sem_close _ -> 30

(* The first user-visible argument of a syscall, as an integer, for
   vprobe's [arg0] predicate: the fd for file calls, the pid/tid for
   task calls, the count/value otherwise; 0 where no integer argument
   exists (fork, exec, wait, ...). *)
let syscall_arg0 = function
  | Fork _ | Exec _ | Wait | Getpid | Uptime | Cacheflush | Clone _ -> 0
  | Exit code -> code
  | Kill pid -> pid
  | Sleep ms -> ms
  | Nice n -> n
  | Sbrk n -> n
  | Open (_, flags) -> flags
  | Close fd
  | Read (fd, _)
  | Write (fd, _)
  | Lseek (fd, _, _)
  | Dup fd
  | Fstat fd
  | Mmap fd
  | Fsync fd ->
      fd
  | Pipe flags -> flags
  | Mkdir _ | Unlink _ | Chdir _ -> 0
  | Poll (fds, _) -> List.length fds
  | Join tid -> tid
  | Sem_open v -> v
  | Sem_post id | Sem_wait id | Sem_close id -> id

(* The fd a syscall operates on, when it has one, for vprobe's [fd]
   predicate. *)
let syscall_fd = function
  | Close fd
  | Read (fd, _)
  | Write (fd, _)
  | Lseek (fd, _, _)
  | Dup fd
  | Fstat fd
  | Mmap fd
  | Fsync fd ->
      Some fd
  | Fork _ | Exec _ | Exit _ | Wait | Kill _ | Getpid | Sleep _ | Uptime
  | Nice _ | Sbrk _ | Cacheflush | Open _ | Pipe _ | Mkdir _ | Unlink _
  | Chdir _ | Poll _ | Clone _ | Join _ | Sem_open _ | Sem_post _
  | Sem_wait _ | Sem_close _ ->
      None

type _ Effect.t +=
  | Sys : syscall -> ret Effect.t
        (** the trap: user → kernel *)
  | Burn : int -> unit Effect.t
        (** consume N CPU cycles of user work; preemptible *)
  | Offload : int * (unit -> 'r) -> 'r Effect.t
        (** [Offload (cycles, fn)] burns [cycles] like {!Burn} while the
            host runs [fn] — a pure function of its captures, forbidden
            from touching kernel or simulation state — possibly on
            another domain ({!Sim.Engine.schedule_par}). The result is
            delivered when the burn completes. *)
  | Frame_mark : string -> unit Effect.t
        (** shadow-stack push/pop for the unwinder; "" pops *)
