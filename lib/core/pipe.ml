(** Pipes. Two selectable implementations share this module:

    - the xv6 port the paper measures (512-byte buffer, byte-wise copy
      loop, wakeup on every operation) — Figure 11 shows it becoming the
      latency bottleneck even for 10-byte keyboard events in mario-proc;
    - a configurable fast path ({!Kconfig.pipe_ring} /
      {!Kconfig.pipe_wake_edge}): a power-of-two ring with [Bytes.blit]
      bulk copies sized by {!Kconfig.pipe_buffer_bytes}, and
      edge-triggered wakeups (readers woken only on empty→non-empty,
      writers only on full→not-full).

    The slow path stays the default so the paper numbers are untouched;
    ipcbench walks the ladder. Both paths share the POSIX fixes: a write
    with no readers left returns [-EPIPE], a blocked write whose readers
    vanish mid-transfer returns the bytes already sent, and O_NONBLOCK
    reaches both directions. *)

(** Per-kernel pipe behavior, derived from [Kconfig] at boot plus the
    kernel's IPC counters (threaded in so pipes are not coupled to the
    whole Vfs). *)
type params = {
  ring : bool;
  edge : bool;
  ring_bytes : int;
  stats : Ipcstats.t;
}

let params_of_config (cfg : Kconfig.t) stats =
  {
    ring = cfg.Kconfig.pipe_ring;
    edge = cfg.Kconfig.pipe_wake_edge;
    ring_bytes = cfg.Kconfig.pipe_buffer_bytes;
    stats;
  }

type t = {
  pipe_id : int;
  p : params;
  cap : int;  (** power of two, so positions are masked *)
  data : Bytes.t;
  mutable rpos : int; [@locked_by "plock"]
  mutable wpos : int; [@locked_by "plock"]
      (** count of bytes ever read/written; w-r = fill *)
  mutable readers : int; [@locked_by "plock"]
  mutable writers : int; [@locked_by "plock"]
  rchan : string;
  wchan : string;
  plock : Spinlock.t;
      (** discipline-only leaf lock (no [~kcheck], no trace events) for the
          ring positions and end counts; vrace R101 checks the windows,
          R103 that nothing inside them can block *)
}

let next_id = ref 0

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let create p =
  incr next_id;
  let id = !next_id in
  let cap =
    if p.ring then pow2_at_least (max 64 p.ring_bytes) 64
    else Kcost.pipe_buffer_bytes
  in
  {
    pipe_id = id;
    p;
    cap;
    data = Bytes.create cap;
    rpos = 0;
    wpos = 0;
    readers = 1;
    writers = 1;
    rchan = Printf.sprintf "pipe:%d:r" id;
    wchan = Printf.sprintf "pipe:%d:w" id;
    plock = Spinlock.create "plock";
  }

let fill t = t.wpos - t.rpos
let space t = t.cap - fill t
let mask t pos = pos land (t.cap - 1)

let push_byte t c =
  Spinlock.protect t.plock (fun () ->
      Bytes.set t.data (mask t t.wpos) c;
      t.wpos <- t.wpos + 1)

let pop_byte t =
  Spinlock.protect t.plock (fun () ->
      let c = Bytes.get t.data (mask t t.rpos) in
      t.rpos <- t.rpos + 1;
      c)

(* Ring fast path: move [n] bytes with at most two blits (one split at
   the wrap boundary), modeled at memmove speed instead of the byte
   loop's one-byte-per-iteration cost. *)
let blit_in t src srcoff n =
  Spinlock.protect t.plock (fun () ->
      let w = mask t t.wpos in
      let first = min n (t.cap - w) in
      Bytes.blit src srcoff t.data w first;
      if n > first then Bytes.blit src (srcoff + first) t.data 0 (n - first);
      t.wpos <- t.wpos + n)

let copy_charge t n =
  if t.p.ring then Kcost.copy_cycles ~bytes:n else Kcost.pipe_per_byte * n

(* Wake the read side after data arrived. Level mode (xv6) is the
   caller's responsibility — it wakes on every op exactly where the seed
   did, keeping the charge sequence bit-identical. Edge mode wakes only
   on the empty→non-empty transition and tallies the ops whose wakeup
   was suppressed. *)
let wake_readers_edge ctx t ~was_empty =
  let sched = ctx.Sched.sched in
  if was_empty && fill t > 0 then begin
    Sched.charge ctx Kcost.wakeup;
    t.p.stats.Ipcstats.wakeups_issued <-
      t.p.stats.Ipcstats.wakeups_issued + 1;
    Sched.wake_all sched t.rchan
  end
  else
    t.p.stats.Ipcstats.wakeups_suppressed <-
      t.p.stats.Ipcstats.wakeups_suppressed + 1

let wake_writers_edge ctx t ~was_full =
  let sched = ctx.Sched.sched in
  if was_full && space t > 0 then begin
    Sched.charge ctx Kcost.wakeup;
    t.p.stats.Ipcstats.wakeups_issued <-
      t.p.stats.Ipcstats.wakeups_issued + 1;
    Sched.wake_all sched t.wchan
  end
  else
    t.p.stats.Ipcstats.wakeups_suppressed <-
      t.p.stats.Ipcstats.wakeups_suppressed + 1

(* Readiness probes for poll(2). A read fd is ready when data is buffered
   or EOF is observable; a write fd when space exists or the write would
   fail immediately with EPIPE. *)
let read_ready t = fill t > 0 || t.writers = 0
let write_ready t = space t > 0 || t.readers = 0

(* Write all of [data]; blocks while the buffer is full, like xv6's
   pipewrite. A readerless pipe yields -EPIPE, or the partial count if
   the readers vanished after some bytes were already transferred. *)
let write ctx t data ~nonblock =
  let sched = ctx.Sched.sched in
  let len = Bytes.length data in
  let sent = ref 0 in
  t.p.stats.Ipcstats.pipe_writes <- t.p.stats.Ipcstats.pipe_writes + 1;
  (let vp = sched.Sched.vprobe in
   if Vprobe.armed vp Vprobe.pt_pipe_write then
     Vprobe.fire vp Vprobe.pt_pipe_write
       { Vprobe.no_args with
         Vprobe.a_pid = ctx.Sched.task.Task.pid;
         Vprobe.a_core = max 0 ctx.Sched.task.Task.last_core;
         Vprobe.a_arg0 = len });
  let rec step () =
    if t.readers = 0 then
      Sched.finish ctx
        (Abi.R_int (if !sent > 0 then !sent else -Errno.epipe))
    else if !sent >= len then
      if t.p.edge then Sched.finish ctx (Abi.R_int len)
      else begin
        Sched.charge ctx Kcost.wakeup;
        t.p.stats.Ipcstats.wakeups_issued <-
          t.p.stats.Ipcstats.wakeups_issued + 1;
        Sched.wake_all sched t.rchan;
        Sched.finish ctx (Abi.R_int len)
      end
    else if space t = 0 then
      if nonblock then
        Sched.finish ctx
          (Abi.R_int (if !sent > 0 then !sent else -Errno.eagain))
      else if t.p.edge then
        (* readers were woken at the empty→non-empty edge; the data is
           theirs to drain *)
        Sched.block ctx ~chan:t.wchan ~retry:step
      else begin
        (* wake readers to drain, then sleep on write space *)
        Sched.wake_all sched t.rchan;
        Sched.block ctx ~chan:t.wchan ~retry:step
      end
    else begin
      let n = min (len - !sent) (space t) in
      let was_empty = fill t = 0 in
      if t.p.ring then blit_in t data !sent n
      else
        for i = 0 to n - 1 do
          push_byte t (Bytes.get data (!sent + i))
        done;
      Sched.charge ctx (copy_charge t n);
      sent := !sent + n;
      t.p.stats.Ipcstats.pipe_bytes <- t.p.stats.Ipcstats.pipe_bytes + n;
      if t.p.edge then wake_readers_edge ctx t ~was_empty;
      Sched.poll_wake sched;
      step ()
    end
  in
  step ()

(* Read up to [len] bytes; blocks while empty and writers remain. *)
let read ctx t ~len ~nonblock =
  let sched = ctx.Sched.sched in
  t.p.stats.Ipcstats.pipe_reads <- t.p.stats.Ipcstats.pipe_reads + 1;
  let entered_ns = Sched.now sched in
  let rec step () =
    if fill t > 0 then begin
      (* how long this read waited for data (0 when it was already
         buffered) — kperf bookkeeping only, no cycles charged *)
      Kperf.Hist.record sched.Sched.h_pipe_wait
        (Int64.sub (Sched.now sched) entered_ns);
      let n = min len (fill t) in
      let was_full = space t = 0 in
      let out = Bytes.create n in
      (if t.p.ring then
         Spinlock.protect t.plock (fun () ->
             let r = mask t t.rpos in
             let first = min n (t.cap - r) in
             Bytes.blit t.data r out 0 first;
             if n > first then Bytes.blit t.data 0 out first (n - first);
             t.rpos <- t.rpos + n)
       else
         for i = 0 to n - 1 do
           Bytes.set out i (pop_byte t)
         done);
      t.p.stats.Ipcstats.pipe_bytes <- t.p.stats.Ipcstats.pipe_bytes + n;
      if t.p.edge then begin
        Sched.charge ctx (copy_charge t n);
        wake_writers_edge ctx t ~was_full
      end
      else begin
        Sched.charge ctx (copy_charge t n + Kcost.wakeup);
        t.p.stats.Ipcstats.wakeups_issued <-
          t.p.stats.Ipcstats.wakeups_issued + 1;
        Sched.wake_all sched t.wchan
      end;
      Sched.poll_wake sched;
      (let vp = sched.Sched.vprobe in
       if Vprobe.armed vp Vprobe.pt_pipe_read then
         Vprobe.fire vp Vprobe.pt_pipe_read
           { Vprobe.no_args with
             Vprobe.a_pid = ctx.Sched.task.Task.pid;
             Vprobe.a_core = max 0 ctx.Sched.task.Task.last_core;
             Vprobe.a_arg0 = n;
             Vprobe.a_latency_ns = Int64.sub (Sched.now sched) entered_ns });
      Sched.finish ctx (Abi.R_bytes out)
    end
    else if t.writers = 0 then Sched.finish ctx (Abi.R_bytes Bytes.empty)
    else if nonblock then Sched.finish ctx (Abi.R_int (-Errno.eagain))
    else Sched.block ctx ~chan:t.rchan ~retry:step
  in
  step ()

(* The wakeups run after the window closes: waking can synchronously
   resume a blocked reader/writer that re-enters the pipe. *)
let close_read sched t =
  let remaining =
    Spinlock.protect t.plock (fun () ->
        t.readers <- t.readers - 1;
        t.readers)
  in
  if remaining = 0 then begin
    Sched.wake_all sched t.wchan;
    Sched.poll_wake sched
  end

let close_write sched t =
  let remaining =
    Spinlock.protect t.plock (fun () ->
        t.writers <- t.writers - 1;
        t.writers)
  in
  if remaining = 0 then begin
    Sched.wake_all sched t.rchan;
    Sched.poll_wake sched
  end

