(** Device files (§4.4): /dev/fb, /dev/events, /dev/event1, /dev/sb,
    /dev/surface, /dev/console, /dev/null.

    Each open yields a {!Fd.dev_ops} vtable. The framebuffer supports
    mmap — VOS's DRI-style direct rendering (§4.3): the mapping hands the
    app the framebuffer itself (standing in for the identity-mapped
    address), and from then on user-space writes bypass the kernel, with
    cacheflush(2) needed to make frames visible. *)

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  console : Console.t;
  kbd : Kbd.t;
  audio : Audio.t option;
  wm : Wm.t option;
  fb : Hw.Framebuffer.t option;
}

let create ~board ~sched ~console ~kbd ~audio ~wm ~fb =
  { board; sched; console; kbd; audio; wm; fb }

let finish_err ctx e = Sched.finish ctx (Abi.R_int (-e))

(* ---- /dev/null ---- *)

let null_ops =
  {
    Fd.dev_name = "null";
    dev_read = (fun ctx _ ~len:_ -> Sched.finish ctx (Abi.R_bytes Bytes.empty));
    dev_write =
      (fun ctx _ data -> Sched.finish ctx (Abi.R_int (Bytes.length data)));
    dev_mmap = None;
    dev_close = (fun _ -> ());
    dev_poll = None;
  }

(* ---- /dev/console ---- *)

let console_ops t =
  {
    Fd.dev_name = "console";
    dev_read =
      (fun ctx file ~len ->
        Console.read ctx t.console ~len ~nonblock:file.Fd.nonblock);
    dev_write = (fun ctx _ data -> Console.write ctx t.console data);
    dev_mmap = None;
    dev_close = (fun _ -> ());
    dev_poll = Some (fun _ _ -> Console.rx_ready t.console);
  }

(* ---- /dev/events: the raw keyboard queue ---- *)

let events_ops t =
  {
    Fd.dev_name = "events";
    dev_read =
      (fun ctx file ~len ->
        Kbd.read ctx t.kbd ~len ~nonblock:file.Fd.nonblock);
    dev_write = (fun ctx _ _ -> finish_err ctx Errno.einval);
    dev_mmap = None;
    dev_close = (fun _ -> ());
    dev_poll = Some (fun _ _ -> Kbd.pending t.kbd > 0);
  }

(* ---- /dev/event1: WM-routed events for the opener's surface ---- *)

let event1_ops t =
  match t.wm with
  | None -> None
  | Some wm ->
      Some
        {
          Fd.dev_name = "event1";
          dev_read =
            (fun ctx file ~len ->
              let pid = ctx.Sched.task.Task.pid in
              let sid =
                match ctx.Sched.task.Task.wm_surface with
                | Some sid -> sid
                | None -> file.Fd.dev_cookie
              in
              if len < Kbd.event_bytes then finish_err ctx Errno.einval
              else
              match Wm.surface wm sid with
              | None -> finish_err ctx Errno.ebadf
              | Some s ->
                  let rec attempt () =
                    if not (Queue.is_empty s.Wm.events) then begin
                      let nev =
                        min (len / Kbd.event_bytes) (Queue.length s.Wm.events)
                      in
                      let buf = Buffer.create (nev * Kbd.event_bytes) in
                      for _ = 1 to nev do
                        Buffer.add_bytes buf (Kbd.encode (Queue.pop s.Wm.events))
                      done;
                      Sched.charge ctx (Kcost.event_copy * nev);
                      Sched.trace_emit_task ctx.Sched.sched ctx.Sched.task
                        (Ktrace.Event_delivered pid);
                      Sched.finish ctx (Abi.R_bytes (Buffer.to_bytes buf))
                    end
                    else if file.Fd.nonblock then finish_err ctx Errno.eagain
                    else Sched.block ctx ~chan:s.Wm.ev_chan ~retry:attempt
                  in
                  attempt ());
          dev_write = (fun ctx _ _ -> finish_err ctx Errno.einval);
          dev_mmap = None;
          dev_close = (fun _ -> ());
          dev_poll =
            Some
              (fun ctx file ->
                let sid =
                  match ctx.Sched.task.Task.wm_surface with
                  | Some sid -> sid
                  | None -> file.Fd.dev_cookie
                in
                match Wm.surface wm sid with
                | None -> true (* let the read report the error *)
                | Some s -> not (Queue.is_empty s.Wm.events));
        }

(* ---- /dev/fb: write path and mmap ---- *)

let fb_ops t =
  match t.fb with
  | None -> None
  | Some fb ->
      let width = Hw.Framebuffer.width fb in
      Some
        {
          Fd.dev_name = "fb";
          dev_read = (fun ctx _ ~len:_ -> finish_err ctx Errno.einval);
          dev_write =
            (fun ctx file data ->
              (* pixels as 4-byte BGRA at the file offset *)
              let npx = Bytes.length data / 4 in
              let base = file.Fd.off / 4 in
              for i = 0 to npx - 1 do
                let px =
                  Bytes.get_uint8 data (4 * i)
                  lor (Bytes.get_uint8 data ((4 * i) + 1) lsl 8)
                  lor (Bytes.get_uint8 data ((4 * i) + 2) lsl 16)
                in
                let pos = base + i in
                Hw.Framebuffer.write_pixel fb ~x:(pos mod width)
                  ~y:(pos / width) px
              done;
              file.Fd.off <- file.Fd.off + Bytes.length data;
              Sched.charge ctx (Kcost.copy_cycles ~bytes:(Bytes.length data));
              Sched.finish ctx (Abi.R_int (Bytes.length data)));
          dev_mmap =
            Some
              (fun ctx _file ->
                (match ctx.Sched.task.Task.vm with
                | Some vm ->
                    ignore
                      (Vm.add_mapping vm ~name:"fb"
                         ~bytes:
                           (4 * width * Hw.Framebuffer.height fb)
                         ~cached:true)
                | None -> ());
                Sched.charge ctx (Kcost.sbrk_per_page * 16);
                Sched.finish ctx
                  (Abi.R_mmap (Vm.fb_bus_address, width, Hw.Framebuffer.height fb)));
          dev_close = (fun _ -> ());
          dev_poll = None;
        }

(* ---- /dev/sb: sound ---- *)

let sb_ops t =
  match t.audio with
  | None -> None
  | Some audio ->
      Some
        {
          Fd.dev_name = "sb";
          dev_read = (fun ctx _ ~len:_ -> finish_err ctx Errno.einval);
          dev_write = (fun ctx _ data -> Audio.write ctx audio data);
          dev_mmap = None;
          dev_close = (fun _ -> ());
          dev_poll = None;
        }

(* ---- /dev/surface: indirect rendering through the WM ----

   Protocol: the first write is a 24-byte header
   "SURF" w h x y alpha — creating the window; every subsequent write is a
   full frame of w*h 4-byte pixels. *)

let header_bytes = 24

let surface_ops t =
  match t.wm with
  | None -> None
  | Some wm ->
      Some
        {
          Fd.dev_name = "surface";
          dev_read = (fun ctx _ ~len:_ -> finish_err ctx Errno.einval);
          dev_write =
            (fun ctx file data ->
              let get32 off =
                Bytes.get_uint8 data off
                lor (Bytes.get_uint8 data (off + 1) lsl 8)
                lor (Bytes.get_uint8 data (off + 2) lsl 16)
                lor (Bytes.get_uint8 data (off + 3) lsl 24)
              in
              if file.Fd.dev_cookie < 0 then begin
                if
                  Bytes.length data < header_bytes
                  || not (String.equal (Bytes.sub_string data 0 4) "SURF")
                then finish_err ctx Errno.einval
                else begin
                  let w = get32 4 and h = get32 8 in
                  let x = get32 12 and y = get32 16 in
                  let alpha = Bytes.get_uint8 data 20 in
                  if w <= 0 || h <= 0 || w > 4096 || h > 4096 then
                    finish_err ctx Errno.einval
                  else begin
                    let s =
                      Wm.create_surface wm ~owner_pid:ctx.Sched.task.Task.pid
                        ~width:w ~height:h ~x ~y ~alpha
                    in
                    file.Fd.dev_cookie <- s.Wm.surf_id;
                    ctx.Sched.task.Task.wm_surface <- Some s.Wm.surf_id;
                    Sched.charge ctx Kcost.wm_per_window;
                    Sched.finish ctx (Abi.R_int (Bytes.length data))
                  end
                end
              end
              else begin
                match Wm.surface wm file.Fd.dev_cookie with
                | None -> finish_err ctx Errno.ebadf
                | Some s ->
                    let npx =
                      min (Bytes.length data / 4) (s.Wm.width * s.Wm.height)
                    in
                    for i = 0 to npx - 1 do
                      s.Wm.pixels.(i) <-
                        Bytes.get_uint8 data (4 * i)
                        lor (Bytes.get_uint8 data ((4 * i) + 1) lsl 8)
                        lor (Bytes.get_uint8 data ((4 * i) + 2) lsl 16)
                    done;
                    s.Wm.dirty <- true;
                    s.Wm.frames <- s.Wm.frames + 1;
                    Sched.trace_emit_task ctx.Sched.sched ctx.Sched.task
                      (Ktrace.Frame_present ctx.Sched.task.Task.pid);
                    Sched.charge ctx (Kcost.copy_cycles ~bytes:(4 * npx));
                    Sched.finish ctx (Abi.R_int (Bytes.length data))
              end);
          dev_mmap = None;
          dev_close =
            (fun file ->
              if file.Fd.dev_cookie >= 0 then
                Wm.remove_surface wm file.Fd.dev_cookie);
          dev_poll = None;
        }

(* ---- lookup ---- *)

let lookup t name =
  match name with
  | "null" -> Some null_ops
  | "console" | "uart" -> Some (console_ops t)
  | "events" -> Some (events_ops t)
  | "event1" -> event1_ops t
  | "fb" -> fb_ops t
  | "sb" -> sb_ops t
  | "surface" -> surface_ops t
  | _ -> None

let names t =
  List.filter
    (fun n -> lookup t n <> None)
    [ "null"; "console"; "events"; "event1"; "fb"; "sb"; "surface" ]
