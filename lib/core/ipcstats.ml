(** IPC-path counters, surfaced through [/proc/ipc].

    One instance per kernel (benches boot many kernels per process, so
    these must not be module globals). The wakeup counters are the
    observable for the edge-triggered ablation: under the xv6 model every
    pipe op issues a wakeup; under [pipe_wake_edge] only the empty→
    non-empty and full→not-full transitions do, and the ops that would
    have woken someone are tallied as suppressed. *)

type t = {
  mutable pipe_writes : int;
  mutable pipe_reads : int;
  mutable pipe_bytes : int;  (** bytes moved through pipes, both ways *)
  mutable wakeups_issued : int;
  mutable wakeups_suppressed : int;
  mutable polls : int;  (** poll syscalls entered *)
  mutable poll_immediate : int;  (** returned ready without blocking *)
  mutable poll_blocked : int;  (** had to sleep at least once *)
  mutable poll_timeouts : int;  (** returned 0 on timeout expiry *)
}

let create () =
  {
    pipe_writes = 0;
    pipe_reads = 0;
    pipe_bytes = 0;
    wakeups_issued = 0;
    wakeups_suppressed = 0;
    polls = 0;
    poll_immediate = 0;
    poll_blocked = 0;
    poll_timeouts = 0;
  }

let render t =
  String.concat ""
    (List.map
       (fun (k, v) -> Printf.sprintf "%-18s %d\n" k v)
       [
         ("pipe_writes", t.pipe_writes);
         ("pipe_reads", t.pipe_reads);
         ("pipe_bytes", t.pipe_bytes);
         ("wakeups_issued", t.wakeups_issued);
         ("wakeups_suppressed", t.wakeups_suppressed);
         ("polls", t.polls);
         ("poll_immediate", t.poll_immediate);
         ("poll_blocked", t.poll_blocked);
         ("poll_timeouts", t.poll_timeouts);
       ])
