(** The VFS: one file abstraction over xv6fs, FAT32, devfs, procfs and
    pipes (§4.4–4.5).

    Path routing is exactly VOS's: the root filesystem (xv6fs on ramdisk)
    owns "/", the FAT32 partition is mounted under "/d", and "/dev" and
    "/proc" are intercepted. File syscalls are interposed and dispatched by
    path — the pseudo-inode bridge for FatFS lives in the K_fat file kind. *)

type t = {
  sched : Sched.t;
  config : Kconfig.t;
  fdt : Fd.t;
  root : Fs.Xv6fs.t;
  root_bc : Bufcache.t;
  mutable fat_mounts : (string * Fs.Fat32.t * Bufcache.t) list;
      (** FAT32 mount points: "/d" for the SD partition (§4.5), plus any
          USB mass-storage sticks ("/usb") *)
  devfs : Devfs.t;
  procfs : Procfs.t;
  ipc : Pipe.params;  (** pipe implementation knobs + the IPC counters *)
}

let create ~sched ~config ~fdt ~root ~root_bc ~devfs ~procfs ~ipc =
  { sched; config; fdt; root; root_bc; fat_mounts = []; devfs; procfs; ipc }

let mount_fat t ~at fat bc = t.fat_mounts <- t.fat_mounts @ [ (at, fat, bc) ]

let resolve ctx path =
  let cwd = ctx.Sched.task.Task.cwd in
  Fs.Vpath.join cwd path

type route =
  | To_dev of string
  | To_proc of string
  | To_fat of Fs.Fat32.t * Bufcache.t * string
  | To_root of string

let route t path =
  match Fs.Vpath.strip_prefix ~prefix:"/dev" path with
  | Some rest when not (String.equal rest "/") ->
      To_dev (Fs.Vpath.basename rest)
  | Some _ | None -> (
      match Fs.Vpath.strip_prefix ~prefix:"/proc" path with
      | Some rest when not (String.equal rest "/") ->
          To_proc (Fs.Vpath.basename rest)
      | Some _ | None -> (
          let fat_hit =
            List.find_map
              (fun (at, fat, bc) ->
                match Fs.Vpath.strip_prefix ~prefix:at path with
                | Some rest -> Some (To_fat (fat, bc, rest))
                | None -> None)
              t.fat_mounts
          in
          match fat_hit with Some r -> r | None -> To_root path))

let err ctx e = Sched.finish ctx (Abi.R_int (-e))

let charge_dispatch ctx =
  Sched.charge ctx (Kcost.fd_lookup + Kcost.vfs_dispatch)

(* ---- open ---- *)

let want_read flags = flags land 0x3 <> Abi.o_wronly
let want_write flags = flags land 0x3 <> Abi.o_rdonly

let open_xv6 ctx t path flags =
  Bufcache.with_ctx t.root_bc ctx (fun () ->
      let node =
        match Fs.Xv6fs.lookup t.root path with
        | Ok node -> Ok node
        | Error _ when flags land Abi.o_create <> 0 ->
            Fs.Xv6fs.create t.root path Fs.Xv6fs.Reg
        | Error e -> Error e
      in
      match node with
      | Error e -> err ctx (Errno.of_fs_error e)
      | Ok node ->
          let st = Fs.Xv6fs.stat_of t.root node in
          (* xv6 semantics: directories open read-only. A writable dir fd
             would let write(2) scribble raw dirents over the directory
             body — self-inflicted fs corruption via the syscall ABI. *)
          if st.Fs.Xv6fs.st_type = Fs.Xv6fs.Dir && want_write flags then
            err ctx Errno.eisdir
          else begin
          if flags land Abi.o_trunc <> 0 && st.Fs.Xv6fs.st_type = Fs.Xv6fs.Reg
          then Fs.Xv6fs.truncate t.root node;
          let file =
            Fd.make_file
              ~kind:(Fd.K_xv6 (t.root, node))
              ~readable:(want_read flags) ~writable:(want_write flags)
              ~nonblock:false
          in
          (match Fd.alloc t.fdt ~pid:ctx.Sched.task.Task.pid file with
          | Ok fd -> Sched.finish ctx (Abi.R_int fd)
          | Error e -> err ctx e)
          end)

let open_fat ctx t fat bc sub flags =
  Bufcache.with_ctx bc ctx (fun () ->
          Sched.charge ctx Kcost.pseudo_inode;
          let ensure () =
            match Fs.Fat32.stat fat sub with
            | Ok st -> Ok st
            | Error _ when flags land Abi.o_create <> 0 -> (
                match Fs.Fat32.create fat sub with
                | Ok () -> Fs.Fat32.stat fat sub
                | Error e -> Error e)
            | Error e -> Error e
          in
          match ensure () with
          | Error e -> err ctx (Errno.of_fs_error e)
          | Ok st when st.Fs.Fat32.st_dir && want_write flags ->
              err ctx Errno.eisdir
          | Ok st ->
              let st =
                if
                  flags land Abi.o_trunc <> 0 && not st.Fs.Fat32.st_dir
                then begin
                  match Fs.Fat32.truncate fat sub with
                  | Ok () -> { st with Fs.Fat32.st_size = 0 }
                  | Error _ -> st
                end
                else st
              in
              let handle =
                { Fd.fat_path = sub; fat_size = st.Fs.Fat32.st_size }
              in
              let file =
                Fd.make_file
                  ~kind:(Fd.K_fat (fat, bc, handle))
                  ~readable:(want_read flags) ~writable:(want_write flags)
                  ~nonblock:false
              in
              (match Fd.alloc t.fdt ~pid:ctx.Sched.task.Task.pid file with
              | Ok fd -> Sched.finish ctx (Abi.R_int fd)
              | Error e -> err ctx e))

let op_open ctx t path flags =
  charge_dispatch ctx;
  if (not t.config.Kconfig.syscalls_files) then err ctx Errno.enosys
  else begin
    let path = resolve ctx path in
    match route t path with
    | To_dev name -> (
        if not t.config.Kconfig.devfs then err ctx Errno.enoent
        else
          match Devfs.lookup t.devfs name with
          | None -> err ctx Errno.enoent
          | Some ops ->
              let file =
                Fd.make_file ~kind:(Fd.K_dev ops) ~readable:(want_read flags)
                  ~writable:(want_write flags)
                  ~nonblock:
                    (t.config.Kconfig.nonblocking_io
                    && flags land Abi.o_nonblock <> 0)
              in
              (match Fd.alloc t.fdt ~pid:ctx.Sched.task.Task.pid file with
              | Ok fd -> Sched.finish ctx (Abi.R_int fd)
              | Error e -> err ctx e))
    | To_proc name -> (
        if not t.config.Kconfig.procfs then err ctx Errno.enoent
        else
          match Procfs.ops t.procfs name with
          | None -> err ctx Errno.enoent
          | Some ops ->
              let file =
                Fd.make_file ~kind:(Fd.K_dev ops) ~readable:true
                  ~writable:(want_write flags)
                  ~nonblock:
                    (t.config.Kconfig.nonblocking_io
                    && flags land Abi.o_nonblock <> 0)
              in
              (match Fd.alloc t.fdt ~pid:ctx.Sched.task.Task.pid file with
              | Ok fd -> Sched.finish ctx (Abi.R_int fd)
              | Error e -> err ctx e))
    | To_fat (fat, bc, sub) -> open_fat ctx t fat bc sub flags
    | To_root p -> open_xv6 ctx t p flags
  end

(* ---- read ---- *)

(* Directory reads return a text listing, one name per line; callers stat
   entries individually for sizes (as the xv6 ls does with dirents). *)
let xv6_dir_listing fsys node =
  match Fs.Xv6fs.readdir fsys node with
  | Error _ -> ""
  | Ok entries ->
      String.concat "" (List.map (fun (name, _) -> name ^ "\n") entries)

(* Upper bound on one read(2) transfer. A hostile multi-GB [len] must
   never size a host allocation: regular files clamp to the readable
   span below, and this cap backstops every path (a sparse file's size
   can far exceed the data present). Short reads are legal, and no VOS
   program issues single transfers anywhere near this large. *)
let max_read_bytes = 8 * 1024 * 1024

let op_read ctx t fd len =
  charge_dispatch ctx;
  let pid = ctx.Sched.task.Task.pid in
  match Fd.get t.fdt ~pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file ->
      if not file.Fd.readable then err ctx Errno.ebadf
      else if len < 0 then err ctx Errno.einval
      else begin
        let len = min len max_read_bytes in
        match file.Fd.kind with
        | Fd.K_dev ops -> ops.Fd.dev_read ctx file ~len
        | Fd.K_pipe_read p -> Pipe.read ctx p ~len ~nonblock:file.Fd.nonblock
        | Fd.K_pipe_write _ -> err ctx Errno.ebadf
        | Fd.K_xv6 (fsys, node) ->
            Bufcache.with_ctx t.root_bc ctx (fun () ->
                let st = Fs.Xv6fs.stat_of fsys node in
                match st.Fs.Xv6fs.st_type with
                | Fs.Xv6fs.Dir ->
                    let text = xv6_dir_listing fsys node in
                    let off = min file.Fd.off (String.length text) in
                    let n = min len (String.length text - off) in
                    file.Fd.off <- off + n;
                    Sched.finish ctx
                      (Abi.R_bytes (Bytes.of_string (String.sub text off n)))
                | Fs.Xv6fs.Reg | Fs.Xv6fs.Dev -> (
                    (* bound the allocation to the readable span before
                       the fs layer sizes its output buffer *)
                    let len =
                      min len (max 0 (st.Fs.Xv6fs.st_size - file.Fd.off))
                    in
                    match Fs.Xv6fs.readi fsys node ~off:file.Fd.off ~len with
                    | Error e -> err ctx (Errno.of_fs_error e)
                    | Ok data ->
                        file.Fd.off <- file.Fd.off + Bytes.length data;
                        Sched.charge ctx
                          (Kcost.copy_cycles ~bytes:(Bytes.length data));
                        Sched.finish ctx (Abi.R_bytes data)))
        | Fd.K_fat (fat, bc, handle) ->
            Bufcache.with_ctx bc ctx (fun () ->
                Sched.charge ctx Kcost.pseudo_inode;
                match Fs.Fat32.stat fat handle.Fd.fat_path with
                | Error e -> err ctx (Errno.of_fs_error e)
                | Ok st when st.Fs.Fat32.st_dir -> (
                    match Fs.Fat32.readdir fat handle.Fd.fat_path with
                    | Error e -> err ctx (Errno.of_fs_error e)
                    | Ok entries ->
                        let text =
                          String.concat ""
                            (List.map (fun (name, _) -> name ^ "\n") entries)
                        in
                        let off = min file.Fd.off (String.length text) in
                        let n = min len (String.length text - off) in
                        file.Fd.off <- off + n;
                        Sched.finish ctx
                          (Abi.R_bytes (Bytes.of_string (String.sub text off n))))
                | Ok st -> (
                    let len =
                      min len (max 0 (st.Fs.Fat32.st_size - file.Fd.off))
                    in
                    match
                      Fs.Fat32.read_file fat handle.Fd.fat_path ~off:file.Fd.off
                        ~len
                    with
                    | Error e -> err ctx (Errno.of_fs_error e)
                    | Ok data ->
                        file.Fd.off <- file.Fd.off + Bytes.length data;
                        Sched.charge ctx
                          (Kcost.copy_cycles ~bytes:(Bytes.length data));
                        Sched.finish ctx (Abi.R_bytes data)))
      end

(* ---- write ---- *)

let op_write ctx t fd data =
  charge_dispatch ctx;
  let pid = ctx.Sched.task.Task.pid in
  match Fd.get t.fdt ~pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file ->
      if not file.Fd.writable then err ctx Errno.ebadf
      else begin
        match file.Fd.kind with
        | Fd.K_dev ops -> ops.Fd.dev_write ctx file data
        | Fd.K_pipe_write p -> Pipe.write ctx p data ~nonblock:file.Fd.nonblock
        | Fd.K_pipe_read _ -> err ctx Errno.ebadf
        | Fd.K_xv6 (fsys, node) ->
            Bufcache.with_ctx t.root_bc ctx (fun () ->
                match Fs.Xv6fs.writei fsys node ~off:file.Fd.off ~data with
                | Error e -> err ctx (Errno.of_fs_error e)
                | Ok n ->
                    file.Fd.off <- file.Fd.off + n;
                    Sched.charge ctx (Kcost.copy_cycles ~bytes:n);
                    Sched.finish ctx (Abi.R_int n))
        | Fd.K_fat (fat, bc, handle) ->
            Bufcache.with_ctx bc ctx (fun () ->
                Sched.charge ctx Kcost.pseudo_inode;
                match
                  Fs.Fat32.write_file fat handle.Fd.fat_path ~off:file.Fd.off
                    ~data
                with
                | Error e -> err ctx (Errno.of_fs_error e)
                | Ok n ->
                    file.Fd.off <- file.Fd.off + n;
                    handle.Fd.fat_size <- max handle.Fd.fat_size file.Fd.off;
                    Sched.charge ctx (Kcost.copy_cycles ~bytes:n);
                    Sched.finish ctx (Abi.R_int n))
      end

(* ---- the rest of the file syscalls ---- *)

let file_size file =
  match file.Fd.kind with
  | Fd.K_xv6 (fsys, node) -> (Fs.Xv6fs.stat_of fsys node).Fs.Xv6fs.st_size
  | Fd.K_fat (fat, _, handle) -> (
      match Fs.Fat32.stat fat handle.Fd.fat_path with
      | Ok st -> st.Fs.Fat32.st_size
      | Error _ -> handle.Fd.fat_size)
  | Fd.K_dev _ | Fd.K_pipe_read _ | Fd.K_pipe_write _ -> 0

let op_lseek ctx t fd offset whence =
  charge_dispatch ctx;
  let pid = ctx.Sched.task.Task.pid in
  match Fd.get t.fdt ~pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file -> (
      match file.Fd.kind with
      | Fd.K_pipe_read _ | Fd.K_pipe_write _ -> err ctx Errno.espipe
      | Fd.K_xv6 _ | Fd.K_fat _ | Fd.K_dev _ ->
          (* whence is validated, not defaulted: anything outside the
             three POSIX anchors used to fall through to SEEK_END
             silently, so lseek(fd, 0, 7) "worked" *)
          if
            whence <> Abi.seek_set && whence <> Abi.seek_cur
            && whence <> Abi.seek_end
          then err ctx Errno.einval
          else begin
            let base =
              if whence = Abi.seek_set then 0
              else if whence = Abi.seek_cur then file.Fd.off
              else file_size file
            in
            let pos = base + offset in
            if pos < 0 then err ctx Errno.einval
            else begin
              file.Fd.off <- pos;
              Sched.finish ctx (Abi.R_int pos)
            end
          end)

let op_fstat ctx t fd =
  charge_dispatch ctx;
  let pid = ctx.Sched.task.Task.pid in
  match Fd.get t.fdt ~pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file -> (
      match file.Fd.kind with
      | Fd.K_xv6 (fsys, node) ->
          Bufcache.with_ctx t.root_bc ctx (fun () ->
              let st = Fs.Xv6fs.stat_of fsys node in
              Sched.finish ctx
                (Abi.R_stat
                   {
                     Abi.stat_type =
                       (match st.Fs.Xv6fs.st_type with
                       | Fs.Xv6fs.Dir -> Abi.T_dir
                       | Fs.Xv6fs.Reg -> Abi.T_file
                       | Fs.Xv6fs.Dev -> Abi.T_dev);
                     stat_size = st.Fs.Xv6fs.st_size;
                     stat_nlink = st.Fs.Xv6fs.st_nlink;
                     stat_ino = st.Fs.Xv6fs.st_inum;
                   }))
      | Fd.K_fat (fat, _, handle) -> (
          Sched.charge ctx Kcost.pseudo_inode;
          match Fs.Fat32.stat fat handle.Fd.fat_path with
          | Error e -> err ctx (Errno.of_fs_error e)
          | Ok st ->
              Sched.finish ctx
                (Abi.R_stat
                   {
                     Abi.stat_type =
                       (if st.Fs.Fat32.st_dir then Abi.T_dir else Abi.T_file);
                     stat_size = st.Fs.Fat32.st_size;
                     stat_nlink = 1;
                     stat_ino = st.Fs.Fat32.st_cluster;
                   }))
      | Fd.K_dev ops ->
          Sched.finish ctx
            (Abi.R_stat
               {
                 Abi.stat_type = Abi.T_dev;
                 stat_size = 0;
                 stat_nlink = 1;
                 stat_ino = Hashtbl.hash ops.Fd.dev_name land 0xffff;
               })
      | Fd.K_pipe_read p | Fd.K_pipe_write p ->
          Sched.finish ctx
            (Abi.R_stat
               {
                 Abi.stat_type = Abi.T_dev;
                 stat_size = Pipe.fill p;
                 stat_nlink = 1;
                 stat_ino = p.Pipe.pipe_id;
               }))

let op_mkdir ctx t path =
  charge_dispatch ctx;
  let path = resolve ctx path in
  match route t path with
  | To_dev _ | To_proc _ -> err ctx Errno.eperm
  | To_fat (fat, bc, sub) ->
      Bufcache.with_ctx bc ctx (fun () ->
          match Fs.Fat32.mkdir fat sub with
          | Ok () -> Sched.finish ctx (Abi.R_int 0)
          | Error e -> err ctx (Errno.of_fs_error e))
  | To_root p ->
      Bufcache.with_ctx t.root_bc ctx (fun () ->
          match Fs.Xv6fs.create t.root p Fs.Xv6fs.Dir with
          | Ok _ -> Sched.finish ctx (Abi.R_int 0)
          | Error e -> err ctx (Errno.of_fs_error e))

let op_unlink ctx t path =
  charge_dispatch ctx;
  let path = resolve ctx path in
  match route t path with
  | To_dev _ | To_proc _ -> err ctx Errno.eperm
  | To_fat (fat, bc, sub) ->
      Bufcache.with_ctx bc ctx (fun () ->
          match Fs.Fat32.unlink fat sub with
          | Ok () -> Sched.finish ctx (Abi.R_int 0)
          | Error e -> err ctx (Errno.of_fs_error e))
  | To_root p ->
      Bufcache.with_ctx t.root_bc ctx (fun () ->
          match Fs.Xv6fs.unlink t.root p with
          | Ok () -> Sched.finish ctx (Abi.R_int 0)
          | Error e -> err ctx (Errno.of_fs_error e))

let op_chdir ctx t path =
  charge_dispatch ctx;
  let path = resolve ctx path in
  let is_dir =
    match route t path with
    | To_dev _ | To_proc _ -> false
    | To_fat (fat, bc, sub) ->
        Bufcache.with_ctx bc ctx (fun () ->
            match Fs.Fat32.stat fat sub with
            | Ok st -> st.Fs.Fat32.st_dir
            | Error _ -> false)
    | To_root p ->
        Bufcache.with_ctx t.root_bc ctx (fun () ->
            match Fs.Xv6fs.lookup t.root p with
            | Ok node ->
                (Fs.Xv6fs.stat_of t.root node).Fs.Xv6fs.st_type = Fs.Xv6fs.Dir
            | Error _ -> false)
  in
  if is_dir then begin
    ctx.Sched.task.Task.cwd <- path;
    Sched.finish ctx (Abi.R_int 0)
  end
  else err ctx Errno.enoent

let op_pipe ctx t flags =
  charge_dispatch ctx;
  Sched.charge ctx Kcost.pipe_setup;
  let p = Pipe.create t.ipc in
  let nonblock =
    t.config.Kconfig.nonblocking_io && flags land Abi.o_nonblock <> 0
  in
  let rf =
    Fd.make_file ~kind:(Fd.K_pipe_read p) ~readable:true ~writable:false
      ~nonblock
  in
  let wf =
    Fd.make_file ~kind:(Fd.K_pipe_write p) ~readable:false ~writable:true
      ~nonblock
  in
  let pid = ctx.Sched.task.Task.pid in
  match Fd.alloc t.fdt ~pid rf with
  | Error e -> err ctx e
  | Ok rfd -> (
      match Fd.alloc t.fdt ~pid wf with
      | Error e ->
          ignore (Fd.close t.fdt ~pid ~fd:rfd);
          err ctx e
      | Ok wfd -> Sched.finish ctx (Abi.R_pair (rfd, wfd)))

(* ---- poll ---- *)

let file_ready ctx file =
  match file.Fd.kind with
  | Fd.K_pipe_read p -> Pipe.read_ready p
  | Fd.K_pipe_write p -> Pipe.write_ready p
  | Fd.K_dev ops -> (
      match ops.Fd.dev_poll with Some ready -> ready ctx file | None -> true)
  | Fd.K_xv6 _ | Fd.K_fat _ -> true (* regular files never block *)

(* poll(2): readiness multiplexing over pipes, /dev/events, the console
   and anything else with a [dev_poll] hook. All pollers sleep on the one
   shared {!Sched.poll_chan} (a task can block on exactly one channel);
   every producer-side readiness transition wakes the channel and each
   poller rescans its own fd set — so wakeups can be spurious for a given
   caller, but never lost. [timeout_ms]: negative waits forever, 0 is a
   pure probe, positive arms an engine timer whose expiry also kicks the
   shared channel. *)
let op_poll ctx t fds timeout_ms =
  charge_dispatch ctx;
  let pid = ctx.Sched.task.Task.pid in
  let sched = ctx.Sched.sched in
  let stats = t.ipc.Pipe.stats in
  stats.Ipcstats.polls <- stats.Ipcstats.polls + 1;
  if fds = [] || List.length fds > Fd.max_files then err ctx Errno.einval
  else begin
    let expired = ref false in
    let blocked = ref false in
    let entered_ns = Sched.now sched in
    (* poll wait = entry to verdict (readiness, timeout, or instant
       probe); host-side histogram only, nothing charged *)
    let record_wait () =
      Kperf.Hist.record sched.Sched.h_poll_wait
        (Int64.sub (Sched.now sched) entered_ns)
    in
    let scan () =
      Sched.charge ctx (Kcost.poll_fd_check * List.length fds);
      let mask = ref 0 and bad = ref false in
      List.iteri
        (fun i fd ->
          match Fd.get t.fdt ~pid ~fd with
          | None -> bad := true
          | Some file -> if file_ready ctx file then mask := !mask lor (1 lsl i))
        fds;
      if !bad then Error Errno.ebadf else Ok !mask
    in
    let rec attempt () =
      match scan () with
      | Error e -> err ctx e
      | Ok mask when mask <> 0 ->
          if not !blocked then
            stats.Ipcstats.poll_immediate <- stats.Ipcstats.poll_immediate + 1;
          let nready =
            List.fold_left
              (fun n i -> if mask land (1 lsl i) <> 0 then n + 1 else n)
              0
              (List.mapi (fun i _ -> i) fds)
          in
          record_wait ();
          Sched.trace_emit_task sched ctx.Sched.task
            (Ktrace.Poll_return (pid, nready));
          Sched.finish ctx (Abi.R_int mask)
      | Ok _ when timeout_ms = 0 || !expired ->
          (if !expired then
             stats.Ipcstats.poll_timeouts <- stats.Ipcstats.poll_timeouts + 1
           else
             stats.Ipcstats.poll_immediate <-
               stats.Ipcstats.poll_immediate + 1);
          record_wait ();
          Sched.trace_emit_task sched ctx.Sched.task
            (Ktrace.Poll_return (pid, 0));
          Sched.finish ctx (Abi.R_int 0)
      | Ok _ ->
          if not !blocked then begin
            blocked := true;
            stats.Ipcstats.poll_blocked <- stats.Ipcstats.poll_blocked + 1;
            if timeout_ms > 0 then
              ignore
                (Sim.Engine.schedule_after (Sched.engine sched)
                   (Sim.Engine.ms timeout_ms) (fun () ->
                     expired := true;
                     Sched.poll_wake sched))
          end;
          Sched.block ctx ~chan:Sched.poll_chan ~retry:attempt
    in
    attempt ()
  end

let op_close ctx t fd =
  charge_dispatch ctx;
  match Fd.close t.fdt ~pid:ctx.Sched.task.Task.pid ~fd with
  | Ok () -> Sched.finish ctx (Abi.R_int 0)
  | Error e -> err ctx e

let op_dup ctx t fd =
  charge_dispatch ctx;
  match Fd.dup t.fdt ~pid:ctx.Sched.task.Task.pid ~fd with
  | Ok newfd -> Sched.finish ctx (Abi.R_int newfd)
  | Error e -> err ctx e

(* fsync: commit the open journal transaction (rootfs) and drive every
   dirty block through the cache AND the device's write queue — the
   barrier, not a bare flush, is what makes fsync mean "on the medium":
   a flush alone would leave blocks parked in the SD elevator. Under the
   write-through configuration every cache is already clean and the
   barrier is free, the durability contract the paper's cache gave
   implicitly. Pipes and devices have nothing to sync. *)
let op_fsync ctx t fd =
  charge_dispatch ctx;
  match Fd.get t.fdt ~pid:ctx.Sched.task.Task.pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file -> (
      match file.Fd.kind with
      | Fd.K_xv6 _ ->
          Bufcache.with_ctx t.root_bc ctx (fun () ->
              ignore (Fs.Xv6fs.commit t.root);
              Bufcache.barrier t.root_bc;
              Sched.finish ctx (Abi.R_int 0))
      | Fd.K_fat (_, bc, _) ->
          Bufcache.with_ctx bc ctx (fun () ->
              Bufcache.barrier bc;
              Sched.finish ctx (Abi.R_int 0))
      | Fd.K_dev _ | Fd.K_pipe_read _ | Fd.K_pipe_write _ ->
          Sched.finish ctx (Abi.R_int 0))

(* Checkpoint every cache; the shutdown path (and nothing else) calls this
   with no syscall context, so the device time lands on virtual time
   directly rather than on a task. Committing here is what makes a clean
   shutdown + remount replay nothing. *)
let sync_all t =
  ignore (Fs.Xv6fs.commit t.root);
  Bufcache.barrier t.root_bc;
  List.iter (fun (_, _, bc) -> Bufcache.barrier bc) t.fat_mounts

let fat_caches t = List.map (fun (_, _, bc) -> bc) t.fat_mounts

let op_mmap ctx t fd =
  charge_dispatch ctx;
  match Fd.get t.fdt ~pid:ctx.Sched.task.Task.pid ~fd with
  | None -> err ctx Errno.ebadf
  | Some file -> (
      match file.Fd.kind with
      | Fd.K_dev ops -> (
          match ops.Fd.dev_mmap with
          | Some f -> f ctx file
          | None -> err ctx Errno.einval)
      | Fd.K_xv6 _ | Fd.K_fat _ | Fd.K_pipe_read _ | Fd.K_pipe_write _ ->
          err ctx Errno.einval)

(* ---- kernel-internal file access (exec's loader) ----
   Charges into [ctx] but does not finish it. *)

let read_whole ctx t path =
  let path = resolve ctx path in
  match route t path with
  | To_dev _ | To_proc _ -> Error Errno.einval
  | To_fat (fat, bc, sub) ->
      Bufcache.with_ctx bc ctx (fun () ->
          match Fs.Fat32.stat fat sub with
          | Error e -> Error (Errno.of_fs_error e)
          | Ok st -> (
              match
                Fs.Fat32.read_file fat sub ~off:0 ~len:st.Fs.Fat32.st_size
              with
              | Ok data -> Ok data
              | Error e -> Error (Errno.of_fs_error e)))
  | To_root p ->
      Bufcache.with_ctx t.root_bc ctx (fun () ->
          match Fs.Xv6fs.lookup t.root p with
          | Error e -> Error (Errno.of_fs_error e)
          | Ok node -> (
              let st = Fs.Xv6fs.stat_of t.root node in
              match
                Fs.Xv6fs.readi t.root node ~off:0 ~len:st.Fs.Xv6fs.st_size
              with
              | Ok data -> Ok data
              | Error e -> Error (Errno.of_fs_error e)))
