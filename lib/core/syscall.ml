(** The syscall dispatch table — all 28 entries (§3), gated by the
    prototype's feature configuration: a call a stage lacks returns
    -ENOSYS, which is how Table 1's feature matrix is mechanically
    enforced. *)

type services = {
  s_sched : Sched.t;
  s_config : Kconfig.t;
  s_vfs : Vfs.t;
  s_proc : Proc.t;
  s_sems : Sem.t;
  s_console : Console.t;
  s_fb : Hw.Framebuffer.t option;
}

let err ctx e = Sched.finish ctx (Abi.R_int (-e))

let dispatch s ctx =
  let cfg = s.s_config in
  let need cond k = if cond then k () else err ctx Errno.enosys in
  match ctx.Sched.call with
  (* ---- tasks & time ---- *)
  | Abi.Fork child ->
      need cfg.Kconfig.syscalls_tasks (fun () -> Proc.sys_fork ctx s.s_proc child)
  | Abi.Exec (path, argv) ->
      need (cfg.Kconfig.syscalls_tasks && cfg.Kconfig.syscalls_files) (fun () ->
          Proc.sys_exec ctx s.s_proc path argv)
  | Abi.Exit code ->
      ctx.Sched.done_ <- true;
      Sched.do_exit ctx.Sched.sched ctx.Sched.task code
  | Abi.Wait ->
      need cfg.Kconfig.syscalls_tasks (fun () -> Proc.sys_wait ctx s.s_proc)
  | Abi.Kill pid ->
      need cfg.Kconfig.syscalls_tasks (fun () -> Proc.sys_kill ctx s.s_proc pid)
  | Abi.Getpid -> Sched.finish ctx (Abi.R_int ctx.Sched.task.Task.pid)
  | Abi.Sleep ms ->
      need cfg.Kconfig.multitasking (fun () -> Proc.sys_sleep ctx ms)
  | Abi.Uptime -> Proc.sys_uptime ctx s.s_proc
  | Abi.Nice inc ->
      need cfg.Kconfig.multitasking (fun () -> Proc.sys_nice ctx inc)
  | Abi.Sbrk delta ->
      need cfg.Kconfig.syscalls_tasks (fun () -> Proc.sys_sbrk ctx delta)
  | Abi.Cacheflush -> (
      match s.s_fb with
      | None -> err ctx Errno.enosys
      | Some fb ->
          let rows = Hw.Framebuffer.stale_rows fb in
          Sched.charge ctx (Kcost.cache_flush_per_row * max 1 rows);
          Hw.Framebuffer.flush fb;
          Sched.trace_emit_task ctx.Sched.sched ctx.Sched.task
            (Ktrace.Frame_present ctx.Sched.task.Task.pid);
          Sched.finish ctx (Abi.R_int rows))
  (* ---- files ---- *)
  | Abi.Open (path, flags) ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_open ctx s.s_vfs path flags)
  | Abi.Close fd ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_close ctx s.s_vfs fd)
  | Abi.Read (fd, len) ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_read ctx s.s_vfs fd len)
  | Abi.Write (fd, data) ->
      (* Prototype 3's write() is hardwired to the UART (§4.3); with files
         enabled, fd 1 falls back to the console when not opened. *)
      if not cfg.Kconfig.syscalls_files then
        if cfg.Kconfig.syscalls_tasks && fd = 1 then
          Console.write ctx s.s_console data
        else err ctx Errno.enosys
      else if
        fd = 1
        && Fd.get s.s_vfs.Vfs.fdt ~pid:ctx.Sched.task.Task.pid ~fd = None
      then Console.write ctx s.s_console data
      else Vfs.op_write ctx s.s_vfs fd data
  | Abi.Lseek (fd, off, whence) ->
      need cfg.Kconfig.syscalls_files (fun () ->
          Vfs.op_lseek ctx s.s_vfs fd off whence)
  | Abi.Dup fd ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_dup ctx s.s_vfs fd)
  | Abi.Pipe flags ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_pipe ctx s.s_vfs flags)
  | Abi.Fstat fd ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_fstat ctx s.s_vfs fd)
  | Abi.Mkdir path ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_mkdir ctx s.s_vfs path)
  | Abi.Unlink path ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_unlink ctx s.s_vfs path)
  | Abi.Chdir path ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_chdir ctx s.s_vfs path)
  | Abi.Fsync fd ->
      need cfg.Kconfig.syscalls_files (fun () -> Vfs.op_fsync ctx s.s_vfs fd)
  | Abi.Poll (fds, timeout_ms) ->
      (* poll ships with the nonblocking-IO stage: both exist so
         event-driven apps stop spinning *)
      need
        (cfg.Kconfig.syscalls_files && cfg.Kconfig.nonblocking_io)
        (fun () -> Vfs.op_poll ctx s.s_vfs fds timeout_ms)
  | Abi.Mmap fd ->
      need cfg.Kconfig.user_separation (fun () ->
          if fd >= 0 && cfg.Kconfig.syscalls_files then
            Vfs.op_mmap ctx s.s_vfs fd
          else begin
            (* Prototype 3 has no device files: mmap is hardwired to the
               framebuffer, as exec() hardcodes the fb args (par 4.3) *)
            match s.s_fb with
            | None -> err ctx Errno.enosys
            | Some fb ->
                (match ctx.Sched.task.Task.vm with
                | Some vm ->
                    ignore
                      (Vm.add_mapping vm ~name:"fb"
                         ~bytes:(4 * Hw.Framebuffer.width fb * Hw.Framebuffer.height fb)
                         ~cached:true)
                | None -> ());
                Sched.charge ctx (Kcost.sbrk_per_page * 16);
                Sched.finish ctx
                  (Abi.R_mmap
                     ( Vm.fb_bus_address,
                       Hw.Framebuffer.width fb,
                       Hw.Framebuffer.height fb ))
          end)
  (* ---- threading & sync ---- *)
  | Abi.Clone body ->
      need cfg.Kconfig.syscalls_threads (fun () ->
          Proc.sys_clone ctx s.s_proc body)
  | Abi.Join tid ->
      need cfg.Kconfig.syscalls_threads (fun () ->
          Proc.sys_join ctx s.s_proc tid)
  | Abi.Sem_open value ->
      need cfg.Kconfig.syscalls_threads (fun () ->
          match Sem.sem_open s.s_sems ~pid:ctx.Sched.task.Task.pid ~value with
          | Ok id -> Sched.finish ctx (Abi.R_int id)
          | Error e -> err ctx e)
  | Abi.Sem_post id ->
      need cfg.Kconfig.syscalls_threads (fun () -> Sem.post ctx s.s_sems id)
  | Abi.Sem_wait id ->
      need cfg.Kconfig.syscalls_threads (fun () -> Sem.wait ctx s.s_sems id)
  | Abi.Sem_close id ->
      need cfg.Kconfig.syscalls_threads (fun () -> Sem.close ctx s.s_sems id)

let install s = s.s_sched.Sched.dispatch <- (fun ctx -> dispatch s ctx)
