(** Spinlocks, with the Prototype 1 evolution the paper describes (§4.1).

    The simulation is single-threaded, so a spinlock can never actually be
    contended at the instant of acquisition — but the {e discipline} is
    enforced (no recursive acquisition, release-by-owner) and acquisition
    counts and hold times are recorded, which the scheduler uses for its
    contention accounting and tests use to verify locking protocols.
    Locks created with [~kcheck] additionally feed the lockdep order
    graph and appear in /proc/locks.

    [irq_guard] is the single-core reduction: reference-counted interrupt
    disable (xv6's pushcli/popcli), which is what Prototype 1 settles on.

    Discipline violations (recursive acquisition, release-by-stranger,
    release-when-free) die through {!Kpanic.panicf} like every other
    broken kernel invariant, so vlint's no-raise rule (R003) covers this
    file too. *)

type t = {
  name : string;
  mutable owner : int option;  (** core id *)
  mutable acquisitions : int;
  mutable acquired_at : int64;
  mutable total_held_ns : int64;
  mutable max_held_ns : int64;
  kcheck : Kcheck.t option;
}

let create ?kcheck name =
  let t =
    {
      name;
      owner = None;
      acquisitions = 0;
      acquired_at = 0L;
      total_held_ns = 0L;
      max_held_ns = 0L;
      kcheck;
    }
  in
  (match kcheck with
  | Some kc ->
      Kcheck.register_lock_probe kc
        {
          Kcheck.lp_name = name;
          lp_acquisitions = (fun () -> t.acquisitions);
          lp_total_held_ns = (fun () -> t.total_held_ns);
          lp_max_held_ns = (fun () -> t.max_held_ns);
        }
  | None -> ());
  t

(* vprobe's lock:acquire / lock:contended hook. A module-global rather
   than a per-lock field because locks are created all over the kernel
   (and by [protect] call sites) long before the probe registry exists;
   the kernel installs the observer at boot. Spinlock cannot depend on
   Vprobe (layering), so the closure carries the typed fire. *)
let observer : (name:string -> core:int -> contended:bool -> unit) option ref =
  ref None

let set_observer f = observer := Some f
let clear_observer () = observer := None

let observe ~name ~core ~contended =
  match !observer with
  | Some f -> f ~name ~core ~contended
  | None -> ()

let acquire t ~core ~now_ns =
  (match t.owner with
  | Some held_by ->
      (* unreachable while the simulation is single-threaded, but the
         probe fires before the panic so an SMP future (or a test that
         forges contention) sees the event *)
      observe ~name:t.name ~core ~contended:true;
      Kpanic.panicf "spinlock %s: core %d acquiring while core %d holds"
        t.name core held_by
  | None -> observe ~name:t.name ~core ~contended:false);
  (match t.kcheck with
  | Some kc -> Kcheck.lock_acquire kc ~name:t.name ~core
  | None -> ());
  t.owner <- Some core;
  t.acquisitions <- t.acquisitions + 1;
  t.acquired_at <- now_ns

let release t ~core ~now_ns =
  (match t.owner with
  | Some held_by when held_by = core -> ()
  | Some held_by ->
      Kpanic.panicf "spinlock %s: core %d releasing core %d's lock" t.name
        core held_by
  | None -> Kpanic.panicf "spinlock %s: release when free" t.name);
  (match t.kcheck with
  | Some kc -> Kcheck.lock_release kc ~name:t.name ~core
  | None -> ());
  t.owner <- None;
  let held = Int64.sub now_ns t.acquired_at in
  t.total_held_ns <- Int64.add t.total_held_ns held;
  if Int64.compare held t.max_held_ns > 0 then t.max_held_ns <- held

let holding t ~core = t.owner = Some core
let acquisitions t = t.acquisitions
let total_held_ns t = t.total_held_ns
let max_held_ns t = t.max_held_ns

(* Leaf lock window: acquire, run the pure critical section, release.
   For the discipline-only subsystem locks (fd table, pipes, semaphores,
   buffer cache LRU): created without [~kcheck], so the window emits no
   trace events and costs no virtual time — vrace (tools/vrace) is their
   static checker, enforcing that [@locked_by]-annotated state is only
   touched inside and that nothing inside can block (R103). The body must
   not call the scheduler: wakeups resume other tasks synchronously and
   would re-enter the window. *)
let protect t f =
  acquire t ~core:0 ~now_ns:0L;
  match f () with
  | v ->
      release t ~core:0 ~now_ns:0L;
      v
  | exception e ->
      release t ~core:0 ~now_ns:0L;
      raise e

(** Reference-counted interrupt on/off, the single-core substitute. *)
module Irq_guard = struct
  type guard = {
    intc : Hw.Intc.t;
    core : int;
    mutable depth : int;
    kcheck : Kcheck.t option;
  }

  let create ?kcheck intc ~core = { intc; core; depth = 0; kcheck }

  let push g =
    if g.depth = 0 then Hw.Intc.mask g.intc ~core:g.core;
    g.depth <- g.depth + 1;
    match g.kcheck with
    | Some kc -> Kcheck.irq_push kc ~core:g.core
    | None -> ()

  let pop g =
    if g.depth <= 0 then Kpanic.panicf "irq_guard: pop without push";
    g.depth <- g.depth - 1;
    if g.depth = 0 then Hw.Intc.unmask g.intc ~core:g.core;
    match g.kcheck with
    | Some kc -> Kcheck.irq_pop kc ~core:g.core
    | None -> ()

  let depth g = g.depth
end
