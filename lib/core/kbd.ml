(** Keyboard input path: USB HID reports and GPIO buttons in, key events
    out through /dev/events (§4.4).

    The driver diffs successive HID reports into press/release events with
    modifiers — what UART cannot provide and games need (§4.3) — and queues
    them in a fixed ring. Events carry their arrival timestamp so the
    Figure 11 input-latency breakdown can measure the full path. When a
    window manager is running it interposes as the sink and routes events
    to the focused window instead (§4.5). *)

type event = {
  ev_code : int;  (** HID usage code, or button pseudo-usage *)
  ev_pressed : bool;
  ev_modifiers : int;
  ev_ts_ns : int64;
}

(* 8-byte wire encoding read from /dev/events:
   [pressed; code; modifiers; 0; ts_us as le32] *)
let event_bytes = 8

let encode ev =
  let b = Bytes.make event_bytes '\000' in
  Bytes.set_uint8 b 0 (if ev.ev_pressed then 1 else 0);
  Bytes.set_uint8 b 1 (ev.ev_code land 0xff);
  Bytes.set_uint8 b 2 (ev.ev_modifiers land 0xff);
  let ts_us = Int64.to_int (Int64.div ev.ev_ts_ns 1_000L) land 0xffffffff in
  Bytes.set_uint8 b 4 (ts_us land 0xff);
  Bytes.set_uint8 b 5 ((ts_us lsr 8) land 0xff);
  Bytes.set_uint8 b 6 ((ts_us lsr 16) land 0xff);
  Bytes.set_uint8 b 7 ((ts_us lsr 24) land 0xff);
  b

let decode b ~off =
  {
    ev_pressed = Bytes.get_uint8 b off = 1;
    ev_code = Bytes.get_uint8 b (off + 1);
    ev_modifiers = Bytes.get_uint8 b (off + 2);
    ev_ts_ns =
      Int64.mul 1_000L
        (Int64.of_int
           (Bytes.get_uint8 b (off + 4)
           lor (Bytes.get_uint8 b (off + 5) lsl 8)
           lor (Bytes.get_uint8 b (off + 6) lsl 16)
           lor (Bytes.get_uint8 b (off + 7) lsl 24)));
  }

(* Game HAT buttons appear as pseudo-usages above the HID range. *)
let button_usage = function
  | Hw.Gpio.Up -> 0x52
  | Hw.Gpio.Down -> 0x51
  | Hw.Gpio.Left -> 0x50
  | Hw.Gpio.Right -> 0x4f
  | Hw.Gpio.A -> 0x04 (* 'a' *)
  | Hw.Gpio.B -> 0x05
  | Hw.Gpio.X -> 0x1b
  | Hw.Gpio.Y -> 0x1c
  | Hw.Gpio.Start -> 0x28 (* Enter *)
  | Hw.Gpio.Select -> 0x2b (* Tab *)

let ring_capacity = 64

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  ring : event Queue.t;
  chan : string;
  mutable prev_keys : int list;
  mutable sink : (event -> bool) option;
      (** WM interposition: returns true when it consumed the event *)
  mutable dropped : int;
}

let push_event t ev =
  Sched.trace_emit t.sched Ktrace.Kbd_report;
  let consumed = match t.sink with Some f -> f ev | None -> false in
  if not consumed then begin
    if Queue.length t.ring >= ring_capacity then begin
      ignore (Queue.pop t.ring);
      t.dropped <- t.dropped + 1
    end;
    Queue.add ev t.ring;
    Sched.wake_all t.sched t.chan;
    Sched.poll_wake t.sched
  end

let on_usb_irq t () =
  let reports = Hw.Usb.take_reports t.board.Hw.Board.usb in
  let now = Hw.Board.now t.board in
  List.iter
    (fun report ->
      let keys = report.Hw.Usb.keys in
      let mods = report.Hw.Usb.modifiers in
      (* presses: in the new report but not the old *)
      List.iter
        (fun code ->
          if not (List.mem code t.prev_keys) then
            push_event t
              { ev_code = code; ev_pressed = true; ev_modifiers = mods; ev_ts_ns = now })
        keys;
      (* releases: in the old report but not the new *)
      List.iter
        (fun code ->
          if not (List.mem code keys) then
            push_event t
              {
                ev_code = code;
                ev_pressed = false;
                ev_modifiers = mods;
                ev_ts_ns = now;
              })
        t.prev_keys;
      t.prev_keys <- keys)
    reports

let on_gpio_irq t () =
  let now = Hw.Board.now t.board in
  List.iter
    (fun (button, pressed) ->
      push_event t
        {
          ev_code = button_usage button;
          ev_pressed = pressed;
          ev_modifiers = 0;
          ev_ts_ns = now;
        })
    (Hw.Gpio.take_edges t.board.Hw.Board.gpio)

let create board sched =
  let t =
    {
      board;
      sched;
      ring = Queue.create ();
      chan = "kbd:events";
      prev_keys = [];
      sink = None;
      dropped = 0;
    }
  in
  Sched.register_irq sched Hw.Irq.Usb_hc (on_usb_irq t);
  Sched.register_irq sched Hw.Irq.Gpio_bank (on_gpio_irq t);
  t

let set_sink t sink = t.sink <- Some sink
let clear_sink t = t.sink <- None

let pending t = Queue.length t.ring
let dropped t = t.dropped

(* Read events as bytes; [nonblock] peeks the ring without waiting, the
   Prototype 5 enhancement DOOM's key polling needs (§4.5). Events are
   never split: a buffer shorter than one event is an error, not a
   truncated (or, before the fix, overrun) delivery. *)
let read ctx t ~len ~nonblock =
  if len < event_bytes then Sched.finish ctx (Abi.R_int (-Errno.einval))
  else
  let rec attempt () =
    if not (Queue.is_empty t.ring) then begin
      let nev = min (len / event_bytes) (Queue.length t.ring) in
      let buf = Buffer.create (nev * event_bytes) in
      let delivered = ref 0 in
      while !delivered < nev && not (Queue.is_empty t.ring) do
        Buffer.add_bytes buf (encode (Queue.pop t.ring));
        incr delivered
      done;
      Sched.charge ctx (Kcost.event_copy * !delivered);
      Sched.trace_emit_task ctx.Sched.sched ctx.Sched.task
        (Ktrace.Event_delivered ctx.Sched.task.Task.pid);
      Sched.finish ctx (Abi.R_bytes (Buffer.to_bytes buf))
    end
    else if nonblock then Sched.finish ctx (Abi.R_int (-Errno.eagain))
    else Sched.block ctx ~chan:t.chan ~retry:attempt
  in
  attempt ()
