(** File objects and per-task descriptor tables — VOS's "file abstraction"
    (Table 1), through which everything flows: xv6fs inodes, FAT32
    pseudo-inodes, device files and pipes. *)

(** Operations of a device file (/dev/...). Each callback must complete the
    syscall via [Sched.finish] (possibly after blocking), mirroring how VOS
    device drivers own their IO paths. *)
type dev_ops = {
  dev_name : string;
  dev_read : Sched.ctx -> file -> len:int -> unit;
  dev_write : Sched.ctx -> file -> Bytes.t -> unit;
  dev_mmap : (Sched.ctx -> file -> unit) option;
  dev_close : file -> unit;
  dev_poll : (Sched.ctx -> file -> bool) option;
      (** would a read return without blocking? [None] = always ready *)
}

(** FAT32 files are identified by path and carry a pseudo-inode holding the
    cached stat, bridging FatFS's inode-less API to the VFS (§4.5). *)
and fat_handle = { fat_path : string; mutable fat_size : int }

and kind =
  | K_xv6 of Fs.Xv6fs.t * Fs.Xv6fs.inode
  | K_fat of Fs.Fat32.t * Bufcache.t * fat_handle
  | K_dev of dev_ops
  | K_pipe_read of Pipe.t
  | K_pipe_write of Pipe.t

and file = {
  file_id : int;
  kind : kind;
  mutable off : int;
  readable : bool;
  writable : bool;
  nonblock : bool;
  mutable refs : int; [@locked_by "ftlock"]
      (** table slots referencing this record; shared across the tables of
          every process holding the file open, so counted under the
          descriptor-table discipline lock *)
  mutable dev_cookie : int;  (** per-open device state, e.g. surface id *)
}

let max_files = 32
let next_file_id = ref 0

let make_file ~kind ~readable ~writable ~nonblock =
  incr next_file_id;
  {
    file_id = !next_file_id;
    kind;
    off = 0;
    readable;
    writable;
    nonblock;
    refs = 1;
    dev_cookie = -1;
  }

(** Descriptor tables, keyed by pid. CLONE_VM threads share one table
    (closing an fd in one thread closes it for all), processes get copies
    with bumped refcounts. *)
type fd_table = {
  slots : file option array; [@locked_by "ftlock"]
  mutable sharers : int; [@locked_by "ftlock"]
}

(* [ftlock] is a discipline-only leaf lock (no [~kcheck], so it emits no
   trace events): slot and refcount updates happen inside
   [Spinlock.protect] windows, statically checked by vrace R101. Windows
   never enclose [drop_ref]'s close path, which can wake blocked tasks
   and re-enter the scheduler (R103 would flag that too). *)
type t = {
  sched : Sched.t;
  tables : (int, fd_table) Hashtbl.t;
  ftlock : Spinlock.t;
}

let create sched =
  { sched; tables = Hashtbl.create 32; ftlock = Spinlock.create "ftlock" }

let table t pid =
  match Hashtbl.find_opt t.tables pid with
  | Some tbl -> tbl
  | None ->
      let tbl = { slots = Array.make max_files None; sharers = 1 } in
      Hashtbl.replace t.tables pid tbl;
      tbl

let get t ~pid ~fd =
  if fd < 0 || fd >= max_files then None else (table t pid).slots.(fd)

let alloc t ~pid file =
  let arr = (table t pid).slots in
  Spinlock.protect t.ftlock (fun () ->
      (* a plain loop, not a local rec function: vrace treats nested
         lambdas as escaping callbacks with an empty lockset, so the
         mutation must sit directly in the protect body *)
      let fd = ref 0 in
      while !fd < max_files && arr.(!fd) <> None do incr fd done;
      if !fd >= max_files then Error Errno.emfile
      else begin
        arr.(!fd) <- Some file;
        Ok !fd
      end)

let drop_ref t file =
  let remaining =
    Spinlock.protect t.ftlock (fun () ->
        file.refs <- file.refs - 1;
        file.refs)
  in
  if remaining = 0 then begin
    match file.kind with
    | K_pipe_read p -> Pipe.close_read t.sched p
    | K_pipe_write p -> Pipe.close_write t.sched p
    | K_dev ops -> ops.dev_close file
    | K_xv6 _ | K_fat _ -> ()
  end

let close t ~pid ~fd =
  match get t ~pid ~fd with
  | None -> Error Errno.ebadf
  | Some file ->
      let arr = (table t pid).slots in
      Spinlock.protect t.ftlock (fun () -> arr.(fd) <- None);
      drop_ref t file;
      Ok ()

(* Handle lifetime is the file record's refcount; the pipe's own
   reader/writer counts track file *records*, of which there is exactly
   one per end. Bumping both (as dup/fork once did) left a pipe whose
   reader count could never reach zero after a fork — blocked writers
   slept forever instead of seeing EPIPE. *)
let dup t ~pid ~fd =
  match get t ~pid ~fd with
  | None -> Error Errno.ebadf
  | Some file -> (
      match alloc t ~pid file with
      | Error e -> Error e
      | Ok newfd ->
          Spinlock.protect t.ftlock (fun () -> file.refs <- file.refs + 1);
          Ok newfd)

(* fork: the child inherits a copy of the parent's table with bumped
   refcounts. *)
let clone_table t ~parent ~child =
  let src = table t parent in
  let dst =
    Spinlock.protect t.ftlock (fun () ->
        Array.map
          (fun slot ->
            match slot with
            | None -> None
            | Some file ->
                file.refs <- file.refs + 1;
                Some file)
          src.slots)
  in
  Hashtbl.replace t.tables child { slots = dst; sharers = 1 }

(* clone(CLONE_VM): the thread shares the very same table. *)
let share_table t ~parent ~child =
  let tbl = table t parent in
  Spinlock.protect t.ftlock (fun () -> tbl.sharers <- tbl.sharers + 1);
  Hashtbl.replace t.tables child tbl

let close_all t ~pid =
  match Hashtbl.find_opt t.tables pid with
  | None -> ()
  | Some tbl ->
      (* clear the slots inside the window, collect the drops, and run
         them after release: closing a pipe end wakes its peers. *)
      let drops =
        Spinlock.protect t.ftlock (fun () ->
            tbl.sharers <- tbl.sharers - 1;
            if tbl.sharers > 0 then []
            else
              Array.to_list tbl.slots
              |> List.mapi (fun fd slot -> (fd, slot))
              |> List.filter_map (fun (fd, slot) ->
                     match slot with
                     | None -> None
                     | Some file ->
                         tbl.slots.(fd) <- None;
                         Some file))
      in
      List.iter (fun file -> drop_ref t file) drops;
      Hashtbl.remove t.tables pid

let open_count t ~pid =
  match Hashtbl.find_opt t.tables pid with
  | None -> 0
  | Some tbl ->
      Array.fold_left
        (fun n slot -> if slot = None then n else n + 1)
        0 tbl.slots

(* ---- kcheck support ---- *)

(* CLONE_VM threads map to the very same table, so audits must dedupe by
   physical identity or shared slots would be double-counted. *)
let distinct_tables t =
  Hashtbl.fold
    (fun _ tbl acc -> if List.memq tbl acc then acc else tbl :: acc)
    t.tables []

(* The pids holding an end of pipe [pipe_id] open: the candidate wakers
   of the opposite end's channel in the blocked-task deadlock walk. *)
let pipe_end_owners t ~pipe_id ~write =
  Hashtbl.fold
    (fun pid tbl acc ->
      let has =
        Array.exists
          (fun slot ->
            match slot with
            | None -> false
            | Some file -> (
                match file.kind with
                | K_pipe_write p -> write && p.Pipe.pipe_id = pipe_id
                | K_pipe_read p -> (not write) && p.Pipe.pipe_id = pipe_id
                | K_dev _ | K_xv6 _ | K_fat _ -> false))
          tbl.slots
      in
      if has then pid :: acc else acc)
    t.tables []

(* Re-derive every refcount from the table ground truth: a file record's
   [refs] must equal the slots referencing it across distinct tables, and
   a pipe's reader/writer counts must equal its live read/write file
   records — the exact invariants whose violations PR 3 debugged by hand
   (dup/fork double-counting pipe ends). *)
let audit t =
  let slot_counts : (int, file * int ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun tbl ->
      Array.iter
        (fun slot ->
          match slot with
          | None -> ()
          | Some file -> (
              match Hashtbl.find_opt slot_counts file.file_id with
              | Some (_, n) -> incr n
              | None -> Hashtbl.replace slot_counts file.file_id (file, ref 1)))
        tbl.slots)
    (distinct_tables t);
  let problems = ref [] in
  let pipes : (int, Pipe.t * int ref * int ref) Hashtbl.t = Hashtbl.create 8 in
  let pipe_entry p =
    match Hashtbl.find_opt pipes p.Pipe.pipe_id with
    | Some e -> e
    | None ->
        let e = (p, ref 0, ref 0) in
        Hashtbl.replace pipes p.Pipe.pipe_id e;
        e
  in
  Hashtbl.iter
    (fun _ (file, n) ->
      if file.refs <> !n then
        problems :=
          Printf.sprintf "file %d: refs=%d but %d table slots" file.file_id
            file.refs !n
          :: !problems;
      match file.kind with
      | K_pipe_read p ->
          let _, r, _ = pipe_entry p in
          incr r
      | K_pipe_write p ->
          let _, _, w = pipe_entry p in
          incr w
      | K_dev _ | K_xv6 _ | K_fat _ -> ())
    slot_counts;
  Hashtbl.iter
    (fun id (p, r, w) ->
      if p.Pipe.readers <> !r then
        problems :=
          Printf.sprintf "pipe %d: readers=%d but %d live read ends" id
            p.Pipe.readers !r
          :: !problems;
      if p.Pipe.writers <> !w then
        problems :=
          Printf.sprintf "pipe %d: writers=%d but %d live write ends" id
            p.Pipe.writers !w
          :: !problems)
    pipes;
  !problems
