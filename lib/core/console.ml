(** The UART console.

    Kernel printk and /dev/console writes are synchronous and polled
    throughout all five prototypes — the paper's deliberate choice (§4.1):
    interrupt-driven writes would need a ring buffer, which needs locks,
    whose debug output goes… to the UART. Reads are interrupt-driven
    (Prototype 4's "irq RX"). *)

type t = { board : Hw.Board.t; sched : Sched.t; rx_chan : string }

let create board sched =
  let t = { board; sched; rx_chan = "uart:rx" } in
  Sched.register_irq sched Hw.Irq.Uart_rx (fun () ->
      Sched.wake_all sched t.rx_chan;
      Sched.poll_wake sched);
  t

let uart t = t.board.Hw.Board.uart

(* poll(2) readiness: input buffered in the RX FIFO. *)
let rx_ready t = Hw.Uart.rx_available (uart t) > 0

(* Kernel-context printk: no task to charge; the wire time is real but the
   kernel simply spins through it, which is why heavy printk visibly slows
   the system — reproduced here by charging the caller when there is one. *)
let printk t msg = String.iter (fun c -> ignore (Hw.Uart.transmit (uart t) c)) msg

(* User write to the console: each character costs the polling loop plus
   its wire time. *)
let write ctx t data =
  let n = Bytes.length data in
  Sched.charge ctx (Kcost.uart_poll_loop * n);
  let wire = ref 0L in
  Bytes.iter (fun c -> wire := Int64.add !wire (Hw.Uart.transmit (uart t) c)) data;
  Sched.charge_io ctx (Hw.Board.io_ns t.board !wire);
  Sched.finish ctx (Abi.R_int n)

let read ctx t ~len ~nonblock =
  let rec attempt () =
    let available = Hw.Uart.rx_available (uart t) in
    if available > 0 then begin
      let n = min len available in
      let out = Bytes.create n in
      for i = 0 to n - 1 do
        match Hw.Uart.read_char (uart t) with
        | Some c -> Bytes.set out i c
        | None -> assert false
      done;
      Sched.charge ctx (Kcost.event_copy + n);
      Sched.finish ctx (Abi.R_bytes out)
    end
    else if nonblock then Sched.finish ctx (Abi.R_int (-Errno.eagain))
    else Sched.block ctx ~chan:t.rx_chan ~retry:attempt
  in
  attempt ()
