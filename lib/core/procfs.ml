(** procfs: /proc/cpuinfo, /proc/meminfo, /proc/uptime, /proc/tasks,
    /proc/sched, /proc/ipc, and the kperf surface — /proc/metrics
    (Prometheus text), /proc/profile (sampling profiler), /proc/ktrace
    (a consuming trace-pipe) and /proc/ktrace_ctl (runtime control).

    Most files are snapshots rendered at open time (like Linux's
    seq_file, one generation per open) and then read as ordinary byte
    streams; sysmon polls these to draw its overlay. /proc/ktrace is the
    exception: each open holds a consuming {!Ktrace.reader} cursor, reads
    stream formatted entries as they are emitted, block on
    {!Sched.poll_chan} (so poll(2) composes) and honor O_NONBLOCK with
    -EAGAIN. *)

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  kalloc : Kalloc.t;
  ipc : Ipcstats.t;
  snapshots : (int, string) Hashtbl.t;  (** file_id -> rendered content *)
  readers : (int, Ktrace.reader) Hashtbl.t;
      (** file_id -> trace-pipe cursor for /proc/ktrace opens *)
  pending : (int, string) Hashtbl.t;
      (** file_id -> formatted-but-undelivered trace bytes *)
}

let create ~board ~sched ~kalloc ~ipc =
  {
    board;
    sched;
    kalloc;
    ipc;
    snapshots = Hashtbl.create 16;
    readers = Hashtbl.create 4;
    pending = Hashtbl.create 4;
  }

let render_cpuinfo t =
  let buf = Buffer.create 256 in
  let plat = t.board.Hw.Board.platform in
  Buffer.add_string buf
    (Printf.sprintf "prototype\t: %d\n\n" t.sched.Sched.config.Kconfig.stage);
  for core = 0 to plat.Hw.Board.num_cores - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "processor\t: %d\nmodel name\t: ARMv8 Cortex-A53 (sim)\nBogoMIPS\t: %.2f\nbusy_ns\t: %Ld\n\n"
         core
         (float_of_int plat.Hw.Board.cpu_hz /. 1e6)
         (Sched.core_busy_ns t.sched core))
  done;
  Buffer.contents buf

let render_meminfo t =
  let total_kb = Kalloc.total_pages t.kalloc * Kalloc.page_bytes / 1024 in
  let used_kb = Kalloc.used_bytes t.kalloc / 1024 in
  Printf.sprintf
    "MemTotal:\t%d kB\nMemUsed:\t%d kB\nMemFree:\t%d kB\nKmalloc:\t%d B\nPeak:\t%d kB\n"
    total_kb used_kb (total_kb - used_kb)
    (Kalloc.kmalloc_bytes t.kalloc)
    (Kalloc.peak_bytes t.kalloc / 1024)

let render_uptime t =
  Printf.sprintf "%.3f\n" (Sim.Engine.to_sec (Hw.Board.now t.board))

let render_tasks t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "PID\tSTATE\t\tCPU_MS\tNAME\n";
  List.iter
    (fun task ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%-12s\t%.1f\t%s\n" task.Task.pid
           (Task.state_name task)
           (Int64.to_float task.Task.cpu_ns /. 1e6)
           task.Task.name))
    (Sched.all_tasks t.sched);
  Buffer.contents buf

(* Per-core scheduler statistics, one block per core like /proc/cpuinfo:
   context switches, migrations, steals, balance moves, IPIs and the
   run-delay (runnable -> running) distribution. *)
let render_sched t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "policy\t\t: %s\n\n" (Sched.class_name t.sched));
  let plat = t.board.Hw.Board.platform in
  for core = 0 to plat.Hw.Board.num_cores - 1 do
    let s = Sched.stats t.sched core in
    Buffer.add_string buf
      (Printf.sprintf
         "core\t\t: %d\nswitches\t: %d\nmigrations\t: %d\nsteals\t\t: \
          %d\nbalance_moves\t: %d\nipis_sent_to\t: %d\nipis_taken\t: %d\n"
         core
         (Sched.core_switches t.sched core)
         s.Sched.migrations s.Sched.steals s.Sched.balance_moves
         s.Sched.ipis_to s.Sched.ipis_recv);
    if s.Sched.delay_count > 0 then begin
      Buffer.add_string buf
        (Printf.sprintf "run_delay_avg\t: %Ld ns\nrun_delay_max\t: %Ld ns\n"
           (Int64.div s.Sched.delay_total_ns
              (Int64.of_int s.Sched.delay_count))
           s.Sched.delay_max_ns);
      Buffer.add_string buf
        (Printf.sprintf "run_delay_hist\t: %s\n"
           (Kperf.Hist.render_line s.Sched.delay_hist))
    end;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* The IPC path's configuration and counters; the wakeup lines are how
   the edge-triggered ablation is observable from inside the machine. *)
let render_ipc t =
  let cfg = t.sched.Sched.config in
  Printf.sprintf "%-18s %s\n%-18s %s\n%-18s %d\n" "pipe_impl"
    (if cfg.Kconfig.pipe_ring then "ring" else "xv6")
    "wake_mode"
    (if cfg.Kconfig.pipe_wake_edge then "edge" else "level")
    "buffer_bytes"
    (if cfg.Kconfig.pipe_ring then cfg.Kconfig.pipe_buffer_bytes
     else Kcost.pipe_buffer_bytes)
  ^ Ipcstats.render t.ipc

(* Spinlock statistics and the sanitizer's own counters/violations. Both
   render even when kcheck is off (header-only / "disabled"), so sysmon
   can always open them. *)
let render_locks t =
  match t.sched.Sched.kcheck with
  | Some kc -> Kcheck.render_locks kc
  | None -> "kcheck disabled: no lock registry\n"

let render_kcheck t =
  match t.sched.Sched.kcheck with
  | Some kc -> Kcheck.render_report kc
  | None -> "kcheck\t\t: disabled\n"

(* Prometheus text exposition of every kperf counter and histogram; the
   page exists only when the [metrics] knob is armed. Attached vprobe
   aggregates fold in as vos_vprobe_* series so one scrape covers both. *)
let render_metrics t =
  if t.sched.Sched.config.Kconfig.metrics then
    Some
      (Kperf.render_metrics t.sched.Sched.kperf
      ^
      if t.sched.Sched.config.Kconfig.vprobe then
        Vprobe.render_metrics t.sched.Sched.vprobe
      else "")
  else None

(* Dynamic-probe surfaces, armed by the [vprobe] knob: /proc/vprobe is
   the aggregate dump, /proc/vprobe_ctl accepts probe-spec writes (see
   {!Vprobe.ctl_write}) and mirrors the registry state back on read. *)
let render_vprobe t =
  if t.sched.Sched.config.Kconfig.vprobe then
    Some (Vprobe.render t.sched.Sched.vprobe)
  else None

(* Per-task delay accounting. Renders even when the knob is off (a
   self-describing "disabled" line, like /proc/kcheck) so sysmon can
   always open it. *)
let render_delays t = Sched.render_delays t.sched

let render_profile t = Kperf.render_profile t.sched.Sched.kperf

(* Current tracer control state, mirrored back by reads of ktrace_ctl. *)
let render_ktrace_ctl t =
  let tr = t.sched.Sched.trace in
  let filter_names =
    if tr.Ktrace.filter = Ktrace.filter_all then "all"
    else
      Ktrace.class_names
      |> List.filter (fun (_, bit) -> tr.Ktrace.filter land (1 lsl bit) <> 0)
      |> List.map fst |> String.concat ","
  in
  Printf.sprintf
    "enable\t\t: %d\nclock\t\t: %s\nfilter\t\t: %s\ndstate\t\t: \
     %d\nper_core_rings\t: %b\nevents_written\t: %d\n"
    (if tr.Ktrace.enabled then 1 else 0)
    (if Int64.equal tr.Ktrace.clock_base 0L then "abs" else "rel")
    filter_names
    (if tr.Ktrace.dstate then 1 else 0)
    t.sched.Sched.config.Kconfig.trace_per_core_rings
    (Ktrace.written tr)

let render t name =
  match name with
  | "cpuinfo" -> Some (render_cpuinfo t)
  | "meminfo" -> Some (render_meminfo t)
  | "uptime" -> Some (render_uptime t)
  | "tasks" -> Some (render_tasks t)
  | "sched" -> Some (render_sched t)
  | "ipc" -> Some (render_ipc t)
  | "locks" -> Some (render_locks t)
  | "kcheck" -> Some (render_kcheck t)
  | "metrics" -> render_metrics t
  | "profile" -> Some (render_profile t)
  | "ktrace_ctl" -> Some (render_ktrace_ctl t)
  | "vprobe" -> render_vprobe t
  | "vprobe_ctl" -> render_vprobe t
  | "delays" -> Some (render_delays t)
  | _ -> None

let names =
  [
    "cpuinfo"; "meminfo"; "uptime"; "tasks"; "sched"; "ipc"; "locks"; "kcheck";
    "metrics"; "profile"; "ktrace"; "ktrace_ctl"; "vprobe"; "vprobe_ctl";
    "delays";
  ]

(* ---- /proc/ktrace: the consuming trace-pipe ---- *)

(* One cursor per open file, created lazily at first read/poll; creating
   it bumps [readers_open] so the emit hot path only pokes the deferred
   poll_wake while someone is actually listening. *)
let trace_reader t file =
  match Hashtbl.find_opt t.readers file.Fd.file_id with
  | Some r -> r
  | None ->
      let tr = t.sched.Sched.trace in
      let r = Ktrace.new_reader tr in
      tr.Ktrace.readers_open <- tr.Ktrace.readers_open + 1;
      Hashtbl.replace t.readers file.Fd.file_id r;
      Hashtbl.replace t.pending file.Fd.file_id "";
      r

let trace_pending t file =
  Option.value ~default:"" (Hashtbl.find_opt t.pending file.Fd.file_id)

(* Reads consume: drain the cursor into formatted lines, hand out up to
   [len] bytes, keep the remainder for the next read. An empty pipe
   blocks on the shared poll channel (every poll_wake rescans us, and
   the tracer's on_data hook fires one) — or returns -EAGAIN under
   O_NONBLOCK. *)
let ktrace_read t ctx file ~len =
  let reader = trace_reader t file in
  let rec attempt () =
    let pending =
      let p = trace_pending t file in
      if String.length p > 0 then p
      else
        Ktrace.read_reader reader ~max:128
        |> List.map (fun e -> Ktrace.format_entry e ^ "\n")
        |> String.concat ""
    in
    if String.length pending = 0 then begin
      if file.Fd.nonblock then Sched.finish ctx (Abi.R_int (-Errno.eagain))
      else Sched.block ctx ~chan:Sched.poll_chan ~retry:attempt
    end
    else begin
      let n = max 0 (min len (String.length pending)) in
      Hashtbl.replace t.pending file.Fd.file_id
        (String.sub pending n (String.length pending - n));
      Sched.charge ctx (Kcost.copy_cycles ~bytes:n + 500);
      Sched.finish ctx (Abi.R_bytes (Bytes.of_string (String.sub pending 0 n)))
    end
  in
  attempt ()

let ktrace_ready t file =
  String.length (trace_pending t file) > 0
  || Ktrace.reader_ready (trace_reader t file)

let ktrace_close t file =
  (match Hashtbl.find_opt t.readers file.Fd.file_id with
  | Some _ ->
      let tr = t.sched.Sched.trace in
      tr.Ktrace.readers_open <- max 0 (tr.Ktrace.readers_open - 1)
  | None -> ());
  Hashtbl.remove t.readers file.Fd.file_id;
  Hashtbl.remove t.pending file.Fd.file_id

(* ---- /proc/ktrace_ctl: runtime control ---- *)

(* Commands, one per line: "enable=0|1", "clock=abs|rel" (rel rebases
   stamps at the current instant), "filter=all" or a comma-separated
   class list ("filter=syscall,span"). The whole write is rejected with
   EINVAL if any line fails to parse. *)
let ktrace_ctl_write t ctx bytes =
  let tr = t.sched.Sched.trace in
  let apply line =
    match String.index_opt line '=' with
    | None -> false
    | Some i -> (
        let key = String.sub line 0 i in
        let value =
          String.sub line (i + 1) (String.length line - i - 1) |> String.trim
        in
        match key with
        | "enable" -> (
            match value with
            | "0" -> Ktrace.set_enabled tr false; true
            | "1" -> Ktrace.set_enabled tr true; true
            | _ -> false)
        | "clock" -> (
            match value with
            | "abs" -> Ktrace.set_clock_base tr 0L; true
            | "rel" ->
                Ktrace.set_clock_base tr (Hw.Board.now t.board);
                true
            | _ -> false)
        | "filter" -> (
            match Ktrace.filter_of_string value with
            | Some mask -> Ktrace.set_filter tr mask; true
            | None -> false)
        | "dstate" -> (
            (* delay-accounting trace events (Task_state / Runq_depth)
               are double-gated: the Kconfig.delayacct knob AND this
               runtime switch, off by default so armed-vs-stock traces
               stay byte-identical *)
            match value with
            | "0" -> Ktrace.set_dstate tr false; true
            | "1" -> Ktrace.set_dstate tr true; true
            | _ -> false)
        | _ -> false)
  in
  let lines =
    Bytes.to_string bytes |> String.split_on_char '\n'
    |> List.map String.trim
    |> List.filter (fun l -> not (String.equal l ""))
  in
  if lines <> [] && List.for_all apply lines then begin
    Sched.charge ctx 500;
    Sched.finish ctx (Abi.R_int (Bytes.length bytes))
  end
  else Sched.finish ctx (Abi.R_int (-Errno.einval))

(* ---- /proc/vprobe_ctl: probe attach/detach ---- *)

(* Probe-spec writes ("probe syscall:read / pid==2 / hist(latency_us)",
   "detach <id>", "clear"), one command per line; Vprobe validates the
   whole write before applying any of it, so a bad line is EINVAL with
   no partial attach. *)
let vprobe_ctl_write t ctx bytes =
  match Vprobe.ctl_write t.sched.Sched.vprobe (Bytes.to_string bytes) with
  | Ok () ->
      Sched.charge ctx 500;
      Sched.finish ctx (Abi.R_int (Bytes.length bytes))
  | Error _ -> Sched.finish ctx (Abi.R_int (-Errno.einval))

(* ---- dev_ops ---- *)

let snapshot_read t name ctx file ~len =
  let content =
    match Hashtbl.find_opt t.snapshots file.Fd.file_id with
    | Some c -> c
    | None ->
        let c = Option.value ~default:"" (render t name) in
        Hashtbl.replace t.snapshots file.Fd.file_id c;
        c
  in
  (* the offset is under user control via lseek and may sit past the end
     of the snapshot; a read there is 0 bytes, not a String.sub crash *)
  let off = min file.Fd.off (String.length content) in
  let n = max 0 (min len (String.length content - off)) in
  file.Fd.off <- file.Fd.off + n;
  Sched.charge ctx (Kcost.copy_cycles ~bytes:n + 500);
  Sched.finish ctx (Abi.R_bytes (Bytes.of_string (String.sub content off n)))

(* Build dev_ops for one opened proc file. *)
let ops t name =
  match name with
  | "ktrace" ->
      Some
        {
          Fd.dev_name = "proc:ktrace";
          dev_read = (fun ctx file ~len -> ktrace_read t ctx file ~len);
          dev_write =
            (fun ctx _ _ -> Sched.finish ctx (Abi.R_int (-Errno.erofs)));
          dev_mmap = None;
          dev_close = (fun file -> ktrace_close t file);
          dev_poll = Some (fun _ctx file -> ktrace_ready t file);
        }
  | "ktrace_ctl" ->
      Some
        {
          Fd.dev_name = "proc:ktrace_ctl";
          dev_read = (fun ctx file ~len -> snapshot_read t name ctx file ~len);
          dev_write = (fun ctx _ bytes -> ktrace_ctl_write t ctx bytes);
          dev_mmap = None;
          dev_close = (fun file -> Hashtbl.remove t.snapshots file.Fd.file_id);
          dev_poll = None;
        }
  | "vprobe_ctl" when t.sched.Sched.config.Kconfig.vprobe ->
      Some
        {
          Fd.dev_name = "proc:vprobe_ctl";
          dev_read = (fun ctx file ~len -> snapshot_read t name ctx file ~len);
          dev_write = (fun ctx _ bytes -> vprobe_ctl_write t ctx bytes);
          dev_mmap = None;
          dev_close = (fun file -> Hashtbl.remove t.snapshots file.Fd.file_id);
          dev_poll = None;
        }
  | _ -> (
      match render t name with
      | None -> None
      | Some _ ->
          Some
            {
              Fd.dev_name = "proc:" ^ name;
              dev_read = (fun ctx file ~len -> snapshot_read t name ctx file ~len);
              dev_write =
                (fun ctx _ _ -> Sched.finish ctx (Abi.R_int (-Errno.erofs)));
              dev_mmap = None;
              dev_close =
                (fun file -> Hashtbl.remove t.snapshots file.Fd.file_id);
              dev_poll = None;
            })
