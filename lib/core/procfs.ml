(** procfs: /proc/cpuinfo, /proc/meminfo, /proc/uptime, /proc/tasks,
    /proc/sched, /proc/ipc.

    Files are snapshots rendered at open time (like Linux's seq_file, one
    generation per open) and then read as ordinary byte streams; sysmon
    polls these to draw its overlay. *)

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  kalloc : Kalloc.t;
  ipc : Ipcstats.t;
  snapshots : (int, string) Hashtbl.t;  (** file_id -> rendered content *)
}

let create ~board ~sched ~kalloc ~ipc =
  { board; sched; kalloc; ipc; snapshots = Hashtbl.create 16 }

let render_cpuinfo t =
  let buf = Buffer.create 256 in
  let plat = t.board.Hw.Board.platform in
  Buffer.add_string buf
    (Printf.sprintf "prototype\t: %d\n\n" t.sched.Sched.config.Kconfig.stage);
  for core = 0 to plat.Hw.Board.num_cores - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "processor\t: %d\nmodel name\t: ARMv8 Cortex-A53 (sim)\nBogoMIPS\t: %.2f\nbusy_ns\t: %Ld\n\n"
         core
         (float_of_int plat.Hw.Board.cpu_hz /. 1e6)
         (Sched.core_busy_ns t.sched core))
  done;
  Buffer.contents buf

let render_meminfo t =
  let total_kb = Kalloc.total_pages t.kalloc * Kalloc.page_bytes / 1024 in
  let used_kb = Kalloc.used_bytes t.kalloc / 1024 in
  Printf.sprintf
    "MemTotal:\t%d kB\nMemUsed:\t%d kB\nMemFree:\t%d kB\nKmalloc:\t%d B\nPeak:\t%d kB\n"
    total_kb used_kb (total_kb - used_kb)
    (Kalloc.kmalloc_bytes t.kalloc)
    (Kalloc.peak_bytes t.kalloc / 1024)

let render_uptime t =
  Printf.sprintf "%.3f\n" (Sim.Engine.to_sec (Hw.Board.now t.board))

let render_tasks t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "PID\tSTATE\t\tCPU_MS\tNAME\n";
  List.iter
    (fun task ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%-12s\t%.1f\t%s\n" task.Task.pid
           (Task.state_name task)
           (Int64.to_float task.Task.cpu_ns /. 1e6)
           task.Task.name))
    (Sched.all_tasks t.sched);
  Buffer.contents buf

(* Per-core scheduler statistics, one block per core like /proc/cpuinfo:
   context switches, migrations, steals, balance moves, IPIs and the
   run-delay (runnable -> running) distribution. *)
let render_sched t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "policy\t\t: %s\n\n" (Sched.class_name t.sched));
  let plat = t.board.Hw.Board.platform in
  for core = 0 to plat.Hw.Board.num_cores - 1 do
    let s = Sched.stats t.sched core in
    Buffer.add_string buf
      (Printf.sprintf
         "core\t\t: %d\nswitches\t: %d\nmigrations\t: %d\nsteals\t\t: \
          %d\nbalance_moves\t: %d\nipis_sent_to\t: %d\nipis_taken\t: %d\n"
         core
         (Sched.core_switches t.sched core)
         s.Sched.migrations s.Sched.steals s.Sched.balance_moves
         s.Sched.ipis_to s.Sched.ipis_recv);
    if s.Sched.delay_count > 0 then begin
      Buffer.add_string buf
        (Printf.sprintf "run_delay_avg\t: %Ld ns\nrun_delay_max\t: %Ld ns\n"
           (Int64.div s.Sched.delay_total_ns
              (Int64.of_int s.Sched.delay_count))
           s.Sched.delay_max_ns);
      Buffer.add_string buf "run_delay_hist\t:";
      Array.iteri
        (fun bucket n ->
          if n > 0 then
            Buffer.add_string buf (Printf.sprintf " 2^%d:%d" bucket n))
        s.Sched.delay_hist;
      Buffer.add_char buf '\n'
    end;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* The IPC path's configuration and counters; the wakeup lines are how
   the edge-triggered ablation is observable from inside the machine. *)
let render_ipc t =
  let cfg = t.sched.Sched.config in
  Printf.sprintf "%-18s %s\n%-18s %s\n%-18s %d\n" "pipe_impl"
    (if cfg.Kconfig.pipe_ring then "ring" else "xv6")
    "wake_mode"
    (if cfg.Kconfig.pipe_wake_edge then "edge" else "level")
    "buffer_bytes"
    (if cfg.Kconfig.pipe_ring then cfg.Kconfig.pipe_buffer_bytes
     else Kcost.pipe_buffer_bytes)
  ^ Ipcstats.render t.ipc

(* Spinlock statistics and the sanitizer's own counters/violations. Both
   render even when kcheck is off (header-only / "disabled"), so sysmon
   can always open them. *)
let render_locks t =
  match t.sched.Sched.kcheck with
  | Some kc -> Kcheck.render_locks kc
  | None -> "kcheck disabled: no lock registry\n"

let render_kcheck t =
  match t.sched.Sched.kcheck with
  | Some kc -> Kcheck.render_report kc
  | None -> "kcheck\t\t: disabled\n"

let render t name =
  match name with
  | "cpuinfo" -> Some (render_cpuinfo t)
  | "meminfo" -> Some (render_meminfo t)
  | "uptime" -> Some (render_uptime t)
  | "tasks" -> Some (render_tasks t)
  | "sched" -> Some (render_sched t)
  | "ipc" -> Some (render_ipc t)
  | "locks" -> Some (render_locks t)
  | "kcheck" -> Some (render_kcheck t)
  | _ -> None

let names =
  [ "cpuinfo"; "meminfo"; "uptime"; "tasks"; "sched"; "ipc"; "locks"; "kcheck" ]

(* Build dev_ops for one opened proc file. *)
let ops t name =
  match render t name with
  | None -> None
  | Some _ ->
      Some
        {
          Fd.dev_name = "proc:" ^ name;
          dev_read =
            (fun ctx file ~len ->
              let content =
                match Hashtbl.find_opt t.snapshots file.Fd.file_id with
                | Some c -> c
                | None ->
                    let c = Option.value ~default:"" (render t name) in
                    Hashtbl.replace t.snapshots file.Fd.file_id c;
                    c
              in
              let off = file.Fd.off in
              let n = max 0 (min len (String.length content - off)) in
              file.Fd.off <- off + n;
              Sched.charge ctx (Kcost.copy_cycles ~bytes:n + 500);
              Sched.finish ctx (Abi.R_bytes (Bytes.of_string (String.sub content off n))));
          dev_write =
            (fun ctx _ _ -> Sched.finish ctx (Abi.R_int (-Errno.erofs)));
          dev_mmap = None;
          dev_close = (fun file -> Hashtbl.remove t.snapshots file.Fd.file_id);
          dev_poll = None;
        }
