(** vprobe: dynamic kernel probes with in-kernel aggregation.

    The bpftrace idea at teaching scale: the kernel compiles in a fixed
    registry of named probe points (every syscall entry and exit, the
    scheduler's wakeup/switch/migrate edges, spinlock acquisition, pipe
    traffic, buffer-cache hits and misses, SD requests, journal
    commits). Each point is a zero-cost no-op while nothing is attached
    — the hot-path guard is one array read — and writing a probe spec to
    [/proc/vprobe_ctl] attaches a predicate-filtered aggregation that
    updates host-side state as events fire:

    {v probe syscall:read / pid==2 / hist(latency_us) v}

    Aggregations are [count], [sum(key)] or [hist(key)] (reusing
    {!Kperf.Hist}), optionally keyed with [by(pid|syscall|core)];
    predicates compare [pid]/[fd]/[errno]/[arg0]/[core] against integer
    literals with [== != < <= > >=], joined by [&&]. Results render live
    at [/proc/vprobe] and fold into [/proc/metrics].

    Everything here follows the PR-5 observability discipline: no
    {!Sched.charge}, no engine events — attaching every probe in the
    catalog leaves all virtual-time numbers byte-identical. *)

(* ---- the probe-point catalog ---- *)

(* Point ids are dense array indices: [0, syscall_count) are the
   syscall-entry points ("sysenter:<name>"), [syscall_count,
   2*syscall_count) the syscall-exit points ("syscall:<name>", which
   carry service latency and errno), and the tail is the static
   catalog below. vlint R007 checks each static name is registered
   exactly once and documented in DESIGN.md. *)
let static_points =
  [
    "sched:wakeup";
    "sched:ctx_switch";
    "sched:migrate";
    "lock:acquire";
    "lock:contended";
    "pipe:read";
    "pipe:write";
    "bufcache:hit";
    "bufcache:miss";
    "sd:issue";
    "sd:complete";
    "journal:commit";
  ]

let sysenter_base = 0
let sysexit_base = Abi.syscall_count
let static_base = 2 * Abi.syscall_count
let point_count = static_base + List.length static_points

let point_name id =
  if id < sysexit_base then "sysenter:" ^ List.nth Abi.syscall_names id
  else if id < static_base then
    "syscall:" ^ List.nth Abi.syscall_names (id - sysexit_base)
  else List.nth static_points (id - static_base)

let point_id name =
  let find target lst =
    let rec go i = function
      | [] -> None
      | n :: rest -> if String.equal n target then Some i else go (i + 1) rest
    in
    go 0 lst
  in
  match String.index_opt name ':' with
  | None -> None
  | Some i -> (
      let family = String.sub name 0 i in
      let rest = String.sub name (i + 1) (String.length name - i - 1) in
      match family with
      | "sysenter" ->
          Option.map (fun k -> sysenter_base + k) (find rest Abi.syscall_names)
      | "syscall" ->
          Option.map (fun k -> sysexit_base + k) (find rest Abi.syscall_names)
      | _ -> Option.map (fun k -> static_base + k) (find name static_points))

(* Static ids, named so fire sites don't grep for strings. *)
let static_id k = static_base + k
let pt_sched_wakeup = static_id 0
let pt_sched_ctx_switch = static_id 1
let pt_sched_migrate = static_id 2
let pt_lock_acquire = static_id 3
let pt_lock_contended = static_id 4
let pt_pipe_read = static_id 5
let pt_pipe_write = static_id 6
let pt_bufcache_hit = static_id 7
let pt_bufcache_miss = static_id 8
let pt_sd_issue = static_id 9
let pt_sd_complete = static_id 10
let pt_journal_commit = static_id 11

(** The event record a fire site hands to every attached probe. Fields a
    site cannot supply stay at their defaults; predicates over an absent
    field simply never select the event ([fd == 3] can't match a
    ctx-switch). *)
type args = {
  a_pid : int;
  a_core : int;
  a_fd : int;  (** -1 = not a file event *)
  a_errno : int;  (** 0 = success / not a completion event *)
  a_arg0 : int;
  a_syscall : int;  (** Abi.syscall_index; -1 = not a syscall event *)
  a_latency_ns : int64;  (** 0 = event has no duration *)
}

let no_args =
  {
    a_pid = 0;
    a_core = 0;
    a_fd = -1;
    a_errno = 0;
    a_arg0 = 0;
    a_syscall = -1;
    a_latency_ns = 0L;
  }

(* ---- probe specs ---- *)

type field = F_pid | F_fd | F_errno | F_arg0 | F_core

let field_name = function
  | F_pid -> "pid"
  | F_fd -> "fd"
  | F_errno -> "errno"
  | F_arg0 -> "arg0"
  | F_core -> "core"

type cmp = Eq | Ne | Lt | Le | Gt | Ge

let cmp_name = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

type pred = { p_field : field; p_cmp : cmp; p_lit : int }

(** What value an aggregation accumulates. *)
type key =
  | K_unit  (** count: always 1 *)
  | K_latency_ns
  | K_latency_us
  | K_arg0
  | K_fd
  | K_errno
  | K_pid
  | K_core

let key_name = function
  | K_unit -> ""
  | K_latency_ns -> "latency_ns"
  | K_latency_us -> "latency_us"
  | K_arg0 -> "arg0"
  | K_fd -> "fd"
  | K_errno -> "errno"
  | K_pid -> "pid"
  | K_core -> "core"

type agg_kind = A_count | A_sum of key | A_hist of key
type by = By_none | By_pid | By_syscall | By_core

let by_name = function
  | By_none -> ""
  | By_pid -> "pid"
  | By_syscall -> "syscall"
  | By_core -> "core"

type spec = {
  s_point : int;
  s_preds : pred list;
  s_agg : agg_kind;
  s_by : by;
}

(* One aggregation cell; keyed maps hold one per distinct by-value. *)
type cell = { mutable cl_count : int; mutable cl_sum : int64; cl_hist : Kperf.Hist.t }

type probe = {
  pr_id : int;  (** attachment id, for [detach <id>] *)
  pr_spec : spec;
  pr_text : string;  (** the spec as written, for rendering *)
  pr_cells : (int, cell) Hashtbl.t;  (** by-value -> cell; By_none uses key 0 *)
  mutable pr_fired : int;  (** events that passed the predicate *)
}

type t = {
  attached : probe list array;  (** index = point id; [] = disarmed *)
  mutable syscall_armed : bool;
      (** any sysenter/syscall point armed — lets the trap path skip even
          the per-ctor array read when no one is looking *)
  mutable next_probe_id : int;
  mutable all : probe list;  (** newest first *)
}

let create () =
  {
    attached = Array.make point_count [];
    syscall_armed = false;
    next_probe_id = 0;
    all = [];
  }

(* The hot-path guard: one array read. Fire sites do
   [if Vprobe.armed vp pt then Vprobe.fire vp pt args]. *)
let armed t pt = t.attached.(pt) <> []
let syscall_armed t = t.syscall_armed

(* ---- the spec parser ----

   probe <point> [/ <pred> && <pred> ... [/ <agg>]]
   pred  := * | <field> <cmp> <int>
   agg   := count | sum(<key>) | hist(<key>) [by(pid|syscall|core)]

   Whitespace is free; errors return [Error msg] and the ctl write
   surfaces EINVAL (all-or-nothing, like ktrace_ctl). *)

let ( let* ) = Result.bind

let parse_field = function
  | "pid" -> Ok F_pid
  | "fd" -> Ok F_fd
  | "errno" -> Ok F_errno
  | "arg0" -> Ok F_arg0
  | "core" -> Ok F_core
  | s -> Error (Printf.sprintf "unknown predicate field %S" s)

let parse_key = function
  | "latency_ns" -> Ok K_latency_ns
  | "latency_us" -> Ok K_latency_us
  | "arg0" -> Ok K_arg0
  | "fd" -> Ok K_fd
  | "errno" -> Ok K_errno
  | "pid" -> Ok K_pid
  | "core" -> Ok K_core
  | s -> Error (Printf.sprintf "unknown aggregation key %S" s)

let parse_by = function
  | "pid" -> Ok By_pid
  | "syscall" -> Ok By_syscall
  | "core" -> Ok By_core
  | s -> Error (Printf.sprintf "unknown by() key %S" s)

(* split "name(arg)" -> Some (name, arg) *)
let split_call s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      Some
        ( String.sub s 0 i,
          String.trim (String.sub s (i + 1) (String.length s - i - 2)) )
  | _ -> None

let parse_pred s =
  let s = String.trim s in
  if String.equal s "*" then Ok None
  else
    (* longest operators first so "<=" is not read as "<" *)
    let ops = [ ("==", Eq); ("!=", Ne); ("<=", Le); (">=", Ge); ("<", Lt); (">", Gt) ] in
    let found =
      List.filter_map
        (fun (op, c) ->
          let oplen = String.length op in
          let rec scan i =
            if i + oplen > String.length s then None
            else if String.equal (String.sub s i oplen) op then Some i
            else scan (i + 1)
          in
          Option.map (fun i -> (i, op, oplen, c)) (scan 0))
        ops
    in
    match found with
    | [] -> Error (Printf.sprintf "predicate %S has no comparison operator" s)
    | (i, _, oplen, c) :: _ ->
        let fld = String.trim (String.sub s 0 i) in
        let lit = String.trim (String.sub s (i + oplen) (String.length s - i - oplen)) in
        let* f = parse_field fld in
        (match int_of_string_opt lit with
        | None -> Error (Printf.sprintf "predicate literal %S is not an integer" lit)
        | Some n -> Ok (Some { p_field = f; p_cmp = c; p_lit = n }))

let parse_preds s =
  let parts = String.split_on_char '&' s in
  (* "a && b" splits into ["a "; ""; " b"]; drop the empties "&&" leaves *)
  let parts = List.filter (fun p -> String.trim p <> "") parts in
  List.fold_left
    (fun acc p ->
      let* ps = acc in
      let* pred = parse_pred p in
      Ok (match pred with None -> ps | Some pr -> pr :: ps))
    (Ok []) parts
  |> Result.map List.rev

let parse_agg s =
  let s = String.trim s in
  (* optional trailing by(...): scan for a "by(" token at a word start *)
  let* body, by =
    let len = String.length s in
    let rec find_by i =
      if i + 3 > len then None
      else if
        String.equal (String.sub s i 3) "by(" && (i = 0 || s.[i - 1] = ' ')
      then Some i
      else find_by (i + 1)
    in
    match find_by 0 with
    | None -> Ok (s, By_none)
    | Some i -> (
        let body = String.trim (String.sub s 0 i) in
        let rest = String.trim (String.sub s i (len - i)) in
        match split_call rest with
        | Some ("by", k) ->
            let* b = parse_by k in
            Ok (body, b)
        | _ -> Error (Printf.sprintf "malformed by() in %S" s))
  in
  let* kind =
    if String.equal body "count" || String.equal body "count()" then Ok A_count
    else
      match split_call body with
      | Some ("sum", k) ->
          let* key = parse_key k in
          Ok (A_sum key)
      | Some ("hist", k) ->
          let* key = parse_key k in
          Ok (A_hist key)
      | _ -> Error (Printf.sprintf "unknown aggregation %S" body)
  in
  Ok (kind, by)

let parse_spec line =
  let line = String.trim line in
  let* rest =
    if String.length line >= 6 && String.equal (String.sub line 0 6) "probe " then
      Ok (String.sub line 6 (String.length line - 6))
    else Error (Printf.sprintf "expected \"probe <point> ...\", got %S" line)
  in
  let sections = String.split_on_char '/' rest |> List.map String.trim in
  let* point, preds, agg =
    match sections with
    | [ p ] -> Ok (p, Ok [], Ok (A_count, By_none))
    | [ p; pr ] -> Ok (p, parse_preds pr, Ok (A_count, By_none))
    | [ p; pr; ag ] -> Ok (p, parse_preds pr, parse_agg ag)
    | _ -> Error (Printf.sprintf "too many '/' sections in %S" line)
  in
  let* pt =
    match point_id point with
    | Some id -> Ok id
    | None -> Error (Printf.sprintf "unknown probe point %S" point)
  in
  let* preds = preds in
  let* agg, by = agg in
  Ok { s_point = pt; s_preds = preds; s_agg = agg; s_by = by }

(* ---- attach / detach ---- *)

let refresh_syscall_armed t =
  let any = ref false in
  for pt = 0 to static_base - 1 do
    if t.attached.(pt) <> [] then any := true
  done;
  t.syscall_armed <- !any

let attach t line =
  let* spec = parse_spec line in
  t.next_probe_id <- t.next_probe_id + 1;
  let probe =
    {
      pr_id = t.next_probe_id;
      pr_spec = spec;
      pr_text = String.trim line;
      pr_cells = Hashtbl.create 8;
      pr_fired = 0;
    }
  in
  t.attached.(spec.s_point) <- probe :: t.attached.(spec.s_point);
  t.all <- probe :: t.all;
  refresh_syscall_armed t;
  Ok probe.pr_id

let detach t id =
  if List.exists (fun p -> p.pr_id = id) t.all then begin
    let keep p = p.pr_id <> id in
    Array.iteri (fun i ps -> t.attached.(i) <- List.filter keep ps) t.attached;
    t.all <- List.filter keep t.all;
    refresh_syscall_armed t;
    true
  end
  else false

let clear t =
  Array.fill t.attached 0 point_count [];
  t.all <- [];
  t.syscall_armed <- false

(* ---- firing ---- *)

let field_value a = function
  | F_pid -> a.a_pid
  | F_fd -> a.a_fd
  | F_errno -> a.a_errno
  | F_arg0 -> a.a_arg0
  | F_core -> a.a_core

let pred_holds a p =
  let v = field_value a p.p_field in
  match p.p_cmp with
  | Eq -> v = p.p_lit
  | Ne -> v <> p.p_lit
  | Lt -> v < p.p_lit
  | Le -> v <= p.p_lit
  | Gt -> v > p.p_lit
  | Ge -> v >= p.p_lit

let key_value a = function
  | K_unit -> 1L
  | K_latency_ns -> a.a_latency_ns
  | K_latency_us -> Int64.div a.a_latency_ns 1000L
  | K_arg0 -> Int64.of_int a.a_arg0
  | K_fd -> Int64.of_int a.a_fd
  | K_errno -> Int64.of_int a.a_errno
  | K_pid -> Int64.of_int a.a_pid
  | K_core -> Int64.of_int a.a_core

let by_value a = function
  | By_none -> 0
  | By_pid -> a.a_pid
  | By_syscall -> a.a_syscall
  | By_core -> a.a_core

let cell_for probe k =
  match Hashtbl.find_opt probe.pr_cells k with
  | Some c -> c
  | None ->
      let c = { cl_count = 0; cl_sum = 0L; cl_hist = Kperf.Hist.create () } in
      Hashtbl.add probe.pr_cells k c;
      c

let fire t pt a =
  List.iter
    (fun probe ->
      if List.for_all (pred_holds a) probe.pr_spec.s_preds then begin
        probe.pr_fired <- probe.pr_fired + 1;
        let c = cell_for probe (by_value a probe.pr_spec.s_by) in
        c.cl_count <- c.cl_count + 1;
        match probe.pr_spec.s_agg with
        | A_count -> ()
        | A_sum key -> c.cl_sum <- Int64.add c.cl_sum (key_value a key)
        | A_hist key ->
            (* hist() buckets in ns space; latency_us values are scaled
               back up so one Hist covers both units *)
            let v = key_value a key in
            let v =
              match key with K_latency_us -> Int64.mul v 1000L | _ -> v
            in
            Kperf.Hist.record c.cl_hist v
      end)
    t.attached.(pt)

(* Syscall fast path: the trap path calls these with the pieces it
   already has; the index math only runs when something is armed. *)
let fire_sysenter t ~idx ~pid ~core ~fd ~arg0 =
  let pt = sysenter_base + idx in
  if armed t pt then
    fire t pt
      { no_args with a_pid = pid; a_core = core; a_fd = fd; a_arg0 = arg0;
        a_syscall = idx }

let fire_sysexit t ~idx ~pid ~core ~fd ~arg0 ~errno ~latency_ns =
  let pt = sysexit_base + idx in
  if armed t pt then
    fire t pt
      {
        a_pid = pid;
        a_core = core;
        a_fd = fd;
        a_errno = errno;
        a_arg0 = arg0;
        a_syscall = idx;
        a_latency_ns = latency_ns;
      }

(* ---- rendering ---- *)

let by_key_label spec k =
  match spec.s_by with
  | By_none -> ""
  | By_syscall ->
      Printf.sprintf "[%s]"
        (if k >= 0 && k < Abi.syscall_count then List.nth Abi.syscall_names k
         else string_of_int k)
  | By_pid | By_core -> Printf.sprintf "[%d]" k

let render_cell buf spec k c =
  let tag = by_key_label spec k in
  match spec.s_agg with
  | A_count ->
      Buffer.add_string buf
        (Printf.sprintf "  count%s\t: %d\n" tag c.cl_count)
  | A_sum key ->
      Buffer.add_string buf
        (Printf.sprintf "  sum(%s)%s\t: %Ld  (n=%d)\n" (key_name key) tag
           c.cl_sum c.cl_count)
  | A_hist key ->
      Buffer.add_string buf
        (Printf.sprintf "  hist(%s)%s\t: %s\n" (key_name key) tag
           (Kperf.Hist.render_line c.cl_hist))

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "points\t: %d registered, %d armed\nprobes\t: %d attached\n"
       point_count
       (Array.fold_left (fun n ps -> if ps = [] then n else n + 1) 0 t.attached)
       (List.length t.all));
  List.iter
    (fun probe ->
      let spec = probe.pr_spec in
      Buffer.add_string buf
        (Printf.sprintf "\n#%d %s  (point %s, fired %d)\n" probe.pr_id
           probe.pr_text (point_name spec.s_point) probe.pr_fired);
      if List.length spec.s_preds > 0 then
        Buffer.add_string buf
          (Printf.sprintf "  filter\t: %s\n"
             (String.concat " && "
                (List.map
                   (fun p ->
                     Printf.sprintf "%s %s %d" (field_name p.p_field)
                       (cmp_name p.p_cmp) p.p_lit)
                   spec.s_preds)));
      Hashtbl.fold (fun k c acc -> (k, c) :: acc) probe.pr_cells []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.iter (fun (k, c) -> render_cell buf spec k c))
    (List.rev t.all);
  Buffer.contents buf

(* Fold the attached aggregates into /proc/metrics. Each probe becomes
   vos_vprobe_<agg>{probe="<spec text>",key="<by label>"} — counts and
   sums as gauges-rendered-as-counters, hist cells elided (the full
   histograms live on /proc/vprobe). *)
let render_metrics t =
  let buf = Buffer.create 512 in
  let quote s = Printf.sprintf "%S" s in
  if t.all <> [] then begin
    Buffer.add_string buf
      "# HELP vos_vprobe_fired_total events that passed an attached probe's predicate\n";
    Buffer.add_string buf "# TYPE vos_vprobe_fired_total counter\n";
    List.iter
      (fun probe ->
        Buffer.add_string buf
          (Printf.sprintf "vos_vprobe_fired_total{probe=%s} %d\n"
             (quote probe.pr_text) probe.pr_fired))
      (List.rev t.all);
    let sums =
      List.concat_map
        (fun probe ->
          match probe.pr_spec.s_agg with
          | A_sum _ ->
              Hashtbl.fold (fun k c acc -> (probe, k, c) :: acc)
                probe.pr_cells []
              |> List.sort (fun (_, a, _) (_, b, _) -> compare a b)
          | A_count | A_hist _ -> [])
        (List.rev t.all)
    in
    if sums <> [] then begin
      Buffer.add_string buf
        "# HELP vos_vprobe_sum accumulated sum(key) per attached probe cell\n";
      Buffer.add_string buf "# TYPE vos_vprobe_sum counter\n";
      List.iter
        (fun (probe, k, c) ->
          Buffer.add_string buf
            (Printf.sprintf "vos_vprobe_sum{probe=%s,key=%s} %Ld\n"
               (quote probe.pr_text)
               (quote (by_key_label probe.pr_spec k))
               c.cl_sum))
        sums
    end
  end;
  Buffer.contents buf

(* ---- the ctl surface ----

   probe <spec>   attach (see grammar above)
   detach <id>    remove one attachment
   clear          remove everything

   All-or-nothing like ktrace_ctl: the whole write is validated first
   and any bad line means no line applies. *)

type ctl_cmd = C_probe of string | C_detach of int | C_clear

let parse_ctl_line line =
  let line = String.trim line in
  if String.equal line "" then Ok None
  else if String.equal line "clear" then Ok (Some C_clear)
  else if String.length line >= 7 && String.equal (String.sub line 0 7) "detach "
  then
    match int_of_string_opt (String.trim (String.sub line 7 (String.length line - 7))) with
    | Some id -> Ok (Some (C_detach id))
    | None -> Error "detach wants an integer probe id"
  else if String.length line >= 6 && String.equal (String.sub line 0 6) "probe "
  then
    (* validate now, attach later *)
    let* _ = parse_spec line in
    Ok (Some (C_probe line))
  else Error (Printf.sprintf "unknown vprobe_ctl command %S" line)

let ctl_write t data =
  let lines = String.split_on_char '\n' data in
  let parsed =
    List.fold_left
      (fun acc line ->
        let* cmds = acc in
        let* cmd = parse_ctl_line line in
        Ok (match cmd with None -> cmds | Some c -> c :: cmds))
      (Ok []) lines
    |> Result.map List.rev
  in
  match parsed with
  | Error e -> Error e
  | Ok cmds ->
      List.iter
        (fun cmd ->
          match cmd with
          | C_clear -> clear t
          | C_detach id -> ignore (detach t id)
          | C_probe line -> (
              match attach t line with Ok _ -> () | Error _ -> ()))
        cmds;
      Ok ()
