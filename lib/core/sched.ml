(** The scheduler and trap machinery — the center of the kernel.

    Tasks are OCaml computations running under an effect handler. When a
    task performs {!Abi.Sys} the handler captures the one-shot continuation
    and runs the syscall dispatcher; when it performs {!Abi.Burn} the task
    occupies its core for that many cycles of simulated time, preemptible
    by the per-core timer tick. All kernel work is accounted in cycles and
    applied as simulated delays, so every latency the benchmarks observe is
    the composition of these charges plus genuine queueing.

    Structure per the paper: a single run queue suffices up to Prototype 4
    (one core); Prototype 5 gives each core its own queue (§4.5), with idle
    cores stealing work so a multiprogrammed load scales (Figure 10). IRQs
    from devices are routed to core 0; each core receives its own generic
    timer tick.

    Beyond the paper, the scheduler is split into policy and mechanism:

    - a {!sched_class} (enqueue / pick / steal / quantum / priority) owns
      the per-core runqueue representation. Two classes are selectable via
      {!Kconfig.sched_policy}: the paper's round-robin (default — keeps
      every paper number bit-identical) and an MLFQ class with per-task
      nice values, quantum scaling, a sleeper boost and periodic
      anti-starvation boosts;
    - wake placement can prefer the task's last-run core (cache affinity,
      {!Kconfig.wake_affinity}); a task dispatched on a different core
      then pays the modeled {!Kcost.sched_migrate} cache-refill penalty;
    - cross-core wakeups follow {!Kconfig.wake_model}: the seed's instant
      (free) remote scheduling, honest WFI-until-tick polling, or
      reschedule IPIs through {!Hw.Intc.send_ipi} with a modeled
      mailbox-to-vector latency — also used by [force_kill] so a victim
      spinning on a remote core dies at IPI latency, not burn completion;
    - an optional periodic load-balance pass equalizes runqueue depth
      across cores ({!Kconfig.load_balance_ms}), replacing pick-time
      stealing when enabled;
    - per-core counters (migrations, steals, IPIs, a run-delay histogram)
      feed /proc/sched and the schedbench ladder. *)

type ctx = {
  sched : t;
  task : Task.t;
  call : Abi.syscall;
  mutable charge_cycles : int;
  mutable charge_io : int64;  (** device time in ns, added on top of CPU *)
  kont : (Abi.ret, unit) Effect.Deep.continuation;
  mutable done_ : bool;
  entry_ns : int64;  (** trap time: syscall service = exit - entry *)
  span : int;  (** kperf span id bracketing this syscall *)
}

and core_state = {
  core_id : int;
  mutable rq : runqueue;
  stats : core_stats;
  mutable current : Task.t option;
  mutable last_pid : int;  (** pid last dispatched here, for Ctx_switch *)
  mutable ipi_pending : bool;  (** a reschedule IPI is in flight to us *)
  mutable in_irq : string option;
      (** IRQ line being dispatched here, for profiler attribution *)
  mutable ticks : int;
  mutable burn_started : int64;
  mutable burn_until : int64;
  mutable burn_event : Sim.Engine.event_id option;
  mutable burn_after : (unit -> unit) option;
  mutable busy_ns : int64;
  mutable io_busy_ns : int64;
  mutable switches : int;
}

and runqueue =
  | Rq_rr of Task.t Queue.t
  | Rq_mlfq of Task.t Queue.t array  (** index 0 = highest priority *)

and core_stats = {
  mutable migrations : int;
      (** dispatches of a task that last ran on another core *)
  mutable steals : int;  (** tasks this core stole at pick time *)
  mutable balance_moves : int;  (** tasks the balancer moved onto this core *)
  mutable ipis_to : int;  (** reschedule IPIs sent to this core *)
  mutable ipis_recv : int;  (** reschedule IPIs actually taken *)
  delay_hist : Kperf.Hist.t;
      (** run-delay (runnable → running) distribution; registered with
          kperf so /proc/metrics exports it per core *)
  mutable delay_count : int;
  mutable delay_total_ns : int64;
  mutable delay_max_ns : int64;
}

and t = {
  board : Hw.Board.t;
  config : Kconfig.t;
  kalloc : Kalloc.t;
  trace : Ktrace.t;
  kperf : Kperf.t;  (** histograms, counters, profiler (host-side only) *)
  h_syscall : Kperf.Hist.t;  (** syscall service time, trap to return *)
  h_poll_wait : Kperf.Hist.t;  (** poll(2) entry to wake (vfs records) *)
  h_pipe_wait : Kperf.Hist.t;  (** blocked pipe read round-trip (pipe.ml) *)
  h_sd_req : Kperf.Hist.t;  (** SD request latency (bufcache records) *)
  vprobe : Vprobe.t;
      (** the dynamic-probe registry; fire sites guard with
          {!Vprobe.armed} so a disarmed point costs one array read *)
  cls : sched_class;
  cores : core_state array;
  active_cores : int;
  tasks : (int, Task.t) Hashtbl.t;
  mutable dispatch : ctx -> unit;
  mutable irq_drivers : (Hw.Irq.line * (unit -> unit)) list;
  wait_chans : (string, (Task.t * (unit -> unit)) Queue.t) Hashtbl.t;
  frame_counts : (int, int) Hashtbl.t;
      (** frames presented per pid; survives trace-ring wraparound *)
  mutable on_task_exit : (Task.t -> unit) list;
  mutable on_panic : (int -> unit) option;  (** core id of the FIQ *)
  mutable frame_hook : (Task.t -> string -> bool) option;
      (** debug monitor: stop on frame entry? *)
  mutable syscall_hook : (Task.t -> string -> bool) option;
      (** debug monitor: stop on syscall entry? *)
  mutable tick_interval_ms : int;
  mutable started : bool;
  mutable kcheck : Kcheck.t option;
      (** the runtime sanitizer; [None] when {!Kconfig.kcheck} is off *)
  mutable ptable : Spinlock.t option;
      (** the xv6 process-table lock discipline: held across the
          wait-channel/state mutations in block/wake, feeding /proc/locks
          and the lockdep order graph *)
}

(** A scheduling class: the policy face of the per-core runqueues. The
    mechanism (cores, burns, context switches, IPIs) never inspects the
    queue representation — it goes through these hooks, so classes are
    pluggable per {!Kconfig.sched_policy}. *)
and sched_class = {
  sc_name : string;
  sc_make : unit -> runqueue;
  sc_enqueue : runqueue -> Task.t -> unit;  (** wakeup or new arrival *)
  sc_requeue : runqueue -> Task.t -> unit;  (** preempted: back of its level *)
  sc_pick : runqueue -> Task.t option;
  sc_steal : runqueue -> Task.t option;
      (** victim side of work stealing / load balancing *)
  sc_prio : Task.t -> int;  (** smaller = more urgent *)
  sc_best_prio : runqueue -> int option;  (** most urgent queued priority *)
  sc_quantum : Task.t -> int;  (** ticks until preemption *)
  sc_on_block_wake : Task.t -> unit;  (** sleeper boost *)
  sc_on_expire : Task.t -> unit;  (** quantum ran out: demotion *)
}

(* ---- runqueue plumbing shared by both classes ---- *)

let rq_len = function
  | Rq_rr q -> Queue.length q
  | Rq_mlfq levels -> Array.fold_left (fun n q -> n + Queue.length q) 0 levels

(* ---- the round-robin class: the paper's scheduler, bit-identical ---- *)

let rr_class =
  let q = function
    | Rq_rr q -> q
    | Rq_mlfq _ -> Kpanic.panicf "sched: rr class on mlfq queue"
  in
  {
    sc_name = "rr";
    sc_make = (fun () -> Rq_rr (Queue.create ()));
    sc_enqueue = (fun rq task -> Queue.add task (q rq));
    sc_requeue = (fun rq task -> Queue.add task (q rq));
    sc_pick = (fun rq -> Queue.take_opt (q rq));
    sc_steal = (fun rq -> Queue.take_opt (q rq));
    sc_prio = (fun _ -> 0);
    sc_best_prio = (fun rq -> if Queue.is_empty (q rq) then None else Some 0);
    sc_quantum = (fun _ -> Task.default_quantum);
    sc_on_block_wake = (fun _ -> ());
    sc_on_expire = (fun _ -> ());
  }

(* ---- the MLFQ class: nice values, quantum scaling, sleeper boost ---- *)

let mlfq_levels = 4
let mlfq_quanta = [| 2; 4; 8; 16 |]  (* ticks; interactive levels run short *)
let mlfq_boost_ticks = 100  (* periodic anti-starvation boost, per core *)

let mlfq_class =
  let levels = function
    | Rq_mlfq a -> a
    | Rq_rr _ -> Kpanic.panicf "sched: mlfq class on rr queue"
  in
  let clamp_level l = max 0 (min (mlfq_levels - 1) l) in
  {
    sc_name = "mlfq";
    sc_make = (fun () -> Rq_mlfq (Array.init mlfq_levels (fun _ -> Queue.create ())));
    sc_enqueue =
      (fun rq task ->
        task.Task.mlfq_level <- clamp_level task.Task.mlfq_level;
        Queue.add task (levels rq).(task.Task.mlfq_level));
    sc_requeue =
      (fun rq task ->
        task.Task.mlfq_level <- clamp_level task.Task.mlfq_level;
        Queue.add task (levels rq).(task.Task.mlfq_level));
    sc_pick =
      (fun rq ->
        let a = levels rq in
        let rec go l =
          if l >= mlfq_levels then None
          else
            match Queue.take_opt a.(l) with
            | Some task -> Some task
            | None -> go (l + 1)
        in
        go 0);
    sc_steal =
      (fun rq ->
        (* steal batch work first: interactive tasks stay cache-hot *)
        let a = levels rq in
        let rec go l =
          if l < 0 then None
          else
            match Queue.take_opt a.(l) with
            | Some task -> Some task
            | None -> go (l - 1)
        in
        go (mlfq_levels - 1));
    sc_prio = (fun task -> task.Task.mlfq_level);
    sc_best_prio =
      (fun rq ->
        let a = levels rq in
        let rec go l =
          if l >= mlfq_levels then None
          else if not (Queue.is_empty a.(l)) then Some l
          else go (l + 1)
        in
        go 0);
    sc_quantum =
      (fun task ->
        (* nice scaling: -20 doubles the slice, +19 shrinks it to a tick *)
        let base = mlfq_quanta.(clamp_level task.Task.mlfq_level) in
        max 1 (base * (20 - task.Task.nice) / 20));
    sc_on_block_wake =
      (fun task ->
        (* sleeper boost: a task that voluntarily blocked is interactive *)
        task.Task.mlfq_level <- 0);
    sc_on_expire =
      (fun task -> task.Task.mlfq_level <- clamp_level (task.Task.mlfq_level + 1));
  }

let class_of_policy = function
  | Kconfig.Sched_rr -> rr_class
  | Kconfig.Sched_mlfq -> mlfq_class

let engine t = t.board.Hw.Board.engine
let now t = Sim.Engine.now (engine t)
let cyc t n = Hw.Board.cycles_to_ns t.board n

let create board config kalloc =
  let active =
    if config.Kconfig.multicore then board.Hw.Board.platform.Hw.Board.num_cores
    else 1
  in
  let cls = class_of_policy config.Kconfig.sched_policy in
  let kperf = Kperf.create () in
  kperf.Kperf.profile_hz <- config.Kconfig.profile_hz;
  let t =
    {
      board;
      config;
      kalloc;
      trace =
        Ktrace.create
          ~per_core:config.Kconfig.trace_per_core_rings
          ~cores:board.Hw.Board.platform.Hw.Board.num_cores ();
      kperf;
      h_syscall = Kperf.hist kperf "vos_syscall_service_ns";
      h_poll_wait = Kperf.hist kperf "vos_poll_wait_ns";
      h_pipe_wait = Kperf.hist kperf "vos_pipe_read_wait_ns";
      h_sd_req = Kperf.hist kperf "vos_sd_request_ns";
      vprobe = Vprobe.create ();
      cls;
      cores =
        Array.init board.Hw.Board.platform.Hw.Board.num_cores (fun core_id ->
            {
              core_id;
              rq = cls.sc_make ();
              stats =
                {
                  migrations = 0;
                  steals = 0;
                  balance_moves = 0;
                  ipis_to = 0;
                  ipis_recv = 0;
                  delay_hist =
                    Kperf.hist kperf
                      ~label:("core", string_of_int core_id)
                      "vos_sched_run_delay_ns";
                  delay_count = 0;
                  delay_total_ns = 0L;
                  delay_max_ns = 0L;
                };
              current = None;
              last_pid = 0;
              ipi_pending = false;
              in_irq = None;
              ticks = 0;
              burn_started = 0L;
              burn_until = 0L;
              burn_event = None;
              burn_after = None;
              busy_ns = 0L;
              io_busy_ns = 0L;
              switches = 0;
            });
      active_cores = active;
      tasks = Hashtbl.create 64;
      dispatch = (fun _ -> Kpanic.panicf "sched: no syscall dispatcher installed");
      irq_drivers = [];
      wait_chans = Hashtbl.create 32;
      frame_counts = Hashtbl.create 16;
      on_task_exit = [];
      on_panic = None;
      frame_hook = None;
      syscall_hook = None;
      tick_interval_ms = 1;
      started = false;
      kcheck = None;
      ptable = None;
    }
  in
  for core = 0 to Array.length t.cores - 1 do
    let label = ("core", string_of_int core) in
    Kperf.register_counter kperf ~label "vos_ctx_switches_total" (fun () ->
        t.cores.(core).switches);
    Kperf.register_counter kperf ~label "vos_sched_migrations_total" (fun () ->
        t.cores.(core).stats.migrations)
  done;
  Kperf.register_counter kperf "vos_trace_events_total" (fun () ->
      Ktrace.written t.trace);
  Kperf.register_counter kperf "vos_profile_samples_total" (fun () ->
      kperf.Kperf.profile_samples);
  t

(* Every Ktrace constructor is spelled out (no wildcard): vlint's R004
   makes adding an event variant force an audit of this accumulator. *)
let bump_frames t ev =
  match ev with
  | Ktrace.Frame_present pid ->
      Hashtbl.replace t.frame_counts pid
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.frame_counts pid))
  | Ktrace.Syscall_enter _ | Ktrace.Syscall_exit _ | Ktrace.Ctx_switch _
  | Ktrace.Irq_enter _ | Ktrace.Irq_exit _ | Ktrace.Sched_wakeup _
  | Ktrace.Sched_migrate _ | Ktrace.Ipi_send _ | Ktrace.Ipi_recv _
  | Ktrace.Kbd_report | Ktrace.Event_delivered _ | Ktrace.Poll_return _
  | Ktrace.Wm_composite | Ktrace.Lock_acquire _ | Ktrace.Lock_release _
  | Ktrace.Sem_block _ | Ktrace.Sem_wake _ | Ktrace.Custom _
  | Ktrace.Span_begin _ | Ktrace.Span_end _ | Ktrace.Task_state _
  | Ktrace.Runq_depth _ -> ()

(* Events with no task context (device IRQs routed to core 0, kernel
   daemons): attributed to core 0. Task-attributed events go through
   [trace_emit_task], which stamps the core the task occupies. *)
let trace_emit t ev =
  bump_frames t ev;
  Ktrace.emit t.trace ~ts_ns:(now t) ~core:0 ev

let trace_emit_core t ~core ev = Ktrace.emit t.trace ~ts_ns:(now t) ~core ev

let trace_emit_task t task ev =
  bump_frames t ev;
  let core =
    match task.Task.state with
    | Task.Running c -> c
    | Task.Runnable | Task.Blocked _ | Task.Zombie -> max 0 task.Task.last_core
  in
  Ktrace.emit t.trace ~ts_ns:(now t) ~core ev

(* ---- delay accounting ---- *)

(* Which delay bucket time spent blocked on [chan] belongs to. The
   channel namespace is the kernel's own: pipes block on "pipe:<id>:r/w",
   semaphores on "sem:<id>", device waits on their driver's channel.
   Anything unrecognized counts as sleep — a voluntary wait. *)
let delay_class_of_chan chan =
  let has_prefix p =
    String.length chan >= String.length p
    && String.equal (String.sub chan 0 (String.length p)) p
  in
  if has_prefix "pipe:" then `Pipe
  else if has_prefix "sem:" then `Lock
  else if
    has_prefix "sd" || has_prefix "bio" || String.equal chan "uart:rx"
    || String.equal chan "kbd:events"
    || String.equal chan "audio:space"
    || has_prefix "wm:ev"
  then `Io
  else `Sleep

let state_code = function
  | Task.Runnable -> 0
  | Task.Running _ -> 1
  | Task.Blocked _ -> 2
  | Task.Zombie -> 3

(* Close the open delay segment: bucket [now - d_state_since] by the
   state being left. Zombie time accrues to sleep (zombies are parked
   waiting for a reaper); /proc/delays lists live tasks only. *)
let delay_fold task ~now_ns =
  let dt = Int64.sub now_ns task.Task.d_state_since in
  let dt = if Int64.compare dt 0L > 0 then dt else 0L in
  (match task.Task.state with
  | Task.Runnable ->
      task.Task.d_runnable_ns <- Int64.add task.Task.d_runnable_ns dt
  | Task.Running _ ->
      task.Task.d_oncpu_ns <- Int64.add task.Task.d_oncpu_ns dt
  | Task.Blocked chan -> (
      match delay_class_of_chan chan with
      | `Pipe -> task.Task.d_blk_pipe_ns <- Int64.add task.Task.d_blk_pipe_ns dt
      | `Lock -> task.Task.d_blk_lock_ns <- Int64.add task.Task.d_blk_lock_ns dt
      | `Io -> task.Task.d_blk_io_ns <- Int64.add task.Task.d_blk_io_ns dt
      | `Sleep -> task.Task.d_sleep_ns <- Int64.add task.Task.d_sleep_ns dt)
  | Task.Zombie -> task.Task.d_sleep_ns <- Int64.add task.Task.d_sleep_ns dt);
  task.Task.d_state_since <- now_ns

(* The single gateway for task-state transitions: every assignment of
   [Task.state] in this file goes through here so delay accounting can
   never miss an edge. Pure host-side bookkeeping — nothing is charged —
   and the optional Task_state event is double-gated (delayacct knob AND
   the tracer's dstate toggle) so armed traces stay byte-identical. *)
let set_state t task new_state =
  if t.config.Kconfig.delayacct then begin
    delay_fold task ~now_ns:(now t);
    if t.trace.Ktrace.dstate then
      Ktrace.emit t.trace ~ts_ns:(now t)
        ~core:(max 0 task.Task.last_core)
        (Ktrace.Task_state (task.Task.pid, state_code new_state))
  end;
  task.Task.state <- new_state

(* Runnable-queue depth after a queue change, for the Perfetto counter
   track. Same double gate as Task_state. *)
let emit_runq_depth t core =
  if t.config.Kconfig.delayacct && t.trace.Ktrace.dstate then
    Ktrace.emit t.trace ~ts_ns:(now t) ~core:core.core_id
      (Ktrace.Runq_depth (core.core_id, rq_len core.rq))

(* ---- kcheck / ptable plumbing ---- *)

(* The ptable lock brackets only the state/queue mutations themselves
   (never the enqueue paths, which can synchronously run other tasks), so
   holds are leaf-scoped and acquisition can never recurse. *)
let ptable_acquire t ~core =
  match t.ptable with
  | Some l -> Spinlock.acquire l ~core ~now_ns:(now t)
  | None -> ()

let ptable_release t ~core =
  match t.ptable with
  | Some l -> Spinlock.release l ~core ~now_ns:(now t)
  | None -> ()

let kcheck_blocked t ~pid ~chan ~core =
  match t.kcheck with
  | Some kc -> Kcheck.task_blocked kc ~pid ~chan ~core
  | None -> ()

let kcheck_audit t ~reason =
  match t.kcheck with Some kc -> Kcheck.audit kc ~reason | None -> ()

let is_zombie task = task.Task.state = Task.Zombie

(* ---- busy accounting ---- *)

let add_busy core ns =
  core.busy_ns <- Int64.add core.busy_ns ns

let add_io_busy core ns = core.io_busy_ns <- Int64.add core.io_busy_ns ns

(* ---- per-core scheduler statistics ---- *)

let record_run_delay core delay_ns =
  if Int64.compare delay_ns 0L >= 0 then begin
    let s = core.stats in
    Kperf.Hist.record s.delay_hist delay_ns;
    s.delay_count <- s.delay_count + 1;
    s.delay_total_ns <- Int64.add s.delay_total_ns delay_ns;
    if Int64.compare delay_ns s.delay_max_ns > 0 then s.delay_max_ns <- delay_ns
  end

let stats t core_id = t.cores.(core_id).stats
let core_switches t core_id = t.cores.(core_id).switches
let runq_len core = rq_len core.rq
let class_name t = t.cls.sc_name

(* ---- reschedule IPIs ---- *)

(* Kick [core]: write its local mailbox. The modeled latency spans the
   sender's mailbox write through interconnect propagation to the target's
   vector entry; duplicate kicks while one is in flight coalesce, like the
   level-triggered mailbox bit they model. *)
let send_ipi t core =
  if not core.ipi_pending then begin
    core.ipi_pending <- true;
    core.stats.ipis_to <- core.stats.ipis_to + 1;
    trace_emit_core t ~core:core.core_id (Ktrace.Ipi_send core.core_id);
    ignore
      (Sim.Engine.schedule_after (engine t)
         (cyc t (Kcost.ipi_send + Kcost.ipi_latency))
         (fun () ->
           Hw.Intc.send_ipi t.board.Hw.Board.intc ~target:core.core_id))
  end

(* ---- burns: occupying a core for simulated time ---- *)

let core_of_task t task =
  match task.Task.state with
  | Task.Running c -> t.cores.(c)
  | Task.Runnable | Task.Blocked _ | Task.Zombie ->
      Kpanic.panicf "sched: task %d (%s) not running" task.Task.pid
        (Task.state_name task)

(* Run [after] once [task] has burned [ns] of CPU on its current core. *)
let rec start_burn t task ns after =
  let core = core_of_task t task in
  if Int64.compare ns 1L < 0 then after ()
  else begin
    assert (core.burn_event = None);
    let start = now t in
    core.burn_started <- start;
    core.burn_until <- Int64.add start ns;
    core.burn_after <- Some after;
    core.burn_event <-
      Some
        (Sim.Engine.schedule_at (engine t) core.burn_until (fun () ->
             core.burn_event <- None;
             core.burn_after <- None;
             let elapsed = Int64.sub (now t) core.burn_started in
             add_busy core elapsed;
             task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
             if task.Task.killed then raise_exit t task (-1) else after ()))
  end

(* Interrupt handlers steal cycles from whatever burn is in flight. *)
and steal_cycles t core ns =
  match core.burn_event with
  | None -> add_busy core ns
  | Some id ->
      Sim.Engine.cancel (engine t) id;
      core.burn_until <- Int64.add core.burn_until ns;
      let after = Option.get core.burn_after in
      let task = Option.get core.current in
      core.burn_event <-
        Some
          (Sim.Engine.schedule_at (engine t) core.burn_until (fun () ->
               core.burn_event <- None;
               core.burn_after <- None;
               let elapsed = Int64.sub (now t) core.burn_started in
               add_busy core elapsed;
               task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
               if task.Task.killed then raise_exit t task (-1) else after ()))

(* ---- run queues ---- *)

and pick_target_core t task =
  if t.active_cores = 1 then t.cores.(0)
  else begin
    (* prefer an idle core, else the shortest queue *)
    let best = ref t.cores.(0) in
    let score c =
      (match c.current with None -> 0 | Some _ -> 1000) + rq_len c.rq
    in
    for i = 1 to t.active_cores - 1 do
      if score t.cores.(i) < score !best then best := t.cores.(i)
    done;
    if
      t.config.Kconfig.wake_affinity
      && task.Task.last_core >= 0
      && task.Task.last_core < t.active_cores
    then begin
      (* cache affinity: stay on the last-run core unless it is
         meaningfully busier than the best candidate (one slot of slack) *)
      let home = t.cores.(task.Task.last_core) in
      if score home <= score !best + 1 then home else !best
    end
    else !best
  end

and enqueue_task t task =
  assert (task.Task.state = Task.Runnable);
  assert (task.Task.resume <> None);
  let core = pick_target_core t task in
  task.Task.runnable_since <- now t;
  t.cls.sc_enqueue core.rq task;
  trace_emit_core t ~core:core.core_id (Ktrace.Sched_wakeup task.Task.pid);
  emit_runq_depth t core;
  if Vprobe.armed t.vprobe Vprobe.pt_sched_wakeup then
    Vprobe.fire t.vprobe Vprobe.pt_sched_wakeup
      { Vprobe.no_args with Vprobe.a_pid = task.Task.pid;
        Vprobe.a_core = core.core_id };
  kick_core t core task

(* The woken core learns about the new arrival per the wake model: the
   seed's instant scheduling, nothing (its next tick polls the queue), or
   a reschedule IPI — also sent when the arrival should preempt what the
   core currently runs (MLFQ priority). *)
and kick_core t core task =
  let idle = core.current = None && core.burn_event = None in
  match t.config.Kconfig.wake_model with
  | Kconfig.Wake_direct -> if idle then schedule_core t core
  | Kconfig.Wake_tick -> ()
  | Kconfig.Wake_ipi ->
      if idle then send_ipi t core
      else begin
        match core.current with
        | Some cur when t.cls.sc_prio task < t.cls.sc_prio cur -> send_ipi t core
        | Some _ | None -> ()
      end

(* Steal a task from the longest other queue (pick-time stealing is the
   seed's mechanism; it yields to the balance pass when that is on). *)
and try_steal t thief =
  if t.active_cores = 1 || t.config.Kconfig.load_balance_ms > 0 then None
  else begin
    let victim = ref None in
    for i = 0 to t.active_cores - 1 do
      let c = t.cores.(i) in
      if c.core_id <> thief.core_id && rq_len c.rq > 0 then
        match !victim with
        | Some v when rq_len v.rq >= rq_len c.rq -> ()
        | Some _ | None -> victim := Some c
    done;
    match !victim with
    | Some v ->
        let stolen = t.cls.sc_steal v.rq in
        (match stolen with
        | Some _ -> thief.stats.steals <- thief.stats.steals + 1
        | None -> ());
        stolen
    | None -> None
  end

and schedule_core t core =
  if core.current = None && core.burn_event = None then begin
    let next =
      match t.cls.sc_pick core.rq with
      | Some task -> Some task
      | None -> try_steal t core
    in
    match next with
    | None -> () (* WFI idle *)
    | Some task ->
        if is_zombie task || task.Task.resume = None then schedule_core t core
        else begin
          core.current <- Some task;
          core.switches <- core.switches + 1;
          let migrated =
            task.Task.last_core >= 0 && task.Task.last_core <> core.core_id
          in
          if migrated then begin
            core.stats.migrations <- core.stats.migrations + 1;
            trace_emit_core t ~core:core.core_id
              (Ktrace.Sched_migrate
                 (task.Task.pid, task.Task.last_core, core.core_id));
            if Vprobe.armed t.vprobe Vprobe.pt_sched_migrate then
              Vprobe.fire t.vprobe Vprobe.pt_sched_migrate
                { Vprobe.no_args with Vprobe.a_pid = task.Task.pid;
                  Vprobe.a_core = core.core_id;
                  Vprobe.a_arg0 = task.Task.last_core }
          end;
          (if Int64.compare task.Task.runnable_since 0L >= 0 then begin
             record_run_delay core
               (Int64.sub (now t) task.Task.runnable_since);
             task.Task.runnable_since <- (-1L)
           end);
          task.Task.last_core <- core.core_id;
          set_state t task (Task.Running core.core_id);
          task.Task.quantum_left <- t.cls.sc_quantum task;
          let resume = Option.get task.Task.resume in
          task.Task.resume <- None;
          trace_emit_core t ~core:core.core_id
            (Ktrace.Ctx_switch (core.last_pid, task.Task.pid));
          emit_runq_depth t core;
          if Vprobe.armed t.vprobe Vprobe.pt_sched_ctx_switch then
            Vprobe.fire t.vprobe Vprobe.pt_sched_ctx_switch
              { Vprobe.no_args with Vprobe.a_pid = task.Task.pid;
                Vprobe.a_core = core.core_id;
                Vprobe.a_arg0 = core.last_pid };
          core.last_pid <- task.Task.pid;
          (* the context-switch cost precedes the task's first instruction;
             a migrated task also refills its caches when the affinity
             model is on *)
          let switch_cycles =
            Kcost.ctx_switch + Kcost.sched_pick
            + if migrated && t.config.Kconfig.wake_affinity then
                Kcost.sched_migrate
              else 0
          in
          let switch_ns = cyc t switch_cycles in
          add_busy core switch_ns;
          let span = Ktrace.new_span t.trace in
          trace_emit_core t ~core:core.core_id
            (Ktrace.Span_begin (span, task.Task.pid, "switch"));
          ignore
            (Sim.Engine.schedule_after (engine t) switch_ns (fun () ->
                 trace_emit_core t ~core:core.core_id (Ktrace.Span_end span);
                 if task.Task.killed && task.Task.kind = Task.User then
                   raise_exit t task (-1)
                 else resume ()))
        end
  end

(* Release the core a task occupies (it blocked or exited). *)
and release_core t task =
  match task.Task.state with
  | Task.Running c ->
      let core = t.cores.(c) in
      (match core.burn_event with
      | Some id ->
          (* should not happen: blocking always occurs between burns *)
          Sim.Engine.cancel (engine t) id;
          core.burn_event <- None;
          core.burn_after <- None
      | None -> ());
      core.current <- None;
      schedule_core t core
  | Task.Runnable | Task.Blocked _ | Task.Zombie -> ()

(* ---- task exit ---- *)

and raise_exit t task code =
  (* Terminate from within the task's execution context: run teardown and
     hand the core over. The task's continuation is abandoned. *)
  do_exit t task code

and do_exit t task code =
  if not (is_zombie task) then begin
    task.Task.exit_code <- code;
    task.Task.cur_syscall <- None;
    let was_running = match task.Task.state with Task.Running _ -> true | Task.Runnable | Task.Blocked _ | Task.Zombie -> false in
    List.iter (fun hook -> hook task) t.on_task_exit;
    kcheck_audit t ~reason:(Printf.sprintf "exit of task %d" task.Task.pid);
    (match task.Task.vm with
    | Some vm ->
        Vm.destroy vm;
        task.Task.vm <- None
    | None -> ());
    (* reparent children to init (pid 1) *)
    List.iter
      (fun child_pid ->
        match Hashtbl.find_opt t.tasks child_pid with
        | Some child -> child.Task.parent <- 1
        | None -> ())
      task.Task.children;
    let charge = cyc t Kcost.exit_teardown in
    let finish_exit () =
      if was_running then begin
        (match task.Task.state with
        | Task.Running c ->
            t.cores.(c).current <- None;
            set_state t task Task.Zombie;
            wake_all t (Printf.sprintf "exit:%d" task.Task.pid);
            wake_all t (Printf.sprintf "children:%d" task.Task.parent);
            schedule_core t t.cores.(c)
        | Task.Runnable | Task.Blocked _ | Task.Zombie -> ())
      end
      else begin
        set_state t task Task.Zombie;
        wake_all t (Printf.sprintf "exit:%d" task.Task.pid);
        wake_all t (Printf.sprintf "children:%d" task.Task.parent)
      end
    in
    match task.Task.state with
    | Task.Running _ when Int64.compare charge 0L > 0 ->
        ignore (Sim.Engine.schedule_after (engine t) charge finish_exit)
    | Task.Running _ | Task.Runnable | Task.Blocked _ | Task.Zombie ->
        finish_exit ()
  end

(* ---- wait channels ---- *)

and chan_queue t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.replace t.wait_chans chan q;
      q

and wake_all t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | None -> ()
  | Some q ->
      let entries = Queue.to_seq q |> List.of_seq in
      Queue.clear q;
      List.iter
        (fun (task, retry) ->
          if not (is_zombie task) then begin
            ptable_acquire t ~core:0;
            set_state t task Task.Runnable;
            task.Task.resume <- Some retry;
            ptable_release t ~core:0;
            t.cls.sc_on_block_wake task;
            enqueue_task t task
          end)
        entries

(* Wake at most one waiter; the woken pid feeds the Sem_wake trace
   event. *)
let wake_one t chan =
  match Hashtbl.find_opt t.wait_chans chan with
  | None -> None
  | Some q -> (
      match Queue.take_opt q with
      | None -> None
      | Some (task, retry) ->
          if is_zombie task then None
          else begin
            ptable_acquire t ~core:0;
            set_state t task Task.Runnable;
            task.Task.resume <- Some retry;
            ptable_release t ~core:0;
            t.cls.sc_on_block_wake task;
            enqueue_task t task;
            Some task.Task.pid
          end)

(* All pollers park on one shared channel: a task can only block on one
   chan, so poll cannot sleep on each fd's own channel. Producers (pipes,
   keyboard, UART, WM event queues) call [poll_wake] at every readiness
   transition; each woken poller rescans its own fd set and re-blocks if
   still idle. Free when nobody is polling, so the paper paths that never
   poll are untouched. *)
let poll_chan = "poll:waiters"

let poll_wake t =
  match Hashtbl.find_opt t.wait_chans poll_chan with
  | None -> ()
  | Some q -> if not (Queue.is_empty q) then wake_all t poll_chan

(* ---- the syscall context API (used by the dispatcher in Syscall) ---- *)

let charge ctx cycles = ctx.charge_cycles <- ctx.charge_cycles + cycles

let charge_io ctx ns = ctx.charge_io <- Int64.add ctx.charge_io ns

let finish ctx ret =
  assert (not ctx.done_);
  ctx.done_ <- true;
  let t = ctx.sched in
  let task = ctx.task in
  let cpu_cycles =
    ctx.charge_cycles
    + if task.Task.kind = Task.User then Kcost.syscall_exit else 0
  in
  let total = Int64.add (cyc t cpu_cycles) ctx.charge_io in
  (match task.Task.state with
  | Task.Running c ->
      if Int64.compare ctx.charge_io 0L > 0 then
        add_io_busy t.cores.(c) ctx.charge_io
  | Task.Runnable | Task.Blocked _ | Task.Zombie -> ());
  start_burn t task total (fun () ->
      task.Task.cur_syscall <- None;
      Kperf.Hist.record t.h_syscall (Int64.sub (now t) ctx.entry_ns);
      trace_emit_task t task
        (Ktrace.Syscall_exit (task.Task.pid, Abi.syscall_name ctx.call));
      trace_emit_task t task (Ktrace.Span_end ctx.span);
      if Vprobe.syscall_armed t.vprobe then begin
        let errno =
          match ret with
          | Abi.R_int v when v < 0 -> -v
          | Abi.R_int _ | Abi.R_bytes _ | Abi.R_pair _ | Abi.R_stat _
          | Abi.R_mmap _ ->
              0
        in
        Vprobe.fire_sysexit t.vprobe
          ~idx:(Abi.syscall_index ctx.call)
          ~pid:task.Task.pid
          ~core:(max 0 task.Task.last_core)
          ~fd:(Option.value ~default:(-1) (Abi.syscall_fd ctx.call))
          ~arg0:(Abi.syscall_arg0 ctx.call) ~errno
          ~latency_ns:(Int64.sub (now t) ctx.entry_ns)
      end;
      Effect.Deep.continue ctx.kont ret)

(* Block the calling task on [chan]; [retry] re-enters the syscall path
   when the channel is woken. *)
let block ctx ~chan ~retry =
  let t = ctx.sched in
  let task = ctx.task in
  let core =
    match task.Task.state with
    | Task.Running c -> c
    | Task.Runnable | Task.Blocked _ | Task.Zombie ->
        Kpanic.panicf "sched: blocking a task that is not running"
  in
  let q = chan_queue t chan in
  release_core t task;
  ptable_acquire t ~core;
  set_state t task (Task.Blocked chan);
  Queue.add (task, retry) q;
  ptable_release t ~core;
  kcheck_blocked t ~pid:task.Task.pid ~chan ~core

(* Park the task and deliver [ret] after [delay_ns] (sleep, timed IO). *)
let finish_after ctx ~delay_ns ret =
  let t = ctx.sched in
  let task = ctx.task in
  let core =
    match task.Task.state with
    | Task.Running c -> c
    | Task.Runnable | Task.Blocked _ | Task.Zombie -> max 0 task.Task.last_core
  in
  release_core t task;
  set_state t task (Task.Blocked "sleep");
  kcheck_blocked t ~pid:task.Task.pid ~chan:"sleep" ~core;
  ignore
    (Sim.Engine.schedule_after (engine t) delay_ns (fun () ->
         if not (is_zombie task) then begin
           set_state t task Task.Runnable;
           task.Task.resume <- Some (fun () -> finish ctx ret);
           t.cls.sc_on_block_wake task;
           enqueue_task t task
         end))

(* ---- running tasks under the effect handler ---- *)

(* Debug monitor stop: park the running task on its debug channel;
   Debugmon.resume wakes it. *)
let park_for_debug t task thunk =
  let chan = Printf.sprintf "debug:%d" task.Task.pid in
  let core =
    match task.Task.state with
    | Task.Running c -> c
    | Task.Runnable | Task.Blocked _ | Task.Zombie -> max 0 task.Task.last_core
  in
  let q = chan_queue t chan in
  release_core t task;
  set_state t task (Task.Blocked chan);
  Queue.add (task, thunk) q;
  kcheck_blocked t ~pid:task.Task.pid ~chan ~core

let rec run_computation t task main () =
  let open Effect.Deep in
  match_with
    (fun () ->
      let code = main () in
      code)
    ()
    {
      retc = (fun code -> do_exit t task code);
      exnc =
        (fun exn ->
          trace_emit_task t task
            (Ktrace.Custom
               (Printf.sprintf "task %d (%s) uncaught exception: %s"
                  task.Task.pid task.Task.name (Printexc.to_string exn)));
          do_exit t task (-2));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Abi.Sys call ->
              Some
                (fun (k : (a, unit) continuation) ->
                  handle_trap t task call
                    (k : (Abi.ret, unit) continuation))
          | Abi.Burn cycles ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let ns = cyc t (max 1 cycles) in
                  start_burn t task ns (fun () -> continue k ()))
          | Abi.Offload (cycles, fn) ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Virtual cost is a plain burn; the host-side work is a
                     Par event with this core as its affinity tag. The Par
                     is scheduled before the burn-end event at the same
                     instant, so its commit (smaller seq) has filled the
                     cell by the time the burn delivers the result —
                     preemption can only move the burn end later. A ≥ 1 ns
                     floor keeps the burn asynchronous even for cycle
                     counts that round to zero. *)
                  let core =
                    match task.Task.state with
                    | Task.Running c -> c
                    | Task.Runnable | Task.Blocked _ | Task.Zombie ->
                        Kpanic.panicf "sched: offload from task %d (%s), not running"
                          task.Task.pid (Task.state_name task)
                  in
                  let ns = Int64.max 1L (cyc t (max 1 cycles)) in
                  let cell = ref None in
                  ignore
                    (Sim.Engine.schedule_par (engine t)
                       (Int64.add (now t) ns)
                       ~affinity:core
                       (fun () ->
                         let r = fn () in
                         fun () -> cell := Some r));
                  start_burn t task ns (fun () ->
                      match !cell with
                      | Some r -> continue k r
                      | None ->
                          Kpanic.panicf
                            "sched: offload result missing for task %d"
                            task.Task.pid))
          | Abi.Frame_mark label ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if String.equal label "" then begin
                    (match task.Task.shadow_stack with
                    | [] -> ()
                    | _ :: rest -> task.Task.shadow_stack <- rest);
                    continue k ()
                  end
                  else begin
                    task.Task.shadow_stack <- label :: task.Task.shadow_stack;
                    match t.frame_hook with
                    | Some hook when hook task label ->
                        park_for_debug t task (fun () -> continue k ())
                    | Some _ | None -> continue k ()
                  end)
          | _ -> None);
    }

and handle_trap t task call k =
  task.Task.syscall_count <- task.Task.syscall_count + 1;
  let name = Abi.syscall_name call in
  task.Task.cur_syscall <- Some name;
  trace_emit_task t task (Ktrace.Syscall_enter (task.Task.pid, name));
  if Vprobe.syscall_armed t.vprobe then
    Vprobe.fire_sysenter t.vprobe
      ~idx:(Abi.syscall_index call)
      ~pid:task.Task.pid
      ~core:(max 0 task.Task.last_core)
      ~fd:(Option.value ~default:(-1) (Abi.syscall_fd call))
      ~arg0:(Abi.syscall_arg0 call);
  let span = Ktrace.new_span t.trace in
  trace_emit_task t task (Ktrace.Span_begin (span, task.Task.pid, "sys:" ^ name));
  let entry_cycles =
    if task.Task.kind = Task.User then
      Kcost.syscall_entry + Kcost.syscall_dispatch
    else 300 (* kernel threads call in directly *)
  in
  let ctx =
    {
      sched = t;
      task;
      call;
      charge_cycles = entry_cycles;
      charge_io = 0L;
      kont = k;
      done_ = false;
      entry_ns = now t;
      span;
    }
  in
  match t.syscall_hook with
  | Some hook when hook task (Abi.syscall_name call) ->
      park_for_debug t task (fun () -> t.dispatch ctx)
  | Some _ | None -> t.dispatch ctx

(* ---- spawning ---- *)

let spawn t ~name ~kind ?vm ?(parent = 0) ?(nice = 0) main =
  let task = Task.create ~name ~kind ?vm ~parent () in
  task.Task.d_spawned_ns <- now t;
  task.Task.d_state_since <- now t;
  task.Task.nice <- max (-20) (min 19 nice);
  Hashtbl.replace t.tasks task.Task.pid task;
  (match Hashtbl.find_opt t.tasks parent with
  | Some p -> p.Task.children <- task.Task.pid :: p.Task.children
  | None -> ());
  task.Task.resume <- Some (run_computation t task main);
  enqueue_task t task;
  task

(* Replace the running task's computation (exec). The old continuation is
   abandoned; the new main starts when the task is next scheduled. *)
let replace_computation t task main =
  task.Task.resume <- Some (run_computation t task main);
  set_state t task Task.Runnable;
  enqueue_task t task

(* exec(2): burn the accumulated syscall charge, abandon the trapping
   continuation, and restart the task with [main]. *)
let exec_replace ctx main =
  assert (not ctx.done_);
  ctx.done_ <- true;
  let t = ctx.sched in
  let task = ctx.task in
  let total = Int64.add (cyc t ctx.charge_cycles) ctx.charge_io in
  start_burn t task total (fun () ->
      task.Task.cur_syscall <- None;
      Kperf.Hist.record t.h_syscall (Int64.sub (now t) ctx.entry_ns);
      trace_emit_task t task (Ktrace.Span_end ctx.span);
      match task.Task.state with
      | Task.Running c ->
          t.cores.(c).current <- None;
          set_state t task Task.Runnable;
          task.Task.resume <- Some (run_computation t task main);
          task.Task.shadow_stack <- [];
          enqueue_task t task;
          schedule_core t t.cores.(c)
      | Task.Runnable | Task.Blocked _ | Task.Zombie -> ())

(* Kill a task that is not currently on a CPU: pull it out of the one wait
   channel it records in [Task.Blocked chan] and terminate it. Running
   tasks die at their next preemption point via the [killed] flag — under
   the IPI wake model that point is brought forward to IPI latency by
   kicking the victim's core. *)
let force_kill t task =
  task.Task.killed <- true;
  match task.Task.state with
  | Task.Running c ->
      (* dies at the next burn completion — or at the reschedule IPI *)
      if t.config.Kconfig.wake_model = Kconfig.Wake_ipi then
        send_ipi t t.cores.(c)
  | Task.Zombie -> ()
  | Task.Blocked chan ->
      (* a blocked task records its channel: remove it from that one
         queue, O(queue) instead of O(all wait channels). "sleep" and
         other timer parks have no channel queue — the engine callback
         checks for zombies. *)
      (match Hashtbl.find_opt t.wait_chans chan with
      | None -> ()
      | Some q ->
          let entries = Queue.to_seq q |> List.of_seq in
          Queue.clear q;
          List.iter
            (fun ((waiting, _) as entry) ->
              if waiting.Task.pid <> task.Task.pid then Queue.add entry q)
            entries);
      do_exit t task (-1)
  | Task.Runnable ->
      (* queued on some core: schedule_core skips it once it is a zombie *)
      do_exit t task (-1)

(* ---- timer ticks and preemption ---- *)

let preempt t core =
  match (core.current, core.burn_event) with
  | Some task, Some id ->
      Sim.Engine.cancel (engine t) id;
      let elapsed = Int64.sub (now t) core.burn_started in
      add_busy core elapsed;
      task.Task.cpu_ns <- Int64.add task.Task.cpu_ns elapsed;
      let remaining = Int64.sub core.burn_until (now t) in
      let after = Option.get core.burn_after in
      core.burn_event <- None;
      core.burn_after <- None;
      core.current <- None;
      set_state t task Task.Runnable;
      task.Task.runnable_since <- now t;
      task.Task.resume <-
        Some (fun () -> start_burn t task remaining after);
      (* go to the back of this core's own queue (its own level in MLFQ) *)
      t.cls.sc_requeue core.rq task;
      emit_runq_depth t core;
      schedule_core t core
  | Some _, None | None, _ -> ()

(* Reschedule IPI taken on [core_id]: run the same checks a tick would,
   at IPI latency — dispatch queued work on an idle core, kill a flagged
   victim, or preempt for a higher-priority arrival. *)
let ipi_recv t core_id =
  let core = t.cores.(core_id) in
  core.ipi_pending <- false;
  core.stats.ipis_recv <- core.stats.ipis_recv + 1;
  trace_emit_core t ~core:core_id (Ktrace.Ipi_recv core_id);
  steal_cycles t core (cyc t Kcost.ipi_handler);
  match core.current with
  | None -> schedule_core t core
  | Some task when task.Task.killed -> preempt t core
  | Some cur -> (
      match t.cls.sc_best_prio core.rq with
      | Some p when p < t.cls.sc_prio cur -> preempt t core
      | Some _ | None -> ())

let rec tick t core_id =
  let core = t.cores.(core_id) in
  core.ticks <- core.ticks + 1;
  steal_cycles t core (cyc t Kcost.timer_tick_work);
  (* the sampling profiler rides the generic timer: attribute what the
     core was doing when the tick fired (host-side only, zero cycles) *)
  (let hz = t.kperf.Kperf.profile_hz in
   if hz > 0 then begin
     let tick_hz = 1000 / max 1 t.tick_interval_ms in
     let period = max 1 (tick_hz / hz) in
     if core.ticks mod period = 0 then begin
       let pid, where_ =
         match core.current with
         | None -> (0, "idle")
         | Some task -> (
             ( task.Task.pid,
               match task.Task.cur_syscall with
               | Some name -> "sys:" ^ name
               | None -> (
                   match core.in_irq with
                   | Some line -> "irq:" ^ line
                   | None -> "user") ))
       in
       Kperf.sample t.kperf ~core:core_id ~pid ~where_
     end
   end);
  (* MLFQ anti-starvation: periodically boost everything queued here back
     to the top level so demoted batch work cannot starve *)
  (match core.rq with
  | Rq_mlfq levels when core.ticks mod mlfq_boost_ticks = 0 ->
      for l = 1 to mlfq_levels - 1 do
        Queue.iter
          (fun task ->
            task.Task.mlfq_level <- 0;
            Queue.add task levels.(0))
          levels.(l);
        Queue.clear levels.(l)
      done
  | Rq_mlfq _ | Rq_rr _ -> ());
  (match core.current with
  | Some task ->
      task.Task.quantum_left <- task.Task.quantum_left - 1;
      if
        task.Task.quantum_left <= 0
        && (rq_len core.rq > 0
           || (t.active_cores > 1 && try_steal_peek t core))
      then begin
        t.cls.sc_on_expire task;
        preempt t core
      end
  | None -> schedule_core t core);
  Hw.Timer.arm_core_timer t.board.Hw.Board.timer ~core:core_id
    ~delta_ns:(Sim.Engine.ms t.tick_interval_ms)

and try_steal_peek t thief =
  if t.config.Kconfig.load_balance_ms > 0 then false
  else begin
    let found = ref false in
    for i = 0 to t.active_cores - 1 do
      let c = t.cores.(i) in
      if c.core_id <> thief.core_id && rq_len c.rq > 0 then found := true
    done;
    !found
  end

(* ---- periodic load balancing ---- *)

(* Equalize runqueue depth: repeatedly move one task from the deepest to
   the shallowest queue until they are within one of each other. Replaces
   pick-time stealing (see [try_steal]) when enabled. The pass runs as a
   kernel daemon billed to core 0, like the tick's bookkeeping. *)
let balance_pass t =
  steal_cycles t t.cores.(0) (cyc t Kcost.load_balance_pass);
  let moved = ref true in
  while !moved do
    moved := false;
    let busiest = ref t.cores.(0) and idlest = ref t.cores.(0) in
    for i = 1 to t.active_cores - 1 do
      let c = t.cores.(i) in
      if rq_len c.rq > rq_len !busiest.rq then busiest := c;
      if rq_len c.rq < rq_len !idlest.rq then idlest := c
    done;
    if rq_len !busiest.rq > rq_len !idlest.rq + 1 then begin
      match t.cls.sc_steal !busiest.rq with
      | Some task ->
          let dst = !idlest in
          t.cls.sc_enqueue dst.rq task;
          dst.stats.balance_moves <- dst.stats.balance_moves + 1;
          kick_core t dst task;
          moved := true
      | None -> ()
    end
  done

(* ---- interrupts ---- *)

let register_irq t line handler =
  t.irq_drivers <- (line, handler) :: t.irq_drivers;
  Hw.Intc.route t.board.Hw.Board.intc line ~core:0

let on_irq t core_id line =
  let core = t.cores.(core_id) in
  let desc = Hw.Irq.describe line in
  trace_emit_core t ~core:core_id (Ktrace.Irq_enter desc);
  let span = Ktrace.new_span t.trace in
  trace_emit_core t ~core:core_id (Ktrace.Span_begin (span, 0, "irq:" ^ desc));
  steal_cycles t core (cyc t (Kcost.irq_entry + Kcost.irq_exit));
  (* profiler attribution: the timer lines stay unmarked — the tick IS
     the sampler, and it must see the interrupted context, not itself *)
  let mark =
    match line with
    | Hw.Irq.Core_timer _ | Hw.Irq.Sys_timer -> false
    | Hw.Irq.Ipi _ | Hw.Irq.Fiq_button | Hw.Irq.Uart_rx | Hw.Irq.Usb_hc
    | Hw.Irq.Dma_channel _ | Hw.Irq.Gpio_bank | Hw.Irq.Sd_card -> true
  in
  if mark then core.in_irq <- Some desc;
  (match line with
  | Hw.Irq.Core_timer c -> tick t c
  | Hw.Irq.Ipi c -> ipi_recv t c
  | Hw.Irq.Fiq_button -> (
      match t.on_panic with Some f -> f core_id | None -> ())
  | Hw.Irq.Sys_timer | Hw.Irq.Uart_rx | Hw.Irq.Usb_hc | Hw.Irq.Dma_channel _
  | Hw.Irq.Gpio_bank | Hw.Irq.Sd_card -> (
      match
        List.find_opt (fun (l, _) -> Hw.Irq.equal l line) t.irq_drivers
      with
      | Some (_, handler) -> handler ()
      | None ->
          trace_emit_core t ~core:core_id
            (Ktrace.Custom ("spurious irq " ^ desc))));
  if mark then core.in_irq <- None;
  trace_emit_core t ~core:core_id (Ktrace.Span_end span);
  trace_emit_core t ~core:core_id (Ktrace.Irq_exit desc)

(* Install interrupt entry points and start ticking. *)
let start t =
  if not t.started then begin
    t.started <- true;
    for c = 0 to Array.length t.cores - 1 do
      Hw.Intc.set_handler t.board.Hw.Board.intc ~core:c (fun line ->
          on_irq t c line)
    done;
    for c = 0 to t.active_cores - 1 do
      Hw.Timer.arm_core_timer t.board.Hw.Board.timer ~core:c
        ~delta_ns:(Sim.Engine.ms t.tick_interval_ms)
    done;
    if t.active_cores > 1 && t.config.Kconfig.load_balance_ms > 0 then begin
      (* The balance daemon is a fiber: one pass, park for a period,
         repeat — same engine-event cadence as the closure chain it
         replaces. *)
      let period = Sim.Engine.ms t.config.Kconfig.load_balance_ms in
      ignore
        (Sim.Fiber.spawn (engine t) ~after:period (fun () ->
             while true do
               balance_pass t;
               Sim.Fiber.sleep period
             done))
    end
  end

(* ---- inspection ---- *)

let task_by_pid t pid = Hashtbl.find_opt t.tasks pid

let all_tasks t =
  Hashtbl.fold (fun _ task acc -> task :: acc) t.tasks []
  |> List.sort (fun a b -> compare a.Task.pid b.Task.pid)

let reap t task =
  assert (is_zombie task);
  Hashtbl.remove t.tasks task.Task.pid;
  (match Hashtbl.find_opt t.tasks task.Task.parent with
  | Some p ->
      p.Task.children <-
        List.filter (fun pid -> pid <> task.Task.pid) p.Task.children
  | None -> ())

let frames_presented t ~pid =
  Option.value ~default:0 (Hashtbl.find_opt t.frame_counts pid)

(* ---- /proc/delays ---- *)

(* One row per live task, the open segment folded in as of [now], so the
   six buckets sum to (now - spawned) exactly. Folding mutates the task
   record (cheap, idempotent per instant), which also keeps the panic
   flight recorder's view current without a separate snapshot type. *)
type delay_row = {
  dr_pid : int;
  dr_name : string;
  dr_state : string;
  dr_oncpu : int64;
  dr_runnable : int64;
  dr_sleep : int64;
  dr_blk_io : int64;
  dr_blk_lock : int64;
  dr_blk_pipe : int64;
  dr_lifetime : int64;
}

let delay_rows t =
  let now_ns = now t in
  all_tasks t
  |> List.filter (fun task -> not (is_zombie task))
  |> List.map (fun task ->
         if t.config.Kconfig.delayacct then delay_fold task ~now_ns;
         {
           dr_pid = task.Task.pid;
           dr_name = task.Task.name;
           dr_state = Task.state_name task;
           dr_oncpu = task.Task.d_oncpu_ns;
           dr_runnable = task.Task.d_runnable_ns;
           dr_sleep = task.Task.d_sleep_ns;
           dr_blk_io = task.Task.d_blk_io_ns;
           dr_blk_lock = task.Task.d_blk_lock_ns;
           dr_blk_pipe = task.Task.d_blk_pipe_ns;
           dr_lifetime = Int64.sub now_ns task.Task.d_spawned_ns;
         })

let render_delays t =
  if not t.config.Kconfig.delayacct then
    "delayacct\t: disabled (Kconfig.delayacct = false)\n"
  else begin
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "%-5s %-12s %-14s %12s %12s %12s %12s %12s %12s %12s\n"
         "PID" "NAME" "STATE" "ONCPU" "RUNNABLE" "SLEEP" "BLK_IO" "BLK_LOCK"
         "BLK_PIPE" "LIFETIME");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf
             "%-5d %-12s %-14s %12Ld %12Ld %12Ld %12Ld %12Ld %12Ld %12Ld\n"
             r.dr_pid r.dr_name r.dr_state r.dr_oncpu r.dr_runnable r.dr_sleep
             r.dr_blk_io r.dr_blk_lock r.dr_blk_pipe r.dr_lifetime))
      (delay_rows t);
    Buffer.contents buf
  end

let core_busy_ns t core_id = t.cores.(core_id).busy_ns
let core_io_ns t core_id = t.cores.(core_id).io_busy_ns

let utilization t ~core_id ~window_ns =
  if Int64.compare window_ns 0L <= 0 then 0.0
  else Int64.to_float t.cores.(core_id).busy_ns /. Int64.to_float window_ns

let run_until t time = Sim.Engine.run (engine t) ~until:time ()
