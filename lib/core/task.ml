(** Tasks: processes, user threads (CLONE_VM) and kernel threads.

    The continuation machinery lives in {!Sched}; a task here is the kernel
    object — identity, state, address space, file table, tree links, and
    accounting. [resume] is "how to give this task the CPU": a thunk that
    either continues a captured effect continuation or re-arms the remainder
    of a preempted burn. *)

type kind = User | Kernel

type state =
  | Runnable
  | Running of int  (** core id *)
  | Blocked of string  (** wait channel name, for dumps *)
  | Zombie  (** exited, not yet reaped *)

type t = {
  pid : int;
  mutable name : string;
  kind : kind;
  mutable state : state; [@locked_by "ptable"]
      (** the xv6 ptable discipline: block/wake transitions happen inside
          the ptable window (vrace R101 checks this statically); the
          scheduler's own pick/exit transitions are lock-free on the
          simulation thread and individually grandfathered in
          tools/vrace/allow.txt *)
  mutable vm : Vm.t option;  (** kernel tasks have none *)
  mutable resume : (unit -> unit) option; [@locked_by "ptable"]
  mutable parent : int;  (** pid; 0 = orphan/init *)
  mutable children : int list;
  mutable exit_code : int;
  mutable killed : bool;
  mutable cwd : string;
  (* scheduling *)
  mutable nice : int;  (** -20 (greedy) .. 19 (meek); scales the quantum *)
  mutable last_core : int;  (** core the task last ran on; -1 = never ran *)
  mutable mlfq_level : int;  (** current MLFQ level, 0 = highest priority *)
  mutable runnable_since : int64;
      (** when the task last became runnable; -1 = not waiting. Feeds the
          run-delay histogram. *)
  (* delay accounting ({!Kconfig.delayacct}): cumulative ns this task has
     spent in each scheduler state, maintained at every [state]
     transition in sched.ml. The open segment (state entered at
     [d_state_since], not yet left) is folded in at render time so the
     six buckets always sum to lifetime exactly. Host-side only. *)
  mutable d_spawned_ns : int64;  (** when the task was created *)
  mutable d_state_since : int64;  (** when the current state was entered *)
  mutable d_oncpu_ns : int64;
  mutable d_runnable_ns : int64;
  mutable d_sleep_ns : int64;  (** voluntary sleep + misc waits *)
  mutable d_blk_io_ns : int64;  (** blocked on device I/O channels *)
  mutable d_blk_lock_ns : int64;  (** blocked on semaphores *)
  mutable d_blk_pipe_ns : int64;  (** blocked on pipe read/write space *)
  (* accounting *)
  mutable cpu_ns : int64;
  mutable quantum_left : int;  (** scheduler ticks until preemption *)
  mutable syscall_count : int;
  mutable cur_syscall : string option;
      (** syscall being serviced right now; the sampling profiler reads
          it at tick time to attribute the sample *)
  mutable shadow_stack : string list;  (** unwinder's view of the call stack *)
  mutable wm_surface : int option;  (** surface id when drawing via the WM *)
}
(* The per-task file table lives in {!Fd}, keyed by pid, to avoid a
   dependency cycle between the task structure and the VFS. *)

let default_quantum = 10 (* ticks *)

let next_pid = ref 0

let create ~name ~kind ?vm ?(parent = 0) () =
  incr next_pid;
  {
    pid = !next_pid;
    name;
    kind;
    state = Runnable;
    vm;
    resume = None;
    parent;
    children = [];
    exit_code = 0;
    killed = false;
    cwd = "/";
    nice = 0;
    last_core = -1;
    mlfq_level = 0;
    runnable_since = -1L;
    d_spawned_ns = 0L;
    d_state_since = 0L;
    d_oncpu_ns = 0L;
    d_runnable_ns = 0L;
    d_sleep_ns = 0L;
    d_blk_io_ns = 0L;
    d_blk_lock_ns = 0L;
    d_blk_pipe_ns = 0L;
    cpu_ns = 0L;
    quantum_left = default_quantum;
    syscall_count = 0;
    cur_syscall = None;
    shadow_stack = [];
    wm_surface = None;
  }

let is_runnable t = t.state = Runnable

let state_name t =
  match t.state with
  | Runnable -> "runnable"
  | Running c -> Printf.sprintf "running/cpu%d" c
  | Blocked chan -> "blocked:" ^ chan
  | Zombie -> "zombie"

(* Reset the pid counter — used only by test fixtures that need stable pids
   across cases. *)
let reset_pids_for_tests () = next_pid := 0
