(** The window manager (§4.5): a kernel thread that composites app
    surfaces onto the hardware framebuffer.

    Running the WM in the kernel (rather than as a user process, as
    Android does) avoids shared-memory IPC for frame exchange — the
    paper's simplicity tradeoff. Apps render {e indirectly}: they open
    /dev/surface, declare geometry, and write whole frames; the WM tracks
    z-order, dirty windows, the focus window (which alone receives input
    through /dev/event1), alpha for floating overlays like sysmon, and
    ctrl-key combinations for switching and moving windows.

    Dirty tracking is the paper's efficiency point: composition rounds
    that find no dirty window are free, and a round repaints only the rows
    dirty windows cover. [track_dirty:false] disables this for the
    ablation bench. *)

type surface = {
  surf_id : int;
  owner_pid : int;
  width : int;
  height : int;
  pixels : int array;
  mutable sx : int;
  mutable sy : int;
  mutable alpha : int;  (** 255 = opaque *)
  mutable dirty : bool;
  mutable always_on_top : bool;
  events : Kbd.event Queue.t;
  ev_chan : string;
  mutable frames : int;
}

type t = {
  board : Hw.Board.t;
  sched : Sched.t;
  fb : Hw.Framebuffer.t;
  surfaces : (int, surface) Hashtbl.t;
  mutable zorder : int list;  (** bottom first; top = focus candidates last *)
  mutable focus : int option;
  mutable next_id : int;
  track_dirty : bool;
  mutable composites : int;
  mutable skipped_rounds : int;
  mutable pixels_composited : int;
  mutable running : bool;
  compose_row : int array;  (** scratch row buffer *)
}

let create board sched fb ~track_dirty =
  {
    board;
    sched;
    fb;
    surfaces = Hashtbl.create 16;
    zorder = [];
    focus = None;
    next_id = 1;
    track_dirty;
    composites = 0;
    skipped_rounds = 0;
    pixels_composited = 0;
    running = false;
    compose_row = Array.make (Hw.Framebuffer.width fb) 0;
  }

let surface t id = Hashtbl.find_opt t.surfaces id

let focused t =
  match t.focus with None -> None | Some id -> surface t id

(* z-order with always-on-top surfaces forced above the rest *)
let stacking t =
  let layers = List.filter_map (surface t) t.zorder in
  let normal, floating = List.partition (fun s -> not s.always_on_top) layers in
  normal @ floating

let create_surface t ~owner_pid ~width ~height ~x ~y ~alpha =
  let id = t.next_id in
  t.next_id <- id + 1;
  let s =
    {
      surf_id = id;
      owner_pid;
      width;
      height;
      pixels = Array.make (width * height) 0;
      sx = x;
      sy = y;
      alpha;
      dirty = true;
      always_on_top = alpha < 255;
      events = Queue.create ();
      ev_chan = Printf.sprintf "wm:ev:%d" id;
      frames = 0;
    }
  in
  Hashtbl.replace t.surfaces id s;
  t.zorder <- t.zorder @ [ id ];
  t.focus <- Some id;
  s

let remove_surface t id =
  match surface t id with
  | None -> ()
  | Some s ->
      Hashtbl.remove t.surfaces id;
      t.zorder <- List.filter (fun z -> z <> id) t.zorder;
      (if t.focus = Some id then
         t.focus <-
           (match List.rev t.zorder with top :: _ -> Some top | [] -> None));
      (* expose what was underneath *)
      Hashtbl.iter (fun _ other -> other.dirty <- true) t.surfaces;
      ignore s

let rotate_focus t =
  match t.zorder with
  | [] -> ()
  | ids ->
      let n = List.length ids in
      let cur =
        match t.focus with
        | Some f ->
            let rec index i = function
              | [] -> 0
              | x :: rest -> if x = f then i else index (i + 1) rest
            in
            index 0 ids
        | None -> 0
      in
      t.focus <- Some (List.nth ids ((cur + 1) mod n))

let move_focused t ~dx ~dy =
  match focused t with
  | None -> ()
  | Some s ->
      s.sx <- s.sx + dx;
      s.sy <- s.sy + dy;
      s.dirty <- true;
      (* movement exposes the background of every window below *)
      Hashtbl.iter (fun _ other -> other.dirty <- true) t.surfaces

(* The keyboard sink: special combos are the WM's; everything else goes to
   the focus window. ctrl is modifier bit 0x01. *)
let rec key_sink t ev =
  let ctrl = ev.Kbd.ev_modifiers land 0x01 <> 0 in
  if ctrl && ev.Kbd.ev_pressed then begin
    match ev.Kbd.ev_code with
    | 0x2b (* tab *) ->
        rotate_focus t;
        true
    | 0x50 -> move_focused t ~dx:(-16) ~dy:0; true
    | 0x4f -> move_focused t ~dx:16 ~dy:0; true
    | 0x52 -> move_focused t ~dx:0 ~dy:(-16); true
    | 0x51 -> move_focused t ~dx:0 ~dy:16; true
    | _ -> deliver t ev
  end
  else deliver t ev

and deliver t ev =
  match focused t with
  | None -> false
  | Some s ->
      if Queue.length s.events >= 64 then ignore (Queue.pop s.events);
      Queue.add ev s.events;
      Sched.wake_all t.sched s.ev_chan;
      Sched.poll_wake t.sched;
      true

(* ---- composition ---- *)

let blend dst src alpha =
  if alpha >= 255 then src
  else begin
    let inv = 255 - alpha in
    let r = (((src lsr 16) land 0xff) * alpha + ((dst lsr 16) land 0xff) * inv) / 255 in
    let g = (((src lsr 8) land 0xff) * alpha + ((dst lsr 8) land 0xff) * inv) / 255 in
    let b = ((src land 0xff) * alpha + (dst land 0xff) * inv) / 255 in
    (r lsl 16) lor (g lsl 8) lor b
  end

(* Repaint rows [y0, y1) of the screen from the stacking order. Returns
   the pixel count composited (for cost accounting). *)
let repaint_rows t ~y0 ~y1 =
  let width = Hw.Framebuffer.width t.fb in
  let layers = stacking t in
  let count = ref 0 in
  for y = y0 to y1 - 1 do
    Array.fill t.compose_row 0 width 0x102030 (* desktop background *);
    List.iter
      (fun s ->
        let row = y - s.sy in
        if row >= 0 && row < s.height then begin
          for col = 0 to s.width - 1 do
            let x = s.sx + col in
            if x >= 0 && x < width then begin
              t.compose_row.(x) <-
                blend t.compose_row.(x) s.pixels.((row * s.width) + col) s.alpha;
              incr count
            end
          done
        end)
      layers;
    Hw.Framebuffer.write_row t.fb ~y t.compose_row
  done;
  Hw.Framebuffer.flush t.fb;
  !count

(* One composition round: find the dirty row span and repaint it. *)
let composite t =
  let dirty = Hashtbl.fold (fun _ s acc -> if s.dirty then s :: acc else acc) t.surfaces [] in
  let height = Hw.Framebuffer.height t.fb in
  let rows =
    if t.track_dirty then
      match dirty with
      | [] -> None
      | _ ->
          let y0 =
            List.fold_left (fun acc s -> min acc (max 0 s.sy)) height dirty
          in
          let y1 =
            List.fold_left
              (fun acc s -> max acc (min height (s.sy + s.height)))
              0 dirty
          in
          if y1 > y0 then Some (y0, y1) else None
    else if Hashtbl.length t.surfaces > 0 then Some (0, height)
    else None
  in
  match rows with
  | None ->
      t.skipped_rounds <- t.skipped_rounds + 1;
      0
  | Some (y0, y1) ->
      Hashtbl.iter (fun _ s -> s.dirty <- false) t.surfaces;
      let pixels = repaint_rows t ~y0 ~y1 in
      t.composites <- t.composites + 1;
      t.pixels_composited <- t.pixels_composited + pixels;
      Sched.trace_emit t.sched Ktrace.Wm_composite;
      pixels

(* The WM kernel thread: a ~60 Hz composition loop. Work is charged via
   Burn like any other task, so compositing load shows up in core
   utilization and app FPS. *)
let thread_body t () =
  t.running <- true;
  let rec loop () =
    (match Effect.perform (Abi.Sys (Abi.Sleep 16)) with
    | Abi.R_int _ -> ()
    | Abi.R_bytes _ | Abi.R_pair _ | Abi.R_stat _ | Abi.R_mmap _ -> ());
    let pixels = composite t in
    if pixels > 0 then begin
      let nwindows = Hashtbl.length t.surfaces in
      let alpha_pixels =
        (* floating windows pay the blend cost *)
        Hashtbl.fold
          (fun _ s acc -> if s.alpha < 255 then acc + (s.width * s.height) else acc)
          t.surfaces 0
      in
      Effect.perform
        (Abi.Burn
           ((pixels * Kcost.wm_per_pixel_opaque)
           + (alpha_pixels * (Kcost.wm_per_pixel_alpha - Kcost.wm_per_pixel_opaque))
           + (nwindows * Kcost.wm_per_window)))
    end;
    loop ()
  in
  loop ()

let start t =
  ignore (Sched.spawn t.sched ~name:"wm" ~kind:Task.Kernel (thread_body t))

let composites t = t.composites
let skipped_rounds t = t.skipped_rounds
let pixels_composited t = t.pixels_composited
let surface_count t = Hashtbl.length t.surfaces
