(** The panic button (§5.1).

    A GPIO line is reserved as FIQ — unmaskable, delivered round-robin —
    so that even a deadlocked kernel with IRQs off can be made to dump
    every core's state: the task each core runs, its call stack from the
    unwinder, run-queue depths, pending interrupts, and the tail of the
    trace ring. *)

type t = { sched : Sched.t; console : Console.t; mutable dumps : int }

let render t ~fiq_core =
  let sched = t.sched in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "\n=== PANIC BUTTON (FIQ on core %d, t=%.3f ms) ===\n"
       fiq_core
       (Sim.Engine.to_ms (Hw.Board.now sched.Sched.board)));
  Array.iteri
    (fun i core ->
      let who =
        match core.Sched.current with
        | Some task ->
            Printf.sprintf "pid %d (%s)" task.Task.pid task.Task.name
        | None -> "idle (WFI)"
      in
      Buffer.add_string buf
        (Printf.sprintf "core %d: %s, runq=%d, busy=%.2f ms\n" i who
           (Sched.runq_len core)
           (Int64.to_float core.Sched.busy_ns /. 1e6)))
    sched.Sched.cores;
  Buffer.add_string buf (Unwind.dump_all sched);
  let recent = Ktrace.dump sched.Sched.trace in
  let tail =
    let n = List.length recent in
    List.filteri (fun i _ -> i >= n - 10) recent
  in
  Buffer.add_string buf "trace tail:\n";
  List.iter
    (fun e -> Buffer.add_string buf ("  " ^ Ktrace.format_entry e ^ "\n"))
    tail;
  Buffer.add_string buf "=== END PANIC DUMP ===\n";
  Buffer.contents buf

(* Flight recorder: the always-on black box, fired from {!Kpanic.panicf}
   via the hook the kernel installs at boot. Where the panic button above
   needs an operator pressing the GPIO line, this runs on the way down —
   after the panic message is formatted but before the exception
   propagates — so the UART carries the last [events] trace entries, any
   attached vprobe aggregates, and the per-task delay table alongside
   the panic itself. Pure host-side rendering: no charges, no engine
   events, safe to run with the kernel in an arbitrary broken state. *)
let flight_record sched console ~events msg =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "\n=== FLIGHT RECORDER (t=%.3f ms) ===\npanic: %s\n"
       (Sim.Engine.to_ms (Hw.Board.now sched.Sched.board))
       msg);
  let recent = Ktrace.dump sched.Sched.trace in
  let n = List.length recent in
  let tail = List.filteri (fun i _ -> i >= n - events) recent in
  Buffer.add_string buf
    (Printf.sprintf "trace tail (last %d of %d):\n" (List.length tail) n);
  List.iter
    (fun e -> Buffer.add_string buf ("  " ^ Ktrace.format_entry e ^ "\n"))
    tail;
  Buffer.add_string buf "vprobe aggregates:\n";
  Buffer.add_string buf (Vprobe.render sched.Sched.vprobe);
  Buffer.add_string buf "delay accounting:\n";
  Buffer.add_string buf (Sched.render_delays sched);
  Buffer.add_string buf "=== END FLIGHT RECORD ===\n";
  Console.printk console (Buffer.contents buf)

let install sched console =
  let t = { sched; console; dumps = 0 } in
  sched.Sched.on_panic <-
    Some
      (fun fiq_core ->
        t.dumps <- t.dumps + 1;
        Console.printk console (render t ~fiq_core));
  t

let dumps t = t.dumps
