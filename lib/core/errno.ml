(** Error numbers returned (negated) by syscalls, xv6-style subset. *)

let eperm = 1
let enoent = 2
let esrch = 3
let ebadf = 9
let echild = 10
let eagain = 11
let enomem = 12
let efault = 14
let eexist = 17
let enotdir = 20
let eisdir = 21
let einval = 22
let emfile = 24
let efbig = 27
let enospc = 28
let espipe = 29
let erofs = 30
let epipe = 32
let enosys = 38
let enotempty = 39

let name = function
  | 1 -> "EPERM"
  | 2 -> "ENOENT"
  | 3 -> "ESRCH"
  | 9 -> "EBADF"
  | 10 -> "ECHILD"
  | 11 -> "EAGAIN"
  | 12 -> "ENOMEM"
  | 14 -> "EFAULT"
  | 17 -> "EEXIST"
  | 20 -> "ENOTDIR"
  | 21 -> "EISDIR"
  | 22 -> "EINVAL"
  | 24 -> "EMFILE"
  | 27 -> "EFBIG"
  | 28 -> "ENOSPC"
  | 29 -> "ESPIPE"
  | 30 -> "EROFS"
  | 32 -> "EPIPE"
  | 38 -> "ENOSYS"
  | 39 -> "ENOTEMPTY"
  | n -> Printf.sprintf "E%d" n

(* Map filesystem error strings to errnos; the fs layer reports strings,
   the syscall layer owns the ABI. *)
let of_fs_error msg =
  let has sub =
    let n = String.length sub and m = String.length msg in
    let rec at i = i + n <= m && (String.equal (String.sub msg i n) sub || at (i + 1)) in
    at 0
  in
  if has "not found" || has "no such" then enoent
  else if has "exists" then eexist
  else if has "not a directory" then enotdir
  else if has "is a directory" then eisdir
  else if has "too large" then efbig
  else if has "out of" then enospc
  else if has "not empty" then enotempty
  else einval
