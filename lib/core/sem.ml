(** Kernel semaphores (Prototype 5, §4.5).

    The primitive behind the threading syscalls: user-level mutexes and
    condition variables are built on these in the user library, exactly as
    the paper describes.

    Reference counts track every pid holding the semaphore open: fork
    duplicates the parent's holds (so a child's sem_close no longer frees
    the parent's semaphore out from under it), task exit drops whatever
    the task still held. CLONE_VM threads share the process's holds the
    way they share the fd table. *)

type sem = {
  sem_id : int;
  mutable value : int;
  mutable refs : int;
  chan : string;
}

(** What a process holds open, shared by its CLONE_VM threads the way the
    fd table is (a thread's sem_close closes for all; the last sharer's
    exit releases the holds). *)
type holds = { mutable ids : int list; mutable sharers : int }

type t = {
  sched : Sched.t;
  sems : (int, sem) Hashtbl.t;
  held : (int, holds) Hashtbl.t;  (** pid -> held sem ids, multiplicity *)
  mutable next_id : int;
}

let create sched =
  { sched; sems = Hashtbl.create 16; held = Hashtbl.create 16; next_id = 1 }

let holds_of t pid =
  match Hashtbl.find_opt t.held pid with
  | Some h -> h
  | None ->
      let h = { ids = []; sharers = 1 } in
      Hashtbl.replace t.held pid h;
      h

(* Remove one instance of [id] from [pid]'s holds. *)
let drop_hold t ~pid id =
  match Hashtbl.find_opt t.held pid with
  | None -> ()
  | Some h ->
      let rec remove_first = function
        | [] -> []
        | x :: rest when x = id -> rest
        | x :: rest -> x :: remove_first rest
      in
      h.ids <- remove_first h.ids

let sem_open t ~pid ~value =
  if value < 0 then Error Errno.einval
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.sems id
      { sem_id = id; value; refs = 1; chan = Printf.sprintf "sem:%d" id };
    let h = holds_of t pid in
    h.ids <- id :: h.ids;
    Ok id
  end

let find t id = Hashtbl.find_opt t.sems id

let post ctx t id =
  Sched.charge ctx Kcost.sem_op;
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      sem.value <- sem.value + 1;
      Sched.charge ctx Kcost.wakeup;
      ignore (Sched.wake_one t.sched sem.chan);
      Sched.finish ctx (Abi.R_int 0)

let wait ctx t id =
  Sched.charge ctx Kcost.sem_op;
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      let rec attempt () =
        if sem.value > 0 then begin
          sem.value <- sem.value - 1;
          Sched.finish ctx (Abi.R_int 0)
        end
        else Sched.block ctx ~chan:sem.chan ~retry:attempt
      in
      attempt ()

let release t sem =
  sem.refs <- sem.refs - 1;
  if sem.refs <= 0 then Hashtbl.remove t.sems sem.sem_id

let close ctx t id =
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      drop_hold t ~pid:ctx.Sched.task.Task.pid id;
      release t sem;
      Sched.finish ctx (Abi.R_int 0)

(* fork: the child gets its own copy of the parent's holds, each hold a
   new reference — the lifetime fix: before this, a fork'd child's
   sem_close dropped the parent's only reference. *)
let fork t ~parent ~child =
  match Hashtbl.find_opt t.held parent with
  | None -> ()
  | Some h ->
      let live =
        List.filter_map
          (fun id ->
            match find t id with
            | Some sem ->
                sem.refs <- sem.refs + 1;
                Some id
            | None -> None)
          h.ids
      in
      Hashtbl.replace t.held child { ids = live; sharers = 1 }

(* clone(CLONE_VM): threads share the process's holds. *)
let share t ~parent ~child =
  let h = holds_of t parent in
  h.sharers <- h.sharers + 1;
  Hashtbl.replace t.held child h

(* Task exit: the last sharer releases everything still held. *)
let task_exit t ~pid =
  match Hashtbl.find_opt t.held pid with
  | None -> ()
  | Some h ->
      h.sharers <- h.sharers - 1;
      if h.sharers <= 0 then begin
        List.iter
          (fun id -> match find t id with Some sem -> release t sem | None -> ())
          h.ids;
        h.ids <- []
      end;
      Hashtbl.remove t.held pid

let live_count t = Hashtbl.length t.sems
