(** Kernel semaphores (Prototype 5, §4.5).

    The primitive behind the threading syscalls: user-level mutexes and
    condition variables are built on these in the user library, exactly as
    the paper describes.

    Reference counts track every pid holding the semaphore open: fork
    duplicates the parent's holds (so a child's sem_close no longer frees
    the parent's semaphore out from under it), task exit drops whatever
    the task still held. CLONE_VM threads share the process's holds the
    way they share the fd table. *)

type sem = {
  sem_id : int;
  mutable value : int; [@locked_by "semlock"]
  mutable refs : int; [@locked_by "semlock"]
  chan : string;
}

(** What a process holds open, shared by its CLONE_VM threads the way the
    fd table is (a thread's sem_close closes for all; the last sharer's
    exit releases the holds). *)
type holds = {
  mutable ids : int list; [@locked_by "semlock"]
  mutable sharers : int; [@locked_by "semlock"]
}

(* [semlock] is a discipline-only leaf lock (no [~kcheck], no trace
   events) over values, refcounts and hold lists; windows never enclose
   the wake paths, which resume blocked waiters synchronously. *)
type t = {
  sched : Sched.t;
  sems : (int, sem) Hashtbl.t;
  held : (int, holds) Hashtbl.t;  (** pid -> held sem ids, multiplicity *)
  mutable next_id : int;
  semlock : Spinlock.t;
}

let create sched =
  {
    sched;
    sems = Hashtbl.create 16;
    held = Hashtbl.create 16;
    next_id = 1;
    semlock = Spinlock.create "semlock";
  }

let holds_of t pid =
  match Hashtbl.find_opt t.held pid with
  | Some h -> h
  | None ->
      let h = { ids = []; sharers = 1 } in
      Hashtbl.replace t.held pid h;
      h

(* Remove one instance of [id] from [pid]'s holds. *)
let drop_hold t ~pid id =
  match Hashtbl.find_opt t.held pid with
  | None -> ()
  | Some h ->
      let rec remove_first = function
        | [] -> []
        | x :: rest when x = id -> rest
        | x :: rest -> x :: remove_first rest
      in
      Spinlock.protect t.semlock (fun () -> h.ids <- remove_first h.ids)

let sem_open t ~pid ~value =
  if value < 0 then Error Errno.einval
  else begin
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.sems id
      { sem_id = id; value; refs = 1; chan = Printf.sprintf "sem:%d" id };
    let h = holds_of t pid in
    Spinlock.protect t.semlock (fun () -> h.ids <- id :: h.ids);
    Ok id
  end

let find t id = Hashtbl.find_opt t.sems id

let post ctx t id =
  Sched.charge ctx Kcost.sem_op;
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      Spinlock.protect t.semlock (fun () -> sem.value <- sem.value + 1);
      Sched.charge ctx Kcost.wakeup;
      let woken = Sched.wake_one t.sched sem.chan in
      Sched.trace_emit_task t.sched ctx.Sched.task
        (Ktrace.Sem_wake (Option.value ~default:(-1) woken, id));
      Sched.finish ctx (Abi.R_int 0)

let wait ctx t id =
  Sched.charge ctx Kcost.sem_op;
  (* re-resolve the id on every wakeup, not just at entry: the semaphore
     can be closed while we sleep, and holding on to the stale [sem]
     would park us forever on a channel nothing will post to again *)
  let rec attempt () =
    match find t id with
    | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
    | Some sem ->
        if sem.value > 0 then begin
          Spinlock.protect t.semlock (fun () -> sem.value <- sem.value - 1);
          Sched.finish ctx (Abi.R_int 0)
        end
        else begin
          Sched.trace_emit_task t.sched ctx.Sched.task
            (Ktrace.Sem_block (ctx.Sched.task.Task.pid, id));
          Sched.block ctx ~chan:sem.chan ~retry:attempt
        end
  in
  attempt ()

let release t sem =
  let remaining =
    Spinlock.protect t.semlock (fun () ->
        sem.refs <- sem.refs - 1;
        sem.refs)
  in
  if remaining <= 0 then begin
    Hashtbl.remove t.sems sem.sem_id;
    (* the id is dead: waiters must rescan and fail with EINVAL instead
       of sleeping on the orphaned channel *)
    Sched.wake_all t.sched sem.chan
  end

let close ctx t id =
  match find t id with
  | None -> Sched.finish ctx (Abi.R_int (-Errno.einval))
  | Some sem ->
      drop_hold t ~pid:ctx.Sched.task.Task.pid id;
      release t sem;
      Sched.finish ctx (Abi.R_int 0)

(* fork: the child gets its own copy of the parent's holds, each hold a
   new reference — the lifetime fix: before this, a fork'd child's
   sem_close dropped the parent's only reference. *)
let fork t ~parent ~child =
  match Hashtbl.find_opt t.held parent with
  | None -> ()
  | Some h ->
      let live =
        Spinlock.protect t.semlock (fun () ->
            List.filter_map
              (fun id ->
                match find t id with
                | Some sem ->
                    sem.refs <- sem.refs + 1;
                    Some id
                | None -> None)
              h.ids)
      in
      Hashtbl.replace t.held child { ids = live; sharers = 1 }

(* clone(CLONE_VM): threads share the process's holds. *)
let share t ~parent ~child =
  let h = holds_of t parent in
  Spinlock.protect t.semlock (fun () -> h.sharers <- h.sharers + 1);
  Hashtbl.replace t.held child h

(* Task exit: the last sharer releases everything still held. The holds
   are detached inside the window; the releases (which can wake waiters)
   run after it. *)
let task_exit t ~pid =
  match Hashtbl.find_opt t.held pid with
  | None -> ()
  | Some h ->
      let to_release =
        Spinlock.protect t.semlock (fun () ->
            h.sharers <- h.sharers - 1;
            if h.sharers > 0 then []
            else begin
              let ids = h.ids in
              h.ids <- [];
              ids
            end)
      in
      List.iter
        (fun id ->
          match find t id with Some sem -> release t sem | None -> ())
        to_release;
      Hashtbl.remove t.held pid

let live_count t = Hashtbl.length t.sems

(* ---- kcheck support ---- *)

(* The pids with [id] open: the candidate wakers of its channel for the
   blocked-task deadlock walk (only an opener plausibly posts it). *)
let holders t id =
  Hashtbl.fold
    (fun pid h acc -> if List.mem id h.ids then pid :: acc else acc)
    t.held []

(* Re-derive every semaphore's refcount from the holds table. CLONE_VM
   threads share one holds struct, so each distinct struct contributes
   its hold multiplicity once — which is exactly the sharing the PR-3
   lifetime fixes established. *)
let audit t =
  let structs =
    Hashtbl.fold
      (fun _ h acc -> if List.memq h acc then acc else h :: acc)
      t.held []
  in
  Hashtbl.fold
    (fun id sem problems ->
      let derived =
        List.fold_left
          (fun n h ->
            n + List.length (List.filter (fun i -> i = id) h.ids))
          0 structs
      in
      if derived <> sem.refs then
        Printf.sprintf "sem %d: refs=%d but %d held across tasks" id sem.refs
          derived
        :: problems
      else problems)
    t.sems []
