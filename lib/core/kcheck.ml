(** kcheck: the runtime concurrency/resource sanitizer (Kconfig-gated,
    default on under the test harness).

    PRs 1–3 each flushed out a latent lifetime bug by hand — pipe-end
    double counting on fork, semaphore leaks across clone/exit, writers
    sleeping forever on readerless pipes. kcheck turns that bug class
    into machine-checked invariants, riding the structures the kernel
    already has:

    - {b lockdep}: a lock-order graph over {!Spinlock} / irq-guard
      acquisitions. Edge A→B means B was acquired while A was held;
      a path B⇝A at acquisition time is an inversion (ABBA) and panics
      with the cycle before the deadlock can ever happen on real
      hardware.
    - {b wait-for graph}: when a task blocks, walk who could wake its
      channel (exit/children/sem/pipe channels — the map is injected by
      the kernel as {!env}). If the walk closes a cycle whose members
      are all [Blocked], that is a deadlock; panic with the cycle.
    - {b sleep-in-atomic}: blocking while the core holds a spinlock or
      sits under an irq guard.
    - {b refcount audit}: auditors registered by the kernel (fd tables,
      pipe ends, semaphore refs) re-derive every refcount from the
      ground truth at each fork/clone/exit boundary and panic on drift.

    kcheck charges {e zero} virtual cycles — it is host-side
    instrumentation, so every paper number is bit-identical with the
    knob on; the <2% bench criterion is met trivially at 0%. Violations
    are recorded (for /proc/kcheck), emitted as a Ktrace event, and then
    raised as {!Kpanic.Panic}.

    Dependency note: this module sits low in [lib/core] (only Ktrace and
    Kpanic below it). Everything kernel-specific — channel-name parsing,
    semaphore holders, fd-table walks — reaches it as closures installed
    by [kernel.ml] at boot. *)

type violation = { rule : string; detail : string }

(** Kernel-side knowledge, injected at boot. [blocked_chan pid] is the
    channel a task is blocked on, [None] when it can still run. [wakers
    chan] lists the tasks that could plausibly wake [chan]; an empty
    list means "woken externally" (timers, IRQs, the debugger) and ends
    the deadlock walk. *)
type env = {
  blocked_chan : int -> string option;
  wakers : string -> int list;
}

(** A lock registered for /proc/locks; closures so kcheck never depends
    on {!Spinlock} (which depends on kcheck). *)
type lock_probe = {
  lp_name : string;
  lp_acquisitions : unit -> int;
  lp_total_held_ns : unit -> int64;
  lp_max_held_ns : unit -> int64;
}

type t = {
  mutable emit : Ktrace.event -> unit;
  mutable env : env option;
  (* lockdep: lock-order edges (name -> names acquired while held) and
     the per-core stack of held lock names *)
  edges : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  held : (int, string list) Hashtbl.t;
  irq_depth : (int, int) Hashtbl.t;
  mutable lock_probes : lock_probe list;
  mutable auditors : (string * (unit -> string list)) list;
  mutable violations : violation list;
  (* counters for /proc/kcheck *)
  mutable lock_events : int;
  mutable block_events : int;
  mutable scans : int;
  mutable audits : int;
}

let create () =
  {
    emit = (fun _ -> ());
    env = None;
    edges = Hashtbl.create 16;
    held = Hashtbl.create 4;
    irq_depth = Hashtbl.create 4;
    lock_probes = [];
    auditors = [];
    violations = [];
    lock_events = 0;
    block_events = 0;
    scans = 0;
    audits = 0;
  }

let set_emit t f = t.emit <- f
let set_env t env = t.env <- Some env
let register_lock_probe t p = t.lock_probes <- t.lock_probes @ [ p ]
let register_auditor t ~name f = t.auditors <- t.auditors @ [ (name, f) ]

let violation t ~rule fmt =
  Printf.ksprintf
    (fun detail ->
      t.violations <- { rule; detail } :: t.violations;
      t.emit (Ktrace.Custom (Printf.sprintf "kcheck:%s %s" rule detail));
      Kpanic.panicf "kcheck: %s: %s" rule detail)
    fmt

(* ---- lockdep ---- *)

let held_on t ~core = Option.value ~default:[] (Hashtbl.find_opt t.held core)

let succs t name =
  match Hashtbl.find_opt t.edges name with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun k () acc -> k :: acc) tbl []

(* Path from [src] to [dst] in the order graph, if one exists. *)
let lock_path t ~src ~dst =
  let visited = Hashtbl.create 8 in
  let rec dfs path name =
    if name = dst then Some (List.rev (name :: path))
    else if Hashtbl.mem visited name then None
    else begin
      Hashtbl.replace visited name ();
      List.fold_left
        (fun acc next ->
          match acc with Some _ -> acc | None -> dfs (name :: path) next)
        None (succs t name)
    end
  in
  dfs [] src

let add_edge t ~from ~to_ =
  let tbl =
    match Hashtbl.find_opt t.edges from with
    | Some tbl -> tbl
    | None ->
        let tbl = Hashtbl.create 4 in
        Hashtbl.replace t.edges from tbl;
        tbl
  in
  Hashtbl.replace tbl to_ ()

let lock_acquire t ~name ~core =
  t.lock_events <- t.lock_events + 1;
  t.emit (Ktrace.Lock_acquire (name, core));
  let held = held_on t ~core in
  List.iter
    (fun outer ->
      (* about to add outer -> name; an existing name ~> outer path means
         the two orders coexist: ABBA *)
      match lock_path t ~src:name ~dst:outer with
      | Some path ->
          violation t ~rule:"lock-order"
            "acquiring %s while holding %s inverts the established order %s"
            name outer
            (String.concat " -> " (path @ [ name ]))
      | None -> add_edge t ~from:outer ~to_:name)
    held;
  Hashtbl.replace t.held core (name :: held)

let lock_release t ~name ~core =
  t.emit (Ktrace.Lock_release (name, core));
  let rec remove_first = function
    | [] -> []
    | x :: rest when x = name -> rest
    | x :: rest -> x :: remove_first rest
  in
  Hashtbl.replace t.held core (remove_first (held_on t ~core))

let irq_push t ~core =
  Hashtbl.replace t.irq_depth core
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.irq_depth core))

let irq_pop t ~core =
  Hashtbl.replace t.irq_depth core
    (max 0 (Option.value ~default:0 (Hashtbl.find_opt t.irq_depth core) - 1))

(* ---- wait-for graph ---- *)

(* DFS over blocked tasks from the task that just blocked. A node's
   successors are the tasks that could wake its channel (minus itself —
   it cannot wake anyone while blocked). Unknown wakers ([]) or any
   runnable waker end the branch: the channel can still be woken. A
   successor already on the path closes a cycle of blocked tasks. *)
let deadlock_scan t env ~pid ~chan =
  t.scans <- t.scans + 1;
  let rec dfs path p c =
    let on_path = (p, c) :: path in
    let ss = List.filter (fun s -> s <> p) (env.wakers c) in
    if ss = [] then None
    else if List.exists (fun s -> env.blocked_chan s = None) ss then None
    else
      let rec try_succs = function
        | [] -> None
        | s :: rest -> (
            if List.mem_assoc s on_path then
              (* drop path entries below the cycle entry point *)
              let rec upto = function
                | [] -> []
                | (q, qc) :: rest ->
                    if q = s then [ (q, qc) ] else (q, qc) :: upto rest
              in
              Some (List.rev (upto on_path))
            else
              match env.blocked_chan s with
              | None -> try_succs rest
              | Some sc -> (
                  match dfs on_path s sc with
                  | Some _ as r -> r
                  | None -> try_succs rest))
      in
      try_succs ss
  in
  match dfs [] pid chan with
  | None -> ()
  | Some cycle ->
      violation t ~rule:"wait-cycle" "deadlock: %s"
        (String.concat " -> "
           (List.map
              (fun (p, c) -> Printf.sprintf "task %d (on %s)" p c)
              cycle))

(* Called by the scheduler after a task's state became [Blocked chan]. *)
let task_blocked t ~pid ~chan ~core =
  t.block_events <- t.block_events + 1;
  (match held_on t ~core with
  | [] -> ()
  | names ->
      violation t ~rule:"sleep-in-atomic"
        "task %d blocks on %s while core %d holds %s" pid chan core
        (String.concat ", " names));
  if Option.value ~default:0 (Hashtbl.find_opt t.irq_depth core) > 0 then
    violation t ~rule:"sleep-in-atomic"
      "task %d blocks on %s under an irq guard on core %d" pid chan core;
  match t.env with
  | None -> ()
  | Some env -> deadlock_scan t env ~pid ~chan

(* ---- refcount audits ---- *)

(* Run every registered auditor; each returns the list of inconsistencies
   it re-derived from ground truth. Called at fork/clone/exit. *)
let audit t ~reason =
  t.audits <- t.audits + 1;
  List.iter
    (fun (name, f) ->
      match f () with
      | [] -> ()
      | problems ->
          violation t ~rule:"refcount" "%s at %s: %s" name reason
            (String.concat "; " problems))
    t.auditors

(* ---- /proc rendering ---- *)

let render_locks t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-16s %12s %14s %12s\n" "name" "acquisitions"
       "total_held_ns" "max_held_ns");
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%-16s %12d %14Ld %12Ld\n" p.lp_name
           (p.lp_acquisitions ())
           (p.lp_total_held_ns ())
           (p.lp_max_held_ns ())))
    t.lock_probes;
  Buffer.contents buf

let render_report t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "lock_events\t: %d\nblock_events\t: %d\ndeadlock_scans\t: \
        %d\naudits\t\t: %d\norder_edges\t: %d\nauditors\t: %s\nviolations\t: \
        %d\n"
       t.lock_events t.block_events t.scans t.audits
       (Hashtbl.fold (fun _ tbl n -> n + Hashtbl.length tbl) t.edges 0)
       (String.concat ", " (List.map fst t.auditors))
       (List.length t.violations));
  List.iter
    (fun v ->
      Buffer.add_string buf (Printf.sprintf "violation\t: [%s] %s\n" v.rule v.detail))
    (List.rev t.violations);
  Buffer.contents buf
