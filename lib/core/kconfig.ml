(** Kernel feature configuration.

    Each prototype stage of VOS is this same kernel with a subset of
    features switched on (Table 1). The stager in [lib/proto] constructs
    these; [full] is Prototype 5. Feature checks at syscall entry return
    ENOSYS for capabilities the stage lacks, which is also how the
    feature-matrix validation of Table 1 is enforced mechanically. *)

(** Which scheduling class the per-core runqueues run. [Sched_rr] is the
    paper's round-robin (one quantum for everyone); [Sched_mlfq] is the
    multi-level feedback queue with per-task nice values, quantum scaling
    and a sleeper boost. *)
type sched_policy = Sched_rr | Sched_mlfq

(** How an idle core learns that a wakeup was queued for it.
    [Wake_direct] is the seed's idealization: the remote runqueue insert
    schedules the idle core instantly, for free — it keeps all paper
    numbers bit-identical. [Wake_tick] models WFI honestly: an idle core
    notices new work only at its next local timer tick. [Wake_ipi] adds
    the reschedule IPI: the waking core writes the target's mailbox and
    the target responds in IPI latency rather than tick latency. *)
type wake_model = Wake_direct | Wake_tick | Wake_ipi

type t = {
  stage : int;  (** prototype number, 1–5 *)
  multitasking : bool;  (** P2+: scheduler with multiple tasks *)
  user_separation : bool;  (** P3+: EL0/EL1 split, virtual memory *)
  syscalls_tasks : bool;  (** P3+: fork/exit/sbrk/sleep/write *)
  syscalls_files : bool;  (** P4+: the file table *)
  syscalls_threads : bool;  (** P5: clone + semaphores *)
  kmalloc : bool;  (** P4+: sub-page allocator (P2–3 are page-based) *)
  filesystem : bool;  (** P4+: xv6fs on ramdisk *)
  fat32 : bool;  (** P5: SD card FAT32 under /d *)
  devfs : bool;  (** P4+ *)
  procfs : bool;  (** P4+ *)
  usb_keyboard : bool;  (** P4+ *)
  sound : bool;  (** P4+: PWM + DMA audio *)
  multicore : bool;  (** P5: all four cores *)
  window_manager : bool;  (** P5 *)
  nonblocking_io : bool;  (** P5: O_NONBLOCK on device files *)
  range_io_bypass : bool;  (** P5 + §5.2: FAT32 range reads skip the cache *)
  simd_pixel_ops : bool;  (** §5.2: NEON YUV conversion in the user lib *)
  demand_paging : bool;  (** P3+: stacks fault in page by page *)
  writeback : bool;
      (** block cache defers writes: dirty blocks flushed by a daemon,
          on fsync, on eviction, and at shutdown (off = the paper's
          write-through xv6-style cache) *)
  readahead_blocks : int;
      (** sequential read-ahead: blocks prefetched in one device command
          when the cache detects a streaming miss pattern; 0 = off *)
  flush_interval_ms : int;
      (** period of the engine-scheduled flush daemon (used only when
          [writeback] is on) *)
  sd_coalescing : bool;
      (** the SD request queue merges adjacent pending writes into one
          command (elevator order); off = one command per block *)
  sched_policy : sched_policy;
      (** scheduling class for the per-core runqueues; [Sched_rr] keeps
          the paper's behavior *)
  wake_model : wake_model;
      (** cross-core wakeup mechanism; [Wake_direct] keeps the seed's
          instant (cost-free) remote scheduling *)
  wake_affinity : bool;
      (** wake placement prefers the task's last-run core (cache
          affinity); migrations then charge {!Kcost.sched_migrate} *)
  load_balance_ms : int;
      (** period of the load-balance pass that equalizes runqueue depth
          across cores; 0 = off (idle cores steal at pick time instead,
          as in the seed) *)
  pipe_ring : bool;
      (** pipes use a power-of-two ring buffer with [Bytes.blit] bulk
          copies instead of xv6's byte-at-a-time loop; off = the paper's
          512-byte byte-copy pipe *)
  pipe_buffer_bytes : int;
      (** capacity of the ring pipe (rounded up to a power of two); only
          consulted when [pipe_ring] is on — the xv6 path is pinned at
          {!Kcost.pipe_buffer_bytes} *)
  pipe_wake_edge : bool;
      (** edge-triggered pipe wakeups: wake readers only on
          empty→non-empty and writers only on full→not-full, instead of
          on every operation *)
  kcheck : bool;
      (** the runtime sanitizer ({!Kcheck}): lockdep order checking,
          blocked-task deadlock scans, sleep-in-atomic detection and
          refcount audits at fork/clone/exit. Host-side instrumentation
          only — charges zero virtual cycles, so every paper number is
          unchanged. Off in the stock kernel, on under the test harness. *)
  trace_per_core_rings : bool;
      (** each core writes its own power-of-two trace ring, merged on
          dump by (timestamp, sequence); off = the paper's single shared
          ring. Host-side only: zero virtual cycles either way *)
  profile_hz : int;
      (** sampling profiler rate: every [1000 / profile_hz] ms the timer
          tick attributes the core to (pid, syscall | irq | user | idle)
          for /proc/profile; 0 = off. Zero virtual cycles *)
  metrics : bool;
      (** expose /proc/metrics: kperf counters and histogram buckets in
          Prometheus text format. Rendering happens at open; nothing is
          charged to the traced workload *)
  sim_domains : int;
      (** host domains for the engine's parallel event batches
          ([Sim.Engine.set_domains]). 1 = the sequential engine,
          bit-for-bit; > 1 runs offloaded computes across a work-stealing
          domain pool. Pure host-side parallelism: the virtual-time trace
          is identical at any value. [VOS_SIM_DOMAINS] overrides at
          boot. *)
  journal : bool;
      (** crash-consistent rootfs: mkfs reserves a write-ahead log area
          and the extent (doubly-indirect) block map, mutations run in
          transactions group-committed by the flush daemon and fsync,
          and mount replays committed transactions (off = the paper's
          journal-free xv6fs, bit-identical images) *)
  journal_max_tx_blocks : int;
      (** soft cap on blocks per journal transaction before a group
          commit is forced (clamped to the on-disk log size); only
          consulted when [journal] is on *)
  crash_inject_seed : int;
      (** seed for the power-cut crash-injection harness (crashbench):
          the same seed replays the identical schedule of workload ops
          and cut points, byte for byte *)
  fuzz_ops : int;
      (** vfuzz: operations per generated scenario session — syscalls,
          app launches, keypresses and fault injections drawn from the
          session's {!Sim.Rng} stream *)
  fuzz_session_ms : int;
      (** vfuzz: virtual-time budget per session; a session whose driver
          has not finished (or died) by the deadline is reported as
          wedged, which is the fuzzer's deadlock oracle *)
  fuzz_faults : bool;
      (** vfuzz: arm device-level hostility in the generator — SD read
          faults, USB unplug/replug, IRQ storms and power blips; off
          restricts sessions to syscall/keypress traffic *)
  vprobe : bool;
      (** dynamic tracing ({!Vprobe}): the probe-point registry, the
          /proc/vprobe_ctl spec language and /proc/vprobe aggregates.
          Host-side only — an unattached probe point is a single array
          read, an attached one updates host counters; zero virtual
          cycles either way *)
  delayacct : bool;
      (** per-task delay accounting: every [Task.state] transition
          buckets the elapsed ns into oncpu / runnable / sleep /
          blocked-io / blocked-lock / blocked-pipe, surfaced at
          /proc/delays. Host-side bookkeeping only; the optional
          [dstate] trace events are a separate ktrace_ctl toggle so
          armed traces stay byte-identical *)
  flight_recorder_events : int;
      (** panic flight recorder: on {!Kpanic} dump the last N trace
          events, all attached vprobe aggregates and the per-task delay
          table to the UART before halting; 0 = off. Always-on in
          [full] — a kernel that panics silently teaches nothing *)
}

let full =
  {
    stage = 5;
    multitasking = true;
    user_separation = true;
    syscalls_tasks = true;
    syscalls_files = true;
    syscalls_threads = true;
    kmalloc = true;
    filesystem = true;
    fat32 = true;
    devfs = true;
    procfs = true;
    usb_keyboard = true;
    sound = true;
    multicore = true;
    window_manager = true;
    nonblocking_io = true;
    range_io_bypass = true;
    simd_pixel_ops = true;
    demand_paging = true;
    (* the write-back fast path ships off by default so the stock
       configuration still reproduces the paper's §5.2 numbers; iobench
       and the ablations switch it on *)
    writeback = false;
    readahead_blocks = 0;
    flush_interval_ms = 8;
    sd_coalescing = true;
    (* like write-back, the rebuilt scheduler ships in its paper
       configuration (round-robin, instant wakeups, no affinity or
       balancing) so the stock numbers don't move; schedbench and the
       ablations turn the new machinery on *)
    sched_policy = Sched_rr;
    wake_model = Wake_direct;
    wake_affinity = false;
    load_balance_ms = 0;
    (* the IPC rebuild follows the same rule: xv6 pipes with wake-on-
       every-op stay the default so Figure 8/11 numbers are untouched;
       ipcbench walks the ring/edge/poll ladder explicitly *)
    pipe_ring = false;
    pipe_buffer_bytes = 4096;
    pipe_wake_edge = false;
    (* pure host-side checking, but the stock kernel stays exactly the
       artifact the paper describes; the harness flips it on *)
    kcheck = false;
    (* kperf follows the same convention: the observability machinery is
       free in virtual time, but the stock kernel traces into the paper's
       single ring with no profiler or metrics page; tracebench and the
       tests arm these *)
    trace_per_core_rings = false;
    profile_hz = 0;
    metrics = false;
    sim_domains = 1;
    (* crash consistency is explicitly out of the paper's scope (§5.4),
       so the journal ships off and the stock rootfs image stays
       byte-identical; the crash harness and journal tests arm it *)
    journal = false;
    journal_max_tx_blocks = 64;
    crash_inject_seed = 7;
    (* scenario-fuzzing defaults: short hostile sessions; the harness
       and vos_fuzz override per campaign *)
    fuzz_ops = 48;
    fuzz_session_ms = 400;
    fuzz_faults = true;
    (* the query layer over kperf/ktrace follows the PR-5 discipline:
       free in virtual time, so vprobe and delayacct can ship armed; the
       flight recorder is always-on because a panic is exactly when you
       want the data *)
    vprobe = true;
    delayacct = true;
    flight_recorder_events = 64;
  }

let rec prototype = function
  | 1 ->
      {
        stage = 1;
        multitasking = false;
        user_separation = false;
        syscalls_tasks = false;
        syscalls_files = false;
        syscalls_threads = false;
        kmalloc = false;
        filesystem = false;
        fat32 = false;
        devfs = false;
        procfs = false;
        usb_keyboard = false;
        sound = false;
        multicore = false;
        window_manager = false;
        nonblocking_io = false;
        range_io_bypass = false;
        simd_pixel_ops = false;
        demand_paging = false;
        writeback = false;
        readahead_blocks = 0;
        flush_interval_ms = 0;
        sd_coalescing = false;
        sched_policy = Sched_rr;
        wake_model = Wake_direct;
        wake_affinity = false;
        load_balance_ms = 0;
        pipe_ring = false;
        pipe_buffer_bytes = 512;
        pipe_wake_edge = false;
        kcheck = false;
        trace_per_core_rings = false;
        profile_hz = 0;
        metrics = false;
        sim_domains = 1;
        journal = false;
        journal_max_tx_blocks = 64;
        crash_inject_seed = 7;
        fuzz_ops = 48;
        fuzz_session_ms = 400;
        fuzz_faults = true;
        vprobe = false;
        delayacct = false;
        flight_recorder_events = 0;
      }
  | 2 -> { (prototype 1) with stage = 2; multitasking = true }
  | 3 ->
      {
        (prototype 1) with
        stage = 3;
        multitasking = true;
        user_separation = true;
        syscalls_tasks = true;
        demand_paging = true;
      }
  | 4 ->
      {
        full with
        stage = 4;
        syscalls_threads = false;
        fat32 = false;
        multicore = false;
        window_manager = false;
        nonblocking_io = false;
        range_io_bypass = false;
        simd_pixel_ops = false;
      }
  | 5 -> full
  | k -> Kpanic.panicf "Kconfig.prototype: no prototype %d" k
