(** The self-hosted debug monitor (§5.1).

    The real VOS programs ARMv8 debug registers (DBGBCR/DBGWCR) for
    breakpoints, watchpoints and single-stepping. The simulation's program
    counter is the shadow-stack label stream ({!Abi.Frame_mark}), so:

    - a {e breakpoint} stops a task when it enters a named frame;
    - a {e syscall watchpoint} stops a task when it issues a named syscall
      (the moral equivalent of a watchpoint on kernel entry);
    - {e single-step} stops at each of the next N frame entries.

    A stopped task is parked on its debug channel; [inspect] renders its
    state and [resume] lets it run. *)

type stop_reason = Breakpoint of string | Watchpoint of string | Step

type t = {
  sched : Sched.t;
  mutable breakpoints : string list;
  mutable sys_watchpoints : string list;
  mutable stepping : (int * int) list;  (** pid, remaining steps *)
  mutable stopped : (int * stop_reason) list;  (** pid -> why *)
  mutable hits : int;
  reader : Ktrace.reader;
      (** consuming cursor into the trace rings, same mechanism as the
          /proc/ktrace trace-pipe — the monitor no longer snapshots the
          whole ring with [Ktrace.dump] *)
  mutable recent : Ktrace.entry list;  (** newest first, bounded *)
}

let recent_cap = 64

(* Pull everything the rings have accumulated since the last look into
   the bounded recent-events window. Events the cursor lost to ring
   overwrite are counted by the reader itself. *)
let drain t =
  let rec loop () =
    match Ktrace.read_reader t.reader ~max:256 with
    | [] -> ()
    | es ->
        t.recent <- List.rev_append es t.recent;
        loop ()
  in
  loop ();
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  t.recent <- take recent_cap t.recent

let debug_chan pid = Printf.sprintf "debug:%d" pid

let set_breakpoint t label =
  if not (List.mem label t.breakpoints) then
    t.breakpoints <- label :: t.breakpoints

let clear_breakpoint t label =
  t.breakpoints <- List.filter (fun l -> not (String.equal l label)) t.breakpoints

let watch_syscall t name =
  if not (List.mem name t.sys_watchpoints) then
    t.sys_watchpoints <- name :: t.sys_watchpoints

let unwatch_syscall t name =
  t.sys_watchpoints <-
    List.filter (fun n -> not (String.equal n name)) t.sys_watchpoints

let step t ~pid ~count =
  t.stepping <- (pid, count) :: List.remove_assoc pid t.stepping

(* Called by the scheduler at every frame entry; true = stop the task. *)
let check_frame t task label =
  let pid = task.Task.pid in
  let hit_bp = List.mem label t.breakpoints in
  let hit_step =
    match List.assoc_opt pid t.stepping with
    | Some n when n > 0 ->
        let n = n - 1 in
        t.stepping <- (pid, n) :: List.remove_assoc pid t.stepping;
        true
    | Some _ | None -> false
  in
  if hit_bp || hit_step then begin
    t.hits <- t.hits + 1;
    t.stopped <-
      (pid, if hit_bp then Breakpoint label else Step)
      :: List.remove_assoc pid t.stopped;
    true
  end
  else false

(* Called by the dispatcher at syscall entry; true = stop. *)
let check_syscall t task name =
  if List.mem name t.sys_watchpoints then begin
    t.hits <- t.hits + 1;
    t.stopped <- (task.Task.pid, Watchpoint name) :: List.remove_assoc task.Task.pid t.stopped;
    true
  end
  else false

let create sched =
  let t =
    {
      sched;
      breakpoints = [];
      sys_watchpoints = [];
      stepping = [];
      stopped = [];
      hits = 0;
      reader = Ktrace.new_reader sched.Sched.trace;
      recent = [];
    }
  in
  sched.Sched.frame_hook <- Some (fun task label -> check_frame t task label);
  sched.Sched.syscall_hook <- Some (fun task name -> check_syscall t task name);
  t

let stopped_tasks t = List.map fst t.stopped

let inspect t pid =
  match Sched.task_by_pid t.sched pid with
  | None -> Printf.sprintf "debugmon: no task %d" pid
  | Some task ->
      let why =
        match List.assoc_opt pid t.stopped with
        | Some (Breakpoint l) -> "breakpoint " ^ l
        | Some (Watchpoint s) -> "watchpoint sys_" ^ s
        | Some Step -> "single-step"
        | None -> "running"
      in
      drain t;
      let trace_tail =
        match t.recent with
        | [] -> ""
        | es ->
            let shown =
              let rec take n = function
                | [] -> []
                | _ when n = 0 -> []
                | x :: tl -> x :: take (n - 1) tl
              in
              List.rev (take 8 es)
            in
            let lost = Ktrace.reader_lost t.reader in
            Printf.sprintf "\nrecent trace%s:\n%s"
              (if lost > 0 then Printf.sprintf " (%d lost)" lost else "")
              (String.concat "\n" (List.map Ktrace.format_entry shown))
      in
      Printf.sprintf "pid %d (%s) state=%s stop=%s cpu=%.2fms\n%s%s" pid
        task.Task.name (Task.state_name task) why
        (Int64.to_float task.Task.cpu_ns /. 1e6)
        (Unwind.render_task task)
        trace_tail

let resume t pid =
  t.stopped <- List.remove_assoc pid t.stopped;
  Sched.wake_all t.sched (debug_chan pid)

let hits t = t.hits
