(** Kernel assembly and boot (§3 "OS image", §4).

    Booting mirrors the real flow: the GPU firmware loads the kernel image
    from SD partition 1 (charged as firmware time), the kernel builds its
    ramdisk root filesystem (xv6fs) with every user program packed as a
    VELF executable, allocates the framebuffer through the mailbox, brings
    up drivers per the prototype's feature set, mounts the FAT32 partition
    under /d, releases secondary cores, and is then ready to spawn init. *)

type program = {
  prog_name : string;
  prog_size : int;  (** VELF image size: drives exec load cost and memory *)
  prog_main : string list -> int;
}

type spec = {
  sp_platform : Hw.Board.platform;
  sp_config : Kconfig.t;
  sp_seed : int64;
  sp_fb : (int * int) option;
  sp_programs : program list;
  sp_files : (string * Bytes.t) list;  (** extra ramdisk files *)
  sp_fat_files : (string * Bytes.t) list;  (** files on the FAT partition *)
  sp_usb_files : (string * Bytes.t) list option;
      (** when [Some], a FAT32-formatted USB mass-storage stick with these
          files is plugged in and mounted under /usb — the USB-class
          extensibility §4.4 anticipates *)
  sp_track_dirty : bool;
  sp_sd_mib : int;
}

let default_spec =
  {
    sp_platform = Hw.Board.pi3;
    sp_config = Kconfig.full;
    sp_seed = 42L;
    sp_fb = Some (640, 480);
    sp_programs = [];
    sp_files = [];
    sp_fat_files = [];
    sp_usb_files = None;
    sp_track_dirty = true;
    sp_sd_mib = 64;
  }

type t = {
  spec : spec;
  board : Hw.Board.t;
  config : Kconfig.t;
  kalloc : Kalloc.t;
  sched : Sched.t;
  fdt : Fd.t;
  vfs : Vfs.t;
  proc : Proc.t;
  sems : Sem.t;
  console : Console.t;
  kbd : Kbd.t;
  audio : Audio.t option;
  wm : Wm.t option;
  fb : Hw.Framebuffer.t option;
  debugmon : Debugmon.t;
  panic : Panic.t;
  rootfs : Fs.Xv6fs.t;
  root_bc : Bufcache.t;
  fat_bc : Bufcache.t option;
  devfs : Devfs.t;
  kcheck : Kcheck.t option;
  kernel_reserved_bytes : int;
  mutable boot_ready_ns : int64;
}

(* SD layout: partition 1 (kernel image) and partition 2 (FAT32 user
   files), as in §3. *)
let part1_lba = 2048
let part1_sectors = 8192 (* 4 MiB kernel image *)
let part2_lba = part1_lba + part1_sectors

let mkdirs_xv6 fsys path =
  let rec go built = function
    | [] -> ()
    | comp :: rest ->
        let next = built ^ "/" ^ comp in
        (match Fs.Xv6fs.lookup fsys next with
        | Ok _ -> ()
        | Error _ -> (
            match Fs.Xv6fs.create fsys next Fs.Xv6fs.Dir with
            | Ok _ -> ()
            | Error e -> Kpanic.panicf "boot: %s" e));
        go next rest
  in
  go "" (Fs.Vpath.split (Fs.Vpath.dirname path))

let mkdirs_fat fat path =
  let rec go built = function
    | [] -> ()
    | comp :: rest ->
        let next = built ^ "/" ^ comp in
        (match Fs.Fat32.stat fat next with
        | Ok _ -> ()
        | Error _ -> (
            match Fs.Fat32.mkdir fat next with
            | Ok () -> ()
            | Error e -> Kpanic.panicf "boot: %s" e));
        go next rest
  in
  go "" (Fs.Vpath.split (Fs.Vpath.dirname path))

(* Build the ramdisk image holding every program as a VELF file plus the
   extra files. Returns the raw image. *)
let build_ramdisk spec =
  let velfs =
    List.map
      (fun p ->
        ( "/" ^ p.prog_name,
          Velf.build
            {
              Velf.prog_name = p.prog_name;
              code_bytes = (max 1024 p.prog_size * 3) / 4;
              data_bytes = max 256 (p.prog_size / 4);
            } ))
      spec.sp_programs
  in
  let all_files = velfs @ spec.sp_files in
  let content_bytes =
    List.fold_left (fun acc (_, data) -> acc + Bytes.length data) 0 all_files
  in
  (* With the journal on, the image gains a log area (header + slots,
     sized comfortably above the per-transaction cap) and uses the
     extent block map; off keeps the paper's exact layout. *)
  let nlog =
    if spec.sp_config.Kconfig.journal then
      min 252 (max 64 (spec.sp_config.Kconfig.journal_max_tx_blocks + 2))
    else 0
  in
  let total_blocks =
    max 512 ((content_bytes * 3 / 2 / Fs.Xv6fs.block_bytes) + 256)
    + if nlog > 0 then nlog + 1 else 0
  in
  let ninodes = max 64 (List.length all_files * 2) in
  let image =
    Fs.Xv6fs.mkfs ~nlog ~ext:spec.sp_config.Kconfig.journal ~total_blocks
      ~ninodes ()
  in
  let fsys =
    match Fs.Xv6fs.mount (Fs.Xv6fs.io_of_image image) with
    | Ok f -> f
    | Error e -> Kpanic.panicf "boot: ramdisk %s" e
  in
  List.iter
    (fun (path, data) ->
      mkdirs_xv6 fsys path;
      match Fs.Xv6fs.create fsys path Fs.Xv6fs.Reg with
      | Error e -> Kpanic.panicf "boot: %s" e
      | Ok node -> (
          match Fs.Xv6fs.writei fsys node ~off:0 ~data with
          | Ok _ -> ()
          | Error e -> Kpanic.panicf "boot: %s: %s" path e))
    all_files;
  image

let build_fat_partition board spec =
  let sd = board.Hw.Board.sd in
  let total = Hw.Sd.sectors sd in
  let part2_sectors = total - part2_lba in
  (match
     Fs.Mbr.write
       (Fs.Blockdev.of_sd sd ~name:"sd" ~first_lba:0 ~sectors:total ())
       [|
         {
           Fs.Mbr.part_type = Fs.Mbr.native_type;
           first_lba = part1_lba;
           sectors = part1_sectors;
         };
         {
           Fs.Mbr.part_type = Fs.Mbr.fat32_lba_type;
           first_lba = part2_lba;
           sectors = part2_sectors;
         };
       |]
   with
  | Ok () -> ()
  | Error e -> Kpanic.panicf "boot: mbr %s" e);
  let pdev =
    Fs.Blockdev.of_sd sd ~name:"sd:p2" ~first_lba:part2_lba
      ~sectors:part2_sectors ()
  in
  let io = Fs.Fat32.io_of_blockdev pdev in
  Fs.Fat32.mkfs io ~total_sectors:part2_sectors ();
  let fat =
    match Fs.Fat32.mount io with
    | Ok f -> f
    | Error e -> Kpanic.panicf "boot: fat %s" e
  in
  List.iter
    (fun (path, data) ->
      mkdirs_fat fat path;
      (match Fs.Fat32.create fat path with
      | Ok () -> ()
      | Error e -> Kpanic.panicf "boot: %s" e);
      match Fs.Fat32.write_file fat path ~off:0 ~data with
      | Ok _ -> ()
      | Error e -> Kpanic.panicf "boot: %s: %s" path e)
    spec.sp_fat_files

let boot spec =
  (* A fresh machine restarts every identifier counter at zero, so two
     boots of the same spec in one host process produce identical traces
     — the determinism proof boots at several sim_domains settings and
     byte-compares the ktrace dumps. *)
  Task.next_pid := 0;
  Fd.next_file_id := 0;
  Vm.next_asid := 0;
  Pipe.next_id := 0;
  let board =
    Hw.Board.create ~platform:spec.sp_platform ~seed:spec.sp_seed
      ~sd_mib:spec.sp_sd_mib ()
  in
  let engine = board.Hw.Board.engine in
  (* Size the engine's domain pool before any event fires. A config that
     explicitly asks for > 1 domain wins; otherwise VOS_SIM_DOMAINS
     applies, which lets CI drive the whole suite multicore without
     touching configs. Either way virtual time is unaffected — domains
     > 1 only parallelizes Par computes. *)
  let sim_domains =
    if spec.sp_config.Kconfig.sim_domains > 1 then
      spec.sp_config.Kconfig.sim_domains
    else
      match Sys.getenv_opt "VOS_SIM_DOMAINS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | Some _ | None -> spec.sp_config.Kconfig.sim_domains)
      | None -> spec.sp_config.Kconfig.sim_domains
  in
  Sim.Engine.set_domains engine sim_domains;
  (* firmware: load kernel image from SD partition 1 *)
  Sim.Engine.advance_to engine spec.sp_platform.Hw.Board.firmware_boot_ns;
  (* card init by our driver *)
  Sim.Engine.advance_to engine
    (Int64.add (Sim.Engine.now engine) (Hw.Board.io_ns board Hw.Sd.init_cost_ns));
  (* framebuffer through the mailbox *)
  let fb =
    match spec.sp_fb with
    | None -> None
    | Some (w, h) -> (
        match
          Hw.Mailbox.call board.Hw.Board.mailbox
            [
              Hw.Mailbox.Set_physical_size (w, h);
              Hw.Mailbox.Set_depth 32;
              Hw.Mailbox.Allocate_buffer;
            ]
        with
        | Ok (results, cost) ->
            Sim.Engine.advance_to engine (Int64.add (Sim.Engine.now engine) cost);
            List.find_map
              (function Hw.Mailbox.Buffer fb -> Some fb | _ -> None)
              results
        | Error e -> Kpanic.panicf "boot: mailbox %s" e)
  in
  (* root filesystem on ramdisk *)
  let ramdisk = build_ramdisk spec in
  let fb_bytes =
    match fb with
    | Some fb -> 4 * Hw.Framebuffer.width fb * Hw.Framebuffer.height fb
    | None -> 0
  in
  let kernel_reserved = (6 * 1024 * 1024) + Bytes.length ramdisk + fb_bytes in
  let kalloc =
    Kalloc.create
      ~dram_bytes:(948 * 1024 * 1024)
      ~kernel_reserved_bytes:kernel_reserved
  in
  let sched = Sched.create board spec.sp_config kalloc in
  (* the runtime sanitizer comes up with the scheduler so every later
     subsystem can feed it; kernel-side knowledge (channel-name parsing,
     semaphore holders, fd walks) is injected below once those exist *)
  let kcheck =
    if spec.sp_config.Kconfig.kcheck then Some (Kcheck.create ()) else None
  in
  sched.Sched.kcheck <- kcheck;
  (match kcheck with
  | Some kc ->
      Kcheck.set_emit kc (fun ev -> Sched.trace_emit sched ev);
      sched.Sched.ptable <- Some (Spinlock.create ~kcheck:kc "ptable")
  | None -> ());
  let root_bc =
    if spec.sp_config.Kconfig.journal then
      (* journaled rootfs wants the write-back cache (pinned blocks defer
         until commit) and a capacity that holds a whole transaction *)
      Bufcache.create ~board ~backing:(Bufcache.Ram ramdisk) ~block_sectors:2
        ~capacity:128 ~writeback:spec.sp_config.Kconfig.writeback
        ~coalesce:spec.sp_config.Kconfig.sd_coalescing ()
    else
      Bufcache.create ~board ~backing:(Bufcache.Ram ramdisk) ~block_sectors:2 ()
  in
  let rootfs =
    match
      Fs.Xv6fs.mount
        ~journal_max_tx:spec.sp_config.Kconfig.journal_max_tx_blocks
        (Bufcache.xv6_io root_bc)
    with
    | Ok f -> f
    | Error e -> Kpanic.panicf "boot: root mount %s" e
  in
  (* Group commit rides the flush daemon: before each periodic flush the
     cache asks the filesystem to commit whatever transaction is open, so
     pinned blocks become flushable in the same pass. *)
  if Fs.Xv6fs.journaled rootfs then
    Bufcache.set_pre_flush root_bc (fun () -> ignore (Fs.Xv6fs.commit rootfs));
  let console = Console.create board sched in
  let kbd = Kbd.create board sched in
  let audio =
    if spec.sp_config.Kconfig.sound then Some (Audio.create board sched)
    else None
  in
  let wm =
    match (spec.sp_config.Kconfig.window_manager, fb) with
    | true, Some fb ->
        let wm = Wm.create board sched fb ~track_dirty:spec.sp_track_dirty in
        Kbd.set_sink kbd (fun ev -> Wm.key_sink wm ev);
        Some wm
    | _, (Some _ | None) -> None
  in
  let devfs = Devfs.create ~board ~sched ~console ~kbd ~audio ~wm ~fb in
  let ipcstats = Ipcstats.create () in
  let procfs = Procfs.create ~board ~sched ~kalloc ~ipc:ipcstats in
  let fdt = Fd.create sched in
  let vfs =
    Vfs.create ~sched ~config:spec.sp_config ~fdt ~root:rootfs ~root_bc ~devfs
      ~procfs
      ~ipc:(Pipe.params_of_config spec.sp_config ipcstats)
  in
  (* FAT32 partition under /d *)
  let fat_bc =
    if spec.sp_config.Kconfig.fat32 then begin
      build_fat_partition board spec;
      let bc =
        Bufcache.create ~board
          ~backing:(Bufcache.Card (board.Hw.Board.sd, part2_lba))
          ~block_sectors:1 ~capacity:64
          ~writeback:spec.sp_config.Kconfig.writeback
          ~readahead:spec.sp_config.Kconfig.readahead_blocks
          ~coalesce:spec.sp_config.Kconfig.sd_coalescing ()
      in
      let io =
        Bufcache.fat_io bc
          ~range_bypass:spec.sp_config.Kconfig.range_io_bypass
      in
      (match Fs.Fat32.mount io with
      | Ok fat -> Vfs.mount_fat vfs ~at:"/d" fat bc
      | Error e -> Kpanic.panicf "boot: fat mount %s" e);
      Some bc
    end
    else None
  in
  (* USB mass-storage stick: format a FAT image, attach it to the hub,
     and mount it under /usb through the same FatFS + buffer cache path *)
  (match spec.sp_usb_files with
  | None -> ()
  | Some files ->
      if not spec.sp_config.Kconfig.fat32 then
        Kpanic.panicf "boot: USB storage needs the FAT32 feature";
      let sectors = 32768 (* a 16 MiB stick *) in
      let image = Bytes.make (sectors * Fs.Blockdev.sector_bytes) '\000' in
      let raw_io = Fs.Fat32.io_of_blockdev (Fs.Blockdev.of_image ~name:"usb0" image) in
      Fs.Fat32.mkfs raw_io ~total_sectors:sectors ();
      (let fat0 =
         match Fs.Fat32.mount raw_io with
         | Ok f -> f
         | Error e -> Kpanic.panicf "boot: usb mkfs %s" e
       in
       List.iter
         (fun (path, data) ->
           mkdirs_fat fat0 path;
           (match Fs.Fat32.create fat0 path with
           | Ok () -> ()
           | Error e -> Kpanic.panicf "boot: usb %s" e);
           match Fs.Fat32.write_file fat0 path ~off:0 ~data with
           | Ok _ -> ()
           | Error e -> Kpanic.panicf "boot: usb %s: %s" path e)
         files);
      Hw.Usb.attach_msd board.Hw.Board.usb image;
      let bc =
        Bufcache.create ~board ~backing:(Bufcache.Usb_msd board.Hw.Board.usb)
          ~block_sectors:1 ~capacity:64
          ~writeback:spec.sp_config.Kconfig.writeback
          ~readahead:spec.sp_config.Kconfig.readahead_blocks
          ~coalesce:spec.sp_config.Kconfig.sd_coalescing ()
      in
      let io =
        Bufcache.fat_io bc ~range_bypass:spec.sp_config.Kconfig.range_io_bypass
      in
      match Fs.Fat32.mount io with
      | Ok fat -> Vfs.mount_fat vfs ~at:"/usb" fat bc
      | Error e -> Kpanic.panicf "boot: usb mount %s" e);
  (* Write-back mode: a periodic flush daemon per device-backed cache.
     The daemon is an engine event, i.e. a kernel thread woken by timer —
     its flushes are not billed to whichever task happens to be in a
     syscall when it fires. *)
  if
    spec.sp_config.Kconfig.writeback
    && spec.sp_config.Kconfig.flush_interval_ms > 0
  then begin
    List.iter
      (fun bc ->
        Bufcache.start_flush_daemon bc
          ~interval_ms:spec.sp_config.Kconfig.flush_interval_ms)
      (Vfs.fat_caches vfs);
    (* the journaled rootfs cache is write-back too: its daemon is what
       drives group commit (via the pre-flush hook above) *)
    if spec.sp_config.Kconfig.journal then
      Bufcache.start_flush_daemon root_bc
        ~interval_ms:spec.sp_config.Kconfig.flush_interval_ms
  end;
  let sems = Sem.create sched in
  let proc =
    Proc.create ~sched ~fdt ~vfs ~sems ~kalloc ~config:spec.sp_config
  in
  (* now that tasks, semaphores and fd tables exist, teach kcheck who
     could wake each wait channel and how to re-derive every refcount *)
  (match kcheck with
  | Some kc ->
      let blocked_chan pid =
        match Sched.task_by_pid sched pid with
        | Some task -> (
            match task.Task.state with
            | Task.Blocked chan -> Some chan
            | Task.Runnable | Task.Running _ | Task.Zombie -> None)
        | None -> None
      in
      let wakers chan =
        match String.split_on_char ':' chan with
        | [ "exit"; pid ] -> (
            (* joiners are woken by the joinee's exit *)
            match Sched.task_by_pid sched (int_of_string pid) with
            | Some task when task.Task.state <> Task.Zombie ->
                [ task.Task.pid ]
            | Some _ | None -> [])
        | [ "children"; pid ] -> (
            (* wait(2) is woken by any live child's exit *)
            match Sched.task_by_pid sched (int_of_string pid) with
            | Some parent ->
                List.filter
                  (fun c ->
                    match Sched.task_by_pid sched c with
                    | Some child -> child.Task.state <> Task.Zombie
                    | None -> false)
                  parent.Task.children
            | None -> [])
        | [ "sem"; id ] ->
            (* only a task holding the semaphore open plausibly posts it *)
            Sem.holders sems (int_of_string id)
        | [ "pipe"; id; "r" ] ->
            (* blocked readers are woken by the write side (and vice
               versa): data arriving or the last end closing *)
            Fd.pipe_end_owners fdt ~pipe_id:(int_of_string id) ~write:true
        | [ "pipe"; id; "w" ] ->
            Fd.pipe_end_owners fdt ~pipe_id:(int_of_string id) ~write:false
        | _ ->
            (* sleep, debug, poll:waiters, device queues: woken by timers
               or IRQs — external, so the deadlock walk stops here *)
            []
      in
      Kcheck.set_env kc { Kcheck.blocked_chan; wakers };
      Kcheck.register_auditor kc ~name:"fd/pipe refs" (fun () -> Fd.audit fdt);
      Kcheck.register_auditor kc ~name:"sem refs" (fun () -> Sem.audit sems)
  | None -> ());
  List.iter
    (fun p -> Proc.register_program proc p.prog_name p.prog_main)
    spec.sp_programs;
  Syscall.install
    {
      Syscall.s_sched = sched;
      s_config = spec.sp_config;
      s_vfs = vfs;
      s_proc = proc;
      s_sems = sems;
      s_console = console;
      s_fb = fb;
    };
  let debugmon = Debugmon.create sched in
  let panic = Panic.install sched console in
  (* kperf wiring. Block caches record SD request latency and emit
     request spans; the trace ring pokes /proc/ktrace pollers through a
     zero-delay engine event (never synchronously from inside [emit],
     which may run with scheduler state mid-update); subsystem counters
     surface in /proc/metrics. All of it is host-side bookkeeping — no
     cycles are charged, and the poke only fires while a trace-pipe
     reader is actually open. *)
  Bufcache.set_observer root_bc sched;
  List.iter (fun bc -> Bufcache.set_observer bc sched) (Vfs.fat_caches vfs);
  (let wake_pending = ref false in
   sched.Sched.trace.Ktrace.on_data <-
     Some
       (fun () ->
         if not !wake_pending then begin
           wake_pending := true;
           ignore
             (Sim.Engine.schedule_after engine 0L (fun () ->
                  wake_pending := false;
                  Sched.poll_wake sched))
         end));
  (let kp = sched.Sched.kperf in
   let c = Kperf.register_counter kp in
   c "vos_pipe_writes_total" (fun () -> ipcstats.Ipcstats.pipe_writes);
   c "vos_pipe_reads_total" (fun () -> ipcstats.Ipcstats.pipe_reads);
   c "vos_pipe_bytes_total" (fun () -> ipcstats.Ipcstats.pipe_bytes);
   c "vos_wakeups_issued_total" (fun () -> ipcstats.Ipcstats.wakeups_issued);
   c "vos_wakeups_suppressed_total" (fun () ->
       ipcstats.Ipcstats.wakeups_suppressed);
   c "vos_polls_total" (fun () -> ipcstats.Ipcstats.polls);
   Kperf.register_counter kp ~label:("cache", "root") "vos_bufcache_hits_total"
     (fun () -> root_bc.Bufcache.hits);
   Kperf.register_counter kp ~label:("cache", "root")
     "vos_bufcache_misses_total" (fun () -> root_bc.Bufcache.misses);
   List.iteri
     (fun i bc ->
       let l = ("cache", Printf.sprintf "fat%d" i) in
       Kperf.register_counter kp ~label:l "vos_bufcache_hits_total" (fun () ->
           bc.Bufcache.hits);
       Kperf.register_counter kp ~label:l "vos_bufcache_misses_total"
         (fun () -> bc.Bufcache.misses))
     (Vfs.fat_caches vfs);
   (* journal, domain-pool and sanitizer counters, so one /proc/metrics
      scrape covers the storage, host-parallelism and kcheck subsystems *)
   Kperf.register_counter kp ~help:"Journal transactions committed"
     "vos_journal_commits_total" (fun () -> Fs.Xv6fs.log_commits rootfs);
   Kperf.register_counter kp
     ~help:"Journal blocks installed by recovery at mount"
     "vos_journal_replayed_total" (fun () -> Fs.Xv6fs.log_replayed rootfs);
   Kperf.register_counter kp
     ~help:"Writes absorbed into an already-queued journal block"
     "vos_journal_absorbed_total" (fun () -> Fs.Xv6fs.log_absorbed rootfs);
   (let pool = Sim.Dpool.global () in
    Kperf.register_counter kp
      ~help:"Host work-stealing pool: successful steal-half transfers"
      "vos_dpool_steals_total" (fun () -> Sim.Dpool.steals pool);
    Kperf.register_counter kp
      ~help:"Host work-stealing pool: workers parked after spinning"
      "vos_dpool_parks_total" (fun () -> Sim.Dpool.parks pool));
   Kperf.register_counter kp ~help:"Kernel sanitizer violations detected"
     "vos_kcheck_violations_total" (fun () ->
       match sched.Sched.kcheck with
       | Some kc -> List.length kc.Kcheck.violations
       | None -> 0));
  (* vprobe hook installation. Spinlock's observer and the panic hook
     are module globals (locks and panics exist below the layer where a
     kernel instance is visible), so the last-booted kernel wins — the
     right answer for a host process that boots throwaway kernels in
     sequence. Everything fired here is host-side bookkeeping: no cycles
     are charged and no engine events are scheduled. *)
  if spec.sp_config.Kconfig.vprobe then begin
    let vp = sched.Sched.vprobe in
    Spinlock.set_observer (fun ~name:_ ~core ~contended ->
        let pt =
          if contended then Vprobe.pt_lock_contended else Vprobe.pt_lock_acquire
        in
        if Vprobe.armed vp pt then
          Vprobe.fire vp pt { Vprobe.no_args with Vprobe.a_core = core });
    Fs.Xv6fs.set_on_commit rootfs (fun blocks ->
        if Vprobe.armed vp Vprobe.pt_journal_commit then
          Vprobe.fire vp Vprobe.pt_journal_commit
            { Vprobe.no_args with Vprobe.a_arg0 = blocks })
  end
  else Spinlock.clear_observer ();
  (* the flight recorder arms through Kpanic so it sees every panic path,
     not just the FIQ button *)
  if spec.sp_config.Kconfig.flight_recorder_events > 0 then
    Kpanic.set_on_panic (fun msg ->
        Panic.flight_record sched console
          ~events:spec.sp_config.Kconfig.flight_recorder_events msg)
  else Kpanic.clear_on_panic ();
  (* task teardown hooks *)
  sched.Sched.on_task_exit <-
    [
      (fun task -> Fd.close_all fdt ~pid:task.Task.pid);
      (fun task -> Sem.task_exit sems ~pid:task.Task.pid);
      (fun task ->
        match (wm, task.Task.wm_surface) with
        | Some wm, Some sid -> Wm.remove_surface wm sid
        | (Some _ | None), (Some _ | None) -> ());
    ];
  Sched.start sched;
  (match wm with Some wm -> Wm.start wm | None -> ());
  (* peripheral bring-up: USB enumeration dominates (§6.2's boot-time
     analysis); run the clock through it so the system is ready *)
  if spec.sp_config.Kconfig.usb_keyboard then begin
    Hw.Usb.power_on board.Hw.Board.usb;
    Sched.run_until sched
      (Int64.add (Sim.Engine.now engine) (Int64.add Hw.Usb.init_cost_ns 1_000_000L))
  end
  else
    Sched.run_until sched (Int64.add (Sim.Engine.now engine) 50_000_000L);
  let t =
    {
      spec;
      board;
      config = spec.sp_config;
      kalloc;
      sched;
      fdt;
      vfs;
      proc;
      sems;
      console;
      kbd;
      audio;
      wm;
      fb;
      debugmon;
      panic;
      rootfs;
      root_bc;
      fat_bc;
      devfs;
      kcheck;
      kernel_reserved_bytes = kernel_reserved;
      boot_ready_ns = Sim.Engine.now engine;
    }
  in
  t

(* Orderly shutdown: flush every cache's dirty blocks and stop the flush
   daemons. Under write-through this is a no-op; under write-back it is
   the moment deferred writes become durable (the real VOS would do this
   from the power-button path). *)
let shutdown t =
  Vfs.sync_all t.vfs;
  List.iter Bufcache.stop_flush_daemon (Vfs.fat_caches t.vfs);
  Bufcache.stop_flush_daemon t.root_bc

(* ---- conveniences ---- *)

(* Give a fresh process the xv6 convention: console on fds 0, 1 and 2
   (init opens the console and dups it twice). *)
let setup_std_fds t ~pid =
  if t.config.Kconfig.devfs then
    match Devfs.lookup t.devfs "console" with
    | None -> ()
    | Some ops ->
        let file =
          Fd.make_file ~kind:(Fd.K_dev ops) ~readable:true ~writable:true
            ~nonblock:false
        in
        (match Fd.alloc t.fdt ~pid file with
        | Ok 0 ->
            ignore (Fd.dup t.fdt ~pid ~fd:0);
            ignore (Fd.dup t.fdt ~pid ~fd:0)
        | Ok _ | Error _ -> ())

let spawn_user t ~name main =
  let size =
    match
      List.find_opt (fun p -> String.equal p.prog_name name) t.spec.sp_programs
    with
    | Some p -> p.prog_size
    | None -> 64 * 1024
  in
  let pages = (size / Kalloc.page_bytes) + 1 in
  match Vm.create t.kalloc ~code_pages:pages with
  | Error e -> Kpanic.panicf "spawn: %s" e
  | Ok vm ->
      let task = Sched.spawn t.sched ~name ~kind:Task.User ~vm main in
      setup_std_fds t ~pid:task.Task.pid;
      task

let spawn_kernel t ~name main = Sched.spawn t.sched ~name ~kind:Task.Kernel main

let run_for t ns =
  Sched.run_until t.sched (Int64.add (Sim.Engine.now t.board.Hw.Board.engine) ns)

let run_until t time = Sched.run_until t.sched time

let now t = Hw.Board.now t.board

(* Total OS memory footprint (§6.3): static kernel + ramdisk + fb, plus
   dynamically allocated pages and kmalloc. *)
let os_memory_bytes t =
  t.kernel_reserved_bytes + Kalloc.used_bytes t.kalloc
  + Kalloc.kmalloc_bytes t.kalloc

let uart_output t = Hw.Uart.output t.board.Hw.Board.uart
