(** kperf: the kernel's shared observability substrate.

    Three pieces, all host-side bookkeeping that charges {e zero} virtual
    cycles (the kcheck rule — no [Sched.charge], no engine events), so
    arming any of it leaves every paper number and BENCH json untouched:

    - {!Hist}, one log-linear histogram implementation (HDR-style, ~2
      buckets per octave from 100 ns to beyond 10 s) replacing the
      private percentile math that latency/sched/ipc benches and the
      scheduler's run-delay array each grew on their own;
    - a metric registry: named histograms and counter closures that
      [/proc/metrics] renders in Prometheus text exposition format;
    - the sampling profiler: every [profile_hz] timer ticks the scheduler
      calls {!sample} with what the core was doing (in-syscall name,
      in-IRQ line, user code, or idle) and the attribution table is
      readable at [/proc/profile]. *)

(* ---- log-linear histograms ---- *)

module Hist = struct
  (* Bucket lower bounds interleave 100*2^k and 150*2^k ns for
     k = 0..27 — two buckets per octave, so any recorded value is within
     ~33% of its bucket's lower bound. 100*2^27 ns = 13.4 s, comfortably
     past the 10 s ceiling; everything above 150*2^27 lands in one
     overflow bucket. Bucket 0 catches [0, 100) ns. *)
  let octaves = 27
  let buckets = (2 * (octaves + 1)) + 1 (* 57: sub-100ns + pairs + overflow *)

  let lower_bound_ns i =
    if i = 0 then 0
    else begin
      let k = (i - 1) / 2 in
      if (i - 1) mod 2 = 0 then 100 lsl k else 150 lsl k
    end

  (* Upper bound of bucket [i] (exclusive); the overflow bucket has none. *)
  let upper_bound_ns i = if i >= buckets - 1 then None else Some (lower_bound_ns (i + 1))

  let bucket_of_ns ns =
    if ns < 100 then 0
    else begin
      let k = ref 0 in
      while !k < octaves && ns >= 100 lsl (!k + 1) do
        incr k
      done;
      if !k = octaves && ns >= 150 lsl octaves then buckets - 1
      else 1 + (2 * !k) + if ns >= 150 lsl !k then 1 else 0
    end

  type t = {
    counts : int array;
    mutable total : int;
    mutable sum_ns : int64;
    mutable min_ns : int64;
    mutable max_ns : int64;
  }

  let create () =
    {
      counts = Array.make buckets 0;
      total = 0;
      sum_ns = 0L;
      min_ns = Int64.max_int;
      max_ns = 0L;
    }

  let record t ns =
    let ns = if Int64.compare ns 0L < 0 then 0L else ns in
    let b = bucket_of_ns (Int64.to_int ns) in
    t.counts.(b) <- t.counts.(b) + 1;
    t.total <- t.total + 1;
    t.sum_ns <- Int64.add t.sum_ns ns;
    if Int64.compare ns t.min_ns < 0 then t.min_ns <- ns;
    if Int64.compare ns t.max_ns > 0 then t.max_ns <- ns

  let count t = t.total
  let sum_ns t = t.sum_ns
  let max_ns t = t.max_ns
  let min_ns t = if t.total = 0 then 0L else t.min_ns

  let mean_ns t =
    if t.total = 0 then 0.0
    else Int64.to_float t.sum_ns /. float_of_int t.total

  (* Merging two histograms is exactly recording the concatenation of
     their samples: the state is bucket counts plus (total, sum, min,
     max), all of which compose. *)
  let merge a b =
    let m = create () in
    Array.iteri (fun i n -> m.counts.(i) <- n + b.counts.(i)) a.counts;
    m.total <- a.total + b.total;
    m.sum_ns <- Int64.add a.sum_ns b.sum_ns;
    m.min_ns <- (if Int64.compare a.min_ns b.min_ns < 0 then a.min_ns else b.min_ns);
    m.max_ns <- (if Int64.compare a.max_ns b.max_ns > 0 then a.max_ns else b.max_ns);
    m

  (* Rank interpolation: walk the cumulative counts to the bucket holding
     the q-quantile rank, then interpolate linearly inside it. The result
     is clamped into [min_ns, max_ns], which also pins the invariants the
     tests lean on: min <= p50 <= p99 <= max.

     An empty histogram returns 0.0 for every quantile — the clamp path
     must never run with the sentinel min/max of a fresh histogram
     (min_ns = Int64.max_int), so the guard below is load-bearing, not
     cosmetic. Callers can rely on percentile_ns/percentile_us = 0 as
     the "no samples yet" reading. *)
  let percentile_ns t q =
    if t.total = 0 then 0.0
    else begin
      let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
      let rank = q *. float_of_int t.total in
      let rank = if rank < 1.0 then 1.0 else rank in
      let result = ref (Int64.to_float t.max_ns) in
      let cum = ref 0 and found = ref false in
      Array.iteri
        (fun i n ->
          if (not !found) && n > 0 then begin
            let next = !cum + n in
            if float_of_int next >= rank then begin
              let lo = float_of_int (lower_bound_ns i) in
              let hi =
                match upper_bound_ns i with
                | Some b -> float_of_int b
                | None -> Int64.to_float t.max_ns
              in
              let frac = (rank -. float_of_int !cum) /. float_of_int n in
              result := lo +. (frac *. (hi -. lo));
              found := true
            end;
            cum := next
          end
          else if not !found then cum := !cum + n)
        t.counts;
      let lo = Int64.to_float (min_ns t) and hi = Int64.to_float t.max_ns in
      if !result < lo then lo else if !result > hi then hi else !result
    end

  let percentile_us t q = percentile_ns t q /. 1e3

  (* One compact human line: /proc/sched and debug dumps use this. *)
  let render_line t =
    if t.total = 0 then "no samples"
    else
      Printf.sprintf "n=%d avg=%.0fns p50=%.0fns p99=%.0fns max=%Ldns"
        t.total (mean_ns t) (percentile_ns t 0.50) (percentile_ns t 0.99)
        t.max_ns
end

(* ---- the metric registry ---- *)

type metric = {
  m_name : string;  (** Prometheus metric name, e.g. [vos_syscall_service_ns] *)
  m_label : (string * string) option;  (** e.g. [("core", "0")] *)
  m_help : string;  (** # HELP text; "" elides the line *)
  m_hist : Hist.t;
}

type counter = {
  c_name : string;
  c_label : (string * string) option;
  c_help : string;
  c_read : unit -> int;
}

type t = {
  mutable metrics : metric list;  (** newest first; rendered reversed *)
  mutable counters : counter list;
  profile : (int * int * string, int) Hashtbl.t;
      (** (core, pid, attribution) -> samples *)
  mutable profile_samples : int;
  mutable profile_hz : int;  (** 0 = profiler off *)
}

let create () =
  {
    metrics = [];
    counters = [];
    profile = Hashtbl.create 64;
    profile_samples = 0;
    profile_hz = 0;
  }

(* Find-or-create: recording sites grab their histogram once at init and
   hold the [Hist.t] directly, so lookup cost never rides a hot path. *)
let hist t ?label ?(help = "") name =
  let same m = String.equal m.m_name name && m.m_label = label in
  match List.find_opt same t.metrics with
  | Some m -> m.m_hist
  | None ->
      let h = Hist.create () in
      t.metrics <-
        { m_name = name; m_label = label; m_help = help; m_hist = h }
        :: t.metrics;
      h

let register_counter t ?label ?(help = "") name read =
  t.counters <-
    { c_name = name; c_label = label; c_help = help; c_read = read }
    :: t.counters

(* ---- the sampling profiler ---- *)

let sample t ~core ~pid ~where_ =
  let key = (core, pid, where_) in
  Hashtbl.replace t.profile key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.profile key));
  t.profile_samples <- t.profile_samples + 1

let profile_rows t =
  Hashtbl.fold (fun (core, pid, wh) n acc -> (core, pid, wh, n) :: acc) t.profile []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a)

let render_profile t =
  let buf = Buffer.create 512 in
  if t.profile_hz = 0 then Buffer.add_string buf "profiler\t: disabled (profile_hz = 0)\n"
  else begin
    Buffer.add_string buf
      (Printf.sprintf "profile_hz\t: %d\nsamples\t\t: %d\n\n%-6s %-6s %-8s %s\n"
         t.profile_hz t.profile_samples "CORE" "PID" "SAMPLES" "WHERE");
    List.iter
      (fun (core, pid, wh, n) ->
        Buffer.add_string buf (Printf.sprintf "%-6d %-6d %-8d %s\n" core pid n wh))
      (profile_rows t)
  end;
  Buffer.contents buf

(* ---- Prometheus text exposition ---- *)

let label_str = function
  | None -> ""
  | Some (k, v) -> Printf.sprintf "{%s=%S}" k v

let bucket_label extra le =
  match extra with
  | None -> Printf.sprintf "{le=%S}" le
  | Some (k, v) -> Printf.sprintf "{%s=%S,le=%S}" k v le

(* Group registry entries by metric name, preserving first-registration
   order. The exposition format requires all samples of one family to be
   contiguous under a single # TYPE line — the per-core labeled
   histograms register one entry per core under the same name, so
   rendering entry-by-entry would emit duplicate metadata lines (a
   format violation the test suite's exposition parser rejects). *)
let group_by_name entries name_of =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = name_of e in
      if not (Hashtbl.mem tbl name) then begin
        Hashtbl.add tbl name (ref []);
        order := name :: !order
      end;
      let cell = Hashtbl.find tbl name in
      cell := e :: !cell)
    entries;
  List.rev_map (fun name -> (name, List.rev !(Hashtbl.find tbl name))) !order

let add_meta buf ~name ~kind ~help =
  if not (String.equal help "") then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let render_metrics t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, cs) ->
      let help =
        match List.find_opt (fun c -> c.c_help <> "") cs with
        | Some c -> c.c_help
        | None -> ""
      in
      add_meta buf ~name ~kind:"counter" ~help;
      List.iter
        (fun c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" c.c_name (label_str c.c_label)
               (c.c_read ())))
        cs)
    (group_by_name (List.rev t.counters) (fun c -> c.c_name));
  List.iter
    (fun (name, ms) ->
      let help =
        match List.find_opt (fun m -> m.m_help <> "") ms with
        | Some m -> m.m_help
        | None -> ""
      in
      add_meta buf ~name ~kind:"histogram" ~help;
      List.iter
        (fun m ->
          let h = m.m_hist in
          let cum = ref 0 in
          Array.iteri
            (fun i n ->
              cum := !cum + n;
              (* elide empty interior buckets to keep the page readable;
                 the cumulative-count semantics survive because each
                 emitted bucket carries the running total *)
              if n > 0 || i = Hist.buckets - 1 then begin
                let le =
                  match Hist.upper_bound_ns i with
                  | Some b -> string_of_int b
                  | None -> "+Inf"
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                     (bucket_label m.m_label le) !cum)
              end)
            h.Hist.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %Ld\n" m.m_name (label_str m.m_label)
               h.Hist.sum_ns);
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.m_name (label_str m.m_label)
               h.Hist.total))
        ms)
    (group_by_name (List.rev t.metrics) (fun m -> m.m_name));
  Buffer.contents buf
