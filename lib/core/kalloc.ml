(** Physical page allocator and kmalloc.

    Prototypes 2–3 use page-granular allocation only; Prototype 4 adds
    kmalloc for sub-page kernel objects (Table 1, "memory allocator"). The
    accounting here backs /proc/meminfo and the paper's §6.3 claim that
    VOS runs its apps in 21–42 MB of a 1 GB Pi3.

    Frames are bookkeeping only — the simulation has no byte-addressable
    physical memory — but exhaustion, double-free and leak detection are
    real. *)

let page_bytes = 4096

type t = {
  total_pages : int;
  mutable free_pages : int;
  mutable next_frame : int;
  free_list : int Stack.t;
  allocated : (int, string) Hashtbl.t;  (** frame -> owner tag *)
  mutable kmalloc_bytes : int;
  mutable kmalloc_live : int;
  mutable peak_pages : int;
}

let create ~dram_bytes ~kernel_reserved_bytes =
  let total = (dram_bytes - kernel_reserved_bytes) / page_bytes in
  {
    total_pages = total;
    free_pages = total;
    next_frame = 0;
    free_list = Stack.create ();
    allocated = Hashtbl.create 1024;
    kmalloc_bytes = 0;
    kmalloc_live = 0;
    peak_pages = 0;
  }

let alloc_page t ~owner =
  if t.free_pages = 0 then None
  else begin
    let frame =
      if Stack.is_empty t.free_list then begin
        let f = t.next_frame in
        t.next_frame <- f + 1;
        f
      end
      else Stack.pop t.free_list
    in
    t.free_pages <- t.free_pages - 1;
    Hashtbl.replace t.allocated frame owner;
    let used = t.total_pages - t.free_pages in
    if used > t.peak_pages then t.peak_pages <- used;
    Some frame
  end

let alloc_pages t ~owner n =
  let rec go acc k =
    if k = 0 then Some (List.rev acc)
    else
      match alloc_page t ~owner with
      | Some f -> go (f :: acc) (k - 1)
      | None ->
          List.iter (fun f -> Stack.push f t.free_list) acc;
          t.free_pages <- t.free_pages + List.length acc;
          List.iter (Hashtbl.remove t.allocated) acc;
          None
  in
  go [] n

let free_page t frame =
  if not (Hashtbl.mem t.allocated frame) then
    Kpanic.panicf "kalloc: double free of frame %d" frame;
  Hashtbl.remove t.allocated frame;
  Stack.push frame t.free_list;
  t.free_pages <- t.free_pages + 1

let used_pages t = t.total_pages - t.free_pages
let free_pages t = t.free_pages
let total_pages t = t.total_pages
let used_bytes t = used_pages t * page_bytes
let peak_bytes t = t.peak_pages * page_bytes

let pages_owned_by t ~owner =
  Hashtbl.fold
    (fun _ tag acc -> if String.equal tag owner then acc + 1 else acc)
    t.allocated 0

(* kmalloc draws from pages but tracks byte-granular live objects. *)
let kmalloc t ~bytes =
  assert (bytes > 0);
  t.kmalloc_bytes <- t.kmalloc_bytes + bytes;
  t.kmalloc_live <- t.kmalloc_live + 1

let kfree t ~bytes =
  if t.kmalloc_live = 0 then Kpanic.panicf "kalloc: kfree with no live objects";
  t.kmalloc_bytes <- t.kmalloc_bytes - bytes;
  t.kmalloc_live <- t.kmalloc_live - 1

let kmalloc_bytes t = t.kmalloc_bytes
let kmalloc_live t = t.kmalloc_live
