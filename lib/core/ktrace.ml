(** ftrace-style event tracing (§5.1), rebuilt as part of kperf.

    The seed kept one global ring that all cores contended on. Now each
    core can own its ring ({!Kconfig.trace_per_core_rings}): power-of-two
    capacity, bitmask indexing, a pre-filled dummy entry so the hot path
    writes a plain record with no [option] boxing, and a global sequence
    number stamped per entry so a merged {!dump} — sorted by (timestamp,
    sequence) — reproduces exactly the order a single ring would have
    recorded. Span events turn syscalls, IRQ dispatches, context switches
    and block requests into durations; consuming {!reader}s back the
    [/proc/ktrace] trace-pipe; the machine format feeds
    [tools/ktrace2perfetto]. Runtime control (enable, clock, class
    filter) is driven by writes to [/proc/ktrace_ctl]. *)

type event =
  | Syscall_enter of int * string  (** pid, name *)
  | Syscall_exit of int * string
  | Ctx_switch of int * int  (** from pid, to pid *)
  | Irq_enter of string
  | Irq_exit of string
  | Sched_wakeup of int  (** pid made runnable *)
  | Sched_migrate of int * int * int  (** pid, from core, to core *)
  | Ipi_send of int  (** reschedule IPI: target core (entry core = sender) *)
  | Ipi_recv of int  (** reschedule IPI taken on this core *)
  | Kbd_report  (** USB report arrived in the driver *)
  | Event_delivered of int  (** pid that read the input event *)
  | Poll_return of int * int  (** pid, ready-fd count (0 = timeout) *)
  | Frame_present of int  (** pid that pushed a frame *)
  | Wm_composite
  | Lock_acquire of string * int  (** lock name, core *)
  | Lock_release of string * int  (** lock name, core *)
  | Sem_block of int * int  (** pid, sem id *)
  | Sem_wake of int * int  (** pid woken (or -1 if none), sem id *)
  | Custom of string
  | Span_begin of int * int * string  (** span id, pid, operation name *)
  | Span_end of int  (** span id *)
  | Task_state of int * int
      (** pid, new state code (0 runnable, 1 running, 2 blocked, 3
          zombie) — the delay-accounting transition stream; Perfetto
          renders it as a per-task thread-state counter track *)
  | Runq_depth of int * int  (** core, runnable-queue depth after the change *)

type entry = {
  ts_ns : int64;
  seq : int;  (** global emission order, the tie-break for merged dumps *)
  core : int;
  ev : event;
}

(* ---- event classes, for the ktrace_ctl filter ---- *)

(* Bit indices into the filter mask. Spelled out constructor by
   constructor (vlint R004): adding an event forces a classification. *)
let class_of ev =
  match ev with
  | Syscall_enter _ | Syscall_exit _ -> 0
  | Ctx_switch _ | Sched_wakeup _ | Sched_migrate _ | Ipi_send _ | Ipi_recv _
    -> 1
  | Irq_enter _ | Irq_exit _ -> 2
  | Kbd_report | Event_delivered _ | Poll_return _ -> 3
  | Frame_present _ | Wm_composite -> 4
  | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _ -> 5
  | Span_begin _ | Span_end _ -> 6
  | Custom _ -> 7
  | Task_state _ | Runq_depth _ -> 8

let class_names =
  [
    ("syscall", 0);
    ("sched", 1);
    ("irq", 2);
    ("input", 3);
    ("gfx", 4);
    ("lock", 5);
    ("span", 6);
    ("custom", 7);
    ("dstate", 8);
  ]

let filter_all = -1

(* "all" or a comma-separated subset of class names; None = parse error. *)
let filter_of_string s =
  if String.equal s "all" then Some filter_all
  else
    let parts = String.split_on_char ',' (String.trim s) in
    List.fold_left
      (fun acc part ->
        match (acc, List.assoc_opt (String.trim part) class_names) with
        | Some mask, Some bit -> Some (mask lor (1 lsl bit))
        | _, _ -> None)
      (Some 0) parts

(* ---- rings ---- *)

type ring = {
  buf : entry array;  (** power-of-two length, pre-filled (no [option]) *)
  mask : int;  (** length - 1: index = position land mask *)
  mutable head : int;  (** total entries ever written to this ring *)
}

type t = {
  rings : ring array;  (** one per core, or a single shared ring *)
  per_core : bool;
  mutable seq : int;
  mutable next_span : int;
  mutable enabled : bool;
  mutable filter : int;  (** bitmask over {!class_of}; -1 = everything *)
  mutable clock_base : int64;
      (** subtracted from every stamp: 0 = absolute engine time (the
          default), set to "now" by [clock=rel] in /proc/ktrace_ctl *)
  mutable written : int;  (** total emitted across all rings *)
  mutable readers_open : int;  (** open /proc/ktrace handles (wake gate) *)
  mutable dstate : bool;
      (** opt-in for the delay-accounting event stream (Task_state /
          Runq_depth): [dstate=1] in /proc/ktrace_ctl. A separate gate
          from the class filter because [filter_all] would otherwise
          flood armed traces the moment delayacct is on, breaking the
          byte-identity of every existing capture *)
  mutable on_data : (unit -> unit) option;
      (** poked after each emit while a trace-pipe reader is open; the
          kernel wires this to a deferred [Sched.poll_wake] *)
}

let dummy = { ts_ns = 0L; seq = -1; core = 0; ev = Custom "<unwritten>" }

let rec ceil_pow2 n k = if k >= n then k else ceil_pow2 n (k * 2)

let make_ring cap = { buf = Array.make cap dummy; mask = cap - 1; head = 0 }

(* [capacity] is the total entry budget: a per-core tracer divides it
   across the rings so arming the knob does not grow the footprint. *)
let create ?(capacity = 262144) ?(per_core = false) ?(cores = 1) () =
  let nrings = if per_core then max 1 cores else 1 in
  let per_ring = ceil_pow2 (max 1024 (capacity / nrings)) 1 in
  {
    rings = Array.init nrings (fun _ -> make_ring per_ring);
    per_core;
    seq = 0;
    next_span = 0;
    enabled = true;
    filter = filter_all;
    clock_base = 0L;
    written = 0;
    readers_open = 0;
    dstate = false;
    on_data = None;
  }

let set_enabled t on = t.enabled <- on
let set_dstate t on = t.dstate <- on
let set_filter t mask = t.filter <- mask
let set_clock_base t base = t.clock_base <- base
let new_span t =
  t.next_span <- t.next_span + 1;
  t.next_span

let emit t ~ts_ns ~core ev =
  if t.enabled && t.filter land (1 lsl class_of ev) <> 0 then begin
    let r =
      if t.per_core then t.rings.(core land (Array.length t.rings - 1))
      else t.rings.(0)
    in
    r.buf.(r.head land r.mask) <-
      { ts_ns = Int64.sub ts_ns t.clock_base; seq = t.seq; core; ev };
    r.head <- r.head + 1;
    t.seq <- t.seq + 1;
    t.written <- t.written + 1;
    if t.readers_open > 0 then
      match t.on_data with Some poke -> poke () | None -> ()
  end

let written t = t.written

let compare_entry a b =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> compare a.seq b.seq
  | c -> c

(* Merged snapshot, oldest-first by (timestamp, sequence). With a single
   ring the sort is the identity (sequence = insertion order), so the
   seed's dump output is reproduced byte for byte; per-core rings
   interleave back into global emission order. *)
let dump t =
  let collect r =
    let n = min r.head (Array.length r.buf) in
    List.init n (fun i -> r.buf.((r.head - n + i) land r.mask))
  in
  Array.fold_left (fun acc r -> List.rev_append (collect r) acc) [] t.rings
  |> List.sort compare_entry

(* ---- consuming readers: the /proc/ktrace trace-pipe ---- *)

type reader = {
  src : t;
  cursors : int array;  (** per-ring next-unread position *)
  mutable lost : int;  (** entries overwritten before this reader got there *)
}

(* A fresh reader starts at the present: it streams events emitted after
   the open, like catting trace_pipe, rather than replaying the backlog. *)
let new_reader t =
  { src = t; cursors = Array.map (fun r -> r.head) t.rings; lost = 0 }

let reader_lost r = r.lost

let reader_ready r =
  let any = ref false in
  Array.iteri
    (fun i ring -> if r.cursors.(i) < ring.head then any := true)
    r.src.rings;
  !any

(* Drain up to [max] entries in merged (timestamp, sequence) order,
   advancing the cursors past anything returned — and past anything the
   writer already overwrote, which is counted in [lost]. *)
let read_reader r ~max =
  let t = r.src in
  Array.iteri
    (fun i ring ->
      let oldest = ring.head - Array.length ring.buf in
      if r.cursors.(i) < oldest then begin
        r.lost <- r.lost + (oldest - r.cursors.(i));
        r.cursors.(i) <- oldest
      end)
    t.rings;
  let out = ref [] and n = ref 0 and more = ref true in
  while !more && !n < max do
    let best = ref (-1) in
    Array.iteri
      (fun i ring ->
        if r.cursors.(i) < ring.head then
          let e = ring.buf.(r.cursors.(i) land ring.mask) in
          match !best with
          | -1 -> best := i
          | j ->
              let rj = t.rings.(j) in
              let f = rj.buf.(r.cursors.(j) land rj.mask) in
              if compare_entry e f < 0 then best := i)
      t.rings;
    match !best with
    | -1 -> more := false
    | i ->
        let ring = t.rings.(i) in
        out := ring.buf.(r.cursors.(i) land ring.mask) :: !out;
        r.cursors.(i) <- r.cursors.(i) + 1;
        incr n
  done;
  List.rev !out

(* ---- span pairing ---- *)

type span = {
  sp_id : int;
  sp_pid : int;
  sp_name : string;
  sp_core : int;
  sp_begin_ns : int64;
  sp_end_ns : int64;
}

(* Pair up Span_begin/Span_end by id over a merged dump. Returns the
   matched spans (in begin order) and the begins still open at dump time
   (blocked syscalls, in-flight block requests). Every constructor is
   spelled out so R004 forces new events through this classifier too. *)
let pair_spans entries =
  let open_spans = Hashtbl.create 64 in
  let matched = ref [] in
  List.iter
    (fun e ->
      match e.ev with
      | Span_begin (id, _, _) -> Hashtbl.replace open_spans id e
      | Span_end id -> (
          match Hashtbl.find_opt open_spans id with
          | Some b ->
              Hashtbl.remove open_spans id;
              let pid, name =
                match b.ev with
                | Span_begin (_, pid, name) -> (pid, name)
                | Syscall_enter _ | Syscall_exit _ | Ctx_switch _
                | Irq_enter _ | Irq_exit _ | Sched_wakeup _ | Sched_migrate _
                | Ipi_send _ | Ipi_recv _ | Kbd_report | Event_delivered _
                | Poll_return _ | Frame_present _ | Wm_composite
                | Lock_acquire _ | Lock_release _ | Sem_block _ | Sem_wake _
                | Custom _ | Span_end _ | Task_state _ | Runq_depth _ ->
                    (0, "?")
              in
              matched :=
                {
                  sp_id = id;
                  sp_pid = pid;
                  sp_name = name;
                  sp_core = b.core;
                  sp_begin_ns = b.ts_ns;
                  sp_end_ns = e.ts_ns;
                }
                :: !matched
          | None -> ())
      | Syscall_enter _ | Syscall_exit _ | Ctx_switch _ | Irq_enter _
      | Irq_exit _ | Sched_wakeup _ | Sched_migrate _ | Ipi_send _
      | Ipi_recv _ | Kbd_report | Event_delivered _ | Poll_return _
      | Frame_present _ | Wm_composite | Lock_acquire _ | Lock_release _
      | Sem_block _ | Sem_wake _ | Custom _ | Task_state _ | Runq_depth _ ->
          ())
    entries;
  let unmatched = Hashtbl.fold (fun _ e acc -> e :: acc) open_spans [] in
  ( List.sort (fun a b -> compare a.sp_id b.sp_id) !matched,
    List.sort compare_entry unmatched )

(* ---- rendering ---- *)

let describe ev =
  match ev with
  | Syscall_enter (pid, name) -> Printf.sprintf "sys_enter pid=%d %s" pid name
  | Syscall_exit (pid, name) -> Printf.sprintf "sys_exit pid=%d %s" pid name
  | Ctx_switch (a, b) -> Printf.sprintf "ctx_switch %d->%d" a b
  | Irq_enter line -> "irq_enter " ^ line
  | Irq_exit line -> "irq_exit " ^ line
  | Sched_wakeup pid -> Printf.sprintf "wakeup pid=%d" pid
  | Sched_migrate (pid, a, b) ->
      Printf.sprintf "migrate pid=%d core%d->core%d" pid a b
  | Ipi_send target -> Printf.sprintf "ipi_send core%d" target
  | Ipi_recv core -> Printf.sprintf "ipi_recv core%d" core
  | Kbd_report -> "kbd_report"
  | Event_delivered pid -> Printf.sprintf "event_delivered pid=%d" pid
  | Poll_return (pid, nready) ->
      Printf.sprintf "poll_return pid=%d ready=%d" pid nready
  | Frame_present pid -> Printf.sprintf "frame_present pid=%d" pid
  | Wm_composite -> "wm_composite"
  | Lock_acquire (name, core) ->
      Printf.sprintf "lock_acquire %s core%d" name core
  | Lock_release (name, core) ->
      Printf.sprintf "lock_release %s core%d" name core
  | Sem_block (pid, id) -> Printf.sprintf "sem_block pid=%d sem=%d" pid id
  | Sem_wake (pid, id) -> Printf.sprintf "sem_wake pid=%d sem=%d" pid id
  | Custom s -> s
  | Span_begin (id, pid, name) ->
      Printf.sprintf "span_begin id=%d pid=%d %s" id pid name
  | Span_end id -> Printf.sprintf "span_end id=%d" id
  | Task_state (pid, st) -> Printf.sprintf "task_state pid=%d state=%d" pid st
  | Runq_depth (core, depth) ->
      Printf.sprintf "runq_depth core%d depth=%d" core depth

let format_entry e =
  Printf.sprintf "[%10.3f us] core%d %s" (Int64.to_float e.ts_ns /. 1e3) e.core
    (describe e.ev)

(* ---- the machine format: what ktrace2perfetto consumes ---- *)

(* One entry per line: "ts_ns seq core tag args...". Any free-form string
   argument goes last so it may contain spaces. *)
let machine_payload ev =
  match ev with
  | Syscall_enter (pid, name) -> Printf.sprintf "sys_enter %d %s" pid name
  | Syscall_exit (pid, name) -> Printf.sprintf "sys_exit %d %s" pid name
  | Ctx_switch (a, b) -> Printf.sprintf "ctx_switch %d %d" a b
  | Irq_enter line -> "irq_enter " ^ line
  | Irq_exit line -> "irq_exit " ^ line
  | Sched_wakeup pid -> Printf.sprintf "wakeup %d" pid
  | Sched_migrate (pid, a, b) -> Printf.sprintf "migrate %d %d %d" pid a b
  | Ipi_send target -> Printf.sprintf "ipi_send %d" target
  | Ipi_recv core -> Printf.sprintf "ipi_recv %d" core
  | Kbd_report -> "kbd_report"
  | Event_delivered pid -> Printf.sprintf "event_delivered %d" pid
  | Poll_return (pid, nready) -> Printf.sprintf "poll_return %d %d" pid nready
  | Frame_present pid -> Printf.sprintf "frame_present %d" pid
  | Wm_composite -> "wm_composite"
  | Lock_acquire (name, core) -> Printf.sprintf "lock_acquire %d %s" core name
  | Lock_release (name, core) -> Printf.sprintf "lock_release %d %s" core name
  | Sem_block (pid, id) -> Printf.sprintf "sem_block %d %d" pid id
  | Sem_wake (pid, id) -> Printf.sprintf "sem_wake %d %d" pid id
  | Custom s -> "custom " ^ s
  | Span_begin (id, pid, name) -> Printf.sprintf "span_begin %d %d %s" id pid name
  | Span_end id -> Printf.sprintf "span_end %d" id
  | Task_state (pid, st) -> Printf.sprintf "task_state %d %d" pid st
  | Runq_depth (core, depth) -> Printf.sprintf "runq_depth %d %d" core depth

let machine_line e =
  Printf.sprintf "%Ld %d %d %s" e.ts_ns e.seq e.core (machine_payload e.ev)

let write_machine oc entries =
  List.iter (fun e -> output_string oc (machine_line e ^ "\n")) entries

(* The inverse of {!machine_line}; None on anything malformed. *)
let parse_machine_line line =
  let line = String.trim line in
  if String.equal line "" then None
  else
    (* split off the first n space-separated fields, keep the tail *)
    let split_n n s =
      let rec go n s acc =
        if n = 0 then Some (List.rev acc, s)
        else
          match String.index_opt s ' ' with
          | Some i ->
              go (n - 1)
                (String.sub s (i + 1) (String.length s - i - 1))
                (String.sub s 0 i :: acc)
          | None -> if n = 1 then Some (List.rev (s :: acc), "") else None
      in
      go n s []
    in
    let int_of s = int_of_string_opt s in
    match split_n 4 line with
    | Some ([ ts; seq; core; tag ], rest) -> (
        match
          (Int64.of_string_opt ts, int_of seq, int_of core)
        with
        | Some ts_ns, Some seq, Some core ->
            let ints n =
              match split_n n rest with
              | Some (fields, "") ->
                  let vals = List.filter_map int_of fields in
                  if List.length vals = n then Some vals else None
              | Some _ | None -> None
            in
            let int_then_str () =
              match split_n 1 rest with
              | Some ([ a ], s) -> (
                  match int_of a with Some a -> Some (a, s) | None -> None)
              | Some _ | None -> None
            in
            let int2_then_str () =
              match split_n 2 rest with
              | Some ([ a; b ], s) -> (
                  match (int_of a, int_of b) with
                  | Some a, Some b -> Some (a, b, s)
                  | _, _ -> None)
              | Some _ | None -> None
            in
            let ev =
              match tag with
              | "sys_enter" -> (
                  match int_then_str () with
                  | Some (pid, name) -> Some (Syscall_enter (pid, name))
                  | None -> None)
              | "sys_exit" -> (
                  match int_then_str () with
                  | Some (pid, name) -> Some (Syscall_exit (pid, name))
                  | None -> None)
              | "ctx_switch" -> (
                  match ints 2 with
                  | Some [ a; b ] -> Some (Ctx_switch (a, b))
                  | Some _ | None -> None)
              | "irq_enter" -> Some (Irq_enter rest)
              | "irq_exit" -> Some (Irq_exit rest)
              | "wakeup" -> (
                  match ints 1 with
                  | Some [ pid ] -> Some (Sched_wakeup pid)
                  | Some _ | None -> None)
              | "migrate" -> (
                  match ints 3 with
                  | Some [ pid; a; b ] -> Some (Sched_migrate (pid, a, b))
                  | Some _ | None -> None)
              | "ipi_send" -> (
                  match ints 1 with
                  | Some [ c ] -> Some (Ipi_send c)
                  | Some _ | None -> None)
              | "ipi_recv" -> (
                  match ints 1 with
                  | Some [ c ] -> Some (Ipi_recv c)
                  | Some _ | None -> None)
              | "kbd_report" -> Some Kbd_report
              | "event_delivered" -> (
                  match ints 1 with
                  | Some [ pid ] -> Some (Event_delivered pid)
                  | Some _ | None -> None)
              | "poll_return" -> (
                  match ints 2 with
                  | Some [ pid; n ] -> Some (Poll_return (pid, n))
                  | Some _ | None -> None)
              | "frame_present" -> (
                  match ints 1 with
                  | Some [ pid ] -> Some (Frame_present pid)
                  | Some _ | None -> None)
              | "wm_composite" -> Some Wm_composite
              | "lock_acquire" -> (
                  match int_then_str () with
                  | Some (core, name) -> Some (Lock_acquire (name, core))
                  | None -> None)
              | "lock_release" -> (
                  match int_then_str () with
                  | Some (core, name) -> Some (Lock_release (name, core))
                  | None -> None)
              | "sem_block" -> (
                  match ints 2 with
                  | Some [ pid; id ] -> Some (Sem_block (pid, id))
                  | Some _ | None -> None)
              | "sem_wake" -> (
                  match ints 2 with
                  | Some [ pid; id ] -> Some (Sem_wake (pid, id))
                  | Some _ | None -> None)
              | "custom" -> Some (Custom rest)
              | "span_begin" -> (
                  match int2_then_str () with
                  | Some (id, pid, name) -> Some (Span_begin (id, pid, name))
                  | None -> None)
              | "span_end" -> (
                  match ints 1 with
                  | Some [ id ] -> Some (Span_end id)
                  | Some _ | None -> None)
              | "task_state" -> (
                  match ints 2 with
                  | Some [ pid; st ] -> Some (Task_state (pid, st))
                  | Some _ | None -> None)
              | "runq_depth" -> (
                  match ints 2 with
                  | Some [ core; depth ] -> Some (Runq_depth (core, depth))
                  | Some _ | None -> None)
              | _ -> None
            in
            Option.map (fun ev -> { ts_ns; seq; core; ev }) ev
        | _, _, _ -> None)
    | Some _ | None -> None
