(** ftrace-style event tracing (§5.1).

    A fixed-size ring buffer of timestamped events that all cores write
    with negligible overhead; dumped on demand to diagnose scheduler and
    concurrency issues, and mined by the Figure 11 latency-breakdown
    benchmark. *)

type event =
  | Syscall_enter of int * string  (** pid, name *)
  | Syscall_exit of int * string
  | Ctx_switch of int * int  (** from pid, to pid *)
  | Irq_enter of string
  | Irq_exit of string
  | Sched_wakeup of int  (** pid made runnable *)
  | Sched_migrate of int * int * int  (** pid, from core, to core *)
  | Ipi_send of int  (** reschedule IPI: target core (entry core = sender) *)
  | Ipi_recv of int  (** reschedule IPI taken on this core *)
  | Kbd_report  (** USB report arrived in the driver *)
  | Event_delivered of int  (** pid that read the input event *)
  | Poll_return of int * int  (** pid, ready-fd count (0 = timeout) *)
  | Frame_present of int  (** pid that pushed a frame *)
  | Wm_composite
  | Lock_acquire of string * int  (** lock name, core *)
  | Lock_release of string * int  (** lock name, core *)
  | Sem_block of int * int  (** pid, sem id *)
  | Sem_wake of int * int  (** pid woken (or -1 if none), sem id *)
  | Custom of string

type entry = { ts_ns : int64; core : int; ev : event }

type t = {
  ring : entry option array;
  mutable head : int;
  mutable written : int;
  mutable enabled : bool;
}

let create ?(capacity = 262144) () =
  { ring = Array.make capacity None; head = 0; written = 0; enabled = true }

let set_enabled t on = t.enabled <- on

let emit t ~ts_ns ~core ev =
  if t.enabled then begin
    t.ring.(t.head) <- Some { ts_ns; core; ev };
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.written <- t.written + 1
  end

let written t = t.written

(* Entries oldest-first. *)
let dump t =
  let cap = Array.length t.ring in
  let n = min t.written cap in
  let start = (t.head - n + cap) mod cap in
  List.filter_map
    (fun i -> t.ring.((start + i) mod cap))
    (List.init n (fun i -> i))

let describe ev =
  match ev with
  | Syscall_enter (pid, name) -> Printf.sprintf "sys_enter pid=%d %s" pid name
  | Syscall_exit (pid, name) -> Printf.sprintf "sys_exit pid=%d %s" pid name
  | Ctx_switch (a, b) -> Printf.sprintf "ctx_switch %d->%d" a b
  | Irq_enter line -> "irq_enter " ^ line
  | Irq_exit line -> "irq_exit " ^ line
  | Sched_wakeup pid -> Printf.sprintf "wakeup pid=%d" pid
  | Sched_migrate (pid, a, b) ->
      Printf.sprintf "migrate pid=%d core%d->core%d" pid a b
  | Ipi_send target -> Printf.sprintf "ipi_send core%d" target
  | Ipi_recv core -> Printf.sprintf "ipi_recv core%d" core
  | Kbd_report -> "kbd_report"
  | Event_delivered pid -> Printf.sprintf "event_delivered pid=%d" pid
  | Poll_return (pid, nready) ->
      Printf.sprintf "poll_return pid=%d ready=%d" pid nready
  | Frame_present pid -> Printf.sprintf "frame_present pid=%d" pid
  | Wm_composite -> "wm_composite"
  | Lock_acquire (name, core) ->
      Printf.sprintf "lock_acquire %s core%d" name core
  | Lock_release (name, core) ->
      Printf.sprintf "lock_release %s core%d" name core
  | Sem_block (pid, id) -> Printf.sprintf "sem_block pid=%d sem=%d" pid id
  | Sem_wake (pid, id) -> Printf.sprintf "sem_wake pid=%d sem=%d" pid id
  | Custom s -> s

let format_entry e =
  Printf.sprintf "[%10.3f us] core%d %s" (Int64.to_float e.ts_ns /. 1e3) e.core
    (describe e.ev)
