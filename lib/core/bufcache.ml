(** The block buffer cache.

    The seed inherited xv6's design verbatim: fixed-size, single-block
    operations, write-through, an [int list] LRU — and the paper's §5.2
    bypass that sends FAT32 range reads straight to the SD driver because
    that cache bottlenecked multi-block access. This module keeps both of
    those paths selectable (the ablation bench still reproduces the §5.2
    comparison) and rebuilds the hot path around them:

    - an O(1) intrusive doubly-linked LRU (the seed's list LRU was O(n)
      per touch, O(n²) over a scan);
    - optional {e write-back}: [bwrite] marks the block dirty instead of
      paying the device's polling cost; dirty blocks reach the device via
      a periodic engine-scheduled flush daemon, an explicit [flush]
      (fsync / shutdown), or eviction;
    - flushes batch: the dirty set is sorted and fed block-by-block into
      the SD request queue, whose elevator sweep coalesces adjacent blocks
      into single commands ({!Hw.Sd.flush_queue});
    - optional sequential {e read-ahead}: a miss that continues a
      streaming miss pattern fetches [readahead] blocks in one device
      command instead of one.

    Time accounting: CPU cycles are charged to the current syscall context
    ([with_ctx] scopes it); device time is charged as IO time. Flushes run
    by the daemon carry no context — the daemon is a kernel thread polling
    on an otherwise-idle core, so its device time is not billed to the
    task that dirtied the blocks. That asynchrony (plus write absorption
    and command coalescing) is precisely the write-back win the iobench
    experiment measures. A ramdisk backing has no device time — only copy
    cycles. *)

type backing =
  | Ram of Bytes.t  (** the ramdisk image; sector-addressed *)
  | Card of Hw.Sd.t * int  (** SD card + partition start lba *)
  | Usb_msd of Hw.Usb.t  (** USB mass-storage bulk transfers *)

(* A cache entry is its own LRU link: [prev] is toward the MRU end,
   [next] toward the LRU end, so every touch/evict is O(1). *)
type entry = {
  e_key : int;
  mutable e_data : Bytes.t;
  mutable e_dirty : bool; [@locked_by "bclock"]
  mutable e_pinned : bool;
      (** owned by an open journal transaction: must not be evicted or
          reach the device until the transaction commits and unpins it *)
  mutable e_prev : entry option; [@locked_by "bclock"]
  mutable e_next : entry option; [@locked_by "bclock"]
}

type t = {
  backing : backing;
  board : Hw.Board.t;
  block_sectors : int;  (** cached unit: 2 for xv6fs (1 KB), 1 for FAT *)
  capacity : int;  (** blocks held; xv6's NBUF is 30 *)
  writeback : bool;
  readahead : int;  (** blocks prefetched on a streaming miss; 0 = off *)
  coalesce : bool;  (** flushes use the SD queue's adjacent-merge *)
  cache : (int, entry) Hashtbl.t;
  bclock : Spinlock.t;
      (** discipline-only leaf lock (no [~kcheck], no trace events) over
          the intrusive LRU links and the dirty accounting — the state a
          mid-traversal re-entry would corrupt; vrace R101 enforces the
          windows *)
  mutable mru : entry option; [@locked_by "bclock"]
  mutable lru : entry option; [@locked_by "bclock"]
      (** tail: next eviction victim *)
  mutable dirty_count : int; [@locked_by "bclock"]
  mutable next_expected : int;  (** streaming detector, miss-driven *)
  mutable ctx : Sched.ctx option;
  mutable daemon : Sim.Fiber.handle option;
  mutable hits : int;
  mutable misses : int;
  mutable range_reads : int;
  mutable prefetched : int;  (** blocks brought in by read-ahead *)
  mutable flush_batches : int;  (** device commands issued by flushes *)
  mutable flushed_blocks : int;
  mutable evict_writes : int;  (** dirty victims written synchronously *)
  mutable flush_ns : int64;  (** device time spent in flushes (any path) *)
  mutable pinned_count : int;
  mutable barriers : int;  (** ordered-write barriers issued *)
  mutable pre_flush : (unit -> unit) option;
      (** group-commit hook: the flush daemon runs this before each
          periodic flush so an open journal transaction can commit and
          release its pins in the same sweep *)
  mutable in_pre_flush : bool;
  mutable obs : Sched.t option;
      (** kperf observer: when set, device requests record into the SD
          latency histogram and emit trace spans. Host-side bookkeeping
          only — never charges cycles, so BENCH output is unchanged. *)
}

let create ~board ~backing ~block_sectors ?(capacity = 30) ?(writeback = false)
    ?(readahead = 0) ?(coalesce = true) () =
  {
    backing;
    board;
    block_sectors;
    capacity;
    writeback;
    readahead;
    coalesce;
    cache = Hashtbl.create 64;
    bclock = Spinlock.create "bclock";
    mru = None;
    lru = None;
    dirty_count = 0;
    next_expected = min_int;
    ctx = None;
    daemon = None;
    hits = 0;
    misses = 0;
    range_reads = 0;
    prefetched = 0;
    flush_batches = 0;
    flushed_blocks = 0;
    evict_writes = 0;
    flush_ns = 0L;
    pinned_count = 0;
    barriers = 0;
    pre_flush = None;
    in_pre_flush = false;
    obs = None;
  }

let set_observer t sched = t.obs <- Some sched
let set_pre_flush t hook = t.pre_flush <- Some hook

let with_ctx t ctx f =
  let saved = t.ctx in
  t.ctx <- Some ctx;
  let finally () = t.ctx <- saved in
  match f () with
  | result ->
      finally ();
      result
  | exception e ->
      finally ();
      raise e

let charge_cycles t cycles =
  match t.ctx with Some ctx -> Sched.charge ctx cycles | None -> ()

let charge_io t ns =
  match t.ctx with
  | Some ctx -> Sched.charge_io ctx (Hw.Board.io_ns t.board ns)
  | None -> ()

(* A device request becomes a span [now, now + cost): the end event is
   stamped in the future because the request's virtual time is charged to
   the caller rather than simulated inline. The merged dump sorts by
   timestamp, so the pair still reads as a duration. *)
let observe_sd t ~op ~cost =
  match t.obs with
  | None -> ()
  | Some sched ->
      let io_ns = Hw.Board.io_ns t.board cost in
      Kperf.Hist.record sched.Sched.h_sd_req io_ns;
      let tr = sched.Sched.trace in
      let pid =
        match t.ctx with Some c -> c.Sched.task.Task.pid | None -> 0
      in
      let span = Ktrace.new_span tr in
      let now = Sched.now sched in
      Ktrace.emit tr ~ts_ns:now ~core:0 (Ktrace.Span_begin (span, pid, op));
      Ktrace.emit tr ~ts_ns:(Int64.add now io_ns) ~core:0 (Ktrace.Span_end span);
      (* sd:issue fires at request submission, sd:complete carries the
         modeled device latency — both host-side, stamped now *)
      let vp = sched.Sched.vprobe in
      if Vprobe.armed vp Vprobe.pt_sd_issue then
        Vprobe.fire vp Vprobe.pt_sd_issue
          { Vprobe.no_args with Vprobe.a_pid = pid };
      if Vprobe.armed vp Vprobe.pt_sd_complete then
        Vprobe.fire vp Vprobe.pt_sd_complete
          { Vprobe.no_args with Vprobe.a_pid = pid;
            Vprobe.a_latency_ns = io_ns }

(* bufcache:hit / bufcache:miss, with the block number as arg0. *)
let fire_cache_probe t ~hit ~block =
  match t.obs with
  | None -> ()
  | Some sched ->
      let vp = sched.Sched.vprobe in
      let pt = if hit then Vprobe.pt_bufcache_hit else Vprobe.pt_bufcache_miss in
      if Vprobe.armed vp pt then
        let pid =
          match t.ctx with Some c -> c.Sched.task.Task.pid | None -> 0
        in
        Vprobe.fire vp pt
          { Vprobe.no_args with Vprobe.a_pid = pid; Vprobe.a_arg0 = block }

let block_bytes t = t.block_sectors * Fs.Blockdev.sector_bytes

(* Read commands issued for one block before a persistent error is
   fatal; real SDHCI drivers carry the same small CRC-retry budget. *)
let sd_read_attempts = 4

(* raw device access in sectors *)
let device_read t ~lba ~count =
  match t.backing with
  | Ram image ->
      charge_cycles t (Kcost.copy_cycles ~bytes:(count * Fs.Blockdev.sector_bytes));
      Bytes.sub image (lba * Fs.Blockdev.sector_bytes)
        (count * Fs.Blockdev.sector_bytes)
  | Card (sd, first) ->
      (* A failed read is retried like a real polled driver re-issues a
         command after a CRC error — each attempt still pays the wire
         time. Transient faults (the fuzzer's marginal-card injection)
         clear within the budget; a persistent error is fatal as
         before, just [sd_read_attempts] commands later. *)
      let rec attempt n =
        match Hw.Sd.read sd ~lba:(first + lba) ~count with
        | Ok (data, cost) ->
            charge_io t cost;
            observe_sd t ~op:"sd:read" ~cost;
            data
        | Error e ->
            let cost = Hw.Sd.cost_ns ~count in
            charge_io t cost;
            observe_sd t ~op:"sd:read-retry" ~cost;
            if n + 1 < sd_read_attempts then attempt (n + 1)
            else Kpanic.panicf "%s (after %d attempts)" e sd_read_attempts
      in
      attempt 0
  | Usb_msd usb -> (
      match Hw.Usb.msd_read usb ~lba ~count with
      | Ok (data, cost) ->
          charge_io t cost;
          observe_sd t ~op:"usb:read" ~cost;
          data
      | Error e -> Kpanic.panicf "%s" e)

let device_write t ~lba data =
  match t.backing with
  | Ram image ->
      charge_cycles t (Kcost.copy_cycles ~bytes:(Bytes.length data));
      (* The ramdisk image plays the role of the medium for crash
         injection: the power rail budgets its sectors exactly like the
         card's, so a cut freezes the image at a write prefix. With no
         cut scheduled the budget always grants in full. *)
      let sectors = Bytes.length data / Fs.Blockdev.sector_bytes in
      let granted =
        Hw.Power.media_budget t.board.Hw.Board.supply ~sectors
      in
      if granted > 0 then
        Bytes.blit data 0 image
          (lba * Fs.Blockdev.sector_bytes)
          (granted * Fs.Blockdev.sector_bytes)
  | Card (sd, first) -> (
      match Hw.Sd.write sd ~lba:(first + lba) ~data with
      | Ok cost ->
          charge_io t cost;
          observe_sd t ~op:"sd:write" ~cost
      | Error e -> Kpanic.panicf "%s" e)
  | Usb_msd usb -> (
      match Hw.Usb.msd_write usb ~lba ~data with
      | Ok cost ->
          charge_io t cost;
          observe_sd t ~op:"usb:write" ~cost
      | Error e -> Kpanic.panicf "%s" e)

let device_sectors t =
  match t.backing with
  | Ram image -> Bytes.length image / Fs.Blockdev.sector_bytes
  | Card (sd, first) -> Hw.Sd.sectors sd - first
  | Usb_msd usb -> Hw.Usb.msd_sectors usb

(* ---- the O(1) LRU list ---- *)

let lru_unlink t e =
  Spinlock.protect t.bclock (fun () ->
      (match e.e_prev with
      | Some p -> p.e_next <- e.e_next
      | None -> t.mru <- e.e_next);
      (match e.e_next with
      | Some n -> n.e_prev <- e.e_prev
      | None -> t.lru <- e.e_prev);
      e.e_prev <- None;
      e.e_next <- None)

let lru_push_front t e =
  Spinlock.protect t.bclock (fun () ->
      e.e_next <- t.mru;
      (match t.mru with
      | Some m -> m.e_prev <- Some e
      | None -> t.lru <- Some e);
      t.mru <- Some e)

let lru_touch t e =
  match t.mru with
  | Some m when m == e -> ()
  | _ ->
      lru_unlink t e;
      lru_push_front t e

let set_dirty t e d =
  if e.e_dirty <> d then
    Spinlock.protect t.bclock (fun () ->
        e.e_dirty <- d;
        t.dirty_count <- t.dirty_count + (if d then 1 else -1))

(* Evict the LRU victim; a dirty victim pays its deferred device write
   synchronously (the honest backpressure path when the flush daemon has
   fallen behind or is not running). Pinned blocks are journal-owned and
   skipped — evicting (and thus writing) one before its transaction
   commits would break the write-ahead invariant. Returns whether a
   victim was found. *)
let evict_victim t =
  let rec unpinned = function
    | None -> None
    | Some v when v.e_pinned -> unpinned v.e_prev
    | Some v -> Some v
  in
  match unpinned t.lru with
  | None -> false
  | Some v ->
      if v.e_dirty then begin
        t.evict_writes <- t.evict_writes + 1;
        t.flushed_blocks <- t.flushed_blocks + 1;
        set_dirty t v false;
        device_write t ~lba:(v.e_key * t.block_sectors) v.e_data
      end;
      lru_unlink t v;
      Hashtbl.remove t.cache v.e_key;
      true

let insert t key data ~dirty =
  (* if every block is pinned the cache temporarily overflows its
     capacity rather than violate the journal's write ordering *)
  while Hashtbl.length t.cache >= t.capacity && evict_victim t do
    ()
  done;
  let e =
    {
      e_key = key;
      e_data = data;
      e_dirty = false;
      e_pinned = false;
      e_prev = None;
      e_next = None;
    }
  in
  if dirty then set_dirty t e true;
  Hashtbl.replace t.cache key e;
  lru_push_front t e

(* ---- flush ---- *)

(* Push every dirty block to the device. Blocks are sorted and grouped so
   that contiguous runs become single commands: through the SD request
   queue (elevator + coalescing) for a card backing, or a direct merged
   range write otherwise. Returns the number of device commands issued. *)
let flush t =
  (* pinned dirty blocks stay behind: they belong to an uncommitted
     journal transaction and may only reach the device after its commit
     record is on media (the commit path unpins them) *)
  let dirty =
    Hashtbl.fold
      (fun _ e acc -> if e.e_dirty && not e.e_pinned then e :: acc else acc)
      t.cache []
  in
  if dirty = [] then 0
  else begin
    let dirty = List.sort (fun a b -> compare a.e_key b.e_key) dirty in
    let n = List.length dirty in
    charge_cycles t (Kcost.bufcache_flush_setup + (n * Kcost.bufcache_flush_block));
    let batches =
      match t.backing with
      | Card (sd, first) ->
          List.iter
            (fun e ->
              match
                Hw.Sd.enqueue_write sd
                  ~lba:(first + (e.e_key * t.block_sectors))
                  ~data:e.e_data
              with
              | Ok () -> ()
              | Error msg -> Kpanic.panicf "%s" msg)
            dirty;
          (match Hw.Sd.flush_queue ~coalesce:t.coalesce sd with
          | Ok (cost, commands) ->
              t.flush_ns <- Int64.add t.flush_ns cost;
              charge_io t cost;
              observe_sd t ~op:"sd:flush" ~cost;
              commands
          | Error msg -> Kpanic.panicf "%s" msg)
      | Ram _ | Usb_msd _ ->
          (* group contiguous keys into one range write per run *)
          let runs =
            List.fold_left
              (fun acc e ->
                match acc with
                | (last :: _ as run) :: rest
                  when t.coalesce && last.e_key + 1 = e.e_key ->
                    (e :: run) :: rest
                | _ -> [ e ] :: acc)
              [] dirty
            |> List.rev_map List.rev
          in
          List.iter
            (fun run ->
              let bytes = block_bytes t in
              let data = Bytes.create (List.length run * bytes) in
              List.iteri
                (fun i e -> Bytes.blit e.e_data 0 data (i * bytes) bytes)
                run;
              device_write t
                ~lba:((List.hd run).e_key * t.block_sectors)
                data)
            runs;
          List.length runs
    in
    List.iter (fun e -> set_dirty t e false) dirty;
    t.flush_batches <- t.flush_batches + batches;
    t.flushed_blocks <- t.flushed_blocks + n;
    batches
  end

(* A flush on behalf of the daemon: device time goes to the daemon's
   core, not to whatever syscall context happens to be live. The
   pre-flush hook gives the journal its group-commit ride: the daemon
   commits whatever transaction blocks have accumulated, which unpins
   them, and the flush right after carries them out. The hook itself
   drives flushes (commit barriers), so re-entry is suppressed. *)
let flush_async t =
  let saved = t.ctx in
  t.ctx <- None;
  (match t.pre_flush with
  | Some hook when not t.in_pre_flush ->
      t.in_pre_flush <- true;
      let finally () = t.in_pre_flush <- false in
      (try hook ()
       with e ->
         finally ();
         raise e);
      finally ()
  | Some _ | None -> ());
  let batches = flush t in
  t.ctx <- saved;
  batches

(* The write paths wake the flusher early once half the cache is dirty,
   like a real write-back cache's watermark; only meaningful when the
   daemon exists (otherwise eviction provides the backpressure). *)
let maybe_wake_flusher t =
  if t.daemon <> None && t.dirty_count >= max 1 (t.capacity / 2) then
    ignore (flush_async t)

let start_flush_daemon t ~interval_ms =
  let engine = t.board.Hw.Board.engine in
  let period = Sim.Engine.ms (max 1 interval_ms) in
  (match t.daemon with
  | Some h -> Sim.Fiber.cancel engine h
  | None -> ());
  (* The daemon is a fiber: flush, park for a period, repeat — one engine
     event per tick, same cadence as the closure chain it replaces. *)
  t.daemon <-
    Some
      (Sim.Fiber.spawn engine ~after:period (fun () ->
           while true do
             ignore (flush_async t);
             Sim.Fiber.sleep period
           done))

let stop_flush_daemon t =
  match t.daemon with
  | Some h ->
      Sim.Fiber.cancel t.board.Hw.Board.engine h;
      t.daemon <- None
  | None -> ()

(* ---- reads ---- *)

(* Block numbers arrive from on-disk metadata, which a hostile or
   corrupt image controls; an out-of-range block must die as a clean
   panic naming the block, not as Bytes.sub blowing up inside the
   backing store. *)
let check_block t n =
  let blocks = device_sectors t / t.block_sectors in
  if n < 0 || n >= blocks then
    Kpanic.panicf "bufcache: block %d out of range (device has %d blocks)" n
      blocks

(* Single-block read through the cache (block number in cache units). *)
let bread t n =
  check_block t n;
  charge_cycles t Kcost.bufcache_hit;
  match Hashtbl.find_opt t.cache n with
  | Some e ->
      t.hits <- t.hits + 1;
      fire_cache_probe t ~hit:true ~block:n;
      lru_touch t e;
      Bytes.copy e.e_data
  | None ->
      t.misses <- t.misses + 1;
      fire_cache_probe t ~hit:false ~block:n;
      charge_cycles t Kcost.bufcache_miss_extra;
      let streaming = n = t.next_expected in
      let ra =
        if streaming && t.readahead > 1 then
          (* don't let one prefetch wash out the cache, or run off the
             end of the device *)
          min
            (min t.readahead (max 2 (t.capacity / 2)))
            ((device_sectors t / t.block_sectors) - n)
        else 0
      in
      if ra > 1 then begin
        (* streaming: fetch [n, n+ra) in one device command *)
        charge_cycles t Kcost.readahead_setup;
        let data = device_read t ~lba:(n * t.block_sectors) ~count:(ra * t.block_sectors) in
        let bytes = block_bytes t in
        (* insert back-to-front so the demanded block ends up MRU *)
        for i = ra - 1 downto 0 do
          let key = n + i in
          let blk = Bytes.sub data (i * bytes) bytes in
          match Hashtbl.find_opt t.cache key with
          | Some e ->
              (* never clobber a dirty block with stale device data *)
              if not e.e_dirty then e.e_data <- blk
          | None ->
              insert t key blk ~dirty:false;
              if i > 0 then t.prefetched <- t.prefetched + 1
        done;
        t.next_expected <- n + ra;
        Bytes.sub data 0 bytes
      end
      else begin
        t.next_expected <- n + 1;
        let data = device_read t ~lba:(n * t.block_sectors) ~count:t.block_sectors in
        insert t n (Bytes.copy data) ~dirty:false;
        data
      end

(* ---- writes ---- *)

let bwrite t n data =
  assert (Bytes.length data = block_bytes t);
  check_block t n;
  charge_cycles t Kcost.bufcache_hit;
  if t.writeback then begin
    charge_cycles t Kcost.bufcache_dirty_mark;
    (match Hashtbl.find_opt t.cache n with
    | Some e ->
        e.e_data <- Bytes.copy data;
        set_dirty t e true;
        lru_touch t e
    | None -> insert t n (Bytes.copy data) ~dirty:true);
    maybe_wake_flusher t
  end
  else begin
    match Hashtbl.find_opt t.cache n with
    | Some e when e.e_pinned ->
        (* journal-owned: even a write-through cache must defer this
           block until its transaction commits and unpins it *)
        e.e_data <- Bytes.copy data;
        set_dirty t e true;
        lru_touch t e
    | Some e ->
        e.e_data <- Bytes.copy data;
        lru_touch t e;
        device_write t ~lba:(n * t.block_sectors) data
    | None ->
        insert t n (Bytes.copy data) ~dirty:false;
        device_write t ~lba:(n * t.block_sectors) data
  end

(* ---- journal support: pinning and the ordered-write barrier ---- *)

(* Pin (or release) a block on behalf of a journal transaction. Pinning
   faults the block in if needed — the transaction is about to overwrite
   it, and the pin must be in place before the write so neither the
   flush daemon nor eviction can push the uncommitted version. *)
let pin t n ~pin =
  match Hashtbl.find_opt t.cache n with
  | Some e ->
      if e.e_pinned <> pin then begin
        e.e_pinned <- pin;
        t.pinned_count <- t.pinned_count + (if pin then 1 else -1)
      end
  | None ->
      if pin then begin
        ignore (bread t n);
        match Hashtbl.find_opt t.cache n with
        | Some e ->
            e.e_pinned <- true;
            t.pinned_count <- t.pinned_count + 1
        | None -> Kpanic.panicf "bufcache: cannot pin block %d" n
      end

(* Ordered-write barrier: every unpinned dirty block is on the medium
   when this returns, and the device queue is drained so the elevator
   cannot reorder a later write ahead of an earlier one across the
   barrier. This is what makes the journal's commit point a real point:
   log data < commit record < install < clear. Free on a clean cache. *)
let barrier t =
  ignore (flush t);
  t.barriers <- t.barriers + 1;
  match t.backing with
  | Card (sd, _) -> (
      match Hw.Sd.barrier ~coalesce:t.coalesce sd with
      | Ok (cost, commands) ->
          if commands > 0 then begin
            t.flush_ns <- Int64.add t.flush_ns cost;
            charge_io t cost;
            observe_sd t ~op:"sd:barrier" ~cost;
            t.flush_batches <- t.flush_batches + commands
          end
      | Error msg -> Kpanic.panicf "%s" msg)
  | Ram _ | Usb_msd _ -> ()

(* The §5.2 bypass: a multi-sector read straight to the device, skipping
   the cache (and so paying the command overhead only once). Under
   write-back, cached dirty sectors shadow the device image. *)
let read_range_direct t ~lba ~count =
  t.range_reads <- t.range_reads + 1;
  let out = device_read t ~lba ~count in
  if t.writeback && t.block_sectors = 1 then
    for i = 0 to count - 1 do
      match Hashtbl.find_opt t.cache (lba + i) with
      | Some e when e.e_dirty ->
          Bytes.blit e.e_data 0 out (i * Fs.Blockdev.sector_bytes)
            Fs.Blockdev.sector_bytes
      | Some _ | None -> ()
    done;
  out

(* The pre-optimization path for ranges: sector-by-sector through the
   cache — one device command per miss, unless read-ahead batches the
   streaming pattern. *)
let read_range_cached t ~lba ~count =
  assert (t.block_sectors = 1);
  let out = Bytes.create (count * Fs.Blockdev.sector_bytes) in
  for i = 0 to count - 1 do
    let sector = bread t (lba + i) in
    Bytes.blit sector 0 out (i * Fs.Blockdev.sector_bytes)
      Fs.Blockdev.sector_bytes
  done;
  out

let write_range t ~lba data =
  let sectors = Bytes.length data / Fs.Blockdev.sector_bytes in
  if t.writeback && t.block_sectors = 1 && sectors <= max 1 (t.capacity / 4)
  then begin
    (* absorb small ranges as dirty blocks; the flush path batches them *)
    charge_cycles t (Kcost.bufcache_dirty_mark * sectors);
    for i = 0 to sectors - 1 do
      let key = lba + i in
      let blk =
        Bytes.sub data (i * Fs.Blockdev.sector_bytes) Fs.Blockdev.sector_bytes
      in
      match Hashtbl.find_opt t.cache key with
      | Some e ->
          e.e_data <- blk;
          set_dirty t e true;
          lru_touch t e
      | None -> insert t key blk ~dirty:true
    done;
    maybe_wake_flusher t
  end
  else begin
    (* large ranges go straight to the device in one command; cached
       copies are refreshed and now clean (they match the device) *)
    if t.block_sectors = 1 then
      for i = 0 to sectors - 1 do
        match Hashtbl.find_opt t.cache (lba + i) with
        | Some e ->
            e.e_data <-
              Bytes.sub data (i * Fs.Blockdev.sector_bytes)
                Fs.Blockdev.sector_bytes;
            set_dirty t e false
        | None -> ()
      done;
    device_write t ~lba data
  end

(* ---- filesystem adapters ---- *)

let xv6_io t : Fs.Xv6fs.io =
  assert (t.block_sectors = 2);
  {
    Fs.Xv6fs.bread = (fun n -> bread t n);
    bwrite = (fun n b -> bwrite t n b);
    bsync = (fun () -> barrier t);
    bpin = (fun n ~pin:p -> pin t n ~pin:p);
  }

let fat_io t ~range_bypass : Fs.Fat32.io =
  assert (t.block_sectors = 1);
  let read ~lba ~count =
    if count = 1 then bread t lba
    else if range_bypass then read_range_direct t ~lba ~count
    else read_range_cached t ~lba ~count
  in
  let write ~lba ~data =
    if Bytes.length data = Fs.Blockdev.sector_bytes then bwrite t lba data
    else write_range t ~lba data
  in
  { Fs.Fat32.read; write }

(* ---- stats ---- *)

let hits t = t.hits
let misses t = t.misses
let range_reads t = t.range_reads
let dirty_blocks t = t.dirty_count
let prefetched t = t.prefetched
let flush_batches t = t.flush_batches
let flushed_blocks t = t.flushed_blocks
let evict_writes t = t.evict_writes
let flush_ns t = t.flush_ns
let pinned_blocks t = t.pinned_count
let barrier_count t = t.barriers

(* The raw backing image of a ramdisk-backed cache — the crash tests
   remount it after a power cut, the way a real reboot would re-read the
   card. [None] for device backings (use the device's image instead). *)
let backing_image t = match t.backing with Ram i -> Some i | Card _ | Usb_msd _ -> None
