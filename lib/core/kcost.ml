(** Cycle-cost calibration for kernel paths.

    Each constant is a cycle count on the 1 GHz Cortex-A53 and carries the
    paper number it is calibrated against. These are {e inputs} to the
    simulation: the evaluation's latencies and throughputs are measured
    outcomes of many such charges composing (e.g. the 21 µs IPC figure is
    never written down anywhere — it emerges from syscall entry + copy +
    wakeup + context switch + scheduling delay). *)

(* Trap entry + register save + dispatch + restore + eret. Figure 8 puts a
   full getpid round-trip at ~3 us. *)
let syscall_entry = 1_400
let syscall_exit = 1_300
let syscall_dispatch = 250

(* Context switch: save/restore EL1 state, switch ttbr0, scheduler pick.
   A component of the 21 us one-way IPC (Figure 8). *)
let ctx_switch = 10_200
let sched_pick = 2_600

(* Interrupt entry/exit around the handler body. *)
let irq_entry = 800
let irq_exit = 600
let timer_tick_work = 1_200

(* Copies: bytes per cycle for kernel memmove (the hand-written ARMv8
   assembly of §5.2 moves ~8 B/cycle; the byte-loop fallback ~1 B/cycle). *)
let copy_cycles ~bytes = max 64 (bytes / 8)
let slow_copy_cycles ~bytes = max 64 bytes

(* Task lifecycle. fork's dominant term is the eager page copy: VOS lacks
   lazy page-table replication (§6.2), so cost scales with resident pages. *)
let fork_base = 9_000
let fork_per_page = 950 (* copy 4 KB + map: ~1 us per page *)
let exec_base = 14_000
let exec_per_page = 700
let exit_teardown = 6_000
let wait_reap = 2_500
let clone_base = 7_500 (* shares the mm: no page copies *)

(* Memory. *)
let sbrk_per_page = 600
let page_fault = 3_800 (* demand-paged stack growth *)
let cache_flush_per_row = 140 (* DC CVAC over one framebuffer row *)

(* Files. *)
let fd_lookup = 180
let vfs_dispatch = 320
let bufcache_hit = 700
let bufcache_miss_extra = 900 (* bookkeeping on top of the device time *)

(* Write-back cache paths. The dirty mark and LRU relink are O(1) pointer
   ops; the flush walk sorts the dirty set and stages each block into a
   batch for the SD request queue; the read-ahead setup is the streaming
   detector plus one prefetch command's argument marshalling. *)
let bufcache_dirty_mark = 300
let bufcache_flush_setup = 900
let bufcache_flush_block = 250
let readahead_setup = 500
let pseudo_inode = 450 (* FAT path interposition (§4.5) *)

(* Pipes: xv6's 512-byte buffer, byte-at-a-time copy loop. The paper's
   Figure 11 calls pipe a bottleneck even for 10-byte events. *)
let pipe_buffer_bytes = 512
let pipe_setup = 2_200
let pipe_per_byte = 28

(* poll: per-fd readiness probe (fd lookup + one vtable call); charged on
   every scan, including the recheck after each wakeup. *)
let poll_fd_check = 180

(* Wakeups and semaphores. *)
let wakeup = 2_900
let sem_op = 650

(* Cross-core scheduling. An IPI is the sender's local-mailbox write plus
   the interconnect + GICD propagation until the target's vector entry
   (~2 us on the A53, vs the up-to-1 ms tick-polling a WFI'd core pays
   without it); the handler body is the reschedule check. A migrated task
   refills L1/L2 on its new core — charged up front at its first dispatch
   there when the affinity model is on. The balance pass walks four queue
   depths and requeues the surplus. *)
let ipi_send = 150
let ipi_latency = 1_800
let ipi_handler = 900
let sched_migrate = 4_500
let load_balance_pass = 2_000

(* Window manager compositing: per-pixel blend cost and per-window
   bookkeeping (the ~800 SLoC WM of §4.5). *)
let wm_per_pixel_opaque = 1 (* NEON copy path: ~1 cycle/pixel *)
let wm_per_pixel_alpha = 4
let wm_per_window = 2_000

(* Keyboard path: HID report parse + ring-buffer insert. *)
let kbd_report_parse = 1_500
let event_copy = 400

(* Audio path: per-sample copy into the driver ring buffer. *)
let audio_per_sample = 6

(* UART console: per-character polling loop overhead on top of the wire
   time the device model charges. *)
let uart_poll_loop = 150
