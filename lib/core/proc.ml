(** Process and thread syscalls: fork, exec, wait, kill, clone, join,
    sbrk, sleep.

    The cost structure follows the paper's findings: fork is eager — it
    copies every resident page, which is why Figure 9 shows it much slower
    than production OSes with lazy replication; exec's cost scales with the
    loaded image; clone(CLONE_VM) shares the mm and so is cheap. *)

type t = {
  sched : Sched.t;
  fdt : Fd.t;
  vfs : Vfs.t;
  sems : Sem.t;
  progs : (string, string list -> int) Hashtbl.t;
  kalloc : Kalloc.t;
  config : Kconfig.t;
}

let create ~sched ~fdt ~vfs ~sems ~kalloc ~config =
  { sched; fdt; vfs; sems; progs = Hashtbl.create 32; kalloc; config }

let register_program t name main = Hashtbl.replace t.progs name main

let err ctx e = Sched.finish ctx (Abi.R_int (-e))

let sys_fork ctx t child_main =
  let parent = ctx.Sched.task in
  match parent.Task.vm with
  | None ->
      (* kernel task forking: plain spawn *)
      let child =
        Sched.spawn t.sched ~name:parent.Task.name ~kind:parent.Task.kind
          ~parent:parent.Task.pid child_main
      in
      Sched.charge ctx Kcost.fork_base;
      Sched.kcheck_audit t.sched
        ~reason:(Printf.sprintf "fork %d -> %d" parent.Task.pid
                   child.Task.pid);
      Sched.finish ctx (Abi.R_int child.Task.pid)
  | Some vm -> (
      match Vm.fork_copy vm with
      | Error _ -> err ctx Errno.enomem
      | Ok (child_vm, pages_copied) ->
          Sched.charge ctx
            (Kcost.fork_base + (Kcost.fork_per_page * pages_copied));
          let child =
            Sched.spawn t.sched ~name:parent.Task.name ~kind:Task.User
              ~vm:child_vm ~parent:parent.Task.pid child_main
          in
          child.Task.cwd <- parent.Task.cwd;
          Fd.clone_table t.fdt ~parent:parent.Task.pid ~child:child.Task.pid;
          Sem.fork t.sems ~parent:parent.Task.pid ~child:child.Task.pid;
          Sched.kcheck_audit t.sched
            ~reason:(Printf.sprintf "fork %d -> %d" parent.Task.pid
                       child.Task.pid);
          Sched.finish ctx (Abi.R_int child.Task.pid))

let sys_exec ctx t path argv =
  match Vfs.read_whole ctx t.vfs path with
  | Error e -> err ctx e
  | Ok image -> (
      match Velf.parse image with
      | Error _ -> err ctx Errno.einval
      | Ok velf -> (
          match Hashtbl.find_opt t.progs velf.Velf.prog_name with
          | None -> err ctx Errno.enoent
          | Some main ->
              let task = ctx.Sched.task in
              let pages = Velf.code_pages velf in
              (match task.Task.vm with
              | Some old -> Vm.destroy old
              | None -> ());
              (match Vm.create t.kalloc ~code_pages:pages with
              | Error _ -> err ctx Errno.enomem
              | Ok vm ->
                  task.Task.vm <- Some vm;
                  task.Task.name <- velf.Velf.prog_name;
                  Sched.charge ctx
                    (Kcost.exec_base + (Kcost.exec_per_page * pages));
                  Sched.exec_replace ctx (fun () -> main argv))))

let sys_wait ctx t =
  let parent = ctx.Sched.task in
  let rec attempt () =
    if parent.Task.children = [] then err ctx Errno.echild
    else begin
      let zombie =
        List.find_map
          (fun pid ->
            match Sched.task_by_pid t.sched pid with
            | Some child when child.Task.state = Task.Zombie -> Some child
            | Some _ | None -> None)
          parent.Task.children
      in
      match zombie with
      | Some child ->
          Sched.charge ctx Kcost.wait_reap;
          Sched.reap t.sched child;
          Sched.finish ctx (Abi.R_int child.Task.pid)
      | None ->
          Sched.block ctx
            ~chan:(Printf.sprintf "children:%d" parent.Task.pid)
            ~retry:attempt
    end
  in
  attempt ()

(* kill(2), VOS dialect: there are no signals and no process groups, so
   kill is always terminal and only positive pids address anything —
   pid <= 0 (POSIX's group/broadcast forms) is EINVAL, not a wildcard
   massacre. A zombie has already exited: a second kill reports ESRCH
   rather than pretending to deliver. Self-kill is legal; the killed
   flag is honored at the next preemption point, after this syscall
   returns 0 to the (now doomed) caller. *)
let sys_kill ctx t pid =
  if pid <= 0 then err ctx Errno.einval
  else
    match Sched.task_by_pid t.sched pid with
    | None -> err ctx Errno.esrch
    | Some victim when victim.Task.state = Task.Zombie -> err ctx Errno.esrch
    | Some victim ->
        Sched.charge ctx Kcost.wakeup;
        Sched.force_kill t.sched victim;
        Sched.finish ctx (Abi.R_int 0)

let sys_clone ctx t thread_main =
  if not t.config.Kconfig.syscalls_threads then err ctx Errno.enosys
  else begin
    let parent = ctx.Sched.task in
    let vm = Option.map Vm.share parent.Task.vm in
    Sched.charge ctx Kcost.clone_base;
    let child =
      Sched.spawn t.sched
        ~name:(parent.Task.name ^ "-thr")
        ~kind:parent.Task.kind ?vm ~parent:parent.Task.pid thread_main
    in
    child.Task.cwd <- parent.Task.cwd;
    Fd.share_table t.fdt ~parent:parent.Task.pid ~child:child.Task.pid;
    Sem.share t.sems ~parent:parent.Task.pid ~child:child.Task.pid;
    Sched.kcheck_audit t.sched
      ~reason:(Printf.sprintf "clone %d -> %d" parent.Task.pid child.Task.pid);
    Sched.finish ctx (Abi.R_int child.Task.pid)
  end

let sys_join ctx t tid =
  let rec attempt () =
    match Sched.task_by_pid t.sched tid with
    | None -> err ctx Errno.esrch
    | Some thread when thread.Task.state = Task.Zombie ->
        let code = thread.Task.exit_code in
        Sched.charge ctx Kcost.wait_reap;
        Sched.reap t.sched thread;
        Sched.finish ctx (Abi.R_int code)
    | Some _ ->
        Sched.block ctx ~chan:(Printf.sprintf "exit:%d" tid) ~retry:attempt
  in
  attempt ()

let sys_sbrk ctx delta =
  let task = ctx.Sched.task in
  match task.Task.vm with
  | None -> err ctx Errno.enomem
  | Some vm -> (
      match Vm.sbrk vm delta with
      | Error _ -> err ctx Errno.enomem
      | Ok (old_brk, new_pages) ->
          Sched.charge ctx (Kcost.sbrk_per_page * max 1 new_pages);
          Sched.finish ctx (Abi.R_int old_brk))

let sys_sleep ctx ms =
  if ms <= 0 then Sched.finish ctx (Abi.R_int 0)
  else Sched.finish_after ctx ~delay_ns:(Sim.Engine.ms ms) (Abi.R_int 0)

let sys_nice ctx inc =
  let task = ctx.Sched.task in
  task.Task.nice <- max (-20) (min 19 inc);
  Sched.charge ctx Kcost.sched_pick;
  Sched.finish ctx (Abi.R_int task.Task.nice)

let sys_uptime ctx t =
  let ms = Int64.to_int (Int64.div (Hw.Board.now t.sched.Sched.board) 1_000_000L) in
  Sched.finish ctx (Abi.R_int ms)
