(** The OS feature lattice — the rows of Table 1.

    Inverse engineering decomposes the full OS into features and maps each
    app to the minimal set it needs; a prototype is then a feature subset
    chosen to enable a target app set. This module is that decomposition,
    machine-checkable: {!Matrix} validates that every prototype satisfies
    its apps and that prototypes are monotone. *)

type t =
  (* user library *)
  | Lib_minimal  (** malloc, syscall stubs, strings (P3) *)
  | Lib_wrappers  (** proc/devfs wrappers (P4) *)
  | Lib_full  (** newlib-class libc + minisdl (P5) *)
  (* kernel core *)
  | Debug_msg
  | Timekeeping
  | Interrupts
  | Multitasking
  | Page_allocator  (** P2–3's page-based allocation *)
  | Kmalloc  (** P4+ *)
  | Privileges  (** EL0/EL1 split *)
  | Virtual_memory
  | Syscalls_tasks
  | Syscalls_files
  | Syscalls_threads
  | Multicore
  | Window_manager
  (* files *)
  | File_abstraction
  | Dev_proc_fs
  | Ramdisk
  | Xv6_filesystem
  | Fat32
  (* IO *)
  | Uart_tx  (** polling TX (P1) *)
  | Uart_rx_irq  (** interrupt RX (P2+) *)
  | Hw_timers
  | Framebuffer_io
  | Usb_keyboard
  | Sound_pwm
  | Sd_card

let all =
  [
    Lib_minimal; Lib_wrappers; Lib_full; Debug_msg; Timekeeping; Interrupts;
    Multitasking; Page_allocator; Kmalloc; Privileges; Virtual_memory;
    Syscalls_tasks; Syscalls_files; Syscalls_threads; Multicore;
    Window_manager; File_abstraction; Dev_proc_fs; Ramdisk; Xv6_filesystem;
    Fat32; Uart_tx; Uart_rx_irq; Hw_timers; Framebuffer_io; Usb_keyboard;
    Sound_pwm; Sd_card;
  ]

let name = function
  | Lib_minimal -> "userlib: malloc,syscalls,strings"
  | Lib_wrappers -> "userlib: proc/devfs wrappers"
  | Lib_full -> "userlib: libc, minisdl & more"
  | Debug_msg -> "debug msg"
  | Timekeeping -> "timer, timekeeping"
  | Interrupts -> "irq"
  | Multitasking -> "multitasking"
  | Page_allocator -> "memory allocator (pages)"
  | Kmalloc -> "memory allocator (kmalloc)"
  | Privileges -> "privileges (EL0/1)"
  | Virtual_memory -> "virtual memory"
  | Syscalls_tasks -> "syscalls: tasks & time"
  | Syscalls_files -> "syscalls: files"
  | Syscalls_threads -> "syscalls: threading"
  | Multicore -> "multicore"
  | Window_manager -> "window manager"
  | File_abstraction -> "file abstraction"
  | Dev_proc_fs -> "procfs/devfs"
  | Ramdisk -> "ramdisk"
  | Xv6_filesystem -> "xv6 filesystem"
  | Fat32 -> "FAT32"
  | Uart_tx -> "UART (tx)"
  | Uart_rx_irq -> "UART (irq rx)"
  | Hw_timers -> "timers (sys,generic)"
  | Framebuffer_io -> "framebuffer"
  | Usb_keyboard -> "USB keyboard"
  | Sound_pwm -> "sound (PWM)"
  | Sd_card -> "SD card"

(* Internal feature dependencies: a prototype including [f] must include
   everything [needs f] lists. *)
let needs = function
  | Multitasking -> [ Interrupts; Timekeeping ]
  | Privileges -> [ Multitasking ]
  | Virtual_memory -> [ Privileges; Page_allocator ]
  | Syscalls_tasks -> [ Privileges; Virtual_memory ]
  | Syscalls_files -> [ Syscalls_tasks; File_abstraction ]
  | Syscalls_threads -> [ Syscalls_tasks ]
  | File_abstraction -> [ Kmalloc ]
  | Xv6_filesystem -> [ Ramdisk; File_abstraction ]
  | Fat32 -> [ Sd_card; File_abstraction ]
  | Dev_proc_fs -> [ File_abstraction ]
  | Window_manager -> [ Multicore; Framebuffer_io; Dev_proc_fs ]
  | Multicore -> [ Multitasking ]
  | Usb_keyboard -> [ Interrupts; Timekeeping ]
  | Sound_pwm -> [ Interrupts ]
  | Uart_rx_irq -> [ Interrupts ]
  | Lib_wrappers -> [ Lib_minimal; Dev_proc_fs ]
  | Lib_full -> [ Lib_wrappers; Syscalls_threads ]
  | Lib_minimal -> [ Syscalls_tasks ]
  | Kmalloc -> [ Page_allocator ]
  | Debug_msg -> [ Uart_tx ]
  | Timekeeping -> [ Hw_timers; Interrupts ]
  | Interrupts | Page_allocator | Ramdisk | Uart_tx | Hw_timers
  | Framebuffer_io | Sd_card ->
      []

(* Transitive closure of [needs] over a feature set. *)
let close features =
  let module S = Set.Make (struct
    type nonrec t = t

    let compare = compare
  end) in
  let rec fix set =
    let bigger =
      S.fold (fun f acc -> List.fold_left (fun a n -> S.add n a) acc (needs f)) set set
    in
    if S.cardinal bigger = S.cardinal set then set else fix bigger
  in
  S.elements (fix (S.of_list features))

(* The bridge from the kernel's switchboard to the paper's vocabulary:
   which Table-1 features a given {!Core.Kconfig.t} turns on. Closed
   under [needs], so the result is always a well-formed feature set.
   The tests check that [of_config (Kconfig.prototype k)] equals
   [Matrix.features_of_prototype k] — the config record and the Table-1
   column can't drift apart silently. *)
let of_config (c : Core.Kconfig.t) =
  let opt cond fs = if cond then fs else [] in
  (* always-on substrate: every prototype boots the timer, IRQs, UART
     and framebuffer (P1 is exactly this set) *)
  let base =
    [ Debug_msg; Hw_timers; Timekeeping; Interrupts; Framebuffer_io; Uart_tx ]
  in
  close
    (base
    @ opt c.Core.Kconfig.multitasking [ Multitasking; Page_allocator ]
    @ opt c.Core.Kconfig.user_separation [ Privileges; Virtual_memory ]
    @ opt c.Core.Kconfig.demand_paging [ Virtual_memory ]
    @ opt c.Core.Kconfig.syscalls_tasks [ Syscalls_tasks; Lib_minimal ]
    @ opt c.Core.Kconfig.syscalls_files [ Syscalls_files; File_abstraction ]
    @ opt c.Core.Kconfig.syscalls_threads [ Syscalls_threads ]
    @ opt c.Core.Kconfig.kmalloc [ Kmalloc ]
    @ opt c.Core.Kconfig.filesystem [ Xv6_filesystem; Ramdisk ]
    @ opt c.Core.Kconfig.fat32 [ Fat32; Sd_card ]
    @ opt (c.Core.Kconfig.devfs || c.Core.Kconfig.procfs) [ Dev_proc_fs ]
    @ opt c.Core.Kconfig.usb_keyboard [ Usb_keyboard ]
    @ opt c.Core.Kconfig.sound [ Sound_pwm ]
    @ opt c.Core.Kconfig.multicore [ Multicore ]
    @ opt c.Core.Kconfig.window_manager [ Window_manager ]
    (* the user library tiers and IRQ-driven UART RX aren't knobs of
       their own; they ride the stage number (Table 1 columns) *)
    @ opt (c.Core.Kconfig.stage >= 4) [ Lib_wrappers; Uart_rx_irq ]
    @ opt (c.Core.Kconfig.stage >= 5) [ Lib_full ])
