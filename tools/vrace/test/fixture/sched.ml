(* Stand-in for Core.Sched: "Sched.block" is in vrace's may-block table,
   which is all R103 needs. *)

let block () = ()
