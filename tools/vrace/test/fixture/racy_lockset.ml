(* R101: a [@locked_by]-annotated field mutated outside its window. *)

type t = {
  lk : Spinlock.t;
  mutable count : int; [@locked_by "lk"]
  mutable quiet : int; [@locked_by "lk"]
      (* grandfathered by fixture/allow.txt, proving the allowlist
         matches on rule + file suffix + message substring *)
}

let create () = { lk = Spinlock.create "lk"; count = 0; quiet = 0 }

(* correct: the mutation runs inside the protect window *)
let good t = Spinlock.protect t.lk (fun () -> t.count <- t.count + 1)

(* also correct: explicit acquire/release bracket *)
let good_bracket t =
  Spinlock.acquire t.lk;
  t.count <- t.count + 2;
  Spinlock.release t.lk

(* finding: no lock held *)
let bad t = t.count <- t.count + 1

(* finding, but allowlisted *)
let allowed t = t.quiet <- 0
