(* R101b: unannotated mutable kernel state (this file lives under a
   core/ segment, so it counts as kernel scope) mutated under a lock at
   some sites and with no lock at another. *)

type t = {
  lk : Spinlock.t;
  mutable n : int;
}

let make () = { lk = Spinlock.create "lk"; n = 0 }

let locked_incr t = Spinlock.protect t.lk (fun () -> t.n <- t.n + 1)
let locked_reset t = Spinlock.protect t.lk (fun () -> t.n <- 0)

(* finding: every other mutation of [n] holds 'lk' *)
let unlocked_decr t = t.n <- t.n - 1
