(* Stand-in for Core.Spinlock: vrace resolves lock operations by
   normalized name ("Spinlock.acquire", "Spinlock.protect"), so the
   fixture only needs the shape, not the real implementation. *)

type t = { name : string; mutable held : bool }

let create name = { name; held = false }

let acquire t =
  if t.held then failwith ("spinlock recursion: " ^ t.name);
  t.held <- true

let release t = t.held <- false

let protect t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f
