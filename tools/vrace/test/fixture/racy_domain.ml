(* R102: non-atomic mutable state shared with worker domains. *)

type cell = { mutable hits : int }

let shared = { hits = 0 }

(* findings: the spawned closure reads and writes [shared.hits] without
   Atomic or a mutex *)
let bad_spawn () =
  let d = Domain.spawn (fun () -> shared.hits <- shared.hits + 1) in
  Domain.join d

(* finding: [@vrace.worker] marks a lambda that some pool will run on a
   worker domain even though no spawn is visible here *)
let bad_marked () =
  let worker = (fun () -> shared.hits <- 0) [@vrace.worker] in
  worker ()

(* correct: domain-confined state allocated inside the closure *)
let good_spawn () =
  let d =
    Domain.spawn (fun () ->
        let local = { hits = 0 } in
        local.hits <- 1;
        local.hits)
  in
  Domain.join d
