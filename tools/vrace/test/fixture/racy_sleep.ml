(* R103: blocking while inside a spinlock window. *)

type t = {
  lk : Spinlock.t;
  mutable v : int; [@locked_by "lk"]
}

(* finding: Sched.block may sleep; a real kernel deadlocks with the spin
   lock held *)
let bad t =
  Spinlock.acquire t.lk;
  t.v <- t.v + 1;
  Sched.block ();
  Spinlock.release t.lk

(* finding via summary: the blocking call is one level down *)
let sleeper () = Sched.block ()

let bad_indirect t = Spinlock.protect t.lk (fun () -> sleeper ())

(* correct: block after the window closes *)
let good t =
  Spinlock.protect t.lk (fun () -> t.v <- t.v + 1);
  Sched.block ()
