(* vrace driver: [vrace [--allow FILE] CMT_ROOT...] where each root is a
   directory searched recursively for .cmt files (or a .cmt file itself).
   Defaults: allowlist at tools/vrace/allow.txt when present; roots are
   the four simulated-OS libraries. Exit 1 on any finding or stale allow
   entry. *)

let () =
  let allow = ref None in
  let roots = ref [] in
  let rec parse = function
    | "--allow" :: path :: rest ->
        allow := Some path;
        parse rest
    | arg :: rest ->
        roots := arg :: !roots;
        parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let allow =
    match !allow with
    | Some _ as a -> a
    | None ->
        if Sys.file_exists "tools/vrace/allow.txt" then
          Some "tools/vrace/allow.txt"
        else None
  in
  let roots =
    match List.rev !roots with
    | [] -> [ "lib/core"; "lib/sim"; "lib/user"; "lib/apps" ]
    | rs -> rs
  in
  let res = Vrace_core.run ?allow_path:allow ~roots () in
  print_string res.Vrace_core.res_output;
  if Vrace_core.failed res then exit 1
