(** vrace — whole-program lockset and domain-safety race analysis.

    Where {!Vlint_core} works on the surface syntax, vrace loads the
    [.cmt] typed ASTs dune already emits, so identifiers arrive fully
    resolved through opens and module aliases ([Core__Sched.wake_all],
    [Stdlib.Mutex.lock]) and record labels carry their declaration's
    attributes to every use site. Three rule families:

    - R101  {b lockset discipline} (Eraser-style). A mutable field
            annotated [[@locked_by "name"]] may only be mutated while a
            lock read from a field called [name] is held; locksets are
            inferred by an abstract walk that threads acquire/release
            effects through call summaries ([ptable_acquire] nets an
            acquire of ["ptable"], [Spinlock.protect]/[with_lock]-style
            combinators run their argument under the lock). Unannotated
            mutable state in lib/core + lib/sim whose mutation sites see
            inconsistent locksets (some under a lock, some not, with no
            common lock) is reported too.
    - R102  {b domain safety}. Closures handed to worker domains
            ([Domain.spawn], [Dpool.run], [Engine.schedule_par] computes,
            [Usys.offload] thunks, [Abi.Offload] payloads, and lambdas
            marked [[@vrace.worker]]) and everything they transitively
            call must not touch non-atomic mutable state shared with the
            simulation thread: mutable-field reads/writes and container
            mutations on captured or global bases are findings unless a
            real [Mutex] is held. Function parameters are exempt for
            in-place container helpers (the [Sha256.compress] idiom);
            the tail lambda returned by a [schedule_par] compute is the
            commit and runs back on the sim thread, so it is skipped.
    - R103  {b sleep in atomic context}. May-block summaries (anything
            reaching [Sched.block], [Sched.finish_after],
            [Sched.park_for_debug], [Fiber.await/sleep/yield] or
            [Condition.wait]) intersected with spinlock/irq windows:
            blocking with a spin lock held would deadlock a real kernel,
            so the discipline checker bans it even in the simulator.
            Mutex windows are exempt ([Condition.wait] under its mutex
            is the intended idiom).

    Known imprecision, chosen to keep the checker quiet and honest:
    branch effects are joined by union (a conditional acquire counts as
    an acquire — locks here are discipline locks, never contended);
    aliasing through local lets hides the base of a mutation from R102;
    array/ref cell {e reads} are never checked. Findings print as
    [file:line: rule-id message] with the same allowlist contract as
    vlint: [--allow FILE] grandfathers, a stale entry fails the run. *)

open Typedtree

type finding = { file : string; line : int; rule : string; msg : string }

let findings : finding list ref = ref []

let report ~loc ~rule fmt =
  let file = loc.Location.loc_start.Lexing.pos_fname in
  let line = loc.Location.loc_start.Lexing.pos_lnum in
  Printf.ksprintf
    (fun msg -> findings := { file; line; rule; msg } :: !findings)
    fmt

(* ---- locks and locksets ---- *)

(* A lock's identity is the record-field name it lives in ("ptable",
   "plock", "lock"): the code never aliases one subsystem's lock into
   another subsystem's field, so the field name is a stable key that
   survives being passed through locals and option payloads. *)
type lock_kind = Spin | Mutex_k | Irq

module LS = Set.Make (struct
  type t = string * lock_kind

  let compare = compare
end)

module SS = Set.Make (String)

let holds_name name ls = LS.exists (fun (n, _) -> n = name) ls
let spin_locks ls = LS.filter (fun (_, k) -> k = Spin || k = Irq) ls
let has_mutex ls = LS.exists (fun (_, k) -> k = Mutex_k) ls
let remove_name name ls = LS.filter (fun (n, _) -> n <> name) ls

(* ---- names ---- *)

(* "Core__Sched.wake_all" -> "Sched.wake_all", "Stdlib.Mutex.lock" ->
   "Mutex.lock": strip the wrapped-library mangling and the Stdlib
   prefix so primitives and cross-module calls match by one spelling. *)
let strip_mangle comp =
  let rec last_sep i =
    if i + 1 >= String.length comp then None
    else if comp.[i] = '_' && comp.[i + 1] = '_' then
      match last_sep (i + 2) with Some j -> Some j | None -> Some (i + 2)
    else last_sep (i + 1)
  in
  match last_sep 0 with
  | Some j -> String.sub comp j (String.length comp - j)
  | None -> comp

(* Names of the wrapper modules dune synthesizes for wrapped libraries
   ("Core", "Sim", ...), learned from the mangled unit names of the cmts
   being analyzed: calls through the wrapper alias ("Core.Spinlock.acquire")
   and direct mangled references ("Core__Spinlock.acquire") must both
   normalize to "Spinlock.acquire". *)
let wrappers : (string, unit) Hashtbl.t = Hashtbl.create 8

let normalize_path p =
  let parts =
    String.split_on_char '.' (Path.name p) |> List.map strip_mangle
  in
  let parts =
    match parts with
    | "Stdlib" :: (_ :: _ as rest) -> rest
    | w :: (_ :: _ as rest) when Hashtbl.mem wrappers w -> rest
    | parts -> parts
  in
  String.concat "." parts

let record_type_name (ld : Types.label_description) =
  match Types.get_desc ld.Types.lbl_res with
  | Types.Tconstr (p, _, _) -> normalize_path p
  | _ -> "?"

(* A type defined in the unit being analyzed shows up as a bare Pident
   ("t"); qualify it with the unit name so "Dpool.t.failure" and
   "Fd.t.failure" cannot collide in the R101b site table. *)
let field_key ~m ld =
  let tn = record_type_name ld in
  let tn = if String.contains tn '.' || m = "" then tn else m ^ "." ^ tn in
  tn ^ "." ^ ld.Types.lbl_name

let locked_by_of (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.Asttypes.txt <> "locked_by" then None
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                Parsetree.pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        Parsetree.pexp_desc =
                          Parsetree.Pexp_constant
                            (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            Some s
        | _ -> None)
    attrs

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.Parsetree.attr_name.Asttypes.txt = name)
    attrs

(* ---- patterns ---- *)

let rec pat_vars : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ Ident.name id ]
  | Tpat_alias (q, id, _) -> Ident.name id :: pat_vars q
  | Tpat_tuple ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, q) -> pat_vars q) fields
  | Tpat_variant (_, Some q, _) -> pat_vars q
  | Tpat_variant (_, None, _) -> []
  | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_or (a, b, _) -> pat_vars a @ pat_vars b
  | Tpat_lazy q -> pat_vars q
  | Tpat_value v -> pat_vars (v :> value general_pattern)
  | Tpat_exception q -> pat_vars q
  | Tpat_any | Tpat_constant _ -> []

(* The one variable a pattern binds, looking through [Some x] and
   aliases — the shape of [match t.ptable with Some l -> ...] that the
   binding-origin environment needs to see through. *)
let rec single_var : type k. k general_pattern -> string option =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> Some (Ident.name id)
  | Tpat_alias (q, id, _) -> (
      match single_var q with Some v -> Some v | None -> Some (Ident.name id))
  | Tpat_construct (_, _, [ q ], _) -> single_var q
  | Tpat_value v -> single_var (v :> value general_pattern)
  | _ -> None

(* ---- binding origins ---- *)

type field_info = {
  fi_key : string;  (** "Task.t.state" *)
  fi_name : string;  (** "state" *)
  fi_locked_by : string option;
  fi_mutable : bool;
}

let field_info_of ~m ld =
  {
    fi_key = field_key ~m ld;
    fi_name = ld.Types.lbl_name;
    fi_locked_by = locked_by_of ld.Types.lbl_attributes;
    fi_mutable = ld.Types.lbl_mut = Asttypes.Mutable;
  }

type binding =
  | B_param  (** bound as a parameter of the context being analyzed *)
  | B_local  (** bound locally: allocation or derived value *)
  | B_field of field_info  (** bound from a record-field read *)

type base = Param | Local | Captured | Global

(* ---- function index and summaries ---- *)

type func = {
  f_key : string;
  f_params : string list;
  f_body : expression;
}

type summary = {
  mutable sm_acq : LS.t;  (** locks held on exit that were not on entry *)
  mutable sm_rel : SS.t;  (** caller's locks this function releases *)
  mutable sm_blocks : bool;
  mutable sm_applies : (int * LS.t) list;
      (** parameter index applied while holding extra locks *)
}

let empty_summary () =
  { sm_acq = LS.empty; sm_rel = SS.empty; sm_blocks = false; sm_applies = [] }

let funcs : (string, func) Hashtbl.t = Hashtbl.create 512
let summaries : (string, summary) Hashtbl.t = Hashtbl.create 512

(* R101b evidence: every mutation site of unannotated mutable kernel
   state, with the lock names held there. *)
type site = { st_loc : Location.t; st_locks : SS.t }

let mut_sites : (string, site list ref) Hashtbl.t = Hashtbl.create 256

(* R102 work queue *)
type root =
  | R_lambda of expression * bool * string
      (** lambda, skip tail-position lambdas, defining module *)
  | R_func of string

let worker_roots : root list ref = ref []
let worker_seen : (string, unit) Hashtbl.t = Hashtbl.create 64

(* ---- primitive tables ---- *)

let blockers =
  SS.of_list
    [
      "Sched.block";
      "Sched.finish_after";
      "Sched.park_for_debug";
      "Fiber.await";
      "Fiber.sleep";
      "Fiber.yield";
      "Condition.wait";
    ]

(* (function, index of the mutated container argument) *)
let mutators =
  [
    ("Array.set", 0);
    ("Array.unsafe_set", 0);
    ("Array.fill", 0);
    ("Bytes.set", 0);
    ("Bytes.unsafe_set", 0);
    ("Bytes.fill", 0);
    ("Hashtbl.add", 0);
    ("Hashtbl.replace", 0);
    ("Hashtbl.remove", 0);
    ("Hashtbl.clear", 0);
    ("Hashtbl.reset", 0);
    ("Queue.add", 1);
    ("Queue.push", 1);
    ("Queue.pop", 0);
    ("Queue.take", 0);
    ("Queue.clear", 0);
    (":=", 0);
    ("incr", 0);
    ("decr", 0);
  ]

(* Stdlib higher-order functions that apply their lambda arguments
   before returning: the lambda runs under the caller's lockset. Lambdas
   passed to anything else are treated as deferred callbacks running
   with no locks held. *)
let applies_inline fname =
  List.exists
    (fun prefix ->
      String.length fname >= String.length prefix
      && String.sub fname 0 (String.length prefix) = prefix)
    [
      "List.";
      "Array.";
      "Hashtbl.";
      "Queue.";
      "Option.";
      "Seq.";
      "Fun.";
      "Buffer.";
      "String.";
      "Bytes.";
      "Either.";
      "Result.";
      "Printf.";
      "Lazy.";
    ]

(* ---- the abstract walk ---- *)

type mode = Sim | Worker

type st = {
  cur_module : string;
  mode : mode;
  emit : bool;
  params : string list;  (** parameters of the function being summarized *)
  mutable released : SS.t;
  mutable blocks : bool;
  mutable applies : (int * LS.t) list;
  mutable calls : SS.t;
  mutable skip_locs : Location.t list;
}

let in_kernel_scope loc =
  let segs =
    String.split_on_char '/' loc.Location.loc_start.Lexing.pos_fname
  in
  List.mem "core" segs || List.mem "sim" segs

let lock_names ls = LS.fold (fun (n, _) acc -> SS.add n acc) ls SS.empty

let record_mut_site key ~loc ~ls =
  let sites =
    match Hashtbl.find_opt mut_sites key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace mut_sites key r;
        r
  in
  sites := { st_loc = loc; st_locks = lock_names ls } :: !sites

let add_worker_root r =
  match r with
  | R_func key ->
      if not (Hashtbl.mem worker_seen key) then begin
        Hashtbl.replace worker_seen key ();
        worker_roots := r :: !worker_roots
      end
  | R_lambda (e, _, _) ->
      (* keyed by location: the same lambda is reached both when its
         enclosing function is summarized and when it is checked *)
      let key =
        Printf.sprintf "%s:%d:%d"
          e.exp_loc.Location.loc_start.Lexing.pos_fname
          e.exp_loc.Location.loc_start.Lexing.pos_lnum
          e.exp_loc.Location.loc_start.Lexing.pos_cnum
      in
      if not (Hashtbl.mem worker_seen key) then begin
        Hashtbl.replace worker_seen key ();
        worker_roots := r :: !worker_roots
      end

(* The field name a lock expression denotes, through local aliases. *)
let rec lock_name_of env e =
  match e.exp_desc with
  | Texp_field (_, _, ld) -> Some ld.Types.lbl_name
  | Texp_ident (Path.Pident id, _, _) -> (
      match List.assoc_opt (Ident.name id) env with
      | Some (B_field fi) -> Some fi.fi_name
      | _ -> None)
  | Texp_open (_, e') -> lock_name_of env e'
  | _ -> None

(* The root identifier of a base expression (peeling field projections),
   classified against the current environment. *)
let rec base_of env e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match List.assoc_opt (Ident.name id) env with
      | Some B_param -> (Param, Ident.name id)
      | Some B_local -> (Local, Ident.name id)
      (* bound from a field read: an alias of shared state *)
      | Some (B_field _) -> (Captured, Ident.name id)
      | None -> (Captured, Ident.name id))
  | Texp_ident (p, _, _) -> (Global, normalize_path p)
  | Texp_field (b, _, _) -> base_of env b
  | Texp_open (_, e') -> base_of env e'
  | _ -> (Captured, "?")

let resolve_key st fname =
  if Hashtbl.mem funcs fname then Some fname
  else if not (String.contains fname '.') then begin
    let qualified = st.cur_module ^ "." ^ fname in
    if Hashtbl.mem funcs qualified then Some qualified else None
  end
  else None

let rec summary_of key =
  match Hashtbl.find_opt summaries key with
  | Some s -> s
  | None -> (
      match Hashtbl.find_opt funcs key with
      | None -> empty_summary ()
      | Some f ->
          (* seed first so recursion sees an empty summary instead of
             looping *)
          let s = empty_summary () in
          Hashtbl.replace summaries key s;
          let st =
            {
              cur_module =
                (match String.rindex_opt key '.' with
                | Some i -> String.sub key 0 i
                | None -> key);
              mode = Sim;
              emit = false;
              params = f.f_params;
              released = SS.empty;
              blocks = false;
              applies = [];
              calls = SS.empty;
              skip_locs = [];
            }
          in
          let env = List.map (fun p -> (p, B_param)) f.f_params in
          let out = walk st env LS.empty f.f_body in
          s.sm_acq <- out;
          s.sm_rel <- st.released;
          s.sm_blocks <- st.blocks;
          s.sm_applies <- st.applies;
          s)

and may_block st fname =
  SS.mem fname blockers
  ||
  match resolve_key st fname with
  | Some key -> (summary_of key).sm_blocks
  | None -> false

(* Apply the effect of calling [key] (or a primitive named [fname]) with
   lockset [ls]; checks R103 and returns the lockset after the call. *)
and call_effect st ~loc ls fname =
  if may_block st fname then begin
    st.blocks <- true;
    if st.emit then
      LS.iter
        (fun (n, k) ->
          report ~loc ~rule:"R103"
            "'%s' may block while holding %s '%s' — a real kernel \
             deadlocks here"
            fname
            (if k = Irq then "irq guard" else "spin lock")
            n)
        (spin_locks ls)
  end;
  match resolve_key st fname with
  | None -> ls
  | Some key ->
      st.calls <- SS.add key st.calls;
      let s = summary_of key in
      let ls = SS.fold remove_name s.sm_rel ls in
      LS.union ls s.sm_acq

and walk_case :
    type k. st -> (string * binding) list -> LS.t -> binding option -> k case
    -> LS.t =
 fun st env ls scrutinee_origin c ->
  (* Vars a pattern binds come from elsewhere — a scrutinee, an iterated
     container — so for worker-mode base classification they count as
     shared inputs (B_param), not domain-local allocations. *)
  let env =
    match (single_var c.c_lhs, scrutinee_origin) with
    | Some v, Some origin -> (v, origin) :: env
    | Some v, None -> (v, B_param) :: env
    | None, _ ->
        List.map (fun v -> (v, B_param)) (pat_vars c.c_lhs) @ env
  in
  (match c.c_guard with Some g -> ignore (walk st env ls g) | None -> ());
  walk st env ls c.c_rhs

and walk_lambda_body st env ls e =
  (* walk the body of a one-argument lambda under lockset [ls] *)
  match e.exp_desc with
  | Texp_function { cases; _ } ->
      List.fold_left
        (fun acc c -> LS.union acc (walk_case st env ls None c))
        LS.empty cases
      |> ignore
  | _ -> ignore (walk st env ls e)

(* Walk every subexpression of [e] that the explicit cases below do not
   cover, threading the current lockset into each child. *)
and walk_children st env ls e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ e' -> ignore (walk st env ls e'));
    }
  in
  Tast_iterator.default_iterator.expr it e

and origin_of st env e =
  match e.exp_desc with
  | Texp_field (_, _, ld) ->
      Some (B_field (field_info_of ~m:st.cur_module ld))
  | Texp_ident (Path.Pident id, _, _) ->
      List.assoc_opt (Ident.name id) env
  | Texp_open (_, e') -> origin_of st env e'
  | _ -> None

(* R101/R102 checks for one mutation whose container/base is [container],
   described for messages as [what]. *)
and check_mutation st env ls ~loc ~what container =
  (match origin_of st env container with
  | Some (B_field fi) ->
      (match fi.fi_locked_by with
      | Some lock ->
          if st.emit && st.mode = Sim && not (holds_name lock ls) then
            report ~loc ~rule:"R101"
              "%s '%s' mutated without holding its lock '%s' ([@locked_by])"
              what fi.fi_key lock
      | None ->
          if st.mode = Sim && fi.fi_mutable && in_kernel_scope loc then
            record_mut_site fi.fi_key ~loc ~ls);
      ()
  | _ -> ());
  if st.emit && st.mode = Worker && not (has_mutex ls) then begin
    match base_of env container with
    | (Captured | Global), name ->
        report ~loc ~rule:"R102"
          "%s rooted at '%s' mutated from worker-domain context without \
           Atomic or a held mutex"
          what name
    | (Param | Local), _ -> ()
  end

and walk st env ls (e : expression) : LS.t =
  match e.exp_desc with
  | Texp_ident _ | Texp_constant _ -> ls
  | Texp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun acc vb ->
            ignore (walk st acc ls vb.vb_expr);
            match single_var vb.vb_pat with
            | Some v -> (
                match origin_of st acc vb.vb_expr with
                | Some (B_field _ as o) -> (v, o) :: acc
                | _ -> (v, B_local) :: acc)
            | None ->
                List.map (fun v -> (v, B_local)) (pat_vars vb.vb_pat) @ acc)
          env vbs
      in
      walk st env' ls body
  | Texp_sequence (a, b) ->
      let ls = walk st env ls a in
      walk st env ls b
  | Texp_ifthenelse (c, t, f) ->
      let ls = walk st env ls c in
      let lt = walk st env ls t in
      let lf = match f with Some f -> walk st env ls f | None -> ls in
      LS.union lt lf
  | Texp_match (scrut, cases, _) ->
      let ls = walk st env ls scrut in
      let origin = origin_of st env scrut in
      List.fold_left
        (fun acc c -> LS.union acc (walk_case st env ls origin c))
        LS.empty cases
  | Texp_try (body, cases) ->
      let lb = walk st env ls body in
      List.fold_left
        (fun acc c -> LS.union acc (walk_case st env ls None c))
        lb cases
  | Texp_while (c, body) ->
      let ls = walk st env ls c in
      ignore (walk st env ls body);
      ls
  | Texp_for (id, _, lo, hi, _, body) ->
      let ls = walk st env ls lo in
      let ls = walk st env ls hi in
      ignore (walk st ((Ident.name id, B_local) :: env) ls body);
      ls
  | Texp_field (base, _, ld) ->
      ignore (walk st env ls base);
      (* R102: reading non-atomic mutable state from a worker domain *)
      if
        st.emit && st.mode = Worker
        && ld.Types.lbl_mut = Asttypes.Mutable
        && not (has_mutex ls)
      then begin
        match base_of env base with
        | (Param | Captured | Global), name ->
            report ~loc:e.exp_loc ~rule:"R102"
              "mutable field '%s' of '%s' read from worker-domain context \
               without Atomic or a held mutex"
              (field_key ~m:st.cur_module ld)
              name
        | Local, _ -> ()
      end;
      ls
  | Texp_setfield (base, _, ld, rhs) ->
      ignore (walk st env ls base);
      let ls = walk st env ls rhs in
      let fi = field_info_of ~m:st.cur_module ld in
      (match fi.fi_locked_by with
      | Some lock ->
          if st.emit && st.mode = Sim && not (holds_name lock ls) then
            report ~loc:e.exp_loc ~rule:"R101"
              "field '%s' mutated without holding its lock '%s' \
               ([@locked_by])"
              fi.fi_key lock
      | None ->
          if st.mode = Sim && in_kernel_scope e.exp_loc then
            record_mut_site fi.fi_key ~loc:e.exp_loc ~ls);
      if st.emit && st.mode = Worker && not (has_mutex ls) then begin
        match base_of env base with
        | (Param | Captured | Global), name ->
            report ~loc:e.exp_loc ~rule:"R102"
              "mutable field '%s' of '%s' written from worker-domain \
               context without Atomic or a held mutex"
              (field_key ~m:st.cur_module ld)
              name
        | Local, _ -> ()
      end;
      ls
  | Texp_function { cases; param; _ } ->
      if List.memq e.exp_loc st.skip_locs then ls
      else if has_attr "vrace.worker" e.exp_attributes then begin
        if st.mode = Sim then
          add_worker_root (R_lambda (e, false, st.cur_module));
        ls
      end
      else begin
        (* a lambda not consumed by any call we understand: analyze as a
           deferred callback — same mode, no locks held *)
        ignore param;
        List.iter
          (fun c -> ignore (walk_case st env LS.empty None c))
          cases;
        ls
      end
  | Texp_construct (_, cd, args) ->
      if cd.Types.cstr_name = "Offload" then
        List.iter
          (fun a ->
            match a.exp_desc with
            | Texp_function _ ->
                if st.mode = Sim then
                  add_worker_root (R_lambda (a, false, st.cur_module))
                else ignore (walk st env ls a)
            | _ -> ignore (walk st env ls a))
          args
      else List.iter (fun a -> ignore (walk st env ls a)) args;
      ls
  | Texp_apply (fn, args) -> walk_apply st env ls e fn args
  | _ ->
      walk_children st env ls e;
      ls

and walk_apply st env ls e fn args =
  let arg_exprs = List.filter_map (fun (_, a) -> a) args in
  let fname =
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> Some (normalize_path p)
    | _ ->
        ignore (walk st env ls fn);
        None
  in
  let walk_args ?(except = []) () =
    List.iter
      (fun a -> if not (List.memq a except) then ignore (walk st env ls a))
      arg_exprs
  in
  let arg i = List.nth_opt arg_exprs i in
  match fname with
  | Some ("Spinlock.acquire" | "Mutex.lock" as prim) -> (
      walk_args ();
      let kind = if prim = "Mutex.lock" then Mutex_k else Spin in
      match arg 0 with
      | Some l -> (
          match lock_name_of env l with
          | Some n -> LS.add (n, kind) ls
          | None -> ls)
      | None -> ls)
  | Some ("Spinlock.release" | "Mutex.unlock" as prim) -> (
      walk_args ();
      ignore prim;
      match arg 0 with
      | Some l -> (
          match lock_name_of env l with
          | Some n ->
              if not (holds_name n ls) then st.released <- SS.add n st.released;
              remove_name n ls
          | None -> ls)
      | None -> ls)
  | Some ("Spinlock.protect" | "Mutex.protect" as prim) ->
      let kind = if prim = "Mutex.protect" then Mutex_k else Spin in
      let locked =
        match arg 0 with
        | Some l -> (
            match lock_name_of env l with
            | Some n -> LS.add (n, kind) ls
            | None -> ls)
        | None -> ls
      in
      (match arg 0 with Some l -> ignore (walk st env ls l) | None -> ());
      (match arg 1 with
      | Some ({ exp_desc = Texp_function _; _ } as f) ->
          walk_lambda_body st env locked f
      | Some ({ exp_desc = Texp_ident (p, _, _); _ } as f) ->
          ignore (walk st env ls f);
          ignore (call_effect st ~loc:e.exp_loc locked (normalize_path p))
      | Some other -> ignore (walk st env ls other)
      | None -> ());
      ls
  | Some "Irq_guard.push" | Some "Spinlock.Irq_guard.push" ->
      walk_args ();
      LS.add ("irq", Irq) ls
  | Some "Irq_guard.pop" | Some "Spinlock.Irq_guard.pop" ->
      walk_args ();
      remove_name "irq" ls
  | Some ("Domain.spawn" | "Dpool.run" | "Usys.offload" as root_fn) ->
      ignore root_fn;
      List.iter
        (fun a ->
          match a.exp_desc with
          | Texp_function _ ->
              if st.mode = Sim then
                add_worker_root (R_lambda (a, false, st.cur_module))
              else ignore (walk st env ls a)
          | _ -> ignore (walk st env ls a))
        arg_exprs;
      ls
  | Some "Engine.schedule_par" | Some "Sim.Engine.schedule_par" ->
      List.iter
        (fun a ->
          match a.exp_desc with
          | Texp_function _ ->
              if st.mode = Sim then
                add_worker_root (R_lambda (a, true, st.cur_module))
              else ignore (walk st env ls a)
          | _ -> ignore (walk st env ls a))
        arg_exprs;
      ls
  | Some fname ->
      (* mutator check: the container argument *)
      (match List.assoc_opt fname mutators with
      | Some idx -> (
          match arg idx with
          | Some c ->
              check_mutation st env ls ~loc:e.exp_loc
                ~what:
                  (match fname with
                  | ":=" | "incr" | "decr" -> "ref cell"
                  | _ -> "container")
                c
          | None -> ())
      | None -> ());
      (* record the application of one of our own parameters *)
      (match fn.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> (
          let n = Ident.name id in
          match List.assoc_opt n env with
          | Some B_param -> (
              match
                List.find_index (fun p -> p = n) st.params
              with
              | Some i when not (LS.is_empty ls) ->
                  st.applies <- (i, ls) :: st.applies
              | _ -> ())
          | _ -> ())
      | _ -> ());
      let callee = resolve_key st fname in
      let applies =
        match callee with Some k -> (summary_of k).sm_applies | None -> []
      in
      (* lambda arguments: run inline under the callee's documented
         lockset, or as deferred callbacks with none *)
      List.iteri
        (fun i a ->
          match a.exp_desc with
          | Texp_function _ ->
              let extra =
                match List.assoc_opt i applies with
                | Some extra_ls -> Some extra_ls
                | None -> if applies_inline fname then Some LS.empty else None
              in
              (match extra with
              | Some extra_ls ->
                  walk_lambda_body st env (LS.union ls extra_ls) a
              | None -> ignore (walk st env ls a))
          | _ -> ignore (walk st env ls a))
        arg_exprs;
      (* non-lambda ident arguments applied under locks by the callee *)
      List.iteri
        (fun i a ->
          match (a.exp_desc, List.assoc_opt i applies) with
          | Texp_ident (p, _, _), Some extra_ls ->
              ignore
                (call_effect st ~loc:e.exp_loc (LS.union ls extra_ls)
                   (normalize_path p))
          | _ -> ())
        arg_exprs;
      call_effect st ~loc:e.exp_loc ls fname
  | None ->
      walk_args ();
      ls

(* ---- phase 1: index every top-level function in every cmt ---- *)

let rec peel_params e acc =
  match e.exp_desc with
  | Texp_function { cases = [ ({ c_guard = None; _ } as c) ]; _ } ->
      peel_params c.c_rhs (acc @ pat_vars c.c_lhs)
  | _ -> (acc, e)

let rec index_structure modpath (str : structure) =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match single_var vb.vb_pat with
              | Some name -> (
                  match vb.vb_expr.exp_desc with
                  | Texp_function _ ->
                      let params, body = peel_params vb.vb_expr [] in
                      let key = modpath ^ "." ^ name in
                      Hashtbl.replace funcs key
                        { f_key = key; f_params = params; f_body = body }
                  | _ -> ())
              | None -> ())
            vbs
      | Tstr_module mb -> index_module modpath mb
      | Tstr_recmodule mbs -> List.iter (index_module modpath) mbs
      | _ -> ())
    str.str_items

and index_module modpath mb =
  let name =
    match mb.mb_name.Asttypes.txt with Some n -> n | None -> "_"
  in
  let rec structure_of me =
    match me.mod_desc with
    | Tmod_structure str -> Some str
    | Tmod_constraint (me', _, _, _) -> structure_of me'
    | _ -> None
  in
  match structure_of mb.mb_expr with
  | Some str -> index_structure (modpath ^ "." ^ name) str
  | None -> ()

(* ---- phase 2: check every function body ---- *)

let fresh_st ~cur_module ~mode ~params =
  {
    cur_module;
    mode;
    emit = true;
    params;
    released = SS.empty;
    blocks = false;
    applies = [];
    calls = SS.empty;
    skip_locs = [];
  }

let module_of_key key =
  match String.rindex_opt key '.' with
  | Some i -> String.sub key 0 i
  | None -> key

let check_function key (f : func) =
  let st = fresh_st ~cur_module:(module_of_key key) ~mode:Sim ~params:f.f_params in
  let env = List.map (fun p -> (p, B_param)) f.f_params in
  ignore (walk st env LS.empty f.f_body)

(* ---- phase 3: worker-context propagation ---- *)

(* Tail-position lambdas of a schedule_par compute are the commit and run
   back on the simulation thread. *)
let rec tail_lambda_locs e =
  match e.exp_desc with
  | Texp_function _ -> [ e.exp_loc ]
  | Texp_let (_, _, body) | Texp_sequence (_, body) | Texp_open (_, body) ->
      tail_lambda_locs body
  | Texp_ifthenelse (_, t, f) -> (
      tail_lambda_locs t
      @ match f with Some f -> tail_lambda_locs f | None -> [])
  | Texp_match (_, cases, _) ->
      List.concat_map (fun c -> tail_lambda_locs c.c_rhs) cases
  | _ -> []

let run_worker_phase () =
  let rec drain () =
    match !worker_roots with
    | [] -> ()
    | root :: rest ->
        worker_roots := rest;
        (match root with
        | R_lambda (e, skip_tail, m) ->
            let st = fresh_st ~cur_module:m ~mode:Worker ~params:[] in
            if skip_tail then begin
              (* the body of the outer lambda produces the commit *)
              match e.exp_desc with
              | Texp_function { cases; _ } ->
                  st.skip_locs <-
                    List.concat_map (fun c -> tail_lambda_locs c.c_rhs) cases
              | _ -> ()
            end;
            (match e.exp_desc with
            | Texp_function { cases; _ } ->
                List.iter
                  (fun c ->
                    let env =
                      List.map (fun v -> (v, B_local)) (pat_vars c.c_lhs)
                    in
                    ignore (walk st env LS.empty c.c_rhs))
                  cases
            | _ -> ignore (walk st [] LS.empty e));
            SS.iter (fun k -> add_worker_root (R_func k)) st.calls
        | R_func key -> (
            match Hashtbl.find_opt funcs key with
            | None -> ()
            | Some f ->
                let st =
                  fresh_st ~cur_module:(module_of_key key) ~mode:Worker
                    ~params:f.f_params
                in
                let env = List.map (fun p -> (p, B_param)) f.f_params in
                ignore (walk st env LS.empty f.f_body);
                SS.iter (fun k -> add_worker_root (R_func k)) st.calls));
        drain ()
  in
  drain ()

(* ---- phase 4: R101b — inconsistent locksets on unannotated state ---- *)

let check_inconsistent_locksets () =
  Hashtbl.iter
    (fun key sites ->
      let sites = !sites in
      let locked = List.filter (fun s -> not (SS.is_empty s.st_locks)) sites in
      let unlocked = List.filter (fun s -> SS.is_empty s.st_locks) sites in
      if locked <> [] && unlocked <> [] then begin
        (* the lock most mutation sites agree on *)
        let counts = Hashtbl.create 4 in
        List.iter
          (fun s ->
            SS.iter
              (fun n ->
                Hashtbl.replace counts n
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts n)))
              s.st_locks)
          locked;
        let modal =
          Hashtbl.fold
            (fun n c (bn, bc) -> if c > bc then (n, c) else (bn, bc))
            counts ("?", 0)
          |> fst
        in
        List.iter
          (fun s ->
            report ~loc:s.st_loc ~rule:"R101"
              "mutable field '%s' is mutated under lock '%s' elsewhere but \
               with no lock held here — annotate it [@locked_by \"%s\"] and \
               close the window, or allowlist why this site is safe"
              key modal modal)
          unlocked
      end)
    mut_sites

(* ---- cmt loading ---- *)

let rec cmt_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if entry = "_build" then []
           else cmt_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

let load_cmt path =
  match Cmt_format.read_cmt path with
  | cmt -> (
      let modname = cmt.Cmt_format.cmt_modname in
      (* the wrapper is everything before the first "__" — which is not
         the first '_': wrapper names can contain single underscores
         ("Vrace_fixture__Spinlock") *)
      let rec first_dsep i =
        if i + 1 >= String.length modname then None
        else if modname.[i] = '_' && modname.[i + 1] = '_' then Some i
        else first_dsep (i + 1)
      in
      (match first_dsep 0 with
      | Some i when i > 0 ->
          Hashtbl.replace wrappers (String.sub modname 0 i) ()
      | _ -> ());
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str -> Some (strip_mangle modname, str)
      | _ -> None)
  | exception _ -> None

(* ---- allowlist (the vlint contract) ---- *)

type allow = { a_rule : string; a_suffix : string; a_substr : string }

let load_allow path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          let entry =
            match String.index_opt line ' ' with
            | None -> { a_rule = line; a_suffix = ""; a_substr = "" }
            | Some i -> (
                let rule = String.sub line 0 i in
                let rest =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                match String.index_opt rest ' ' with
                | None -> { a_rule = rule; a_suffix = rest; a_substr = "" }
                | Some j ->
                    {
                      a_rule = rule;
                      a_suffix = String.sub rest 0 j;
                      a_substr =
                        String.trim
                          (String.sub rest (j + 1) (String.length rest - j - 1));
                    })
          in
          go (entry :: acc)
  in
  go []

let suffix_matches ~suffix path =
  let sl = String.length suffix and pl = String.length path in
  suffix = "" || (sl <= pl && String.sub path (pl - sl) sl = suffix)

let substr_matches ~sub msg =
  let nl = String.length sub and hl = String.length msg in
  let rec at i = i + nl <= hl && (String.sub msg i nl = sub || at (i + 1)) in
  sub = "" || at 0

(* ---- run ---- *)

type result = {
  res_files : int;  (** .cmt units analyzed *)
  res_findings : int;
  res_stale : int;
  res_output : string;
}

let failed r = r.res_findings > 0 || r.res_stale > 0

let run ?allow_path ~roots () =
  findings := [];
  Hashtbl.reset funcs;
  Hashtbl.reset summaries;
  Hashtbl.reset mut_sites;
  Hashtbl.reset worker_seen;
  Hashtbl.reset wrappers;
  worker_roots := [];
  let units =
    roots
    |> List.concat_map cmt_files_under
    |> List.filter_map load_cmt
  in
  List.iter (fun (modname, str) -> index_structure modname str) units;
  Hashtbl.iter check_function funcs;
  run_worker_phase ();
  check_inconsistent_locksets ();
  let allows = match allow_path with None -> [] | Some p -> load_allow p in
  let used = Array.make (List.length allows) false in
  let surviving =
    List.filter
      (fun f ->
        let allowed = ref false in
        List.iteri
          (fun i a ->
            if
              a.a_rule = f.rule
              && suffix_matches ~suffix:a.a_suffix f.file
              && substr_matches ~sub:a.a_substr f.msg
            then begin
              used.(i) <- true;
              allowed := true
            end)
          allows;
        not !allowed)
      !findings
  in
  let surviving =
    List.sort_uniq
      (fun a b ->
        match compare a.file b.file with
        | 0 -> (
            match compare a.line b.line with
            | 0 -> compare (a.rule, a.msg) (b.rule, b.msg)
            | c -> c)
        | c -> c)
      surviving
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: %s %s\n" f.file f.line f.rule f.msg))
    surviving;
  let stale = ref 0 in
  List.iteri
    (fun i a ->
      if not used.(i) then begin
        incr stale;
        Buffer.add_string buf
          (Printf.sprintf "allowlist: stale entry: %s %s %s\n" a.a_rule
             a.a_suffix a.a_substr)
      end)
    allows;
  {
    res_files = List.length units;
    res_findings = List.length surviving;
    res_stale = !stale;
    res_output = Buffer.contents buf;
  }
