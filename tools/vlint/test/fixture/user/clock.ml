(* R005: user code reading the simulator's clock directly *)
let now_ns () = Sim.Engine.now ()
