(* fixture user stubs: Fork only; Exit has no arm, Nop has no stub *)
let fork f = ignore (Abi.Fork f)

let exit code = ignore (Abi.Exit code)

let dup2 fd = ignore (Abi.Dup2 fd)
