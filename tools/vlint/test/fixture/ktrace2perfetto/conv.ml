(* fixture converter: maps Tick but forgets Tock — R006 must notice *)
let name_of = function Ktrace.Tick -> Some "tick" | _ -> None
