(* fixture ABI: a syscall type with deliberate coverage holes *)
type syscall =
  | Fork of (unit -> int)  (* fine: one dispatch arm, one stub *)
  | Exit of int  (* R001: no dispatch arm in syscall.ml *)
  | Nop  (* R001: no stub in usys.ml *)
  | Dup2 of int  (* R001: two dispatch arms *)
