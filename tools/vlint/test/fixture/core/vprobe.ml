(* seeded R007 violations: "dup:point" is registered twice and
   "undoc:point" is absent from the fixture DESIGN.md; "ok:point" is
   unique and documented *)
let static_points =
  [
    "ok:point";
    "dup:point";
    "dup:point";
    "undoc:point";
  ]

let _ = List.length static_points
