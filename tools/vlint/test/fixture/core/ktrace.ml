type event = Tick | Tock of int
