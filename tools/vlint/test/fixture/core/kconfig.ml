type t = {
  knob_used : bool;  (* read by bad.ml, documented *)
  knob_unused : bool;  (* R002: never read *)
  knob_undoc : bool;  (* R002: read but absent from DESIGN.md *)
}
