(* fixture dispatch: misses Exit, duplicates Dup2 *)
let dispatch = function
  | Abi.Fork _ -> 1
  | Abi.Nop -> 2
  | Abi.Dup2 0 -> 3
  | Abi.Dup2 _ -> 4
