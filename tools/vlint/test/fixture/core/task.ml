type state = Runnable | Zombie
