(* fixture kernel module committing one sin per rule *)
let uses (c : Kconfig.t) = c.Kconfig.knob_used && c.Kconfig.knob_undoc

let explode () = failwith "R003: kernel code must not throw this"

let check n = if n < 0 then invalid_arg "R003 again"

let state_name = function Task.Runnable -> "runnable" | _ -> "?"

let event_char = function Ktrace.Tick -> 't' | _ -> '?'
