(** vlint — the VOS static invariant linter.

    Parses every .ml file under the given directories with the host
    compiler's own frontend (compiler-libs) and enforces the cross-file
    invariants that the type checker cannot see:

    - R001  every [Abi.syscall] constructor has exactly one dispatch arm
            in syscall.ml and at least one stub in usys.ml
    - R002  every [Kconfig.t] knob is read somewhere outside kconfig.ml
            and mentioned in DESIGN.md
    - R003  kernel code (a "core" path segment) returns [Errno.*] or
            panics via {!Kpanic}; [invalid_arg]/[failwith] are banned
            outside panic.ml and kpanic.ml
    - R004  no wildcard [_] case in a match over [Task.state] or
            [Ktrace.event] — adding a state or event variant must force
            an audit of every consumer
    - R005  no [Sim.Engine] access from the user library (a "user" path
            segment): user code reads time through the uptime syscall,
            never the simulator's clock
    - R006  every [Ktrace.event] constructor is handled by the
            ktrace2perfetto converter (a "ktrace2perfetto" path
            segment): a new trace event must not silently vanish from
            the exported Perfetto view
    - R007  every vprobe static probe-point name is registered exactly
            once in vprobe.ml's [static_points] catalog and mentioned in
            DESIGN.md — a probe a user cannot look up might as well not
            exist

    Findings print as [file:line: rule-id message] and fail the build.
    [--allow FILE] grandfathers existing cases; an allow entry matching
    no finding is stale and fails the build too, so the list can only
    shrink.

    This module is the whole linter as a library: {!run} scans, applies
    the allowlist and renders the report. The [vlint.ml] executable and
    the lintbench experiment are both thin callers. *)

type finding = { file : string; line : int; rule : string; msg : string }

let findings : finding list ref = ref []

let report ~file ~line ~rule fmt =
  Printf.ksprintf
    (fun msg -> findings := { file; line; rule; msg } :: !findings)
    fmt

(* ---- file discovery and parsing ---- *)

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           if String.length entry > 0 && entry.[0] = '.' then []
           else if entry = "_build" then []
           else ml_files_under (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf path;
  try Some (Parse.implementation lexbuf)
  with exn ->
    report ~file:path ~line:1 ~rule:"R000" "parse error: %s"
      (Printexc.to_string exn);
    None

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let path_has_segment seg path =
  List.mem seg (String.split_on_char '/' path)

let basename_is name path = Filename.basename path = name

(* ---- extraction of the ground-truth declarations ---- *)

(* Constructors of a named variant type in a structure: (name, line). *)
let variant_ctors ~type_name structure =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_type (_, decls) ->
          List.concat_map
            (fun (d : Parsetree.type_declaration) ->
              if d.Parsetree.ptype_name.Asttypes.txt <> type_name then []
              else
                match d.Parsetree.ptype_kind with
                | Parsetree.Ptype_variant ctors ->
                    List.map
                      (fun (c : Parsetree.constructor_declaration) ->
                        (c.Parsetree.pcd_name.Asttypes.txt,
                         line_of c.Parsetree.pcd_loc))
                      ctors
                | _ -> [])
            decls
      | _ -> [])
    structure

(* Labels of a named record type in a structure: (label, line). *)
let record_labels ~type_name structure =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_type (_, decls) ->
          List.concat_map
            (fun (d : Parsetree.type_declaration) ->
              if d.Parsetree.ptype_name.Asttypes.txt <> type_name then []
              else
                match d.Parsetree.ptype_kind with
                | Parsetree.Ptype_record labels ->
                    List.map
                      (fun (l : Parsetree.label_declaration) ->
                        (l.Parsetree.pld_name.Asttypes.txt,
                         line_of l.Parsetree.pld_loc))
                      labels
                | _ -> [])
            decls
      | _ -> [])
    structure

(* ---- per-file scanning ---- *)

type scan = {
  mutable pat_ctors : (string * int) list;  (** ctor name, line (all patterns) *)
  mutable exp_ctors : (string * int) list;  (** ctor name, line (all constructs) *)
  mutable field_reads : string list;  (** record labels read or destructured *)
  mutable banned_raises : (string * int) list;  (** invalid_arg/failwith sites *)
  mutable sim_engine : int list;  (** lines touching Sim.Engine *)
  mutable matches : (string list * int option) list;
      (** per match/function: top-level case head ctors, wildcard line *)
}

let head_ctors_of_case (p : Parsetree.pattern) =
  let rec heads (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_construct (lid, _) -> [ Longident.last lid.Asttypes.txt ]
    | Parsetree.Ppat_or (a, b) -> heads a @ heads b
    | Parsetree.Ppat_alias (q, _) | Parsetree.Ppat_constraint (q, _) -> heads q
    | _ -> []
  in
  heads p

let wildcard_line_of_case (p : Parsetree.pattern) =
  let rec wild (p : Parsetree.pattern) =
    match p.Parsetree.ppat_desc with
    | Parsetree.Ppat_any -> Some (line_of p.Parsetree.ppat_loc)
    | Parsetree.Ppat_or (a, b) -> (
        match wild a with Some l -> Some l | None -> wild b)
    | Parsetree.Ppat_alias (q, _) | Parsetree.Ppat_constraint (q, _) -> wild q
    | _ -> None
  in
  wild p

let record_match s (cases : Parsetree.case list) =
  let heads =
    List.concat_map (fun (c : Parsetree.case) -> head_ctors_of_case c.Parsetree.pc_lhs) cases
  in
  let wildcard =
    List.find_map
      (fun (c : Parsetree.case) ->
        match c.Parsetree.pc_guard with
        | Some _ -> None  (* a guarded catch-all is not a silent default *)
        | None -> wildcard_line_of_case c.Parsetree.pc_lhs)
      cases
  in
  s.matches <- (heads, wildcard) :: s.matches

let scan_structure structure =
  let s =
    {
      pat_ctors = [];
      exp_ctors = [];
      field_reads = [];
      banned_raises = [];
      sim_engine = [];
      matches = [];
    }
  in
  let lid_is_sim_engine lid =
    let rec has = function
      | "Sim" :: "Engine" :: _ -> true
      | _ :: rest -> has rest
      | [] -> false
    in
    has (Longident.flatten lid)
  in
  let open Ast_iterator in
  let iter =
    {
      default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_construct (lid, _) ->
              s.exp_ctors <-
                (Longident.last lid.Asttypes.txt, line_of e.Parsetree.pexp_loc)
                :: s.exp_ctors
          | Parsetree.Pexp_field (_, lid) ->
              s.field_reads <- Longident.last lid.Asttypes.txt :: s.field_reads
          | Parsetree.Pexp_ident lid ->
              let name = Longident.last lid.Asttypes.txt in
              if name = "invalid_arg" || name = "failwith" then
                s.banned_raises <-
                  (name, line_of e.Parsetree.pexp_loc) :: s.banned_raises;
              if lid_is_sim_engine lid.Asttypes.txt then
                s.sim_engine <- line_of e.Parsetree.pexp_loc :: s.sim_engine
          | Parsetree.Pexp_match (_, cases) -> record_match s cases
          | Parsetree.Pexp_function cases -> record_match s cases
          | Parsetree.Pexp_open
              ( { Parsetree.popen_expr = { Parsetree.pmod_desc = Parsetree.Pmod_ident lid; _ };
                  _ },
                _ )
            when lid_is_sim_engine lid.Asttypes.txt ->
              s.sim_engine <- line_of e.Parsetree.pexp_loc :: s.sim_engine
          | _ -> ());
          default_iterator.expr self e);
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_construct (lid, _) ->
              s.pat_ctors <-
                (Longident.last lid.Asttypes.txt, line_of p.Parsetree.ppat_loc)
                :: s.pat_ctors
          | Parsetree.Ppat_record (fields, _) ->
              List.iter
                (fun ((lid : Longident.t Asttypes.loc), _) ->
                  s.field_reads <- Longident.last lid.Asttypes.txt :: s.field_reads)
                fields
          | _ -> ());
          default_iterator.pat self p);
    }
  in
  iter.structure iter structure;
  s

(* ---- the rules ---- *)

let r001 ~files =
  let find base =
    List.filter (fun (path, _, _) -> basename_is base path) files
  in
  match (find "abi.ml", find "syscall.ml", find "usys.ml") with
  | [ (abi_path, abi_str, _) ], [ (_, _, sc_scan) ], [ (_, _, us_scan) ] ->
      let ctors = variant_ctors ~type_name:"syscall" abi_str in
      if ctors = [] then
        report ~file:abi_path ~line:1 ~rule:"R001"
          "no [type syscall] variant found in abi.ml"
      else
        List.iter
          (fun (ctor, line) ->
            let arms =
              List.length
                (List.filter (fun (c, _) -> c = ctor) sc_scan.pat_ctors)
            in
            let stubs =
              List.length
                (List.filter (fun (c, _) -> c = ctor) us_scan.exp_ctors)
            in
            if arms = 0 then
              report ~file:abi_path ~line ~rule:"R001"
                "syscall %s has no dispatch arm in syscall.ml" ctor
            else if arms > 1 then
              report ~file:abi_path ~line ~rule:"R001"
                "syscall %s has %d dispatch arms in syscall.ml" ctor arms;
            if stubs = 0 then
              report ~file:abi_path ~line ~rule:"R001"
                "syscall %s has no stub in usys.ml" ctor)
          ctors
  | _ -> ()  (* tree without the syscall layer: rule not applicable *)

let r002 ~files ~design =
  match List.filter (fun (p, _, _) -> basename_is "kconfig.ml" p) files with
  | [ (kc_path, kc_str, _) ] ->
      let knobs = record_labels ~type_name:"t" kc_str in
      let reads_elsewhere =
        List.concat_map
          (fun (p, _, s) ->
            if basename_is "kconfig.ml" p then [] else s.field_reads)
          files
      in
      let design_text =
        match design with
        | None -> None
        | Some path ->
            let ic = open_in_bin path in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Some (path, text)
      in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
        at 0
      in
      List.iter
        (fun (knob, line) ->
          if not (List.mem knob reads_elsewhere) then
            report ~file:kc_path ~line ~rule:"R002"
              "Kconfig knob %s is never read outside kconfig.ml" knob;
          match design_text with
          | Some (dpath, text) when not (contains text knob) ->
              report ~file:kc_path ~line ~rule:"R002"
                "Kconfig knob %s is not mentioned in %s" knob dpath
          | _ -> ())
        knobs
  | _ -> ()

let r003 ~files =
  let exempt = [ "panic.ml"; "kpanic.ml" ] in
  List.iter
    (fun (path, _, s) ->
      if
        path_has_segment "core" path
        && not (List.mem (Filename.basename path) exempt)
      then
        List.iter
          (fun (name, line) ->
            report ~file:path ~line ~rule:"R003"
              "kernel code must return Errno.* or use Kpanic, not %s" name)
          s.banned_raises)
    files

let r004 ~files =
  let ctor_set ~base ~type_name =
    List.concat_map
      (fun (p, str, _) ->
        if basename_is base p then List.map fst (variant_ctors ~type_name str)
        else [])
      files
  in
  let states = ctor_set ~base:"task.ml" ~type_name:"state" in
  let events = ctor_set ~base:"ktrace.ml" ~type_name:"event" in
  let classify heads =
    if List.exists (fun h -> List.mem h events) heads then Some "Ktrace.event"
    else if List.exists (fun h -> List.mem h states) heads then
      Some "Task.state"
    else None
  in
  List.iter
    (fun (path, _, s) ->
      List.iter
        (fun (heads, wildcard) ->
          match (classify heads, wildcard) with
          | Some ty, Some line ->
              report ~file:path ~line ~rule:"R004"
                "wildcard _ in a match over %s: new variants must be \
                 handled explicitly"
                ty
          | _ -> ())
        s.matches)
    files

let r006 ~files =
  (* active only when the converter is part of the scanned tree, so the
     fixture run controls the rule by including a ktrace2perfetto dir *)
  let conv_files =
    List.filter (fun (p, _, _) -> path_has_segment "ktrace2perfetto" p) files
  in
  if conv_files <> [] then
    match
      List.filter
        (fun (p, _, _) ->
          basename_is "ktrace.ml" p && not (path_has_segment "ktrace2perfetto" p))
        files
    with
    | [ (kt_path, kt_str, _) ] ->
        let handled =
          List.concat_map
            (fun (_, _, s) -> List.map fst s.pat_ctors)
            conv_files
        in
        List.iter
          (fun (ctor, line) ->
            if not (List.mem ctor handled) then
              report ~file:kt_path ~line ~rule:"R006"
                "Ktrace.event %s is not handled by the ktrace2perfetto \
                 converter"
                ctor)
          (variant_ctors ~type_name:"event" kt_str)
    | _ -> ()

(* String constants inside the expression bound to [let <name> = ...],
   with their lines — how R007 reads vprobe's probe-point catalog without
   evaluating it. *)
let string_list_binding ~name structure =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.Parsetree.pstr_desc with
      | Parsetree.Pstr_value (_, bindings) ->
          List.concat_map
            (fun (vb : Parsetree.value_binding) ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var v when v.Asttypes.txt = name ->
                  let acc = ref [] in
                  let open Ast_iterator in
                  let iter =
                    {
                      default_iterator with
                      expr =
                        (fun self e ->
                          (match e.Parsetree.pexp_desc with
                          | Parsetree.Pexp_constant
                              (Parsetree.Pconst_string (s, _, _)) ->
                              acc :=
                                (s, line_of e.Parsetree.pexp_loc) :: !acc
                          | _ -> ());
                          default_iterator.expr self e);
                    }
                  in
                  iter.expr iter vb.Parsetree.pvb_expr;
                  List.rev !acc
              | _ -> [])
            bindings
      | _ -> [])
    structure

let str_contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

let r007 ~files ~design =
  match List.filter (fun (p, _, _) -> basename_is "vprobe.ml" p) files with
  | [ (vp_path, vp_str, _) ] ->
      let points = string_list_binding ~name:"static_points" vp_str in
      if points = [] then
        report ~file:vp_path ~line:1 ~rule:"R007"
          "no [static_points] probe catalog found in vprobe.ml"
      else begin
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (name, line) ->
            if not (Hashtbl.mem seen name) then begin
              Hashtbl.add seen name ();
              let count =
                List.length (List.filter (fun (n, _) -> n = name) points)
              in
              if count > 1 then
                report ~file:vp_path ~line ~rule:"R007"
                  "probe point %s is registered %d times in static_points"
                  name count
            end)
          points;
        match design with
        | None -> ()
        | Some dpath ->
            let ic = open_in_bin dpath in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let documented = Hashtbl.create 16 in
            List.iter
              (fun (name, line) ->
                if not (Hashtbl.mem documented name) then begin
                  Hashtbl.add documented name ();
                  if not (str_contains text name) then
                    report ~file:vp_path ~line ~rule:"R007"
                      "probe point %s is not documented in %s" name dpath
                end)
              points
      end
  | _ -> ()

let r005 ~files =
  List.iter
    (fun (path, _, s) ->
      if path_has_segment "user" path then
        List.iter
          (fun line ->
            report ~file:path ~line ~rule:"R005"
              "user code must not touch Sim.Engine (use the uptime \
               syscall)")
          s.sim_engine)
    files

(* ---- allowlist ---- *)

type allow = { a_rule : string; a_suffix : string; a_substr : string }

let load_allow path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | exception End_of_file ->
        close_in ic;
        List.rev acc
    | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go acc
        else
          let entry =
            match String.index_opt line ' ' with
            | None -> { a_rule = line; a_suffix = ""; a_substr = "" }
            | Some i -> (
                let rule = String.sub line 0 i in
                let rest =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                match String.index_opt rest ' ' with
                | None -> { a_rule = rule; a_suffix = rest; a_substr = "" }
                | Some j ->
                    {
                      a_rule = rule;
                      a_suffix = String.sub rest 0 j;
                      a_substr =
                        String.trim
                          (String.sub rest (j + 1) (String.length rest - j - 1));
                    })
          in
          go (entry :: acc)
  in
  go []

let suffix_matches ~suffix path =
  let sl = String.length suffix and pl = String.length path in
  suffix = "" || (sl <= pl && String.sub path (pl - sl) sl = suffix)

let substr_matches ~sub msg =
  let nl = String.length sub and hl = String.length msg in
  let rec at i = i + nl <= hl && (String.sub msg i nl = sub || at (i + 1)) in
  sub = "" || at 0

(* ---- run: scan, filter through the allowlist, render ---- *)

type result = {
  res_files : int;  (** .ml files parsed *)
  res_findings : int;  (** findings surviving the allowlist *)
  res_stale : int;  (** allow entries matching nothing *)
  res_output : string;  (** the report, exactly as the exe prints it *)
}

let failed r = r.res_findings > 0 || r.res_stale > 0

let run ?allow_path ?design_path ~dirs () =
  findings := [];
  let files =
    dirs
    |> List.concat_map ml_files_under
    |> List.filter_map (fun path ->
           match parse_file path with
           | None -> None
           | Some str -> Some (path, str, scan_structure str))
  in
  r001 ~files;
  r002 ~files ~design:design_path;
  r003 ~files;
  r004 ~files;
  r005 ~files;
  r006 ~files;
  r007 ~files ~design:design_path;
  let allows =
    match allow_path with None -> [] | Some p -> load_allow p
  in
  let used = Array.make (List.length allows) false in
  let surviving =
    List.filter
      (fun f ->
        let allowed = ref false in
        List.iteri
          (fun i a ->
            if
              a.a_rule = f.rule
              && suffix_matches ~suffix:a.a_suffix f.file
              && substr_matches ~sub:a.a_substr f.msg
            then begin
              used.(i) <- true;
              allowed := true
            end)
          allows;
        not !allowed)
      !findings
  in
  let surviving =
    List.sort
      (fun a b ->
        match compare a.file b.file with
        | 0 -> (
            match compare a.line b.line with
            | 0 -> compare (a.rule, a.msg) (b.rule, b.msg)
            | c -> c)
        | c -> c)
      surviving
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s:%d: %s %s\n" f.file f.line f.rule f.msg))
    surviving;
  let stale = ref 0 in
  List.iteri
    (fun i a ->
      if not used.(i) then begin
        incr stale;
        Buffer.add_string buf
          (Printf.sprintf "allowlist: stale entry: %s %s %s\n" a.a_rule
             a.a_suffix a.a_substr)
      end)
    allows;
  {
    res_files = List.length files;
    res_findings = List.length surviving;
    res_stale = !stale;
    res_output = Buffer.contents buf;
  }
