(** Command-line driver for {!Vlint_core}. See that module for the rule
    catalog; this file only parses argv and sets the exit code. *)

let usage = "vlint [--allow FILE] [--design FILE] DIR..."

let () =
  let allow_path = ref None and design_path = ref None and dirs = ref [] in
  let rec parse_args = function
    | "--allow" :: p :: rest ->
        allow_path := Some p;
        parse_args rest
    | "--design" :: p :: rest ->
        design_path := Some p;
        parse_args rest
    | d :: rest ->
        dirs := d :: !dirs;
        parse_args rest
    | [] -> ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !dirs = [] then begin
    prerr_endline usage;
    exit 2
  end;
  (* defaults resolve only if present, so the fixture run (which passes
     its own files) is hermetic *)
  if !allow_path = None && Sys.file_exists "tools/vlint/allow.txt" then
    allow_path := Some "tools/vlint/allow.txt";
  if !design_path = None && Sys.file_exists "DESIGN.md" then
    design_path := Some "DESIGN.md";
  let res =
    Vlint_core.run ?allow_path:!allow_path ?design_path:!design_path
      ~dirs:(List.rev !dirs) ()
  in
  print_string res.Vlint_core.res_output;
  if Vlint_core.failed res then exit 1
