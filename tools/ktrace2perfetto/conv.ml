(** ktrace2perfetto — convert a machine-format ktrace dump to Chrome
    trace-event JSON, loadable by Perfetto (ui.perfetto.dev) and
    chrome://tracing.

    Input: one event per line, the format {!Core.Ktrace.machine_line}
    writes ("ts_ns seq core tag args...") — produced by tracebench or by
    catting /proc/ktrace through a host-side capture. Output: a single
    JSON object with a [traceEvents] array:

    - every matched {!Core.Ktrace.Span_begin}/[Span_end] pair becomes a
      duration event ([ph:"X"]) on the owning pid's track, with the core
      recorded as an argument;
    - every other event becomes an instant ([ph:"i"]) on its core's
      track under the synthetic "cores" process;
    - metadata events name one track per core plus one per pid seen, so
      the UI shows "core 0..N-1" lanes and per-process lanes.

    Usage: conv.exe [TRACE-FILE] (stdin when omitted); JSON on stdout. *)

let usage = "ktrace2perfetto [TRACE-FILE]"

(* Timestamps: Chrome JSON wants microseconds; keep sub-µs precision as
   a decimal fraction so adjacent kernel events stay ordered. *)
let us_of_ns ns = Printf.sprintf "%.3f" (Int64.to_float ns /. 1e3)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The synthetic process that owns the per-core instant tracks. Real
   pids start at 1, so 0 is free. *)
let cores_pid = 0

(* Instant-event mapper: name and argument string for every non-span
   event. Spelled out constructor by constructor — vlint R006 checks
   that every [Ktrace.event] constructor appears here, so a new event
   kind cannot silently vanish from the converted trace. *)
let instant_of (ev : Core.Ktrace.event) =
  match ev with
  | Core.Ktrace.Syscall_enter (pid, name) ->
      Some ("sys_enter:" ^ name, Printf.sprintf "\"pid\":%d" pid)
  | Core.Ktrace.Syscall_exit (pid, name) ->
      Some ("sys_exit:" ^ name, Printf.sprintf "\"pid\":%d" pid)
  | Core.Ktrace.Ctx_switch (a, b) ->
      Some ("ctx_switch", Printf.sprintf "\"from\":%d,\"to\":%d" a b)
  | Core.Ktrace.Irq_enter line ->
      Some ("irq_enter", Printf.sprintf "\"line\":\"%s\"" (json_escape line))
  | Core.Ktrace.Irq_exit line ->
      Some ("irq_exit", Printf.sprintf "\"line\":\"%s\"" (json_escape line))
  | Core.Ktrace.Sched_wakeup pid ->
      Some ("wakeup", Printf.sprintf "\"pid\":%d" pid)
  | Core.Ktrace.Sched_migrate (pid, a, b) ->
      Some
        ( "migrate",
          Printf.sprintf "\"pid\":%d,\"from\":%d,\"to\":%d" pid a b )
  | Core.Ktrace.Ipi_send target ->
      Some ("ipi_send", Printf.sprintf "\"target\":%d" target)
  | Core.Ktrace.Ipi_recv core ->
      Some ("ipi_recv", Printf.sprintf "\"core\":%d" core)
  | Core.Ktrace.Kbd_report -> Some ("kbd_report", "")
  | Core.Ktrace.Event_delivered pid ->
      Some ("event_delivered", Printf.sprintf "\"pid\":%d" pid)
  | Core.Ktrace.Poll_return (pid, nready) ->
      Some
        ("poll_return", Printf.sprintf "\"pid\":%d,\"ready\":%d" pid nready)
  | Core.Ktrace.Frame_present pid ->
      Some ("frame_present", Printf.sprintf "\"pid\":%d" pid)
  | Core.Ktrace.Wm_composite -> Some ("wm_composite", "")
  | Core.Ktrace.Lock_acquire (name, core) ->
      Some
        ( "lock_acquire",
          Printf.sprintf "\"lock\":\"%s\",\"core\":%d" (json_escape name)
            core )
  | Core.Ktrace.Lock_release (name, core) ->
      Some
        ( "lock_release",
          Printf.sprintf "\"lock\":\"%s\",\"core\":%d" (json_escape name)
            core )
  | Core.Ktrace.Sem_block (pid, id) ->
      Some ("sem_block", Printf.sprintf "\"pid\":%d,\"sem\":%d" pid id)
  | Core.Ktrace.Sem_wake (pid, id) ->
      Some ("sem_wake", Printf.sprintf "\"pid\":%d,\"sem\":%d" pid id)
  | Core.Ktrace.Custom s ->
      Some ("custom", Printf.sprintf "\"msg\":\"%s\"" (json_escape s))
  (* spans are rendered as ph:"X" durations by the pairing pass;
     delay-accounting events become ph:"C" counter tracks below *)
  | Core.Ktrace.Span_begin _ | Core.Ktrace.Span_end _
  | Core.Ktrace.Task_state _ | Core.Ktrace.Runq_depth _ ->
      None

let () =
  let ic =
    match Array.to_list Sys.argv with
    | [ _ ] -> stdin
    | [ _; path ] -> open_in path
    | _ ->
        prerr_endline usage;
        exit 2
  in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       match Core.Ktrace.parse_machine_line line with
       | Some e -> entries := e :: !entries
       | None ->
           if not (String.equal (String.trim line) "") then
             Printf.eprintf "ktrace2perfetto: skipping malformed line: %s\n"
               line
     done
   with End_of_file -> ());
  let entries = List.rev !entries in
  let events = Buffer.create 65536 in
  let emitted = ref 0 in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        if !emitted > 0 then Buffer.add_string events ",\n  ";
        Buffer.add_string events s;
        incr emitted)
      fmt
  in
  (* track discovery: every core and pid that appears anywhere *)
  let cores = Hashtbl.create 8 and pids = Hashtbl.create 32 in
  let see_pid pid = if pid > 0 then Hashtbl.replace pids pid () in
  List.iter
    (fun (e : Core.Ktrace.entry) -> Hashtbl.replace cores e.Core.Ktrace.core ())
    entries;
  let spans, unmatched = Core.Ktrace.pair_spans entries in
  List.iter (fun sp -> see_pid sp.Core.Ktrace.sp_pid) spans;
  (* metadata: a track per core under the "cores" process, a process
     per pid *)
  emit
    "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"cores\"}}"
    cores_pid;
  Hashtbl.fold (fun c () acc -> c :: acc) cores []
  |> List.sort compare
  |> List.iter (fun c ->
         emit
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"core %d\"}}"
           cores_pid c c);
  Hashtbl.fold (fun p () acc -> p :: acc) pids []
  |> List.sort compare
  |> List.iter (fun p ->
         emit
           "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,\"args\":{\"name\":\"pid %d\"}}"
           p p);
  (* duration events from matched spans *)
  List.iter
    (fun (sp : Core.Ktrace.span) ->
      let dur =
        Int64.to_float (Int64.sub sp.Core.Ktrace.sp_end_ns sp.Core.Ktrace.sp_begin_ns)
        /. 1e3
      in
      emit
        "{\"ph\":\"X\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%.3f,\"args\":{\"core\":%d,\"span\":%d}}"
        (json_escape sp.Core.Ktrace.sp_name)
        (if sp.Core.Ktrace.sp_pid > 0 then sp.Core.Ktrace.sp_pid
         else cores_pid)
        sp.Core.Ktrace.sp_core
        (us_of_ns sp.Core.Ktrace.sp_begin_ns)
        dur sp.Core.Ktrace.sp_core sp.Core.Ktrace.sp_id)
    spans;
  (* spans still open at capture end (blocked syscalls, in-flight IRQs)
     become instants so they remain visible *)
  (* [pair_spans] only returns Span_begin entries here, but the match is
     spelled out so R004 holds for this tree too *)
  List.iter
    (fun (e : Core.Ktrace.entry) ->
      match e.Core.Ktrace.ev with
      | Core.Ktrace.Span_begin (id, pid, name) ->
          emit
            "{\"ph\":\"i\",\"name\":\"open:%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"args\":{\"span\":%d}}"
            (json_escape name)
            (if pid > 0 then pid else cores_pid)
            e.Core.Ktrace.core
            (us_of_ns e.Core.Ktrace.ts_ns)
            id
      | Core.Ktrace.Syscall_enter _ | Core.Ktrace.Syscall_exit _
      | Core.Ktrace.Ctx_switch _ | Core.Ktrace.Irq_enter _
      | Core.Ktrace.Irq_exit _ | Core.Ktrace.Sched_wakeup _
      | Core.Ktrace.Sched_migrate _ | Core.Ktrace.Ipi_send _
      | Core.Ktrace.Ipi_recv _ | Core.Ktrace.Kbd_report
      | Core.Ktrace.Event_delivered _ | Core.Ktrace.Poll_return _
      | Core.Ktrace.Frame_present _ | Core.Ktrace.Wm_composite
      | Core.Ktrace.Lock_acquire _ | Core.Ktrace.Lock_release _
      | Core.Ktrace.Sem_block _ | Core.Ktrace.Sem_wake _
      | Core.Ktrace.Custom _ | Core.Ktrace.Span_end _
      | Core.Ktrace.Task_state _ | Core.Ktrace.Runq_depth _ -> ())
    unmatched;
  (* counter tracks from the delay-accounting events (ktrace class
     "dstate"): one runnable-queue-depth series per core under the
     "cores" process, and one thread-state series per pid (0 runnable,
     1 running, 2 blocked, 3 zombie) so Perfetto renders them as
     step-function lanes *)
  List.iter
    (fun (e : Core.Ktrace.entry) ->
      match e.Core.Ktrace.ev with
      | Core.Ktrace.Runq_depth (core, depth) ->
          emit
            "{\"ph\":\"C\",\"name\":\"runq core %d\",\"pid\":%d,\"ts\":%s,\"args\":{\"depth\":%d}}"
            core cores_pid
            (us_of_ns e.Core.Ktrace.ts_ns)
            depth
      | Core.Ktrace.Task_state (pid, st) ->
          emit
            "{\"ph\":\"C\",\"name\":\"thread_state\",\"pid\":%d,\"ts\":%s,\"args\":{\"state\":%d}}"
            pid
            (us_of_ns e.Core.Ktrace.ts_ns)
            st
      | Core.Ktrace.Syscall_enter _ | Core.Ktrace.Syscall_exit _
      | Core.Ktrace.Ctx_switch _ | Core.Ktrace.Irq_enter _
      | Core.Ktrace.Irq_exit _ | Core.Ktrace.Sched_wakeup _
      | Core.Ktrace.Sched_migrate _ | Core.Ktrace.Ipi_send _
      | Core.Ktrace.Ipi_recv _ | Core.Ktrace.Kbd_report
      | Core.Ktrace.Event_delivered _ | Core.Ktrace.Poll_return _
      | Core.Ktrace.Frame_present _ | Core.Ktrace.Wm_composite
      | Core.Ktrace.Lock_acquire _ | Core.Ktrace.Lock_release _
      | Core.Ktrace.Sem_block _ | Core.Ktrace.Sem_wake _
      | Core.Ktrace.Custom _ | Core.Ktrace.Span_begin _
      | Core.Ktrace.Span_end _ -> ())
    entries;
  (* instants for everything that is not a span *)
  List.iter
    (fun (e : Core.Ktrace.entry) ->
      match instant_of e.Core.Ktrace.ev with
      | Some (name, args) ->
          emit
            "{\"ph\":\"i\",\"name\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"s\":\"t\",\"args\":{%s}}"
            (json_escape name) cores_pid e.Core.Ktrace.core
            (us_of_ns e.Core.Ktrace.ts_ns)
            args
      | None -> ())
    entries;
  Printf.printf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n  %s\n]}\n"
    (Buffer.contents events);
  if ic != stdin then close_in ic
