lib/proto/feature.ml: List Set
