lib/proto/stage.ml: Apps Array Assets Bytes Core Effect Hw List String User
