lib/proto/assets.ml: Array Bytes Char Float String User
