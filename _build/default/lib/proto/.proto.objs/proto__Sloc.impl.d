lib/proto/sloc.ml: Buffer Filename List Option Printf String Sys
