lib/proto/matrix.ml: Buffer Feature List Printf String
