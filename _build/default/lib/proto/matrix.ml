(** The feature matrix (Table 1): apps' feature requirements, each
    prototype's feature set, and the validation that makes the matrix a
    theorem about this codebase rather than a figure. *)

type app =
  | Helloworld
  | Donut
  | Donuts_many  (** multiple concurrent donuts: Prototype 2's target *)
  | Mario_noinput
  | Mario_full
  | Sysmon
  | Shell_utils
  | Slider
  | Buzzer
  | Music_player
  | Doom
  | Launcher
  | Blockchain
  | Video_player

let all_apps =
  [
    Helloworld; Donut; Donuts_many; Mario_noinput; Mario_full; Sysmon; Shell_utils; Slider;
    Buzzer; Music_player; Doom; Launcher; Blockchain; Video_player;
  ]

let app_name = function
  | Helloworld -> "helloworld"
  | Donut -> "donut"
  | Donuts_many -> "donuts (many)"
  | Mario_noinput -> "mario (no input)"
  | Mario_full -> "mario"
  | Sysmon -> "sysmon"
  | Shell_utils -> "shell & utilities"
  | Slider -> "slider"
  | Buzzer -> "buzzer"
  | Music_player -> "music player"
  | Doom -> "DOOM"
  | Launcher -> "launcher"
  | Blockchain -> "blockchain"
  | Video_player -> "video player"

(* What each app critically depends on (P4: minimum viable implementation —
   every feature exists because an app here lists it). *)
let requires = function
  | Helloworld -> [ Feature.Debug_msg; Feature.Timekeeping ]
  | Donut -> [ Feature.Framebuffer_io; Feature.Timekeeping; Feature.Debug_msg ]
  | Donuts_many ->
      [ Feature.Multitasking; Feature.Page_allocator; Feature.Framebuffer_io ]
  | Mario_noinput ->
      [ Feature.Virtual_memory; Feature.Syscalls_tasks; Feature.Framebuffer_io;
        Feature.Lib_minimal ]
  | Mario_full ->
      [ Feature.Syscalls_files; Feature.Usb_keyboard; Feature.Dev_proc_fs;
        Feature.Xv6_filesystem; Feature.Lib_wrappers ]
  | Sysmon -> [ Feature.Dev_proc_fs; Feature.Window_manager; Feature.Lib_wrappers ]
  | Shell_utils ->
      [ Feature.Syscalls_files; Feature.Xv6_filesystem; Feature.Uart_rx_irq;
        Feature.Lib_wrappers ]
  | Slider -> [ Feature.Syscalls_files; Feature.Xv6_filesystem; Feature.Framebuffer_io;
        Feature.Lib_wrappers ]
  | Buzzer -> [ Feature.Sound_pwm; Feature.Syscalls_files; Feature.Dev_proc_fs ]
  | Music_player ->
      [ Feature.Sound_pwm; Feature.Syscalls_files; Feature.Syscalls_threads;
        Feature.Lib_full ]
  | Doom ->
      [ Feature.Fat32; Feature.Syscalls_files; Feature.Usb_keyboard;
        Feature.Framebuffer_io; Feature.Lib_full ]
  | Launcher -> [ Feature.Window_manager; Feature.Syscalls_files; Feature.Lib_full ]
  | Blockchain -> [ Feature.Syscalls_threads; Feature.Multicore; Feature.Lib_full ]
  | Video_player -> [ Feature.Fat32; Feature.Sound_pwm; Feature.Syscalls_threads;
        Feature.Lib_full ]

(* The apps each prototype targets (Table 1 columns). *)
let apps_of_prototype = function
  | 1 -> [ Helloworld; Donut ]
  | 2 -> [ Helloworld; Donut; Donuts_many ]
  | 3 -> [ Helloworld; Donut; Donuts_many; Mario_noinput ]
  | 4 ->
      [ Helloworld; Donut; Donuts_many; Mario_noinput; Mario_full;
        Shell_utils; Slider; Buzzer ]
  | 5 -> all_apps
  | k -> invalid_arg (Printf.sprintf "Matrix.apps_of_prototype: %d" k)

(* The feature set of each prototype, closed under Feature.needs. *)
let rec features_of_prototype k =
  let base =
    match k with
    | 1 -> [ Feature.Debug_msg; Feature.Hw_timers; Feature.Timekeeping;
             Feature.Interrupts; Feature.Framebuffer_io; Feature.Uart_tx ]
    | 2 -> Feature.Multitasking :: Feature.Page_allocator
           :: features_base 1
    | 3 -> Feature.Privileges :: Feature.Virtual_memory
           :: Feature.Syscalls_tasks :: Feature.Lib_minimal
           :: features_base 2
    | 4 ->
        Feature.Syscalls_files :: Feature.File_abstraction :: Feature.Kmalloc
        :: Feature.Dev_proc_fs :: Feature.Ramdisk :: Feature.Xv6_filesystem
        :: Feature.Usb_keyboard :: Feature.Sound_pwm :: Feature.Uart_rx_irq
        :: Feature.Lib_wrappers :: features_base 3
    | 5 ->
        Feature.Syscalls_threads :: Feature.Multicore :: Feature.Window_manager
        :: Feature.Fat32 :: Feature.Sd_card :: Feature.Lib_full
        :: features_base 4
    | _ -> invalid_arg (Printf.sprintf "Matrix.features_of_prototype: %d" k)
  in
  Feature.close base

and features_base k = features_of_prototype k

(* ---- validation ---- *)

type violation =
  | Missing_feature of int * app * Feature.t
      (** prototype k targets app but lacks a required feature *)
  | Not_monotone of int * Feature.t
      (** prototype k drops a feature prototype k-1 had *)
  | Unmotivated of int * Feature.t
      (** feature present in prototype k but demanded by none of its apps
          (violates P4, minimum viable implementation) *)

let describe_violation = function
  | Missing_feature (k, app, f) ->
      Printf.sprintf "prototype %d: app %s needs missing feature %s" k
        (app_name app) (Feature.name f)
  | Not_monotone (k, f) ->
      Printf.sprintf "prototype %d: dropped feature %s present in prototype %d"
        k (Feature.name f) (k - 1)
  | Unmotivated (k, f) ->
      Printf.sprintf "prototype %d: feature %s motivated by no target app" k
        (Feature.name f)

let validate () =
  let violations = ref [] in
  for k = 1 to 5 do
    let features = features_of_prototype k in
    let apps = apps_of_prototype k in
    (* every app dependency satisfied *)
    List.iter
      (fun app ->
        List.iter
          (fun f ->
            if not (List.mem f features) then
              violations := Missing_feature (k, app, f) :: !violations)
          (requires app))
      apps;
    (* monotone growth *)
    if k > 1 then
      List.iter
        (fun f ->
          if not (List.mem f features) then
            violations := Not_monotone (k, f) :: !violations)
        (features_of_prototype (k - 1));
    (* P4: every feature motivated by some target app (transitively) *)
    let motivated =
      Feature.close (List.concat_map requires apps)
    in
    List.iter
      (fun f ->
        if not (List.mem f motivated) then
          violations := Unmotivated (k, f) :: !violations)
      features
  done;
  List.rev !violations

(* ---- rendering Table 1 ---- *)

let render () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%-36s %s\n" "feature \\ prototype" "1  2  3  4  5");
  Buffer.add_string buf (String.make 52 '-' ^ "\n");
  Buffer.add_string buf "apps:\n";
  List.iter
    (fun app ->
      Buffer.add_string buf (Printf.sprintf "  %-34s" (app_name app));
      for k = 1 to 5 do
        Buffer.add_string buf
          (if List.mem app (apps_of_prototype k) then " x " else " . ")
      done;
      Buffer.add_char buf '\n')
    all_apps;
  Buffer.add_string buf "features:\n";
  List.iter
    (fun f ->
      Buffer.add_string buf (Printf.sprintf "  %-34s" (Feature.name f));
      for k = 1 to 5 do
        Buffer.add_string buf
          (if List.mem f (features_of_prototype k) then " x " else " . ")
      done;
      Buffer.add_char buf '\n')
    Feature.all;
  Buffer.contents buf
