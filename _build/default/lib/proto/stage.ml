(** The prototype stager — "forward engineering" support: boot a machine
    configured as prototype K with that stage's programs, files and
    assets, and drive its target apps.

    Prototypes 1–2 have no userspace: their donuts run as kernel-resident
    tasks rendering straight at the hardware, exactly like the paper's
    baremetal appliance (P1) and kernel-task stage (P2). Prototype 3
    onward loads programs from the ramdisk via exec. *)

type t = { prototype : int; kernel : Core.Kernel.t; env : User.Uenv.t }

(* Program sizes model the paper's Figure 7 app footprints: early
   prototypes are hundreds of SLoC; Prototype 5 binaries link newlib and
   minisdl and jump to hundreds of KB. *)
let program_table env =
  [
    ("hello", 4 * 1024, Apps.Hello.main env);
    ("donut", 24 * 1024, Apps.Donut.main env);
    ("mario", 96 * 1024, Apps.Mario.main env);
    ("sysmon", 48 * 1024, Apps.Sysmon.main env);
    ("sh", 56 * 1024, Apps.Shell.main env);
    ("ls", 16 * 1024, Apps.Utils.ls_main env);
    ("cat", 12 * 1024, Apps.Utils.cat_main env);
    ("echo", 8 * 1024, Apps.Utils.echo_main env);
    ("wc", 12 * 1024, Apps.Utils.wc_main env);
    ("mkdir", 8 * 1024, Apps.Utils.mkdir_main env);
    ("rm", 8 * 1024, Apps.Utils.rm_main env);
    ("grep", 16 * 1024, Apps.Utils.grep_main env);
    ("kill", 8 * 1024, Apps.Utils.kill_main env);
    ("ps", 8 * 1024, Apps.Utils.ps_main env);
    ("uptime", 8 * 1024, Apps.Utils.uptime_main env);
    ("slider", 64 * 1024, Apps.Slider.main env);
    ("buzzer", 12 * 1024, Apps.Buzzer.main env);
    (* Prototype 5 binaries link newlib/minisdl; their VELF images sit just
       under xv6fs's ~268 KB file limit (§4.5) — the rest of their
       footprint arrives via sbrk at run time. *)
    ("music", 240 * 1024, Apps.Music_player.main env);
    ("doom", 256 * 1024, Apps.Doom.main env);
    ("video", 224 * 1024, Apps.Video_player.main env);
    ("launcher", 200 * 1024, Apps.Launcher.main env);
    ("blockchain", 180 * 1024, Apps.Blockchain.main env);
  ]

let programs_for_prototype env k =
  let names =
    match k with
    | 1 | 2 -> []
    | 3 -> [ "hello"; "donut"; "mario" ]
    | 4 ->
        [ "hello"; "donut"; "mario"; "sh"; "ls"; "cat"; "echo"; "wc"; "mkdir";
          "rm"; "grep"; "kill"; "ps"; "uptime"; "slider"; "buzzer" ]
    | 5 -> List.map (fun (n, _, _) -> n) (program_table env)
    | _ -> invalid_arg "Stage.programs_for_prototype"
  in
  List.filter_map
    (fun (name, size, main) ->
      if List.mem name names then
        Some { Core.Kernel.prog_name = name; prog_size = size; prog_main = main }
      else None)
    (program_table env)

(* Ramdisk extras per prototype: P4 gets slides and ROMs on xv6fs (no SD
   yet); scripts for the shell. *)
let ramdisk_files k =
  if k >= 4 then
    [
      ("/slides/one.bmp", Assets.slide_bmp ());
      ("/slides/two.pngl", Assets.slide_pngl ());
      ("/slides/three.gifl", Assets.slide_gifl ());
      ("/roms/mario.nes", Assets.nes_rom "mario");
      ("/roms/zelda.nes", Assets.nes_rom "zelda");
      ("/roms/tetris.nes", Assets.nes_rom "tetris");
      ("/scripts/demo.sh", Bytes.of_string "echo demo script\nuptime\nls /\n");
    ]
  else []

(* FAT32 partition contents (Prototype 5): user-exchangeable media. *)
let fat_files k =
  if k >= 5 then
    [
      ("/videos/clip480.mv1", Assets.clip_480p ());
      ("/videos/clip720.mv1", Assets.clip_720p ());
      ("/videos/clipaudio.vogg", Assets.clip_audio_vogg ());
      ("/music/track1.vogg", Assets.track_vogg ());
      ("/music/cover1.pngl", Assets.cover_pngl ());
      ("/slides/hires.pngl", Assets.slide_pngl_hires ());
      ("/slides/one.bmp", Assets.slide_bmp ());
      ("/doom/doom1.wad", Assets.doom_wad ());
    ]
  else []

let boot ?(platform = Hw.Board.pi3) ?(seed = 42L) ?(config_tweak = fun c -> c)
    ?(track_dirty = true) ?usb_files ~prototype () =
  let env = User.Uenv.create () in
  let config = config_tweak (Core.Kconfig.prototype prototype) in
  env.User.Uenv.e_simd <- config.Core.Kconfig.simd_pixel_ops;
  let spec =
    {
      Core.Kernel.default_spec with
      sp_platform = platform;
      sp_config = config;
      sp_seed = seed;
      sp_programs = programs_for_prototype env prototype;
      sp_files = ramdisk_files prototype;
      sp_fat_files = fat_files prototype;
      sp_usb_files = usb_files;
      sp_track_dirty = track_dirty;
      sp_sd_mib = 64;
    }
  in
  let kernel = Core.Kernel.boot spec in
  env.User.Uenv.e_fb <- kernel.Core.Kernel.fb;
  { prototype; kernel; env }

(* ---- running apps ---- *)

(* Start a registered program as a fresh user process (P3+). *)
let start t name argv =
  let progs = program_table t.env in
  match List.find_opt (fun (n, _, _) -> String.equal n name) progs with
  | None -> invalid_arg ("Stage.start: no program " ^ name)
  | Some (_, _, main) ->
      Core.Kernel.spawn_user t.kernel ~name (fun () -> main argv)

(* Prototype 1's baremetal donut: rendered by a kernel task, paced by
   busy-waiting on the timer (there is no sleep yet); Prototype 2's donuts
   sleep instead, visualizing the scheduler. *)
let kernel_donut t ~pace ~frames ~speed =
  let kernel = t.kernel in
  let fb =
    match kernel.Core.Kernel.fb with
    | Some fb -> fb
    | None -> invalid_arg "Stage.kernel_donut: no framebuffer"
  in
  Core.Kernel.spawn_kernel kernel ~name:"donut-k" (fun () ->
      let a = ref 0.0 and b = ref 0.0 in
      for _ = 1 to frames do
        let lum, points =
          Apps.Donut.render_luminance ~cols:100 ~rows:75 ~a:!a ~b:!b
        in
        Effect.perform (Core.Abi.Burn (points * Apps.Donut.cycles_per_point));
        for y = 0 to 74 do
          for x = 0 to 99 do
            let l = lum.((y * 100) + x) in
            let shade = if l < 0.0 then 0 else min 255 (int_of_float (l *. 200.0) + 55) in
            Hw.Framebuffer.write_pixel fb ~x:(x * 2) ~y:(y * 2)
              ((shade lsl 16) lor (shade lsl 8) lor (shade / 2))
          done
        done;
        Hw.Framebuffer.flush fb;
        (match pace with
        | `Busy_wait -> Effect.perform (Core.Abi.Burn 16_000_000)
        | `Sleep ms -> (
            match Effect.perform (Core.Abi.Sys (Core.Abi.Sleep ms)) with
            | Core.Abi.R_int _ -> ()
            | Core.Abi.R_bytes _ | Core.Abi.R_pair _ | Core.Abi.R_stat _
            | Core.Abi.R_mmap _ ->
                ()));
        a := !a +. speed;
        b := !b +. (speed /. 2.0)
      done;
      0)

let run_for t ns = Core.Kernel.run_for t.kernel ns
let uart t = Core.Kernel.uart_output t.kernel
