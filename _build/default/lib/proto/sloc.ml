(** Source-line analysis (Figure 7): counts this repository's own source,
    with each module attributed to the prototype that introduces it and to
    a kernel subsystem category — regenerating both panels of the figure
    from the artifact itself. *)

type category =
  | Core_kernel  (** sched, tasks, vm, syscalls *)
  | Drivers  (** device models + kernel drivers *)
  | Filesystems
  | Debugging
  | Userlib
  | Apps

let category_name = function
  | Core_kernel -> "kernel core"
  | Drivers -> "drivers/io"
  | Filesystems -> "filesystems"
  | Debugging -> "debug support"
  | Userlib -> "user library"
  | Apps -> "apps"

(* file -> (prototype introduced, category) *)
let inventory =
  [
    (* Prototype 1: baremetal IO *)
    ("lib/sim/engine.ml", 1, Core_kernel);
    ("lib/sim/heap.ml", 1, Core_kernel);
    ("lib/sim/rng.ml", 1, Core_kernel);
    ("lib/sim/stats.ml", 1, Core_kernel);
    ("lib/hw/irq.ml", 1, Drivers);
    ("lib/hw/intc.ml", 1, Drivers);
    ("lib/hw/timer.ml", 1, Drivers);
    ("lib/hw/uart.ml", 1, Drivers);
    ("lib/hw/mailbox.ml", 1, Drivers);
    ("lib/hw/framebuffer.ml", 1, Drivers);
    ("lib/hw/board.ml", 1, Drivers);
    ("lib/core/console.ml", 1, Drivers);
    ("lib/core/kconfig.ml", 1, Core_kernel);
    ("lib/core/kcost.ml", 1, Core_kernel);
    ("lib/core/errno.ml", 1, Core_kernel);
    ("lib/core/spinlock.ml", 1, Core_kernel);
    (* Prototype 2: multitasking *)
    ("lib/core/task.ml", 2, Core_kernel);
    ("lib/core/sched.ml", 2, Core_kernel);
    ("lib/core/kalloc.ml", 2, Core_kernel);
    (* Prototype 3: user/kernel *)
    ("lib/core/abi.ml", 3, Core_kernel);
    ("lib/core/vm.ml", 3, Core_kernel);
    ("lib/core/velf.ml", 3, Core_kernel);
    ("lib/core/proc.ml", 3, Core_kernel);
    ("lib/user/usys.ml", 3, Userlib);
    ("lib/user/umalloc.ml", 3, Userlib);
    ("lib/user/uenv.ml", 3, Userlib);
    ("lib/user/gfx.ml", 3, Userlib);
    (* Prototype 4: files *)
    ("lib/core/fd.ml", 4, Core_kernel);
    ("lib/core/vfs.ml", 4, Filesystems);
    ("lib/core/bufcache.ml", 4, Filesystems);
    ("lib/fs/blockdev.ml", 4, Filesystems);
    ("lib/fs/vpath.ml", 4, Filesystems);
    ("lib/fs/xv6fs.ml", 4, Filesystems);
    ("lib/core/devfs.ml", 4, Drivers);
    ("lib/core/procfs.ml", 4, Filesystems);
    ("lib/core/pipe.ml", 4, Core_kernel);
    ("lib/core/kbd.ml", 4, Drivers);
    ("lib/core/audio.ml", 4, Drivers);
    ("lib/hw/usb.ml", 4, Drivers);
    ("lib/hw/gpio.ml", 4, Drivers);
    ("lib/hw/dma.ml", 4, Drivers);
    ("lib/hw/pwm_audio.ml", 4, Drivers);
    ("lib/core/syscall.ml", 4, Core_kernel);
    ("lib/core/kernel.ml", 4, Core_kernel);
    ("lib/user/uevents.ml", 4, Userlib);
    (* Prototype 5: desktop *)
    ("lib/fs/fat32.ml", 5, Filesystems);
    ("lib/fs/mbr.ml", 5, Filesystems);
    ("lib/hw/sd.ml", 5, Drivers);
    ("lib/core/sem.ml", 5, Core_kernel);
    ("lib/core/wm.ml", 5, Core_kernel);
    ("lib/user/uthread.ml", 5, Userlib);
    ("lib/user/minisdl.ml", 5, Userlib);
    ("lib/user/deflate.ml", 5, Userlib);
    ("lib/user/lzw.ml", 5, Userlib);
    ("lib/user/adpcm.ml", 5, Userlib);
    ("lib/user/yuv.ml", 5, Userlib);
    ("lib/user/bmp.ml", 5, Userlib);
    ("lib/user/pnglite.ml", 5, Userlib);
    ("lib/user/giflite.ml", 5, Userlib);
    ("lib/user/mv1.ml", 5, Userlib);
    ("lib/user/sha256.ml", 5, Userlib);
    ("lib/user/md5.ml", 5, Userlib);
    (* debugging support (reported with its own color in Fig. 7) *)
    ("lib/core/ktrace.ml", 1, Debugging);
    ("lib/core/debugmon.ml", 3, Debugging);
    ("lib/core/unwind.ml", 3, Debugging);
    ("lib/core/panic.ml", 4, Debugging);
    ("lib/hw/power.ml", 5, Drivers);
    (* apps *)
    ("lib/apps/hello.ml", 1, Apps);
    ("lib/apps/donut.ml", 1, Apps);
    ("lib/apps/mario.ml", 3, Apps);
    ("lib/apps/sysmon.ml", 5, Apps);
    ("lib/apps/shell.ml", 4, Apps);
    ("lib/apps/utils.ml", 4, Apps);
    ("lib/apps/slider.ml", 4, Apps);
    ("lib/apps/buzzer.ml", 4, Apps);
    ("lib/apps/music_player.ml", 5, Apps);
    ("lib/apps/doom.ml", 5, Apps);
    ("lib/apps/video_player.ml", 5, Apps);
    ("lib/apps/launcher.ml", 5, Apps);
    ("lib/apps/blockchain.ml", 5, Apps);
  ]

(* Count non-blank, non-comment-only lines, the usual SLoC convention. *)
let count_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let count = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let is_comment =
             String.length line >= 2
             && (String.equal (String.sub line 0 2) "(*"
                || String.equal (String.sub line 0 2) "*)")
           in
           if String.length line > 0 && not is_comment then incr count
         done
       with End_of_file -> close_in ic);
      Some !count

(* Locate the repo root: walk up from cwd until dune-project appears. *)
let repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else begin
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
    end
  in
  up (Sys.getcwd ())

type report = {
  per_prototype : (int * (category * int) list) list;
  kernel_totals : (int * int) list;  (** cumulative kernel SLoC by stage *)
  app_totals : (int * int) list;  (** cumulative app+userlib SLoC *)
  missing : string list;
}

let analyze () =
  let root = Option.value ~default:"." (repo_root ()) in
  let counted =
    List.filter_map
      (fun (path, proto, cat) ->
        match count_file (Filename.concat root path) with
        | Some n -> Some (path, proto, cat, n)
        | None -> None)
      inventory
  in
  let missing =
    List.filter_map
      (fun (path, _, _) ->
        if Sys.file_exists (Filename.concat root path) then None else Some path)
      inventory
  in
  let per_prototype =
    List.init 5 (fun i ->
        let k = i + 1 in
        let cats =
          List.filter_map
            (fun cat ->
              let n =
                List.fold_left
                  (fun acc (_, proto, c, n) ->
                    if proto = k && c = cat then acc + n else acc)
                  0 counted
              in
              if n > 0 then Some (cat, n) else None)
            [ Core_kernel; Drivers; Filesystems; Debugging; Userlib; Apps ]
        in
        (k, cats))
  in
  let cumulative pred =
    List.init 5 (fun i ->
        let k = i + 1 in
        let n =
          List.fold_left
            (fun acc (_, proto, cat, n) ->
              if proto <= k && pred cat then acc + n else acc)
            0 counted
        in
        (k, n))
  in
  {
    per_prototype;
    kernel_totals =
      cumulative (function
        | Core_kernel | Drivers | Filesystems | Debugging -> true
        | Userlib | Apps -> false);
    app_totals =
      cumulative (function
        | Userlib | Apps -> true
        | Core_kernel | Drivers | Filesystems | Debugging -> false);
    missing;
  }

let render report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "kernel SLoC by prototype (cumulative):\n";
  List.iter
    (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "  prototype %d: %6d\n" k n))
    report.kernel_totals;
  Buffer.add_string buf "userspace SLoC by prototype (cumulative):\n";
  List.iter
    (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "  prototype %d: %6d\n" k n))
    report.app_totals;
  Buffer.add_string buf "newly introduced, by stage and subsystem:\n";
  List.iter
    (fun (k, cats) ->
      Buffer.add_string buf (Printf.sprintf "  prototype %d:\n" k);
      List.iter
        (fun (cat, n) ->
          Buffer.add_string buf
            (Printf.sprintf "    %-14s %6d\n" (category_name cat) n))
        cats)
    report.per_prototype;
  if report.missing <> [] then begin
    Buffer.add_string buf "missing files:\n";
    List.iter (fun p -> Buffer.add_string buf ("  " ^ p ^ "\n")) report.missing
  end;
  Buffer.contents buf
