(** Synthetic media assets standing in for the paper's game ROMs, photos,
    OGG tracks, MPEG clips and DOOM WADs (DESIGN.md's substitution rule:
    the content is generated, the formats and the decode work are real).

    Generation is memoized — encoding 720p DCT frames is the expensive
    part of staging, and every benchmark boots its own kernel. *)

let memo f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
        let v = f () in
        cache := Some v;
        v

(* ---- images ---- *)

let test_card ~width ~height ~seed =
  let pixels =
    Array.init (width * height) (fun i ->
        let x = i mod width and y = i / width in
        let r = (x * 255 / width) lxor (seed * 37) land 0xff in
        let g = (y * 255 / height + seed * 11) land 0xff in
        let b = ((x + y) * 127 / (width + height) * 2) land 0xff in
        (r lsl 16) lor (g lsl 8) lor b)
  in
  { User.Bmp.width; height; pixels }

let slide_bmp = memo (fun () -> User.Bmp.encode (test_card ~width:320 ~height:240 ~seed:1))

let slide_pngl =
  memo (fun () -> User.Pnglite.encode (test_card ~width:320 ~height:240 ~seed:2))

(* A high-res PNG for Prototype 5's "slider with high res PNGs" note. *)
let slide_pngl_hires =
  memo (fun () -> User.Pnglite.encode (test_card ~width:640 ~height:480 ~seed:5))

let slide_gifl =
  memo (fun () ->
      let width = 160 and height = 120 in
      let frames =
        Array.init 6 (fun fr ->
            let img = test_card ~width ~height ~seed:(10 + fr) in
            let _, indices = User.Giflite.quantize_332 img.User.Bmp.pixels in
            indices)
      in
      let palette, _ = User.Giflite.quantize_332 (test_card ~width ~height ~seed:10).User.Bmp.pixels in
      User.Giflite.encode
        { User.Giflite.width; height; palette; frames; delay_ms = 120 })

let cover_pngl =
  memo (fun () -> User.Pnglite.encode (test_card ~width:200 ~height:200 ~seed:3))

(* ---- audio ---- *)

let melody ~seconds ~rate =
  let notes = [| 262; 330; 392; 523; 392; 330 |] in
  Array.init (seconds * rate) (fun i ->
      let note = notes.(i / (rate / 2) mod Array.length notes) in
      let phase = float_of_int i *. float_of_int note *. 2.0 *. Float.pi /. float_of_int rate in
      int_of_float (10000.0 *. sin phase))

let track_vogg =
  memo (fun () -> User.Adpcm.pack ~rate:44100 (melody ~seconds:8 ~rate:44100))

let clip_audio_vogg =
  memo (fun () -> User.Adpcm.pack ~rate:44100 (melody ~seconds:4 ~rate:44100))

(* ---- video ---- *)

let video_frame ~width ~height ~t =
  let y_plane = Array.make (width * height) 0 in
  let u_plane = Array.make (width / 2 * (height / 2)) 128 in
  let v_plane = Array.make (width / 2 * (height / 2)) 128 in
  (* a moving luminance gradient plus a bouncing bright square *)
  let bx = (t * 37) mod (width - 64) and by = (t * 23) mod (height - 64) in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      let base = 40 + ((x + (t * 8)) * 120 / width) + (y * 40 / height) in
      let boxed = x >= bx && x < bx + 64 && y >= by && y < by + 64 in
      y_plane.((y * width) + x) <- (if boxed then 230 else min 235 base)
    done
  done;
  for cy = 0 to (height / 2) - 1 do
    for cx = 0 to (width / 2) - 1 do
      u_plane.((cy * (width / 2)) + cx) <- 100 + ((cx + t) * 56 / (width / 2));
      v_plane.((cy * (width / 2)) + cx) <- 160 - (cy * 48 / (height / 2))
    done
  done;
  { User.Mv1.y_plane; u_plane; v_plane }

let make_clip ~width ~height ~nframes =
  let frames =
    Array.init nframes (fun t ->
        User.Mv1.encode_frame ~width ~height ~quality:User.Mv1.quality
          (video_frame ~width ~height ~t))
  in
  User.Mv1.pack { User.Mv1.width; height; fps = 30; frames }

let clip_480p = memo (fun () -> make_clip ~width:640 ~height:480 ~nframes:6)
let clip_720p = memo (fun () -> make_clip ~width:1280 ~height:720 ~nframes:4)

(* ---- the DOOM "WAD": multi-MB of assets whose load exercises FAT32
   range IO, §4.5/§5.2 ---- *)

let doom_wad =
  memo (fun () ->
      let bytes = 3 * 1024 * 1024 in
      Bytes.init bytes (fun i -> Char.chr ((i * 131) land 0xff)))

(* NES "ROMs" for the Prototype 4 game library (content is a seed the
   engine could hash into level variety). *)
let nes_rom name =
  let data = Bytes.create 32768 in
  String.iteri (fun i c -> Bytes.set data (i mod 32768) c) (name ^ "-rom");
  for i = String.length name + 4 to 32767 do
    Bytes.set_uint8 data i ((i * 17) land 0xff)
  done;
  data
