(** music player — plays VOGG files while displaying the album cover
    (§3): the decode thread streams samples to /dev/sb in parallel with
    the UI thread, the §4.5 SDL-audio threading pattern. The cover is a
    PNG-lite or BMP loaded from the file system. *)


open User

let draw_cover gfx cover_path title =
  Gfx.fill gfx (Gfx.rgb 18 18 26);
  (match Usys.slurp cover_path with
  | Error _ -> Gfx.text gfx ~x:20 ~y:60 ~color:0x808080 "NO COVER"
  | Ok data -> (
      let image =
        match Pnglite.decode data with
        | Ok img -> Some img
        | Error _ -> (
            match Bmp.decode data with Ok img -> Some img | Error _ -> None)
      in
      match image with
      | None -> Gfx.text gfx ~x:20 ~y:60 ~color:0x808080 "BAD COVER"
      | Some img ->
          Usys.burn
            (Pnglite.decode_cycles ~payload_bytes:(Bytes.length data)
               ~pixels:(img.Pnglite.width * img.Pnglite.height));
          let ox = max 0 ((gfx.Gfx.width - img.Pnglite.width) / 2) in
          let oy = max 0 ((gfx.Gfx.height - 40 - img.Pnglite.height) / 2) in
          for y = 0 to img.Pnglite.height - 1 do
            for x = 0 to img.Pnglite.width - 1 do
              Gfx.put gfx ~x:(ox + x) ~y:(oy + y)
                img.Pnglite.pixels.((y * img.Pnglite.width) + x)
            done
          done));
  Gfx.text gfx ~x:10 ~y:(gfx.Gfx.height - 30) ~color:0xffffff title

(* argv: music [song.vogg] [cover] [window] *)
let main env argv =
  Usys.in_frame "music_main" (fun () ->
      let song = match argv with _ :: s :: _ -> s | _ -> "/d/music/track1.vogg" in
      let cover =
        match argv with _ :: _ :: c :: _ -> c | _ -> "/d/music/cover1.pngl"
      in
      let windowed = List.exists (String.equal "window") argv in
      match Usys.slurp song with
      | Error e -> e
      | Ok data -> (
          match Adpcm.unpack data with
          | Error _ -> Core.Errno.einval
          | Ok (_rate, nsamples, payload) -> (
              let mode =
                if windowed then
                  Minisdl.Window { w = 240; h = 200; x = 360; y = 240; alpha = 255 }
                else Minisdl.Fullscreen
              in
              match Minisdl.init env mode with
              | Error e -> e
              | Ok sdl ->
                  let gfx = Minisdl.surface sdl in
                  draw_cover gfx cover (Fs.Vpath.basename song);
                  Minisdl.present sdl;
                  (* decoded stream served to the audio thread chunk by
                     chunk; each pull pays decode cycles *)
                  let samples = Adpcm.decode payload ~samples:nsamples in
                  let pos = ref 0 in
                  let callback n =
                    if !pos >= nsamples then [||]
                    else begin
                      let k = min n (nsamples - !pos) in
                      Usys.burn (k * Adpcm.cycles_per_sample);
                      let out = Array.sub samples !pos k in
                      pos := !pos + k;
                      out
                    end
                  in
                  ignore (Minisdl.open_audio sdl callback);
                  (* progress bar while the song plays *)
                  while !pos < nsamples do
                    ignore (Usys.sleep 250);
                    let frac = float_of_int !pos /. float_of_int nsamples in
                    Gfx.fill_rect gfx ~x:10 ~y:(gfx.Gfx.height - 12)
                      ~w:(gfx.Gfx.width - 20) ~h:6 (Gfx.rgb 40 40 48);
                    Gfx.fill_rect gfx ~x:10 ~y:(gfx.Gfx.height - 12)
                      ~w:(int_of_float (frac *. float_of_int (gfx.Gfx.width - 20)))
                      ~h:6 (Gfx.rgb 90 200 255);
                    Minisdl.present sdl
                  done;
                  Minisdl.quit sdl;
                  0)))
