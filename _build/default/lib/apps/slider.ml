(** slider — the slide-deck player (§3): walks a directory of BMP /
    PNG-lite / GIF-lite images (the paper's BMP/PNG/GIF), advancing on a
    timer or key press. Intended for presenting the OS design from the OS
    itself, Figure 1(f). *)


open User

let load_image data =
  match Pnglite.decode data with
  | Ok img -> Some (`Still img)
  | Error _ -> (
      match Bmp.decode data with
      | Ok img -> Some (`Still img)
      | Error _ -> (
          match Giflite.decode data with
          | Ok gif -> Some (`Anim gif)
          | Error _ -> None))

let draw_still gfx (img : Bmp.image) =
  Gfx.fill gfx 0x000000;
  let ox = max 0 ((gfx.Gfx.width - img.Bmp.width) / 2) in
  let oy = max 0 ((gfx.Gfx.height - img.Bmp.height) / 2) in
  for y = 0 to min (img.Bmp.height - 1) (gfx.Gfx.height - 1 - oy) do
    for x = 0 to min (img.Bmp.width - 1) (gfx.Gfx.width - 1 - ox) do
      Gfx.put gfx ~x:(ox + x) ~y:(oy + y) img.Bmp.pixels.((y * img.Bmp.width) + x)
    done
  done

let list_dir path =
  let fd = Usys.open_ path Core.Abi.o_rdonly in
  if fd < 0 then []
  else begin
    let buf = Buffer.create 256 in
    let rec drain () =
      match Usys.read fd 4096 with
      | Ok b when Bytes.length b > 0 ->
          Buffer.add_bytes buf b;
          drain ()
      | Ok _ | Error _ -> ()
    in
    drain ();
    ignore (Usys.close fd);
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun s -> String.length s > 0)
    |> List.sort compare
  end

(* argv: slider [dir] [dwell_ms] [loops] *)
let main env argv =
  Usys.in_frame "slider_main" (fun () ->
      let dir = match argv with _ :: d :: _ -> d | _ -> "/d/slides" in
      let dwell = match argv with _ :: _ :: t :: _ -> int_of_string t | _ -> 2000 in
      let loops = match argv with _ :: _ :: _ :: l :: _ -> int_of_string l | _ -> 1 in
      let slides = list_dir dir in
      if slides = [] then begin
        Usys.printf "slider: no slides in %s\n" dir;
        1
      end
      else begin
        match Gfx.direct env with
        | Error e -> e
        | Ok gfx ->
            let ev_fd =
              Usys.open_ "/dev/events" (Core.Abi.o_rdonly lor Core.Abi.o_nonblock)
            in
            let show name =
              let path = dir ^ "/" ^ name in
              match Usys.slurp path with
              | Error _ -> ()
              | Ok data -> (
                  Usys.burn (Bytes.length data * 2) (* parse/copy *);
                  match load_image data with
                  | None -> Usys.printf "slider: cannot decode %s\n" name
                  | Some (`Still img) ->
                      Usys.burn
                        (Pnglite.decode_cycles
                           ~payload_bytes:(Bytes.length data)
                           ~pixels:(img.Bmp.width * img.Bmp.height));
                      draw_still gfx img;
                      Gfx.present gfx;
                      (* dwell, cut short by any key *)
                      let waited = ref 0 in
                      let skip = ref false in
                      while (not !skip) && !waited < dwell do
                        ignore (Usys.sleep 50);
                        waited := !waited + 50;
                        if ev_fd >= 0 && Uevents.poll_events ev_fd <> [] then
                          skip := true
                      done
                  | Some (`Anim gif) ->
                      let out = Array.make (gif.Giflite.width * gif.Giflite.height) 0 in
                      let nframes = Array.length gif.Giflite.frames in
                      let shown = ref 0 in
                      let budget = max 1 (dwell / max 1 gif.Giflite.delay_ms) in
                      while !shown < budget do
                        Giflite.render gif !shown out;
                        Usys.burn
                          (gif.Giflite.width * gif.Giflite.height
                          * Lzw.cycles_per_byte);
                        draw_still gfx
                          {
                            Bmp.width = gif.Giflite.width;
                            height = gif.Giflite.height;
                            pixels = out;
                          };
                        Gfx.present gfx;
                        ignore (Usys.sleep gif.Giflite.delay_ms);
                        incr shown;
                        ignore nframes
                      done)
            in
            for _ = 1 to max 1 loops do
              List.iter show slides
            done;
            if ev_fd >= 0 then ignore (Usys.close ev_fd);
            0
      end)
