(** buzzer — Prototype 4's first sound app: synthesizes a square wave and
    pushes it through /dev/sb, exercising the DMA pipeline end to end. *)


open User

let rate = 44100

(* argv: buzzer [freq_hz] [duration_ms] *)
let main _env argv =
  Usys.in_frame "buzzer_main" (fun () ->
      let freq = match argv with _ :: f :: _ -> int_of_string f | _ -> 440 in
      let dur_ms = match argv with _ :: _ :: d :: _ -> int_of_string d | _ -> 250 in
      let fd = Usys.open_ "/dev/sb" Core.Abi.o_wronly in
      if fd < 0 then -fd
      else begin
        let total = rate * dur_ms / 1000 in
        let half_period = max 1 (rate / (2 * freq)) in
        let chunk = 4096 in
        let buf = Bytes.create (chunk * 2) in
        let sent = ref 0 in
        while !sent < total do
          let n = min chunk (total - !sent) in
          for i = 0 to n - 1 do
            let phase = (!sent + i) / half_period mod 2 in
            let v = if phase = 0 then 12000 else -12000 land 0xffff in
            Bytes.set_uint8 buf (2 * i) (v land 0xff);
            Bytes.set_uint8 buf ((2 * i) + 1) ((v lsr 8) land 0xff)
          done;
          Usys.burn (n * 4) (* synth cost *);
          ignore (Usys.write fd (Bytes.sub buf 0 (2 * n)));
          sent := !sent + n
        done;
        ignore (Usys.close fd);
        0
      end)
